package repro

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/adaptive"
	"repro/apps"
	"repro/flow"
	"repro/flowmon"
	"repro/metrics"
	"repro/netflow"
	"repro/netwide"
	"repro/pcapio"
	"repro/shard"
	"repro/trace"
)

// TestPipelinePcapToCollector exercises the full data path end to end:
// synthetic trace → pcap encode → pcap decode → HashFlow recorder →
// NetFlow v5 export → collector → analysis applications, verifying counts
// survive every hop.
func TestPipelinePcapToCollector(t *testing.T) {
	tr, err := trace.Generate(trace.ISP1, 4000, 21)
	if err != nil {
		t.Fatal(err)
	}
	truth := tr.Truth()

	// Trace → pcap.
	var pcapBuf bytes.Buffer
	w := pcapio.NewWriter(&pcapBuf)
	s := tr.Stream(21)
	ts := time.Unix(1700000000, 0)
	for {
		p, ok := s.Next()
		if !ok {
			break
		}
		if err := w.WritePacket(p, ts); err != nil {
			t.Fatal(err)
		}
		ts = ts.Add(time.Microsecond)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	// pcap → recorder.
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 256 << 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := pcapio.NewReader(bytes.NewReader(pcapBuf.Bytes()))
	pkts := 0
	for {
		p, _, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rec.Update(p)
		pkts++
	}
	if uint64(pkts) != tr.PacketCount() {
		t.Fatalf("pcap carried %d packets, trace has %d", pkts, tr.PacketCount())
	}

	// Recorder → NetFlow v5 → collector.
	var wire [][]byte
	exp := netflow.NewExporter(func(b []byte) error {
		cp := make([]byte, len(b))
		copy(cp, b)
		wire = append(wire, cp)
		return nil
	})
	records := rec.Records()
	if err := exp.Export(records, 700); err != nil {
		t.Fatal(err)
	}
	col := netflow.NewCollector()
	for _, d := range wire {
		if err := col.Ingest(d); err != nil {
			t.Fatal(err)
		}
	}
	collected := col.FlowRecords()
	if len(collected) != len(records) {
		t.Fatalf("collector got %d records, exporter sent %d", len(collected), len(records))
	}

	// Collected records must score identically to the recorder's own.
	if got, want := metrics.FSC(collected, truth), metrics.FSC(records, truth); got != want {
		t.Errorf("FSC after export %v, before %v", got, want)
	}
	if fsc := metrics.FSC(collected, truth); fsc < 0.9 {
		t.Errorf("end-to-end FSC = %.3f, want > 0.9 at this load", fsc)
	}

	// Applications run on collected records.
	top := apps.TopTalkers(collected, 10)
	if len(top) != 10 {
		t.Fatalf("TopTalkers returned %d", len(top))
	}
	if truth.Count(top[0].Key) == 0 {
		t.Error("top talker is not a real flow")
	}
}

// TestPipelineIPFIX repeats the export hop with the IPFIX codec.
func TestPipelineIPFIX(t *testing.T) {
	tr, err := trace.Generate(trace.ISP2, 2000, 23)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 128 << 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stream(23)
	for {
		p, ok := st.Next()
		if !ok {
			break
		}
		rec.Update(p)
	}

	records := rec.Records()
	ipfixRecs := make([]netflow.IPFIXRecord, 0, len(records))
	for _, r := range records {
		ipfixRecs = append(ipfixRecs, netflow.IPFIXRecord{Key: r.Key, Packets: uint64(r.Count)})
	}

	var wire [][]byte
	exp := netflow.NewIPFIXExporter(func(b []byte) error {
		cp := make([]byte, len(b))
		copy(cp, b)
		wire = append(wire, cp)
		return nil
	}, 99)
	if err := exp.Export(ipfixRecs); err != nil {
		t.Fatal(err)
	}

	dec := netflow.NewIPFIXDecoder()
	var got []netflow.IPFIXRecord
	for _, m := range wire {
		rs, err := dec.Decode(m)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, rs...)
	}
	if len(got) != len(ipfixRecs) {
		t.Fatalf("IPFIX round trip: %d records, want %d", len(got), len(ipfixRecs))
	}
	for i := range got {
		if got[i] != ipfixRecs[i] {
			t.Fatalf("IPFIX record %d mismatch", i)
		}
	}
}

// TestNetworkWideFlowRadarDecode replays the FlowRadar paper's NetDecode
// deployment: a small edge switch over its standalone decode capacity is
// rescued by the records a better-provisioned core switch on the same path
// decoded, then both views merge into one network-wide record set.
func TestNetworkWideFlowRadarDecode(t *testing.T) {
	edge, err := flowmon.NewFlowRadar(flowmon.Config{MemoryBytes: 26 * 1024, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	core, err := flowmon.NewFlowRadar(flowmon.Config{MemoryBytes: 26 * 16384, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}

	tr, err := trace.Generate(trace.ISP1, 3000, 53) // ~3x edge capacity
	if err != nil {
		t.Fatal(err)
	}
	truth := tr.Truth()
	for _, p := range tr.Packets(53) {
		edge.Update(p)
		core.Update(p)
	}

	if solo := len(edge.Records()); solo > truth.Flows()/2 {
		t.Fatalf("edge decoded %d flows standalone; overload assumption broken", solo)
	}
	rescued, ok := edge.DecodeWithHints(core.Records())
	if !ok {
		t.Fatal("NetDecode with core hints did not complete")
	}
	merged := netwide.MergeMax(
		netwide.View{Name: "edge", Records: rescued},
		netwide.View{Name: "core", Records: core.Records()},
	)
	if len(merged) != truth.Flows() {
		t.Fatalf("merged view has %d flows, want %d", len(merged), truth.Flows())
	}
	for _, r := range merged {
		if truth.Count(r.Key) != r.Count {
			t.Fatalf("merged flow %v count %d, want %d", r.Key, r.Count, truth.Count(r.Key))
		}
	}
}

// TestPipelineShardedAdaptiveNetwide composes the extension layers: a
// sharded HashFlow under an adaptive epoch manager, with epochs merged into
// a network-wide view.
func TestPipelineShardedAdaptiveNetwide(t *testing.T) {
	sharded, err := shard.NewUniform(4, flowmon.AlgorithmHashFlow,
		flowmon.Config{MemoryBytes: 19 * 2048, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	var views []netwide.View
	mgr, err := adaptive.NewManager(sharded, adaptive.Config{
		Capacity:   2048,
		CheckEvery: 256,
	}, func(epoch int, records []flow.Record) {
		// The flush buffer is reused for the next epoch; retaining a view
		// of it requires a copy.
		views = append(views, netwide.View{Name: "epoch",
			Records: append([]flow.Record(nil), records...)})
	})
	if err != nil {
		t.Fatal(err)
	}

	tr, err := trace.Generate(trace.Campus, 10000, 25)
	if err != nil {
		t.Fatal(err)
	}
	truth := tr.Truth()
	for _, p := range tr.Packets(25) {
		mgr.Update(p)
	}
	mgr.Flush()

	if len(views) < 2 {
		t.Fatalf("expected multiple adaptive epochs, got %d", len(views))
	}
	merged := netwide.MergeMax(views...)
	fsc := metrics.FSC(merged, truth)
	if fsc < 0.9 {
		t.Errorf("merged epoch FSC = %.3f, want > 0.9 (adaptive flushing should prevent loss)", fsc)
	}
}
