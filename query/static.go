// Static sources: frozen record sets served through the live-source
// interfaces, for daemons that answer from historical stores when no
// ingest pipeline is attached. Both orderings are precomputed once, so
// the request path is O(k) appends — never a scan.
package query

import (
	"repro/flow"
	"repro/netwide"
	"repro/recordstore"
)

// Static is an immutable record set implementing TopKSource and
// SortedSource.
type Static struct {
	byCount []flow.Record // count descending, key tiebreak
	byKey   []flow.Record // packed key order
}

// NewStatic freezes recs (copied) into a static source.
func NewStatic(recs []flow.Record) *Static {
	s := &Static{
		byCount: append([]flow.Record(nil), recs...),
		byKey:   append([]flow.Record(nil), recs...),
	}
	selectTopK(s.byCount, len(s.byCount))
	netwide.SortByKey(s.byKey)
	return s
}

// AppendTopK appends the k largest frozen records to dst.
func (s *Static) AppendTopK(dst []flow.Record, k int) []flow.Record {
	if k > len(s.byCount) {
		k = len(s.byCount)
	}
	if k <= 0 {
		return dst
	}
	return append(dst, s.byCount[:k]...)
}

// AppendSorted appends every frozen record to dst in key order.
func (s *Static) AppendSorted(dst []flow.Record) []flow.Record {
	return append(dst, s.byKey...)
}

// Len returns the frozen record count.
func (s *Static) Len() int { return len(s.byKey) }

// SumStore folds every epoch of a store into one per-flow summed record
// set via the k-way sorted merge (epochs are stored key-sorted in every
// tier), the whole-history view a store contributes to /netwide/topk.
// Works over any EpochSource — flat, tiered, rollup epochs included.
func SumStore(src recordstore.EpochSource) (*Static, error) {
	views := make([]netwide.View, src.Epochs())
	bufs := make([][]flow.Record, src.Epochs())
	for i := range views {
		ep, err := src.AppendEpochAt(i, nil)
		if err != nil {
			return nil, err
		}
		bufs[i] = ep.Records
		views[i] = netwide.View{Records: bufs[i]}
	}
	return NewStatic(netwide.MergeSumInto(nil, views...)), nil
}
