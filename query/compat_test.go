// Golden compatibility tests for the API versioning: legacy unversioned
// paths must keep serving byte-identical payloads (now with a
// Deprecation header), /v1 must serve the same successful payloads with
// the structured error envelope and strict parameter validation.
package query

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/flow"
	"repro/recordstore"
)

// getRaw fetches path and returns the status, headers and exact body.
func getRaw(t *testing.T, srv *httptest.Server, path string) (int, http.Header, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

// compatServer serves every endpoint family from deterministic fixtures.
func compatServer(t *testing.T) *httptest.Server {
	t.Helper()
	tk := liveTracker(t)
	srv := httptest.NewServer(NewHandler(Config{
		TopK:    tk,
		Store:   FileStore(testStore(t)),
		Netwide: []NamedSource{{Name: "sw1", Source: tk}},
		Alerts:  testDetector(t),
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestLegacyGoldenBytes pins the exact legacy response bytes of the
// store-backed endpoints. These strings are the frozen v0 contract: a
// diff here is a breaking change for unversioned clients, not a test to
// update casually.
func TestLegacyGoldenBytes(t *testing.T) {
	srv := compatServer(t)

	goldens := map[string]string{
		"/epochs": `{
  "epochs": [
    {
      "index": 0,
      "time": "2023-11-14T22:13:20.000Z",
      "records": 2
    },
    {
      "index": 1,
      "time": "2023-11-14T22:18:20.000Z",
      "records": 1
    },
    {
      "index": 2,
      "time": "2023-11-14T22:23:20.000Z",
      "records": 1
    }
  ],
  "truncated": false
}
`,
		"/flows?epoch=1": `{
  "epochs_scanned": 1,
  "matched": 1,
  "limited": false,
  "flows": [
    {
      "epoch": 1,
      "src": "10.0.0.3",
      "sport": 0,
      "dst": "10.0.0.100",
      "dport": 53,
      "proto": 17,
      "packets": 7
    }
  ]
}
`,
		"/topk?k=1": `{
  "k": 1,
  "flows": [
    {
      "src": "10.0.0.1",
      "sport": 0,
      "dst": "0.0.0.0",
      "dport": 443,
      "proto": 6,
      "packets": 500
    }
  ]
}
`,
		"/flows?epoch=99": `{
  "error": "epoch 99 out of range [0,3)"
}
`,
	}
	for path, want := range goldens {
		_, hdr, body := getRaw(t, srv, path)
		if body != want {
			t.Errorf("GET %s body diverged from golden:\ngot:  %q\nwant: %q", path, body, want)
		}
		if hdr.Get("Deprecation") != "true" {
			t.Errorf("GET %s missing Deprecation header", path)
		}
		if link := hdr.Get("Link"); !strings.Contains(link, "/v1/") || !strings.Contains(link, "successor-version") {
			t.Errorf("GET %s Link header = %q", path, link)
		}
	}
}

// TestV1PayloadParity: every endpoint's successful /v1 payload is
// byte-identical to its legacy payload — only error shapes and
// strictness differ between the surfaces.
func TestV1PayloadParity(t *testing.T) {
	srv := compatServer(t)
	paths := []string{
		"/topk?k=2",
		"/epochs",
		"/flows?filter=proto%3D17",
		"/flows?from=1700000300&to=1700000600",
		"/netwide/topk?k=2",
		"/alerts",
		"/alerts?kind=superspreader",
		"/changes?k=5",
		"/trace/epochs", // 404s identically: no tracer configured
	}
	for _, path := range paths {
		legacyStatus, legacyHdr, legacyBody := getRaw(t, srv, path)
		v1Status, v1Hdr, v1Body := getRaw(t, srv, "/v1"+path)
		if legacyStatus != v1Status {
			t.Errorf("GET %s: legacy %d vs v1 %d", path, legacyStatus, v1Status)
		}
		if legacyStatus == http.StatusOK && legacyBody != v1Body {
			t.Errorf("GET %s: payloads diverge between surfaces:\nlegacy: %q\nv1:     %q", path, legacyBody, v1Body)
		}
		if v1Hdr.Get("Deprecation") != "" {
			t.Errorf("GET /v1%s carries a Deprecation header", path)
		}
		if legacyHdr.Get("Deprecation") != "true" {
			t.Errorf("GET %s lacks the Deprecation header", path)
		}
	}
}

// TestV1ErrorEnvelope: /v1 errors use {"error":{"code","message"}} while
// the same failures on legacy paths keep the bare-string shape.
func TestV1ErrorEnvelope(t *testing.T) {
	srv := compatServer(t)

	type envelope struct {
		Error ErrorBody `json:"error"`
	}
	cases := []struct {
		path   string
		status int
		code   string
	}{
		{"/v1/flows?epoch=99", http.StatusBadRequest, "bad_request"},
		{"/v1/flows?bogus=1", http.StatusBadRequest, "bad_request"},
		{"/v1/events", http.StatusNotFound, "not_found"},
		{"/v1/trace/epochs", http.StatusNotFound, "not_found"},
	}
	for _, tc := range cases {
		var env envelope
		if code := get(t, srv, tc.path, &env); code != tc.status {
			t.Errorf("GET %s status %d, want %d", tc.path, code, tc.status)
		}
		if env.Error.Code != tc.code || env.Error.Message == "" {
			t.Errorf("GET %s envelope = %+v, want code %q", tc.path, env.Error, tc.code)
		}
	}

	// Same failure, legacy shape: a bare string, no envelope.
	_, _, body := getRaw(t, srv, "/flows?epoch=99")
	if strings.Contains(body, `"code"`) {
		t.Errorf("legacy error grew an envelope: %q", body)
	}
	if !strings.Contains(body, `"error": "epoch 99 out of range`) {
		t.Errorf("legacy error shape changed: %q", body)
	}
}

// TestStrictParams: /v1 rejects parameters the endpoint does not use;
// legacy keeps accepting them unless strict=1 opts in.
func TestStrictParams(t *testing.T) {
	srv := compatServer(t)

	// epoch= is meaningful on /flows but not /topk. Legacy /topk has
	// always silently accepted it — frozen behavior.
	if status, _, _ := getRaw(t, srv, "/topk?k=1&epoch=1"); status != http.StatusOK {
		t.Errorf("legacy lenient /topk?epoch= status %d", status)
	}
	// strict=1 opts the legacy path into the /v1 vocabulary check.
	if status, _, body := getRaw(t, srv, "/topk?k=1&epoch=1&strict=1"); status != http.StatusBadRequest {
		t.Errorf("legacy strict /topk?epoch= status %d body %q", status, body)
	}
	// /v1 is always strict.
	if status, _, _ := getRaw(t, srv, "/v1/topk?k=1&epoch=1"); status != http.StatusBadRequest {
		t.Errorf("/v1/topk?epoch= not rejected")
	}
	if status, _, _ := getRaw(t, srv, "/v1/topk?k=1&filter=proto%3D6"); status != http.StatusOK {
		t.Errorf("/v1/topk with applicable params rejected")
	}
	// strict itself is accepted (and redundant) on /v1.
	if status, _, _ := getRaw(t, srv, "/v1/topk?k=1&strict=1"); status != http.StatusOK {
		t.Errorf("/v1/topk?strict=1 rejected")
	}
	// Unknown keys still fail everywhere, as they always have.
	if status, _, _ := getRaw(t, srv, "/topk?bogus=1"); status != http.StatusBadRequest {
		t.Errorf("legacy unknown key accepted")
	}
}

// TestTieredStoreThroughHandler: the HTTP surface serves a tiered
// directory transparently — tier labels on /v1/epochs, time-ranged
// /v1/flows answered from cold segments.
func TestTieredStoreThroughHandler(t *testing.T) {
	dir := t.TempDir()
	tw, _, err := recordstore.OpenTiered(dir, recordstore.TieredOptions{HotEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(1700000000, 0).UTC()
	for e := 0; e < 8; e++ {
		recs := []flow.Record{
			{Key: flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000063, DstPort: 443, Proto: 6}, Count: uint32(100 + e)},
		}
		if err := tw.WriteEpoch(base.Add(time.Duration(e)*time.Minute), recs); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tw.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewHandler(Config{Store: FileStore(dir)}))
	defer srv.Close()

	var eps EpochsResponse
	if code := get(t, srv, "/v1/epochs", &eps); code != http.StatusOK {
		t.Fatalf("epochs status %d", code)
	}
	if len(eps.Epochs) != 8 {
		t.Fatalf("tiered /epochs lists %d", len(eps.Epochs))
	}
	if eps.Epochs[0].Tier != "cold" || eps.Epochs[7].Tier != "" {
		t.Fatalf("tier labels: first %q last %q", eps.Epochs[0].Tier, eps.Epochs[7].Tier)
	}

	var flows FlowsResponse
	path := "/v1/flows?from=1700000060&to=1700000180"
	if code := get(t, srv, path, &flows); code != http.StatusOK {
		t.Fatalf("flows status %d", code)
	}
	if flows.EpochsScanned != 2 || flows.Matched != 2 {
		t.Fatalf("time-ranged flows = %+v", flows)
	}
	if flows.Flows[0].Packets != 101 || flows.Flows[1].Packets != 102 {
		t.Fatalf("cold flows payload = %+v", flows.Flows)
	}

	// limit= on /v1/epochs cuts the listing and says so.
	if code := get(t, srv, "/v1/epochs?limit=3", &eps); code != http.StatusOK {
		t.Fatal("epochs limit status")
	}
	if len(eps.Epochs) != 3 || !eps.Limited {
		t.Fatalf("limited epochs = %d limited=%v", len(eps.Epochs), eps.Limited)
	}
}
