// Package query is the read path of the collection pipeline: an HTTP/JSON
// surface answering live and historical flow questions without touching
// the ingest hot path.
//
// Nine endpoints:
//
//	GET /topk?k=10                  largest flows right now, from the live
//	                                top-k tracker — no epoch dump involved
//	GET /epochs                     stored epoch listing (index, time, size)
//	GET /flows?filter=...&limit=    filtered historical records from the
//	                                mmap-backed store, by epoch or time range
//	GET /netwide/topk?k=10          top-k over the merged network-wide view
//	                                of every registered vantage point
//	GET /alerts?kind=...&severity=  recent detection alerts (heavy change,
//	                                forecast, superspreader, victim fan-in,
//	                                anomaly) from the ring
//	GET /changes?k=10&epoch=        per-epoch heavy-change top-k lists
//	GET /netwide/alerts?severity=   cross-vantage correlated alerts with
//	                                per-vantage evidence
//	GET /events?kind=&severity=     live SSE stream of structured pipeline
//	                                events (epoch spans, alerts, recovery,
//	                                degradation), resumable via Last-Event-ID
//	GET /trace/epochs?limit=        the last K epoch timelines with
//	                                per-stage drain durations
//
// The live side reads an online summary (topk.Tracker / topk.Set via the
// TopKSource surface) that ingest maintains incrementally; the historical
// side random-accesses a recordstore.Mapped. Both are query-time-only
// costs: ingestion never blocks on a query.
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"slices"
	"sync"
	"time"

	"repro/flow"
	"repro/netwide"
	"repro/recordstore"
	"repro/telemetry"
	"repro/telemetry/events"
)

// TopKSource serves live top-k snapshots; topk.Tracker and topk.Set
// implement it, and adaptive.Manager sidecars resolve to one.
type TopKSource interface {
	AppendTopK(dst []flow.Record, k int) []flow.Record
}

// SortedSource yields a key-sorted snapshot of a vantage point's current
// flows — the netwide.View order MergeSumInto consumes. topk.Tracker and
// topk.Set implement it.
type SortedSource interface {
	AppendSorted(dst []flow.Record) []flow.Record
}

// NamedSource labels a vantage point for the network-wide merge.
type NamedSource struct {
	Name   string
	Source SortedSource
}

// StoreOpener yields the historical store for one request plus a release
// function. StaticStore shares one mapping; FileStore re-opens per request
// so a store still being written is always seen current.
type StoreOpener func() (*recordstore.Mapped, func() error, error)

// StaticStore serves every request from one long-lived mapping.
func StaticStore(m *recordstore.Mapped) StoreOpener {
	return func() (*recordstore.Mapped, func() error, error) {
		return m, func() error { return nil }, nil
	}
}

// FileStore maps the file fresh per request — the mode a collector's
// live, still-growing store needs. OpenMapped tolerates the truncated
// final frame such a file usually has.
func FileStore(path string) StoreOpener {
	return func() (*recordstore.Mapped, func() error, error) {
		m, err := recordstore.OpenMapped(path)
		if err != nil {
			return nil, nil, err
		}
		return m, m.Close, nil
	}
}

// Config wires the handler's sources; any nil source turns its endpoints
// into 404s.
type Config struct {
	// TopK serves /topk.
	TopK TopKSource
	// Store serves /epochs and /flows.
	Store StoreOpener
	// Netwide serves /netwide/topk.
	Netwide []NamedSource
	// NetwideVersion, when non-nil, reports a version of the netwide
	// sources' contents (typically the epochs-ingested count): responses
	// of /netwide/topk are then memoized per (version, k, filter), so
	// dashboard-rate polling between rotations stops re-snapshotting and
	// re-merging every source, and a rotation (version change) empties
	// the cache. Nil disables caching — every request recomputes.
	NetwideVersion func() uint64
	// Alerts serves /alerts and /changes.
	Alerts AlertSource
	// NetwideAlerts serves /netwide/alerts (the cross-vantage
	// correlator's promotions with per-vantage evidence).
	NetwideAlerts NetwideAlertSource
	// Events serves /events: the daemon's pipeline event bus streamed as
	// SSE, resumable via Last-Event-ID.
	Events *events.Bus
	// Trace serves /trace/epochs: the last K epoch stage timelines.
	Trace *events.Tracer
	// EventHeartbeat overrides the SSE keep-alive ping interval
	// (DefaultEventHeartbeat if zero); tests shrink it.
	EventHeartbeat time.Duration
	// Registry, when non-nil, wraps the handler with per-endpoint access
	// instrumentation (http_requests_total / http_request_ns by mux
	// pattern).
	Registry *telemetry.Registry
}

// FlowJSON is one flow record on the wire.
type FlowJSON struct {
	Epoch   int    `json:"epoch,omitempty"`
	Src     string `json:"src"`
	Sport   uint16 `json:"sport"`
	Dst     string `json:"dst"`
	Dport   uint16 `json:"dport"`
	Proto   uint8  `json:"proto"`
	Packets uint32 `json:"packets"`
}

// TopKResponse is the /topk and /netwide/topk payload. Cached marks a
// /netwide/topk response served from the per-epoch memo.
type TopKResponse struct {
	K       int        `json:"k"`
	Sources []string   `json:"sources,omitempty"`
	Flows   []FlowJSON `json:"flows"`
	Cached  bool       `json:"cached,omitempty"`
}

// EpochJSON is one epoch in the /epochs listing.
type EpochJSON struct {
	Index   int    `json:"index"`
	Time    string `json:"time"`
	Records int    `json:"records"`
}

// EpochsResponse is the /epochs payload.
type EpochsResponse struct {
	Epochs    []EpochJSON `json:"epochs"`
	Truncated bool        `json:"truncated"`
}

// FlowsResponse is the /flows payload.
type FlowsResponse struct {
	EpochsScanned int        `json:"epochs_scanned"`
	Matched       int        `json:"matched"`
	Limited       bool       `json:"limited"`
	Flows         []FlowJSON `json:"flows"`
}

// ErrorResponse is the error payload of every endpoint.
type ErrorResponse struct {
	Error string `json:"error"`
}

// NewHandler builds the HTTP handler serving cfg's sources.
func NewHandler(cfg Config) http.Handler {
	h := &handler{cfg: cfg}
	mux := http.NewServeMux()
	mux.HandleFunc("/topk", h.topK)
	mux.HandleFunc("/epochs", h.epochs)
	mux.HandleFunc("/flows", h.flows)
	mux.HandleFunc("/netwide/topk", h.netwideTopK)
	mux.HandleFunc("/netwide/alerts", h.netwideAlerts)
	mux.HandleFunc("/alerts", h.alerts)
	mux.HandleFunc("/changes", h.changes)
	mux.HandleFunc("/events", h.events)
	mux.HandleFunc("/trace/epochs", h.traceEpochs)
	if cfg.Registry != nil {
		return telemetry.InstrumentMux(cfg.Registry, mux)
	}
	return mux
}

// maxNetwideCacheEntries bounds the /netwide/topk memo per version; a
// polling workload has a handful of distinct (k, filter) shapes, so an
// overflowing cache simply stops admitting until the next rotation.
const maxNetwideCacheEntries = 128

// nwKey identifies one memoized /netwide/topk response shape.
type nwKey struct {
	k      int
	filter string
}

type handler struct {
	cfg Config

	// nw memoizes /netwide/topk per (version, k, filter); see
	// Config.NetwideVersion.
	nw struct {
		mu      sync.Mutex
		version uint64
		entries map[nwKey]*TopKResponse
	}
}

// writeJSON marshals v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode left
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// decode enforces GET and parses parameters.
func decode(w http.ResponseWriter, r *http.Request) (Params, bool) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET only"))
		return Params{}, false
	}
	p, err := ParseParams(r.URL.Query())
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return Params{}, false
	}
	return p, true
}

// recordJSON converts a record for the wire.
func recordJSON(epoch int, r flow.Record) FlowJSON {
	return FlowJSON{
		Epoch:   epoch,
		Src:     flow.IPString(r.Key.SrcIP),
		Sport:   r.Key.SrcPort,
		Dst:     flow.IPString(r.Key.DstIP),
		Dport:   r.Key.DstPort,
		Proto:   r.Key.Proto,
		Packets: r.Count,
	}
}

func (h *handler) topK(w http.ResponseWriter, r *http.Request) {
	p, ok := decode(w, r)
	if !ok {
		return
	}
	if h.cfg.TopK == nil {
		writeError(w, http.StatusNotFound, errors.New("no live top-k source configured"))
		return
	}
	// With a filter, the top k *matching* flows are wanted, which may sit
	// below the global top k: take the full snapshot (AppendTopK clamps an
	// oversized k) and cut to k after filtering.
	snapK := p.K
	if p.Filter != (recordstore.Filter{}) {
		snapK = 1 << 30
	}
	recs := h.cfg.TopK.AppendTopK(nil, snapK)
	resp := TopKResponse{K: p.K, Flows: make([]FlowJSON, 0, p.K)}
	for _, rec := range recs {
		if !p.Filter.Match(rec) {
			continue
		}
		resp.Flows = append(resp.Flows, recordJSON(0, rec))
		if len(resp.Flows) == p.K {
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) netwideTopK(w http.ResponseWriter, r *http.Request) {
	p, ok := decode(w, r)
	if !ok {
		return
	}
	if len(h.cfg.Netwide) == 0 {
		writeError(w, http.StatusNotFound, errors.New("no netwide sources configured"))
		return
	}

	// With a version source, serve repeats of the same request shape from
	// the memo until the sources' contents change.
	var (
		cacheKey nwKey
		version  uint64
		caching  = h.cfg.NetwideVersion != nil
	)
	if caching {
		cacheKey = nwKey{k: p.K, filter: p.Filter.String()}
		version = h.cfg.NetwideVersion()
		h.nw.mu.Lock()
		if h.nw.entries == nil || h.nw.version != version {
			h.nw.entries = make(map[nwKey]*TopKResponse)
			h.nw.version = version
		}
		if cached, hit := h.nw.entries[cacheKey]; hit {
			resp := *cached
			resp.Cached = true
			h.nw.mu.Unlock()
			writeJSON(w, http.StatusOK, resp)
			return
		}
		h.nw.mu.Unlock()
	}

	views := make([]netwide.View, len(h.cfg.Netwide))
	names := make([]string, len(h.cfg.Netwide))
	for i, s := range h.cfg.Netwide {
		views[i] = netwide.View{Name: s.Name, Records: s.Source.AppendSorted(nil)}
		names[i] = s.Name
	}
	merged := netwide.MergeSumInto(nil, views...)
	// Filter before selecting k, so a filtered query surfaces the top
	// matching flows rather than the matching subset of the global top k.
	kept := merged[:0]
	for _, rec := range merged {
		if p.Filter.Match(rec) {
			kept = append(kept, rec)
		}
	}
	topK := selectTopK(kept, p.K)
	resp := TopKResponse{K: p.K, Sources: names, Flows: make([]FlowJSON, 0, len(topK))}
	for _, rec := range topK {
		resp.Flows = append(resp.Flows, recordJSON(0, rec))
	}
	if caching {
		h.nw.mu.Lock()
		// Only admit while the version still matches: a rotation during
		// the merge would otherwise pin a stale response for the new
		// version's lifetime.
		if h.nw.version == version && len(h.nw.entries) < maxNetwideCacheEntries {
			stored := resp
			h.nw.entries[cacheKey] = &stored
		}
		h.nw.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) epochs(w http.ResponseWriter, r *http.Request) {
	if _, ok := decode(w, r); !ok {
		return
	}
	m, release, ok := h.openStore(w)
	if !ok {
		return
	}
	defer release()
	resp := EpochsResponse{Epochs: make([]EpochJSON, m.Epochs()), Truncated: m.Truncated()}
	for i := range resp.Epochs {
		resp.Epochs[i] = EpochJSON{
			Index:   i,
			Time:    m.EpochTime(i).Format(timeFormat),
			Records: m.EpochLen(i),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) flows(w http.ResponseWriter, r *http.Request) {
	p, ok := decode(w, r)
	if !ok {
		return
	}
	m, release, ok := h.openStore(w)
	if !ok {
		return
	}
	defer release()

	lo, hi := 0, m.Epochs()
	if !p.From.IsZero() || !p.To.IsZero() {
		lo, hi = m.Range(p.From, p.To)
	}
	if p.Epoch >= 0 {
		if p.Epoch >= m.Epochs() {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("epoch %d out of range [0,%d)", p.Epoch, m.Epochs()))
			return
		}
		lo, hi = p.Epoch, p.Epoch+1
	}

	resp := FlowsResponse{}
	var buf []flow.Record
	for i := lo; i < hi && !resp.Limited; i++ {
		ep, err := m.AppendEpochAt(i, buf[:0])
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		buf = ep.Records
		resp.EpochsScanned++
		for _, rec := range ep.Records {
			if !p.Filter.Match(rec) {
				continue
			}
			resp.Matched++
			if len(resp.Flows) >= p.Limit {
				resp.Limited = true
				break
			}
			resp.Flows = append(resp.Flows, recordJSON(i, rec))
		}
	}
	if resp.Flows == nil {
		resp.Flows = []FlowJSON{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// openStore resolves the request's store; on failure the response is
// already written and ok is false.
func (h *handler) openStore(w http.ResponseWriter) (m *recordstore.Mapped, release func() error, ok bool) {
	if h.cfg.Store == nil {
		writeError(w, http.StatusNotFound, errors.New("no store configured"))
		return nil, nil, false
	}
	m, release, err := h.cfg.Store()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return nil, nil, false
	}
	return m, release, true
}

// selectTopK reorders recs by count descending (key tiebreak) in place
// and returns the first k.
func selectTopK(recs []flow.Record, k int) []flow.Record {
	slices.SortFunc(recs, func(a, b flow.Record) int {
		if a.Count != b.Count {
			if a.Count > b.Count {
				return -1
			}
			return 1
		}
		return flow.CompareKeys(a.Key, b.Key)
	})
	if k < len(recs) {
		recs = recs[:k]
	}
	return recs
}

// timeFormat is the epoch timestamp rendering, matching the flowquery CLI.
const timeFormat = "2006-01-02T15:04:05.000Z07:00"
