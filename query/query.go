// Package query is the read path of the collection pipeline: an HTTP/JSON
// surface answering live and historical flow questions without touching
// the ingest hot path.
//
// Nine endpoints:
//
//	GET /topk?k=10                  largest flows right now, from the live
//	                                top-k tracker — no epoch dump involved
//	GET /epochs                     stored epoch listing (index, time, size)
//	GET /flows?filter=...&limit=    filtered historical records from the
//	                                mmap-backed store, by epoch or time range
//	GET /netwide/topk?k=10          top-k over the merged network-wide view
//	                                of every registered vantage point
//	GET /alerts?kind=...&severity=  recent detection alerts (heavy change,
//	                                forecast, superspreader, victim fan-in,
//	                                anomaly) from the ring
//	GET /changes?k=10&epoch=        per-epoch heavy-change top-k lists
//	GET /netwide/alerts?severity=   cross-vantage correlated alerts with
//	                                per-vantage evidence
//	GET /events?kind=&severity=     live SSE stream of structured pipeline
//	                                events (epoch spans, alerts, recovery,
//	                                degradation), resumable via Last-Event-ID
//	GET /trace/epochs?limit=        the last K epoch timelines with
//	                                per-stage drain durations
//
// The live side reads an online summary (topk.Tracker / topk.Set via the
// TopKSource surface) that ingest maintains incrementally; the historical
// side random-accesses a recordstore.EpochSource — a flat mmap store or a
// tiered directory with compressed cold segments, transparently. Both are
// query-time-only costs: ingestion never blocks on a query.
//
// Every endpoint is served twice: under its legacy unversioned path
// (payloads frozen byte-for-byte, plus a Deprecation header) and under
// /v1/ (structured {"error":{"code","message"}} envelope, strict
// parameter validation). New clients use /v1; see API.md.
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"slices"
	"sync"
	"time"

	"repro/flow"
	"repro/netwide"
	"repro/recordstore"
	"repro/telemetry"
	"repro/telemetry/events"
)

// TopKSource serves live top-k snapshots; topk.Tracker and topk.Set
// implement it, and adaptive.Manager sidecars resolve to one.
type TopKSource interface {
	AppendTopK(dst []flow.Record, k int) []flow.Record
}

// SortedSource yields a key-sorted snapshot of a vantage point's current
// flows — the netwide.View order MergeSumInto consumes. topk.Tracker and
// topk.Set implement it.
type SortedSource interface {
	AppendSorted(dst []flow.Record) []flow.Record
}

// NamedSource labels a vantage point for the network-wide merge.
type NamedSource struct {
	Name   string
	Source SortedSource
}

// StoreOpener yields the historical store for one request plus a release
// function. StaticStore shares one long-lived source; FileStore re-opens
// per request so a store still being written is always seen current.
type StoreOpener func() (recordstore.EpochSource, func() error, error)

// StaticStore serves every request from one long-lived source.
func StaticStore(src recordstore.EpochSource) StoreOpener {
	return func() (recordstore.EpochSource, func() error, error) {
		return src, func() error { return nil }, nil
	}
}

// FileStore opens the store at path fresh per request — the mode a
// collector's live, still-growing store needs. recordstore.Open
// auto-detects flat files and tiered directories; the flat open
// tolerates the truncated final frame a live file usually has.
func FileStore(path string) StoreOpener {
	return func() (recordstore.EpochSource, func() error, error) {
		src, err := recordstore.Open(path)
		if err != nil {
			return nil, nil, err
		}
		return src, src.Close, nil
	}
}

// Config wires the handler's sources; any nil source turns its endpoints
// into 404s.
type Config struct {
	// TopK serves /topk.
	TopK TopKSource
	// Store serves /epochs and /flows.
	Store StoreOpener
	// Netwide serves /netwide/topk.
	Netwide []NamedSource
	// NetwideVersion, when non-nil, reports a version of the netwide
	// sources' contents (typically the epochs-ingested count): responses
	// of /netwide/topk are then memoized per (version, k, filter), so
	// dashboard-rate polling between rotations stops re-snapshotting and
	// re-merging every source, and a rotation (version change) empties
	// the cache. Nil disables caching — every request recomputes.
	NetwideVersion func() uint64
	// Alerts serves /alerts and /changes.
	Alerts AlertSource
	// NetwideAlerts serves /netwide/alerts (the cross-vantage
	// correlator's promotions with per-vantage evidence).
	NetwideAlerts NetwideAlertSource
	// Events serves /events: the daemon's pipeline event bus streamed as
	// SSE, resumable via Last-Event-ID.
	Events *events.Bus
	// Trace serves /trace/epochs: the last K epoch stage timelines.
	Trace *events.Tracer
	// EventHeartbeat overrides the SSE keep-alive ping interval
	// (DefaultEventHeartbeat if zero); tests shrink it.
	EventHeartbeat time.Duration
	// Registry, when non-nil, wraps the handler with per-endpoint access
	// instrumentation (http_requests_total / http_request_ns by mux
	// pattern).
	Registry *telemetry.Registry
}

// FlowJSON is one flow record on the wire.
type FlowJSON struct {
	Epoch   int    `json:"epoch,omitempty"`
	Src     string `json:"src"`
	Sport   uint16 `json:"sport"`
	Dst     string `json:"dst"`
	Dport   uint16 `json:"dport"`
	Proto   uint8  `json:"proto"`
	Packets uint32 `json:"packets"`
}

// TopKResponse is the /topk and /netwide/topk payload. Cached marks a
// /netwide/topk response served from the per-epoch memo.
type TopKResponse struct {
	K       int        `json:"k"`
	Sources []string   `json:"sources,omitempty"`
	Flows   []FlowJSON `json:"flows"`
	Cached  bool       `json:"cached,omitempty"`
}

// EpochJSON is one epoch in the /epochs listing. The tier fields only
// appear for epochs outside the hot tier, so flat-store listings render
// exactly as they always have.
type EpochJSON struct {
	Index   int    `json:"index"`
	Time    string `json:"time"`
	Records int    `json:"records"`
	// Tier is "cold" or "rollup" for migrated epochs; omitted for hot.
	Tier string `json:"tier,omitempty"`
	// Span / TotalRecords / TotalPackets describe what a rollup epoch
	// folds together; omitted outside rollups.
	Span         int    `json:"span,omitempty"`
	TotalRecords uint64 `json:"total_records,omitempty"`
	TotalPackets uint64 `json:"total_packets,omitempty"`
}

// EpochsResponse is the /epochs payload.
type EpochsResponse struct {
	Epochs    []EpochJSON `json:"epochs"`
	Truncated bool        `json:"truncated"`
	// Limited reports that an explicit limit= cut the listing short.
	Limited bool `json:"limited,omitempty"`
}

// FlowsResponse is the /flows payload.
type FlowsResponse struct {
	EpochsScanned int        `json:"epochs_scanned"`
	Matched       int        `json:"matched"`
	Limited       bool       `json:"limited"`
	Flows         []FlowJSON `json:"flows"`
	// RollupEpochs counts scanned epochs that are downsampled rollups —
	// a caller's signal that tail flows in that range were dropped by
	// retention. Omitted when the scan touched none.
	RollupEpochs int `json:"rollup_epochs,omitempty"`
}

// ErrorResponse is the legacy error payload: a bare string. The /v1
// surface wraps errors in ErrorEnvelope instead.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ErrorEnvelope is the /v1 error payload: {"error":{"code","message"}}.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the structured error of the /v1 surface.
type ErrorBody struct {
	// Code is a stable machine-readable identifier (bad_request,
	// not_found, method_not_allowed, unavailable, internal).
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

// apiVersion selects the response conventions of one registered path:
// the frozen legacy surface or /v1.
type apiVersion int

const (
	apiLegacy apiVersion = iota
	apiV1
)

// Per-endpoint parameter vocabularies, enforced on /v1 (always) and on
// legacy paths under strict=1. The legacy default keeps accepting any
// globally-known parameter for compatibility, even where it has no
// effect.
var (
	topkParams   = []string{"k", "filter"}
	epochsParams = []string{"from", "to", "limit"}
	flowsParams  = []string{"filter", "epoch", "limit", "from", "to"}
	changeParams = []string{"k", "epoch", "limit", "filter"}
	alertParams  = []string{"kind", "severity", "epoch", "limit", "filter"}
	eventParams  = []string{"kind", "severity", "vantage", "after"}
	traceParams  = []string{"vantage", "limit"}
)

// NewHandler builds the HTTP handler serving cfg's sources. Every
// endpoint is registered under its legacy unversioned path and under
// /v1/; the legacy registration stamps Deprecation and successor-version
// Link headers on every response.
func NewHandler(cfg Config) http.Handler {
	h := &handler{cfg: cfg}
	mux := http.NewServeMux()
	register := func(path string, fn func(http.ResponseWriter, *http.Request, apiVersion)) {
		successor := `</v1` + path + `>; rel="successor-version"`
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Deprecation", "true")
			w.Header().Set("Link", successor)
			fn(w, r, apiLegacy)
		})
		mux.HandleFunc("/v1"+path, func(w http.ResponseWriter, r *http.Request) {
			fn(w, r, apiV1)
		})
	}
	register("/topk", h.topK)
	register("/epochs", h.epochs)
	register("/flows", h.flows)
	register("/netwide/topk", h.netwideTopK)
	register("/netwide/alerts", h.netwideAlerts)
	register("/alerts", h.alerts)
	register("/changes", h.changes)
	register("/events", h.events)
	register("/trace/epochs", h.traceEpochs)
	if cfg.Registry != nil {
		return telemetry.InstrumentMux(cfg.Registry, mux)
	}
	return mux
}

// maxNetwideCacheEntries bounds the /netwide/topk memo per version; a
// polling workload has a handful of distinct (k, filter) shapes, so an
// overflowing cache simply stops admitting until the next rotation.
const maxNetwideCacheEntries = 128

// nwKey identifies one memoized /netwide/topk response shape.
type nwKey struct {
	k      int
	filter string
}

type handler struct {
	cfg Config

	// nw memoizes /netwide/topk per (version, k, filter); see
	// Config.NetwideVersion.
	nw struct {
		mu      sync.Mutex
		version uint64
		entries map[nwKey]*TopKResponse
	}
}

// writeJSON marshals v with a status code.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode left
}

// writeError renders err in the version's error shape: the legacy bare
// {"error": "..."} string or the /v1 {"error":{"code","message"}}
// envelope.
func writeError(w http.ResponseWriter, v apiVersion, status int, err error) {
	if v == apiV1 {
		writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{
			Code:    errorCode(status),
			Message: err.Error(),
		}})
		return
	}
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// errorCode maps an HTTP status to the /v1 stable error code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case http.StatusServiceUnavailable:
		return "unavailable"
	default:
		return "internal"
	}
}

// checkStrict rejects parameters outside the endpoint's vocabulary when
// the request is strict: always on /v1, opt-in via strict=1 on legacy
// paths (whose lenient default — accepting any globally-known parameter,
// effective or not — is frozen for compatibility).
func checkStrict(v apiVersion, q url.Values, allowed []string) error {
	if v != apiV1 && q.Get("strict") != "1" {
		return nil
	}
	for key := range q {
		if key == "strict" || slices.Contains(allowed, key) {
			continue
		}
		return fmt.Errorf("query: parameter %q is not accepted by this endpoint", key)
	}
	return nil
}

// decode enforces GET, strictness, and parses parameters.
func decode(w http.ResponseWriter, r *http.Request, v apiVersion, allowed []string) (Params, bool) {
	if r.Method != http.MethodGet {
		writeError(w, v, http.StatusMethodNotAllowed, errors.New("GET only"))
		return Params{}, false
	}
	q := r.URL.Query()
	if err := checkStrict(v, q, allowed); err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return Params{}, false
	}
	p, err := ParseParams(q)
	if err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return Params{}, false
	}
	return p, true
}

// recordJSON converts a record for the wire.
func recordJSON(epoch int, r flow.Record) FlowJSON {
	return FlowJSON{
		Epoch:   epoch,
		Src:     flow.IPString(r.Key.SrcIP),
		Sport:   r.Key.SrcPort,
		Dst:     flow.IPString(r.Key.DstIP),
		Dport:   r.Key.DstPort,
		Proto:   r.Key.Proto,
		Packets: r.Count,
	}
}

func (h *handler) topK(w http.ResponseWriter, r *http.Request, v apiVersion) {
	p, ok := decode(w, r, v, topkParams)
	if !ok {
		return
	}
	if h.cfg.TopK == nil {
		writeError(w, v, http.StatusNotFound, errors.New("no live top-k source configured"))
		return
	}
	// With a filter, the top k *matching* flows are wanted, which may sit
	// below the global top k: take the full snapshot (AppendTopK clamps an
	// oversized k) and cut to k after filtering.
	snapK := p.K
	if p.Filter != (recordstore.Filter{}) {
		snapK = 1 << 30
	}
	recs := h.cfg.TopK.AppendTopK(nil, snapK)
	resp := TopKResponse{K: p.K, Flows: make([]FlowJSON, 0, p.K)}
	for _, rec := range recs {
		if !p.Filter.Match(rec) {
			continue
		}
		resp.Flows = append(resp.Flows, recordJSON(0, rec))
		if len(resp.Flows) == p.K {
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) netwideTopK(w http.ResponseWriter, r *http.Request, v apiVersion) {
	p, ok := decode(w, r, v, topkParams)
	if !ok {
		return
	}
	if len(h.cfg.Netwide) == 0 {
		writeError(w, v, http.StatusNotFound, errors.New("no netwide sources configured"))
		return
	}

	// With a version source, serve repeats of the same request shape from
	// the memo until the sources' contents change.
	var (
		cacheKey nwKey
		version  uint64
		caching  = h.cfg.NetwideVersion != nil
	)
	if caching {
		cacheKey = nwKey{k: p.K, filter: p.Filter.String()}
		version = h.cfg.NetwideVersion()
		h.nw.mu.Lock()
		if h.nw.entries == nil || h.nw.version != version {
			h.nw.entries = make(map[nwKey]*TopKResponse)
			h.nw.version = version
		}
		if cached, hit := h.nw.entries[cacheKey]; hit {
			resp := *cached
			resp.Cached = true
			h.nw.mu.Unlock()
			writeJSON(w, http.StatusOK, resp)
			return
		}
		h.nw.mu.Unlock()
	}

	views := make([]netwide.View, len(h.cfg.Netwide))
	names := make([]string, len(h.cfg.Netwide))
	for i, s := range h.cfg.Netwide {
		views[i] = netwide.View{Name: s.Name, Records: s.Source.AppendSorted(nil)}
		names[i] = s.Name
	}
	merged := netwide.MergeSumInto(nil, views...)
	// Filter before selecting k, so a filtered query surfaces the top
	// matching flows rather than the matching subset of the global top k.
	kept := merged[:0]
	for _, rec := range merged {
		if p.Filter.Match(rec) {
			kept = append(kept, rec)
		}
	}
	topK := selectTopK(kept, p.K)
	resp := TopKResponse{K: p.K, Sources: names, Flows: make([]FlowJSON, 0, len(topK))}
	for _, rec := range topK {
		resp.Flows = append(resp.Flows, recordJSON(0, rec))
	}
	if caching {
		h.nw.mu.Lock()
		// Only admit while the version still matches: a rotation during
		// the merge would otherwise pin a stale response for the new
		// version's lifetime.
		if h.nw.version == version && len(h.nw.entries) < maxNetwideCacheEntries {
			stored := resp
			h.nw.entries[cacheKey] = &stored
		}
		h.nw.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) epochs(w http.ResponseWriter, r *http.Request, v apiVersion) {
	p, ok := decode(w, r, v, epochsParams)
	if !ok {
		return
	}
	src, release, ok := h.openStore(w, v)
	if !ok {
		return
	}
	defer release()

	lo, hi := 0, src.Epochs()
	if !p.From.IsZero() || !p.To.IsZero() {
		lo, hi = src.Range(p.From, p.To)
	}
	// The limit only bites when given explicitly: the legacy contract is
	// "list everything" and stays that way without a limit=.
	limited := false
	if r.URL.Query().Has("limit") && hi-lo > p.Limit {
		hi = lo + p.Limit
		limited = true
	}

	info, _ := src.(recordstore.InfoSource)
	resp := EpochsResponse{Epochs: make([]EpochJSON, 0, hi-lo), Limited: limited}
	if ts, ok := src.(recordstore.TruncatedSource); ok {
		resp.Truncated = ts.Truncated()
	}
	for i := lo; i < hi; i++ {
		ej := EpochJSON{
			Index:   i,
			Time:    src.EpochTime(i).Format(timeFormat),
			Records: src.EpochLen(i),
		}
		if info != nil {
			if ei := info.EpochInfo(i); ei.Tier != "" && ei.Tier != "hot" {
				ej.Tier = ei.Tier
				if ei.Span > 1 {
					ej.Span = ei.Span
					ej.TotalRecords = ei.TotalRecords
					ej.TotalPackets = ei.TotalPackets
				}
			}
		}
		resp.Epochs = append(resp.Epochs, ej)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) flows(w http.ResponseWriter, r *http.Request, v apiVersion) {
	p, ok := decode(w, r, v, flowsParams)
	if !ok {
		return
	}
	src, release, ok := h.openStore(w, v)
	if !ok {
		return
	}
	defer release()

	lo, hi, err := recordstore.SourceRange(src, p.Epoch, p.From, p.To)
	if err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return
	}
	info, _ := src.(recordstore.InfoSource)

	resp := FlowsResponse{}
	var buf []flow.Record
	for i := lo; i < hi && !resp.Limited; i++ {
		ep, err := src.AppendEpochAt(i, buf[:0])
		if err != nil {
			writeError(w, v, http.StatusInternalServerError, err)
			return
		}
		buf = ep.Records
		resp.EpochsScanned++
		if info != nil && info.EpochInfo(i).Tier == "rollup" {
			resp.RollupEpochs++
		}
		for _, rec := range ep.Records {
			if !p.Filter.Match(rec) {
				continue
			}
			resp.Matched++
			if len(resp.Flows) >= p.Limit {
				resp.Limited = true
				break
			}
			resp.Flows = append(resp.Flows, recordJSON(i, rec))
		}
	}
	if resp.Flows == nil {
		resp.Flows = []FlowJSON{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// openStore resolves the request's store; on failure the response is
// already written and ok is false.
func (h *handler) openStore(w http.ResponseWriter, v apiVersion) (src recordstore.EpochSource, release func() error, ok bool) {
	if h.cfg.Store == nil {
		writeError(w, v, http.StatusNotFound, errors.New("no store configured"))
		return nil, nil, false
	}
	src, release, err := h.cfg.Store()
	if err != nil {
		writeError(w, v, http.StatusServiceUnavailable, err)
		return nil, nil, false
	}
	return src, release, true
}

// selectTopK reorders recs by count descending (key tiebreak) in place
// and returns the first k.
func selectTopK(recs []flow.Record, k int) []flow.Record {
	slices.SortFunc(recs, func(a, b flow.Record) int {
		if a.Count != b.Count {
			if a.Count > b.Count {
				return -1
			}
			return 1
		}
		return flow.CompareKeys(a.Key, b.Key)
	})
	if k < len(recs) {
		recs = recs[:k]
	}
	return recs
}

// timeFormat is the epoch timestamp rendering, matching the flowquery CLI.
const timeFormat = "2006-01-02T15:04:05.000Z07:00"
