package query

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/flow"
	"repro/recordstore"
	"repro/topk"
)

// testStore writes a three-epoch store and returns its path.
func testStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "q.frec")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := recordstore.NewWriter(f)
	epochs := [][]flow.Record{
		{
			{Key: flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000063, DstPort: 443, Proto: 6}, Count: 1000},
			{Key: flow.Key{SrcIP: 0x0A000002, DstIP: 0x0A000063, DstPort: 80, Proto: 6}, Count: 50},
		},
		{
			{Key: flow.Key{SrcIP: 0x0A000003, DstIP: 0x0A000064, DstPort: 53, Proto: 17}, Count: 7},
		},
		{
			{Key: flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000063, DstPort: 443, Proto: 6}, Count: 900},
		},
	}
	for i, recs := range epochs {
		if err := w.WriteEpoch(time.Unix(int64(1700000000+300*i), 0), recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

// liveTracker builds a tracker holding a known distribution.
func liveTracker(t *testing.T) *topk.Tracker {
	t.Helper()
	tk, err := topk.NewTracker(64)
	if err != nil {
		t.Fatal(err)
	}
	tk.AddRecords([]flow.Record{
		{Key: flow.Key{SrcIP: 0x0A000001, DstPort: 443, Proto: 6}, Count: 500},
		{Key: flow.Key{SrcIP: 0x0A000002, DstPort: 80, Proto: 6}, Count: 300},
		{Key: flow.Key{SrcIP: 0x0A000003, DstPort: 53, Proto: 17}, Count: 10},
	})
	return tk
}

func get(t *testing.T, srv *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func TestHandlerEndpoints(t *testing.T) {
	store := testStore(t)
	tk := liveTracker(t)
	peer, _ := topk.NewTracker(64)
	peer.AddRecords([]flow.Record{
		{Key: flow.Key{SrcIP: 0x0A000001, DstPort: 443, Proto: 6}, Count: 400},
		{Key: flow.Key{SrcIP: 0x0A000009, DstPort: 22, Proto: 6}, Count: 350},
	})
	srv := httptest.NewServer(NewHandler(Config{
		TopK:  tk,
		Store: FileStore(store),
		Netwide: []NamedSource{
			{Name: "sw1", Source: tk},
			{Name: "sw2", Source: peer},
		},
	}))
	defer srv.Close()

	t.Run("topk", func(t *testing.T) {
		var resp TopKResponse
		if code := get(t, srv, "/topk?k=2", &resp); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(resp.Flows) != 2 {
			t.Fatalf("got %d flows, want 2", len(resp.Flows))
		}
		if resp.Flows[0].Src != "10.0.0.1" || resp.Flows[0].Packets != 500 {
			t.Errorf("rank 0 = %+v", resp.Flows[0])
		}
		if resp.Flows[1].Packets != 300 {
			t.Errorf("rank 1 = %+v", resp.Flows[1])
		}
	})

	t.Run("topk-filtered", func(t *testing.T) {
		var resp TopKResponse
		get(t, srv, "/topk?k=10&filter=proto%3D17", &resp)
		if len(resp.Flows) != 1 || resp.Flows[0].Proto != 17 {
			t.Fatalf("filtered flows = %+v", resp.Flows)
		}
		// The only proto-17 flow ranks below the global top 1: a filtered
		// k=1 query must still surface it (filter before the k cut).
		get(t, srv, "/topk?k=1&filter=proto%3D17", &resp)
		if len(resp.Flows) != 1 || resp.Flows[0].Proto != 17 {
			t.Fatalf("filtered k=1 flows = %+v", resp.Flows)
		}
	})

	t.Run("epochs", func(t *testing.T) {
		var resp EpochsResponse
		if code := get(t, srv, "/epochs", &resp); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(resp.Epochs) != 3 || resp.Truncated {
			t.Fatalf("epochs = %+v", resp)
		}
		if resp.Epochs[1].Records != 1 {
			t.Errorf("epoch 1 records = %d, want 1", resp.Epochs[1].Records)
		}
	})

	t.Run("flows-filter", func(t *testing.T) {
		var resp FlowsResponse
		get(t, srv, "/flows?filter=dport%3D443", &resp)
		if resp.EpochsScanned != 3 || resp.Matched != 2 {
			t.Fatalf("scanned %d matched %d, want 3/2", resp.EpochsScanned, resp.Matched)
		}
		if resp.Flows[0].Epoch != 0 || resp.Flows[1].Epoch != 2 {
			t.Errorf("flow epochs = %d,%d want 0,2", resp.Flows[0].Epoch, resp.Flows[1].Epoch)
		}
	})

	t.Run("flows-epoch", func(t *testing.T) {
		var resp FlowsResponse
		get(t, srv, "/flows?epoch=1", &resp)
		if resp.EpochsScanned != 1 || resp.Matched != 1 || resp.Flows[0].Dport != 53 {
			t.Fatalf("epoch=1 resp = %+v", resp)
		}
		if code := get(t, srv, "/flows?epoch=9", nil); code != http.StatusBadRequest {
			t.Errorf("out-of-range epoch gave status %d", code)
		}
	})

	t.Run("flows-time-range", func(t *testing.T) {
		var resp FlowsResponse
		// Epoch timestamps are 1700000000 + 300i; [1700000300, 1700000600).
		get(t, srv, "/flows?from=1700000300&to=1700000600", &resp)
		if resp.EpochsScanned != 1 || resp.Flows[0].Proto != 17 {
			t.Fatalf("time-range resp = %+v", resp)
		}
	})

	t.Run("flows-limit", func(t *testing.T) {
		var resp FlowsResponse
		get(t, srv, "/flows?limit=1", &resp)
		if !resp.Limited || len(resp.Flows) != 1 {
			t.Fatalf("limited resp = %+v", resp)
		}
	})

	t.Run("netwide", func(t *testing.T) {
		var resp TopKResponse
		if code := get(t, srv, "/netwide/topk?k=2", &resp); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if len(resp.Sources) != 2 {
			t.Fatalf("sources = %v", resp.Sources)
		}
		// 10.0.0.1:443 appears at both vantage points: 500+400.
		if resp.Flows[0].Src != "10.0.0.1" || resp.Flows[0].Packets != 900 {
			t.Fatalf("netwide rank 0 = %+v", resp.Flows[0])
		}
		if resp.Flows[1].Src != "10.0.0.9" || resp.Flows[1].Packets != 350 {
			t.Fatalf("netwide rank 1 = %+v", resp.Flows[1])
		}
		// Filtered netwide: the top matching flow below the global top k
		// must surface (filter applies before the k cut).
		get(t, srv, "/netwide/topk?k=1&filter=proto%3D17", &resp)
		if len(resp.Flows) != 1 || resp.Flows[0].Proto != 17 {
			t.Fatalf("filtered netwide = %+v", resp.Flows)
		}
	})

	t.Run("errors", func(t *testing.T) {
		if code := get(t, srv, "/topk?k=0", nil); code != http.StatusBadRequest {
			t.Errorf("k=0 gave %d", code)
		}
		if code := get(t, srv, "/topk?bogus=1", nil); code != http.StatusBadRequest {
			t.Errorf("unknown param gave %d", code)
		}
		if code := get(t, srv, "/flows?filter=nope", nil); code != http.StatusBadRequest {
			t.Errorf("bad filter gave %d", code)
		}
		resp, err := srv.Client().Post(srv.URL+"/topk", "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST gave %d", resp.StatusCode)
		}
	})
}

// TestHandlerUnconfigured: endpoints without a backing source 404 rather
// than panic.
func TestHandlerUnconfigured(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{}))
	defer srv.Close()
	for _, path := range []string{"/topk", "/epochs", "/flows", "/netwide/topk"} {
		if code := get(t, srv, path, nil); code != http.StatusNotFound {
			t.Errorf("%s on empty config gave %d, want 404", path, code)
		}
	}
}

// TestStaticStore serves from one long-lived mapping.
func TestStaticStore(t *testing.T) {
	m, err := recordstore.OpenMapped(testStore(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	srv := httptest.NewServer(NewHandler(Config{Store: StaticStore(m)}))
	defer srv.Close()
	var resp EpochsResponse
	get(t, srv, "/epochs", &resp)
	if len(resp.Epochs) != 3 {
		t.Fatalf("epochs = %+v", resp)
	}
}

// TestFileStoreSeesGrowth: the per-request opener reflects epochs appended
// after the server started — the live-collector serving mode.
func TestFileStoreSeesGrowth(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.frec")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := recordstore.NewWriter(f)
	if err := w.WriteEpoch(time.Unix(1, 0), []flow.Record{{Key: flow.Key{SrcIP: 1}, Count: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(NewHandler(Config{Store: FileStore(path)}))
	defer srv.Close()
	var resp EpochsResponse
	get(t, srv, "/epochs", &resp)
	if len(resp.Epochs) != 1 {
		t.Fatalf("first read: %d epochs, want 1", len(resp.Epochs))
	}

	if err := w.WriteEpoch(time.Unix(2, 0), []flow.Record{{Key: flow.Key{SrcIP: 2}, Count: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	get(t, srv, "/epochs", &resp)
	if len(resp.Epochs) != 2 {
		t.Fatalf("after growth: %d epochs, want 2", len(resp.Epochs))
	}
}

func TestParseParamsDefaults(t *testing.T) {
	p, err := ParseParams(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.K != DefaultK || p.Limit != DefaultLimit || p.Epoch != -1 {
		t.Fatalf("defaults = %+v", p)
	}
	if !p.From.IsZero() || !p.To.IsZero() {
		t.Fatalf("time defaults = %+v", p)
	}
}

// TestFlowsTimeRangeBoundaries pins the half-open [from, to) convention
// end to end through /flows: an epoch stamped exactly from is scanned,
// one stamped exactly to is not — agreeing with recordstore.Mapped.Range
// at the first and last epoch of the store.
func TestFlowsTimeRangeBoundaries(t *testing.T) {
	store := testStore(t) // epochs at 1700000000 + 300i, i in 0..2
	srv := httptest.NewServer(NewHandler(Config{Store: FileStore(store)}))
	defer srv.Close()

	at := func(e int) string {
		return time.Unix(int64(1700000000+300*e), 0).UTC().Format(time.RFC3339)
	}
	cases := []struct {
		name    string
		q       string
		scanned int
	}{
		{"from first to second scans only first", "from=" + at(0) + "&to=" + at(1), 1},
		{"from == first epoch is inclusive", "from=" + at(0), 3},
		{"to == last epoch is exclusive", "to=" + at(2), 2},
		{"to past last includes it", "to=" + at(3), 3},
		{"from == to is empty", "from=" + at(1) + "&to=" + at(1), 0},
		{"middle window", "from=" + at(1) + "&to=" + at(2), 1},
	}
	for _, tc := range cases {
		var resp FlowsResponse
		if code := get(t, srv, "/flows?"+tc.q, &resp); code != http.StatusOK {
			t.Fatalf("%s: status %d", tc.name, code)
		}
		if resp.EpochsScanned != tc.scanned {
			t.Errorf("%s: scanned %d epochs, want %d", tc.name, resp.EpochsScanned, tc.scanned)
		}
	}
}
