// Alert endpoints: the detection subsystem's read surface. /alerts
// serves the detector's recent-alert ring with kind/severity/epoch
// filtering; /changes serves the per-epoch heavy-change top-k lists;
// /netwide/alerts serves the cross-vantage correlator's promotions with
// their per-vantage evidence. All are ring snapshots — the detector and
// correlator keep evaluating on their drain goroutines while requests
// read, and none of the endpoints ever touches the ingest path.
package query

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"

	"repro/detect"
	"repro/flow"
	"repro/recordstore"
)

// AlertSource serves retained alerts and change summaries;
// *detect.Detector implements it.
type AlertSource interface {
	AppendAlerts(dst []detect.Alert) []detect.Alert
	AppendSummaries(dst []detect.ChangeSummary) []detect.ChangeSummary
}

// NetwideAlertSource serves retained cross-vantage alerts;
// *detect.Correlator implements it.
type NetwideAlertSource interface {
	AppendNetwideAlerts(dst []detect.NetwideAlert) []detect.NetwideAlert
}

// AlertParams are the decoded /alerts parameters.
type AlertParams struct {
	// Kind restricts to one alert kind (kind=); 0 means all.
	Kind detect.Kind
	// MinSeverity drops alerts below this severity (severity=); the
	// default SeverityInfo keeps everything.
	MinSeverity detect.Severity
	// Epoch restricts to one epoch index (epoch=); -1 means all.
	Epoch int
	// Limit caps the result (limit=, DefaultLimit if absent). The newest
	// alerts win when the cap bites.
	Limit int
	// Filter matches against the alert's offending key (filter=); the
	// minpkts term compares against the alert value.
	Filter recordstore.Filter
}

// ParseAlertParams decodes /alerts URL query values, with the same
// strictness contract as ParseParams: unknown keys and repeated keys are
// rejected.
func ParseAlertParams(q url.Values) (AlertParams, error) {
	p := AlertParams{MinSeverity: detect.SeverityInfo, Epoch: -1, Limit: DefaultLimit}
	for key, vals := range q {
		if len(vals) != 1 {
			return AlertParams{}, fmt.Errorf("query: parameter %q given %d times", key, len(vals))
		}
		val := vals[0]
		var err error
		switch key {
		case "kind":
			p.Kind, err = detect.ParseKind(val)
		case "severity":
			p.MinSeverity, err = detect.ParseSeverity(val)
		case "epoch":
			p.Epoch, err = parseBounded(val, 0, 1<<30)
		case "limit":
			p.Limit, err = parseBounded(val, 1, MaxLimit)
		case "filter":
			p.Filter, err = recordstore.ParseFilter(val)
		case "strict":
			// Consumed by the handler layer (checkStrict).
			_, err = strconv.ParseBool(val)
		default:
			return AlertParams{}, fmt.Errorf("query: unknown parameter %q", key)
		}
		if err != nil {
			return AlertParams{}, fmt.Errorf("query: bad %s: %w", key, err)
		}
	}
	return p, nil
}

// match reports whether the alert passes every constraint.
func (p AlertParams) match(a detect.Alert) bool {
	if p.Kind != 0 && a.Kind != p.Kind {
		return false
	}
	if a.Severity < p.MinSeverity {
		return false
	}
	if p.Epoch >= 0 && a.Epoch != p.Epoch {
		return false
	}
	if p.Filter != (recordstore.Filter{}) {
		if !p.Filter.Match(flow.Record{Key: a.Key, Count: clampCount(a.Value)}) {
			return false
		}
	}
	return true
}

// clampCount converts an alert value to the uint32 the record filter
// compares minpkts against.
func clampCount(v float64) uint32 {
	if v < 0 {
		v = -v
	}
	if v >= float64(^uint32(0)) {
		return ^uint32(0)
	}
	return uint32(v)
}

// AlertJSON is one alert on the wire.
type AlertJSON struct {
	Kind     string    `json:"kind"`
	Severity string    `json:"severity"`
	Epoch    int       `json:"epoch"`
	Time     string    `json:"time"`
	Flow     *FlowJSON `json:"flow,omitempty"` // heavy-change/forecast/netwide key
	Src      string    `json:"src,omitempty"`  // superspreader source
	Dst      string    `json:"dst,omitempty"`  // victim fan-in destination
	Metric   string    `json:"metric,omitempty"`
	Value    float64   `json:"value"`
	Baseline float64   `json:"baseline"`
	Score    float64   `json:"score"`
}

// AlertsResponse is the /alerts payload. Alerts are newest first.
type AlertsResponse struct {
	Matched int         `json:"matched"`
	Limited bool        `json:"limited"`
	Alerts  []AlertJSON `json:"alerts"`
}

// ChangeJSON is one heavy-change entry on the wire.
type ChangeJSON struct {
	Src   string `json:"src"`
	Sport uint16 `json:"sport"`
	Dst   string `json:"dst"`
	Dport uint16 `json:"dport"`
	Proto uint8  `json:"proto"`
	Prev  uint32 `json:"prev"`
	Cur   uint32 `json:"cur"`
	Delta int64  `json:"delta"`
}

// EpochChangesJSON is one epoch's change top-k.
type EpochChangesJSON struct {
	Epoch   int          `json:"epoch"`
	Time    string       `json:"time"`
	Changes []ChangeJSON `json:"changes"`
}

// ChangesResponse is the /changes payload. Epochs are newest first.
type ChangesResponse struct {
	Epochs []EpochChangesJSON `json:"epochs"`
}

func alertJSON(a detect.Alert) AlertJSON {
	out := AlertJSON{
		Kind:     a.Kind.String(),
		Severity: a.Severity.String(),
		Epoch:    a.Epoch,
		Time:     a.Time.UTC().Format(timeFormat),
		Metric:   a.Metric,
		Value:    a.Value,
		Baseline: a.Baseline,
		Score:    a.Score,
	}
	switch a.Kind {
	case detect.KindHeavyChange, detect.KindForecast, detect.KindNetwide:
		fj := recordJSON(a.Epoch, flow.Record{Key: a.Key, Count: clampCount(a.Value)})
		out.Flow = &fj
	case detect.KindSuperspreader:
		out.Src = flow.IPString(a.Key.SrcIP)
	case detect.KindVictimFanIn:
		out.Dst = flow.IPString(a.Key.DstIP)
	}
	return out
}

// EvidenceJSON is one vantage's contribution to a netwide alert on the
// wire.
type EvidenceJSON struct {
	Vantage string `json:"vantage"`
	Prev    uint32 `json:"prev"`
	Cur     uint32 `json:"cur"`
	Delta   int64  `json:"delta"`
	Alerted bool   `json:"alerted"`
}

// NetwideAlertJSON is one cross-vantage alert with its evidence.
type NetwideAlertJSON struct {
	AlertJSON
	Evidence []EvidenceJSON `json:"evidence"`
}

// NetwideAlertsResponse is the /netwide/alerts payload. Alerts are
// newest first.
type NetwideAlertsResponse struct {
	Matched int                `json:"matched"`
	Limited bool               `json:"limited"`
	Alerts  []NetwideAlertJSON `json:"alerts"`
}

func netwideAlertJSON(a detect.NetwideAlert) NetwideAlertJSON {
	out := NetwideAlertJSON{AlertJSON: alertJSON(a.Alert), Evidence: []EvidenceJSON{}}
	for _, ev := range a.Evidence {
		out.Evidence = append(out.Evidence, EvidenceJSON{
			Vantage: ev.Vantage,
			Prev:    ev.Prev,
			Cur:     ev.Cur,
			Delta:   ev.Delta(),
			Alerted: ev.Alerted,
		})
	}
	return out
}

func (h *handler) alerts(w http.ResponseWriter, r *http.Request, v apiVersion) {
	if h.cfg.Alerts == nil {
		writeError(w, v, http.StatusNotFound, errors.New("no alert source configured"))
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, v, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query()
	if err := checkStrict(v, q, alertParams); err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return
	}
	p, err := ParseAlertParams(q)
	if err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return
	}
	all := h.cfg.Alerts.AppendAlerts(nil)
	resp := AlertsResponse{Alerts: []AlertJSON{}}
	// Newest first: walk the ring backwards so the limit keeps the most
	// recent events.
	for i := len(all) - 1; i >= 0; i-- {
		if !p.match(all[i]) {
			continue
		}
		resp.Matched++
		if len(resp.Alerts) >= p.Limit {
			resp.Limited = true
			continue
		}
		resp.Alerts = append(resp.Alerts, alertJSON(all[i]))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) netwideAlerts(w http.ResponseWriter, r *http.Request, v apiVersion) {
	if h.cfg.NetwideAlerts == nil {
		writeError(w, v, http.StatusNotFound, errors.New("no netwide alert source configured"))
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, v, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query()
	if err := checkStrict(v, q, alertParams); err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return
	}
	p, err := ParseAlertParams(q)
	if err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return
	}
	all := h.cfg.NetwideAlerts.AppendNetwideAlerts(nil)
	resp := NetwideAlertsResponse{Alerts: []NetwideAlertJSON{}}
	for i := len(all) - 1; i >= 0; i-- {
		if !p.match(all[i].Alert) {
			continue
		}
		resp.Matched++
		if len(resp.Alerts) >= p.Limit {
			resp.Limited = true
			continue
		}
		resp.Alerts = append(resp.Alerts, netwideAlertJSON(all[i]))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (h *handler) changes(w http.ResponseWriter, r *http.Request, v apiVersion) {
	if h.cfg.Alerts == nil {
		writeError(w, v, http.StatusNotFound, errors.New("no alert source configured"))
		return
	}
	p, ok := decode(w, r, v, changeParams)
	if !ok {
		return
	}
	sums := h.cfg.Alerts.AppendSummaries(nil)
	resp := ChangesResponse{Epochs: []EpochChangesJSON{}}
	for i := len(sums) - 1; i >= 0; i-- {
		s := sums[i]
		if p.Epoch >= 0 && s.Epoch != p.Epoch {
			continue
		}
		ep := EpochChangesJSON{
			Epoch:   s.Epoch,
			Time:    s.Time.UTC().Format(timeFormat),
			Changes: []ChangeJSON{},
		}
		for _, c := range s.Changes {
			if !p.Filter.Match(flow.Record{Key: c.Key, Count: c.Cur}) {
				continue
			}
			ep.Changes = append(ep.Changes, ChangeJSON{
				Src:   flow.IPString(c.Key.SrcIP),
				Sport: c.Key.SrcPort,
				Dst:   flow.IPString(c.Key.DstIP),
				Dport: c.Key.DstPort,
				Proto: c.Key.Proto,
				Prev:  c.Prev,
				Cur:   c.Cur,
				Delta: c.Signed(),
			})
			if len(ep.Changes) >= p.K {
				break
			}
		}
		resp.Epochs = append(resp.Epochs, ep)
		if len(resp.Epochs) >= p.Limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
