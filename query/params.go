// Request parameter decoding, kept separate from the handlers so the
// HTTP-surface → filter translation is a pure function the fuzz targets
// can hammer without a server.
package query

import (
	"fmt"
	"net/url"
	"strconv"
	"time"

	"repro/recordstore"
)

// Limits and defaults of the query surface.
const (
	// DefaultK is the /topk result size when k is not given.
	DefaultK = 10
	// MaxK caps /topk result sizes.
	MaxK = 10000
	// DefaultLimit is the /flows match cap when limit is not given.
	DefaultLimit = 1000
	// MaxLimit caps /flows result sizes.
	MaxLimit = 100000
)

// Params are the decoded parameters of the query endpoints.
type Params struct {
	// K is the top-k result size (k=, DefaultK if absent).
	K int
	// Filter is the record filter (filter=, recordstore expression).
	Filter recordstore.Filter
	// Epoch restricts /flows to one epoch index (epoch=); -1 means all.
	Epoch int
	// Limit caps /flows matches (limit=, DefaultLimit if absent).
	Limit int
	// From/To bound /flows by epoch timestamp (from=, to=; RFC 3339 or
	// unix seconds). Zero values mean unbounded. The interval is
	// half-open, [From, To): an epoch stamped exactly From is included,
	// one stamped exactly To is excluded — the recordstore.Mapped.Range
	// convention, so adjacent windows (to == next from) tile the store
	// without overlap or gap.
	From, To time.Time
}

// ParseParams decodes URL query values into Params, applying the
// defaults and caps above. Unknown keys are rejected so typos fail loudly
// instead of silently matching everything.
func ParseParams(q url.Values) (Params, error) {
	p := Params{K: DefaultK, Epoch: -1, Limit: DefaultLimit}
	for key, vals := range q {
		if len(vals) != 1 {
			return Params{}, fmt.Errorf("query: parameter %q given %d times", key, len(vals))
		}
		val := vals[0]
		var err error
		switch key {
		case "k":
			p.K, err = parseBounded(val, 1, MaxK)
		case "filter":
			p.Filter, err = recordstore.ParseFilter(val)
		case "epoch":
			p.Epoch, err = parseBounded(val, 0, 1<<30)
		case "limit":
			p.Limit, err = parseBounded(val, 1, MaxLimit)
		case "from":
			p.From, err = parseTime(val)
		case "to":
			p.To, err = parseTime(val)
		case "strict":
			// Strictness gate, consumed by the handler layer (checkStrict);
			// validated here so strict=bogus still fails loudly.
			_, err = strconv.ParseBool(val)
		default:
			return Params{}, fmt.Errorf("query: unknown parameter %q", key)
		}
		if err != nil {
			return Params{}, fmt.Errorf("query: bad %s: %w", key, err)
		}
	}
	return p, nil
}

// parseBounded parses a decimal integer in [lo, hi].
func parseBounded(s string, lo, hi int) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	if n < lo || n > hi {
		return 0, fmt.Errorf("%d outside [%d, %d]", n, lo, hi)
	}
	return n, nil
}

// parseTime accepts RFC 3339 or unix seconds.
func parseTime(s string) (time.Time, error) {
	if t, err := time.Parse(time.RFC3339, s); err == nil {
		return t, nil
	}
	secs, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("%q is neither RFC 3339 nor unix seconds", s)
	}
	return time.Unix(secs, 0).UTC(), nil
}
