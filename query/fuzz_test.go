package query

import (
	"net/url"
	"testing"

	"repro/detect"
	"repro/recordstore"
	"repro/telemetry/events"
)

// FuzzParseQuery pins the HTTP-parameter → filter translation against
// recordstore.ParseFilter: the handler-side parse must accept exactly the
// expressions the library accepts, produce the identical filter, and the
// canonical rendering must round-trip through another parse. Corpus seeds
// come from the flowquery CLI tests.
func FuzzParseQuery(f *testing.F) {
	// Seeds: the filter expressions the flowquery CLI tests exercise, plus
	// edge shapes.
	f.Add("proto=6")
	f.Add("src=10.0.0.1,dport=443,minpkts=10")
	f.Add("dport=443")
	f.Add("proto=17")
	f.Add("bogus")
	f.Add("")
	f.Add("minpkts=,,,")
	f.Add("SRC=10.0.0.1 , PROTO=6")
	f.Add("sport=65535,dport=0")
	f.Fuzz(func(t *testing.T, expr string) {
		direct, directErr := recordstore.ParseFilter(expr)

		p, paramErr := ParseParams(url.Values{"filter": {expr}})
		if (directErr == nil) != (paramErr == nil) {
			t.Fatalf("ParseFilter err=%v but ParseParams err=%v for %q", directErr, paramErr, expr)
		}
		if directErr != nil {
			return
		}
		if p.Filter != direct {
			t.Fatalf("filter %q: params %+v, direct %+v", expr, p.Filter, direct)
		}

		// Round trip: the canonical rendering reparses to the same filter.
		again, err := recordstore.ParseFilter(direct.String())
		if err != nil {
			t.Fatalf("canonical %q failed to reparse: %v", direct.String(), err)
		}
		if again != direct {
			t.Fatalf("round trip %q -> %q: got %+v, want %+v", expr, direct.String(), again, direct)
		}
	})
}

// FuzzParseParams must never panic on arbitrary URL queries.
func FuzzParseParams(f *testing.F) {
	f.Add("k=10&filter=proto%3D6")
	f.Add("epoch=2&limit=5")
	f.Add("from=2024-01-01T00:00:00Z&to=1700000000")
	f.Add("k=-1")
	f.Add("k=10&k=11")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		_, _ = ParseParams(q)
	})
}

// FuzzParseAlertParams must never panic, and every accepted parameter
// set must be internally consistent: kind/severity values round-trip
// through their String forms and the bounds hold.
func FuzzParseAlertParams(f *testing.F) {
	f.Add("kind=heavychange&severity=warning")
	f.Add("kind=superspreader&epoch=3&limit=10")
	f.Add("kind=anomaly&filter=src%3D10.0.0.1")
	f.Add("severity=critical&severity=info")
	f.Add("kind=")
	f.Add("since=5")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		p, err := ParseAlertParams(q)
		if err != nil {
			return
		}
		if p.Kind != 0 {
			if again, err := detect.ParseKind(p.Kind.String()); err != nil || again != p.Kind {
				t.Fatalf("kind %v does not round-trip: %v", p.Kind, err)
			}
		}
		if again, err := detect.ParseSeverity(p.MinSeverity.String()); err != nil || again != p.MinSeverity {
			t.Fatalf("severity %v does not round-trip: %v", p.MinSeverity, err)
		}
		if p.Limit < 1 || p.Limit > MaxLimit {
			t.Fatalf("limit %d out of bounds", p.Limit)
		}
		if p.Epoch < -1 {
			t.Fatalf("epoch %d out of bounds", p.Epoch)
		}
	})
}

// FuzzParseEventParams must never panic, and every accepted parameter set
// must be internally consistent: kinds in the mask round-trip through
// their names, the severity round-trips, and the bounds hold.
func FuzzParseEventParams(f *testing.F) {
	f.Add("kind=alert&severity=warning")
	f.Add("kind=alert,epoch,recovery&vantage=live")
	f.Add("after=42&limit=100")
	f.Add("kind=alert&kind=epoch")
	f.Add("kind=")
	f.Add("severity=nope")
	f.Add("after=-1")
	f.Add("after=99999999999999999999")
	f.Fuzz(func(t *testing.T, raw string) {
		q, err := url.ParseQuery(raw)
		if err != nil {
			return
		}
		p, err := ParseEventParams(q)
		if err != nil {
			return
		}
		if p.Filter.Kinds != 0 {
			any := false
			for k := events.KindLog; k <= events.KindDegraded; k++ {
				if !p.Filter.Kinds.Has(k) {
					continue
				}
				any = true
				if again, err := events.ParseKind(k.String()); err != nil || again != k {
					t.Fatalf("kind %v does not round-trip: %v", k, err)
				}
			}
			if !any {
				t.Fatalf("non-empty kind mask %#x matches no kind", uint16(p.Filter.Kinds))
			}
		}
		if p.Filter.MinSeverity != 0 {
			if again, err := events.ParseSeverity(p.Filter.MinSeverity.String()); err != nil || again != p.Filter.MinSeverity {
				t.Fatalf("severity %v does not round-trip: %v", p.Filter.MinSeverity, err)
			}
		}
		if p.Limit < 1 || p.Limit > MaxLimit {
			t.Fatalf("limit %d out of bounds", p.Limit)
		}
		if p.After < -1 {
			t.Fatalf("after %d out of bounds", p.After)
		}
	})
}
