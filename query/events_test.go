package query

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/telemetry/events"
)

func TestParseEventParams(t *testing.T) {
	p, err := ParseEventParams(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if p.After != -1 || p.Limit != DefaultLimit || p.Filter != (events.Filter{}) {
		t.Fatalf("defaults: %+v", p)
	}

	p, err = ParseEventParams(url.Values{
		"kind":     {"alert,epoch"},
		"severity": {"warning"},
		"vantage":  {"v1"},
		"after":    {"7"},
		"limit":    {"5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Filter.Kinds.Has(events.KindAlert) || !p.Filter.Kinds.Has(events.KindEpoch) || p.Filter.Kinds.Has(events.KindLog) {
		t.Fatalf("kinds: %#x", uint16(p.Filter.Kinds))
	}
	if p.Filter.MinSeverity != events.SeverityWarning || p.Filter.Vantage != "v1" || p.After != 7 || p.Limit != 5 {
		t.Fatalf("parsed: %+v", p)
	}

	for _, bad := range []url.Values{
		{"kind": {"nope"}},
		{"kind": {"alert", "epoch"}},
		{"severity": {"loud"}},
		{"after": {"-2"}},
		{"after": {"xyz"}},
		{"limit": {"0"}},
		{"k": {"10"}},
	} {
		if _, err := ParseEventParams(bad); err == nil {
			t.Errorf("accepted %v", bad)
		}
	}
}

// sseFrame is one parsed SSE event frame.
type sseFrame struct {
	id    uint64
	event string
	data  string
}

// readFrames consumes SSE frames from the stream until n frames arrived or
// the context expired, skipping comments.
func readFrames(t *testing.T, ctx context.Context, body *bufio.Scanner, n int) []sseFrame {
	t.Helper()
	var (
		frames []sseFrame
		cur    sseFrame
	)
	lines := make(chan string)
	go func() {
		defer close(lines)
		for body.Scan() {
			select {
			case lines <- body.Text():
			case <-ctx.Done():
				return
			}
		}
	}()
	for len(frames) < n {
		select {
		case <-ctx.Done():
			t.Fatalf("timeout after %d/%d frames", len(frames), n)
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("stream ended after %d/%d frames", len(frames), n)
			}
			switch {
			case line == "":
				if cur.data != "" {
					frames = append(frames, cur)
				}
				cur = sseFrame{}
			case strings.HasPrefix(line, ": "):
				// comment (heartbeat / drop accounting)
			case strings.HasPrefix(line, "id: "):
				id, err := strconv.ParseUint(line[4:], 10, 64)
				if err != nil {
					t.Fatalf("bad id line %q: %v", line, err)
				}
				cur.id = id
			case strings.HasPrefix(line, "event: "):
				cur.event = line[7:]
			case strings.HasPrefix(line, "data: "):
				cur.data = line[6:]
			}
		}
	}
	return frames
}

func sseGet(t *testing.T, ctx context.Context, rawURL string, lastEventID string) (*http.Response, *bufio.Scanner) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	return resp, bufio.NewScanner(resp.Body)
}

// TestEventsSSEResume is the Last-Event-ID contract across a client
// reconnect: a client that read part of the stream, disconnected, and
// reconnected with its last seen id receives exactly the events after it.
func TestEventsSSEResume(t *testing.T) {
	bus := events.NewBus(64)
	srv := httptest.NewServer(NewHandler(Config{Events: bus, EventHeartbeat: 20 * time.Millisecond}))
	defer srv.Close()

	for i := 0; i < 5; i++ {
		bus.Publish(events.Event{Kind: events.KindEpoch, Epoch: i, Msg: "epoch drained"})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	// First connection: replay from the start (after=0), read 2 frames,
	// disconnect.
	conn1, cancel1 := context.WithCancel(ctx)
	resp, sc := sseGet(t, conn1, srv.URL+"/events?after=0", "")
	got := readFrames(t, ctx, sc, 2)
	cancel1()
	resp.Body.Close()
	if got[0].id != 1 || got[1].id != 2 {
		t.Fatalf("first connection ids: %+v", got)
	}
	if got[0].event != "epoch" {
		t.Fatalf("event name = %q", got[0].event)
	}

	// Reconnect with Last-Event-ID: 2 — the remaining 3 replay, then a
	// live event follows.
	resp2, sc2 := sseGet(t, ctx, srv.URL+"/events", strconv.FormatUint(got[1].id, 10))
	defer resp2.Body.Close()
	bus.Publish(events.Event{Kind: events.KindAlert, Severity: events.SeverityCritical, Epoch: 5, Msg: "alert: heavychange"})
	frames := readFrames(t, ctx, sc2, 4)
	for i, f := range frames {
		if f.id != uint64(3+i) {
			t.Fatalf("resumed frame %d: id = %d, want %d", i, f.id, 3+i)
		}
	}
	if frames[3].event != "alert" {
		t.Fatalf("live frame event = %q", frames[3].event)
	}
	var ev events.Event
	if err := json.Unmarshal([]byte(frames[3].data), &ev); err != nil {
		t.Fatalf("data not JSON: %v", err)
	}
	if ev.Kind != events.KindAlert || ev.Seq != 6 || ev.Epoch != 5 {
		t.Fatalf("decoded event: %+v", ev)
	}
}

// TestEventsSSEFilter verifies kind/severity filtering applies to both
// replay and live delivery.
func TestEventsSSEFilter(t *testing.T) {
	bus := events.NewBus(64)
	srv := httptest.NewServer(NewHandler(Config{Events: bus, EventHeartbeat: 20 * time.Millisecond}))
	defer srv.Close()

	bus.Publish(events.Event{Kind: events.KindLog, Msg: "noise"})
	bus.Publish(events.Event{Kind: events.KindAlert, Severity: events.SeverityWarning, Msg: "keep 1"})

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	resp, sc := sseGet(t, ctx, srv.URL+"/events?after=0&kind=alert", "")
	defer resp.Body.Close()

	bus.Publish(events.Event{Kind: events.KindEpoch, Msg: "noise"})
	bus.Publish(events.Event{Kind: events.KindAlert, Severity: events.SeverityCritical, Msg: "keep 2"})

	frames := readFrames(t, ctx, sc, 2)
	if frames[0].id != 2 || frames[1].id != 4 {
		t.Fatalf("filtered ids: %+v", frames)
	}
	for _, f := range frames {
		if f.event != "alert" {
			t.Fatalf("frame: %+v", f)
		}
	}
}

func TestEventsEndpointErrors(t *testing.T) {
	// No bus configured: 404.
	srv := httptest.NewServer(NewHandler(Config{}))
	defer srv.Close()
	for _, path := range []string{"/events", "/trace/epochs"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s without source: status %d", path, resp.StatusCode)
		}
	}

	bus := events.NewBus(8)
	srv2 := httptest.NewServer(NewHandler(Config{Events: bus}))
	defer srv2.Close()
	for _, q := range []string{"?kind=bogus", "?after=zzz", "?bogus=1"} {
		resp, err := http.Get(srv2.URL + "/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("/events%s: status %d", q, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, srv2.URL+"/events", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad Last-Event-ID: status %d", resp.StatusCode)
	}
}

func TestTraceEpochs(t *testing.T) {
	tr := events.NewTracer(8)
	for i := 0; i < 5; i++ {
		v := "a"
		if i%2 == 1 {
			v = "b"
		}
		tr.Record(events.EpochTrace{
			Vantage: v, Epoch: i, Records: 10 * i,
			Stages:  []events.StageTiming{{Name: "store_write", Ns: 100}, {Name: "detect", Ns: 200}},
			TotalNs: 300,
		})
	}
	srv := httptest.NewServer(NewHandler(Config{Trace: tr}))
	defer srv.Close()

	get := func(q string) TraceResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/trace/epochs" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var trr TraceResponse
		if err := json.NewDecoder(resp.Body).Decode(&trr); err != nil {
			t.Fatal(err)
		}
		return trr
	}

	all := get("")
	if len(all.Epochs) != 5 || all.Epochs[0].Epoch != 4 || all.Epochs[4].Epoch != 0 {
		t.Fatalf("all: %+v", all.Epochs)
	}
	if len(all.Epochs[0].Stages) != 2 || all.Epochs[0].Stages[0].Name != "store_write" {
		t.Fatalf("stages: %+v", all.Epochs[0].Stages)
	}

	b := get("?vantage=b&limit=1")
	if len(b.Epochs) != 1 || b.Epochs[0].Epoch != 3 || b.Epochs[0].Vantage != "b" {
		t.Fatalf("filtered: %+v", b.Epochs)
	}
}
