// The live ops surface: /events streams the pipeline event bus over SSE
// (resumable via Last-Event-ID), /trace/epochs renders the last K epoch
// stage timelines. Both read telemetry/events state owned by the daemon;
// neither touches the ingest path.
package query

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/telemetry/events"
)

const (
	// DefaultEventHeartbeat is the SSE comment-ping interval keeping idle
	// streams alive through proxies (overridable via Config.EventHeartbeat).
	DefaultEventHeartbeat = 15 * time.Second
	// eventQueue is the per-client bounded queue depth: a stalled client
	// misses events past this backlog (with drop accounting) instead of
	// backpressuring the publisher.
	eventQueue = 256
)

// EventParams are the decoded parameters of /events and /trace/epochs.
type EventParams struct {
	// Filter selects events by kind (kind=, comma-separated), minimum
	// severity (severity=) and vantage label (vantage=).
	Filter events.Filter
	// After resumes the stream from a sequence number (after=, also set
	// by the Last-Event-ID header); -1 (the default) streams live only.
	After int64
	// Limit caps /trace/epochs results (limit=, DefaultLimit if absent).
	Limit int
}

// ParseEventParams decodes URL query values for the event endpoints,
// rejecting unknown and repeated keys like the rest of the query surface.
func ParseEventParams(q url.Values) (EventParams, error) {
	p := EventParams{After: -1, Limit: DefaultLimit}
	for key, vals := range q {
		if len(vals) != 1 {
			return EventParams{}, fmt.Errorf("query: parameter %q given %d times", key, len(vals))
		}
		val := vals[0]
		var err error
		switch key {
		case "kind":
			p.Filter.Kinds, err = parseKinds(val)
		case "severity":
			p.Filter.MinSeverity, err = events.ParseSeverity(val)
		case "vantage":
			p.Filter.Vantage = val
		case "after":
			var n uint64
			n, err = strconv.ParseUint(val, 10, 63)
			p.After = int64(n)
		case "limit":
			p.Limit, err = parseBounded(val, 1, MaxLimit)
		case "strict":
			// Consumed by the handler layer (checkStrict).
			_, err = strconv.ParseBool(val)
		default:
			return EventParams{}, fmt.Errorf("query: unknown parameter %q", key)
		}
		if err != nil {
			return EventParams{}, fmt.Errorf("query: bad %s: %w", key, err)
		}
	}
	return p, nil
}

// parseKinds decodes a comma-separated kind list into a bitmask.
func parseKinds(val string) (events.KindSet, error) {
	var set events.KindSet
	for _, name := range strings.Split(val, ",") {
		k, err := events.ParseKind(strings.TrimSpace(name))
		if err != nil {
			return 0, err
		}
		set = set.With(k)
	}
	return set, nil
}

// events streams the bus over SSE. Each event is one `id:`/`event:`/`data:`
// frame whose id is the bus sequence number, so EventSource reconnects
// resume via Last-Event-ID; events missed on a stalled connection are
// reported in `: dropped N` comments rather than silently skipped.
func (h *handler) events(w http.ResponseWriter, r *http.Request, v apiVersion) {
	if h.cfg.Events == nil {
		writeError(w, v, http.StatusNotFound, errors.New("no event bus configured"))
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, v, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query()
	if err := checkStrict(v, q, eventParams); err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return
	}
	p, err := ParseEventParams(q)
	if err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return
	}
	if lid := r.Header.Get("Last-Event-ID"); lid != "" {
		n, err := strconv.ParseUint(lid, 10, 63)
		if err != nil {
			writeError(w, v, http.StatusBadRequest, fmt.Errorf("query: bad Last-Event-ID: %w", err))
			return
		}
		p.After = int64(n)
	}

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	// The daemons set a server-wide write timeout sized for request/
	// response endpoints; this stream lives until the client leaves.
	_ = rc.SetWriteDeadline(time.Time{})
	if err := rc.Flush(); err != nil {
		return
	}

	sub := h.cfg.Events.Subscribe(p.Filter, p.After, eventQueue)
	defer h.cfg.Events.Unsubscribe(sub)

	hb := h.cfg.EventHeartbeat
	if hb <= 0 {
		hb = DefaultEventHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()

	var reportedDrops uint64
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if d := sub.Dropped(); d != reportedDrops {
				if _, err := fmt.Fprintf(w, ": dropped %d\n\n", d-reportedDrops); err != nil {
					return
				}
				reportedDrops = d
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case <-ticker.C:
			// Comment ping; carries the head seq so a client can notice
			// it is behind without waiting for the next event.
			if _, err := fmt.Fprintf(w, ": heartbeat seq=%d\n\n", h.cfg.Events.LastSeq()); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}

// TraceResponse is the /trace/epochs payload. Epochs are newest first.
type TraceResponse struct {
	Epochs []events.EpochTrace `json:"epochs"`
}

// traceEpochs serves the retained epoch timelines, newest first, honoring
// vantage= and limit=.
func (h *handler) traceEpochs(w http.ResponseWriter, r *http.Request, v apiVersion) {
	if h.cfg.Trace == nil {
		writeError(w, v, http.StatusNotFound, errors.New("no epoch tracer configured"))
		return
	}
	if r.Method != http.MethodGet {
		writeError(w, v, http.StatusMethodNotAllowed, errors.New("GET only"))
		return
	}
	q := r.URL.Query()
	if err := checkStrict(v, q, traceParams); err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return
	}
	p, err := ParseEventParams(q)
	if err != nil {
		writeError(w, v, http.StatusBadRequest, err)
		return
	}
	all := h.cfg.Trace.Append(nil)
	out := make([]events.EpochTrace, 0, len(all))
	for i := len(all) - 1; i >= 0 && len(out) < p.Limit; i-- {
		if p.Filter.Vantage != "" && all[i].Vantage != p.Filter.Vantage {
			continue
		}
		out = append(out, all[i])
	}
	writeJSON(w, http.StatusOK, TraceResponse{Epochs: out})
}
