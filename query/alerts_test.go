package query

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"repro/detect"
	"repro/flow"
)

// testDetector builds a detector holding a known alert history: a heavy
// change and a superspreader at epoch 1, a recovery change at epoch 2.
func testDetector(t *testing.T) *detect.Detector {
	t.Helper()
	// Change + spreader stages only: the fixture pins exact alert counts,
	// and the 9000-packet spike would also trip the forecast CUSUM.
	d, err := detect.NewDetector(detect.Config{
		Stages:         detect.StageChange | detect.StageSpreader,
		ChangeMinDelta: 100, FanoutThreshold: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000063, DstPort: 443, Proto: 6}
	base := []flow.Record{{Key: hot, Count: 100}}
	spike := []flow.Record{{Key: hot, Count: 9100}}
	for i := 0; i < 100; i++ {
		spike = append(spike, flow.Record{
			Key:   flow.Key{SrcIP: 0x01010101, DstIP: 0xE0000000 | uint32(i), DstPort: 80, Proto: 6},
			Count: 1,
		})
	}
	at := time.Unix(1700000000, 0)
	d.Observe(0, at, base)
	d.Observe(1, at.Add(time.Minute), spike)
	d.Observe(2, at.Add(2*time.Minute), base)
	return d
}

func TestAlertsEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{Alerts: testDetector(t)}))
	defer srv.Close()

	var resp AlertsResponse
	if code := get(t, srv, "/alerts", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	// Epoch 1: heavy change + superspreader; epoch 2: recovery change.
	if resp.Matched != 3 || len(resp.Alerts) != 3 {
		t.Fatalf("matched %d alerts: %+v", resp.Matched, resp.Alerts)
	}
	// Newest first: the recovery leads.
	if resp.Alerts[0].Epoch != 2 || resp.Alerts[0].Kind != "heavychange" {
		t.Errorf("newest alert = %+v", resp.Alerts[0])
	}
	if resp.Alerts[0].Flow == nil || resp.Alerts[0].Flow.Src != "10.0.0.1" {
		t.Errorf("change alert missing flow: %+v", resp.Alerts[0])
	}

	t.Run("kind filter", func(t *testing.T) {
		var r AlertsResponse
		get(t, srv, "/alerts?kind=superspreader", &r)
		if r.Matched != 1 || r.Alerts[0].Src != "1.1.1.1" {
			t.Errorf("superspreader filter: %+v", r)
		}
	})
	t.Run("severity filter", func(t *testing.T) {
		var r AlertsResponse
		get(t, srv, "/alerts?severity=critical", &r)
		// The 9000-packet delta is 90x the 100 threshold: critical. The
		// recovery too. The 100-fanout spreader is under 4x: warning.
		if r.Matched != 2 {
			t.Errorf("critical filter matched %d: %+v", r.Matched, r.Alerts)
		}
	})
	t.Run("epoch filter", func(t *testing.T) {
		var r AlertsResponse
		get(t, srv, "/alerts?epoch=1", &r)
		if r.Matched != 2 {
			t.Errorf("epoch filter matched %d", r.Matched)
		}
	})
	t.Run("flow filter", func(t *testing.T) {
		var r AlertsResponse
		get(t, srv, "/alerts?filter=src%3D10.0.0.1", &r)
		if r.Matched != 2 {
			t.Errorf("flow filter matched %d: %+v", r.Matched, r.Alerts)
		}
	})
	t.Run("limit keeps newest", func(t *testing.T) {
		var r AlertsResponse
		get(t, srv, "/alerts?limit=1", &r)
		if r.Matched != 3 || !r.Limited || len(r.Alerts) != 1 || r.Alerts[0].Epoch != 2 {
			t.Errorf("limited listing: %+v", r)
		}
	})
	t.Run("bad params", func(t *testing.T) {
		if code := get(t, srv, "/alerts?kind=bogus", nil); code != http.StatusBadRequest {
			t.Errorf("bogus kind -> %d", code)
		}
		if code := get(t, srv, "/alerts?since=1", nil); code != http.StatusBadRequest {
			t.Errorf("unknown param -> %d", code)
		}
	})
}

func TestChangesEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{Alerts: testDetector(t)}))
	defer srv.Close()

	var resp ChangesResponse
	if code := get(t, srv, "/changes", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(resp.Epochs) != 2 {
		t.Fatalf("epochs listed: %+v", resp.Epochs)
	}
	// Newest first.
	if resp.Epochs[0].Epoch != 2 || resp.Epochs[1].Epoch != 1 {
		t.Errorf("order: %d, %d", resp.Epochs[0].Epoch, resp.Epochs[1].Epoch)
	}
	c := resp.Epochs[1].Changes
	if len(c) != 1 || c[0].Delta != 9000 || c[0].Prev != 100 || c[0].Cur != 9100 {
		t.Errorf("epoch 1 changes: %+v", c)
	}
	if resp.Epochs[0].Changes[0].Delta != -9000 {
		t.Errorf("recovery delta: %+v", resp.Epochs[0].Changes)
	}

	t.Run("epoch param", func(t *testing.T) {
		var r ChangesResponse
		get(t, srv, "/changes?epoch=1", &r)
		if len(r.Epochs) != 1 || r.Epochs[0].Epoch != 1 {
			t.Errorf("epoch=1: %+v", r.Epochs)
		}
	})
	t.Run("filter", func(t *testing.T) {
		var r ChangesResponse
		get(t, srv, "/changes?filter=dport%3D22", &r)
		for _, ep := range r.Epochs {
			if len(ep.Changes) != 0 {
				t.Errorf("dport=22 matched: %+v", ep.Changes)
			}
		}
	})
}

// TestAlertKindsOnTheWire pins the JSON rendering of the per-key alert
// kinds: forecast and netwide carry the full flow, victim fan-in the
// destination address.
func TestAlertKindsOnTheWire(t *testing.T) {
	d, err := detect.NewDetector(detect.Config{
		Stages:            detect.StageForecast | detect.StageFanIn,
		FanInThreshold:    64,
		ForecastMinCount:  10,
		ForecastThreshold: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	ramp := flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000002, DstPort: 443, Proto: 6}
	at := time.Unix(1700000000, 0)
	d.Observe(0, at, []flow.Record{{Key: ramp, Count: 100}})
	// Epoch 1: the ramp key jumps past the CUSUM threshold, and a victim
	// collects 100 distinct sources.
	recs := []flow.Record{{Key: ramp, Count: 5000}}
	for i := 0; i < 100; i++ {
		recs = append(recs, flow.Record{
			Key:   flow.Key{SrcIP: 0x0B000000 | uint32(i), DstIP: 0x08080808, DstPort: 53, Proto: 17},
			Count: 1,
		})
	}
	d.Observe(1, at.Add(time.Minute), recs)

	srv := httptest.NewServer(NewHandler(Config{Alerts: d}))
	defer srv.Close()

	var fc AlertsResponse
	get(t, srv, "/alerts?kind=forecast", &fc)
	if fc.Matched != 1 || fc.Alerts[0].Flow == nil || fc.Alerts[0].Flow.Src != "10.0.0.1" {
		t.Errorf("forecast on the wire: %+v", fc.Alerts)
	}
	var fi AlertsResponse
	get(t, srv, "/alerts?kind=victimfanin", &fi)
	if fi.Matched != 1 || fi.Alerts[0].Dst != "8.8.8.8" || fi.Alerts[0].Src != "" {
		t.Errorf("fan-in on the wire: %+v", fi.Alerts)
	}
	t.Run("dst filter matches fan-in key", func(t *testing.T) {
		var r AlertsResponse
		get(t, srv, "/alerts?filter=dst%3D8.8.8.8", &r)
		if r.Matched != 1 || r.Alerts[0].Kind != "victimfanin" {
			t.Errorf("dst filter: %+v", r)
		}
	})
}

// testCorrelator drives a real correlator to one promoted epoch: a key
// alerting at both vantages.
func testCorrelator(t *testing.T) *detect.Correlator {
	t.Helper()
	c, err := detect.NewCorrelator(detect.CorrelatorConfig{
		Vantages: []string{"sw1", "sw2"}, Quorum: 2, VantageMinDelta: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	hot := flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000063, DstPort: 443, Proto: 6}
	at := time.Unix(1700000000, 0)
	for _, v := range []string{"sw1", "sw2"} {
		c.ObserveSummary(v, detect.ChangeSummary{
			Epoch: 3, Time: at,
			Changes: []detect.Change{{Key: hot, Prev: 100, Cur: 2500}},
		})
	}
	return c
}

func TestNetwideAlertsEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{NetwideAlerts: testCorrelator(t)}))
	defer srv.Close()

	var resp NetwideAlertsResponse
	if code := get(t, srv, "/netwide/alerts", &resp); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Matched != 1 || len(resp.Alerts) != 1 {
		t.Fatalf("matched %d: %+v", resp.Matched, resp.Alerts)
	}
	a := resp.Alerts[0]
	if a.Kind != "netwide" || a.Epoch != 3 || a.Flow == nil || a.Flow.Src != "10.0.0.1" {
		t.Errorf("netwide alert: %+v", a)
	}
	if a.Value != 4800 { // 2400 per vantage, merged
		t.Errorf("merged delta %v, want 4800", a.Value)
	}
	if len(a.Evidence) != 2 || a.Evidence[0].Vantage != "sw1" || !a.Evidence[0].Alerted ||
		a.Evidence[0].Delta != 2400 {
		t.Errorf("evidence: %+v", a.Evidence)
	}

	t.Run("severity filter", func(t *testing.T) {
		var r NetwideAlertsResponse
		get(t, srv, "/netwide/alerts?severity=critical", &r)
		// 4800/4000 netwide-delta score and full quorum: warning only.
		if r.Matched != 0 {
			t.Errorf("critical filter matched %d: %+v", r.Matched, r.Alerts)
		}
	})
	t.Run("kind filter applies", func(t *testing.T) {
		var r NetwideAlertsResponse
		get(t, srv, "/netwide/alerts?kind=heavychange", &r)
		if r.Matched != 0 {
			t.Errorf("kind filter leaked: %+v", r)
		}
	})
	t.Run("bad params", func(t *testing.T) {
		if code := get(t, srv, "/netwide/alerts?kind=bogus", nil); code != http.StatusBadRequest {
			t.Errorf("bogus kind -> %d", code)
		}
	})
}

func TestAlertsUnconfigured(t *testing.T) {
	srv := httptest.NewServer(NewHandler(Config{}))
	defer srv.Close()
	if code := get(t, srv, "/alerts", nil); code != http.StatusNotFound {
		t.Errorf("/alerts without source -> %d", code)
	}
	if code := get(t, srv, "/changes", nil); code != http.StatusNotFound {
		t.Errorf("/changes without source -> %d", code)
	}
	if code := get(t, srv, "/netwide/alerts", nil); code != http.StatusNotFound {
		t.Errorf("/netwide/alerts without source -> %d", code)
	}
}

func TestParseAlertParamsDefaults(t *testing.T) {
	p, err := ParseAlertParams(url.Values{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != 0 || p.MinSeverity != detect.SeverityInfo || p.Epoch != -1 || p.Limit != DefaultLimit {
		t.Errorf("defaults: %+v", p)
	}
	if _, err := ParseAlertParams(url.Values{"limit": {"0"}}); err == nil {
		t.Error("limit=0 accepted")
	}
	if _, err := ParseAlertParams(url.Values{"kind": {"anomaly", "anomaly"}}); err == nil {
		t.Error("repeated key accepted")
	}
}

// countingSource wraps a SortedSource, counting snapshot calls — the
// probe for the /netwide/topk cache.
type countingSource struct {
	recs  []flow.Record
	calls atomic.Int64
}

func (c *countingSource) AppendSorted(dst []flow.Record) []flow.Record {
	c.calls.Add(1)
	return append(dst, c.recs...)
}

func TestNetwideTopKCache(t *testing.T) {
	src := &countingSource{recs: []flow.Record{
		{Key: flow.Key{SrcIP: 1, Proto: 6}, Count: 10},
		{Key: flow.Key{SrcIP: 2, Proto: 17}, Count: 5},
	}}
	var version atomic.Uint64
	srv := httptest.NewServer(NewHandler(Config{
		Netwide:        []NamedSource{{Name: "sw1", Source: src}},
		NetwideVersion: version.Load,
	}))
	defer srv.Close()

	var r1, r2, r3, r4 TopKResponse
	get(t, srv, "/netwide/topk?k=5", &r1)
	if r1.Cached || src.calls.Load() != 1 {
		t.Fatalf("first request: cached=%v calls=%d", r1.Cached, src.calls.Load())
	}
	get(t, srv, "/netwide/topk?k=5", &r2)
	if !r2.Cached || src.calls.Load() != 1 {
		t.Fatalf("repeat request not served from cache: cached=%v calls=%d", r2.Cached, src.calls.Load())
	}
	if len(r2.Flows) != len(r1.Flows) || r2.Flows[0] != r1.Flows[0] {
		t.Errorf("cached payload diverges: %+v vs %+v", r2.Flows, r1.Flows)
	}
	// A different shape misses.
	get(t, srv, "/netwide/topk?k=1", &r3)
	if r3.Cached || src.calls.Load() != 2 {
		t.Fatalf("different k served from cache: calls=%d", src.calls.Load())
	}
	// Rotation invalidates.
	version.Add(1)
	get(t, srv, "/netwide/topk?k=5", &r4)
	if r4.Cached || src.calls.Load() != 3 {
		t.Fatalf("stale cache after version bump: cached=%v calls=%d", r4.Cached, src.calls.Load())
	}

	t.Run("no version no cache", func(t *testing.T) {
		plain := &countingSource{recs: src.recs}
		psrv := httptest.NewServer(NewHandler(Config{
			Netwide: []NamedSource{{Name: "sw1", Source: plain}},
		}))
		defer psrv.Close()
		var r TopKResponse
		get(t, psrv, "/netwide/topk?k=5", &r)
		get(t, psrv, "/netwide/topk?k=5", &r)
		if r.Cached || plain.calls.Load() != 2 {
			t.Errorf("cache active without version source: calls=%d", plain.calls.Load())
		}
	})
}
