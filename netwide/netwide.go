// Package netwide implements the network-wide aggregation the paper lists
// as future work: merging flow records collected at multiple vantage points
// (switches) into one network view.
//
// Two merge semantics are provided:
//
//   - MergeMax: a flow may traverse several monitored links, each counting
//     (a subset of) its packets; the best single-path estimate of the flow's
//     size is the maximum observed count.
//   - MergeSum: when vantage points observe disjoint traffic (for example
//     per-uplink load balancing), counts add.
package netwide

import (
	"sort"

	"repro/flow"
)

// View is the record set collected at one vantage point.
type View struct {
	// Name identifies the vantage point (switch/link).
	Name string
	// Records are the flow records it reported.
	Records []flow.Record
}

// MergeMax combines views keeping, per flow, the maximum reported count.
func MergeMax(views ...View) []flow.Record {
	return merge(views, func(old, add uint32) uint32 {
		if add > old {
			return add
		}
		return old
	})
}

// MergeSum combines views summing per-flow counts (saturating).
func MergeSum(views ...View) []flow.Record {
	return merge(views, func(old, add uint32) uint32 {
		s := old + add
		if s < old {
			s = ^uint32(0)
		}
		return s
	})
}

func merge(views []View, combine func(old, add uint32) uint32) []flow.Record {
	m := make(map[flow.Key]uint32)
	for _, v := range views {
		for _, r := range v.Records {
			if prev, ok := m[r.Key]; ok {
				m[r.Key] = combine(prev, r.Count)
			} else {
				m[r.Key] = r.Count
			}
		}
	}
	out := make([]flow.Record, 0, len(m))
	for k, c := range m {
		out = append(out, flow.Record{Key: k, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count > out[j].Count })
	return out
}

// Coverage reports how many distinct flows each view contributed that no
// other view saw, keyed by view name — a quick measure of vantage-point
// placement value.
func Coverage(views ...View) map[string]int {
	owner := make(map[flow.Key]string)
	dup := make(map[flow.Key]bool)
	for _, v := range views {
		for _, r := range v.Records {
			if prev, ok := owner[r.Key]; ok && prev != v.Name {
				dup[r.Key] = true
				continue
			}
			owner[r.Key] = v.Name
		}
	}
	out := make(map[string]int, len(views))
	for _, v := range views {
		out[v.Name] = 0
	}
	for k, name := range owner {
		if !dup[k] {
			out[name]++
		}
	}
	return out
}
