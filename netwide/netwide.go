// Package netwide implements the network-wide aggregation the paper lists
// as future work: merging flow records collected at multiple vantage points
// (switches) into one network view.
//
// Two merge semantics are provided:
//
//   - MergeMax: a flow may traverse several monitored links, each counting
//     (a subset of) its packets; the best single-path estimate of the flow's
//     size is the maximum observed count.
//   - MergeSum: when vantage points observe disjoint traffic (for example
//     per-uplink load balancing), counts add.
//
// Both are implemented without maps: MergeMax/MergeSum gather all views
// into one buffer, key-sort it with a typed sort and combine adjacent
// duplicates in place. When the views are already key-sorted (the order
// shard.Sharded exports per shard and recordstore persists), the Into
// variants perform a direct k-way merge into a caller-supplied buffer with
// zero steady-state allocations.
package netwide

import (
	"slices"

	"repro/flow"
)

// View is the record set collected at one vantage point.
type View struct {
	// Name identifies the vantage point (switch/link).
	Name string
	// Records are the flow records it reported.
	Records []flow.Record
}

// combineMax keeps the larger of two counts.
func combineMax(old, add uint32) uint32 {
	if add > old {
		return add
	}
	return old
}

// combineSum adds two counts, saturating at the uint32 ceiling.
func combineSum(old, add uint32) uint32 {
	s := old + add
	if s < old {
		s = ^uint32(0)
	}
	return s
}

// MergeMax combines views keeping, per flow, the maximum reported count.
// The result is ordered by count descending (key order breaking ties).
func MergeMax(views ...View) []flow.Record {
	return merge(views, combineMax)
}

// MergeSum combines views summing per-flow counts (saturating). The result
// is ordered by count descending (key order breaking ties).
func MergeSum(views ...View) []flow.Record {
	return merge(views, combineSum)
}

// merge gathers every view into one pre-sized buffer, key-sorts it, folds
// adjacent duplicates in place with combine, and finally orders the merged
// set by count for reporting. No maps: the sort-and-fold pass replaces the
// seed's per-key map inserts and lets arbitrarily large views merge with
// two typed sorts and one linear scan.
func merge(views []View, combine func(old, add uint32) uint32) []flow.Record {
	total := 0
	for _, v := range views {
		total += len(v.Records)
	}
	all := make([]flow.Record, 0, total)
	for _, v := range views {
		all = append(all, v.Records...)
	}
	SortByKey(all)
	out := foldSorted(all, combine)
	slices.SortFunc(out, func(a, b flow.Record) int {
		if a.Count != b.Count {
			if a.Count > b.Count {
				return -1
			}
			return 1
		}
		return flow.CompareKeys(a.Key, b.Key)
	})
	return out
}

// foldSorted combines adjacent equal-key records of a key-sorted slice in
// place and returns the shortened slice.
func foldSorted(recs []flow.Record, combine func(old, add uint32) uint32) []flow.Record {
	out := recs[:0]
	for _, r := range recs {
		if n := len(out); n > 0 && out[n-1].Key == r.Key {
			out[n-1].Count = combine(out[n-1].Count, r.Count)
			continue
		}
		out = append(out, r)
	}
	return out
}

// MergeMaxInto k-way merges key-sorted views into dst keeping, per flow,
// the maximum reported count; see MergeSumInto for the contract.
func MergeMaxInto(dst []flow.Record, views ...View) []flow.Record {
	return mergeInto(dst, views, combineMax)
}

// MergeSumInto k-way merges key-sorted views into dst summing per-flow
// counts (saturating), appending the merged records in key order and
// returning the extended slice. Every view's Records must already be
// sorted by packed key (SortByKey order) — shard.Sharded exports each
// shard's chunk and recordstore stores each epoch exactly so. dst is
// reused across calls by the epoch pipeline, making steady-state
// network-wide aggregation allocation-free.
func MergeSumInto(dst []flow.Record, views ...View) []flow.Record {
	return mergeInto(dst, views, combineSum)
}

// mergeInto is a direct k-way merge: each view keeps a cursor, the minimum
// key among cursors is appended (or folded into the previous output record
// when the key repeats across views). The cursor array lives on the stack
// for realistic view counts.
func mergeInto(dst []flow.Record, views []View, combine func(old, add uint32) uint32) []flow.Record {
	var idxArr [16]int
	var idx []int
	if len(views) <= len(idxArr) {
		idx = idxArr[:len(views)]
	} else {
		idx = make([]int, len(views))
	}
	start := len(dst)
	for {
		best := -1
		var b1, b2 uint64
		for v := range views {
			if idx[v] >= len(views[v].Records) {
				continue
			}
			w1, w2 := views[v].Records[idx[v]].Key.Words()
			if best < 0 || w1 < b1 || (w1 == b1 && w2 < b2) {
				best, b1, b2 = v, w1, w2
			}
		}
		if best < 0 {
			return dst
		}
		r := views[best].Records[idx[best]]
		idx[best]++
		if n := len(dst); n > start && dst[n-1].Key == r.Key {
			dst[n-1].Count = combine(dst[n-1].Count, r.Count)
			continue
		}
		dst = append(dst, r)
	}
}

// Delta is one per-key count change between two epochs' record sets:
// Prev is the key's count in the earlier epoch (0 if absent), Cur its
// count in the later one (0 if vanished).
type Delta struct {
	Key  flow.Key
	Prev uint32
	Cur  uint32
}

// Signed returns the change Cur-Prev as a signed value.
func (d Delta) Signed() int64 { return int64(d.Cur) - int64(d.Prev) }

// Abs returns the magnitude of the change.
func (d Delta) Abs() uint32 {
	if d.Cur >= d.Prev {
		return d.Cur - d.Prev
	}
	return d.Prev - d.Cur
}

// DiffInto appends to dst one Delta per key whose count differs by at
// least minAbs between prev and cur, and returns the extended slice.
// Both inputs must be key-sorted (SortByKey order) with each key
// appearing at most once — the order epochs drain and persist in — so
// the diff is a single two-cursor walk: epoch-over-epoch change
// extraction with zero steady-state allocations when dst is reused.
// Keys absent from one side diff against zero; unchanged keys are never
// emitted (so minAbs 0 means "every changed key"). Deltas come out in
// key order.
func DiffInto(dst []Delta, prev, cur []flow.Record, minAbs uint32) []Delta {
	emit := func(d Delta) []Delta {
		if d.Cur != d.Prev && d.Abs() >= minAbs {
			dst = append(dst, d)
		}
		return dst
	}
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch flow.CompareKeys(prev[i].Key, cur[j].Key) {
		case 0:
			dst = emit(Delta{Key: prev[i].Key, Prev: prev[i].Count, Cur: cur[j].Count})
			i++
			j++
		case -1:
			dst = emit(Delta{Key: prev[i].Key, Prev: prev[i].Count})
			i++
		default:
			dst = emit(Delta{Key: cur[j].Key, Cur: cur[j].Count})
			j++
		}
	}
	for ; i < len(prev); i++ {
		dst = emit(Delta{Key: prev[i].Key, Prev: prev[i].Count})
	}
	for ; j < len(cur); j++ {
		dst = emit(Delta{Key: cur[j].Key, Cur: cur[j].Count})
	}
	return dst
}

// DeltaView is one vantage point's key-sorted per-epoch delta list — the
// change-summary payload a detector reports, re-sorted into merge order.
type DeltaView struct {
	// Name identifies the vantage point.
	Name string
	// Deltas must be sorted by packed key (SortByKey order) with each key
	// appearing at most once.
	Deltas []Delta
}

// CorrelatedDelta is one key's fold across vantage points: how many
// views reported the key changing, how many of those crossed the local
// alert threshold, and the summed before/after counts of the reporting
// views (a vantage that did not report the key contributes nothing — its
// delta sat below that vantage's summary floor).
type CorrelatedDelta struct {
	Key flow.Key
	// Prev and Cur are the saturating sums of the reporting views'
	// before/after counts.
	Prev, Cur uint32
	// Vantages is how many views reported the key at all.
	Vantages int
	// Alerting is how many views reported it with |delta| >= the minAlert
	// handed to MergeDeltasInto — the per-vantage alert threshold.
	Alerting int
}

// Signed returns the merged change Cur-Prev as a signed value.
func (c CorrelatedDelta) Signed() int64 { return int64(c.Cur) - int64(c.Prev) }

// Abs returns the magnitude of the merged change.
func (c CorrelatedDelta) Abs() uint32 {
	if c.Cur >= c.Prev {
		return c.Cur - c.Prev
	}
	return c.Prev - c.Cur
}

// MergeDeltasInto k-way merges key-sorted delta lists from several
// vantage points into dst, appending one CorrelatedDelta per distinct
// key in key order and returning the extended slice. Per-view counts sum
// saturating; views whose |delta| is at least minAlert are additionally
// counted as Alerting. The same cursor walk as MergeSumInto, so
// steady-state cross-vantage correlation is allocation-free when dst is
// reused.
func MergeDeltasInto(dst []CorrelatedDelta, minAlert uint32, views ...DeltaView) []CorrelatedDelta {
	var idxArr [16]int
	var idx []int
	if len(views) <= len(idxArr) {
		idx = idxArr[:len(views)]
	} else {
		idx = make([]int, len(views))
	}
	start := len(dst)
	for {
		best := -1
		var b1, b2 uint64
		for v := range views {
			if idx[v] >= len(views[v].Deltas) {
				continue
			}
			w1, w2 := views[v].Deltas[idx[v]].Key.Words()
			if best < 0 || w1 < b1 || (w1 == b1 && w2 < b2) {
				best, b1, b2 = v, w1, w2
			}
		}
		if best < 0 {
			return dst
		}
		dl := views[best].Deltas[idx[best]]
		idx[best]++
		alerting := 0
		if dl.Abs() >= minAlert {
			alerting = 1
		}
		if n := len(dst); n > start && dst[n-1].Key == dl.Key {
			dst[n-1].Prev = combineSum(dst[n-1].Prev, dl.Prev)
			dst[n-1].Cur = combineSum(dst[n-1].Cur, dl.Cur)
			dst[n-1].Vantages++
			dst[n-1].Alerting += alerting
			continue
		}
		dst = append(dst, CorrelatedDelta{
			Key: dl.Key, Prev: dl.Prev, Cur: dl.Cur, Vantages: 1, Alerting: alerting,
		})
	}
}

// SortDeltasByKey orders a delta list by packed key — the DeltaView
// precondition (ChangeSummary lists arrive ordered by |delta|, not key).
func SortDeltasByKey(deltas []Delta) {
	slices.SortFunc(deltas, func(a, b Delta) int {
		return flow.CompareKeys(a.Key, b.Key)
	})
}

// SortByKey orders records by their packed two-word key encoding
// (flow.CompareKeys), the precondition of the Into merges and the order
// recordstore persists.
func SortByKey(recs []flow.Record) {
	slices.SortFunc(recs, func(a, b flow.Record) int {
		return flow.CompareKeys(a.Key, b.Key)
	})
}

// Coverage reports how many distinct flows each view contributed that no
// other view saw, keyed by view name — a quick measure of vantage-point
// placement value.
func Coverage(views ...View) map[string]int {
	owner := make(map[flow.Key]string)
	dup := make(map[flow.Key]bool)
	for _, v := range views {
		for _, r := range v.Records {
			if prev, ok := owner[r.Key]; ok && prev != v.Name {
				dup[r.Key] = true
				continue
			}
			owner[r.Key] = v.Name
		}
	}
	out := make(map[string]int, len(views))
	for _, v := range views {
		out[v.Name] = 0
	}
	for k, name := range owner {
		if !dup[k] {
			out[name]++
		}
	}
	return out
}
