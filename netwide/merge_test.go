package netwide

import (
	"math/rand"
	"testing"

	"repro/flow"
)

// randomView builds a key-sorted view of n records with distinct keys.
func randomView(rng *rand.Rand, name string, n int) View {
	seen := make(map[flow.Key]bool, n)
	recs := make([]flow.Record, 0, n)
	for len(recs) < n {
		k := flow.Key{
			SrcIP:   rng.Uint32() % 5000, // force cross-view key overlap
			DstIP:   rng.Uint32() % 16,
			SrcPort: uint16(rng.Uint32() % 8),
			Proto:   6,
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		recs = append(recs, flow.Record{Key: k, Count: 1 + rng.Uint32()%1000})
	}
	SortByKey(recs)
	return View{Name: name, Records: recs}
}

// TestMergeIntoMatchesMerge cross-checks the k-way merge over sorted views
// against the general merge on randomized overlapping views, for both
// combine semantics.
func TestMergeIntoMatchesMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	views := []View{
		randomView(rng, "s1", 2000),
		randomView(rng, "s2", 1500),
		randomView(rng, "s3", 800),
		{Name: "s4"}, // empty view must be harmless
	}

	check := func(t *testing.T, kway, general []flow.Record) {
		t.Helper()
		// kway is key-sorted; general is count-sorted. Compare as sets.
		want := make(map[flow.Key]uint32, len(general))
		for _, r := range general {
			want[r.Key] = r.Count
		}
		if len(kway) != len(want) {
			t.Fatalf("k-way merged %d flows, general merge %d", len(kway), len(want))
		}
		for i, r := range kway {
			if want[r.Key] != r.Count {
				t.Errorf("flow %v = %d, want %d", r.Key, r.Count, want[r.Key])
			}
			if i > 0 && !keyLess(kway[i-1].Key, r.Key) {
				t.Fatalf("k-way output not strictly key-sorted at %d", i)
			}
		}
	}

	t.Run("max", func(t *testing.T) {
		check(t, MergeMaxInto(nil, views...), MergeMax(views...))
	})
	t.Run("sum", func(t *testing.T) {
		check(t, MergeSumInto(nil, views...), MergeSum(views...))
	})
}

func keyLess(a, b flow.Key) bool {
	return flow.CompareKeys(a, b) < 0
}

// TestMergeIntoAppends verifies dst content before the call survives and
// is never folded into.
func TestMergeIntoAppends(t *testing.T) {
	k := flow.Key{SrcIP: 9}
	prefix := flow.Record{Key: k, Count: 1}
	got := MergeSumInto([]flow.Record{prefix},
		View{Name: "s1", Records: []flow.Record{{Key: k, Count: 5}}},
		View{Name: "s2", Records: []flow.Record{{Key: k, Count: 7}}},
	)
	if len(got) != 2 {
		t.Fatalf("got %d records, want 2 (prefix + merged)", len(got))
	}
	if got[0] != prefix {
		t.Errorf("prefix clobbered: %+v", got[0])
	}
	if got[1].Count != 12 {
		t.Errorf("merged count = %d, want 12", got[1].Count)
	}
}

// TestMergeIntoManyViews exercises the heap-allocated cursor fallback
// above the stack-array view count.
func TestMergeIntoManyViews(t *testing.T) {
	var views []View
	for i := 0; i < 20; i++ {
		views = append(views, View{
			Name:    "s",
			Records: []flow.Record{{Key: flow.Key{SrcIP: uint32(i % 4)}, Count: 1}},
		})
	}
	got := MergeSumInto(nil, views...)
	if len(got) != 4 {
		t.Fatalf("merged %d flows, want 4", len(got))
	}
	for _, r := range got {
		if r.Count != 5 {
			t.Errorf("flow %v = %d, want 5", r.Key, r.Count)
		}
	}
}

// TestMergeDeterministic pins the deterministic ordering of the general
// merge: count descending, key ascending among equal counts.
func TestMergeDeterministic(t *testing.T) {
	views := []View{
		{Name: "s1", Records: []flow.Record{{Key: kc, Count: 5}, {Key: ka, Count: 5}}},
		{Name: "s2", Records: []flow.Record{{Key: kb, Count: 5}}},
	}
	first := MergeMax(views...)
	for i := 0; i < 5; i++ {
		again := MergeMax(views...)
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("merge order unstable at %d: %+v vs %+v", j, again[j], first[j])
			}
		}
	}
	if first[0].Key != ka || first[1].Key != kb || first[2].Key != kc {
		t.Errorf("equal counts not key-ordered: %+v", first)
	}
}
