package netwide

import (
	"testing"

	"repro/flow"
)

func dkey(i int) flow.Key {
	return flow.Key{SrcIP: uint32(i), DstPort: 443, Proto: 6}
}

func TestDiffInto(t *testing.T) {
	prev := []flow.Record{
		{Key: dkey(1), Count: 100}, // unchanged
		{Key: dkey(2), Count: 500}, // drops
		{Key: dkey(4), Count: 150}, // vanishes
		{Key: dkey(6), Count: 10},  // small change
	}
	cur := []flow.Record{
		{Key: dkey(1), Count: 100},
		{Key: dkey(2), Count: 100},
		{Key: dkey(3), Count: 900}, // appears
		{Key: dkey(6), Count: 12},
	}
	SortByKey(prev)
	SortByKey(cur)

	got := DiffInto(nil, prev, cur, 0)
	want := []Delta{
		{Key: dkey(2), Prev: 500, Cur: 100},
		{Key: dkey(3), Prev: 0, Cur: 900},
		{Key: dkey(4), Prev: 150, Cur: 0},
		{Key: dkey(6), Prev: 10, Cur: 12},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d deltas: %+v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delta %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if got[0].Signed() != -400 || got[0].Abs() != 400 {
		t.Errorf("signed/abs of %+v: %d, %d", got[0], got[0].Signed(), got[0].Abs())
	}
	if got[1].Signed() != 900 {
		t.Errorf("appearing delta signed = %d", got[1].Signed())
	}

	// minAbs filters the small change and keeps key order.
	filtered := DiffInto(nil, prev, cur, 100)
	if len(filtered) != 3 {
		t.Fatalf("minAbs=100: %+v", filtered)
	}
	for i := 1; i < len(filtered); i++ {
		if flow.CompareKeys(filtered[i-1].Key, filtered[i].Key) >= 0 {
			t.Fatalf("deltas out of key order: %+v", filtered)
		}
	}

	// Empty sides.
	if d := DiffInto(nil, nil, cur, 0); len(d) != len(cur) {
		t.Errorf("nil prev: %d deltas, want %d", len(d), len(cur))
	}
	if d := DiffInto(nil, prev, nil, 0); len(d) != len(prev)-0 {
		// every prev key vanishes; the unchanged key too (100 -> 0)
		t.Errorf("nil cur: %d deltas, want %d", len(d), len(prev))
	}
	if d := DiffInto(nil, nil, nil, 0); len(d) != 0 {
		t.Errorf("nil/nil: %+v", d)
	}
}

// TestDiffIntoAllocFree pins the drain-path contract: diffing into a
// reused buffer must not allocate once grown.
func TestDiffIntoAllocFree(t *testing.T) {
	var prev, cur []flow.Record
	for i := 0; i < 2000; i++ {
		prev = append(prev, flow.Record{Key: dkey(i), Count: uint32(100 + i)})
		cur = append(cur, flow.Record{Key: dkey(i + 500), Count: uint32(90 + i)})
	}
	SortByKey(prev)
	SortByKey(cur)
	var dst []Delta
	dst = DiffInto(dst[:0], prev, cur, 0)
	if len(dst) == 0 {
		t.Fatal("empty diff")
	}
	if allocs := testing.AllocsPerRun(50, func() {
		dst = DiffInto(dst[:0], prev, cur, 0)
	}); allocs != 0 {
		t.Errorf("DiffInto allocates %.0f times per diff, want 0", allocs)
	}
}
