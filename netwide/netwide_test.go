package netwide

import (
	"testing"

	"repro/flow"
)

var (
	ka = flow.Key{SrcIP: 1}
	kb = flow.Key{SrcIP: 2}
	kc = flow.Key{SrcIP: 3}
)

func TestMergeMax(t *testing.T) {
	got := MergeMax(
		View{Name: "s1", Records: []flow.Record{{Key: ka, Count: 10}, {Key: kb, Count: 5}}},
		View{Name: "s2", Records: []flow.Record{{Key: ka, Count: 7}, {Key: kc, Count: 3}}},
	)
	want := map[flow.Key]uint32{ka: 10, kb: 5, kc: 3}
	if len(got) != len(want) {
		t.Fatalf("merged %d flows, want %d", len(got), len(want))
	}
	for _, r := range got {
		if want[r.Key] != r.Count {
			t.Errorf("flow %v = %d, want %d", r.Key, r.Count, want[r.Key])
		}
	}
	// Sorted descending by count.
	for i := 1; i < len(got); i++ {
		if got[i].Count > got[i-1].Count {
			t.Error("merge result not sorted")
		}
	}
}

func TestMergeSum(t *testing.T) {
	got := MergeSum(
		View{Name: "s1", Records: []flow.Record{{Key: ka, Count: 10}}},
		View{Name: "s2", Records: []flow.Record{{Key: ka, Count: 7}}},
	)
	if len(got) != 1 || got[0].Count != 17 {
		t.Errorf("MergeSum = %v, want one flow with 17", got)
	}
}

func TestMergeSumSaturates(t *testing.T) {
	big := ^uint32(0) - 1
	got := MergeSum(
		View{Name: "s1", Records: []flow.Record{{Key: ka, Count: big}}},
		View{Name: "s2", Records: []flow.Record{{Key: ka, Count: 100}}},
	)
	if got[0].Count != ^uint32(0) {
		t.Errorf("saturating sum = %d, want max uint32", got[0].Count)
	}
}

func TestMergeEmpty(t *testing.T) {
	if got := MergeMax(); len(got) != 0 {
		t.Errorf("MergeMax() = %v, want empty", got)
	}
	if got := MergeSum(View{Name: "s1"}); len(got) != 0 {
		t.Errorf("MergeSum(empty view) = %v, want empty", got)
	}
}

func TestCoverage(t *testing.T) {
	cov := Coverage(
		View{Name: "s1", Records: []flow.Record{{Key: ka, Count: 1}, {Key: kb, Count: 1}}},
		View{Name: "s2", Records: []flow.Record{{Key: ka, Count: 1}, {Key: kc, Count: 1}}},
	)
	if cov["s1"] != 1 { // kb unique to s1
		t.Errorf("s1 coverage = %d, want 1", cov["s1"])
	}
	if cov["s2"] != 1 { // kc unique to s2
		t.Errorf("s2 coverage = %d, want 1", cov["s2"])
	}
}

func TestCoverageAllShared(t *testing.T) {
	cov := Coverage(
		View{Name: "s1", Records: []flow.Record{{Key: ka, Count: 1}}},
		View{Name: "s2", Records: []flow.Record{{Key: ka, Count: 2}}},
	)
	if cov["s1"] != 0 || cov["s2"] != 0 {
		t.Errorf("shared flow counted as unique: %v", cov)
	}
}
