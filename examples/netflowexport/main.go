// NetFlow export: the full collection pipeline over a real UDP socket pair.
// A HashFlow recorder observes a trace in epochs; after each epoch its
// records are exported as NetFlow v5 datagrams to a collector goroutine,
// which reassembles the network-wide view.
package main

import (
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"repro/flowmon"
	"repro/netflow"
	"repro/netwide"
	"repro/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netflowexport:", err)
		os.Exit(1)
	}
}

func run() error {
	// Collector side: a UDP socket on localhost.
	laddr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	sock, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return err
	}
	defer sock.Close()
	// A burst of hundreds of datagrams per epoch overflows the default
	// socket buffer; give the collector headroom like a real deployment.
	if err := sock.SetReadBuffer(4 << 20); err != nil {
		return err
	}

	collector := netflow.NewCollector()
	done := make(chan error, 1)
	go func() {
		defer close(done)
		buf := make([]byte, netflow.MaxDatagramLen)
		for {
			n, _, err := sock.ReadFromUDP(buf)
			if err != nil {
				return // socket closed: exporter finished
			}
			if n == 0 { // sentinel datagram ends the run
				done <- nil
				return
			}
			if err := collector.Ingest(buf[:n]); err != nil {
				done <- err
				return
			}
		}
	}()

	// Exporter side: HashFlow in 128 KB, flushed every epoch.
	conn, err := net.Dial("udp", sock.LocalAddr().String())
	if err != nil {
		return err
	}
	defer conn.Close()

	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{
		MemoryBytes: 128 << 10,
		Seed:        9,
	})
	if err != nil {
		return err
	}
	exporter := netflow.NewExporter(func(b []byte) error {
		// Pace the export burst so the collector keeps up, as production
		// NetFlow exporters do.
		time.Sleep(20 * time.Microsecond)
		_, err := conn.Write(b)
		return err
	})
	epochs := netflow.NewEpochExporter(rec, exporter)

	// Three measurement epochs of 5K flows each.
	for epoch := 0; epoch < 3; epoch++ {
		tr, err := trace.Generate(trace.ISP1, 5000, uint64(100+epoch))
		if err != nil {
			return err
		}
		s := tr.Stream(uint64(epoch))
		for {
			p, ok := s.Next()
			if !ok {
				break
			}
			rec.Update(p)
		}
		n, err := epochs.Flush(700)
		if err != nil {
			return err
		}
		fmt.Printf("epoch %d: exported %d records (%d packets offered)\n",
			epoch, n, tr.PacketCount())
	}

	// Tell the collector we are done and wait for it.
	if _, err := conn.Write(nil); err != nil {
		return err
	}
	if err := <-done; err != nil {
		return err
	}

	recs := collector.FlowRecords()
	fmt.Printf("\ncollector received %d/%d records over %d epochs (%d lost to gaps)\n",
		len(recs), epochs.Exported(), epochs.Epochs(), collector.Lost())

	// Treat each epoch as a vantage point and build the merged view.
	merged := netwide.MergeMax(netwide.View{Name: "epochs", Records: recs})
	sort.Slice(merged, func(i, j int) bool { return merged[i].Count > merged[j].Count })
	fmt.Println("largest flows across epochs:")
	for i, r := range merged {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-45s %d pkts\n", r.Key, r.Count)
	}
	return nil
}
