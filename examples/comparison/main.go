// Comparison: run all four algorithms on the same trace with the same
// memory budget and print the paper's three application metrics side by
// side (flow record coverage, size-estimation error, cardinality error).
package main

import (
	"fmt"
	"os"

	"repro/flowmon"
	"repro/metrics"
	"repro/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "comparison:", err)
		os.Exit(1)
	}
}

func run() error {
	const memory = 1 << 20 // the paper's 1 MB
	for _, flows := range []int{30000, 100000} {
		tr, err := trace.Generate(trace.ISP1, flows, 11)
		if err != nil {
			return err
		}
		pkts := tr.Packets(11)
		truth := tr.Truth()

		fmt.Printf("ISP1 trace, %d flows, %d packets, %d KB per algorithm\n",
			flows, len(pkts), memory>>10)
		fmt.Printf("  %-14s %8s %8s %8s %10s %8s\n",
			"algorithm", "records", "FSC", "sizeARE", "cardinal.", "cardRE")
		for _, a := range flowmon.All() {
			rec, err := flowmon.New(a, flowmon.Config{MemoryBytes: memory, Seed: 5})
			if err != nil {
				return err
			}
			for _, p := range pkts {
				rec.Update(p)
			}
			records := rec.Records()
			fmt.Printf("  %-14s %8d %8.4f %8.4f %10.0f %8.4f\n",
				a,
				len(records),
				metrics.FSC(records, truth),
				metrics.SizeARE(rec.EstimateSize, truth),
				rec.EstimateCardinality(),
				metrics.CardinalityRE(rec.EstimateCardinality(), truth),
			)
		}
		fmt.Println()
	}
	return nil
}
