// Quickstart: generate a synthetic campus trace, collect flow records with
// HashFlow in 256 KB of memory, and print what it captured.
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/flowmon"
	"repro/metrics"
	"repro/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 20K flows from the campus profile: mean 15 packets per flow, heavy
	// elephant tail.
	tr, err := trace.Generate(trace.Campus, 20000, 42)
	if err != nil {
		return err
	}
	fmt.Printf("trace: %d flows, %d packets\n", tr.FlowCount(), tr.PacketCount())

	// A HashFlow recorder with the paper's defaults: 3 pipelined sub-tables
	// (alpha = 0.7) plus an equal-size ancillary table, in 256 KB.
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{
		MemoryBytes: 256 << 10,
		Seed:        1,
	})
	if err != nil {
		return err
	}

	// Feed the packet stream.
	stream := tr.Stream(42)
	for {
		p, ok := stream.Next()
		if !ok {
			break
		}
		rec.Update(p)
	}

	// Report.
	truth := tr.Truth()
	records := rec.Records()
	fmt.Printf("collected %d flow records (coverage %.1f%%)\n",
		len(records), 100*metrics.FSC(records, truth))
	fmt.Printf("size estimation ARE: %.3f\n", metrics.SizeARE(rec.EstimateSize, truth))
	fmt.Printf("cardinality estimate: %.0f (true %d)\n", rec.EstimateCardinality(), truth.Flows())

	sort.Slice(records, func(i, j int) bool { return records[i].Count > records[j].Count })
	fmt.Println("top flows:")
	for i, r := range records {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-45s %6d pkts (true %d)\n", r.Key, r.Count, truth.Count(r.Key))
	}
	return nil
}
