// Security: detect a synthetic DDoS attack and a port scan hidden inside
// background traffic, using only the flow records a memory-bounded HashFlow
// recorder kept — the "detect network attacks" application the paper's
// introduction motivates.
package main

import (
	"fmt"
	"math/rand/v2"
	"os"

	"repro/apps"
	"repro/flow"
	"repro/flowmon"
	"repro/trace"
)

const (
	victimIP  = 0xC0A80164 // 192.168.1.100
	scannerIP = 0x0A00002A // 10.0.0.42
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "security:", err)
		os.Exit(1)
	}
}

func run() error {
	// Background: 20K benign flows.
	tr, err := trace.Generate(trace.ISP1, 20000, 99)
	if err != nil {
		return err
	}
	pkts := tr.Packets(99)

	// Inject a DDoS: 400 distinct sources flooding one victim, and a port
	// scan: one source probing 300 ports on one target.
	rng := rand.New(rand.NewPCG(7, 7))
	var attack []flow.Packet
	for i := 0; i < 400; i++ {
		k := flow.Key{SrcIP: rng.Uint32(), DstIP: victimIP, SrcPort: uint16(rng.Uint32()), DstPort: 80, Proto: 6}
		for j := 0; j < 3; j++ {
			attack = append(attack, flow.Packet{Key: k, Size: 64})
		}
	}
	for port := uint16(1); port <= 300; port++ {
		k := flow.Key{SrcIP: scannerIP, DstIP: 0x0A000001, SrcPort: 40000, DstPort: port, Proto: 6}
		attack = append(attack, flow.Packet{Key: k, Size: 64})
	}
	// Interleave the attack into the background.
	for i, p := range attack {
		pos := (i * len(pkts)) / len(attack)
		pkts[pos], p = p, pkts[pos]
		pkts = append(pkts, p)
	}

	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{
		MemoryBytes: 512 << 10,
		Seed:        13,
	})
	if err != nil {
		return err
	}
	for _, p := range pkts {
		rec.Update(p)
	}
	records := rec.Records()
	fmt.Printf("%d packets observed, %d flow records kept in %d KB\n\n",
		len(pkts), len(records), rec.MemoryBytes()>>10)

	victims := apps.DDoSVictims(records, 100)
	fmt.Printf("DDoS victims (>=100 distinct sources): %d\n", len(victims))
	for _, v := range victims {
		fmt.Printf("  %s hit by %d sources, %d packets%s\n",
			flow.IPString(v.DstIP), v.Sources, v.Packets, tag(v.DstIP == victimIP))
	}

	scanners := apps.PortScanners(records, 100)
	fmt.Printf("\nport scanners (>=100 distinct targets): %d\n", len(scanners))
	for _, s := range scanners {
		fmt.Printf("  %s probed %d targets%s\n",
			flow.IPString(s.SrcIP), s.Targets, tag(s.SrcIP == scannerIP))
	}

	fmt.Println("\ntop talkers:")
	for _, r := range apps.TopTalkers(records, 3) {
		fmt.Printf("  %-45s %d pkts\n", r.Key, r.Count)
	}
	return nil
}

func tag(injected bool) string {
	if injected {
		return "   <- injected attack"
	}
	return ""
}
