// Heavy-hitter detection: find the flows above a packet threshold on a
// backbone-like trace, compare all four algorithms against ground truth,
// and show HashFlow's advantage as the paper's Fig. 9/10 do.
package main

import (
	"fmt"
	"os"

	"repro/flowmon"
	"repro/metrics"
	"repro/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "heavyhitter:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		memory = 512 << 10
		flows  = 60000
	)
	tr, err := trace.Generate(trace.CAIDA, flows, 7)
	if err != nil {
		return err
	}
	pkts := tr.Packets(7)
	truth := tr.Truth()

	fmt.Printf("trace: %d flows, %d packets, memory budget %d KB\n\n",
		flows, len(pkts), memory>>10)
	fmt.Printf("%-14s %9s %6s %6s %6s %8s\n",
		"algorithm", "threshold", "prec", "recall", "F1", "sizeARE")

	for _, a := range flowmon.All() {
		rec, err := flowmon.New(a, flowmon.Config{MemoryBytes: memory, Seed: 3})
		if err != nil {
			return err
		}
		for _, p := range pkts {
			rec.Update(p)
		}
		records := rec.Records()
		for _, threshold := range []uint32{50, 100, 200} {
			rep := metrics.HeavyHitters(records, truth, threshold)
			fmt.Printf("%-14s %9d %6.3f %6.3f %6.3f %8.4f\n",
				a, threshold, rep.Precision, rep.Recall, rep.F1, rep.SizeARE)
		}
		fmt.Println()
	}
	return nil
}
