package apps_test

import (
	"fmt"

	"repro/apps"
	"repro/flow"
)

func ExampleDDoSVictims() {
	var records []flow.Record
	for src := uint32(1); src <= 200; src++ {
		records = append(records, flow.Record{
			Key:   flow.Key{SrcIP: src, DstIP: 0xC0A80001, DstPort: 80, Proto: 6},
			Count: 2,
		})
	}
	victims := apps.DDoSVictims(records, 100)
	fmt.Println(len(victims), victims[0].Sources)
	// Output: 1 200
}

func ExampleTopTalkers() {
	records := []flow.Record{
		{Key: flow.Key{SrcIP: 1}, Count: 10},
		{Key: flow.Key{SrcIP: 2}, Count: 99},
		{Key: flow.Key{SrcIP: 3}, Count: 5},
	}
	top := apps.TopTalkers(records, 2)
	fmt.Println(top[0].Count, top[1].Count)
	// Output: 99 10
}

func ExampleTrafficMatrix() {
	records := []flow.Record{
		{Key: flow.Key{SrcIP: 0x0A000001, DstIP: 0x14000001}, Count: 10},
		{Key: flow.Key{SrcIP: 0x0A000105, DstIP: 0x14000207}, Count: 30},
	}
	cells := apps.TrafficMatrix(records, 8)
	fmt.Println(len(cells), cells[0].Packets)
	// Output: 1 40
}
