// Package apps implements the traffic-analysis applications that motivate
// flow record collection in the paper's introduction: top-talker ranking,
// heavy-hitter reporting, DDoS victim detection, port-scan detection and
// prefix-level traffic matrices. Every application consumes plain
// []flow.Record, so it runs identically on exact NetFlow records and on the
// approximate records any flowmon.Recorder reports.
package apps

import (
	"sort"

	"repro/flow"
)

// TopTalkers returns the k largest flows by packet count, descending, with
// deterministic tie-breaking on the key encoding.
func TopTalkers(records []flow.Record, k int) []flow.Record {
	out := make([]flow.Record, len(records))
	copy(out, records)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return lessKey(out[i].Key, out[j].Key)
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// HeavyHitters returns all flows with at least threshold packets,
// descending by count.
func HeavyHitters(records []flow.Record, threshold uint32) []flow.Record {
	var out []flow.Record
	for _, r := range records {
		if r.Count >= threshold {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return lessKey(out[i].Key, out[j].Key)
	})
	return out
}

// Victim is a destination receiving traffic from many distinct sources —
// the signature of a volumetric DDoS attack or a flash crowd.
type Victim struct {
	DstIP   uint32
	Sources int    // distinct source IPs
	Packets uint64 // total packets toward the destination
}

// DDoSVictims reports destinations contacted by at least minSources
// distinct source IPs, descending by source count.
func DDoSVictims(records []flow.Record, minSources int) []Victim {
	type agg struct {
		srcs map[uint32]struct{}
		pkts uint64
	}
	byDst := make(map[uint32]*agg)
	for _, r := range records {
		a := byDst[r.Key.DstIP]
		if a == nil {
			a = &agg{srcs: make(map[uint32]struct{})}
			byDst[r.Key.DstIP] = a
		}
		a.srcs[r.Key.SrcIP] = struct{}{}
		a.pkts += uint64(r.Count)
	}
	var out []Victim
	for dst, a := range byDst {
		if len(a.srcs) >= minSources {
			out = append(out, Victim{DstIP: dst, Sources: len(a.srcs), Packets: a.pkts})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Sources != out[j].Sources {
			return out[i].Sources > out[j].Sources
		}
		return out[i].DstIP < out[j].DstIP
	})
	return out
}

// Scanner is a source probing many distinct (destination, port) pairs —
// the signature of horizontal or vertical scanning.
type Scanner struct {
	SrcIP   uint32
	Targets int // distinct (dstIP, dstPort) pairs
}

// PortScanners reports sources that touched at least minTargets distinct
// (destination IP, destination port) pairs, descending by target count.
func PortScanners(records []flow.Record, minTargets int) []Scanner {
	type target struct {
		ip   uint32
		port uint16
	}
	bySrc := make(map[uint32]map[target]struct{})
	for _, r := range records {
		m := bySrc[r.Key.SrcIP]
		if m == nil {
			m = make(map[target]struct{})
			bySrc[r.Key.SrcIP] = m
		}
		m[target{ip: r.Key.DstIP, port: r.Key.DstPort}] = struct{}{}
	}
	var out []Scanner
	for src, m := range bySrc {
		if len(m) >= minTargets {
			out = append(out, Scanner{SrcIP: src, Targets: len(m)})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Targets != out[j].Targets {
			return out[i].Targets > out[j].Targets
		}
		return out[i].SrcIP < out[j].SrcIP
	})
	return out
}

// MatrixCell is one prefix-pair entry of a traffic matrix.
type MatrixCell struct {
	SrcPrefix uint32 // network-order prefix, host bits zeroed
	DstPrefix uint32
	Packets   uint64
	Flows     int
}

// TrafficMatrix aggregates flow records into source-prefix x dest-prefix
// cells at the given prefix length (0..32), descending by packets. Traffic
// engineering consumes exactly this view.
func TrafficMatrix(records []flow.Record, prefixLen int) []MatrixCell {
	if prefixLen < 0 {
		prefixLen = 0
	}
	if prefixLen > 32 {
		prefixLen = 32
	}
	var mask uint32
	if prefixLen > 0 {
		mask = ^uint32(0) << (32 - prefixLen)
	}
	type pair struct{ src, dst uint32 }
	cells := make(map[pair]*MatrixCell)
	for _, r := range records {
		p := pair{src: r.Key.SrcIP & mask, dst: r.Key.DstIP & mask}
		c := cells[p]
		if c == nil {
			c = &MatrixCell{SrcPrefix: p.src, DstPrefix: p.dst}
			cells[p] = c
		}
		c.Packets += uint64(r.Count)
		c.Flows++
	}
	out := make([]MatrixCell, 0, len(cells))
	for _, c := range cells {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Packets != out[j].Packets {
			return out[i].Packets > out[j].Packets
		}
		if out[i].SrcPrefix != out[j].SrcPrefix {
			return out[i].SrcPrefix < out[j].SrcPrefix
		}
		return out[i].DstPrefix < out[j].DstPrefix
	})
	return out
}

func lessKey(a, b flow.Key) bool {
	switch {
	case a.SrcIP != b.SrcIP:
		return a.SrcIP < b.SrcIP
	case a.DstIP != b.DstIP:
		return a.DstIP < b.DstIP
	case a.SrcPort != b.SrcPort:
		return a.SrcPort < b.SrcPort
	case a.DstPort != b.DstPort:
		return a.DstPort < b.DstPort
	default:
		return a.Proto < b.Proto
	}
}
