package apps

import (
	"testing"

	"repro/flow"
)

func rec(src, dst uint32, dport uint16, count uint32) flow.Record {
	return flow.Record{
		Key:   flow.Key{SrcIP: src, DstIP: dst, SrcPort: 1000, DstPort: dport, Proto: 6},
		Count: count,
	}
}

func TestTopTalkers(t *testing.T) {
	records := []flow.Record{
		rec(1, 10, 80, 5),
		rec(2, 10, 80, 50),
		rec(3, 10, 80, 20),
	}
	top := TopTalkers(records, 2)
	if len(top) != 2 || top[0].Count != 50 || top[1].Count != 20 {
		t.Errorf("TopTalkers = %v", top)
	}
	// k beyond population returns all, input not mutated.
	if got := TopTalkers(records, 10); len(got) != 3 {
		t.Errorf("TopTalkers(10) = %d records", len(got))
	}
	if records[0].Count != 5 {
		t.Error("input slice was mutated")
	}
}

func TestTopTalkersDeterministicTies(t *testing.T) {
	records := []flow.Record{rec(3, 1, 1, 7), rec(1, 1, 1, 7), rec(2, 1, 1, 7)}
	top := TopTalkers(records, 3)
	if top[0].Key.SrcIP != 1 || top[1].Key.SrcIP != 2 || top[2].Key.SrcIP != 3 {
		t.Errorf("tie-break not deterministic: %v", top)
	}
}

func TestHeavyHitters(t *testing.T) {
	records := []flow.Record{rec(1, 1, 1, 100), rec(2, 1, 1, 10), rec(3, 1, 1, 55)}
	hh := HeavyHitters(records, 50)
	if len(hh) != 2 || hh[0].Count != 100 || hh[1].Count != 55 {
		t.Errorf("HeavyHitters = %v", hh)
	}
	if got := HeavyHitters(records, 1000); len(got) != 0 {
		t.Errorf("HeavyHitters above max = %v", got)
	}
}

func TestDDoSVictims(t *testing.T) {
	var records []flow.Record
	// 10 sources hit dst 99; 2 sources hit dst 5.
	for src := uint32(1); src <= 10; src++ {
		records = append(records, rec(src, 99, 80, 3))
	}
	records = append(records, rec(1, 5, 80, 1), rec(2, 5, 80, 1))

	victims := DDoSVictims(records, 5)
	if len(victims) != 1 {
		t.Fatalf("victims = %v", victims)
	}
	v := victims[0]
	if v.DstIP != 99 || v.Sources != 10 || v.Packets != 30 {
		t.Errorf("victim = %+v", v)
	}
	if got := DDoSVictims(records, 2); len(got) != 2 {
		t.Errorf("minSources=2 found %d victims, want 2", len(got))
	}
}

func TestDDoSVictimsCountsDistinctSources(t *testing.T) {
	// The same source on different ports is one source.
	records := []flow.Record{
		{Key: flow.Key{SrcIP: 1, DstIP: 9, SrcPort: 1, Proto: 6}, Count: 1},
		{Key: flow.Key{SrcIP: 1, DstIP: 9, SrcPort: 2, Proto: 6}, Count: 1},
	}
	if got := DDoSVictims(records, 2); len(got) != 0 {
		t.Errorf("duplicate source counted twice: %v", got)
	}
}

func TestPortScanners(t *testing.T) {
	var records []flow.Record
	// src 7 probes 20 ports on dst 1.
	for port := uint16(1); port <= 20; port++ {
		records = append(records, rec(7, 1, port, 1))
	}
	// src 8 talks to 2 services.
	records = append(records, rec(8, 1, 80, 100), rec(8, 2, 443, 100))

	scanners := PortScanners(records, 10)
	if len(scanners) != 1 {
		t.Fatalf("scanners = %v", scanners)
	}
	if scanners[0].SrcIP != 7 || scanners[0].Targets != 20 {
		t.Errorf("scanner = %+v", scanners[0])
	}
}

func TestPortScannersDistinctTargets(t *testing.T) {
	// Same (dst, port) repeated is one target.
	records := []flow.Record{
		{Key: flow.Key{SrcIP: 1, DstIP: 2, SrcPort: 10, DstPort: 80, Proto: 6}, Count: 1},
		{Key: flow.Key{SrcIP: 1, DstIP: 2, SrcPort: 11, DstPort: 80, Proto: 6}, Count: 1},
	}
	if got := PortScanners(records, 2); len(got) != 0 {
		t.Errorf("duplicate target counted twice: %v", got)
	}
}

func TestTrafficMatrix(t *testing.T) {
	records := []flow.Record{
		rec(0x0A000001, 0x14000001, 80, 10), // 10.0.0.1 -> 20.0.0.1
		rec(0x0A000002, 0x14000002, 81, 20), // 10.0.0.2 -> 20.0.0.2 (same /8 pair)
		rec(0x0B000001, 0x14000001, 80, 5),  // 11.0.0.1 -> 20.0.0.1
	}
	cells := TrafficMatrix(records, 8)
	if len(cells) != 2 {
		t.Fatalf("cells = %v", cells)
	}
	top := cells[0]
	if top.SrcPrefix != 0x0A000000 || top.DstPrefix != 0x14000000 {
		t.Errorf("top cell prefixes = %x -> %x", top.SrcPrefix, top.DstPrefix)
	}
	if top.Packets != 30 || top.Flows != 2 {
		t.Errorf("top cell = %+v", top)
	}
}

func TestTrafficMatrixPrefixLenBounds(t *testing.T) {
	records := []flow.Record{rec(1, 2, 80, 1), rec(3, 4, 80, 1)}
	// prefixLen 0 aggregates everything into one cell.
	if got := TrafficMatrix(records, 0); len(got) != 1 || got[0].Flows != 2 {
		t.Errorf("prefixLen 0: %v", got)
	}
	// prefixLen > 32 behaves as 32 (exact hosts).
	if got := TrafficMatrix(records, 64); len(got) != 2 {
		t.Errorf("prefixLen 64: %v", got)
	}
	// Negative behaves as 0.
	if got := TrafficMatrix(records, -3); len(got) != 1 {
		t.Errorf("prefixLen -3: %v", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := TopTalkers(nil, 5); len(got) != 0 {
		t.Error("TopTalkers(nil) not empty")
	}
	if got := HeavyHitters(nil, 1); len(got) != 0 {
		t.Error("HeavyHitters(nil) not empty")
	}
	if got := DDoSVictims(nil, 1); len(got) != 0 {
		t.Error("DDoSVictims(nil) not empty")
	}
	if got := PortScanners(nil, 1); len(got) != 0 {
		t.Error("PortScanners(nil) not empty")
	}
	if got := TrafficMatrix(nil, 8); len(got) != 0 {
		t.Error("TrafficMatrix(nil) not empty")
	}
}
