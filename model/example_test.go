package model_test

import (
	"fmt"

	"repro/model"
)

// Reproduce the utilization numbers §III-B quotes for a full table
// (m/n = 1): 63% at depth 1, ~80% at depth 3, ~92% at depth 10.
func ExampleMultiHashUtilization() {
	for _, d := range []int{1, 3, 10} {
		fmt.Printf("d=%d: %.2f\n", d, model.MultiHashUtilization(1.0, d))
	}
	// Output:
	// d=1: 0.63
	// d=3: 0.80
	// d=10: 0.92
}

// The pipelined organization at the paper's default α = 0.7 improves on the
// multi-hash table by several percent at full load (Fig. 2d).
func ExamplePipelinedImprovement() {
	imp := model.PipelinedImprovement(1.0, 0.7, 3)
	fmt.Printf("%.3f\n", imp)
	// Output: 0.044
}
