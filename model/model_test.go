package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMultiHashEmptyProbsBasics(t *testing.T) {
	if MultiHashEmptyProbs(1, 0) != nil {
		t.Error("d=0 should return nil")
	}
	ps := MultiHashEmptyProbs(1.0, 1)
	if math.Abs(ps[0]-math.Exp(-1)) > 1e-12 {
		t.Errorf("p1 = %v, want e^-1", ps[0])
	}
}

func TestEmptyProbsMonotoneAndBounded(t *testing.T) {
	f := func(loadRaw, alphaRaw uint16) bool {
		load := 0.1 + float64(loadRaw%40)/10 // 0.1 .. 4.0
		alpha := 0.5 + float64(alphaRaw%40)/100
		// Multi-hash: p_k is cumulative over rounds in the same table, so
		// it must be non-increasing.
		prev := 1.0
		for _, p := range MultiHashEmptyProbs(load, 10) {
			if p <= 0 || p > 1 || math.IsNaN(p) {
				return false
			}
			if p > prev+1e-12 {
				return false
			}
			prev = p
		}
		// Pipelined: p_k is the per-sub-table empty probability, which can
		// move either way; it may also underflow to exactly 0 at extreme
		// load, so only require [0,1].
		for _, p := range PipelinedEmptyProbs(load, alpha, 10) {
			if p < 0 || p > 1 || math.IsNaN(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUtilizationIncreasesWithDepth(t *testing.T) {
	for _, load := range []float64{1, 2, 3, 4} {
		prev := 0.0
		for d := 1; d <= 10; d++ {
			u := MultiHashUtilization(load, d)
			if u < prev-1e-12 {
				t.Errorf("load %v: utilization decreased at d=%d", load, d)
			}
			prev = u
		}
	}
}

func TestPaperUtilizationNumbers(t *testing.T) {
	// §III-B quotes for m/n = 1: utilization 63% at d=1, ~80% at d=3,
	// ~92% at d=10.
	checks := []struct {
		d    int
		want float64
		tol  float64
	}{
		{1, 0.63, 0.01},
		{3, 0.80, 0.02},
		{10, 0.92, 0.02},
	}
	for _, c := range checks {
		got := MultiHashUtilization(1.0, c.d)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("utilization(m/n=1, d=%d) = %.3f, want %.2f +- %.2f", c.d, got, c.want, c.tol)
		}
	}
}

func TestPipelinedBeatsMultiHash(t *testing.T) {
	// Fig. 2d: at d=3, pipelined tables improve utilization across loads,
	// with the best alpha around 0.7 gaining up to ~5.5% at m/n=1. At very
	// high load both organizations saturate near 1 and the analytic
	// difference shrinks to ~0 (and may be epsilon-negative), so require
	// strict improvement only where utilization is not yet saturated.
	for _, load := range []float64{1.0, 1.2, 1.5, 2.0} {
		imp := PipelinedImprovement(load, 0.7, 3)
		if imp <= 0 {
			t.Errorf("load %v: improvement %.4f, want > 0", load, imp)
		}
	}
	for _, load := range []float64{3.0, 4.0} {
		if imp := PipelinedImprovement(load, 0.7, 3); math.Abs(imp) > 0.01 {
			t.Errorf("load %v: |improvement| = %.4f, want ~0 at saturation", load, imp)
		}
	}
	if imp := PipelinedImprovement(1.0, 0.7, 3); imp < 0.03 || imp > 0.08 {
		t.Errorf("improvement at alpha=0.7, m/n=1 is %.4f, want ~0.055", imp)
	}
}

func TestModelMatchesSimulationMultiHash(t *testing.T) {
	// Fig. 2a: for m/n >= 2 the model is nearly exact; at m/n = 1 a small
	// deviation is expected (the paper notes it), so use a wider band.
	const n = 100000
	for _, tc := range []struct {
		load float64
		d    int
		tol  float64
	}{
		{1, 3, 0.03},
		{2, 3, 0.01},
		{3, 5, 0.01},
		{4, 8, 0.01},
	} {
		theory := MultiHashUtilization(tc.load, tc.d)
		sim := SimulateMultiHash(n, int(tc.load*n), tc.d, 42)
		if math.Abs(theory-sim) > tc.tol {
			t.Errorf("m/n=%v d=%d: theory %.4f vs sim %.4f (tol %v)", tc.load, tc.d, theory, sim, tc.tol)
		}
	}
}

func TestModelMatchesSimulationPipelined(t *testing.T) {
	// Fig. 2b/2c: the pipelined model matches simulation closely.
	const n = 100000
	for _, tc := range []struct {
		load  float64
		alpha float64
		d     int
	}{
		{1, 0.5, 3},
		{1, 0.7, 3},
		{2, 0.6, 3},
		{2, 0.8, 5},
	} {
		theory := PipelinedUtilization(tc.load, tc.alpha, tc.d)
		sim := SimulatePipelined(n, int(tc.load*n), tc.d, tc.alpha, 43)
		if math.Abs(theory-sim) > 0.02 {
			t.Errorf("m/n=%v alpha=%v d=%d: theory %.4f vs sim %.4f", tc.load, tc.alpha, tc.d, theory, sim)
		}
	}
}

func TestPipelineSizesSumAndShape(t *testing.T) {
	f := func(nRaw uint16, dRaw, aRaw uint8) bool {
		n := int(nRaw)%100000 + 10
		d := int(dRaw)%5 + 1
		alpha := 0.5 + float64(aRaw%45)/100
		sizes := PipelineSizes(n, d, alpha)
		if len(sizes) != d {
			return false
		}
		total := 0
		for _, s := range sizes {
			if s < 1 {
				return false
			}
			total += s
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSimulatorsDeterministic(t *testing.T) {
	if SimulateMultiHash(1000, 1000, 3, 7) != SimulateMultiHash(1000, 1000, 3, 7) {
		t.Error("SimulateMultiHash not deterministic")
	}
	if SimulatePipelined(1000, 1000, 3, 0.7, 7) != SimulatePipelined(1000, 1000, 3, 0.7, 7) {
		t.Error("SimulatePipelined not deterministic")
	}
}

func TestRoundsEquivalencePipelined(t *testing.T) {
	// The paper asserts (proof omitted) that for pipelined tables, feeding
	// flows in rounds — everyone through sub-table k before anyone tries
	// sub-table k+1 — does not affect the final occupancy. Verify the
	// utilizations agree within sampling noise.
	const n = 50000
	for _, tc := range []struct {
		load  float64
		alpha float64
		d     int
	}{
		{1, 0.7, 3}, {2, 0.7, 3}, {1, 0.5, 5}, {1.5, 0.8, 4},
	} {
		m := int(tc.load * n)
		interleaved := SimulatePipelined(n, m, tc.d, tc.alpha, 77)
		rounds := SimulatePipelinedRounds(n, m, tc.d, tc.alpha, 77)
		if diff := interleaved - rounds; diff > 0.005 || diff < -0.005 {
			t.Errorf("m/n=%v alpha=%v d=%d: interleaved %.4f vs rounds %.4f",
				tc.load, tc.alpha, tc.d, interleaved, rounds)
		}
	}
}

func TestRoundsDeviationMultiHash(t *testing.T) {
	// For the multi-hash table the rounds model deviates slightly at light
	// load (the paper's Fig. 2a observation) and converges for m/n >= 2.
	const n = 50000
	lightDiff := SimulateMultiHash(n, n, 5, 77) - SimulateMultiHashRounds(n, n, 5, 77)
	if lightDiff <= 0.005 || lightDiff > 0.05 {
		t.Errorf("light-load rounds deviation = %.4f, expected a small positive gap", lightDiff)
	}
	heavyDiff := SimulateMultiHash(n, 2*n, 3, 77) - SimulateMultiHashRounds(n, 2*n, 3, 77)
	if heavyDiff > 0.01 || heavyDiff < -0.01 {
		t.Errorf("heavy-load rounds deviation = %.4f, want ~0", heavyDiff)
	}
}

func TestUtilizationEdgeCases(t *testing.T) {
	if got := MultiHashUtilization(0.0001, 3); got > 0.001 {
		t.Errorf("tiny load utilization = %v", got)
	}
	if got := PipelinedUtilization(10, 0.7, 3); got < 0.99 {
		t.Errorf("huge load utilization = %v, want ~1", got)
	}
	if MultiHashUtilization(1, 0) != 0 || PipelinedUtilization(1, 0.7, 0) != 0 {
		t.Error("d=0 should yield 0 utilization")
	}
}
