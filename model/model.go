// Package model implements the probabilistic utilization model of §III-B of
// the paper, for both main-table organizations:
//
//   - Multi-hash table: one table of n buckets probed by d hash functions.
//     Round k feeds the m_k flows left over from round k−1 through hash h_k,
//     giving the empty-bucket recursion of Eq. (1):
//     p_k = p_{k−1} · exp(1 − m/n − p_{k−1}),  p_1 = exp(−m/n).
//   - Pipelined tables: d sub-tables with n_{k+1} = α·n_k. Eq. (4) gives
//     p_{k+1} = p_k^{1/α} · exp((1 − p_k)/α), and Eq. (5) the aggregate
//     utilization.
//
// The package also contains pure insertion simulators that replay the exact
// collision-resolution procedure on random flows, which Fig. 2 compares
// against the model curves.
package model

import (
	"math"
	"math/rand/v2"

	"repro/internal/hashing"
)

// MultiHashEmptyProbs returns p_1..p_d of Eq. (1) for traffic load
// load = m/n.
func MultiHashEmptyProbs(load float64, d int) []float64 {
	if d <= 0 {
		return nil
	}
	ps := make([]float64, d)
	ps[0] = math.Exp(-load)
	for k := 1; k < d; k++ {
		ps[k] = ps[k-1] * math.Exp(1-load-ps[k-1])
	}
	return ps
}

// MultiHashUtilization returns the modeled utilization 1 − p_d of a
// multi-hash table with d hash functions under load m/n.
func MultiHashUtilization(load float64, d int) float64 {
	ps := MultiHashEmptyProbs(load, d)
	if len(ps) == 0 {
		return 0
	}
	return 1 - ps[len(ps)-1]
}

// PipelinedEmptyProbs returns p_1..p_d of Eq. (4) for pipelined sub-tables
// with weight alpha under aggregate load m/n (n is the total bucket count).
func PipelinedEmptyProbs(load, alpha float64, d int) []float64 {
	if d <= 0 {
		return nil
	}
	ps := make([]float64, d)
	// n_1 = n·(1−α)/(1−α^d), so m_1/n_1 = load·(1−α^d)/(1−α).
	load1 := load * (1 - math.Pow(alpha, float64(d))) / (1 - alpha)
	ps[0] = math.Exp(-load1)
	for k := 1; k < d; k++ {
		p := math.Pow(ps[k-1], 1/alpha) * math.Exp((1-ps[k-1])/alpha)
		// At very light load the recursion converges to 1 and floating-point
		// error can push it epsilon above; clamp to a valid probability.
		ps[k] = math.Min(p, 1)
	}
	return ps
}

// PipelinedUtilization returns the modeled aggregate utilization of Eq. (5).
func PipelinedUtilization(load, alpha float64, d int) float64 {
	ps := PipelinedEmptyProbs(load, alpha, d)
	if len(ps) == 0 {
		return 0
	}
	var weighted float64
	for k, p := range ps {
		weighted += math.Pow(alpha, float64(k)) * p
	}
	return 1 - (1-alpha)/(1-math.Pow(alpha, float64(d)))*weighted
}

// PipelinedImprovement returns the utilization gain of pipelined tables
// over a multi-hash table at the same depth and load (Fig. 2d).
func PipelinedImprovement(load, alpha float64, d int) float64 {
	return PipelinedUtilization(load, alpha, d) - MultiHashUtilization(load, d)
}

// SimulateMultiHash inserts m distinct random flows into a multi-hash table
// of n buckets with d hash functions using HashFlow's collision resolution
// (first empty probe wins, no eviction) and returns the resulting
// utilization.
func SimulateMultiHash(n, m, d int, seed uint64) float64 {
	family := hashing.NewFamily(d, seed)
	occupied := make([]bool, n)
	used := 0
	rng := rand.New(rand.NewPCG(seed, 0x51a0))
	for i := 0; i < m; i++ {
		w1, w2 := rng.Uint64(), rng.Uint64()
		for k := 0; k < d; k++ {
			idx := family.Bucket(k, w1, w2, uint64(n))
			if !occupied[idx] {
				occupied[idx] = true
				used++
				break
			}
		}
	}
	return float64(used) / float64(n)
}

// SimulatePipelined inserts m distinct random flows into d pipelined
// sub-tables totalling n buckets with weight alpha, and returns the
// aggregate utilization.
func SimulatePipelined(n, m, d int, alpha float64, seed uint64) float64 {
	sizes := PipelineSizes(n, d, alpha)
	family := hashing.NewFamily(d, seed)
	tables := make([][]bool, d)
	for k, sz := range sizes {
		tables[k] = make([]bool, sz)
	}
	used := 0
	rng := rand.New(rand.NewPCG(seed, 0x51a1))
	for i := 0; i < m; i++ {
		w1, w2 := rng.Uint64(), rng.Uint64()
		for k := 0; k < d; k++ {
			idx := family.Bucket(k, w1, w2, uint64(len(tables[k])))
			if !tables[k][idx] {
				tables[k][idx] = true
				used++
				break
			}
		}
	}
	return float64(used) / float64(n)
}

// SimulateMultiHashRounds replays the *model's* modified process (§III-B):
// round k feeds every still-unplaced flow through hash h_k before any flow
// tries h_{k+1}. For the multi-hash table this differs slightly from the
// real interleaved algorithm at light load — the deviation the paper points
// out in Fig. 2a — and converges for m/n >= 2.
func SimulateMultiHashRounds(n, m, d int, seed uint64) float64 {
	family := hashing.NewFamily(d, seed)
	occupied := make([]bool, n)
	used := 0
	rng := rand.New(rand.NewPCG(seed, 0x51a0))
	type key struct{ w1, w2 uint64 }
	pending := make([]key, m)
	for i := range pending {
		pending[i] = key{rng.Uint64(), rng.Uint64()}
	}
	for k := 0; k < d && len(pending) > 0; k++ {
		var next []key
		for _, f := range pending {
			idx := family.Bucket(k, f.w1, f.w2, uint64(n))
			if occupied[idx] {
				next = append(next, f)
				continue
			}
			occupied[idx] = true
			used++
		}
		pending = next
	}
	return float64(used) / float64(n)
}

// SimulatePipelinedRounds replays the pipelined model's round process: all
// flows go through sub-table k before any flow tries sub-table k+1. The
// paper asserts (proof omitted) that for pipelined tables this rearrangement
// does not affect the final occupancy; TestRoundsEquivalencePipelined
// verifies the claim empirically against the interleaved SimulatePipelined.
func SimulatePipelinedRounds(n, m, d int, alpha float64, seed uint64) float64 {
	sizes := PipelineSizes(n, d, alpha)
	family := hashing.NewFamily(d, seed)
	tables := make([][]bool, d)
	for k, sz := range sizes {
		tables[k] = make([]bool, sz)
	}
	used := 0
	rng := rand.New(rand.NewPCG(seed, 0x51a1))
	type key struct{ w1, w2 uint64 }
	pending := make([]key, m)
	for i := range pending {
		pending[i] = key{rng.Uint64(), rng.Uint64()}
	}
	for k := 0; k < d && len(pending) > 0; k++ {
		var next []key
		for _, f := range pending {
			idx := family.Bucket(k, f.w1, f.w2, uint64(len(tables[k])))
			if tables[k][idx] {
				next = append(next, f)
				continue
			}
			tables[k][idx] = true
			used++
		}
		pending = next
	}
	return float64(used) / float64(n)
}

// PipelineSizes splits n buckets into d sub-tables decreasing geometrically
// by alpha (the same split internal/core uses), summing exactly to n.
func PipelineSizes(n, d int, alpha float64) []int {
	sizes := make([]int, d)
	n1 := float64(n) * (1 - alpha) / (1 - math.Pow(alpha, float64(d)))
	used := 0
	for k := 0; k < d; k++ {
		sz := int(math.Round(n1 * math.Pow(alpha, float64(k))))
		if sz < 1 {
			sz = 1
		}
		sizes[k] = sz
		used += sz
	}
	sizes[0] += n - used
	if sizes[0] < 1 {
		sizes[0] = 1
	}
	return sizes
}
