package telemetry

import (
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// get fetches url and returns the body, failing the test on error.
func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, body)
	}
	return string(body)
}

// getCode fetches url and returns only the status code.
func getCode(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestNilInstrumentsSafe pins the nil-receiver contract: every method
// on a nil instrument is a no-op, so instrumented packages may call
// unconditionally whether or not telemetry is wired.
func TestNilInstrumentsSafe(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(7)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(3)
	g.Add(-1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(9)
	h.ObserveDuration(time.Second)
	h.Merge(new(Histogram))
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

// refQuantile is the exact sample quantile the histogram approximates:
// the value at 1-based rank ceil(q*n) of the sorted samples.
func refQuantile(sorted []uint64, q float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// TestHistogramQuantileVsReference checks the power-of-two bucket
// error bound: for any sample set, the estimated quantile must lie
// within a factor of two of the exact quantile (the winning bucket
// spans [2^(i-1), 2^i)).
func TestHistogramQuantileVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() uint64{
		"uniform":   func() uint64 { return uint64(rng.Intn(1 << 20)) },
		"exp":       func() uint64 { return uint64(rng.ExpFloat64() * 50000) },
		"heavytail": func() uint64 { return uint64(1) << uint(rng.Intn(40)) },
		"constant":  func() uint64 { return 4096 },
	}
	for name, gen := range dists {
		t.Run(name, func(t *testing.T) {
			h := new(Histogram)
			samples := make([]uint64, 0, 20000)
			var wantSum uint64
			for i := 0; i < 20000; i++ {
				v := gen()
				samples = append(samples, v)
				wantSum += v
				h.Observe(v)
			}
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			s := h.Snapshot()
			if s.Count != uint64(len(samples)) {
				t.Fatalf("count %d, want %d", s.Count, len(samples))
			}
			if s.Sum != wantSum {
				t.Fatalf("sum %d, want %d", s.Sum, wantSum)
			}
			for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
				exact := refQuantile(samples, q)
				got := s.Quantile(q)
				// Error bound: the estimate lies in the bucket that
				// contains the exact value, so it is within [exact/2,
				// 2*exact] (shifted by one for tiny values).
				lo, hi := exact/2, 2*exact+1
				if got < lo || got > hi {
					t.Errorf("q=%.2f: estimate %d outside [%d,%d] (exact %d)", q, got, lo, hi, exact)
				}
			}
			if max, exact := s.Max(), samples[len(samples)-1]; max < exact || max > 2*exact+1 {
				t.Errorf("max %d outside [exact, 2*exact] (exact %d)", max, exact)
			}
		})
	}
}

// TestHistogramMerge checks that merging two histograms is exactly
// equivalent to observing the union of their samples.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, whole := new(Histogram), new(Histogram), new(Histogram)
	for i := 0; i < 10000; i++ {
		v := uint64(rng.Intn(1 << 30))
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		whole.Observe(v)
	}
	a.Merge(b)
	got, want := a.Snapshot(), whole.Snapshot()
	if got != want {
		t.Fatalf("merged snapshot differs from whole:\n got %+v\nwant %+v", got, want)
	}
}

// TestConcurrentAdd hammers one counter, gauge and histogram from many
// goroutines; run under -race this doubles as the data-race proof, and
// the final totals must be exact (no lost updates).
func TestConcurrentAdd(t *testing.T) {
	const workers = 8
	const perWorker = 10000
	c := new(Counter)
	g := new(Gauge)
	h := new(Histogram)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(uint64(w*perWorker + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*perWorker {
		t.Errorf("counter %d, want %d", c.Value(), workers*perWorker)
	}
	if g.Value() != workers*perWorker {
		t.Errorf("gauge %d, want %d", g.Value(), workers*perWorker)
	}
	if s := h.Snapshot(); s.Count != workers*perWorker {
		t.Errorf("histogram count %d, want %d", s.Count, workers*perWorker)
	}
}

// TestInstrumentAllocFree pins the zero-allocation contract of every
// hot-path method (the root alloc_test.go repeats this through the
// instrumented ingest path).
func TestInstrumentAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	c := new(Counter)
	g := new(Gauge)
	h := new(Histogram)
	var nilC *Counter
	var nilH *Histogram
	cases := map[string]func(){
		"Counter.Add":       func() { c.Add(3) },
		"Gauge.Set":         func() { g.Set(9) },
		"Histogram.Observe": func() { h.Observe(1234) },
		"nil Counter.Add":   func() { nilC.Add(3) },
		"nil Hist.Observe":  func() { nilH.Observe(5) },
	}
	for name, fn := range cases {
		if allocs := testing.AllocsPerRun(1000, fn); allocs != 0 {
			t.Errorf("%s allocates %.0f times per call, want 0", name, allocs)
		}
	}
}

// TestRegistryGetOrCreate pins idempotent registration: asking twice
// for the same name returns the same instrument, and a kind clash
// panics (a programming error, loudly).
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help")
	if a != b {
		t.Fatal("re-registration returned a new counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x_total", "boom")
}

// TestName pins the label-baking format, including escaping.
func TestName(t *testing.T) {
	if got := Name("x_total"); got != "x_total" {
		t.Errorf("no labels: %q", got)
	}
	if got := Name("x_total", "reader", "0", "mode", "batch"); got != `x_total{reader="0",mode="batch"}` {
		t.Errorf("labels: %q", got)
	}
	if got := Name("x", "k", `a"b\c`); got != `x{k="a\"b\\c"}` {
		t.Errorf("escaping: %q", got)
	}
}

// TestPrometheusExposition checks the text-format rendering end to
// end: family HELP/TYPE headers, counter and gauge lines, cumulative
// histogram buckets, and sampler output interleaved in sorted order.
func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("pkts_total", "packets seen").Add(41)
	r.Counter(Name("reader_pkts_total", "reader", "1"), "per-reader packets").Add(7)
	r.Gauge("queue_len", "queue depth").Set(-3)
	h := r.Histogram("lat_ns", "latency")
	h.Observe(0)
	h.Observe(3) // bucket len=2, bound 3
	h.Observe(900)
	r.RegisterSampler(func(e *Expo) {
		e.Counter("sampled_total", "from sampler", 5)
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pkts_total packets seen",
		"# TYPE pkts_total counter",
		"pkts_total 41",
		`reader_pkts_total{reader="1"} 7`,
		"# TYPE queue_len gauge",
		"queue_len -3",
		"# TYPE lat_ns histogram",
		`lat_ns_bucket{le="0"} 1`,
		`lat_ns_bucket{le="3"} 2`,
		`lat_ns_bucket{le="1023"} 3`,
		`lat_ns_bucket{le="+Inf"} 3`,
		"lat_ns_sum 903",
		"lat_ns_count 3",
		"sampled_total 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Labeled histogram: le must join the existing labels.
	lh := r.Histogram(Name("stage_ns", "stage", "flush"), "stage latency")
	lh.Observe(100)
	b.Reset()
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `stage_ns_bucket{stage="flush",le="127"} 1`) {
		t.Errorf("labeled histogram bucket missing:\n%s", b.String())
	}
}

// TestJSONExposition checks the JSON view parses and carries the same
// values, with histogram summaries.
func TestJSONExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(12)
	h := r.Histogram("d_ns", "")
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal([]byte(b.String()), &m); err != nil {
		t.Fatalf("JSON view does not parse: %v\n%s", err, b.String())
	}
	if string(m["a_total"]) != "12" {
		t.Errorf("a_total = %s", m["a_total"])
	}
	var hist struct {
		Count uint64 `json:"count"`
		Sum   uint64 `json:"sum"`
		P50   uint64 `json:"p50"`
	}
	if err := json.Unmarshal(m["d_ns"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 100 || hist.Sum != 100000 {
		t.Errorf("histogram summary %+v", hist)
	}
	if hist.P50 < 512 || hist.P50 > 2000 {
		t.Errorf("p50 %d outside the bucket containing 1000", hist.P50)
	}
}

// TestOpsEndpoints drives the mounted mux: /metrics in both formats,
// /healthz structure (including the store/checkpoint recovery facts),
// and pprof presence only under debug.
func TestOpsEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "").Inc()
	health := func() Health {
		return Health{
			Status:        "ok",
			UptimeSeconds: 1.5,
			Epochs:        9,
			Store:         &StoreHealth{Path: "x.store", State: "recovered", EpochsRecovered: 4, TornBytes: 13},
			Checkpoint:    &CheckpointHealth{Path: "x.ckpt", State: "restored", Epochs: 4, ForecastKeys: 2},
		}
	}
	for _, debug := range []bool{false, true} {
		m := http.NewServeMux()
		Ops{Registry: r, Health: health, Debug: debug}.Register(m)
		srv := httptest.NewServer(m)
		defer srv.Close()

		resp := get(t, srv.URL+"/metrics")
		if !strings.Contains(resp, "up_total 1") {
			t.Errorf("text metrics missing counter:\n%s", resp)
		}
		resp = get(t, srv.URL+"/metrics?format=json")
		if !strings.Contains(resp, `"up_total": 1`) {
			t.Errorf("json metrics missing counter:\n%s", resp)
		}
		resp = get(t, srv.URL+"/healthz")
		var h Health
		if err := json.Unmarshal([]byte(resp), &h); err != nil {
			t.Fatalf("healthz does not parse: %v\n%s", err, resp)
		}
		if h.Status != "ok" || h.Epochs != 9 {
			t.Errorf("healthz snapshot %+v", h)
		}
		if h.Store == nil || h.Store.State != "recovered" || h.Store.TornBytes != 13 {
			t.Errorf("healthz store %+v", h.Store)
		}
		if h.Checkpoint == nil || h.Checkpoint.State != "restored" {
			t.Errorf("healthz checkpoint %+v", h.Checkpoint)
		}

		code := getCode(t, srv.URL+"/debug/pprof/cmdline")
		if debug && code != 200 {
			t.Errorf("debug on: pprof returned %d", code)
		}
		if !debug && code != 404 {
			t.Errorf("debug off: pprof returned %d, want 404", code)
		}
	}
}
