package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestInstrumentMux(t *testing.T) {
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/topk", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	})
	srv := httptest.NewServer(InstrumentMux(reg, mux, "vantage", "v1"))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/topk")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	// The catch-all is delegated uninstrumented.
	resp, err := http.Get(srv.URL + "/other")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `http_requests_total{vantage="v1",endpoint="/topk"} 3`) {
		t.Fatalf("missing counter:\n%s", out)
	}
	if !strings.Contains(out, `http_request_ns_count{vantage="v1",endpoint="/topk"} 3`) {
		t.Fatalf("missing histogram count:\n%s", out)
	}
	if strings.Contains(out, `endpoint="/"`) {
		t.Fatalf("catch-all was instrumented:\n%s", out)
	}
}

func TestInstrumentMuxStreamingWriter(t *testing.T) {
	// The wrapper must pass the original ResponseWriter through so
	// streaming handlers keep Flusher/deadline control (SSE).
	reg := NewRegistry()
	mux := http.NewServeMux()
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if _, ok := w.(http.Flusher); !ok {
			http.Error(w, "no flusher", http.StatusInternalServerError)
			return
		}
		io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(InstrumentMux(reg, mux))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}
