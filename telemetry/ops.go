package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// StoreHealth reports the record store's recovery outcome — the facts
// previously only printed to stdout at startup, now queryable so a
// soak harness or operator can assert recovery without scraping logs.
type StoreHealth struct {
	Path string `json:"path"`
	// State is "created" for a fresh store or "recovered" when an
	// existing file was reopened (possibly truncating a torn tail).
	State           string `json:"state"`
	EpochsRecovered int    `json:"epochs_recovered"`
	TornBytes       int64  `json:"torn_bytes"`
}

// CheckpointHealth reports the detector checkpoint restore outcome.
type CheckpointHealth struct {
	Path string `json:"path"`
	// State is "restored" when a checkpoint was loaded at boot,
	// "cold" when none was usable, or "disabled" when checkpointing
	// is off.
	State        string `json:"state"`
	Epochs       uint64 `json:"epochs"`
	ForecastKeys int    `json:"forecast_keys"`
	Error        string `json:"error,omitempty"`
}

// VantageHealth groups per-vantage state for multi-vantage daemons.
type VantageHealth struct {
	Name       string            `json:"name"`
	Store      *StoreHealth      `json:"store,omitempty"`
	Checkpoint *CheckpointHealth `json:"checkpoint,omitempty"`
}

// Health is the /healthz response body: a structured snapshot of the
// process, replacing ad-hoc startup printouts as the source of truth
// for liveness tooling.
type Health struct {
	// Status is "ok" or "degraded" (a component reported an error but
	// the process is still serving).
	Status        string            `json:"status"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Epochs        uint64            `json:"epochs"`
	LastError     string            `json:"last_error,omitempty"`
	Store         *StoreHealth      `json:"store,omitempty"`
	Checkpoint    *CheckpointHealth `json:"checkpoint,omitempty"`
	Vantages      []VantageHealth   `json:"vantages,omitempty"`
}

// Ops is the shared operational HTTP surface. Both daemons mount it on
// their existing query listener so one port serves data and ops.
type Ops struct {
	Registry *Registry
	// Health builds the current /healthz snapshot. Called per request;
	// must be safe for concurrent use.
	Health func() Health
	// Debug additionally mounts net/http/pprof under /debug/pprof/.
	// Off by default: profiling endpoints can stall the process and do
	// not belong on an unauthenticated production port.
	Debug bool
}

// Register mounts /metrics, /healthz and (when Debug) /debug/pprof/*
// on mux.
func (o Ops) Register(mux *http.ServeMux) {
	if o.Registry != nil {
		mux.HandleFunc("/metrics", o.serveMetrics)
	}
	if o.Health != nil {
		mux.HandleFunc("/healthz", o.serveHealth)
	}
	if o.Debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// serveMetrics renders Prometheus text by default; `?format=json` or
// an Accept header preferring application/json selects the JSON view.
func (o Ops) serveMetrics(w http.ResponseWriter, r *http.Request) {
	wantJSON := r.URL.Query().Get("format") == "json" ||
		strings.HasPrefix(r.Header.Get("Accept"), "application/json")
	if wantJSON {
		w.Header().Set("Content-Type", "application/json")
		_ = o.Registry.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = o.Registry.WritePrometheus(w)
}

func (o Ops) serveHealth(w http.ResponseWriter, r *http.Request) {
	h := o.Health()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(h)
}

// Uptime converts a start time into the seconds-precision float the
// Health snapshot carries.
func Uptime(start time.Time) float64 {
	return time.Since(start).Seconds()
}
