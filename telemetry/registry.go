package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// metricKind discriminates what a registered name exposes.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// metric is one registered instrument.
type metric struct {
	name string
	help string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry owns a set of named instruments plus scrape-time samplers,
// and renders them in Prometheus text format or JSON. Registration is
// get-or-create by full name (labels included), so re-registering the
// same metric — daemons restarted inside one process, tests calling
// run() repeatedly — returns the existing instrument instead of
// duplicating the series.
//
// Instruments are for event-time signals (latencies, sizes) the hot
// path must record as they happen. Samplers are for state that already
// lives in the instrumented packages' own atomics (reader counters,
// queue depths): they run only at scrape time, so exposing them costs
// the hot path nothing.
type Registry struct {
	mu       sync.Mutex
	metrics  map[string]*metric
	order    []string // registration order; sorted at exposition
	samplers []func(*Expo)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// Name bakes label pairs into a metric name:
// Name("x_total", "reader", "0") → `x_total{reader="0"}`.
// Labels resolve once here, never on the hot path. Pairs must be
// complete; values are escaped per the Prometheus text format.
func Name(base string, labelPairs ...string) string {
	if len(labelPairs) == 0 {
		return base
	}
	if len(labelPairs)%2 != 0 {
		panic("telemetry.Name: odd label pair count for " + base)
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i < len(labelPairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(labelPairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labelPairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter returns the counter registered under name, creating it if
// needed. Panics if name is already registered as a different kind —
// that is a programming error, not a runtime condition.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.getOrCreate(name, help, kindCounter)
	return m.c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.getOrCreate(name, help, kindGauge)
	return m.g
}

// Histogram returns the histogram registered under name, creating it
// if needed.
func (r *Registry) Histogram(name, help string) *Histogram {
	m := r.getOrCreate(name, help, kindHistogram)
	return m.h
}

func (r *Registry) getOrCreate(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = new(Counter)
	case kindGauge:
		m.g = new(Gauge)
	case kindHistogram:
		m.h = new(Histogram)
	}
	r.metrics[name] = m
	r.order = append(r.order, name)
	return m
}

// RegisterSampler adds a scrape-time callback. Samplers run on every
// exposition, in registration order, and emit point-in-time samples
// for state owned elsewhere. They must be safe to call concurrently
// with the instrumented code (poll atomics, take read locks — never
// block the hot path).
func (r *Registry) RegisterSampler(fn func(*Expo)) {
	r.mu.Lock()
	r.samplers = append(r.samplers, fn)
	r.mu.Unlock()
}

// Expo accumulates samples during one exposition pass.
type Expo struct {
	samples []sample
}

type sample struct {
	name string
	help string
	kind metricKind
	val  float64
	hist HistSnapshot
}

// Counter emits a monotonic counter sample.
func (e *Expo) Counter(name, help string, v uint64) {
	e.samples = append(e.samples, sample{name: name, help: help, kind: kindCounter, val: float64(v)})
}

// Gauge emits an instantaneous sample.
func (e *Expo) Gauge(name, help string, v float64) {
	e.samples = append(e.samples, sample{name: name, help: help, kind: kindGauge, val: v})
}

// Histogram emits a histogram snapshot sample.
func (e *Expo) Histogram(name, help string, s HistSnapshot) {
	e.samples = append(e.samples, sample{name: name, help: help, kind: kindHistogram, hist: s})
}

// gather snapshots every registered instrument and runs every sampler,
// returning samples sorted by (family, name) so each metric family is
// contiguous in the output.
func (r *Registry) gather() []sample {
	r.mu.Lock()
	metrics := make([]*metric, 0, len(r.order))
	for _, name := range r.order {
		metrics = append(metrics, r.metrics[name])
	}
	samplers := make([]func(*Expo), len(r.samplers))
	copy(samplers, r.samplers)
	r.mu.Unlock()

	e := &Expo{samples: make([]sample, 0, len(metrics)+16)}
	for _, m := range metrics {
		switch m.kind {
		case kindCounter:
			e.Counter(m.name, m.help, m.c.Value())
		case kindGauge:
			e.Gauge(m.name, m.help, float64(m.g.Value()))
		case kindHistogram:
			e.Histogram(m.name, m.help, m.h.Snapshot())
		}
	}
	for _, fn := range samplers {
		fn(e)
	}
	sort.Slice(e.samples, func(i, j int) bool {
		fi, _ := splitName(e.samples[i].name)
		fj, _ := splitName(e.samples[j].name)
		if fi != fj {
			return fi < fj
		}
		return e.samples[i].name < e.samples[j].name
	})
	return e.samples
}

// splitName separates `base{labels}` into base and the labels body
// (no braces); labels is empty for an unlabeled name.
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (version 0.0.4). Histograms emit cumulative
// `_bucket{le=...}` series for non-empty buckets plus `+Inf`, `_sum`
// and `_count`. Output is deterministic: families sorted by name,
// HELP/TYPE emitted once per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.gather()
	var b strings.Builder
	b.Grow(4096)
	lastFamily := ""
	for _, s := range samples {
		family, labels := splitName(s.name)
		if family != lastFamily {
			b.WriteString("# HELP ")
			b.WriteString(family)
			b.WriteByte(' ')
			b.WriteString(strings.ReplaceAll(s.help, "\n", " "))
			b.WriteByte('\n')
			b.WriteString("# TYPE ")
			b.WriteString(family)
			b.WriteByte(' ')
			b.WriteString(s.kind.String())
			b.WriteByte('\n')
			lastFamily = family
		}
		switch s.kind {
		case kindCounter, kindGauge:
			b.WriteString(s.name)
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.val))
			b.WriteByte('\n')
		case kindHistogram:
			writePromHistogram(&b, family, labels, s.hist)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writePromHistogram(b *strings.Builder, family, labels string, h HistSnapshot) {
	writeBucket := func(le string, cum uint64) {
		b.WriteString(family)
		b.WriteString("_bucket{")
		if labels != "" {
			b.WriteString(labels)
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteString(`"} `)
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	var cum uint64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		cum += c
		writeBucket(strconv.FormatUint(BucketBound(i), 10), cum)
	}
	writeBucket("+Inf", h.Count)
	suffix := func(sfx, val string) {
		b.WriteString(family)
		b.WriteString(sfx)
		if labels != "" {
			b.WriteByte('{')
			b.WriteString(labels)
			b.WriteByte('}')
		}
		b.WriteByte(' ')
		b.WriteString(val)
		b.WriteByte('\n')
	}
	suffix("_sum", strconv.FormatUint(h.Sum, 10))
	suffix("_count", strconv.FormatUint(h.Count, 10))
}

// formatFloat renders integral values without an exponent or trailing
// zeros so counter output stays exact and grep-friendly.
func formatFloat(v float64) string {
	if v == float64(uint64(v)) {
		return strconv.FormatUint(uint64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteJSON renders every metric as one flat JSON object keyed by full
// metric name. Counters and gauges map to numbers; histograms map to
// {count, sum, mean, p50, p95, p99, max}. Keys are sorted.
func (r *Registry) WriteJSON(w io.Writer) error {
	samples := r.gather()
	sort.Slice(samples, func(i, j int) bool { return samples[i].name < samples[j].name })
	var b strings.Builder
	b.Grow(4096)
	b.WriteString("{\n")
	for i, s := range samples {
		if i > 0 {
			b.WriteString(",\n")
		}
		b.WriteString("  ")
		b.WriteString(strconv.Quote(s.name))
		b.WriteString(": ")
		switch s.kind {
		case kindCounter, kindGauge:
			b.WriteString(formatFloat(s.val))
		case kindHistogram:
			h := s.hist
			fmt.Fprintf(&b, `{"count":%d,"sum":%d,"mean":%.1f,"p50":%d,"p95":%d,"p99":%d,"max":%d}`,
				h.Count, h.Sum, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
