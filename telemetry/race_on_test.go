//go:build race

package telemetry

// raceEnabled gates allocation-count assertions: the race detector's
// instrumentation allocates, so AllocsPerRun is meaningless under -race.
const raceEnabled = true
