package events

import (
	"strconv"
	"sync"
	"time"
)

// StageTiming is one named stage of an epoch's drain pipeline.
type StageTiming struct {
	Name string `json:"name"`
	Ns   int64  `json:"ns"`
}

// EpochTrace is the full timeline of one measurement epoch: what ran, in
// order, and how long each stage took.
type EpochTrace struct {
	Vantage string        `json:"vantage,omitempty"`
	Epoch   int           `json:"epoch"`
	Time    time.Time     `json:"time"`
	Records int           `json:"records"`
	Alerts  int           `json:"alerts"`
	Stages  []StageTiming `json:"stages"`
	TotalNs int64         `json:"total_ns"`
}

// Tracer retains the last K epoch traces in a ring.
type Tracer struct {
	mu       sync.Mutex
	ring     []EpochTrace
	start, n int
}

// DefaultTraceKeep is the trace retention when NewTracer is given a
// non-positive size.
const DefaultTraceKeep = 64

// NewTracer returns a tracer retaining the last keep epochs
// (DefaultTraceKeep if keep <= 0).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = DefaultTraceKeep
	}
	return &Tracer{ring: make([]EpochTrace, keep)}
}

// Record retains tr, evicting the oldest trace when full.
func (t *Tracer) Record(tr EpochTrace) {
	t.mu.Lock()
	if t.n < len(t.ring) {
		t.ring[(t.start+t.n)%len(t.ring)] = tr
		t.n++
	} else {
		t.ring[t.start] = tr
		t.start = (t.start + 1) % len(t.ring)
	}
	t.mu.Unlock()
}

// Append appends the retained traces oldest-first and returns the extended
// slice.
func (t *Tracer) Append(dst []EpochTrace) []EpochTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := 0; i < t.n; i++ {
		dst = append(dst, t.ring[(t.start+i)%len(t.ring)])
	}
	return dst
}

// Len returns how many traces are retained.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Span accumulates one epoch's stage timings and finishes as both an
// EpochTrace and a KindEpoch event. It is built and finished on the epoch
// (drain) goroutine and is not safe for concurrent use.
type Span struct {
	trace EpochTrace
}

// Begin opens a span for one epoch. ts may be zero; End stamps the current
// time then.
func Begin(vantage string, epoch int, ts time.Time, records int) *Span {
	return &Span{trace: EpochTrace{
		Vantage: vantage,
		Epoch:   epoch,
		Time:    ts,
		Records: records,
	}}
}

// Time runs fn and records its wall duration as a stage.
func (s *Span) Time(stage string, fn func()) {
	start := time.Now()
	fn()
	s.StageNs(stage, time.Since(start).Nanoseconds())
}

// StageNs records an externally measured stage duration.
func (s *Span) StageNs(stage string, ns int64) {
	s.trace.Stages = append(s.trace.Stages, StageTiming{Name: stage, Ns: ns})
	s.trace.TotalNs += ns
}

// AddAlerts notes alerts emitted during the epoch.
func (s *Span) AddAlerts(n int) { s.trace.Alerts += n }

// End finishes the span: the trace is retained by tr and a KindEpoch event
// summarizing it is published on bus. Either may be nil. The published
// event's attrs carry the record/alert counts and every stage duration.
func (s *Span) End(bus *Bus, tr *Tracer) {
	if s.trace.Time.IsZero() {
		s.trace.Time = time.Now()
	}
	if tr != nil {
		tr.Record(s.trace)
	}
	if bus == nil {
		return
	}
	attrs := make([]Attr, 0, len(s.trace.Stages)+3)
	attrs = append(attrs,
		Attr{Key: "records", Value: strconv.Itoa(s.trace.Records)},
		Attr{Key: "alerts", Value: strconv.Itoa(s.trace.Alerts)},
		Attr{Key: "total_ns", Value: strconv.FormatInt(s.trace.TotalNs, 10)},
	)
	for _, st := range s.trace.Stages {
		attrs = append(attrs, Attr{Key: st.Name + "_ns", Value: strconv.FormatInt(st.Ns, 10)})
	}
	sev := SeverityInfo
	if s.trace.Alerts > 0 {
		sev = SeverityWarning
	}
	bus.Publish(Event{
		Time:     s.trace.Time,
		Kind:     KindEpoch,
		Severity: sev,
		Vantage:  s.trace.Vantage,
		Epoch:    s.trace.Epoch,
		Msg:      "epoch drained",
		Attrs:    attrs,
	})
}
