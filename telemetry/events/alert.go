package events

import (
	"strconv"

	"repro/detect"
	"repro/flow"
	"repro/telemetry"
)

// AlertEvent converts a detection alert into a bus event. It is called from
// detector sinks, which run on the epoch/drain goroutine — never the ingest
// path — so the per-alert allocations here are off the hot path.
func AlertEvent(vantage string, a detect.Alert) Event {
	sev := SeverityWarning
	if a.Severity >= detect.SeverityCritical {
		sev = SeverityCritical
	} else if a.Severity <= detect.SeverityInfo {
		sev = SeverityInfo
	}
	// Subject mirrors query/alerts.go: full 5-tuple for key-carrying
	// kinds, the relevant address for spreader/fan-in, the metric name
	// for anomalies.
	var subject string
	switch a.Kind {
	case detect.KindHeavyChange, detect.KindForecast, detect.KindNetwide:
		subject = a.Key.String()
	case detect.KindSuperspreader:
		subject = flow.IPString(a.Key.SrcIP)
	case detect.KindVictimFanIn:
		subject = flow.IPString(a.Key.DstIP)
	default:
		subject = a.Metric
	}
	return Event{
		Time:     a.Time,
		Kind:     KindAlert,
		Severity: sev,
		Vantage:  vantage,
		Epoch:    a.Epoch,
		Msg:      "alert: " + a.Kind.String(),
		Attrs: []Attr{
			{Key: "alert_kind", Value: a.Kind.String()},
			{Key: "alert_severity", Value: a.Severity.String()},
			{Key: "subject", Value: subject},
			{Key: "metric", Value: a.Metric},
			{Key: "value", Value: strconv.FormatFloat(a.Value, 'g', -1, 64)},
			{Key: "baseline", Value: strconv.FormatFloat(a.Baseline, 'g', -1, 64)},
			{Key: "score", Value: strconv.FormatFloat(a.Score, 'g', -1, 64)},
		},
	}
}

// RegisterMetrics exposes bus totals in reg at scrape time: events
// published, fan-out drops from stalled subscriber queues, and the live
// subscriber count. labelPairs follow telemetry.Name conventions.
func RegisterMetrics(reg *telemetry.Registry, b *Bus, labelPairs ...string) {
	published := telemetry.Name("events_published_total", labelPairs...)
	dropped := telemetry.Name("events_dropped_total", labelPairs...)
	subs := telemetry.Name("events_subscribers", labelPairs...)
	reg.RegisterSampler(func(e *telemetry.Expo) {
		p, d, s := b.Stats()
		e.Counter(published, "pipeline events published on the event bus", p)
		e.Counter(dropped, "events discarded because a subscriber queue was full", d)
		e.Gauge(subs, "live event-stream subscribers", float64(s))
	})
}
