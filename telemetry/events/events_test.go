package events

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"
	"time"

	"repro/detect"
)

func TestBusSeqAndRing(t *testing.T) {
	b := NewBus(4)
	if b.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", b.Cap())
	}
	for i := 0; i < 6; i++ {
		seq := b.Publish(Event{Kind: KindLog, Msg: "m"})
		if seq != uint64(i+1) {
			t.Fatalf("publish %d: seq = %d, want %d", i, seq, i+1)
		}
	}
	if got := b.LastSeq(); got != 6 {
		t.Fatalf("LastSeq = %d, want 6", got)
	}
	// Ring of 4 after 6 publishes retains seqs 3..6.
	if got := b.OldestSeq(); got != 3 {
		t.Fatalf("OldestSeq = %d, want 3", got)
	}
	all := b.AppendSince(nil, 0, Filter{})
	if len(all) != 4 || all[0].Seq != 3 || all[3].Seq != 6 {
		t.Fatalf("AppendSince(0) = %+v, want seqs 3..6", all)
	}
	tail := b.AppendSince(nil, 5, Filter{})
	if len(tail) != 1 || tail[0].Seq != 6 {
		t.Fatalf("AppendSince(5) = %+v, want just seq 6", tail)
	}
}

func TestBusDefaultTimeStamp(t *testing.T) {
	b := NewBus(2)
	before := time.Now()
	b.Publish(Event{Kind: KindLog})
	got := b.AppendSince(nil, 0, Filter{})
	if len(got) != 1 || got[0].Time.Before(before) {
		t.Fatalf("publish did not stamp time: %+v", got)
	}
}

func TestFilterMatch(t *testing.T) {
	e := Event{Kind: KindAlert, Severity: SeverityWarning, Vantage: "v1"}
	cases := []struct {
		f    Filter
		want bool
	}{
		{Filter{}, true},
		{Filter{Kinds: KindSet(0).With(KindAlert)}, true},
		{Filter{Kinds: KindSet(0).With(KindEpoch)}, false},
		{Filter{Kinds: KindSet(0).With(KindEpoch).With(KindAlert)}, true},
		{Filter{MinSeverity: SeverityWarning}, true},
		{Filter{MinSeverity: SeverityCritical}, false},
		{Filter{Vantage: "v1"}, true},
		{Filter{Vantage: "v2"}, false},
		{Filter{Kinds: KindSet(0).With(KindAlert), MinSeverity: SeverityInfo, Vantage: "v1"}, true},
	}
	for i, c := range cases {
		if got := c.f.Match(e); got != c.want {
			t.Errorf("case %d: Match = %v, want %v", i, got, c.want)
		}
	}
}

func TestSubscribeLiveAndReplay(t *testing.T) {
	b := NewBus(8)
	for i := 0; i < 3; i++ {
		b.Publish(Event{Kind: KindEpoch, Epoch: i})
	}
	// Live-only subscriber sees nothing retained.
	live := b.Subscribe(Filter{}, -1, 4)
	defer b.Unsubscribe(live)
	select {
	case e := <-live.Events():
		t.Fatalf("live subscriber got replayed event %+v", e)
	default:
	}
	// Resuming from seq 1 replays 2 and 3 before any live event.
	resume := b.Subscribe(Filter{}, 1, 4)
	defer b.Unsubscribe(resume)
	b.Publish(Event{Kind: KindEpoch, Epoch: 3})
	want := []uint64{2, 3, 4}
	for i, w := range want {
		select {
		case e := <-resume.Events():
			if e.Seq != w {
				t.Fatalf("resume event %d: seq = %d, want %d", i, e.Seq, w)
			}
		case <-time.After(time.Second):
			t.Fatalf("resume event %d: timeout", i)
		}
	}
}

func TestSubscribeStaleResumeToken(t *testing.T) {
	// A Last-Event-ID beyond LastSeq (prior process incarnation) must
	// replay history instead of waiting for a seq that will never come.
	b := NewBus(8)
	b.Publish(Event{Kind: KindLog, Msg: "a"})
	b.Publish(Event{Kind: KindLog, Msg: "b"})
	sub := b.Subscribe(Filter{}, 999, 4)
	defer b.Unsubscribe(sub)
	var got []uint64
	for len(got) < 2 {
		select {
		case e := <-sub.Events():
			got = append(got, e.Seq)
		case <-time.After(time.Second):
			t.Fatalf("timeout; got %v", got)
		}
	}
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("stale resume replayed %v, want [1 2]", got)
	}
}

func TestSubscriberDropAccounting(t *testing.T) {
	b := NewBus(16)
	sub := b.Subscribe(Filter{}, -1, 2)
	defer b.Unsubscribe(sub)
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: KindLog})
	}
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	_, dropped, subs := b.Stats()
	if dropped != 3 || subs != 1 {
		t.Fatalf("Stats dropped=%d subs=%d, want 3, 1", dropped, subs)
	}
	// Publish never blocked: the queue still holds the first 2.
	e := <-sub.Events()
	if e.Seq != 1 {
		t.Fatalf("first queued seq = %d, want 1", e.Seq)
	}
}

func TestSubscribeFilterApplies(t *testing.T) {
	b := NewBus(16)
	b.Publish(Event{Kind: KindLog})
	b.Publish(Event{Kind: KindAlert, Severity: SeverityCritical})
	sub := b.Subscribe(Filter{Kinds: KindSet(0).With(KindAlert)}, 0, 4)
	defer b.Unsubscribe(sub)
	b.Publish(Event{Kind: KindEpoch})
	b.Publish(Event{Kind: KindAlert, Severity: SeverityWarning})
	want := []Kind{KindAlert, KindAlert}
	for i, w := range want {
		select {
		case e := <-sub.Events():
			if e.Kind != w {
				t.Fatalf("event %d: kind = %v, want %v", i, e.Kind, w)
			}
		case <-time.After(time.Second):
			t.Fatalf("event %d: timeout", i)
		}
	}
}

func TestUnsubscribeClosesQueue(t *testing.T) {
	b := NewBus(4)
	sub := b.Subscribe(Filter{}, -1, 2)
	b.Unsubscribe(sub)
	b.Unsubscribe(sub) // idempotent
	if _, ok := <-sub.Events(); ok {
		t.Fatal("queue not closed after Unsubscribe")
	}
	b.Publish(Event{Kind: KindLog}) // must not panic on closed channel
}

func TestKindSeverityRoundTrip(t *testing.T) {
	for k := KindLog; k <= kindMax; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("kind %v: round trip got %v, %v", k, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted junk")
	}
	for s := SeverityInfo; s <= SeverityCritical; s++ {
		got, err := ParseSeverity(s.String())
		if err != nil || got != s {
			t.Fatalf("severity %v: round trip got %v, %v", s, got, err)
		}
	}
	if _, err := ParseSeverity("nope"); err == nil {
		t.Fatal("ParseSeverity accepted junk")
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := Event{
		Seq: 7, Time: time.Unix(100, 0).UTC(), Kind: KindAlert,
		Severity: SeverityCritical, Vantage: "v1", Epoch: 3,
		Msg:   "alert: heavychange",
		Attrs: []Attr{{Key: "score", Value: "4.2"}},
	}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"kind":"alert"`) || !strings.Contains(string(raw), `"severity":"critical"`) {
		t.Fatalf("names not marshalled as strings: %s", raw)
	}
	var out Event
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindAlert || out.Severity != SeverityCritical || out.Seq != 7 || out.Epoch != 3 {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		tr.Record(EpochTrace{Epoch: i})
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	got := tr.Append(nil)
	if len(got) != 3 || got[0].Epoch != 2 || got[2].Epoch != 4 {
		t.Fatalf("Append = %+v, want epochs 2..4", got)
	}
}

func TestSpanEnd(t *testing.T) {
	b := NewBus(8)
	tr := NewTracer(4)
	sp := Begin("v1", 9, time.Unix(50, 0), 123)
	sp.Time("extract", func() { time.Sleep(time.Millisecond) })
	sp.StageNs("fsync", 42)
	sp.AddAlerts(2)
	sp.End(b, tr)

	traces := tr.Append(nil)
	if len(traces) != 1 {
		t.Fatalf("tracer retained %d traces, want 1", len(traces))
	}
	got := traces[0]
	if got.Vantage != "v1" || got.Epoch != 9 || got.Records != 123 || got.Alerts != 2 {
		t.Fatalf("trace fields: %+v", got)
	}
	if len(got.Stages) != 2 || got.Stages[0].Name != "extract" || got.Stages[1].Ns != 42 {
		t.Fatalf("trace stages: %+v", got.Stages)
	}
	if got.Stages[0].Ns <= 0 || got.TotalNs != got.Stages[0].Ns+42 {
		t.Fatalf("trace timing: %+v total=%d", got.Stages, got.TotalNs)
	}

	evs := b.AppendSince(nil, 0, Filter{})
	if len(evs) != 1 {
		t.Fatalf("bus has %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != KindEpoch || e.Epoch != 9 || e.Severity != SeverityWarning {
		t.Fatalf("epoch event: %+v", e)
	}
	attrs := map[string]string{}
	for _, a := range e.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["records"] != "123" || attrs["alerts"] != "2" || attrs["fsync_ns"] != "42" {
		t.Fatalf("epoch event attrs: %v", attrs)
	}

	// Nil bus/tracer must be safe.
	Begin("", 0, time.Time{}, 0).End(nil, nil)
}

func TestAlertEvent(t *testing.T) {
	a := detect.Alert{
		Kind:     detect.KindAnomaly,
		Severity: detect.SeverityCritical,
		Epoch:    4,
		Time:     time.Unix(10, 0),
		Metric:   "packets",
		Value:    100, Baseline: 10, Score: 9,
	}
	e := AlertEvent("v2", a)
	if e.Kind != KindAlert || e.Severity != SeverityCritical || e.Vantage != "v2" || e.Epoch != 4 {
		t.Fatalf("alert event: %+v", e)
	}
	attrs := map[string]string{}
	for _, at := range e.Attrs {
		attrs[at.Key] = at.Value
	}
	if attrs["alert_kind"] != "anomaly" || attrs["subject"] != "packets" || attrs["value"] != "100" {
		t.Fatalf("alert attrs: %v", attrs)
	}
	if got := AlertEvent("", detect.Alert{Severity: detect.SeverityWarning}); got.Severity != SeverityWarning {
		t.Fatalf("warning maps to %v", got.Severity)
	}
}

func TestLogHandlerRendersAndPublishes(t *testing.T) {
	var buf bytes.Buffer
	b := NewBus(16)
	logger := slog.New(NewLogHandler(&buf, b, "live"))

	logger.Info("store: recovered store.bin", "kind", "recovery", "epochs_intact", 3)
	logger.Warn("checkpoint: save failed", "kind", "checkpoint", "epoch", 7, "error", "disk full")
	logger.Error("plain line", "path", "/tmp/x y")

	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "store: recovered store.bin") || !strings.Contains(lines[0], "kind=recovery") || !strings.Contains(lines[0], "epochs_intact=3") {
		t.Fatalf("line 0: %q", lines[0])
	}
	if !strings.Contains(lines[1], "epoch=7") || !strings.Contains(lines[1], `error="disk full"`) {
		t.Fatalf("line 1: %q", lines[1])
	}
	if !strings.Contains(lines[2], `path="/tmp/x y"`) {
		t.Fatalf("line 2: %q", lines[2])
	}

	evs := b.AppendSince(nil, 0, Filter{})
	if len(evs) != 3 {
		t.Fatalf("bus has %d events, want 3", len(evs))
	}
	if evs[0].Kind != KindRecovery || evs[0].Vantage != "live" || evs[0].Epoch != NoEpoch {
		t.Fatalf("event 0: %+v", evs[0])
	}
	if evs[1].Kind != KindCheckpoint || evs[1].Severity != SeverityWarning || evs[1].Epoch != 7 {
		t.Fatalf("event 1: %+v", evs[1])
	}
	if evs[2].Kind != KindLog || evs[2].Severity != SeverityCritical {
		t.Fatalf("event 2: %+v", evs[2])
	}
}

func TestLogHandlerWithAttrsAndGroup(t *testing.T) {
	var buf bytes.Buffer
	b := NewBus(16)
	base := slog.New(NewLogHandler(&buf, b, ""))
	logger := base.With("vantage", "v3").WithGroup("sink").With("url", "http://x")

	logger.Info("posted", "status", 200)

	evs := b.AppendSince(nil, 0, Filter{})
	if len(evs) != 1 || evs[0].Vantage != "v3" {
		t.Fatalf("events: %+v", evs)
	}
	attrs := map[string]string{}
	for _, a := range evs[0].Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["sink.url"] != "http://x" || attrs["sink.status"] != "200" {
		t.Fatalf("attrs: %v", attrs)
	}
	if !strings.Contains(buf.String(), "sink.status=200") {
		t.Fatalf("line: %q", buf.String())
	}
}

func TestLogHandlerNilSinks(t *testing.T) {
	logger := slog.New(NewLogHandler(nil, nil, ""))
	logger.Info("goes nowhere", "k", "v") // must not panic
}
