// Package events is the structured pipeline-event layer shared by both
// daemons: a bounded in-memory ring of lifecycle events (epoch spans, alert
// emissions, recovery/checkpoint transitions, degradation notices, log
// lines), each stamped with a monotonic sequence number so consumers can
// resume after a disconnect (SSE Last-Event-ID).
//
// The bus is deliberately lock-light: one mutex guards the ring and the
// subscriber set, publishers never block on slow consumers (stalled
// subscriber queues drop events and account for the drops), and nothing in
// this package runs on the packet-ingest path — events are constructed on
// the epoch/drain goroutines only.
package events

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies a pipeline event.
type Kind uint8

const (
	// KindLog is an operational log line with no more specific class.
	KindLog Kind = 1 + iota
	// KindEpoch is an epoch-lifecycle span (stage timings, record counts).
	KindEpoch
	// KindAlert is a detection alert emission.
	KindAlert
	// KindRecovery is a store recovery outcome at boot.
	KindRecovery
	// KindCheckpoint is a detector checkpoint save/restore transition.
	KindCheckpoint
	// KindDegraded is a degradation notice (sticky store error, webhook
	// drops, checkpoint save failure).
	KindDegraded

	kindMax = KindDegraded
)

var kindNames = [...]string{
	KindLog:        "log",
	KindEpoch:      "epoch",
	KindAlert:      "alert",
	KindRecovery:   "recovery",
	KindCheckpoint: "checkpoint",
	KindDegraded:   "degraded",
}

// String returns the wire name of the kind ("alert", "epoch", ...).
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// ParseKind maps a wire name back to its Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name != "" && name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("events: unknown kind %q", s)
}

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name.
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("events: kind must be a JSON string")
	}
	v, err := ParseKind(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*k = v
	return nil
}

// Severity grades an event. The zero value means "unset" so filters can
// distinguish "no minimum" from "info".
type Severity uint8

const (
	// SeverityInfo is routine operation.
	SeverityInfo Severity = 1 + iota
	// SeverityWarning is unexpected but survivable.
	SeverityWarning
	// SeverityCritical indicates lost data or a degraded pipeline.
	SeverityCritical
)

var severityNames = [...]string{
	SeverityInfo:     "info",
	SeverityWarning:  "warning",
	SeverityCritical: "critical",
}

// String returns the wire name of the severity.
func (s Severity) String() string {
	if int(s) < len(severityNames) && severityNames[s] != "" {
		return severityNames[s]
	}
	return fmt.Sprintf("severity(%d)", uint8(s))
}

// ParseSeverity maps a wire name back to its Severity.
func ParseSeverity(v string) (Severity, error) {
	for s, name := range severityNames {
		if name != "" && name == v {
			return Severity(s), nil
		}
	}
	return 0, fmt.Errorf("events: unknown severity %q", v)
}

// MarshalJSON encodes the severity as its wire name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name.
func (s *Severity) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("events: severity must be a JSON string")
	}
	v, err := ParseSeverity(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// Attr is one ordered key/value pair on an event. Values are stringified at
// construction time so marshalling is deterministic and consumers never see
// type drift.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// NoEpoch marks events that are not tied to a measurement epoch.
const NoEpoch = -1

// Event is one structured pipeline event. Seq is assigned by the Bus at
// publish time and is strictly monotonic for the life of the process.
type Event struct {
	Seq      uint64    `json:"seq"`
	Time     time.Time `json:"time"`
	Kind     Kind      `json:"kind"`
	Severity Severity  `json:"severity"`
	Vantage  string    `json:"vantage,omitempty"`
	Epoch    int       `json:"epoch"`
	Msg      string    `json:"msg"`
	Attrs    []Attr    `json:"attrs,omitempty"`
}

// KindSet is a bitmask of Kinds. The zero value matches every kind.
type KindSet uint16

// With returns the set with k added.
func (s KindSet) With(k Kind) KindSet { return s | 1<<k }

// Has reports whether k is in the set; the empty set matches everything.
func (s KindSet) Has(k Kind) bool { return s == 0 || s&(1<<k) != 0 }

// Filter selects a subset of the event stream. The zero value matches every
// event.
type Filter struct {
	// Kinds restricts to the given kinds; empty means all.
	Kinds KindSet
	// MinSeverity drops events below the given grade; zero keeps all.
	MinSeverity Severity
	// Vantage restricts to events carrying the given vantage label;
	// empty means all.
	Vantage string
}

// Match reports whether e passes the filter.
func (f Filter) Match(e Event) bool {
	if !f.Kinds.Has(e.Kind) {
		return false
	}
	if f.MinSeverity != 0 && e.Severity < f.MinSeverity {
		return false
	}
	if f.Vantage != "" && e.Vantage != f.Vantage {
		return false
	}
	return true
}

// DefaultRingCap is the bus ring capacity when NewBus is given a
// non-positive size. It is also the documented resume bound: a client that
// reconnects with a Last-Event-ID more than this many events behind will
// observe a sequence gap.
const DefaultRingCap = 1024

// Bus is a bounded ring of events with fan-out to bounded subscriber
// queues. Publish never blocks: a subscriber whose queue is full misses the
// event and its drop counter advances, so a stalled dashboard can never
// backpressure the drain worker.
type Bus struct {
	mu        sync.Mutex
	ring      []Event
	start, n  int
	seq       uint64
	subs      map[*Subscriber]struct{}
	published uint64
	dropped   uint64
}

// NewBus returns a bus retaining at most capacity events (DefaultRingCap if
// capacity <= 0).
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Bus{
		ring: make([]Event, capacity),
		subs: make(map[*Subscriber]struct{}),
	}
}

// Cap returns the ring capacity (the documented resume bound).
func (b *Bus) Cap() int { return len(b.ring) }

// Publish stamps e with the next sequence number (and the current time if
// e.Time is zero), retains it in the ring, fans it out to matching
// subscribers, and returns the assigned sequence number.
func (b *Bus) Publish(e Event) uint64 {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	b.mu.Lock()
	b.seq++
	e.Seq = b.seq
	if b.n < len(b.ring) {
		b.ring[(b.start+b.n)%len(b.ring)] = e
		b.n++
	} else {
		b.ring[b.start] = e
		b.start = (b.start + 1) % len(b.ring)
	}
	b.published++
	for sub := range b.subs {
		if !sub.filter.Match(e) {
			continue
		}
		select {
		case sub.ch <- e:
		default:
			sub.dropped.Add(1)
			b.dropped++
		}
	}
	b.mu.Unlock()
	return e.Seq
}

// LastSeq returns the most recently assigned sequence number (0 before the
// first publish).
func (b *Bus) LastSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// OldestSeq returns the sequence number of the oldest retained event, or 0
// if the ring is empty.
func (b *Bus) OldestSeq() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n == 0 {
		return 0
	}
	return b.ring[b.start].Seq
}

// Stats returns lifetime publish and fan-out-drop totals plus the current
// subscriber count.
func (b *Bus) Stats() (published, dropped uint64, subscribers int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.published, b.dropped, len(b.subs)
}

// AppendSince appends retained events with Seq > after that pass the
// filter, oldest first, and returns the extended slice.
func (b *Bus) AppendSince(dst []Event, after uint64, f Filter) []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := 0; i < b.n; i++ {
		e := b.ring[(b.start+i)%len(b.ring)]
		if e.Seq > after && f.Match(e) {
			dst = append(dst, e)
		}
	}
	return dst
}

// Subscriber is one bounded event queue registered on a Bus.
type Subscriber struct {
	ch      chan Event
	filter  Filter
	dropped atomic.Uint64
}

// Events is the subscriber's receive queue.
func (s *Subscriber) Events() <-chan Event { return s.ch }

// Dropped returns how many matching events were discarded because the
// queue was full.
func (s *Subscriber) Dropped() uint64 { return s.dropped.Load() }

// Subscribe registers a bounded queue for events matching f.
//
// after controls replay: a negative value subscribes live-only; otherwise
// every retained event with Seq > after is queued before any live event, so
// a client resuming via Last-Event-ID sees no gap as long as it is within
// the ring bound. If after is beyond the last assigned sequence number (a
// stale id from a previous process incarnation), all retained events are
// replayed instead of waiting forever. The queue holds the replay plus at
// least buf live events.
func (b *Bus) Subscribe(f Filter, after int64, buf int) *Subscriber {
	if buf <= 0 {
		buf = 64
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var replay []Event
	if after >= 0 {
		from := uint64(after)
		if from > b.seq {
			// Stale resume token from a prior incarnation: the new
			// sequence space restarted below it, so replay history
			// rather than waiting for a seq that may never come.
			from = 0
		}
		for i := 0; i < b.n; i++ {
			e := b.ring[(b.start+i)%len(b.ring)]
			if e.Seq > from && f.Match(e) {
				replay = append(replay, e)
			}
		}
	}
	sub := &Subscriber{ch: make(chan Event, len(replay)+buf), filter: f}
	for _, e := range replay {
		sub.ch <- e
	}
	b.subs[sub] = struct{}{}
	return sub
}

// Unsubscribe removes sub and closes its queue. Safe to call once per
// subscriber; pending queued events are still readable until the close.
func (b *Bus) Unsubscribe(sub *Subscriber) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.subs[sub]; !ok {
		return
	}
	delete(b.subs, sub)
	close(sub.ch)
}
