package events

import (
	"context"
	"io"
	"log/slog"
	"strconv"
	"strings"
	"sync"
)

// LogHandler is a slog.Handler that renders records as terse
// "msg key=val ..." lines (no timestamp — the event carries it) and mirrors
// every record onto an event bus, so logs, SSE consumers, and traces all
// agree on what happened.
//
// Three attribute keys are lifted into event fields rather than rendered as
// opaque attrs: "vantage" (string), "epoch" (int), and "kind" (a ParseKind
// name — e.g. logging with kind=recovery publishes a KindRecovery event).
// Severity follows the slog level: Error maps to critical, Warn to warning,
// everything else to info.
type LogHandler struct {
	mu      *sync.Mutex
	w       io.Writer
	bus     *Bus
	level   slog.Level
	vantage string
	kind    Kind
	epoch   int
	groups  []string
	attrs   []Attr
}

// NewLogHandler writes rendered lines to w (nil discards them) and mirrors
// records onto bus (nil skips publishing). vantage labels every published
// event unless a record overrides it.
func NewLogHandler(w io.Writer, bus *Bus, vantage string) *LogHandler {
	return &LogHandler{
		mu:      &sync.Mutex{},
		w:       w,
		bus:     bus,
		level:   slog.LevelInfo,
		vantage: vantage,
		kind:    KindLog,
		epoch:   NoEpoch,
	}
}

// Enabled implements slog.Handler.
func (h *LogHandler) Enabled(_ context.Context, lvl slog.Level) bool {
	return lvl >= h.level
}

func severityFromLevel(lvl slog.Level) Severity {
	switch {
	case lvl >= slog.LevelError:
		return SeverityCritical
	case lvl >= slog.LevelWarn:
		return SeverityWarning
	default:
		return SeverityInfo
	}
}

// lift absorbs a into the event-field trio when its key matches, returning
// true, or false when the attr should be kept verbatim.
func lift(a slog.Attr, vantage *string, kind *Kind, epoch *int) bool {
	switch a.Key {
	case "vantage":
		if a.Value.Kind() == slog.KindString {
			*vantage = a.Value.String()
			return true
		}
	case "epoch":
		if a.Value.Kind() == slog.KindInt64 {
			*epoch = int(a.Value.Int64())
			return true
		}
	case "kind":
		if k, err := ParseKind(a.Value.String()); err == nil {
			*kind = k
			return true
		}
	}
	return false
}

func (h *LogHandler) render(a slog.Attr) Attr {
	key := a.Key
	if len(h.groups) > 0 {
		key = strings.Join(h.groups, ".") + "." + key
	}
	return Attr{Key: key, Value: a.Value.String()}
}

// Handle implements slog.Handler.
func (h *LogHandler) Handle(_ context.Context, r slog.Record) error {
	ev := Event{
		Time:     r.Time,
		Kind:     h.kind,
		Severity: severityFromLevel(r.Level),
		Vantage:  h.vantage,
		Epoch:    h.epoch,
		Msg:      r.Message,
	}
	if len(h.attrs) > 0 {
		ev.Attrs = append(ev.Attrs, h.attrs...)
	}
	r.Attrs(func(a slog.Attr) bool {
		if len(h.groups) == 0 && lift(a, &ev.Vantage, &ev.Kind, &ev.Epoch) {
			return true
		}
		ev.Attrs = append(ev.Attrs, h.render(a))
		return true
	})
	if h.w != nil {
		var sb strings.Builder
		sb.Grow(len(r.Message) + 16*len(ev.Attrs) + 16)
		sb.WriteString(r.Message)
		if ev.Kind != KindLog {
			sb.WriteString(" kind=")
			sb.WriteString(ev.Kind.String())
		}
		if ev.Epoch != NoEpoch {
			sb.WriteString(" epoch=")
			sb.WriteString(strconv.Itoa(ev.Epoch))
		}
		for _, a := range ev.Attrs {
			sb.WriteByte(' ')
			sb.WriteString(a.Key)
			sb.WriteByte('=')
			if strings.ContainsAny(a.Value, " \t\n\"=") {
				sb.WriteString(strconv.Quote(a.Value))
			} else {
				sb.WriteString(a.Value)
			}
		}
		sb.WriteByte('\n')
		h.mu.Lock()
		_, err := io.WriteString(h.w, sb.String())
		h.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if h.bus != nil {
		h.bus.Publish(ev)
	}
	return nil
}

// WithAttrs implements slog.Handler. Lifted keys (vantage/epoch/kind) set
// the handler-level defaults for subsequent records.
func (h *LogHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := h.clone()
	for _, a := range attrs {
		if len(nh.groups) == 0 && lift(a, &nh.vantage, &nh.kind, &nh.epoch) {
			continue
		}
		nh.attrs = append(nh.attrs, nh.render(a))
	}
	return nh
}

// WithGroup implements slog.Handler; group names prefix attr keys.
func (h *LogHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	nh := h.clone()
	nh.groups = append(nh.groups, name)
	return nh
}

func (h *LogHandler) clone() *LogHandler {
	nh := *h
	nh.groups = append([]string(nil), h.groups...)
	nh.attrs = append([]Attr(nil), h.attrs...)
	return &nh
}
