// Package telemetry provides process-wide runtime instrumentation for
// the collection pipeline: zero-allocation atomic counters, gauges and
// fixed-bucket power-of-two histograms, a registry with Prometheus
// text-format and JSON exposition, and the shared ops HTTP surface
// (/metrics, /healthz, optional pprof) both daemons mount.
//
// Design constraints, in order:
//
//   - The hot path must not notice. Every instrument method is a single
//     atomic RMW on a fixed-size struct: no maps, no label hashing, no
//     allocation, no locks. Label resolution happens once at
//     registration time (labels are baked into the metric name), never
//     per observation.
//   - Nil instruments are valid and free. All methods are nil-receiver
//     safe no-ops, so instrumented packages call m.Something.Add(1)
//     unconditionally and pay one predictable branch when telemetry is
//     not wired (benches, tests, library use).
//   - Reads never perturb writers. Exposition loads the same atomics
//     the writers touch; there is no snapshot lock, so a scrape racing
//     an Observe may see a bucket count without the matching sum — the
//     skew is bounded by in-flight operations and irrelevant at scrape
//     granularity.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Counters only go up; deltas are the caller's job.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous signed value. The zero value is ready to
// use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the value by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the number of histogram buckets: one per possible
// bit-length of a uint64 (0..64). Bucket i holds values whose
// bits.Len64 is i, i.e. bucket 0 holds exactly 0 and bucket i>0 holds
// [2^(i-1), 2^i). Upper bounds are therefore powers of two, giving a
// worst-case quantile error of 2x — plenty for latencies and sizes
// that range over many orders of magnitude.
const HistBuckets = 65

// Histogram is a fixed-bucket power-of-two histogram of uint64
// samples (typically nanoseconds or byte/record counts). Observe is
// lock-free: one atomic add on the bucket plus one on the running sum.
// The zero value is ready to use; a nil *Histogram is a no-op.
type Histogram struct {
	counts [HistBuckets]atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.counts[bits.Len64(v)].Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds. Negative
// durations (clock steps) are clamped to zero rather than wrapping.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.Observe(uint64(d))
}

// HistSnapshot is a point-in-time copy of a histogram's state.
type HistSnapshot struct {
	Counts [HistBuckets]uint64
	Count  uint64
	Sum    uint64
}

// Snapshot copies the current bucket counts and sum. The copy is not
// atomic across buckets; see the package comment on read skew.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Merge adds other's samples into h. Used to fold per-shard or
// per-reader histograms into one series at scrape time.
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.sum.Add(other.sum.Load())
}

// BucketBound returns the inclusive upper bound of bucket i:
// 0 for bucket 0, 2^i-1 for i in 1..63, and MaxUint64 for bucket 64.
func BucketBound(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return 1<<uint(i) - 1
}

// Quantile estimates the q-th quantile (q in [0,1]) from the bucket
// counts, linearly interpolating inside the winning bucket. With
// power-of-two bounds the estimate is within a factor of two of the
// exact sample quantile. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target sample, 1-based: ceil(q*count), at least 1.
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo := float64(bucketLower(i))
			hi := float64(BucketBound(i))
			frac := float64(rank-cum) / float64(c)
			return uint64(lo + (hi-lo)*frac)
		}
		cum += c
	}
	return BucketBound(HistBuckets - 1)
}

// Mean returns the arithmetic mean of the observed samples, exact up
// to sum wraparound (2^64 ns ≈ 584 years).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Max returns the upper bound of the highest non-empty bucket — an
// overestimate of the true max by at most 2x.
func (s HistSnapshot) Max() uint64 {
	for i := len(s.Counts) - 1; i >= 0; i-- {
		if s.Counts[i] != 0 {
			return BucketBound(i)
		}
	}
	return 0
}

// bucketLower is the inclusive lower bound of bucket i.
func bucketLower(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i-1)
}
