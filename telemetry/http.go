package telemetry

import (
	"net/http"
	"time"
)

// InstrumentMux wraps mux with per-endpoint access instrumentation: every
// request increments http_requests_total{endpoint=<pattern>} and records
// its wall latency in http_request_ns{endpoint=<pattern>}, where <pattern>
// is the mux pattern that matched (so cardinality is bounded by the
// registered routes, not by request paths). Unmatched requests and the "/"
// catch-all are passed through uninstrumented — the catch-all is how both
// daemons delegate to the query sub-mux, which instruments its own routes.
//
// Instrument resolution is get-or-create on the registry per request; this
// serves the HTTP surface, never the packet path, so the map lookup is
// irrelevant next to request handling itself.
func InstrumentMux(reg *Registry, mux *http.ServeMux, labelPairs ...string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, pattern := mux.Handler(r)
		if pattern == "" || pattern == "/" {
			mux.ServeHTTP(w, r)
			return
		}
		lbl := make([]string, 0, len(labelPairs)+2)
		lbl = append(lbl, labelPairs...)
		lbl = append(lbl, "endpoint", pattern)
		reqs := reg.Counter(Name("http_requests_total", lbl...),
			"HTTP requests served, by endpoint")
		lat := reg.Histogram(Name("http_request_ns", lbl...),
			"HTTP request wall latency in nanoseconds, by endpoint")
		start := time.Now()
		mux.ServeHTTP(w, r)
		reqs.Inc()
		lat.ObserveDuration(time.Since(start))
	})
}
