package flowmon_test

import (
	"fmt"

	"repro/flow"
	"repro/flowmon"
)

// Collect flow records with HashFlow at the paper's default parameters and
// query a flow's size.
func Example() {
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{
		MemoryBytes: 64 << 10,
		Seed:        1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	k := flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000002, SrcPort: 1234, DstPort: 443, Proto: 6}
	for i := 0; i < 42; i++ {
		rec.Update(flow.Packet{Key: k})
	}
	fmt.Println("records:", len(rec.Records()))
	fmt.Println("size:", rec.EstimateSize(k))
	// Output:
	// records: 1
	// size: 42
}

// Compare all four paper algorithms under one memory budget.
func Example_comparison() {
	k := flow.Key{SrcIP: 1, DstIP: 2, Proto: 6}
	for _, a := range flowmon.All() {
		rec, err := flowmon.New(a, flowmon.Config{MemoryBytes: 64 << 10, Seed: 1})
		if err != nil {
			fmt.Println(err)
			return
		}
		rec.Update(flow.Packet{Key: k})
		fmt.Printf("%s: %d\n", a, rec.EstimateSize(k))
	}
	// Output:
	// HashFlow: 1
	// HashPipe: 1
	// ElasticSketch: 1
	// FlowRadar: 1
}

func ExampleHeavyHitters() {
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 64 << 10})
	if err != nil {
		fmt.Println(err)
		return
	}
	elephant := flow.Key{SrcIP: 1, Proto: 6}
	mouse := flow.Key{SrcIP: 2, Proto: 6}
	for i := 0; i < 100; i++ {
		rec.Update(flow.Packet{Key: elephant})
	}
	rec.Update(flow.Packet{Key: mouse})

	hh := flowmon.HeavyHitters(rec, 50)
	fmt.Println(len(hh), hh[0].Count)
	// Output: 1 100
}
