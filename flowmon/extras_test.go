package flowmon

import (
	"testing"

	"repro/flow"
	"repro/metrics"
	"repro/trace"
)

func TestExtrasConstructAndRecord(t *testing.T) {
	for _, a := range Extras() {
		t.Run(a.String(), func(t *testing.T) {
			rec, err := New(a, Config{MemoryBytes: 1 << 16, Seed: 1, SampleRate: 1})
			if err != nil {
				t.Fatal(err)
			}
			k := flow.Key{SrcIP: 1, DstIP: 2, Proto: 6}
			for i := 0; i < 9; i++ {
				rec.Update(flow.Packet{Key: k})
			}
			if got := rec.EstimateSize(k); got != 9 {
				t.Errorf("EstimateSize = %d, want 9", got)
			}
			parsed, err := ParseAlgorithm(a.String())
			if err != nil || parsed != a {
				t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), parsed, err)
			}
		})
	}
}

func TestExtrasNotInAll(t *testing.T) {
	inAll := make(map[Algorithm]bool)
	for _, a := range All() {
		inAll[a] = true
	}
	for _, a := range Extras() {
		if inAll[a] {
			t.Errorf("%v is both an extra and a paper algorithm", a)
		}
	}
}

// TestSamplingVsHashFlowAccuracy verifies the paper's §I motivation:
// sampling reduces per-packet work but costs accuracy. At the same memory
// budget, sampled NetFlow misses the mice entirely and HashFlow's size
// estimates are far more accurate.
func TestSamplingVsHashFlowAccuracy(t *testing.T) {
	tr, err := trace.Generate(trace.CAIDA, 20000, 31)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(31)
	truth := tr.Truth()

	hf, err := New(AlgorithmHashFlow, Config{MemoryBytes: 512 << 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sampledRec, err := New(AlgorithmSampledNetFlow, Config{
		MemoryBytes: 512 << 10, Seed: 2, SampleRate: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		hf.Update(p)
		sampledRec.Update(p)
	}

	hfARE := metrics.SizeARE(hf.EstimateSize, truth)
	smARE := metrics.SizeARE(sampledRec.EstimateSize, truth)
	if hfARE >= smARE {
		t.Errorf("HashFlow ARE %.3f not below sampled NetFlow ARE %.3f", hfARE, smARE)
	}
	// Sampling's per-packet cost is far lower — that is its entire appeal.
	if hfOps, smOps := hf.OpStats(), sampledRec.OpStats(); smOps.MemAccessesPerPacket() >= hfOps.MemAccessesPerPacket() {
		t.Errorf("sampling mem cost %.3f not below HashFlow's %.3f",
			smOps.MemAccessesPerPacket(), hfOps.MemAccessesPerPacket())
	}
}

// TestCuckooVsHashFlowUnderOverload verifies the §II objection to cuckoo
// hashing: under overload the kick chains burn hash operations while whole
// records are dropped, where HashFlow resolves in at most d+1 hashes.
func TestCuckooVsHashFlowUnderOverload(t *testing.T) {
	tr, err := trace.Generate(trace.CAIDA, 30000, 33)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(33)

	hf, err := New(AlgorithmHashFlow, Config{MemoryBytes: 128 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := New(AlgorithmCuckoo, Config{MemoryBytes: 128 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		hf.Update(p)
		ck.Update(p)
	}
	if hpp := hf.OpStats().HashesPerPacket(); hpp > 4 {
		t.Errorf("HashFlow hashes/packet = %.2f, bound is 4", hpp)
	}
	if hpp := ck.OpStats().HashesPerPacket(); hpp <= 4 {
		t.Errorf("cuckoo hashes/packet = %.2f under overload, expected kick chains above HashFlow's bound", hpp)
	}
}
