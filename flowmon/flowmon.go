// Package flowmon is the public facade of the flow-record collection
// library. It exposes the four measurement algorithms evaluated in the
// HashFlow paper — HashFlow itself plus the HashPipe, ElasticSketch and
// FlowRadar baselines — behind a single Recorder interface, configured with
// an equal memory budget exactly as in the paper's evaluation.
//
// Typical use:
//
//	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 1 << 20})
//	if err != nil { ... }
//	for _, p := range packets {
//		rec.Update(p)
//	}
//	records := rec.Records()
package flowmon

import (
	"fmt"

	"repro/flow"
	"repro/internal/core"
	"repro/internal/cuckoo"
	"repro/internal/elastic"
	"repro/internal/flowradar"
	"repro/internal/hashpipe"
	"repro/internal/sampled"
	"repro/internal/spacesaving"
)

// Algorithm selects one of the implemented flow recorders.
type Algorithm int

// The four algorithms evaluated in the paper, plus two comparators the
// paper discusses but does not implement: classic sampled NetFlow (§I) and
// a bounded-kick cuckoo flow table (§II).
const (
	AlgorithmHashFlow Algorithm = iota + 1
	AlgorithmHashPipe
	AlgorithmElasticSketch
	AlgorithmFlowRadar
	AlgorithmSampledNetFlow
	AlgorithmCuckoo
	AlgorithmSpaceSaving
)

// All lists the paper's four evaluated algorithms in presentation order.
// The experiment harness iterates exactly this set.
func All() []Algorithm {
	return []Algorithm{
		AlgorithmHashFlow,
		AlgorithmHashPipe,
		AlgorithmElasticSketch,
		AlgorithmFlowRadar,
	}
}

// Extras lists the additional comparators outside the paper's evaluation.
func Extras() []Algorithm {
	return []Algorithm{AlgorithmSampledNetFlow, AlgorithmCuckoo, AlgorithmSpaceSaving}
}

// String returns the algorithm's display name as used in the paper.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmHashFlow:
		return "HashFlow"
	case AlgorithmHashPipe:
		return "HashPipe"
	case AlgorithmElasticSketch:
		return "ElasticSketch"
	case AlgorithmFlowRadar:
		return "FlowRadar"
	case AlgorithmSampledNetFlow:
		return "SampledNetFlow"
	case AlgorithmCuckoo:
		return "Cuckoo"
	case AlgorithmSpaceSaving:
		return "SpaceSaving"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm resolves a case-sensitive algorithm display name.
func ParseAlgorithm(name string) (Algorithm, error) {
	for _, a := range append(All(), Extras()...) {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("flowmon: unknown algorithm %q", name)
}

// Recorder is a flow-record collector: it observes a packet stream and can
// report flow records and the derived estimates the paper's measurement
// applications need.
type Recorder interface {
	// Update processes one packet.
	Update(p flow.Packet)
	// UpdateBatch processes a batch of packets, exactly equivalent to
	// calling Update for each packet in order, but amortizing per-packet
	// overhead (hash reuse, bounds checks, statistics bookkeeping). All
	// implementations guarantee batch/sequential equivalence: the state
	// after UpdateBatch(pkts) is identical to the state after the
	// corresponding sequence of Update calls.
	UpdateBatch(pkts []flow.Packet)
	// Records reports the flow records currently held. For algorithms with
	// a summarized region (HashFlow's ancillary table, ElasticSketch's
	// light part), only records with full flow IDs are reported.
	Records() []flow.Record
	// AppendRecords appends the flow records currently held to dst and
	// returns the extended slice — exactly the record set Records reports,
	// without allocating for the result when dst has capacity. Callers
	// that export every epoch reuse one buffer across epochs
	// (rec.AppendRecords(buf[:0])). Table-walking recorders (HashFlow,
	// ElasticSketch, Cuckoo, and the sharded wrapper) are allocation-free
	// at steady state; recorders that must build scratch state per
	// extraction (HashPipe's cross-stage merge, FlowRadar's first decode
	// after an update) still allocate internally.
	AppendRecords(dst []flow.Record) []flow.Record
	// EstimateSize estimates the packet count of a flow, 0 if unknown.
	EstimateSize(k flow.Key) uint32
	// EstimateCardinality estimates the number of distinct flows seen.
	EstimateCardinality() float64
	// MemoryBytes returns the recorder's configured memory footprint.
	MemoryBytes() int
	// OpStats returns cumulative hash and memory-access counts.
	OpStats() flow.OpStats
	// Reset returns the recorder to its empty state.
	Reset()
}

// SingleUpdater is the per-packet half of Recorder. Wrappers that cannot
// batch natively (epoch managers, instrumented decorators, test doubles)
// satisfy UpdateBatch by delegating to UpdateAll.
type SingleUpdater interface {
	Update(p flow.Packet)
}

// UpdateAll is the default batch adapter: it feeds pkts to r one packet at
// a time, preserving order. It is the fallback for recorders without a
// native batched path and the reference semantics every native UpdateBatch
// implementation must match.
func UpdateAll(r SingleUpdater, pkts []flow.Packet) {
	for _, p := range pkts {
		r.Update(p)
	}
}

// Compile-time interface checks for all implementations.
var (
	_ Recorder = (*core.HashFlow)(nil)
	_ Recorder = (*hashpipe.HashPipe)(nil)
	_ Recorder = (*elastic.Elastic)(nil)
	_ Recorder = (*flowradar.FlowRadar)(nil)
	_ Recorder = (*sampled.Recorder)(nil)
	_ Recorder = (*cuckoo.Table)(nil)
	_ Recorder = (*spacesaving.Summary)(nil)
)

// Config carries the shared and per-algorithm parameters. The zero value of
// every field except MemoryBytes selects the paper's evaluation default.
type Config struct {
	// MemoryBytes is the memory budget shared by all structures of the
	// selected algorithm (required).
	MemoryBytes int
	// Seed makes all hashing deterministic.
	Seed uint64

	// HashFlow: depth (default 3), pipelined layout (default true via
	// Multihash=false), pipeline weight α (default 0.7), digest width
	// (default 8 bits), promotion ablation switch.
	Depth            int
	Multihash        bool
	Alpha            float64
	DigestBits       int
	DisablePromotion bool

	// HashPipe: number of stages (default 4).
	Stages int

	// ElasticSketch: heavy sub-tables (default 3) and eviction threshold λ
	// (default 8).
	SubTables int
	Lambda    int

	// FlowRadar: Bloom hash count (default 4), cell hash count (default 3),
	// Bloom bits per counting cell (default 40).
	BloomHashes      int
	CellHashes       int
	BloomBitsPerCell int

	// SampledNetFlow: 1-in-N packet sampling rate (default 100).
	SampleRate int

	// Cuckoo: displacement-chain cap (default 32).
	MaxKicks int
}

// New constructs the selected recorder with the paper's defaults applied to
// unset Config fields.
func New(a Algorithm, cfg Config) (Recorder, error) {
	switch a {
	case AlgorithmHashFlow:
		return core.New(core.Config{
			MemoryBytes:      cfg.MemoryBytes,
			Depth:            cfg.Depth,
			Pipelined:        !cfg.Multihash,
			Alpha:            cfg.Alpha,
			DigestBits:       cfg.DigestBits,
			DisablePromotion: cfg.DisablePromotion,
			Seed:             cfg.Seed,
		})
	case AlgorithmHashPipe:
		return hashpipe.New(hashpipe.Config{
			MemoryBytes: cfg.MemoryBytes,
			Stages:      cfg.Stages,
			Seed:        cfg.Seed,
		})
	case AlgorithmElasticSketch:
		return elastic.New(elastic.Config{
			MemoryBytes: cfg.MemoryBytes,
			SubTables:   cfg.SubTables,
			Lambda:      cfg.Lambda,
			Seed:        cfg.Seed,
		})
	case AlgorithmFlowRadar:
		return flowradar.New(flowradar.Config{
			MemoryBytes:      cfg.MemoryBytes,
			BloomHashes:      cfg.BloomHashes,
			CellHashes:       cfg.CellHashes,
			BloomBitsPerCell: cfg.BloomBitsPerCell,
			Seed:             cfg.Seed,
		})
	case AlgorithmSampledNetFlow:
		return sampled.New(sampled.Config{
			MemoryBytes: cfg.MemoryBytes,
			Rate:        cfg.SampleRate,
			Seed:        cfg.Seed,
		})
	case AlgorithmCuckoo:
		return cuckoo.New(cuckoo.Config{
			MemoryBytes: cfg.MemoryBytes,
			MaxKicks:    cfg.MaxKicks,
			Seed:        cfg.Seed,
		})
	case AlgorithmSpaceSaving:
		return spacesaving.New(spacesaving.Config{
			MemoryBytes: cfg.MemoryBytes,
			Seed:        cfg.Seed,
		})
	default:
		return nil, fmt.Errorf("flowmon: unknown algorithm %v", a)
	}
}

// NewHashFlow constructs a HashFlow recorder and returns the concrete type,
// exposing HashFlow-specific accessors (utilization, table sizes).
func NewHashFlow(cfg Config) (*core.HashFlow, error) {
	return core.New(core.Config{
		MemoryBytes:      cfg.MemoryBytes,
		Depth:            cfg.Depth,
		Pipelined:        !cfg.Multihash,
		Alpha:            cfg.Alpha,
		DigestBits:       cfg.DigestBits,
		DisablePromotion: cfg.DisablePromotion,
		Seed:             cfg.Seed,
	})
}

// NewFlowRadar constructs a FlowRadar recorder and returns the concrete
// type, exposing FlowRadar-specific capabilities: decode-completeness
// reporting and network-wide decoding with hints from other switches
// (DecodeWithHints).
func NewFlowRadar(cfg Config) (*flowradar.FlowRadar, error) {
	return flowradar.New(flowradar.Config{
		MemoryBytes:      cfg.MemoryBytes,
		BloomHashes:      cfg.BloomHashes,
		CellHashes:       cfg.CellHashes,
		BloomBitsPerCell: cfg.BloomBitsPerCell,
		Seed:             cfg.Seed,
	})
}

// HeavyHitters reports the flows whose estimated size meets the threshold,
// derived from the recorder's reported records.
func HeavyHitters(r Recorder, threshold uint32) []flow.Record {
	return HeavyHittersAppend(nil, r, threshold)
}

// HeavyHittersAppend appends the flows whose estimated size meets the
// threshold to dst and returns the extended slice. The recorder's records
// are extracted through AppendRecords into dst's spare capacity and
// filtered in place, so a reused dst makes repeated heavy-hitter queries
// allocation-free.
func HeavyHittersAppend(dst []flow.Record, r Recorder, threshold uint32) []flow.Record {
	start := len(dst)
	dst = r.AppendRecords(dst)
	keep := dst[:start]
	for _, rec := range dst[start:] {
		if rec.Count >= threshold {
			keep = append(keep, rec)
		}
	}
	return keep
}
