package flowmon_test

import (
	"testing"

	"repro/flowmon"
)

// FuzzParseAlgorithm exercises the name round-trip: any input that parses
// must stringify back to itself, and the stringified form must re-parse to
// the same algorithm.
func FuzzParseAlgorithm(f *testing.F) {
	for _, a := range append(flowmon.All(), flowmon.Extras()...) {
		f.Add(a.String())
	}
	f.Add("")
	f.Add("hashflow")
	f.Add("HashFlow ")
	f.Add("Algorithm(3)")

	f.Fuzz(func(t *testing.T, name string) {
		a, err := flowmon.ParseAlgorithm(name)
		if err != nil {
			return
		}
		if got := a.String(); got != name {
			t.Fatalf("ParseAlgorithm(%q) = %v, but String() = %q", name, a, got)
		}
		back, err := flowmon.ParseAlgorithm(a.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q failed: %v", a.String(), err)
		}
		if back != a {
			t.Fatalf("round trip changed algorithm: %v -> %v", a, back)
		}
	})
}
