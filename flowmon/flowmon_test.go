package flowmon

import (
	"testing"

	"repro/flow"
	"repro/metrics"
	"repro/trace"
)

func TestParseAlgorithm(t *testing.T) {
	for _, a := range All() {
		got, err := ParseAlgorithm(a.String())
		if err != nil || got != a {
			t.Errorf("ParseAlgorithm(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseAlgorithm("NetFlow"); err == nil {
		t.Error("ParseAlgorithm accepted unknown name")
	}
	if got := Algorithm(99).String(); got != "Algorithm(99)" {
		t.Errorf("unknown algorithm String() = %q", got)
	}
}

func TestNewUnknownAlgorithm(t *testing.T) {
	if _, err := New(Algorithm(0), Config{MemoryBytes: 1 << 16}); err == nil {
		t.Error("New accepted unknown algorithm")
	}
}

func TestNewAllAlgorithms(t *testing.T) {
	for _, a := range All() {
		t.Run(a.String(), func(t *testing.T) {
			rec, err := New(a, Config{MemoryBytes: 1 << 18, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			k := flow.Key{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
			for i := 0; i < 42; i++ {
				rec.Update(flow.Packet{Key: k})
			}
			if got := rec.EstimateSize(k); got != 42 {
				t.Errorf("EstimateSize = %d, want 42", got)
			}
			if got := rec.OpStats().Packets; got != 42 {
				t.Errorf("OpStats.Packets = %d, want 42", got)
			}
			if rec.MemoryBytes() <= 0 || rec.MemoryBytes() > 1<<18 {
				t.Errorf("MemoryBytes = %d, want in (0, budget]", rec.MemoryBytes())
			}
			recs := rec.Records()
			if len(recs) != 1 || recs[0].Key != k {
				t.Errorf("Records = %v", recs)
			}
			rec.Reset()
			if len(rec.Records()) != 0 {
				t.Error("Reset left records")
			}
		})
	}
}

func TestNewPropagatesConfigErrors(t *testing.T) {
	for _, a := range All() {
		if _, err := New(a, Config{MemoryBytes: -1}); err == nil {
			t.Errorf("%v accepted negative memory", a)
		}
	}
}

func TestNewHashFlowConcrete(t *testing.T) {
	h, err := NewHashFlow(Config{MemoryBytes: 19 * 1000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.MainCells() != 1000 {
		t.Errorf("MainCells = %d, want 1000", h.MainCells())
	}
	if got := len(h.TableSizes()); got != 3 {
		t.Errorf("TableSizes = %d entries, want 3", got)
	}
}

func TestHeavyHittersHelper(t *testing.T) {
	rec, err := New(AlgorithmHashFlow, Config{MemoryBytes: 1 << 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	big := flow.Key{SrcIP: 1, Proto: 6}
	small := flow.Key{SrcIP: 2, Proto: 6}
	for i := 0; i < 100; i++ {
		rec.Update(flow.Packet{Key: big})
	}
	rec.Update(flow.Packet{Key: small})
	hh := HeavyHitters(rec, 50)
	if len(hh) != 1 || hh[0].Key != big {
		t.Errorf("HeavyHitters = %v, want only the big flow", hh)
	}
}

// TestPaperHeadlineShape replays the paper's central comparison at reduced
// scale: with a fixed memory budget and an offered load far beyond capacity,
// HashFlow must (a) fill nearly its whole main table with accurate records,
// (b) beat HashPipe and ElasticSketch on FSC, and (c) beat all baselines on
// size-estimation ARE, while FlowRadar's decode collapses.
func TestPaperHeadlineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end comparison skipped in -short mode")
	}
	// The Campus profile is where the paper's FSC claim against HashPipe
	// holds (elephant flows make HashPipe fragment); on mice-dominated
	// traces the two are nearly tied.
	const memory = 256 << 10 // 256 KB → ~13.8K HashFlow main cells
	const flows = 22000      // ~1.6x overload, matching Fig. 8's regime

	tr, err := trace.Generate(trace.Campus, flows, 42)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(42)
	truth := tr.Truth()

	fsc := make(map[Algorithm]float64)
	are := make(map[Algorithm]float64)
	for _, a := range All() {
		rec, err := New(a, Config{MemoryBytes: memory, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			rec.Update(p)
		}
		fsc[a] = metrics.FSC(rec.Records(), truth)
		are[a] = metrics.SizeARE(rec.EstimateSize, truth)
	}
	t.Logf("FSC: %v", fsc)
	t.Logf("ARE: %v", are)

	// (a) HashFlow fills its main table: FSC ≈ mainCells/flows.
	h, err := NewHashFlow(Config{MemoryBytes: memory, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	wantFSC := float64(h.MainCells()) / flows
	if fsc[AlgorithmHashFlow] < 0.9*wantFSC {
		t.Errorf("HashFlow FSC %.4f, want >= 90%% of full-table %.4f", fsc[AlgorithmHashFlow], wantFSC)
	}
	// (b) FSC ordering.
	if fsc[AlgorithmHashFlow] <= fsc[AlgorithmHashPipe] {
		t.Errorf("HashFlow FSC %.4f not above HashPipe %.4f", fsc[AlgorithmHashFlow], fsc[AlgorithmHashPipe])
	}
	if fsc[AlgorithmHashFlow] <= fsc[AlgorithmElasticSketch] {
		t.Errorf("HashFlow FSC %.4f not above ElasticSketch %.4f", fsc[AlgorithmHashFlow], fsc[AlgorithmElasticSketch])
	}
	// (c) ARE ordering: HashFlow lowest.
	for _, a := range []Algorithm{AlgorithmHashPipe, AlgorithmElasticSketch, AlgorithmFlowRadar} {
		if are[AlgorithmHashFlow] >= are[a] {
			t.Errorf("HashFlow ARE %.4f not below %v ARE %.4f", are[AlgorithmHashFlow], a, are[a])
		}
	}
	// FlowRadar collapse: it decodes almost nothing at this overload
	// (~10K cells for 22K flows).
	if fsc[AlgorithmFlowRadar] > 0.1 {
		t.Errorf("FlowRadar FSC %.4f, expected decode collapse < 0.1", fsc[AlgorithmFlowRadar])
	}
	// Cardinality: HashPipe badly undercounts while the others stay close
	// (Fig. 7's shape).
	for _, a := range []Algorithm{AlgorithmHashFlow, AlgorithmElasticSketch, AlgorithmFlowRadar} {
		rec, err := New(a, Config{MemoryBytes: memory, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			rec.Update(p)
		}
		if re := metrics.CardinalityRE(rec.EstimateCardinality(), truth); re > 0.2 {
			t.Errorf("%v cardinality RE = %.3f, want < 0.2", a, re)
		}
	}
}

// TestFlowRadarSmallLoadWins checks the paper's one exception: at very small
// flow counts FlowRadar decodes everything and has the highest coverage.
func TestFlowRadarSmallLoadWins(t *testing.T) {
	const memory = 128 << 10
	const flows = 2000 // well under FlowRadar's ~5K cells at this budget

	tr, err := trace.Generate(trace.CAIDA, flows, 43)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(43)
	truth := tr.Truth()

	rec, err := New(AlgorithmFlowRadar, Config{MemoryBytes: memory, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		rec.Update(p)
	}
	if got := metrics.FSC(rec.Records(), truth); got < 0.999 {
		t.Errorf("FlowRadar small-load FSC = %.4f, want ~1", got)
	}
	if got := metrics.SizeARE(rec.EstimateSize, truth); got > 0.001 {
		t.Errorf("FlowRadar small-load ARE = %.4f, want ~0", got)
	}
}
