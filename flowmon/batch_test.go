package flowmon_test

import (
	"bytes"
	"sort"
	"testing"

	"repro/flow"
	"repro/flowmon"
	"repro/trace"
)

// batchCfg keeps the recorders small enough that every algorithm is pushed
// into its collision/eviction paths by the test trace.
var batchCfg = flowmon.Config{MemoryBytes: 64 << 10, Seed: 42, SampleRate: 10}

func sortRecords(recs []flow.Record) {
	sort.Slice(recs, func(i, j int) bool {
		a := recs[i].Key.AppendBytes(nil)
		b := recs[j].Key.AppendBytes(nil)
		if c := bytes.Compare(a, b); c != 0 {
			return c < 0
		}
		return recs[i].Count < recs[j].Count
	})
}

// feedBatches replays pkts through UpdateBatch in deliberately awkward
// batch shapes: empty, single-packet, small, and large batches.
func feedBatches(rec flowmon.Recorder, pkts []flow.Packet) {
	sizes := []int{0, 1, 3, 17, 256, 1024}
	i, s := 0, 0
	for i < len(pkts) {
		n := sizes[s%len(sizes)]
		s++
		if n > len(pkts)-i {
			n = len(pkts) - i
		}
		rec.UpdateBatch(pkts[i : i+n])
		i += n
	}
}

// TestBatchSequentialEquivalence is the core batching contract: for every
// algorithm, UpdateBatch must leave the recorder in a state byte-identical
// to per-packet Update on the same packet sequence — same records, same
// size estimates, same cardinality estimate, same operation counts.
func TestBatchSequentialEquivalence(t *testing.T) {
	tr, err := trace.Generate(trace.Campus, 8000, 7)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(7)
	truth := tr.Truth()

	algos := append(flowmon.All(), flowmon.Extras()...)
	for _, a := range algos {
		t.Run(a.String(), func(t *testing.T) {
			seq, err := flowmon.New(a, batchCfg)
			if err != nil {
				t.Fatal(err)
			}
			bat, err := flowmon.New(a, batchCfg)
			if err != nil {
				t.Fatal(err)
			}

			for _, p := range pkts {
				seq.Update(p)
			}
			feedBatches(bat, pkts)

			if s, b := seq.OpStats(), bat.OpStats(); s != b {
				t.Errorf("OpStats diverge: sequential %+v, batched %+v", s, b)
			}
			if s, b := seq.EstimateCardinality(), bat.EstimateCardinality(); s != b {
				t.Errorf("EstimateCardinality diverges: sequential %v, batched %v", s, b)
			}
			if s, b := seq.MemoryBytes(), bat.MemoryBytes(); s != b {
				t.Errorf("MemoryBytes diverges: sequential %d, batched %d", s, b)
			}

			sr, br := seq.Records(), bat.Records()
			sortRecords(sr)
			sortRecords(br)
			if len(sr) != len(br) {
				t.Fatalf("record counts diverge: sequential %d, batched %d", len(sr), len(br))
			}
			for i := range sr {
				if sr[i] != br[i] {
					t.Fatalf("record %d diverges: sequential %+v, batched %+v", i, sr[i], br[i])
				}
			}

			for _, rec := range truth.Records() {
				if s, b := seq.EstimateSize(rec.Key), bat.EstimateSize(rec.Key); s != b {
					t.Fatalf("EstimateSize(%v) diverges: sequential %d, batched %d", rec.Key, s, b)
				}
			}
		})
	}
}

// TestUpdateAllAdapter checks the single-packet fallback adapter against
// the native batched path.
func TestUpdateAllAdapter(t *testing.T) {
	tr, err := trace.Generate(trace.ISP1, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(11)

	native, err := flowmon.New(flowmon.AlgorithmHashFlow, batchCfg)
	if err != nil {
		t.Fatal(err)
	}
	adapted, err := flowmon.New(flowmon.AlgorithmHashFlow, batchCfg)
	if err != nil {
		t.Fatal(err)
	}

	native.UpdateBatch(pkts)
	flowmon.UpdateAll(adapted, pkts)

	if n, a := native.OpStats(), adapted.OpStats(); n != a {
		t.Errorf("OpStats diverge: native %+v, adapter %+v", n, a)
	}
	nr, ar := native.Records(), adapted.Records()
	sortRecords(nr)
	sortRecords(ar)
	if len(nr) != len(ar) {
		t.Fatalf("record counts diverge: native %d, adapter %d", len(nr), len(ar))
	}
	for i := range nr {
		if nr[i] != ar[i] {
			t.Fatalf("record %d diverges: native %+v, adapter %+v", i, nr[i], ar[i])
		}
	}
}

// TestBatchAfterReset ensures the batched path composes with Reset: a
// reset recorder refilled by batches matches a fresh sequential one.
func TestBatchAfterReset(t *testing.T) {
	tr, err := trace.Generate(trace.ISP2, 2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(13)

	for _, a := range append(flowmon.All(), flowmon.Extras()...) {
		rec, err := flowmon.New(a, batchCfg)
		if err != nil {
			t.Fatal(err)
		}
		rec.UpdateBatch(pkts)
		rec.Reset()
		rec.UpdateBatch(pkts)

		// The sequential reference walks the same lifecycle (fill, reset,
		// refill) so stateful extras — the sampler's RNG survives Reset —
		// consume their randomness in the same order.
		seq, err := flowmon.New(a, batchCfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			seq.Update(p)
		}
		seq.Reset()
		for _, p := range pkts {
			seq.Update(p)
		}
		if r, f := rec.EstimateCardinality(), seq.EstimateCardinality(); r != f {
			t.Errorf("%v: cardinality batched %v, sequential %v", a, r, f)
		}
	}
}
