package flowmon

import (
	"testing"

	"repro/flow"
	"repro/trace"
)

// Cross-algorithm invariants, checked on a common workload for every
// implementation behind the Recorder interface.

func invariantWorkload(t *testing.T) ([]flow.Packet, *flow.Truth) {
	t.Helper()
	tr, err := trace.Generate(trace.Campus, 8000, 41)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Packets(41), tr.Truth()
}

func allWithExtras() []Algorithm {
	return append(All(), Extras()...)
}

func TestInvariantPacketAccounting(t *testing.T) {
	pkts, _ := invariantWorkload(t)
	for _, a := range allWithExtras() {
		t.Run(a.String(), func(t *testing.T) {
			rec, err := New(a, Config{MemoryBytes: 64 << 10, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pkts {
				rec.Update(p)
			}
			if got := rec.OpStats().Packets; got != uint64(len(pkts)) {
				t.Errorf("OpStats.Packets = %d, want %d", got, len(pkts))
			}
		})
	}
}

func TestInvariantRecordsHaveRealKeys(t *testing.T) {
	// Every reported record must name a flow that actually appeared in the
	// trace. HashFlow, HashPipe, ElasticSketch, Cuckoo and SampledNetFlow
	// store full keys, so their reports can never invent a flow; FlowRadar
	// could in principle mis-decode, but its verification step prevents it.
	pkts, truth := invariantWorkload(t)
	for _, a := range allWithExtras() {
		t.Run(a.String(), func(t *testing.T) {
			rec, err := New(a, Config{MemoryBytes: 64 << 10, Seed: 9, SampleRate: 10})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pkts {
				rec.Update(p)
			}
			for _, r := range rec.Records() {
				if !truth.Contains(r.Key) {
					t.Fatalf("reported key %v never appeared in the trace", r.Key)
				}
			}
		})
	}
}

func TestInvariantEstimateAfterReset(t *testing.T) {
	pkts, _ := invariantWorkload(t)
	k := pkts[0].Key
	for _, a := range allWithExtras() {
		t.Run(a.String(), func(t *testing.T) {
			rec, err := New(a, Config{MemoryBytes: 64 << 10, Seed: 9, SampleRate: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pkts {
				rec.Update(p)
			}
			rec.Reset()
			if got := rec.EstimateSize(k); got != 0 {
				t.Errorf("EstimateSize after Reset = %d", got)
			}
			if got := len(rec.Records()); got != 0 {
				t.Errorf("Records after Reset = %d", got)
			}
			if got := rec.OpStats(); got != (flow.OpStats{}) {
				t.Errorf("OpStats after Reset = %+v", got)
			}
		})
	}
}

func TestInvariantCountsConserved(t *testing.T) {
	// For algorithms that count raw packets (everything except sampled
	// NetFlow's scaled estimates and ElasticSketch's light-part collisions),
	// the sum of reported counts never exceeds the number of packets.
	pkts, _ := invariantWorkload(t)
	for _, a := range []Algorithm{
		AlgorithmHashFlow, AlgorithmHashPipe, AlgorithmFlowRadar, AlgorithmCuckoo,
	} {
		t.Run(a.String(), func(t *testing.T) {
			rec, err := New(a, Config{MemoryBytes: 64 << 10, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pkts {
				rec.Update(p)
			}
			var total uint64
			for _, r := range rec.Records() {
				total += uint64(r.Count)
			}
			if total > uint64(len(pkts)) {
				t.Errorf("reported counts sum to %d, only %d packets seen", total, len(pkts))
			}
		})
	}
}

func TestInvariantMemoryWithinBudget(t *testing.T) {
	for _, budget := range []int{8 << 10, 64 << 10, 1 << 20} {
		for _, a := range allWithExtras() {
			rec, err := New(a, Config{MemoryBytes: budget, Seed: 1})
			if err != nil {
				t.Fatalf("%v at %d: %v", a, budget, err)
			}
			if got := rec.MemoryBytes(); got > budget {
				t.Errorf("%v at %d: MemoryBytes = %d exceeds budget", a, budget, got)
			}
		}
	}
}

func TestInvariantDeterminism(t *testing.T) {
	// Same seed, same packets → identical record sets.
	pkts, _ := invariantWorkload(t)
	for _, a := range allWithExtras() {
		t.Run(a.String(), func(t *testing.T) {
			runOnce := func() map[flow.Key]uint32 {
				rec, err := New(a, Config{MemoryBytes: 32 << 10, Seed: 77, SampleRate: 10})
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range pkts {
					rec.Update(p)
				}
				out := make(map[flow.Key]uint32)
				for _, r := range rec.Records() {
					out[r.Key] = r.Count
				}
				return out
			}
			a1, a2 := runOnce(), runOnce()
			if len(a1) != len(a2) {
				t.Fatalf("record counts differ across identical runs: %d vs %d", len(a1), len(a2))
			}
			for k, v := range a1 {
				if a2[k] != v {
					t.Fatalf("record %v differs across identical runs: %d vs %d", k, v, a2[k])
				}
			}
		})
	}
}
