// Package trace generates the synthetic packet traces that stand in for the
// four operational-network traces of the paper's evaluation (Table I):
// CAIDA backbone, a campus network, and two ISP access networks.
//
// Each profile draws per-flow packet counts from a rank-size Zipf
// distribution size(i) ∝ i^(−s), with the scale calibrated so the mean flow
// size matches Table I. This reproduces the two properties the algorithms
// are sensitive to: the mean load per memory cell, and the elephant/mouse
// skew shown in Fig. 3 ("most flows are mice, most packets come from a few
// elephants"). Packet interleaving is a uniform random shuffle, matching
// the paper's per-trial methodology of feeding all packets of a fixed flow
// population.
package trace

import "fmt"

// Profile describes one synthetic trace family.
type Profile struct {
	// Name is the trace label used in the paper's figures.
	Name string
	// S is the rank-size Zipf exponent: flow i gets ~ scale·i^(−S) packets.
	S float64
	// MeanPkts is the target mean flow size from Table I.
	MeanPkts float64
	// Description records what the profile models.
	Description string
}

// The four trace profiles of Table I. Exponents are calibrated so that at
// the paper's 250K-flow scale the max/mean flow size ratios land near the
// reported values (see DESIGN.md §2).
var (
	// CAIDA models the 40 Gbps backbone trace: mean 3.2 pkts/flow with a
	// very heavy tail (max 110900).
	CAIDA = Profile{Name: "CAIDA", S: 1.1, MeanPkts: 3.2,
		Description: "40Gbps backbone link (CAIDA 2018-03-15)"}
	// Campus models the 10 Gbps campus trace: mean 15.1 pkts/flow, the most
	// elephant-dominated profile (7.7% of flows carry >85% of packets).
	Campus = Profile{Name: "Campus", S: 1.0, MeanPkts: 15.1,
		Description: "10Gbps campus network link (2014-02-07)"}
	// ISP1 models the first ISP access trace: mean 5.2 pkts/flow.
	ISP1 = Profile{Name: "ISP1", S: 1.0, MeanPkts: 5.2,
		Description: "ISP access network (2009-04-10)"}
	// ISP2 models the 1:5000-sampled access trace: mean 1.3 pkts/flow with
	// >99% of flows under 5 packets.
	ISP2 = Profile{Name: "ISP2", S: 1.0, MeanPkts: 1.3,
		Description: "ISP access network, 1:5000 sampled (2015-12-31)"}
)

// Profiles returns the four paper traces in presentation order.
func Profiles() []Profile {
	return []Profile{CAIDA, Campus, ISP1, ISP2}
}

// ProfileByName resolves a profile by its display name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("trace: unknown profile %q", name)
}
