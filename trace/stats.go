package trace

import "sort"

// Stats summarizes a trace the way Table I of the paper does.
type Stats struct {
	Name     string
	Flows    int
	Packets  uint64
	MaxSize  uint32
	MeanSize float64
	// Skew is the fraction of total packets carried by the largest 7.7% of
	// flows, the statistic the paper quotes for the campus trace.
	Skew float64
}

// ComputeStats derives Table I statistics from a trace.
func ComputeStats(t *Trace) Stats {
	s := Stats{
		Name:    t.Profile.Name,
		Flows:   len(t.Flows),
		Packets: t.PacketCount(),
	}
	if len(t.Flows) == 0 {
		return s
	}
	var topPkts uint64
	topN := int(float64(len(t.Flows)) * 0.077)
	for i, f := range t.Flows {
		if f.Count > s.MaxSize {
			s.MaxSize = f.Count
		}
		if i < topN {
			topPkts += uint64(f.Count)
		}
	}
	s.MeanSize = float64(s.Packets) / float64(s.Flows)
	if s.Packets > 0 {
		s.Skew = float64(topPkts) / float64(s.Packets)
	}
	return s
}

// CDFPoint is one point of the cumulative flow-size distribution (Fig. 3):
// the fraction of flows whose size is <= Size.
type CDFPoint struct {
	Size    uint32
	CumFrac float64
}

// SizeCDF returns the flow-size CDF sampled at every distinct flow size.
func SizeCDF(t *Trace) []CDFPoint {
	if len(t.Flows) == 0 {
		return nil
	}
	sizes := make([]uint32, len(t.Flows))
	for i, f := range t.Flows {
		sizes[i] = f.Count
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })

	var out []CDFPoint
	n := float64(len(sizes))
	for i := 0; i < len(sizes); {
		j := i
		for j < len(sizes) && sizes[j] == sizes[i] {
			j++
		}
		out = append(out, CDFPoint{Size: sizes[i], CumFrac: float64(j) / n})
		i = j
	}
	return out
}

// FracBelow returns the fraction of flows with fewer than limit packets,
// used to check the ISP2 property (">99% of flows have <5 packets").
func FracBelow(t *Trace, limit uint32) float64 {
	if len(t.Flows) == 0 {
		return 0
	}
	n := 0
	for _, f := range t.Flows {
		if f.Count < limit {
			n++
		}
	}
	return float64(n) / float64(len(t.Flows))
}
