package trace

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"repro/flow"
	"repro/internal/fenwick"
)

// Trace is a synthetic trace: a fixed flow population with exact per-flow
// packet counts. Packet streams are derived from it deterministically.
type Trace struct {
	// Profile is the generating profile.
	Profile Profile
	// Flows holds every flow with its exact packet count, in descending
	// size order.
	Flows []flow.Record

	totalPkts uint64
}

// Generate builds a trace with the given number of flows. The same
// (profile, flows, seed) triple always yields the identical trace.
func Generate(p Profile, flows int, seed uint64) (*Trace, error) {
	if flows <= 0 {
		return nil, fmt.Errorf("trace: flow count must be positive, got %d", flows)
	}
	if p.S < 0 || p.MeanPkts < 1 {
		return nil, fmt.Errorf("trace: profile %q needs S >= 0 and mean >= 1", p.Name)
	}
	sizes := zipfSizes(flows, p.S, p.MeanPkts)
	rng := rand.New(rand.NewPCG(seed, 0x7ace))
	keys := distinctKeys(flows, rng)

	t := &Trace{Profile: p, Flows: make([]flow.Record, flows)}
	for i := range sizes {
		t.Flows[i] = flow.Record{Key: keys[i], Count: sizes[i]}
		t.totalPkts += uint64(sizes[i])
	}
	return t, nil
}

// zipfSizes returns flows packet counts following size(i) = max(1,
// round(c·(i+1)^−s)) with c calibrated by bisection so the mean matches
// target.
func zipfSizes(flows int, s, target float64) []uint32 {
	ranks := make([]float64, flows)
	for i := range ranks {
		ranks[i] = math.Pow(float64(i+1), -s)
	}
	mean := func(c float64) float64 {
		var sum float64
		for _, r := range ranks {
			v := math.Round(c * r)
			if v < 1 {
				v = 1
			}
			sum += v
		}
		return sum / float64(flows)
	}
	// Bracket the scale, then bisect. mean(c) is monotone non-decreasing.
	lo, hi := 0.0, 1.0
	for mean(hi) < target && hi < 1e15 {
		hi *= 2
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if mean(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	sizes := make([]uint32, flows)
	for i, r := range ranks {
		v := math.Round(hi * r)
		if v < 1 {
			v = 1
		}
		if v > math.MaxUint32 {
			v = math.MaxUint32
		}
		sizes[i] = uint32(v)
	}
	return sizes
}

// distinctKeys draws flows distinct random 5-tuples.
func distinctKeys(flows int, rng *rand.Rand) []flow.Key {
	seen := make(map[flow.Key]struct{}, flows)
	keys := make([]flow.Key, 0, flows)
	for len(keys) < flows {
		k := randomKey(rng)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		keys = append(keys, k)
	}
	return keys
}

func randomKey(rng *rand.Rand) flow.Key {
	proto := uint8(6) // TCP
	switch rng.IntN(10) {
	case 0, 1, 2: // ~30% UDP
		proto = 17
	case 3:
		proto = 1 // a little ICMP
	}
	return flow.Key{
		SrcIP:   rng.Uint32(),
		DstIP:   rng.Uint32(),
		SrcPort: uint16(rng.Uint32()),
		DstPort: uint16(rng.Uint32()),
		Proto:   proto,
	}
}

// FromPackets reconstructs a Trace (exact flow population) from an observed
// packet stream, e.g. one read back from a pcap file. The resulting trace
// carries the given profile only as a label.
func FromPackets(p Profile, pkts []flow.Packet) *Trace {
	counts := make(map[flow.Key]uint32)
	for _, pk := range pkts {
		counts[pk.Key]++
	}
	t := &Trace{Profile: p, Flows: make([]flow.Record, 0, len(counts))}
	for k, c := range counts {
		t.Flows = append(t.Flows, flow.Record{Key: k, Count: c})
		t.totalPkts += uint64(c)
	}
	// Keep the descending-size invariant Generate establishes.
	sort.Slice(t.Flows, func(i, j int) bool {
		if t.Flows[i].Count != t.Flows[j].Count {
			return t.Flows[i].Count > t.Flows[j].Count
		}
		a, b := t.Flows[i].Key.Words()
		c2, d := t.Flows[j].Key.Words()
		if a != c2 {
			return a < c2
		}
		return b < d
	})
	return t
}

// FlowCount returns the number of flows in the trace.
func (t *Trace) FlowCount() int { return len(t.Flows) }

// PacketCount returns the total number of packets in the trace.
func (t *Trace) PacketCount() uint64 { return t.totalPkts }

// Truth returns a ground-truth accumulator pre-filled with the trace's
// exact flow counts.
func (t *Trace) Truth() *flow.Truth {
	truth := flow.NewTruth(len(t.Flows))
	for _, f := range t.Flows {
		for i := uint32(0); i < f.Count; i++ {
			truth.Observe(flow.Packet{Key: f.Key})
		}
	}
	return truth
}

// Packets materializes the full packet stream in a uniformly random
// interleaving (Fisher–Yates over all packets). Packet sizes are drawn from
// a simple bimodal mix of small (ACK-like) and full-size packets.
func (t *Trace) Packets(seed uint64) []flow.Packet {
	pkts := make([]flow.Packet, 0, t.totalPkts)
	rng := rand.New(rand.NewPCG(seed, 0x9ac4e7))
	for _, f := range t.Flows {
		for i := uint32(0); i < f.Count; i++ {
			pkts = append(pkts, flow.Packet{Key: f.Key, Size: packetSize(rng)})
		}
	}
	rng2 := rand.New(rand.NewPCG(seed, 0x5f0e11e))
	for i := len(pkts) - 1; i > 0; i-- {
		j := rng2.IntN(i + 1)
		pkts[i], pkts[j] = pkts[j], pkts[i]
	}
	return pkts
}

func packetSize(rng *rand.Rand) uint16 {
	if rng.IntN(2) == 0 {
		return uint16(64 + rng.IntN(200))
	}
	return uint16(1000 + rng.IntN(500))
}

// Stream returns a deterministic streaming iterator over the same random
// interleaving family, using O(flows) memory instead of materializing all
// packets. Each call to Next picks a uniformly random remaining packet.
func (t *Trace) Stream(seed uint64) *Stream {
	weights := make([]uint64, len(t.Flows))
	for i, f := range t.Flows {
		weights[i] = uint64(f.Count)
	}
	return &Stream{
		t:         t,
		remaining: fenwick.New(weights),
		left:      t.totalPkts,
		rng:       rand.New(rand.NewPCG(seed, 0x57e4a)),
	}
}

// Stream yields the packets of a Trace one at a time in random order.
type Stream struct {
	t         *Trace
	remaining *fenwick.Tree
	left      uint64
	rng       *rand.Rand
}

// Next returns the next packet. ok is false once the stream is exhausted.
func (s *Stream) Next() (p flow.Packet, ok bool) {
	if s.left == 0 {
		return flow.Packet{}, false
	}
	target := s.rng.Uint64N(s.left)
	idx := s.remaining.FindPrefix(target)
	s.remaining.Add(idx, -1)
	s.left--
	return flow.Packet{Key: s.t.Flows[idx].Key, Size: packetSize(s.rng)}, true
}

// Remaining returns how many packets are left in the stream.
func (s *Stream) Remaining() uint64 { return s.left }
