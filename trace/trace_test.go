package trace

import (
	"math"
	"testing"

	"repro/flow"
)

func mustGenerate(t *testing.T, p Profile, flows int, seed uint64) *Trace {
	t.Helper()
	tr, err := Generate(p, flows, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(CAIDA, 0, 1); err == nil {
		t.Error("accepted zero flows")
	}
	if _, err := Generate(Profile{Name: "bad", S: -1, MeanPkts: 2}, 10, 1); err == nil {
		t.Error("accepted negative exponent")
	}
	if _, err := Generate(Profile{Name: "bad", S: 1, MeanPkts: 0.5}, 10, 1); err == nil {
		t.Error("accepted mean below 1")
	}
}

func TestProfileByName(t *testing.T) {
	for _, p := range Profiles() {
		got, err := ProfileByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("ProfileByName(%q) = %v, %v", p.Name, got, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("ProfileByName accepted unknown name")
	}
}

func TestMeanCalibration(t *testing.T) {
	// The generated mean flow size must match Table I within 5%.
	for _, p := range Profiles() {
		tr := mustGenerate(t, p, 50000, 42)
		st := ComputeStats(tr)
		if math.Abs(st.MeanSize/p.MeanPkts-1) > 0.05 {
			t.Errorf("%s: mean size %.2f, want %.2f +- 5%%", p.Name, st.MeanSize, p.MeanPkts)
		}
	}
}

func TestSkewShapes(t *testing.T) {
	// At the paper's 250K-flow scale, check the qualitative skew claims:
	// Campus has 7.7% of flows carrying >85% of packets; ISP2 has >99% of
	// flows below 5 packets; max/mean ratios are within the right order of
	// magnitude of Table I.
	campus := mustGenerate(t, Campus, 250000, 7)
	if st := ComputeStats(campus); st.Skew < 0.80 {
		t.Errorf("Campus skew = %.3f, want > 0.80", st.Skew)
	}
	isp2 := mustGenerate(t, ISP2, 250000, 7)
	if frac := FracBelow(isp2, 5); frac < 0.99 {
		t.Errorf("ISP2 FracBelow(5) = %.4f, want > 0.99", frac)
	}
	wantMax := map[string]float64{"CAIDA": 110900, "Campus": 289877, "ISP1": 84357, "ISP2": 2441}
	for _, p := range Profiles() {
		tr := mustGenerate(t, p, 250000, 7)
		st := ComputeStats(tr)
		ratio := float64(st.MaxSize) / wantMax[p.Name]
		if ratio < 0.25 || ratio > 4 {
			t.Errorf("%s: max flow %d vs paper %v (ratio %.2f), want within 4x",
				p.Name, st.MaxSize, wantMax[p.Name], ratio)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := mustGenerate(t, CAIDA, 1000, 5)
	b := mustGenerate(t, CAIDA, 1000, 5)
	if len(a.Flows) != len(b.Flows) {
		t.Fatal("different flow counts for same seed")
	}
	for i := range a.Flows {
		if a.Flows[i] != b.Flows[i] {
			t.Fatalf("flow %d differs between same-seed traces", i)
		}
	}
	pa := a.Packets(9)
	pb := b.Packets(9)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("packet %d differs between same-seed streams", i)
		}
	}
}

func TestDistinctKeys(t *testing.T) {
	tr := mustGenerate(t, ISP1, 5000, 11)
	seen := make(map[flow.Key]struct{}, len(tr.Flows))
	for _, f := range tr.Flows {
		if _, dup := seen[f.Key]; dup {
			t.Fatalf("duplicate flow key %v", f.Key)
		}
		seen[f.Key] = struct{}{}
		if f.Count < 1 {
			t.Fatalf("flow with count %d", f.Count)
		}
	}
}

func TestPacketsMatchFlowCounts(t *testing.T) {
	tr := mustGenerate(t, Campus, 500, 13)
	pkts := tr.Packets(1)
	if uint64(len(pkts)) != tr.PacketCount() {
		t.Fatalf("stream has %d packets, trace says %d", len(pkts), tr.PacketCount())
	}
	counts := make(map[flow.Key]uint32)
	for _, p := range pkts {
		counts[p.Key]++
	}
	for _, f := range tr.Flows {
		if counts[f.Key] != f.Count {
			t.Errorf("flow %v: stream count %d, want %d", f.Key, counts[f.Key], f.Count)
		}
	}
}

func TestStreamMatchesFlowCounts(t *testing.T) {
	tr := mustGenerate(t, ISP1, 400, 17)
	s := tr.Stream(3)
	counts := make(map[flow.Key]uint32)
	n := uint64(0)
	for {
		p, ok := s.Next()
		if !ok {
			break
		}
		counts[p.Key]++
		n++
	}
	if n != tr.PacketCount() {
		t.Fatalf("stream yielded %d packets, want %d", n, tr.PacketCount())
	}
	if s.Remaining() != 0 {
		t.Errorf("Remaining = %d after drain", s.Remaining())
	}
	for _, f := range tr.Flows {
		if counts[f.Key] != f.Count {
			t.Errorf("flow %v: stream count %d, want %d", f.Key, counts[f.Key], f.Count)
		}
	}
}

func TestTruthMatchesTrace(t *testing.T) {
	tr := mustGenerate(t, ISP2, 300, 19)
	truth := tr.Truth()
	if truth.Flows() != tr.FlowCount() {
		t.Errorf("truth flows %d, trace %d", truth.Flows(), tr.FlowCount())
	}
	if truth.Packets() != tr.PacketCount() {
		t.Errorf("truth packets %d, trace %d", truth.Packets(), tr.PacketCount())
	}
	for _, f := range tr.Flows {
		if truth.Count(f.Key) != f.Count {
			t.Errorf("flow %v truth count %d, want %d", f.Key, truth.Count(f.Key), f.Count)
		}
	}
}

func TestSizeCDF(t *testing.T) {
	tr := mustGenerate(t, CAIDA, 10000, 23)
	cdf := SizeCDF(tr)
	if len(cdf) == 0 {
		t.Fatal("empty CDF")
	}
	last := cdf[len(cdf)-1]
	if last.CumFrac != 1.0 {
		t.Errorf("CDF does not reach 1: %v", last.CumFrac)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Size <= cdf[i-1].Size || cdf[i].CumFrac < cdf[i-1].CumFrac {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	// Heavy-tailed: the majority of flows are small.
	if cdf[0].Size != 1 {
		t.Errorf("smallest flow size = %d, want 1", cdf[0].Size)
	}
}

func TestZipfSizesMonotone(t *testing.T) {
	sizes := zipfSizes(1000, 1.0, 10)
	for i := 1; i < len(sizes); i++ {
		if sizes[i] > sizes[i-1] {
			t.Fatalf("sizes not non-increasing at %d", i)
		}
	}
	if sizes[len(sizes)-1] < 1 {
		t.Error("smallest size below 1")
	}
}

func TestStatsEmpty(t *testing.T) {
	st := ComputeStats(&Trace{Profile: CAIDA})
	if st.Flows != 0 || st.Packets != 0 {
		t.Error("empty trace stats not zero")
	}
	if SizeCDF(&Trace{}) != nil {
		t.Error("empty trace CDF not nil")
	}
}

func TestFromPackets(t *testing.T) {
	orig := mustGenerate(t, ISP1, 300, 29)
	rebuilt := FromPackets(ISP1, orig.Packets(29))
	if rebuilt.FlowCount() != orig.FlowCount() {
		t.Fatalf("rebuilt %d flows, want %d", rebuilt.FlowCount(), orig.FlowCount())
	}
	if rebuilt.PacketCount() != orig.PacketCount() {
		t.Fatalf("rebuilt %d packets, want %d", rebuilt.PacketCount(), orig.PacketCount())
	}
	// Descending-size invariant holds.
	for i := 1; i < len(rebuilt.Flows); i++ {
		if rebuilt.Flows[i].Count > rebuilt.Flows[i-1].Count {
			t.Fatalf("rebuilt flows not descending at %d", i)
		}
	}
	// Per-flow counts survive the round trip.
	want := make(map[flow.Key]uint32, len(orig.Flows))
	for _, f := range orig.Flows {
		want[f.Key] = f.Count
	}
	for _, f := range rebuilt.Flows {
		if want[f.Key] != f.Count {
			t.Errorf("flow %v rebuilt count %d, want %d", f.Key, f.Count, want[f.Key])
		}
	}
}

func TestFromPacketsEmpty(t *testing.T) {
	tr := FromPackets(CAIDA, nil)
	if tr.FlowCount() != 0 || tr.PacketCount() != 0 {
		t.Error("empty packet stream should yield empty trace")
	}
}
