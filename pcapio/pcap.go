package pcapio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/flow"
)

// Classic pcap constants.
const (
	magicLE     = 0xD4C3B2A1 // byte-swapped magic as read big-endian
	magicNative = 0xA1B2C3D4
	versionMaj  = 2
	versionMin  = 4
	// LinkTypeEthernet is the only link type this codec supports.
	LinkTypeEthernet = 1
	// DefaultSnapLen is the capture length written into file headers.
	DefaultSnapLen = 65535

	globalHeaderLen = 24
	recordHeaderLen = 16
)

// ErrNotPcap is returned when a stream does not start with a pcap magic.
var ErrNotPcap = errors.New("pcapio: not a pcap stream")

// Writer writes a classic little-endian pcap v2.4 file of Ethernet frames.
type Writer struct {
	w        *bufio.Writer
	frameBuf []byte
	started  bool
}

// NewWriter wraps w. The global header is written lazily on the first
// packet (or by Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) writeHeader() error {
	var hdr [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicNative)
	binary.LittleEndian.PutUint16(hdr[4:], versionMaj)
	binary.LittleEndian.PutUint16(hdr[6:], versionMin)
	binary.LittleEndian.PutUint32(hdr[16:], DefaultSnapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	_, err := w.w.Write(hdr[:])
	w.started = true
	return err
}

// WritePacket serializes the packet as an Ethernet frame with the given
// capture timestamp.
func (w *Writer) WritePacket(p flow.Packet, ts time.Time) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return fmt.Errorf("pcapio: write global header: %w", err)
		}
	}
	w.frameBuf = BuildFrame(p, w.frameBuf)
	var rec [recordHeaderLen]byte
	binary.LittleEndian.PutUint32(rec[0:], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(rec[4:], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(rec[8:], uint32(len(w.frameBuf)))
	binary.LittleEndian.PutUint32(rec[12:], uint32(len(w.frameBuf)))
	if _, err := w.w.Write(rec[:]); err != nil {
		return fmt.Errorf("pcapio: write record header: %w", err)
	}
	if _, err := w.w.Write(w.frameBuf); err != nil {
		return fmt.Errorf("pcapio: write frame: %w", err)
	}
	return nil
}

// Flush writes any buffered data (and the global header if no packet was
// ever written).
func (w *Writer) Flush() error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Reader reads a classic pcap v2.4 file of Ethernet frames, in either byte
// order.
type Reader struct {
	r       *bufio.Reader
	order   binary.ByteOrder
	started bool
	buf     []byte
}

// NewReader wraps r. The global header is validated on the first read.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) readHeader() error {
	var hdr [globalHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return fmt.Errorf("pcapio: read global header: %w", err)
	}
	switch binary.BigEndian.Uint32(hdr[0:]) {
	case magicNative:
		r.order = binary.BigEndian
	case magicLE:
		r.order = binary.LittleEndian
	default:
		return ErrNotPcap
	}
	if lt := r.order.Uint32(hdr[20:]); lt != LinkTypeEthernet {
		return fmt.Errorf("pcapio: unsupported link type %d", lt)
	}
	r.started = true
	return nil
}

// ReadPacket returns the next packet and its capture timestamp. It returns
// io.EOF cleanly at end of file.
func (r *Reader) ReadPacket() (flow.Packet, time.Time, error) {
	if !r.started {
		if err := r.readHeader(); err != nil {
			return flow.Packet{}, time.Time{}, err
		}
	}
	var rec [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return flow.Packet{}, time.Time{}, io.EOF
		}
		return flow.Packet{}, time.Time{}, fmt.Errorf("pcapio: read record header: %w", err)
	}
	sec := r.order.Uint32(rec[0:])
	usec := r.order.Uint32(rec[4:])
	incl := r.order.Uint32(rec[8:])
	if incl > DefaultSnapLen {
		return flow.Packet{}, time.Time{}, fmt.Errorf("pcapio: record length %d exceeds snaplen", incl)
	}
	if cap(r.buf) < int(incl) {
		r.buf = make([]byte, incl)
	}
	r.buf = r.buf[:incl]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return flow.Packet{}, time.Time{}, fmt.Errorf("pcapio: read frame: %w", err)
	}
	p, err := ParseFrame(r.buf)
	if err != nil {
		return flow.Packet{}, time.Time{}, err
	}
	ts := time.Unix(int64(sec), int64(usec)*1000).UTC()
	return p, ts, nil
}

// ReadAll drains the stream into a packet slice.
func (r *Reader) ReadAll() ([]flow.Packet, error) {
	var out []flow.Packet
	for {
		p, _, err := r.ReadPacket()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
