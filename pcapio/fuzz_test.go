package pcapio

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/flow"
)

// FuzzReader feeds arbitrary bytes to the pcap reader: it must error or
// EOF, never panic, and any packets it does return must carry plausible
// lengths.
func FuzzReader(f *testing.F) {
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.WritePacket(flow.Packet{
		Key:  flow.Key{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: ProtoTCP},
		Size: 100,
	}, time.Unix(0, 0))
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:20])
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			_, _, err := r.ReadPacket()
			if err != nil {
				if errors.Is(err, io.EOF) || err != nil {
					return
				}
			}
		}
	})
}

// FuzzParseFrame must never panic on arbitrary frame bytes.
func FuzzParseFrame(f *testing.F) {
	f.Add(BuildFrame(flow.Packet{Key: flow.Key{Proto: ProtoUDP}, Size: 80}, nil))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		_, _ = ParseFrame(frame)
	})
}
