// Package pcapio reads and writes classic pcap (v2.4) capture files and the
// Ethernet/IPv4/TCP/UDP headers needed to carry 5-tuple flows — a
// stdlib-only stand-in for the gopacket/libpcap layer the paper's testbed
// relied on for packet parsing.
package pcapio

import (
	"encoding/binary"
	"fmt"

	"repro/flow"
)

// Header sizes in bytes.
const (
	EthernetHeaderLen = 14
	IPv4HeaderLen     = 20
	TCPHeaderLen      = 20
	UDPHeaderLen      = 8
)

// Protocol numbers used in the IPv4 header.
const (
	ProtoICMP = 1
	ProtoTCP  = 6
	ProtoUDP  = 17
)

const etherTypeIPv4 = 0x0800

// BuildFrame serializes a packet's 5-tuple into an Ethernet+IPv4+L4 frame,
// padded or truncated to approximate p.Size bytes on the wire (never below
// the minimum header length). For protocols other than TCP and UDP the L4
// header is omitted and ports are ignored.
func BuildFrame(p flow.Packet, buf []byte) []byte {
	l4 := 0
	switch p.Key.Proto {
	case ProtoTCP:
		l4 = TCPHeaderLen
	case ProtoUDP:
		l4 = UDPHeaderLen
	}
	ipLen := IPv4HeaderLen + l4
	payload := int(p.Size) - EthernetHeaderLen - ipLen
	if payload < 0 {
		payload = 0
	}
	total := EthernetHeaderLen + ipLen + payload
	if cap(buf) < total {
		buf = make([]byte, total)
	}
	buf = buf[:total]
	for i := range buf {
		buf[i] = 0
	}

	// Ethernet: synthetic locally-administered MACs derived from the IPs.
	buf[0], buf[1] = 0x02, 0x00
	binary.BigEndian.PutUint32(buf[2:], p.Key.DstIP)
	buf[6], buf[7] = 0x02, 0x01
	binary.BigEndian.PutUint32(buf[8:], p.Key.SrcIP)
	binary.BigEndian.PutUint16(buf[12:], etherTypeIPv4)

	// IPv4.
	ip := buf[EthernetHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:], uint16(ipLen+payload))
	ip[8] = 64 // TTL
	ip[9] = p.Key.Proto
	binary.BigEndian.PutUint32(ip[12:], p.Key.SrcIP)
	binary.BigEndian.PutUint32(ip[16:], p.Key.DstIP)
	binary.BigEndian.PutUint16(ip[10:], ipv4Checksum(ip[:IPv4HeaderLen]))

	// L4.
	switch p.Key.Proto {
	case ProtoTCP:
		tcp := ip[IPv4HeaderLen:]
		binary.BigEndian.PutUint16(tcp[0:], p.Key.SrcPort)
		binary.BigEndian.PutUint16(tcp[2:], p.Key.DstPort)
		tcp[12] = 0x50 // data offset 5 words
		tcp[13] = 0x10 // ACK
	case ProtoUDP:
		udp := ip[IPv4HeaderLen:]
		binary.BigEndian.PutUint16(udp[0:], p.Key.SrcPort)
		binary.BigEndian.PutUint16(udp[2:], p.Key.DstPort)
		binary.BigEndian.PutUint16(udp[4:], uint16(UDPHeaderLen+payload))
	}
	return buf
}

// ParseFrame extracts the flow key and wire length from an Ethernet+IPv4
// frame built by BuildFrame (or any uncomplicated real capture).
func ParseFrame(frame []byte) (flow.Packet, error) {
	if len(frame) < EthernetHeaderLen+IPv4HeaderLen {
		return flow.Packet{}, fmt.Errorf("pcapio: frame too short: %d bytes", len(frame))
	}
	if et := binary.BigEndian.Uint16(frame[12:]); et != etherTypeIPv4 {
		return flow.Packet{}, fmt.Errorf("pcapio: unsupported ethertype %#04x", et)
	}
	ip := frame[EthernetHeaderLen:]
	if ip[0]>>4 != 4 {
		return flow.Packet{}, fmt.Errorf("pcapio: not IPv4 (version %d)", ip[0]>>4)
	}
	ihl := int(ip[0]&0x0F) * 4
	if ihl < IPv4HeaderLen || len(ip) < ihl {
		return flow.Packet{}, fmt.Errorf("pcapio: bad IHL %d", ihl)
	}
	var p flow.Packet
	p.Key.Proto = ip[9]
	p.Key.SrcIP = binary.BigEndian.Uint32(ip[12:])
	p.Key.DstIP = binary.BigEndian.Uint32(ip[16:])
	size := len(frame)
	if size > 0xFFFF {
		size = 0xFFFF
	}
	p.Size = uint16(size)

	l4 := ip[ihl:]
	switch p.Key.Proto {
	case ProtoTCP, ProtoUDP:
		if len(l4) < 4 {
			return flow.Packet{}, fmt.Errorf("pcapio: truncated L4 header (%d bytes)", len(l4))
		}
		p.Key.SrcPort = binary.BigEndian.Uint16(l4[0:])
		p.Key.DstPort = binary.BigEndian.Uint16(l4[2:])
	}
	return p, nil
}

// ipv4Checksum computes the standard Internet checksum over a header whose
// checksum field is zeroed.
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	return ^uint16(sum)
}
