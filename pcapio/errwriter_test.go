package pcapio

import (
	"errors"
	"testing"
	"time"

	"repro/flow"
)

// failWriter fails after allowing n bytes through.
type failWriter struct {
	allow int
}

var errSink = errors.New("sink failed")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.allow <= 0 {
		return 0, errSink
	}
	if len(p) > f.allow {
		n := f.allow
		f.allow = 0
		return n, errSink
	}
	f.allow -= len(p)
	return len(p), nil
}

func TestWriterPropagatesErrors(t *testing.T) {
	p := flow.Packet{Key: flow.Key{SrcIP: 1, Proto: ProtoTCP}, Size: 200}

	t.Run("header write fails", func(t *testing.T) {
		w := NewWriter(&failWriter{allow: 0})
		err := w.WritePacket(p, time.Unix(0, 0))
		// bufio defers the error to Flush when the buffer absorbs the bytes.
		if err == nil {
			err = w.Flush()
		}
		if !errors.Is(err, errSink) {
			t.Errorf("expected sink error, got %v", err)
		}
	})

	t.Run("flush fails", func(t *testing.T) {
		w := NewWriter(&failWriter{allow: 10})
		if err := w.WritePacket(p, time.Unix(0, 0)); err != nil {
			return // already surfaced, fine
		}
		if err := w.Flush(); !errors.Is(err, errSink) {
			t.Errorf("expected sink error from Flush, got %v", err)
		}
	})
}
