package pcapio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"repro/flow"
)

func randPacket(rng *rand.Rand) flow.Packet {
	proto := uint8(ProtoTCP)
	if rng.IntN(2) == 0 {
		proto = ProtoUDP
	}
	return flow.Packet{
		Key: flow.Key{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Uint32()),
			DstPort: uint16(rng.Uint32()),
			Proto:   proto,
		},
		Size: uint16(64 + rng.IntN(1400)),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		p := randPacket(rng)
		frame := BuildFrame(p, nil)
		got, err := ParseFrame(frame)
		if err != nil {
			t.Fatalf("ParseFrame: %v", err)
		}
		if got.Key != p.Key {
			t.Fatalf("key round trip: got %+v, want %+v", got.Key, p.Key)
		}
	}
}

func TestFrameRoundTripQuick(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, udp bool, size uint16) bool {
		proto := uint8(ProtoTCP)
		if udp {
			proto = ProtoUDP
		}
		p := flow.Packet{Key: flow.Key{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto}, Size: size}
		got, err := ParseFrame(BuildFrame(p, nil))
		return err == nil && got.Key == p.Key
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameICMPNoPorts(t *testing.T) {
	p := flow.Packet{Key: flow.Key{SrcIP: 1, DstIP: 2, SrcPort: 99, DstPort: 98, Proto: ProtoICMP}, Size: 100}
	got, err := ParseFrame(BuildFrame(p, nil))
	if err != nil {
		t.Fatal(err)
	}
	// ICMP frames carry no L4 ports; they come back zero.
	want := flow.Key{SrcIP: 1, DstIP: 2, Proto: ProtoICMP}
	if got.Key != want {
		t.Errorf("ICMP key = %+v, want %+v", got.Key, want)
	}
}

func TestFrameSizeApproximation(t *testing.T) {
	p := flow.Packet{Key: flow.Key{SrcIP: 1, DstIP: 2, Proto: ProtoTCP}, Size: 1000}
	frame := BuildFrame(p, nil)
	if len(frame) != 1000 {
		t.Errorf("frame length = %d, want 1000", len(frame))
	}
	// Tiny sizes are clamped up to the header minimum.
	p.Size = 10
	frame = BuildFrame(p, nil)
	if len(frame) != EthernetHeaderLen+IPv4HeaderLen+TCPHeaderLen {
		t.Errorf("minimal TCP frame = %d bytes", len(frame))
	}
}

func TestIPv4ChecksumValidates(t *testing.T) {
	p := flow.Packet{Key: flow.Key{SrcIP: 0xC0A80101, DstIP: 0x0A000001, Proto: ProtoTCP}, Size: 64}
	frame := BuildFrame(p, nil)
	ip := frame[EthernetHeaderLen : EthernetHeaderLen+IPv4HeaderLen]
	// Recomputing the checksum over a header including its checksum field
	// must yield zero (ones-complement property).
	var sum uint32
	for i := 0; i+1 < len(ip); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i:]))
	}
	for sum > 0xFFFF {
		sum = (sum >> 16) + (sum & 0xFFFF)
	}
	if ^uint16(sum) != 0 {
		t.Errorf("IPv4 checksum does not validate: residue %#04x", ^uint16(sum))
	}
}

func TestParseFrameErrors(t *testing.T) {
	tests := []struct {
		name  string
		frame []byte
	}{
		{"too short", make([]byte, 10)},
		{"bad ethertype", func() []byte {
			f := BuildFrame(flow.Packet{Key: flow.Key{Proto: ProtoTCP}}, nil)
			f[12], f[13] = 0x86, 0xDD // IPv6
			return f
		}()},
		{"bad version", func() []byte {
			f := BuildFrame(flow.Packet{Key: flow.Key{Proto: ProtoTCP}}, nil)
			f[EthernetHeaderLen] = 0x65
			return f
		}()},
		{"bad ihl", func() []byte {
			f := BuildFrame(flow.Packet{Key: flow.Key{Proto: ProtoTCP}}, nil)
			f[EthernetHeaderLen] = 0x4F // IHL 60 > frame
			return f
		}()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseFrame(tc.frame); err == nil {
				t.Error("ParseFrame accepted malformed frame")
			}
		})
	}
}

func TestPcapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	pkts := make([]flow.Packet, 500)
	for i := range pkts {
		pkts[i] = randPacket(rng)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	base := time.Unix(1700000000, 123000).UTC()
	for i, p := range pkts {
		if err := w.WritePacket(p, base.Add(time.Duration(i)*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	for i, want := range pkts {
		got, ts, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got.Key != want.Key {
			t.Fatalf("packet %d key mismatch", i)
		}
		wantTs := base.Add(time.Duration(i) * time.Millisecond)
		if !ts.Equal(wantTs) {
			t.Fatalf("packet %d ts = %v, want %v", i, ts, wantTs)
		}
	}
	if _, _, err := r.ReadPacket(); !errors.Is(err, io.EOF) {
		t.Errorf("expected io.EOF at end, got %v", err)
	}
}

func TestPcapReadAll(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 50; i++ {
		if err := w.WritePacket(randPacket(rng), time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 50 {
		t.Errorf("ReadAll returned %d packets, want 50", len(got))
	}
}

func TestEmptyPcap(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != globalHeaderLen {
		t.Errorf("empty pcap = %d bytes, want %d", buf.Len(), globalHeaderLen)
	}
	pkts, err := NewReader(&buf).ReadAll()
	if err != nil || len(pkts) != 0 {
		t.Errorf("reading empty pcap: %v, %d packets", err, len(pkts))
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("this is definitely not a pcap file!")))
	if _, _, err := r.ReadPacket(); !errors.Is(err, ErrNotPcap) {
		t.Errorf("expected ErrNotPcap, got %v", err)
	}
}

func TestReaderBigEndianFile(t *testing.T) {
	// Hand-build a big-endian pcap with one UDP packet.
	p := flow.Packet{Key: flow.Key{SrcIP: 7, DstIP: 8, SrcPort: 5, DstPort: 6, Proto: ProtoUDP}, Size: 64}
	frame := BuildFrame(p, nil)
	var buf bytes.Buffer
	var gh [globalHeaderLen]byte
	binary.BigEndian.PutUint32(gh[0:], magicNative)
	binary.BigEndian.PutUint16(gh[4:], versionMaj)
	binary.BigEndian.PutUint16(gh[6:], versionMin)
	binary.BigEndian.PutUint32(gh[16:], DefaultSnapLen)
	binary.BigEndian.PutUint32(gh[20:], LinkTypeEthernet)
	buf.Write(gh[:])
	var rh [recordHeaderLen]byte
	binary.BigEndian.PutUint32(rh[0:], 1000)
	binary.BigEndian.PutUint32(rh[4:], 500)
	binary.BigEndian.PutUint32(rh[8:], uint32(len(frame)))
	binary.BigEndian.PutUint32(rh[12:], uint32(len(frame)))
	buf.Write(rh[:])
	buf.Write(frame)

	got, ts, err := NewReader(&buf).ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != p.Key {
		t.Errorf("key = %+v, want %+v", got.Key, p.Key)
	}
	if ts.Unix() != 1000 {
		t.Errorf("ts = %v, want unix 1000", ts)
	}
}
