// Set: the per-shard form of the tracker. A sharded recorder partitions
// flows across shards, so the natural sidecar is one tracker per shard —
// updated inside the shard's batch worker with no cross-shard contention —
// and a query-side merge. Shard routing keeps keys disjoint across
// trackers, so the k-way sorted merge is a pure interleave and the
// combined summary has the same Space-Saving bounds as one tracker of the
// summed capacity.
package topk

import (
	"fmt"
	"sync"

	"repro/flow"
	"repro/netwide"
	"repro/shard"
)

// Set groups the per-shard trackers attached to one shard.Sharded.
// Its snapshot methods merge the shards' key-sorted views through
// netwide.MergeSumInto into Set-owned scratch, so steady-state queries
// with a reused dst are allocation-free. Set implements adaptive.Sidecar
// (Reset), so a double-buffered manager rotates it with its recorder.
type Set struct {
	trackers []*Tracker

	// mu serializes queries; the scratch below backs their zero-allocation
	// contract. Ingest never takes it — the per-tracker locks do that work.
	mu     sync.Mutex
	bufs   [][]flow.Record
	views  []netwide.View
	merged []flow.Record
}

// NewSet builds shards independent trackers of capacityPerShard entries
// each, without attaching them to a recorder.
func NewSet(shards, capacityPerShard int) (*Set, error) {
	if shards < 1 {
		return nil, fmt.Errorf("topk: need at least one shard, got %d", shards)
	}
	set := &Set{
		trackers: make([]*Tracker, shards),
		bufs:     make([][]flow.Record, shards),
		views:    make([]netwide.View, shards),
	}
	for i := range set.trackers {
		t, err := NewTracker(capacityPerShard)
		if err != nil {
			return nil, err
		}
		set.trackers[i] = t
		set.views[i] = netwide.View{Name: fmt.Sprintf("shard%d", i)}
	}
	return set, nil
}

// AttachSet builds one tracker per shard of s, registers them as s's
// ingest sidecars (updated inside the shard batch workers), and returns
// the set. Call before ingestion begins, per the SetSidecars contract.
func AttachSet(s *shard.Sharded, capacityPerShard int) (*Set, error) {
	set, err := NewSet(s.Shards(), capacityPerShard)
	if err != nil {
		return nil, err
	}
	scs := make([]shard.Sidecar, len(set.trackers))
	for i, t := range set.trackers {
		scs[i] = t
	}
	if err := s.SetSidecars(scs); err != nil {
		return nil, err
	}
	return set, nil
}

// Trackers returns the per-shard trackers (shared, not copied).
func (s *Set) Trackers() []*Tracker { return s.trackers }

// Shards returns the number of per-shard trackers.
func (s *Set) Shards() int { return len(s.trackers) }

// Packets sums the packet weight absorbed across shards since Reset.
func (s *Set) Packets() uint64 {
	var total uint64
	for _, t := range s.trackers {
		total += t.Packets()
	}
	return total
}

// snapshotLocked refreshes the merged cross-shard view. Callers hold s.mu.
func (s *Set) snapshotLocked() {
	for i, t := range s.trackers {
		s.bufs[i] = t.AppendSorted(s.bufs[i][:0])
		s.views[i].Records = s.bufs[i]
	}
	s.merged = netwide.MergeSumInto(s.merged[:0], s.views...)
}

// AppendTopK appends the k largest flows across all shards to dst (count
// descending, key order breaking ties) and returns the extended slice.
func (s *Set) AppendTopK(dst []flow.Record, k int) []flow.Record {
	if k <= 0 {
		return dst
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshotLocked()
	// The merge leaves s.merged key-sorted; reorder the scratch by count
	// for selection. AppendSorted re-sorts it next time.
	sortCountDesc(s.merged)
	if k > len(s.merged) {
		k = len(s.merged)
	}
	return append(dst, s.merged[:k]...)
}

// AppendSorted appends every tracked flow across shards to dst in packed
// key order (the netwide.View order) and returns the extended slice.
func (s *Set) AppendSorted(dst []flow.Record) []flow.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshotLocked()
	return append(dst, s.merged...)
}

// Reset clears every shard tracker (the adaptive.Sidecar surface).
func (s *Set) Reset() {
	for _, t := range s.trackers {
		t.Reset()
	}
}

// MemoryBytes approximates the set footprint.
func (s *Set) MemoryBytes() int {
	total := 0
	for _, t := range s.trackers {
		total += t.MemoryBytes()
	}
	return total
}
