package topk

import (
	"testing"

	"repro/flow"
	"repro/flowmon"
	"repro/shard"
	"repro/trace"
)

// genTrace returns a skewed packet stream and its ground truth.
func genTrace(t testing.TB, flows int, seed uint64) ([]flow.Packet, *flow.Truth) {
	t.Helper()
	tr, err := trace.Generate(trace.CAIDA, flows, seed)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(seed)
	truth := flow.NewTruth(flows)
	truth.ObserveAll(pkts)
	return pkts, truth
}

// TestTrackerExactWhenUncontended: with capacity above the distinct flow
// count Space-Saving degenerates to exact counting, so the top-k must
// equal the sort-based ground truth exactly.
func TestTrackerExactWhenUncontended(t *testing.T) {
	pkts, truth := genTrace(t, 2000, 1)
	tk, err := NewTracker(truth.Flows() + 10)
	if err != nil {
		t.Fatal(err)
	}
	tk.UpdateBatch(pkts)

	if got, want := tk.Len(), truth.Flows(); got != want {
		t.Fatalf("tracked %d flows, want %d", got, want)
	}
	if got, want := tk.Packets(), truth.Packets(); got != want {
		t.Fatalf("tracked %d packets, want %d", got, want)
	}
	const k = 50
	got := tk.AppendTopK(nil, k)
	want := truth.TopK(k)
	if len(got) != len(want) {
		t.Fatalf("top-%d returned %d records, want %d", k, len(got), len(want))
	}
	for i := range got {
		if got[i].Count != want[i].Count {
			t.Errorf("rank %d: count %d, want %d", i, got[i].Count, want[i].Count)
		}
	}
}

// TestTrackerErrorBounds pins the Space-Saving guarantees under heavy
// eviction: every tracked estimate brackets the true count
// (est-err <= true <= est), and every flow larger than N/capacity packets
// is tracked.
func TestTrackerErrorBounds(t *testing.T) {
	pkts, truth := genTrace(t, 5000, 2)
	const capacity = 256
	tk, err := NewTracker(capacity)
	if err != nil {
		t.Fatal(err)
	}
	// Mix the paths: batches plus a tail of single updates.
	half := len(pkts) / 2
	tk.UpdateBatch(pkts[:half])
	for _, p := range pkts[half:] {
		tk.Update(p)
	}

	n := truth.Packets()
	if got := tk.Packets(); got != n {
		t.Fatalf("tracked %d packets, want %d", got, n)
	}
	for _, r := range tk.AppendSorted(nil) {
		est, errBound, ok := tk.Estimate(r.Key)
		if !ok || est != r.Count {
			t.Fatalf("Estimate(%v) = %d,%v disagrees with snapshot count %d", r.Key, est, ok, r.Count)
		}
		true32 := truth.Count(r.Key)
		if est < true32 {
			t.Errorf("flow %v: estimate %d below true count %d", r.Key, est, true32)
		}
		if est-errBound > true32 {
			t.Errorf("flow %v: estimate %d - err %d exceeds true count %d", r.Key, est, errBound, true32)
		}
	}
	// Guarantee: any flow with true count > N/capacity must be tracked.
	threshold := uint32(n/uint64(capacity)) + 1
	for _, key := range truth.HeavyHitters(threshold) {
		if _, _, ok := tk.Estimate(key); !ok {
			t.Errorf("flow %v with count %d >= N/capacity+1 = %d not tracked",
				key, truth.Count(key), threshold)
		}
	}
}

// TestTrackerWeighted: Add(key, w) must equal w repeated unit updates.
func TestTrackerWeighted(t *testing.T) {
	a, _ := NewTracker(64)
	b, _ := NewTracker(64)
	keys := []flow.Key{
		{SrcIP: 1, Proto: 6}, {SrcIP: 2, Proto: 17}, {SrcIP: 3, DstPort: 443, Proto: 6},
	}
	weights := []uint32{100, 7, 23}
	for i, k := range keys {
		a.Add(k, weights[i])
		for j := uint32(0); j < weights[i]; j++ {
			b.Update(flow.Packet{Key: k})
		}
	}
	ga, gb := a.AppendTopK(nil, 10), b.AppendTopK(nil, 10)
	if len(ga) != len(gb) {
		t.Fatalf("weighted %d records vs unit %d", len(ga), len(gb))
	}
	for i := range ga {
		if ga[i] != gb[i] {
			t.Errorf("rank %d: weighted %+v vs unit %+v", i, ga[i], gb[i])
		}
	}
	// AddRecords is the batched weighted form.
	c, _ := NewTracker(64)
	c.AddRecords([]flow.Record{{Key: keys[0], Count: 100}, {Key: keys[1], Count: 7}, {Key: keys[2], Count: 23}})
	gc := c.AppendTopK(nil, 10)
	for i := range ga {
		if ga[i] != gc[i] {
			t.Errorf("rank %d: AddRecords %+v vs Add %+v", i, gc[i], ga[i])
		}
	}
}

func TestTrackerReset(t *testing.T) {
	tk, _ := NewTracker(8)
	tk.Add(flow.Key{SrcIP: 1}, 5)
	tk.Reset()
	if tk.Len() != 0 || tk.Packets() != 0 {
		t.Fatalf("after Reset: len=%d packets=%d", tk.Len(), tk.Packets())
	}
	if got := tk.AppendTopK(nil, 4); len(got) != 0 {
		t.Fatalf("after Reset top-k returned %d records", len(got))
	}
	tk.Add(flow.Key{SrcIP: 2}, 3)
	if got := tk.AppendTopK(nil, 4); len(got) != 1 || got[0].Count != 3 {
		t.Fatalf("tracker unusable after Reset: %v", got)
	}
}

func TestNewTrackerRejectsBadCapacity(t *testing.T) {
	if _, err := NewTracker(0); err == nil {
		t.Error("accepted capacity 0")
	}
	if _, err := NewSet(0, 8); err == nil {
		t.Error("accepted 0 shards")
	}
	if _, err := NewSet(2, 0); err == nil {
		t.Error("accepted per-shard capacity 0")
	}
}

// TestSetAttachedMatchesTruth drives a sharded recorder with the set
// attached as its ingest sidecar and checks the merged cross-shard top-k
// against ground truth, through both the sync and async batch paths.
func TestSetAttachedMatchesTruth(t *testing.T) {
	pkts, truth := genTrace(t, 2000, 3)
	for _, async := range []bool{false, true} {
		name := "sync"
		if async {
			name = "async"
		}
		t.Run(name, func(t *testing.T) {
			cfg := flowmon.Config{MemoryBytes: 1 << 20, Seed: 1}
			var (
				s   *shard.Sharded
				err error
			)
			if async {
				s, err = shard.NewUniformAsync(4, 0, flowmon.AlgorithmHashFlow, cfg)
			} else {
				s, err = shard.NewUniform(4, flowmon.AlgorithmHashFlow, cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			set, err := AttachSet(s, truth.Flows())
			if err != nil {
				t.Fatal(err)
			}

			const batch = 256
			for i := 0; i < len(pkts); i += batch {
				end := min(i+batch, len(pkts))
				s.UpdateBatch(pkts[i:end])
			}
			s.Flush()

			if got, want := set.Packets(), truth.Packets(); got != want {
				t.Fatalf("set absorbed %d packets, want %d", got, want)
			}
			const k = 20
			got := set.AppendTopK(nil, k)
			want := truth.TopK(k)
			if len(got) != len(want) {
				t.Fatalf("top-%d returned %d records, want %d", k, len(got), len(want))
			}
			for i := range got {
				// Capacity covers every flow, so counts are exact and the
				// merged order must match the sort-based ground truth.
				if got[i].Count != want[i].Count {
					t.Errorf("rank %d: count %d, want %d", i, got[i].Count, want[i].Count)
				}
			}

			// The key-sorted view must be sorted and duplicate-free
			// (shard routing keeps keys disjoint).
			sorted := set.AppendSorted(nil)
			for i := 1; i < len(sorted); i++ {
				if flow.CompareKeys(sorted[i-1].Key, sorted[i].Key) >= 0 {
					t.Fatalf("AppendSorted out of order at %d", i)
				}
			}

			// Sharded.Reset must clear the attached sidecars too.
			s.Reset()
			if got := set.AppendTopK(nil, 4); len(got) != 0 {
				t.Fatalf("after recorder Reset the set still reports %d flows", len(got))
			}
		})
	}
}

// TestSetConcurrentQueries hammers the set with snapshot queries while a
// parallel feed is in flight — the live /topk serving pattern. Run under
// -race this pins the locking contract.
func TestSetConcurrentQueries(t *testing.T) {
	pkts, _ := genTrace(t, 1000, 4)
	s, err := shard.NewUniformAsync(4, 0, flowmon.AlgorithmHashFlow,
		flowmon.Config{MemoryBytes: 1 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	set, err := AttachSet(s, 128)
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		var buf []flow.Record
		for i := 0; i < 200; i++ {
			buf = set.AppendTopK(buf[:0], 10)
		}
	}()
	s.FeedParallel(pkts, 4)
	<-done

	if got := set.Packets(); got != uint64(len(pkts)) {
		t.Fatalf("set absorbed %d packets, want %d", got, len(pkts))
	}
}

func BenchmarkTrackerUpdateBatch(b *testing.B) {
	tr, err := trace.Generate(trace.CAIDA, 50000, 1)
	if err != nil {
		b.Fatal(err)
	}
	pkts := tr.Packets(1)
	tk, _ := NewTracker(1024)
	b.ResetTimer()
	b.SetBytes(0)
	for i := 0; i < b.N; i++ {
		const batch = 256
		for j := 0; j < len(pkts); j += batch {
			tk.UpdateBatch(pkts[j:min(j+batch, len(pkts))])
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(pkts)), "ns/pkt")
}

func BenchmarkSetAppendTopK(b *testing.B) {
	pkts, _ := genTrace(b, 20000, 1)
	set, err := NewSet(4, 1024)
	if err != nil {
		b.Fatal(err)
	}
	for i, t := range set.Trackers() {
		for j, p := range pkts {
			if j%4 == i {
				t.Update(p)
			}
		}
	}
	var buf []flow.Record
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = set.AppendTopK(buf[:0], 10)
	}
}

// TestUpdateBatchPreAggregation: the batched path pre-aggregates by key
// before the Space-Saving update; with ample capacity the result must be
// identical to per-packet updates, across batch shapes that stress the
// aggregation table (all-duplicate, all-distinct, oversized, empty).
func TestUpdateBatchPreAggregation(t *testing.T) {
	shapes := map[string][]flow.Packet{}
	var dup, mixed, big []flow.Packet
	for i := 0; i < 300; i++ {
		dup = append(dup, flow.Packet{Key: flow.Key{SrcIP: 7, Proto: 6}})
		mixed = append(mixed, flow.Packet{Key: flow.Key{SrcIP: uint32(i % 13), Proto: 6}})
	}
	for i := 0; i < 3000; i++ { // far past the initial table sizing
		big = append(big, flow.Packet{Key: flow.Key{SrcIP: uint32(i % 500), DstPort: 443, Proto: 6}})
	}
	shapes["duplicates"] = dup
	shapes["mixed"] = mixed
	shapes["oversized"] = big
	shapes["empty"] = nil

	for name, pkts := range shapes {
		t.Run(name, func(t *testing.T) {
			batched, _ := NewTracker(1024)
			single, _ := NewTracker(1024)
			batched.UpdateBatch(pkts)
			// A second batch reuses the cleared aggregation table.
			batched.UpdateBatch(pkts)
			for _, p := range pkts {
				single.Update(p)
				single.Update(p)
			}
			if batched.Packets() != single.Packets() {
				t.Fatalf("packets %d vs %d", batched.Packets(), single.Packets())
			}
			gb, gs := batched.AppendSorted(nil), single.AppendSorted(nil)
			if len(gb) != len(gs) {
				t.Fatalf("tracked %d vs %d flows", len(gb), len(gs))
			}
			for i := range gb {
				if gb[i] != gs[i] {
					t.Errorf("record %d: %+v vs %+v", i, gb[i], gs[i])
				}
			}
		})
	}
}

// TestTrackerIndexChurn stresses the open-addressing index through heavy
// eviction: after tracking far more distinct keys than capacity, every
// tracked entry must still be reachable through Estimate, and the
// backward-shift deletions must not have stranded stale index slots
// (Reset then refill finds a clean table).
func TestTrackerIndexChurn(t *testing.T) {
	const capacity = 128
	tk, _ := NewTracker(capacity)
	key := func(i int) flow.Key {
		return flow.Key{SrcIP: uint32(i * 2654435761), DstPort: uint16(i), Proto: 6}
	}
	for round := 0; round < 2; round++ {
		for i := 0; i < 50*capacity; i++ {
			tk.Add(key(i), uint32(1+i%7))
		}
		if tk.Len() != capacity {
			t.Fatalf("round %d: tracked %d flows, want %d", round, tk.Len(), capacity)
		}
		snap := tk.AppendSorted(nil)
		if len(snap) != capacity {
			t.Fatalf("round %d: snapshot %d flows", round, len(snap))
		}
		for _, r := range snap {
			est, _, ok := tk.Estimate(r.Key)
			if !ok || est != r.Count {
				t.Fatalf("round %d: tracked key %v unreachable via index (ok=%v est=%d count=%d)",
					round, r.Key, ok, est, r.Count)
			}
		}
		tk.Reset()
		if tk.Len() != 0 {
			t.Fatalf("round %d: Reset left %d entries", round, tk.Len())
		}
		if _, _, ok := tk.Estimate(snap[0].Key); ok {
			t.Fatalf("round %d: Reset left the index populated", round)
		}
	}
}
