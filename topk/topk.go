// Package topk maintains the heavy hitters of a packet stream online, as a
// sidecar next to the measurement recorder, so "who are the biggest flows
// right now?" is answered from a small always-current summary instead of
// dumping and filtering a full epoch per query.
//
// Tracker is a Space-Saving summary (Metwally et al., ICDT 2005) laid out
// for the ingest hot path: entries live in one flat array indexed by a
// key map, the minimum is tracked by an intrusive binary min-heap of slot
// indices, and updates are O(log capacity) with no per-update allocation.
// Unlike the paper-faithful heap-of-pointers baseline in
// internal/spacesaving, Tracker supports weighted increments (Add), so the
// collector side can feed it decoded flow records, and exposes
// zero-allocation snapshots (AppendTopK, AppendSorted) for the query path.
//
// Tracker is internally synchronized: ingest workers update it under their
// own cadence while query handlers snapshot it concurrently.
package topk

import (
	"fmt"
	"slices"
	"sync"

	"repro/flow"
)

// EntryBytes approximates the memory footprint of one tracked entry:
// key (13 B) + count (4 B) + error (4 B) + heap index (4 B) + key-map
// overhead (~19 B for key+slot in the index).
const EntryBytes = 2*flow.KeyBytes + 18

// entry is one tracked flow.
type entry struct {
	key   flow.Key
	count uint32
	err   uint32 // overestimation inherited when the slot was recycled
	pos   int32  // position in the heap
}

// Tracker is an online Space-Saving heavy-hitter summary.
type Tracker struct {
	mu       sync.Mutex
	capacity int
	entries  []entry
	heap     []int32 // min-heap over entry counts, holding slot indices
	index    map[flow.Key]int32
	packets  uint64

	// scratch backs the zero-allocation snapshots; it is reused across
	// AppendTopK/AppendSorted calls under mu.
	scratch []flow.Record
}

// NewTracker builds a tracker holding at most capacity flows.
func NewTracker(capacity int) (*Tracker, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("topk: capacity must be positive, got %d", capacity)
	}
	return &Tracker{
		capacity: capacity,
		entries:  make([]entry, 0, capacity),
		heap:     make([]int32, 0, capacity),
		index:    make(map[flow.Key]int32, capacity),
	}, nil
}

// Capacity returns the maximum number of tracked flows.
func (t *Tracker) Capacity() int { return t.capacity }

// Len returns the number of currently tracked flows.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Packets returns the total packet weight absorbed since the last Reset.
func (t *Tracker) Packets() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.packets
}

// Update processes one packet.
func (t *Tracker) Update(p flow.Packet) {
	t.Add(p.Key, 1)
}

// UpdateBatch processes a batch of packets under one lock acquisition, the
// form the shard batch workers feed.
func (t *Tracker) UpdateBatch(pkts []flow.Packet) {
	t.mu.Lock()
	for _, p := range pkts {
		t.add(p.Key, 1)
	}
	t.mu.Unlock()
}

// Add credits w packets to key. This is the weighted form the collector
// side uses to feed decoded flow records (one Add per record).
func (t *Tracker) Add(key flow.Key, w uint32) {
	t.mu.Lock()
	t.add(key, w)
	t.mu.Unlock()
}

// AddRecords credits a batch of flow records under one lock acquisition.
func (t *Tracker) AddRecords(recs []flow.Record) {
	t.mu.Lock()
	for _, r := range recs {
		t.add(r.Key, r.Count)
	}
	t.mu.Unlock()
}

func (t *Tracker) add(key flow.Key, w uint32) {
	t.packets += uint64(w)
	if slot, ok := t.index[key]; ok {
		t.entries[slot].count = satAdd(t.entries[slot].count, w)
		t.siftDown(t.entries[slot].pos)
		return
	}
	if len(t.entries) < t.capacity {
		slot := int32(len(t.entries))
		t.entries = append(t.entries, entry{key: key, count: w, pos: slot})
		t.heap = append(t.heap, slot)
		t.index[key] = slot
		t.siftUp(int32(len(t.heap) - 1))
		return
	}
	// Full: recycle the minimum entry, inheriting its count as error —
	// the Space-Saving replacement rule.
	slot := t.heap[0]
	e := &t.entries[slot]
	delete(t.index, e.key)
	e.key = key
	e.err = e.count
	e.count = satAdd(e.count, w)
	t.index[key] = slot
	t.siftDown(0)
}

// satAdd adds saturating at the uint32 ceiling, matching netwide's
// combineSum semantics.
func satAdd(a, b uint32) uint32 {
	s := a + b
	if s < a {
		s = ^uint32(0)
	}
	return s
}

// siftDown restores the heap below position i after a count increase.
func (t *Tracker) siftDown(i int32) {
	n := int32(len(t.heap))
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && t.entries[t.heap[l]].count < t.entries[t.heap[min]].count {
			min = l
		}
		if r < n && t.entries[t.heap[r]].count < t.entries[t.heap[min]].count {
			min = r
		}
		if min == i {
			return
		}
		t.swap(i, min)
		i = min
	}
}

// siftUp restores the heap above position i after an insertion.
func (t *Tracker) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.entries[t.heap[parent]].count <= t.entries[t.heap[i]].count {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *Tracker) swap(i, j int32) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.entries[t.heap[i]].pos = i
	t.entries[t.heap[j]].pos = j
}

// Estimate returns the tracked count and inherited overestimation error
// for key. ok is false when the flow is not tracked. Space-Saving
// guarantees est-err <= true count <= est for tracked flows.
func (t *Tracker) Estimate(key flow.Key) (est, err uint32, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	slot, ok := t.index[key]
	if !ok {
		return 0, 0, false
	}
	return t.entries[slot].count, t.entries[slot].err, true
}

// AppendTopK appends the k largest tracked flows to dst (count descending,
// key order breaking ties) and returns the extended slice. The snapshot is
// taken under the tracker lock into tracker-owned scratch, so steady-state
// calls with a reused dst are allocation-free.
func (t *Tracker) AppendTopK(dst []flow.Record, k int) []flow.Record {
	if k <= 0 {
		return dst
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fillScratch()
	slices.SortFunc(t.scratch, compareCountDesc)
	if k > len(t.scratch) {
		k = len(t.scratch)
	}
	return append(dst, t.scratch[:k]...)
}

// AppendSorted appends every tracked flow to dst in packed-key order — the
// netwide.View order the Into merges consume — and returns the extended
// slice. Allocation-free with a reused dst.
func (t *Tracker) AppendSorted(dst []flow.Record) []flow.Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fillScratch()
	slices.SortFunc(t.scratch, compareKeyAsc)
	return append(dst, t.scratch...)
}

// fillScratch snapshots the entries into t.scratch. Callers hold mu.
func (t *Tracker) fillScratch() {
	t.scratch = slices.Grow(t.scratch[:0], len(t.entries))
	for i := range t.entries {
		t.scratch = append(t.scratch, flow.Record{Key: t.entries[i].key, Count: t.entries[i].count})
	}
}

// compareCountDesc orders records by count descending, packed key order
// breaking ties (the reporting order of netwide merges and apps.TopTalkers).
func compareCountDesc(a, b flow.Record) int {
	if a.Count != b.Count {
		if a.Count > b.Count {
			return -1
		}
		return 1
	}
	return flow.CompareKeys(a.Key, b.Key)
}

// compareKeyAsc orders records by packed key.
func compareKeyAsc(a, b flow.Record) int {
	return flow.CompareKeys(a.Key, b.Key)
}

// sortCountDesc orders records by count descending with key tiebreak.
func sortCountDesc(recs []flow.Record) {
	slices.SortFunc(recs, compareCountDesc)
}

// Reset clears the tracker for the next epoch. The capacity and the
// allocated tables are kept.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = t.entries[:0]
	t.heap = t.heap[:0]
	clear(t.index)
	t.packets = 0
}

// MemoryBytes approximates the tracker footprint.
func (t *Tracker) MemoryBytes() int {
	return t.capacity * EntryBytes
}
