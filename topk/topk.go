// Package topk maintains the heavy hitters of a packet stream online, as a
// sidecar next to the measurement recorder, so "who are the biggest flows
// right now?" is answered from a small always-current summary instead of
// dumping and filtering a full epoch per query.
//
// Tracker is a Space-Saving summary (Metwally et al., ICDT 2005) laid out
// for the ingest hot path: entries live in one flat array indexed by a
// key map, the minimum is tracked by an intrusive binary min-heap of slot
// indices, and updates are O(log capacity) with no per-update allocation.
// Unlike the paper-faithful heap-of-pointers baseline in
// internal/spacesaving, Tracker supports weighted increments (Add), so the
// collector side can feed it decoded flow records, and exposes
// zero-allocation snapshots (AppendTopK, AppendSorted) for the query path.
//
// Tracker is internally synchronized: ingest workers update it under their
// own cadence while query handlers snapshot it concurrently.
package topk

import (
	"fmt"
	"math/bits"
	"slices"
	"sync"

	"repro/flow"
	"repro/internal/hashing"
)

// EntryBytes approximates the memory footprint of one tracked entry:
// the entry struct (key 13 B padded + digest 8 B + count 4 B + error
// 4 B + heap position 4 B ≈ 40 B), its heap node (8 B), and its share
// of the open-addressing index (2 slots of 8 B at <=50% load).
const EntryBytes = 64

// entry is one tracked flow.
type entry struct {
	key   flow.Key
	hash  uint64 // the key's digest, kept so eviction never re-hashes
	count uint32
	err   uint32 // overestimation inherited when the slot was recycled
	pos   int32  // position in the heap
}

// heapNode is one min-heap element. The count is duplicated out of the
// entry so sift comparisons stay inside this compact (8 B/element,
// L1-resident) array instead of chasing random entry loads; the entry's
// count remains authoritative and the node copy is refreshed on every
// change.
type heapNode struct {
	count uint32
	slot  int32
}

// Tracker is an online Space-Saving heavy-hitter summary.
type Tracker struct {
	mu       sync.Mutex
	capacity int
	entries  []entry
	heap     []heapNode // min-heap over entry counts
	packets  uint64

	// idx is the digest-indexed key index: an open-addressing table
	// (linear probing, backward-shift deletion, <=50% load) replacing
	// the seed's Go map — the per-packet lookup is one cheap KeyHash
	// plus a compact probe chain instead of the runtime map machinery,
	// which was most of the sidecar's ~100ns/pkt cost. Each slot packs
	// the key's 32-bit hash fingerprint (high word) with slot+1 (low
	// word, 0 = empty), so probe mismatches and the eviction-time
	// backward shift resolve inside this one array without loading
	// entries.
	idx []uint64

	// scratch backs the zero-allocation snapshots; it is reused across
	// AppendTopK/AppendSorted calls under mu.
	scratch []flow.Record

	// agg is the per-batch pre-aggregation table: a small open-addressing
	// map (same digest as idx, so each packet is hashed exactly once)
	// that folds a batch down to one weighted count per distinct key
	// before the Space-Saving update, so the summary pays one index
	// lookup and heap fix per distinct key per batch instead of per
	// packet. slots lists the occupied positions for O(distinct)
	// clearing. Both are reused across batches under mu.
	agg   []aggEntry
	slots []int32
}

// aggEntry is one pre-aggregated (key, weight) of the batch in flight,
// carrying the key's digest so the Space-Saving update reuses it.
type aggEntry struct {
	key   flow.Key
	count uint32
	hash  uint64
}

// tableSeed salts the tracker's digest independently of the shard router
// and the recorder hash families. The index and the pre-aggregation
// table deliberately share it: one KeyHash per packet serves both.
const tableSeed = 0x70b1

// NewTracker builds a tracker holding at most capacity flows.
func NewTracker(capacity int) (*Tracker, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("topk: capacity must be positive, got %d", capacity)
	}
	return &Tracker{
		capacity: capacity,
		entries:  make([]entry, 0, capacity),
		heap:     make([]heapNode, 0, capacity),
		idx:      make([]uint64, 1<<bits.Len(uint(2*capacity-1))),
	}, nil
}

// Capacity returns the maximum number of tracked flows.
func (t *Tracker) Capacity() int { return t.capacity }

// Len returns the number of currently tracked flows.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Packets returns the total packet weight absorbed since the last Reset.
func (t *Tracker) Packets() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.packets
}

// Update processes one packet.
func (t *Tracker) Update(p flow.Packet) {
	t.Add(p.Key, 1)
}

// UpdateBatch processes a batch of packets under one lock acquisition,
// the form the shard batch workers feed. The batch is pre-aggregated by
// key first, so the Space-Saving structure sees one weighted add per
// distinct key — on heavy-tailed traffic most of a batch collapses into
// a few counters and the per-packet map-lookup + heap-fix cost drops
// with it. The tracked summary is equivalent to per-packet updates up to
// arrival order within the batch (the usual Space-Saving order
// sensitivity); totals and error bounds are identical.
func (t *Tracker) UpdateBatch(pkts []flow.Packet) {
	if len(pkts) == 0 {
		return
	}
	t.mu.Lock()
	t.sizeAgg(len(pkts))
	mask := uint64(len(t.agg) - 1)
	for _, p := range pkts {
		w1, w2 := p.Key.Words()
		h := hashing.KeyHash(tableSeed, w1, w2)
		i := h & mask
		for {
			e := &t.agg[i]
			if e.count == 0 {
				*e = aggEntry{key: p.Key, count: 1, hash: h}
				t.slots = append(t.slots, int32(i))
				break
			}
			if e.key == p.Key {
				e.count++
				break
			}
			i = (i + 1) & mask
		}
	}
	for _, s := range t.slots {
		e := t.agg[s]
		t.agg[s] = aggEntry{}
		t.addHashed(e.key, e.count, e.hash)
	}
	t.slots = t.slots[:0]
	t.mu.Unlock()
}

// sizeAgg ensures the pre-aggregation table holds n keys at <= 50% load.
// The table only grows (batch sizes are stable in practice) and grown
// storage is reused, so steady-state batches do not allocate. Callers
// hold mu and must leave the table cleared.
func (t *Tracker) sizeAgg(n int) {
	want := 1 << bits.Len(uint(2*n-1))
	if want > len(t.agg) {
		t.agg = make([]aggEntry, want)
		t.slots = slices.Grow(t.slots[:0], want/2)
	}
}

// Add credits w packets to key. This is the weighted form the collector
// side uses to feed decoded flow records (one Add per record).
func (t *Tracker) Add(key flow.Key, w uint32) {
	t.mu.Lock()
	t.add(key, w)
	t.mu.Unlock()
}

// AddRecords credits a batch of flow records under one lock acquisition.
func (t *Tracker) AddRecords(recs []flow.Record) {
	t.mu.Lock()
	for _, r := range recs {
		t.add(r.Key, r.Count)
	}
	t.mu.Unlock()
}

func (t *Tracker) add(key flow.Key, w uint32) {
	// The hash is written out rather than shared through digest(): the
	// wrapped form exceeds the inlining budget and the call shows up at
	// per-packet rates.
	w1, w2 := key.Words()
	t.addHashed(key, w, hashing.KeyHash(tableSeed, w1, w2))
}

// digest is the tracker's canonical key hash, shared by the index and
// the pre-aggregation table (cold paths; hot paths inline it).
func digest(key flow.Key) uint64 {
	w1, w2 := key.Words()
	return hashing.KeyHash(tableSeed, w1, w2)
}

// addHashed is add with the key's digest already computed (the batched
// path hashes each packet once and reuses it here).
func (t *Tracker) addHashed(key flow.Key, w uint32, h uint64) {
	t.packets += uint64(w)
	if slot, ok := t.lookup(key, h); ok {
		e := &t.entries[slot]
		e.count = satAdd(e.count, w)
		t.heap[e.pos].count = e.count
		t.siftDown(e.pos)
		return
	}
	if len(t.entries) < t.capacity {
		slot := int32(len(t.entries))
		t.entries = append(t.entries, entry{key: key, hash: h, count: w, pos: slot})
		t.heap = append(t.heap, heapNode{count: w, slot: slot})
		t.insertIdx(h, slot)
		t.siftUp(int32(len(t.heap) - 1))
		return
	}
	// Full: recycle the minimum entry, inheriting its count as error —
	// the Space-Saving replacement rule.
	slot := t.heap[0].slot
	e := &t.entries[slot]
	t.removeIdx(e.hash, slot)
	e.key = key
	e.hash = h
	e.err = e.count
	e.count = satAdd(e.count, w)
	t.insertIdx(h, slot)
	t.heap[0].count = e.count
	t.siftDown(0)
}

// packIdx builds an index slot value: the digest's low word as the
// fingerprint, slot+1 as the payload. The fingerprint's low bits are the
// home position, so a slot value alone is enough to re-derive where its
// probe chain starts.
func packIdx(h uint64, slot int32) uint64 {
	return uint64(uint32(h))<<32 | uint64(uint32(slot+1))
}

// lookup finds the slot tracking key, probing from its digest's home
// position. Entries are only dereferenced on fingerprint matches.
func (t *Tracker) lookup(key flow.Key, h uint64) (int32, bool) {
	mask := uint64(len(t.idx) - 1)
	fp := uint32(h)
	for i := h & mask; ; i = (i + 1) & mask {
		v := t.idx[i]
		if v == 0 {
			return 0, false
		}
		if uint32(v>>32) == fp {
			s := int32(uint32(v)) - 1
			if t.entries[s].key == key {
				return s, true
			}
		}
	}
}

// insertIdx records that slot tracks a key with digest h. The key must
// not already be indexed.
func (t *Tracker) insertIdx(h uint64, slot int32) {
	mask := uint64(len(t.idx) - 1)
	i := h & mask
	for t.idx[i] != 0 {
		i = (i + 1) & mask
	}
	t.idx[i] = packIdx(h, slot)
}

// removeIdx unindexes the key of the given slot (digest h) using
// backward-shift deletion, which keeps every surviving key's probe chain
// intact without tombstones — the index stays clean no matter how many
// evictions the Space-Saving recycle rule performs. The shift scan runs
// entirely inside the index array: each slot value carries its own home
// position in its fingerprint bits.
func (t *Tracker) removeIdx(h uint64, slot int32) {
	mask := uint64(len(t.idx) - 1)
	want := uint32(slot + 1)
	i := h & mask
	for {
		v := t.idx[i]
		if v == 0 {
			return // not indexed; nothing to do
		}
		if uint32(v) == want {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		t.idx[i] = 0
		for {
			j = (j + 1) & mask
			v := t.idx[j]
			if v == 0 {
				return
			}
			// The entry at j may fill the hole at i only if its home
			// position is cyclically outside (i, j] — otherwise moving it
			// would break its own probe chain.
			home := (v >> 32) & mask
			if (j-home)&mask >= (j-i)&mask {
				t.idx[i] = v
				i = j
				break
			}
		}
	}
}

// satAdd adds saturating at the uint32 ceiling, matching netwide's
// combineSum semantics.
func satAdd(a, b uint32) uint32 {
	s := a + b
	if s < a {
		s = ^uint32(0)
	}
	return s
}

// The heap is 4-ary: half the depth of a binary heap, and one node's
// children share a cache line of the compact node array, so the
// per-update sift touches fewer lines — the heap fix is the other half
// of the sidecar's per-packet cost next to the key lookup.
const heapArity = 4

// siftDown restores the heap below position i after a count increase.
// Comparisons touch only the compact heap array.
func (t *Tracker) siftDown(i int32) {
	n := int32(len(t.heap))
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		last := first + heapArity
		if last > n {
			last = n
		}
		min := i
		for c := first; c < last; c++ {
			if t.heap[c].count < t.heap[min].count {
				min = c
			}
		}
		if min == i {
			return
		}
		t.swap(i, min)
		i = min
	}
}

// siftUp restores the heap above position i after an insertion.
func (t *Tracker) siftUp(i int32) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if t.heap[parent].count <= t.heap[i].count {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *Tracker) swap(i, j int32) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.entries[t.heap[i].slot].pos = i
	t.entries[t.heap[j].slot].pos = j
}

// Estimate returns the tracked count and inherited overestimation error
// for key. ok is false when the flow is not tracked. Space-Saving
// guarantees est-err <= true count <= est for tracked flows.
func (t *Tracker) Estimate(key flow.Key) (est, err uint32, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	slot, ok := t.lookup(key, digest(key))
	if !ok {
		return 0, 0, false
	}
	return t.entries[slot].count, t.entries[slot].err, true
}

// AppendTopK appends the k largest tracked flows to dst (count descending,
// key order breaking ties) and returns the extended slice. The snapshot is
// taken under the tracker lock into tracker-owned scratch, so steady-state
// calls with a reused dst are allocation-free.
func (t *Tracker) AppendTopK(dst []flow.Record, k int) []flow.Record {
	if k <= 0 {
		return dst
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fillScratch()
	slices.SortFunc(t.scratch, compareCountDesc)
	if k > len(t.scratch) {
		k = len(t.scratch)
	}
	return append(dst, t.scratch[:k]...)
}

// AppendSorted appends every tracked flow to dst in packed-key order — the
// netwide.View order the Into merges consume — and returns the extended
// slice. Allocation-free with a reused dst.
func (t *Tracker) AppendSorted(dst []flow.Record) []flow.Record {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.fillScratch()
	slices.SortFunc(t.scratch, compareKeyAsc)
	return append(dst, t.scratch...)
}

// fillScratch snapshots the entries into t.scratch. Callers hold mu.
func (t *Tracker) fillScratch() {
	t.scratch = slices.Grow(t.scratch[:0], len(t.entries))
	for i := range t.entries {
		t.scratch = append(t.scratch, flow.Record{Key: t.entries[i].key, Count: t.entries[i].count})
	}
}

// compareCountDesc orders records by count descending, packed key order
// breaking ties (the reporting order of netwide merges and apps.TopTalkers).
func compareCountDesc(a, b flow.Record) int {
	if a.Count != b.Count {
		if a.Count > b.Count {
			return -1
		}
		return 1
	}
	return flow.CompareKeys(a.Key, b.Key)
}

// compareKeyAsc orders records by packed key.
func compareKeyAsc(a, b flow.Record) int {
	return flow.CompareKeys(a.Key, b.Key)
}

// sortCountDesc orders records by count descending with key tiebreak.
func sortCountDesc(recs []flow.Record) {
	slices.SortFunc(recs, compareCountDesc)
}

// Reset clears the tracker for the next epoch. The capacity and the
// allocated tables are kept.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.entries = t.entries[:0]
	t.heap = t.heap[:0]
	clear(t.idx)
	t.packets = 0
}

// MemoryBytes approximates the tracker footprint.
func (t *Tracker) MemoryBytes() int {
	return t.capacity * EntryBytes
}
