// Package repro's root benchmark suite regenerates a reduced-scale version
// of every table and figure in the paper's evaluation (full scale is
// cmd/flowbench). Figure-level metrics are attached to the benchmark output
// via b.ReportMetric, so `go test -bench=.` doubles as a results summary.
package repro

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"testing"
	"time"

	"repro/adaptive"
	"repro/collector"
	"repro/experiments"
	"repro/flow"
	"repro/flowmon"
	"repro/metrics"
	"repro/model"
	"repro/recordstore"
	"repro/shard"
	"repro/switchsim"
	"repro/trace"
)

// Reduced-scale defaults: ~10x smaller than the paper so the whole bench
// suite completes in minutes.
const (
	benchMemory = 128 << 10
	benchFlows  = 25000
	benchSeed   = 1
)

func benchTrace(b *testing.B, p trace.Profile, flows int) ([]flow.Packet, *flow.Truth) {
	b.Helper()
	tr, err := trace.Generate(p, flows, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return tr.Packets(benchSeed), tr.Truth()
}

// BenchmarkUpdate measures raw per-packet update cost of each algorithm —
// the real-throughput half of Fig. 11a.
func BenchmarkUpdate(b *testing.B) {
	pkts, _ := benchTrace(b, trace.CAIDA, benchFlows)
	for _, a := range flowmon.All() {
		b.Run(a.String(), func(b *testing.B) {
			rec, err := flowmon.New(a, flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Update(pkts[i%len(pkts)])
			}
		})
	}
}

// shardCounts is the sweep shared by the sharded ingestion benchmarks, so
// the sequential/batched/async speedup is directly comparable per shard
// count in the perf trajectory.
var shardCounts = []int{1, 4, 8}

// shardBatchSize is the ingestion batch size of the batched benchmarks.
const shardBatchSize = 256

// BenchmarkShardedSequential measures the pre-batching hot path: one mutex
// acquisition per packet. The baseline the batched pipeline is judged
// against.
func BenchmarkShardedSequential(b *testing.B) {
	pkts, _ := benchTrace(b, trace.CAIDA, benchFlows)
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			s, err := shard.NewUniform(n, flowmon.AlgorithmHashFlow,
				flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Update(pkts[i%len(pkts)])
			}
		})
	}
}

// BenchmarkShardedBatch measures the batched pipeline: route a batch into
// per-shard staging buffers, then one lock acquisition per shard per batch.
func BenchmarkShardedBatch(b *testing.B) {
	pkts, _ := benchTrace(b, trace.CAIDA, benchFlows)
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			s, err := shard.NewUniform(n, flowmon.AlgorithmHashFlow,
				flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			off := 0
			for i := 0; i < b.N; i += shardBatchSize {
				m := shardBatchSize
				if b.N-i < m {
					m = b.N - i
				}
				if off+m > len(pkts) {
					off = 0
				}
				s.UpdateBatch(pkts[off : off+m])
				off += m
			}
		})
	}
}

// BenchmarkShardedAsync measures the asynchronous pipeline: the feeder only
// routes and enqueues; per-shard workers record in parallel. Flush closes
// the timing window so queued work is charged to the benchmark.
func BenchmarkShardedAsync(b *testing.B) {
	pkts, _ := benchTrace(b, trace.CAIDA, benchFlows)
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			s, err := shard.NewUniformAsync(n, 0, flowmon.AlgorithmHashFlow,
				flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(s.Close)
			b.ReportAllocs()
			b.ResetTimer()
			off := 0
			for i := 0; i < b.N; i += shardBatchSize {
				m := shardBatchSize
				if b.N-i < m {
					m = b.N - i
				}
				if off+m > len(pkts) {
					off = 0
				}
				s.UpdateBatch(pkts[off : off+m])
				off += m
			}
			s.Flush()
		})
	}
}

// BenchmarkIngestPipeline measures the full end-to-end path the collector
// exposes: Ingestor batching feeding a sharded recorder.
func BenchmarkIngestPipeline(b *testing.B) {
	pkts, _ := benchTrace(b, trace.CAIDA, benchFlows)
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			s, err := shard.NewUniform(n, flowmon.AlgorithmHashFlow,
				flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			g, err := collector.NewIngestor(s, shardBatchSize)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g.Add(pkts[i%len(pkts)])
			}
			g.Flush()
		})
	}
}

// BenchmarkAppendRecords measures steady-state epoch record extraction —
// AppendRecords into a reused buffer — for every paper algorithm and for
// the sharded recorder across shard counts (parallel per-shard drain plus
// deterministic key sort).
func BenchmarkAppendRecords(b *testing.B) {
	pkts, _ := benchTrace(b, trace.CAIDA, benchFlows)
	bench := func(b *testing.B, rec flowmon.Recorder) {
		b.Helper()
		if err := collector.Replay(rec, pkts, shardBatchSize); err != nil {
			b.Fatal(err)
		}
		var buf []flow.Record
		buf = rec.AppendRecords(buf[:0])
		b.ReportMetric(float64(len(buf)), "records")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = rec.AppendRecords(buf[:0])
		}
	}
	for _, a := range flowmon.All() {
		b.Run(a.String(), func(b *testing.B) {
			rec, err := flowmon.New(a, flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			bench(b, rec)
		})
	}
	for _, n := range shardCounts {
		b.Run(fmt.Sprintf("Sharded/shards=%d", n), func(b *testing.B) {
			s, err := shard.NewUniform(n, flowmon.AlgorithmHashFlow,
				flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(s.Close)
			bench(b, s)
		})
	}
}

// BenchmarkEpochRotation measures continuous ingestion under adaptive
// epoch control with the flush path (extract + recordstore encode) either
// inline on the hot path (single) or on the double-buffered background
// worker (double). The metric is per-packet cost including rotations.
func BenchmarkEpochRotation(b *testing.B) {
	pkts, _ := benchTrace(b, trace.CAIDA, benchFlows)
	for _, mode := range []string{"single", "double"} {
		b.Run(mode, func(b *testing.B) {
			store := recordstore.NewWriter(io.Discard)
			var werr error
			flushFn := func(_ int, recs []flow.Record) {
				if err := store.WriteEpoch(time.Unix(0, 0), recs); err != nil {
					werr = err
				}
			}
			active, err := flowmon.NewHashFlow(flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			acfg := adaptive.Config{Capacity: active.MainCells(), MaxEpochPackets: 8192}
			var m *adaptive.Manager
			if mode == "single" {
				m, err = adaptive.NewManager(active, acfg, flushFn)
			} else {
				standby, err2 := flowmon.NewHashFlow(flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
				if err2 != nil {
					b.Fatal(err2)
				}
				m, err = adaptive.NewDoubleBuffered(active, standby, acfg, flushFn)
			}
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Update(pkts[i%len(pkts)])
			}
			b.StopTimer()
			m.Flush()
			m.Close()
			if werr != nil {
				b.Fatal(werr)
			}
		})
	}
}

// seedEncodeEpoch reproduces the seed's WriteEpoch hot path — reflection
// sort.Slice over flow.Records plus the varint delta encode — as the
// baseline BenchmarkRecordstoreWrite compares the concrete-type radix
// writer against.
func seedEncodeEpoch(bw *bufio.Writer, scratch, records []flow.Record, buf []byte) ([]flow.Record, []byte, error) {
	scratch = append(scratch[:0], records...)
	sort.Slice(scratch, func(i, j int) bool {
		a1, a2 := scratch[i].Key.Words()
		b1, b2 := scratch[j].Key.Words()
		if a1 != b1 {
			return a1 < b1
		}
		return a2 < b2
	})
	buf = buf[:0]
	buf = binary.AppendUvarint(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(len(scratch)))
	var prev1, prev2 uint64
	for _, r := range scratch {
		w1, w2 := r.Key.Words()
		buf = binary.AppendUvarint(buf, w1-prev1)
		buf = binary.AppendUvarint(buf, w2^prev2)
		buf = binary.AppendUvarint(buf, uint64(r.Count))
		prev1, prev2 = w1, w2
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(buf)))
	if _, err := bw.Write(lenBuf[:n]); err != nil {
		return scratch, buf, err
	}
	_, err := bw.Write(buf)
	return scratch, buf, err
}

// BenchmarkRecordstoreWrite compares epoch encoding implementations at
// several epoch sizes: the seed's reflection-based sort.Slice encoder
// against the concrete-type radix/typed-sort Writer.
func BenchmarkRecordstoreWrite(b *testing.B) {
	pkts, truth := benchTrace(b, trace.CAIDA, benchFlows)
	_ = pkts
	all := truth.Records()
	for _, n := range []int{100, 1000, 10000, len(all)} {
		if n > len(all) {
			continue
		}
		records := all[:n]
		b.Run(fmt.Sprintf("impl=seed-sortslice/records=%d", n), func(b *testing.B) {
			bw := bufio.NewWriter(io.Discard)
			var scratch []flow.Record
			var buf []byte
			var err error
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				scratch, buf, err = seedEncodeEpoch(bw, scratch, records, buf)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("impl=radix/records=%d", n), func(b *testing.B) {
			w := recordstore.NewWriter(io.Discard)
			ts := time.Unix(0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.WriteEpoch(ts, records); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Traces regenerates Table I's statistics.
func BenchmarkTable1Traces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Table1Rows(benchFlows, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("expected 4 traces, got %d", len(rows))
		}
	}
}

// BenchmarkFig2Utilization runs the model-vs-simulation comparison behind
// Fig. 2a-2c and reports the worst model deviation at m/n >= 2 (the regime
// where the paper calls the model nearly perfect).
func BenchmarkFig2Utilization(b *testing.B) {
	const n = 20000
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, load := range []float64{2, 3, 4} {
			for d := 1; d <= 10; d++ {
				dev := model.MultiHashUtilization(load, d) -
					model.SimulateMultiHash(n, int(load*n), d, benchSeed)
				if dev < 0 {
					dev = -dev
				}
				if dev > worst {
					worst = dev
				}
			}
		}
	}
	b.ReportMetric(worst, "worst_model_dev")
}

// BenchmarkFig3CDF regenerates the flow-size CDFs.
func BenchmarkFig3CDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Fig3Rows(benchFlows, benchSeed, 100)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("empty CDF")
		}
	}
}

// BenchmarkFig4Depth regenerates Fig. 4 (ARE vs main-table depth). The
// paper runs 50K flows against a ~55K-cell table (load ~0.9), where depth
// matters most; we scale both down 8x. The paper's shape is a ~3x ARE
// reduction from d=1 to d=3.
func BenchmarkFig4Depth(b *testing.B) {
	// 128 KB → 6898 main cells; 6500 flows ≈ load 0.94.
	pkts, truth := benchTrace(b, trace.Campus, 6500)
	var are1, are3 float64
	for i := 0; i < b.N; i++ {
		for _, d := range []int{1, 3} {
			rec, err := flowmon.New(flowmon.AlgorithmHashFlow,
				flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed, Depth: d})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pkts {
				rec.Update(p)
			}
			are := metrics.SizeARE(rec.EstimateSize, truth)
			if d == 1 {
				are1 = are
			} else {
				are3 = are
			}
		}
	}
	b.ReportMetric(are1, "ARE_d1")
	b.ReportMetric(are3, "ARE_d3")
}

// BenchmarkFig5MainTable regenerates Fig. 5's multi-hash vs pipelined
// ablation and reports the FSC of both organizations at load ~1.1, the
// regime where Fig. 5 shows the pipelined layout's ~3% FSC edge (under
// saturation the two converge).
func BenchmarkFig5MainTable(b *testing.B) {
	pkts, truth := benchTrace(b, trace.Campus, 7600)
	var fscMulti, fscPipe float64
	for i := 0; i < b.N; i++ {
		for _, multihash := range []bool{true, false} {
			rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{
				MemoryBytes: benchMemory, Seed: benchSeed, Multihash: multihash, Alpha: 0.7,
			})
			if err != nil {
				b.Fatal(err)
			}
			for _, p := range pkts {
				rec.Update(p)
			}
			if multihash {
				fscMulti = metrics.FSC(rec.Records(), truth)
			} else {
				fscPipe = metrics.FSC(rec.Records(), truth)
			}
		}
	}
	b.ReportMetric(fscMulti, "FSC_multihash")
	b.ReportMetric(fscPipe, "FSC_pipelined")
}

// benchAppMetric shares the Figs. 6-8 harness: one trace, all algorithms,
// reporting the selected metric per algorithm.
func benchAppMetric(b *testing.B, metric string) {
	ms := []experiments.AppMetrics{}
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiments.AppPerformance(trace.Campus, []int{benchFlows}, benchMemory, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range ms {
		switch metric {
		case "FSC":
			b.ReportMetric(m.FSC, "FSC_"+m.Algorithm)
		case "RE":
			b.ReportMetric(m.CardinalityRE, "RE_"+m.Algorithm)
		case "ARE":
			b.ReportMetric(m.SizeARE, "ARE_"+m.Algorithm)
		}
	}
}

// BenchmarkFig6FSC regenerates the flow record report experiment.
func BenchmarkFig6FSC(b *testing.B) { benchAppMetric(b, "FSC") }

// BenchmarkFig7Cardinality regenerates the cardinality estimation experiment.
func BenchmarkFig7Cardinality(b *testing.B) { benchAppMetric(b, "RE") }

// BenchmarkFig8SizeARE regenerates the flow size estimation experiment.
func BenchmarkFig8SizeARE(b *testing.B) { benchAppMetric(b, "ARE") }

// BenchmarkFig9HeavyHitterF1 regenerates the heavy-hitter detection sweep
// and reports each algorithm's F1 at a mid-range threshold.
func BenchmarkFig9HeavyHitterF1(b *testing.B) {
	var ms []experiments.HHMetrics
	for i := 0; i < b.N; i++ {
		var err error
		ms, err = experiments.HeavyHitterSweep(trace.Campus, benchFlows, benchMemory,
			[]uint32{50}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range ms {
		b.ReportMetric(m.F1, "F1_"+m.Algorithm)
		b.ReportMetric(m.SizeARE, "hhARE_"+m.Algorithm)
	}
}

// BenchmarkFig11Throughput regenerates the switch cost experiment and
// reports modeled Kpps per algorithm.
func BenchmarkFig11Throughput(b *testing.B) {
	pkts, _ := benchTrace(b, trace.CAIDA, benchFlows)
	cost := switchsim.DefaultCostModel()
	for _, a := range flowmon.All() {
		b.Run(a.String(), func(b *testing.B) {
			var res switchsim.Result
			for i := 0; i < b.N; i++ {
				rec, err := flowmon.New(a, flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
				if err != nil {
					b.Fatal(err)
				}
				res, err = switchsim.Run(rec, pkts, cost)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.ModeledKpps, "modeled_Kpps")
			b.ReportMetric(res.Ops.HashesPerPacket(), "hashes/pkt")
			b.ReportMetric(res.Ops.MemAccessesPerPacket(), "mem/pkt")
		})
	}
}

// BenchmarkAblationDigestWidth varies the ancillary-table digest width.
// Narrower digests save no memory in this layout (cells stay 2 bytes) but
// raise the digest-collision rate, inflating promoted counts.
func BenchmarkAblationDigestWidth(b *testing.B) {
	pkts, truth := benchTrace(b, trace.Campus, benchFlows)
	for _, bits := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			var are float64
			for i := 0; i < b.N; i++ {
				rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{
					MemoryBytes: benchMemory, Seed: benchSeed, DigestBits: bits,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pkts {
					rec.Update(p)
				}
				are = metrics.SizeARE(rec.EstimateSize, truth)
			}
			b.ReportMetric(are, "ARE")
		})
	}
}

// BenchmarkExtensionComparators runs the two beyond-paper comparators
// (sampled NetFlow, bucketized cuckoo) on the Fig. 6/8 workload next to
// HashFlow, reporting FSC and ARE for each.
func BenchmarkExtensionComparators(b *testing.B) {
	pkts, truth := benchTrace(b, trace.CAIDA, benchFlows)
	algos := append([]flowmon.Algorithm{flowmon.AlgorithmHashFlow}, flowmon.Extras()...)
	for _, a := range algos {
		b.Run(a.String(), func(b *testing.B) {
			var fsc, are float64
			for i := 0; i < b.N; i++ {
				rec, err := flowmon.New(a, flowmon.Config{
					MemoryBytes: benchMemory, Seed: benchSeed, SampleRate: 100,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pkts {
					rec.Update(p)
				}
				fsc = metrics.FSC(rec.Records(), truth)
				are = metrics.SizeARE(rec.EstimateSize, truth)
			}
			b.ReportMetric(fsc, "FSC")
			b.ReportMetric(are, "ARE")
		})
	}
}

// BenchmarkAblationPromotion compares record promotion on vs off: without
// promotion, elephants that lose the initial collision race stay stranded
// in the ancillary table and heavy-hitter recall drops.
func BenchmarkAblationPromotion(b *testing.B) {
	pkts, truth := benchTrace(b, trace.Campus, benchFlows)
	for _, disabled := range []bool{false, true} {
		name := "on"
		if disabled {
			name = "off"
		}
		b.Run("promotion="+name, func(b *testing.B) {
			var recall float64
			for i := 0; i < b.N; i++ {
				rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{
					MemoryBytes: benchMemory, Seed: benchSeed, DisablePromotion: disabled,
				})
				if err != nil {
					b.Fatal(err)
				}
				for _, p := range pkts {
					rec.Update(p)
				}
				recall = metrics.HeavyHitters(rec.Records(), truth, 50).Recall
			}
			b.ReportMetric(recall, "hh_recall")
		})
	}
}
