package recordstore

import (
	"io"
	"os"
)

// readFallback loads the file into an anonymous buffer — the shared
// fallback for platforms without the unix mmap surface and filesystems
// that reject mmap. The mapped-store API is unchanged; only the zero-copy
// window into the page cache is lost.
func readFallback(f *os.File, size int64) ([]byte, func() error, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
