//go:build !unix

package recordstore

import "os"

// mapFile reads the file into memory on platforms without the unix mmap
// surface.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, nil, nil
	}
	return readFallback(f, size)
}
