package recordstore

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/flow"
	"repro/internal/faults"
)

// epochRecords builds n deterministic records for epoch e.
func epochRecords(e, n int) []flow.Record {
	recs := make([]flow.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, flow.Record{
			Key: flow.Key{
				SrcIP:   uint32(0x0A000000 + i*7 + e),
				DstIP:   uint32(0xC0A80000 + i),
				SrcPort: uint16(1024 + i), DstPort: 443, Proto: 6,
			},
			Count: uint32(100 + e*10 + i),
		})
	}
	return recs
}

// writeStoreFile writes n epochs of deterministic records to path and
// returns the file image.
func writeStoreFile(t *testing.T, path string, n int) []byte {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for e := 0; e < n; e++ {
		if err := w.WriteEpoch(time.Unix(int64(1000+e), 0), epochRecords(e, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// TestRecoverTailEveryOffset is the torn-tail property test: a store of K
// epochs truncated at every byte offset inside (and after) the final
// epoch frame must recover to a store both read paths agree on, holding
// K-1 epochs (or K at the exact end).
func TestRecoverTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.frec")
	img := writeStoreFile(t, ref, 4)

	// Find where the final epoch frame begins.
	m, err := NewMappedBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epochs() != 4 {
		t.Fatalf("reference store has %d epochs, want 4", m.Epochs())
	}
	// The final frame (length varint + body) begins where epoch 2's body
	// ends.
	lastFrameStart := int64(m.metas[2].off + m.metas[2].size)
	m.Close()

	path := filepath.Join(dir, "torn.frec")
	for cut := lastFrameStart; cut <= int64(len(img)); cut++ {
		if err := os.WriteFile(path, img[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := RecoverTail(path)
		if err != nil {
			t.Fatalf("cut=%d: RecoverTail: %v", cut, err)
		}
		wantEpochs := 3
		if cut == int64(len(img)) {
			wantEpochs = 4
		}
		if rec.Epochs != wantEpochs {
			t.Fatalf("cut=%d: recovered %d epochs, want %d (torn=%d)", cut, rec.Epochs, wantEpochs, rec.TornBytes)
		}
		if rec.GoodSize+rec.TornBytes != cut {
			t.Fatalf("cut=%d: good %d + torn %d != cut", cut, rec.GoodSize, rec.TornBytes)
		}

		// Both read paths must agree on the recovered file, with no
		// truncated-tail condition left.
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("cut=%d: streamed read after recovery: %v", cut, err)
		}
		mm, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("cut=%d: OpenMapped after recovery: %v", cut, err)
		}
		if mm.Truncated() {
			t.Fatalf("cut=%d: mapped store still truncated after recovery", cut)
		}
		if len(streamed) != wantEpochs || mm.Epochs() != wantEpochs {
			t.Fatalf("cut=%d: streamed %d / mapped %d epochs, want %d",
				cut, len(streamed), mm.Epochs(), wantEpochs)
		}
		for i, ep := range streamed {
			mep, err := mm.EpochAt(i)
			if err != nil {
				t.Fatalf("cut=%d: mapped epoch %d: %v", cut, i, err)
			}
			if !ep.Time.Equal(mep.Time) || len(ep.Records) != len(mep.Records) {
				t.Fatalf("cut=%d: epoch %d reader/mapped disagree", cut, i)
			}
		}
		mm.Close()
	}
}

// TestRecoverTailNonStore: a file that is not a record store must be
// reported, never truncated.
func TestRecoverTailNonStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not.frec")
	body := []byte("this is somebody else's file, hands off")
	if err := os.WriteFile(path, body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverTail(path); !errors.Is(err, ErrNotStore) {
		t.Fatalf("RecoverTail on a non-store: err=%v, want ErrNotStore", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, body) {
		t.Error("RecoverTail modified a non-store file")
	}
}

// TestRecoverTailMissingAndEmpty: nothing to recover is not an error.
func TestRecoverTailMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	rec, err := RecoverTail(filepath.Join(dir, "absent.frec"))
	if err != nil || !rec.Created {
		t.Fatalf("missing file: rec=%+v err=%v", rec, err)
	}
	empty := filepath.Join(dir, "empty.frec")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err = RecoverTail(empty)
	if err != nil || !rec.Created {
		t.Fatalf("empty file: rec=%+v err=%v", rec, err)
	}
	// A partial header from a writer killed before its first flush is
	// reset to empty.
	partial := filepath.Join(dir, "partial.frec")
	if err := os.WriteFile(partial, []byte("FR"), 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err = RecoverTail(partial)
	if err != nil || !rec.Created || rec.TornBytes != 2 {
		t.Fatalf("partial header: rec=%+v err=%v", rec, err)
	}
	if st, _ := os.Stat(partial); st.Size() != 0 {
		t.Errorf("partial header not truncated: %d bytes", st.Size())
	}
}

// TestOpenFileResume: epochs appended across three writer generations —
// one of them crash-torn — read back as one contiguous store.
func TestOpenFileResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "resume.frec")
	recs := func(c uint32) []flow.Record {
		return []flow.Record{{Key: flow.Key{SrcIP: 1, DstIP: 2, Proto: 6}, Count: c}}
	}

	fw, rec, err := OpenFile(path, SyncPolicy{Mode: SyncEachEpoch})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Created {
		t.Errorf("first open: Created=false")
	}
	if err := fw.WriteEpoch(time.Unix(1, 0), recs(10)); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteEpoch(time.Unix(2, 0), recs(20)); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-epoch: append garbage that looks like the
	// start of a frame.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	fw, rec, err = OpenFile(path, SyncPolicy{Mode: SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epochs != 2 || rec.TornBytes != 3 {
		t.Fatalf("resume recovery = %+v, want 2 epochs, 3 torn bytes", rec)
	}
	if err := fw.WriteEpoch(time.Unix(3, 0), recs(30)); err != nil {
		t.Fatal(err)
	}
	if got := fw.Epochs(); got != 3 {
		t.Errorf("resumed writer Epochs() = %d, want 3 (store-wide)", got)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Epochs() != 3 || m.Truncated() {
		t.Fatalf("final store: %d epochs, truncated=%v", m.Epochs(), m.Truncated())
	}
	for i, want := range []uint32{10, 20, 30} {
		ep, err := m.EpochAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(ep.Records) != 1 || ep.Records[0].Count != want {
			t.Errorf("epoch %d: records %+v, want single count %d", i, ep.Records, want)
		}
	}
}

// countingSyncer counts Sync calls.
type countingSyncer struct{ n int }

func (c *countingSyncer) Sync() error {
	c.n++
	return nil
}

// TestSyncPolicyEachEpoch: one fsync per epoch, plus the shutdown barrier.
func TestSyncPolicyEachEpoch(t *testing.T) {
	var buf bytes.Buffer
	cs := &countingSyncer{}
	w := NewWriter(&buf)
	w.SetSyncPolicy(cs, SyncPolicy{Mode: SyncEachEpoch})
	recs := []flow.Record{{Key: flow.Key{SrcIP: 9}, Count: 1}}
	for i := 0; i < 3; i++ {
		if err := w.WriteEpoch(time.Unix(int64(i), 0), recs); err != nil {
			t.Fatal(err)
		}
	}
	if cs.n != 3 {
		t.Errorf("per-epoch policy synced %d times over 3 epochs", cs.n)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if cs.n != 4 {
		t.Errorf("explicit Sync did not reach the syncer (n=%d)", cs.n)
	}
	// The per-epoch flush means the stream is complete without Flush.
	eps, err := NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil || len(eps) != 3 {
		t.Fatalf("read back: %d epochs, err=%v", len(eps), err)
	}
}

// TestSyncPolicyInterval: syncs are rate-limited by the interval.
func TestSyncPolicyInterval(t *testing.T) {
	var buf bytes.Buffer
	cs := &countingSyncer{}
	w := NewWriter(&buf)
	w.SetSyncPolicy(cs, SyncPolicy{Mode: SyncInterval, Interval: time.Hour})
	recs := []flow.Record{{Key: flow.Key{SrcIP: 9}, Count: 1}}
	for i := 0; i < 5; i++ {
		if err := w.WriteEpoch(time.Unix(int64(i), 0), recs); err != nil {
			t.Fatal(err)
		}
	}
	// The first write syncs (lastSync zero → interval elapsed), later ones
	// are inside the hour.
	if cs.n != 1 {
		t.Errorf("interval policy synced %d times, want 1", cs.n)
	}
}

// TestParseSyncPolicy covers the flag surface.
func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"off", SyncPolicy{Mode: SyncOff}, false},
		{"", SyncPolicy{Mode: SyncOff}, false},
		{"epoch", SyncPolicy{Mode: SyncEachEpoch}, false},
		{"500ms", SyncPolicy{Mode: SyncInterval, Interval: 500 * time.Millisecond}, false},
		{"-1s", SyncPolicy{}, true},
		{"bogus", SyncPolicy{}, true},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseSyncPolicy(%q) = %+v, %v", c.in, got, err)
		}
	}
	for _, p := range []SyncPolicy{{Mode: SyncOff}, {Mode: SyncEachEpoch}, {Mode: SyncInterval, Interval: time.Second}} {
		rt, err := ParseSyncPolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("round-trip %v: %+v, %v", p, rt, err)
		}
	}
}

// TestRecoverTailAfterInjectedTear drives the real failure shape through
// the fault injector: a writer killed mid-frame (the write tears at an
// arbitrary byte limit) leaves a file whose tail RecoverTail must peel
// back to the last intact epoch.
func TestRecoverTailAfterInjectedTear(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.frec")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}

	// Let two epochs and a bit of the third through, then tear.
	var intact bytes.Buffer
	w := NewWriter(&intact)
	for e := 0; e < 2; e++ {
		if err := w.WriteEpoch(time.Unix(int64(e), 0), epochRecords(e, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	limit := int64(intact.Len() + 7) // 7 bytes into the third epoch's frame

	fw := faults.NewWriter(f, limit)
	w2 := NewWriter(fw)
	for e := 0; e < 3; e++ {
		if err := w2.WriteEpoch(time.Unix(int64(e), 0), epochRecords(e, 10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w2.Flush(); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("flush through the torn writer: %v, want ErrInjected", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	rec, err := RecoverTail(path)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rec.Epochs != 2 {
		t.Fatalf("recovered %d epochs, want the 2 intact ones", rec.Epochs)
	}
	if rec.TornBytes != 7 {
		t.Fatalf("TornBytes = %d, want the 7 bytes of torn frame", rec.TornBytes)
	}
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Epochs() != 2 || m.Truncated() {
		t.Fatalf("recovered store: %d epochs, truncated=%v", m.Epochs(), m.Truncated())
	}
}
