package recordstore

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"repro/flow"
)

// FuzzReader feeds arbitrary bytes to the store reader: errors are fine,
// panics and unbounded allocations are not.
func FuzzReader(f *testing.F) {
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.WriteEpoch(time.Unix(1, 0), []flow.Record{
		{Key: flow.Key{SrcIP: 1, Proto: 6}, Count: 2},
		{Key: flow.Key{SrcIP: 2, Proto: 17}, Count: 9},
	})
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte("FREC\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			_, err := r.ReadEpoch()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
		}
	})
}

// FuzzParseFilter must never panic on arbitrary expressions.
func FuzzParseFilter(f *testing.F) {
	f.Add("src=10.0.0.1,dport=443")
	f.Add("")
	f.Add("minpkts=,,,")
	f.Fuzz(func(t *testing.T, expr string) {
		_, _ = ParseFilter(expr)
	})
}
