package recordstore

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/flow"
)

// FuzzReader feeds arbitrary bytes to the store reader: errors are fine,
// panics and unbounded allocations are not.
func FuzzReader(f *testing.F) {
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.WriteEpoch(time.Unix(1, 0), []flow.Record{
		{Key: flow.Key{SrcIP: 1, Proto: 6}, Count: 2},
		{Key: flow.Key{SrcIP: 2, Proto: 17}, Count: 9},
	})
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte("FREC\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ {
			_, err := r.ReadEpoch()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return
			}
		}
	})
}

// FuzzRecoverTail feeds arbitrary file images to the torn-tail recovery
// path: whatever the bytes, recovery must not panic, and when it reports
// success the recovered file must open cleanly on both read paths with no
// truncated-tail condition left — recovery that leaves a store a restarted
// collector still cannot append to has failed at its one job.
func FuzzRecoverTail(f *testing.F) {
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.WriteEpoch(time.Unix(1, 0), []flow.Record{
		{Key: flow.Key{SrcIP: 1, Proto: 6}, Count: 2},
		{Key: flow.Key{SrcIP: 2, Proto: 17}, Count: 9},
	})
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-3]) // torn tail
	f.Add([]byte("FREC\x01"))
	f.Add([]byte("FREC\x01\x07garbage"))
	f.Add([]byte("FR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.frec")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		rec, err := RecoverTail(path)
		if err != nil {
			return // not a store, or an unsupported version: refused, fine
		}
		if rec.Created {
			return // nothing recovered; the writer would start fresh
		}
		m, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("recovered store does not open: %v (recovery %+v)", err, rec)
		}
		defer m.Close()
		if m.Truncated() {
			t.Fatalf("recovered store still truncated (recovery %+v)", rec)
		}
		if m.Epochs() != rec.Epochs {
			t.Fatalf("mapped sees %d epochs, recovery reported %d", m.Epochs(), rec.Epochs)
		}
		for i := 0; i < m.Epochs(); i++ {
			if _, err := m.EpochAt(i); err != nil {
				t.Fatalf("recovered epoch %d does not decode: %v", i, err)
			}
		}
	})
}

// FuzzParseFilter must never panic on arbitrary expressions.
func FuzzParseFilter(f *testing.F) {
	f.Add("src=10.0.0.1,dport=443")
	f.Add("")
	f.Add("minpkts=,,,")
	f.Fuzz(func(t *testing.T, expr string) {
		_, _ = ParseFilter(expr)
	})
}
