// Cold segments: the compressed storage tier. A segment file holds a run
// of epochs re-encoded for density rather than append speed. The hot
// format already delta/varint-codes each epoch in isolation; the cold
// format exploits the redundancy *between* epochs — a vantage's flow
// keyset barely changes from one epoch to the next, so adjacent epochs'
// sorted key streams are nearly byte-identical.
//
// Epochs are grouped into blocks. Within a block the per-record streams
// are laid out columnar — every epoch's key bytes first, then every
// epoch's count bytes — so each epoch's key stream sits directly after
// the previous epoch's inside the DEFLATE window and compresses to a
// near-reference. Per-epoch headers (timestamp, counts, stream lengths)
// stay outside the compressed stream, so listing a segment's epochs and
// answering time-range queries never inflates anything; decoding one
// epoch inflates only its block.
//
// File layout:
//
//	magic "FSEG" | version u8 | kind u8 (cold | rollup)
//	per block: uvarint frame length, then
//	    uvarint epoch count
//	    per epoch: uvarint nanos delta | count | keysLen | countsLen |
//	               span | totalRecords | totalPackets
//	    DEFLATE stream of keys_1..keys_E || counts_1..counts_E
//
// Segments are immutable: they are written to a temp file, fsynced, and
// renamed into place by the compactor, so a reader never sees a partial
// one. Any structural damage is therefore corruption, not a live tail —
// OpenSegment rejects it outright.
package recordstore

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
	"sync"
	"time"

	"repro/flow"
)

// Cold-format constants.
const (
	segMagic   = "FSEG"
	segVersion = 1

	// DefaultBlockEpochs bounds how many epochs share one DEFLATE stream:
	// the decompression unit of a random epoch read. Larger blocks
	// compress better (more cross-epoch redundancy in the window) but make
	// point reads inflate more.
	DefaultBlockEpochs = 16
	// defaultBlockBytes flushes a block early once its raw streams reach
	// this size, keeping the inflate cost of a point read bounded for
	// very large epochs.
	defaultBlockBytes = 1 << 20
)

// SegmentKind distinguishes lossless cold segments from downsampled
// rollups.
type SegmentKind uint8

const (
	// SegmentCold holds epochs byte-equivalent to their hot originals.
	SegmentCold SegmentKind = iota
	// SegmentRollup holds downsampled epochs: each entry is the exact
	// top-k of a run of source epochs plus exact aggregate totals, with
	// the per-flow tail dropped.
	SegmentRollup
)

// String names the kind the way the manifest spells it.
func (k SegmentKind) String() string {
	if k == SegmentRollup {
		return "rollup"
	}
	return "cold"
}

// ErrNotSegment is returned when data does not begin with the segment
// magic.
var ErrNotSegment = errors.New("recordstore: not a cold segment")

// SegmentEpoch is one epoch handed to a SegmentWriter. Records must be
// sorted by packed key — the order hot stores persist and decode them in.
type SegmentEpoch struct {
	// Time is the epoch's export timestamp.
	Time time.Time
	// Records are the epoch's flow records in packed-key order.
	Records []flow.Record
	// Span is how many source epochs this entry folds together; 0 or 1
	// means a plain epoch.
	Span int
	// TotalRecords / TotalPackets are the aggregate totals across the
	// folded source epochs. Zero values are filled from Records, so plain
	// cold epochs never set them.
	TotalRecords uint64
	TotalPackets uint64
}

// SegmentWriter encodes epochs into the cold segment format. Epochs
// accumulate into blocks that are compressed and framed on rotation;
// Close flushes the final block. Not safe for concurrent use.
type SegmentWriter struct {
	w    io.Writer
	kind SegmentKind

	blockEpochs int
	blockBytes  int

	started bool
	err     error

	// Pending block state.
	hdr    []byte // per-epoch header varints
	keys   []byte // concatenated key streams
	counts []byte // concatenated count streams
	epochs int    // epochs in the pending block
	last   int64  // nanos of the last epoch accepted (for header deltas)

	comp  bytes.Buffer
	flate *flate.Writer
	frame []byte
}

// NewSegmentWriter builds a writer emitting kind-flavored segments to w.
func NewSegmentWriter(w io.Writer, kind SegmentKind) *SegmentWriter {
	return &SegmentWriter{
		w:           w,
		kind:        kind,
		blockEpochs: DefaultBlockEpochs,
		blockBytes:  defaultBlockBytes,
	}
}

// SetBlockEpochs overrides how many epochs share one compression block.
func (sw *SegmentWriter) SetBlockEpochs(n int) {
	if n > 0 {
		sw.blockEpochs = n
	}
}

// Add appends one epoch to the segment. Epoch timestamps must be
// non-decreasing across Add calls.
func (sw *SegmentWriter) Add(ep SegmentEpoch) error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.started {
		hdr := append([]byte(segMagic), segVersion, byte(sw.kind))
		if _, err := sw.w.Write(hdr); err != nil {
			return sw.fail(fmt.Errorf("recordstore: write segment header: %w", err))
		}
		sw.started = true
	}
	// Timestamps are delta-coded against the previous epoch across block
	// boundaries; the first header's delta base is zero, so it carries the
	// absolute timestamp.
	nanos := ep.Time.UnixNano()
	if nanos < sw.last {
		return sw.fail(fmt.Errorf("recordstore: segment epochs out of order (%d after %d)", nanos, sw.last))
	}

	span := ep.Span
	if span <= 0 {
		span = 1
	}
	totalRecords := ep.TotalRecords
	if totalRecords == 0 {
		totalRecords = uint64(len(ep.Records))
	}
	totalPackets := ep.TotalPackets
	if totalPackets == 0 {
		for _, r := range ep.Records {
			totalPackets += uint64(r.Count)
		}
	}

	// Encode the record streams columnar: key deltas/xors into keys,
	// counts into counts, exactly the hot encoder's per-record scheme
	// split into two streams.
	keysStart, countsStart := len(sw.keys), len(sw.counts)
	var prev1, prev2 uint64
	for _, r := range ep.Records {
		w1, w2 := r.Key.Words()
		sw.keys = binary.AppendUvarint(sw.keys, w1-prev1)
		sw.keys = binary.AppendUvarint(sw.keys, w2^prev2)
		sw.counts = binary.AppendUvarint(sw.counts, uint64(r.Count))
		prev1, prev2 = w1, w2
	}

	sw.hdr = binary.AppendUvarint(sw.hdr, uint64(nanos-sw.last))
	sw.hdr = binary.AppendUvarint(sw.hdr, uint64(len(ep.Records)))
	sw.hdr = binary.AppendUvarint(sw.hdr, uint64(len(sw.keys)-keysStart))
	sw.hdr = binary.AppendUvarint(sw.hdr, uint64(len(sw.counts)-countsStart))
	sw.hdr = binary.AppendUvarint(sw.hdr, uint64(span))
	sw.hdr = binary.AppendUvarint(sw.hdr, totalRecords)
	sw.hdr = binary.AppendUvarint(sw.hdr, totalPackets)
	sw.last = nanos
	sw.epochs++

	if sw.epochs >= sw.blockEpochs || len(sw.keys)+len(sw.counts) >= sw.blockBytes {
		return sw.flushBlock()
	}
	return nil
}

// flushBlock compresses and frames the pending epochs.
func (sw *SegmentWriter) flushBlock() error {
	if sw.epochs == 0 {
		return nil
	}
	sw.comp.Reset()
	if sw.flate == nil {
		fw, err := flate.NewWriter(&sw.comp, flate.DefaultCompression)
		if err != nil {
			return sw.fail(err)
		}
		sw.flate = fw
	} else {
		sw.flate.Reset(&sw.comp)
	}
	if _, err := sw.flate.Write(sw.keys); err != nil {
		return sw.fail(err)
	}
	if _, err := sw.flate.Write(sw.counts); err != nil {
		return sw.fail(err)
	}
	if err := sw.flate.Close(); err != nil {
		return sw.fail(err)
	}

	sw.frame = sw.frame[:0]
	sw.frame = binary.AppendUvarint(sw.frame, uint64(sw.epochs))
	sw.frame = append(sw.frame, sw.hdr...)
	sw.frame = append(sw.frame, sw.comp.Bytes()...)

	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(sw.frame)))
	if _, err := sw.w.Write(lenBuf[:n]); err != nil {
		return sw.fail(fmt.Errorf("recordstore: write block frame: %w", err))
	}
	if _, err := sw.w.Write(sw.frame); err != nil {
		return sw.fail(fmt.Errorf("recordstore: write block frame: %w", err))
	}

	sw.hdr = sw.hdr[:0]
	sw.keys = sw.keys[:0]
	sw.counts = sw.counts[:0]
	sw.epochs = 0
	return nil
}

// Close flushes the final block. The header is written even for an
// epoch-less segment so the file is recognizably a (valid, empty) one.
func (sw *SegmentWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if !sw.started {
		hdr := append([]byte(segMagic), segVersion, byte(sw.kind))
		if _, err := sw.w.Write(hdr); err != nil {
			return sw.fail(err)
		}
		sw.started = true
	}
	return sw.flushBlock()
}

func (sw *SegmentWriter) fail(err error) error {
	if sw.err == nil {
		sw.err = err
	}
	return sw.err
}

// segEpochMeta is one indexed epoch of an open segment.
type segEpochMeta struct {
	nanos        int64
	count        int
	keysOff      int // offset into the block's raw (inflated) bytes
	keysLen      int
	countsOff    int
	countsLen    int
	block        int
	span         int
	totalRecords uint64
	totalPackets uint64
}

// segBlock is one compression block of an open segment.
type segBlock struct {
	compOff int // offset of the DEFLATE stream in the segment data
	compLen int
	rawLen  int // total inflated length (keys + counts)
	first   int // first epoch index in the block
	epochs  int
}

// Segment is a cold or rollup segment opened for reading. The per-epoch
// index is built once on open without inflating anything; AppendEpochAt
// inflates the target epoch's block (cached, so sequential scans inflate
// each block once). Safe for concurrent use.
type Segment struct {
	data  []byte
	unmap func() error
	kind  SegmentKind
	metas []segEpochMeta
	blks  []segBlock

	// Single-block inflate cache; guarded by mu. Queries re-open segments
	// per request, so one slot captures both sequential scans and
	// repeated point reads without a real cache policy.
	mu       sync.Mutex
	cachedIx int
	cached   []byte
}

// OpenSegment maps and indexes the segment file at path.
func OpenSegment(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("recordstore: map %s: %w", path, err)
	}
	s, err := newSegment(data, unmap)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, fmt.Errorf("recordstore: segment %s: %w", path, err)
	}
	return s, nil
}

// OpenSegmentBytes indexes an in-memory segment image (tests, fuzzing).
func OpenSegmentBytes(data []byte) (*Segment, error) {
	return newSegment(data, nil)
}

func newSegment(data []byte, unmap func() error) (*Segment, error) {
	const hdrLen = len(segMagic) + 2
	if len(data) < hdrLen {
		return nil, ErrNotSegment
	}
	if string(data[:len(segMagic)]) != segMagic {
		return nil, ErrNotSegment
	}
	if v := data[len(segMagic)]; v != segVersion {
		return nil, fmt.Errorf("unsupported segment version %d", v)
	}
	kind := SegmentKind(data[len(segMagic)+1])
	if kind != SegmentCold && kind != SegmentRollup {
		return nil, fmt.Errorf("unknown segment kind %d", kind)
	}
	s := &Segment{data: data, unmap: unmap, kind: kind, cachedIx: -1}
	if err := s.buildIndex(hdrLen); err != nil {
		return nil, err
	}
	return s, nil
}

// buildIndex walks the block frames, decoding only headers. Segments are
// immutable once renamed into place, so unlike the hot store's live tail
// any structural damage here is fatal for the whole segment.
func (s *Segment) buildIndex(off int) error {
	var lastNanos int64
	for off < len(s.data) {
		frameLen, n := binary.Uvarint(s.data[off:])
		if n <= 0 || frameLen > uint64(len(s.data)) {
			return fmt.Errorf("corrupt block frame at byte %d", off)
		}
		body := off + n
		if body+int(frameLen) > len(s.data) {
			return fmt.Errorf("block frame at byte %d runs past the end", off)
		}
		frame := s.data[body : body+int(frameLen)]

		epochs, hn := binary.Uvarint(frame)
		if hn <= 0 || epochs == 0 || epochs > 1<<20 {
			return fmt.Errorf("corrupt epoch count in block at byte %d", off)
		}
		pos := hn
		blk := segBlock{first: len(s.metas), epochs: int(epochs)}
		var rawOff int
		hdrs := make([]segEpochMeta, 0, epochs)
		for i := uint64(0); i < epochs; i++ {
			var vals [7]uint64
			for v := range vals {
				x, vn := binary.Uvarint(frame[pos:])
				if vn <= 0 {
					return fmt.Errorf("corrupt epoch header %d in block at byte %d", i, off)
				}
				vals[v] = x
				pos += vn
			}
			if vals[1] > 1<<28 || vals[2] > 1<<31 || vals[3] > 1<<31 || vals[4] > 1<<28 {
				return fmt.Errorf("implausible epoch header %d in block at byte %d", i, off)
			}
			lastNanos += int64(vals[0])
			hdrs = append(hdrs, segEpochMeta{
				nanos:        lastNanos,
				count:        int(vals[1]),
				keysLen:      int(vals[2]),
				countsLen:    int(vals[3]),
				block:        len(s.blks),
				span:         int(vals[4]),
				totalRecords: vals[5],
				totalPackets: vals[6],
			})
			rawOff += int(vals[2]) + int(vals[3])
		}
		// Columnar layout: all key streams first, then all count streams.
		var keysOff, countsOff int
		for i := range hdrs {
			keysOff += hdrs[i].keysLen
		}
		countsOff = keysOff
		keysOff = 0
		for i := range hdrs {
			hdrs[i].keysOff = keysOff
			keysOff += hdrs[i].keysLen
			hdrs[i].countsOff = countsOff
			countsOff += hdrs[i].countsLen
		}
		blk.rawLen = rawOff
		blk.compOff = body + pos
		blk.compLen = int(frameLen) - pos
		if blk.compLen < 0 {
			return fmt.Errorf("corrupt block at byte %d: headers overrun frame", off)
		}
		// DEFLATE expands each compressed byte to at most ~1032 raw bytes
		// (a 258-byte match costs no less than two bits), so headers
		// declaring more raw data than the stream could possibly inflate
		// are corruption. Rejecting here keeps blockRaw from allocating a
		// multi-gigabyte buffer on the say-so of a tiny hostile file.
		const maxInflateRatio = 1032
		if blk.rawLen > blk.compLen*maxInflateRatio+64 {
			return fmt.Errorf("block at byte %d declares %d raw bytes from a %d-byte stream", off, blk.rawLen, blk.compLen)
		}
		s.metas = append(s.metas, hdrs...)
		s.blks = append(s.blks, blk)
		off = body + int(frameLen)
	}
	return nil
}

// Kind reports whether the segment is cold or rollup.
func (s *Segment) Kind() SegmentKind { return s.kind }

// Epochs returns how many epochs the segment holds.
func (s *Segment) Epochs() int { return len(s.metas) }

// EpochTime returns epoch i's timestamp without inflating anything.
func (s *Segment) EpochTime(i int) time.Time {
	return time.Unix(0, s.metas[i].nanos).UTC()
}

// EpochLen returns epoch i's stored record count.
func (s *Segment) EpochLen(i int) int { return s.metas[i].count }

// EpochInfo returns epoch i's tier metadata.
func (s *Segment) EpochInfo(i int) EpochInfo {
	m := s.metas[i]
	return EpochInfo{
		Time:         time.Unix(0, m.nanos).UTC(),
		Records:      m.count,
		Tier:         s.kind.String(),
		Span:         m.span,
		TotalRecords: m.totalRecords,
		TotalPackets: m.totalPackets,
	}
}

// FirstNanos / LastNanos bound the segment's epoch timestamps; zero for
// an empty segment.
func (s *Segment) FirstNanos() int64 {
	if len(s.metas) == 0 {
		return 0
	}
	return s.metas[0].nanos
}

func (s *Segment) LastNanos() int64 {
	if len(s.metas) == 0 {
		return 0
	}
	return s.metas[len(s.metas)-1].nanos
}

// AppendEpochAt decodes epoch i with its records appended to dst. The
// records are exactly the ones the hot-tier decoder yields for the same
// epoch (cold segments) or the rollup's retained top-k (rollup segments).
func (s *Segment) AppendEpochAt(i int, dst []flow.Record) (Epoch, error) {
	if i < 0 || i >= len(s.metas) {
		return Epoch{}, fmt.Errorf("recordstore: segment epoch %d out of range [0,%d)", i, len(s.metas))
	}
	meta := s.metas[i]

	s.mu.Lock()
	defer s.mu.Unlock()
	raw, err := s.blockRaw(meta.block)
	if err != nil {
		return Epoch{}, err
	}
	if meta.keysOff+meta.keysLen > len(raw) || meta.countsOff+meta.countsLen > len(raw) {
		return Epoch{}, fmt.Errorf("recordstore: segment epoch %d: streams overrun block", i)
	}
	keys := raw[meta.keysOff : meta.keysOff+meta.keysLen]
	counts := raw[meta.countsOff : meta.countsOff+meta.countsLen]

	dst = slices.Grow(dst, meta.count)
	ep := Epoch{Time: time.Unix(0, meta.nanos).UTC(), Records: dst}
	var prev1, prev2 uint64
	for r := 0; r < meta.count; r++ {
		d1, n1 := binary.Uvarint(keys)
		if n1 <= 0 {
			return Epoch{}, fmt.Errorf("recordstore: segment epoch %d: corrupt key stream at record %d", i, r)
		}
		keys = keys[n1:]
		x2, n2 := binary.Uvarint(keys)
		if n2 <= 0 {
			return Epoch{}, fmt.Errorf("recordstore: segment epoch %d: corrupt key stream at record %d", i, r)
		}
		keys = keys[n2:]
		cnt, n3 := binary.Uvarint(counts)
		if n3 <= 0 || cnt > 0xFFFFFFFF {
			return Epoch{}, fmt.Errorf("recordstore: segment epoch %d: corrupt count stream at record %d", i, r)
		}
		counts = counts[n3:]

		w1 := prev1 + d1
		w2 := prev2 ^ x2
		key, err := keyFromWords(w1, w2)
		if err != nil {
			return Epoch{}, fmt.Errorf("recordstore: segment epoch %d record %d: %w", i, r, err)
		}
		ep.Records = append(ep.Records, flow.Record{Key: key, Count: uint32(cnt)})
		prev1, prev2 = w1, w2
	}
	if len(keys) != 0 || len(counts) != 0 {
		return Epoch{}, fmt.Errorf("recordstore: segment epoch %d: %d trailing stream bytes", i, len(keys)+len(counts))
	}
	return ep, nil
}

// Range mirrors Mapped.Range over the segment's epochs.
func (s *Segment) Range(t0, t1 time.Time) (lo, hi int) {
	lo = s.searchNanos(t0.UnixNano())
	if t1.IsZero() {
		return lo, len(s.metas)
	}
	return lo, s.searchNanos(t1.UnixNano())
}

func (s *Segment) searchNanos(nanos int64) int {
	lo, hi := 0, len(s.metas)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.metas[mid].nanos < nanos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// blockRaw returns block b inflated, serving repeats from the one-slot
// cache. Caller holds s.mu.
func (s *Segment) blockRaw(b int) ([]byte, error) {
	if s.cachedIx == b {
		return s.cached, nil
	}
	blk := s.blks[b]
	comp := s.data[blk.compOff : blk.compOff+blk.compLen]
	if cap(s.cached) < blk.rawLen {
		s.cached = make([]byte, blk.rawLen)
	}
	buf := s.cached[:blk.rawLen]
	s.cachedIx = -1
	fr := flate.NewReader(bytes.NewReader(comp))
	if _, err := io.ReadFull(fr, buf); err != nil {
		return nil, fmt.Errorf("recordstore: inflate block %d: %w", b, err)
	}
	// A stream with trailing garbage decodes the declared length fine; a
	// short one already failed above. Confirm it ends where the headers
	// said it would.
	var tail [1]byte
	if n, _ := fr.Read(tail[:]); n != 0 {
		return nil, fmt.Errorf("recordstore: inflate block %d: stream longer than declared", b)
	}
	s.cached = buf
	s.cachedIx = b
	return buf, nil
}

// Size returns the segment's byte length.
func (s *Segment) Size() int { return len(s.data) }

// Close releases the mapping.
func (s *Segment) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data = nil
	s.metas = nil
	s.blks = nil
	s.cached = nil
	s.cachedIx = -1
	if s.unmap != nil {
		u := s.unmap
		s.unmap = nil
		return u()
	}
	return nil
}
