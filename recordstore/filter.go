package recordstore

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"repro/flow"
)

// Filter selects flow records. The zero value matches everything; set
// fields constrain the match.
type Filter struct {
	// SrcIP / DstIP match exact addresses when non-zero.
	SrcIP, DstIP uint32
	// SrcPort / DstPort match exact ports when non-zero.
	SrcPort, DstPort uint16
	// Proto matches the protocol number when non-zero.
	Proto uint8
	// MinPackets drops records below this count.
	MinPackets uint32
}

// String renders the filter as the canonical expression ParseFilter
// accepts, with terms in a fixed order (src, dst, sport, dport, proto,
// minpkts) and unset fields omitted. ParseFilter(f.String()) == f for
// every filter, the round-trip the query layer's fuzz target pins.
func (f Filter) String() string {
	var b strings.Builder
	term := func(key, val string) {
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		b.WriteString(key)
		b.WriteByte('=')
		b.WriteString(val)
	}
	if f.SrcIP != 0 {
		term("src", flow.IPString(f.SrcIP))
	}
	if f.DstIP != 0 {
		term("dst", flow.IPString(f.DstIP))
	}
	if f.SrcPort != 0 {
		term("sport", strconv.FormatUint(uint64(f.SrcPort), 10))
	}
	if f.DstPort != 0 {
		term("dport", strconv.FormatUint(uint64(f.DstPort), 10))
	}
	if f.Proto != 0 {
		term("proto", strconv.FormatUint(uint64(f.Proto), 10))
	}
	if f.MinPackets != 0 {
		term("minpkts", strconv.FormatUint(uint64(f.MinPackets), 10))
	}
	return b.String()
}

// Match reports whether the record satisfies every set constraint.
func (f Filter) Match(r flow.Record) bool {
	switch {
	case f.SrcIP != 0 && r.Key.SrcIP != f.SrcIP:
		return false
	case f.DstIP != 0 && r.Key.DstIP != f.DstIP:
		return false
	case f.SrcPort != 0 && r.Key.SrcPort != f.SrcPort:
		return false
	case f.DstPort != 0 && r.Key.DstPort != f.DstPort:
		return false
	case f.Proto != 0 && r.Key.Proto != f.Proto:
		return false
	case r.Count < f.MinPackets:
		return false
	}
	return true
}

// Apply returns the records matching the filter, preserving order.
func (f Filter) Apply(records []flow.Record) []flow.Record {
	var out []flow.Record
	for _, r := range records {
		if f.Match(r) {
			out = append(out, r)
		}
	}
	return out
}

// ParseFilter builds a Filter from a comma-separated expression like
// "src=10.0.0.1,dport=443,proto=6,minpkts=100". An empty expression yields
// the match-all filter.
func ParseFilter(expr string) (Filter, error) {
	var f Filter
	if strings.TrimSpace(expr) == "" {
		return f, nil
	}
	for _, part := range strings.Split(expr, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return Filter{}, fmt.Errorf("recordstore: bad filter term %q", part)
		}
		key, val := strings.ToLower(strings.TrimSpace(kv[0])), strings.TrimSpace(kv[1])
		switch key {
		case "src", "dst":
			addr, err := netip.ParseAddr(val)
			if err != nil || !addr.Is4() {
				return Filter{}, fmt.Errorf("recordstore: %s wants an IPv4 address, got %q", key, val)
			}
			b := addr.As4()
			ip := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
			if key == "src" {
				f.SrcIP = ip
			} else {
				f.DstIP = ip
			}
		case "sport", "dport":
			p, err := strconv.ParseUint(val, 10, 16)
			if err != nil {
				return Filter{}, fmt.Errorf("recordstore: bad port %q", val)
			}
			if key == "sport" {
				f.SrcPort = uint16(p)
			} else {
				f.DstPort = uint16(p)
			}
		case "proto":
			p, err := strconv.ParseUint(val, 10, 8)
			if err != nil {
				return Filter{}, fmt.Errorf("recordstore: bad protocol %q", val)
			}
			f.Proto = uint8(p)
		case "minpkts":
			p, err := strconv.ParseUint(val, 10, 32)
			if err != nil {
				return Filter{}, fmt.Errorf("recordstore: bad minpkts %q", val)
			}
			f.MinPackets = uint32(p)
		default:
			return Filter{}, fmt.Errorf("recordstore: unknown filter key %q", key)
		}
	}
	return f, nil
}
