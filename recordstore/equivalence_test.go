package recordstore

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/flow"
)

// seedWriteStream reproduces the seed encoder byte for byte — reflection
// sort.Slice over the records plus the same varint delta framing — so the
// radix/typed-sort Writer can be checked for byte-identical output.
func seedWriteStream(t *testing.T, epochs [][]flow.Record, times []time.Time) []byte {
	t.Helper()
	var out bytes.Buffer
	bw := bufio.NewWriter(&out)
	if _, err := bw.WriteString(magic); err != nil {
		t.Fatal(err)
	}
	if err := bw.WriteByte(version); err != nil {
		t.Fatal(err)
	}
	var scratch []flow.Record
	var buf []byte
	for e, records := range epochs {
		scratch = append(scratch[:0], records...)
		sort.Slice(scratch, func(i, j int) bool {
			return lessWords(scratch[i].Key, scratch[j].Key)
		})
		buf = buf[:0]
		buf = binary.AppendUvarint(buf, uint64(times[e].UnixNano()))
		buf = binary.AppendUvarint(buf, uint64(len(scratch)))
		var prev1, prev2 uint64
		for _, r := range scratch {
			w1, w2 := r.Key.Words()
			buf = binary.AppendUvarint(buf, w1-prev1)
			buf = binary.AppendUvarint(buf, w2^prev2)
			buf = binary.AppendUvarint(buf, uint64(r.Count))
			prev1, prev2 = w1, w2
		}
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(buf)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			t.Fatal(err)
		}
		if _, err := bw.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

// randomRecords generates n records with distinct random keys (duplicate
// keys would make the two sorts' tie order observable; record sets from a
// recorder are duplicate-free by construction).
func randomRecords(rng *rand.Rand, n int) []flow.Record {
	seen := make(map[flow.Key]bool, n)
	out := make([]flow.Record, 0, n)
	for len(out) < n {
		k := flow.Key{
			SrcIP:   rng.Uint32(),
			DstIP:   rng.Uint32(),
			SrcPort: uint16(rng.Uint32()),
			DstPort: uint16(rng.Uint32()),
			Proto:   uint8(rng.Uint32()),
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, flow.Record{Key: k, Count: rng.Uint32()})
	}
	return out
}

// TestSortRewriteEncodingEquivalence is the safety net under the sort
// rewrite: for epoch sizes spanning the typed-sort path (< radixMinLen)
// and the radix path, and for adversarial key distributions, the Writer
// must produce streams byte-identical to the seed's sort.Slice encoder.
func TestSortRewriteEncodingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))

	cases := map[string][][]flow.Record{
		"small-epochs": {
			randomRecords(rng, 1),
			randomRecords(rng, 7),
			randomRecords(rng, radixMinLen-1),
			{},
		},
		"radix-epochs": {
			randomRecords(rng, radixMinLen),
			randomRecords(rng, 2500),
			randomRecords(rng, 20000),
		},
		"uniform-bytes": {
			// Shared protocol/port bytes exercise the skipped-pass path.
			func() []flow.Record {
				recs := randomRecords(rng, 5000)
				for i := range recs {
					recs[i].Key.Proto = 6
					recs[i].Key.DstPort = 443
				}
				return dedupe(recs)
			}(),
		},
		"dense-prefix": {
			// Sequential addresses: most high key bytes uniform.
			func() []flow.Record {
				recs := make([]flow.Record, 0, 4000)
				for i := 0; i < 4000; i++ {
					recs = append(recs, flow.Record{
						Key:   flow.Key{SrcIP: 0x0A000000 + uint32(i), DstIP: 0x0A000001, SrcPort: 80, DstPort: 443, Proto: 6},
						Count: uint32(rng.Intn(1 << 20)),
					})
				}
				return recs
			}(),
		},
	}

	for name, epochs := range cases {
		t.Run(name, func(t *testing.T) {
			times := make([]time.Time, len(epochs))
			for i := range times {
				times[i] = time.Unix(int64(1700000000+i), int64(i)*137)
			}
			want := seedWriteStream(t, epochs, times)

			var got bytes.Buffer
			w := NewWriter(&got)
			for e, records := range epochs {
				if err := w.WriteEpoch(times[e], records); err != nil {
					t.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Fatalf("rewritten encoder diverges from seed encoder: %d vs %d bytes", got.Len(), len(want))
			}
		})
	}
}

func dedupe(recs []flow.Record) []flow.Record {
	seen := make(map[flow.Key]bool, len(recs))
	out := recs[:0]
	for _, r := range recs {
		if seen[r.Key] {
			continue
		}
		seen[r.Key] = true
		out = append(out, r)
	}
	return out
}

// TestReadEpochAppendRoundTrip verifies append-mode reads: reused buffers,
// preserved prefixes, and agreement with ReadEpoch.
func TestReadEpochAppendRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	epochs := [][]flow.Record{
		randomRecords(rng, 300),
		randomRecords(rng, 10),
		randomRecords(rng, 1200),
	}
	var stream bytes.Buffer
	w := NewWriter(&stream)
	for i, records := range epochs {
		if err := w.WriteEpoch(time.Unix(int64(i), 0), records); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	encoded := stream.Bytes()

	plain := NewReader(bytes.NewReader(encoded))
	appender := NewReader(bytes.NewReader(encoded))
	var buf []flow.Record
	for i := range epochs {
		want, err := plain.ReadEpoch()
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		got, err := appender.ReadEpochAppend(buf[:0])
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		buf = got.Records
		if !got.Time.Equal(want.Time) {
			t.Errorf("epoch %d: time %v, want %v", i, got.Time, want.Time)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("epoch %d: %d records, want %d", i, len(got.Records), len(want.Records))
		}
		for j := range got.Records {
			if got.Records[j] != want.Records[j] {
				t.Fatalf("epoch %d record %d: %+v, want %+v", i, j, got.Records[j], want.Records[j])
			}
		}
	}
	if _, err := appender.ReadEpochAppend(buf[:0]); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}
