// The unified read API of the store layer. Every way an epoch history can
// be materialized — a flat streamed file, an mmap-indexed file, a tiered
// directory with compressed cold segments and rollups — serves reads
// through one interface, EpochSource, so the query layer, detection
// seeding, and tooling never hard-code a concrete store type. Open is the
// matching constructor: it auto-detects what lives at a path and returns
// the right source.
package recordstore

import (
	"fmt"
	"os"
	"time"

	"repro/flow"
)

// EpochSource is the unified read surface over a stored epoch history.
// Epochs are addressed by a dense index [0, Epochs()) in time order,
// regardless of which tier (hot file, compressed cold segment, rollup)
// physically holds them. *Mapped and the tiered reader implement it.
//
// Implementations must be safe for concurrent readers as long as each
// call site passes its own dst buffer to AppendEpochAt.
type EpochSource interface {
	// Epochs returns how many epochs the source serves.
	Epochs() int
	// EpochTime returns epoch i's export timestamp without decoding
	// records.
	EpochTime(i int) time.Time
	// EpochLen returns epoch i's record count without decoding records.
	EpochLen(i int) int
	// AppendEpochAt decodes epoch i with its records appended to dst.
	AppendEpochAt(i int, dst []flow.Record) (Epoch, error)
	// Range returns the half-open index interval [lo, hi) of epochs whose
	// timestamp t satisfies t0 <= t < t1 (zero t1 = unbounded), found by
	// binary search over per-epoch metadata — never by decoding.
	Range(t0, t1 time.Time) (lo, hi int)
	// Close releases the source. Epochs decoded from it must not be used
	// afterwards.
	Close() error
}

// EpochWriter is the write half of the store API: recordstore.Writer
// (flat file) and Tiered (directory with compaction) both implement it,
// so sinks like collector.EpochStore work against either.
type EpochWriter interface {
	WriteEpoch(ts time.Time, records []flow.Record) error
	Flush() error
}

// EpochInfo is per-epoch metadata beyond the EpochSource basics: which
// tier holds the epoch and, for rollups, what was folded into it.
type EpochInfo struct {
	// Time is the epoch's export timestamp (for rollups, the first source
	// epoch's timestamp).
	Time time.Time
	// Records is the stored record count.
	Records int
	// Tier is "hot", "cold", or "rollup".
	Tier string
	// Span is how many source epochs the entry covers (1 except rollups).
	Span int
	// TotalRecords is the record count across the covered source epochs
	// before any rollup tail drop (== Records outside rollups).
	TotalRecords uint64
	// TotalPackets is the packet total across the covered source epochs;
	// exact even for rollups, whose per-flow tail is dropped.
	TotalPackets uint64
}

// InfoSource is the optional EpochSource extension serving tier metadata;
// the query layer type-asserts it to label /epochs entries.
type InfoSource interface {
	EpochInfo(i int) EpochInfo
}

// TruncatedSource is the optional EpochSource extension reporting a
// torn final frame (a store still being appended to).
type TruncatedSource interface {
	Truncated() bool
}

// Open auto-detects the store at path and returns its read source: a
// directory opens as a tiered store (hot file + cold/rollup segments per
// its manifest), anything else as a memory-mapped flat store. This is the
// one constructor call sites should use; constructing Reader or Mapped
// directly couples them to a single tier layout.
func Open(path string) (EpochSource, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if st.IsDir() {
		return OpenTieredSource(path)
	}
	return OpenMapped(path)
}

// EpochInfo implements InfoSource for the flat mapped store: every epoch
// is hot-tier.
func (m *Mapped) EpochInfo(i int) EpochInfo {
	meta := m.metas[i]
	return EpochInfo{
		Time:         time.Unix(0, meta.nanos).UTC(),
		Records:      meta.count,
		Tier:         "hot",
		Span:         1,
		TotalRecords: uint64(meta.count),
	}
}

// SourceRange is a convenience over Range clamping an explicit epoch
// index against the source bounds; shared by query handlers.
func SourceRange(src EpochSource, epoch int, from, to time.Time) (lo, hi int, err error) {
	lo, hi = 0, src.Epochs()
	if !from.IsZero() || !to.IsZero() {
		lo, hi = src.Range(from, to)
	}
	if epoch >= 0 {
		if epoch >= src.Epochs() {
			return 0, 0, fmt.Errorf("epoch %d out of range [0,%d)", epoch, src.Epochs())
		}
		lo, hi = epoch, epoch+1
	}
	return lo, hi, nil
}
