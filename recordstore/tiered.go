// Tiered store: a directory combining the mmap hot tier with compressed
// cold segments and downsampled rollups behind one EpochSource.
//
// Layout:
//
//	<dir>/hot.frec      — the append-only hot store (FREC, PR 7 recovery)
//	<dir>/seg-%06d.cseg — immutable cold segments (FSEG, lossless)
//	<dir>/seg-%06d.rseg — immutable rollup segments (FSEG, downsampled)
//	<dir>/MANIFEST.json — which segments are live + the hot/cold cutoff
//
// The manifest is the source of truth for segment liveness. Every
// mutation follows the same crash ordering: write the new file to a
// temp name, fsync, rename into place, fsync the directory, THEN
// publish it in a new manifest (itself temp+fsync+rename) and only then
// delete anything it replaced. A crash between any two steps leaves
// either an unreferenced file (garbage-collected at the next
// read-write open) or duplicate data (epochs present in both a segment
// and the hot file, deduplicated at read time by the manifest's
// cutoff_nanos: hot epochs at or before it are already migrated and
// skipped). No step ever overwrites live data in place.
//
// Compaction runs in the writer's process but off the write path: the
// expensive part (decode + recompress) works from a private mmap
// snapshot, and only the final hot-file rewrite-and-swap holds the
// write lock. That held duration is the compaction stall the store
// reports.
package recordstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/flow"
	"repro/netwide"
)

// Tiered directory file names.
const (
	hotFileName      = "hot.frec"
	manifestFileName = "MANIFEST.json"
	coldSegExt       = ".cseg"
	rollupSegExt     = ".rseg"
	manifestVersion  = 1
)

// TieredOptions configure a read-write tiered store.
type TieredOptions struct {
	// HotEpochs is how many recent epochs stay in the mmap hot tier.
	// Compaction migrates everything older into cold segments. Default 64.
	HotEpochs int
	// CompactEvery is the compaction cadence: once the hot tier holds
	// HotEpochs+CompactEvery epochs, the surplus is migrated (so each
	// cold segment holds about CompactEvery epochs). 0 disables automatic
	// compaction — Compact can still be called explicitly. Default is
	// HotEpochs when automatic compaction is wanted.
	CompactEvery int
	// Retain bounds how long lossless data is kept, measured against the
	// newest epoch's data timestamp (not wall clock, so replayed histories
	// behave deterministically). Cold segments entirely older than the
	// window are downsampled into rollups. 0 keeps everything lossless.
	Retain time.Duration
	// RollupK is how many exact top-count flows each rollup epoch keeps
	// from the epochs it folds. Default 1024.
	RollupK int
	// Sync is the hot writer's durability policy (see SyncPolicy).
	Sync SyncPolicy
	// BlockEpochs overrides the cold-segment compression block size.
	BlockEpochs int
	// OnCompact, when set, observes every compaction (automatic or
	// explicit) with its stats and error. Called from the compaction
	// goroutine.
	OnCompact func(CompactStats, error)
}

func (o *TieredOptions) fill() {
	if o.HotEpochs <= 0 {
		o.HotEpochs = 64
	}
	if o.RollupK <= 0 {
		o.RollupK = 1024
	}
}

// CompactStats reports what one Compact pass did.
type CompactStats struct {
	// Migrated is how many epochs moved from the hot tier into a new cold
	// segment (0 when the hot tier was within its window).
	Migrated int
	// RawBytes / SegmentBytes are the migrated epochs' hot-encoding size
	// and the resulting segment file size — the compression ratio.
	RawBytes     int64
	SegmentBytes int64
	// RolledUp is how many cold segments the retention pass downsampled.
	RolledUp int
	// StallNs is how long the hot-file rewrite held the write lock — the
	// only part of compaction the write path can block on.
	StallNs int64
}

// manifest is the on-disk segment index.
type manifest struct {
	Version     int            `json:"version"`
	Seq         uint64         `json:"seq"`
	CutoffNanos int64          `json:"cutoff_nanos"`
	Segments    []segmentEntry `json:"segments"`
}

// segmentEntry is one live segment: enough metadata to answer "which
// segments can hold epochs in [t0,t1)" without opening any of them.
type segmentEntry struct {
	File       string `json:"file"`
	Kind       string `json:"kind"`
	Epochs     int    `json:"epochs"`
	FromNanos  int64  `json:"from_nanos"`
	ToNanos    int64  `json:"to_nanos"`
	Bytes      int64  `json:"bytes"`
	SpanEpochs int    `json:"span_epochs"`
}

func readManifest(dir string) (manifest, error) {
	var m manifest
	data, err := os.ReadFile(filepath.Join(dir, manifestFileName))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{Version: manifestVersion}, nil
	}
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("recordstore: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return m, fmt.Errorf("recordstore: unsupported manifest version %d", m.Version)
	}
	return m, nil
}

// writeManifest publishes m atomically: temp file, fsync, rename, dir
// fsync.
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return atomicWriteFile(dir, manifestFileName, data)
}

func atomicWriteFile(dir, name string, data []byte) error {
	tmp := filepath.Join(dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Some filesystems refuse fsync on directories; the rename itself is
	// still atomic there, so degrade silently.
	_ = d.Sync()
	return nil
}

// Tiered is a tiered store open for writing: the handle a collector
// daemon holds. WriteEpoch appends to the hot tier; once the hot tier
// exceeds its window (and CompactEvery is set) a background pass
// migrates the surplus into cold segments and applies retention.
// Implements EpochWriter. WriteEpoch/Flush/Sync must be called from one
// goroutine (the Writer contract); Compact may run concurrently with
// them.
type Tiered struct {
	dir  string
	opts TieredOptions

	mu        sync.Mutex // guards fw swaps and the hot rewrite
	fw        *FileWriter
	fsyncBase uint64 // fsyncs from writers retired by hot rewrites
	metrics   *Metrics

	hotLive   atomic.Int64 // hot epochs past the manifest cutoff
	lastNanos atomic.Int64 // newest data timestamp seen (retention clock)

	compacting  atomic.Bool
	compactMu   sync.Mutex // serializes Compact passes (auto and explicit)
	lastStallNs atomic.Int64
	compactWG   sync.WaitGroup

	seq    atomic.Uint64 // last segment sequence number used
	closed atomic.Bool
}

// OpenTiered opens (creating if needed) the tiered store rooted at dir
// for appending: recovers the hot file's torn tail, garbage-collects
// segment files a crashed compaction left unpublished, and positions the
// hot writer after the last intact epoch. The Recovery describes the hot
// tier.
func OpenTiered(dir string, opts TieredOptions) (*Tiered, Recovery, error) {
	opts.fill()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, Recovery{}, err
	}
	man, err := readManifest(dir)
	if err != nil {
		return nil, Recovery{}, err
	}
	if err := gcOrphans(dir, man); err != nil {
		return nil, Recovery{}, err
	}
	fw, rec, err := OpenFile(filepath.Join(dir, hotFileName), opts.Sync)
	if err != nil {
		return nil, Recovery{}, err
	}
	t := &Tiered{dir: dir, opts: opts, fw: fw}
	t.seq.Store(man.Seq)
	for _, s := range man.Segments {
		if s.ToNanos > t.lastNanos.Load() {
			t.lastNanos.Store(s.ToNanos)
		}
	}
	if rec.Epochs > 0 {
		m, err := OpenMapped(filepath.Join(dir, hotFileName))
		if err != nil {
			fw.Close()
			return nil, Recovery{}, err
		}
		live := 0
		for i := 0; i < m.Epochs(); i++ {
			nanos := m.EpochTime(i).UnixNano()
			if nanos > man.CutoffNanos {
				live++
			}
			if nanos > t.lastNanos.Load() {
				t.lastNanos.Store(nanos)
			}
		}
		m.Close()
		t.hotLive.Store(int64(live))
	}
	return t, rec, nil
}

// gcOrphans removes segment files and temp files the manifest does not
// reference — debris from a compaction that crashed between a rename and
// its manifest publish. Only the read-write open may do this: a
// read-only opener racing a live compactor could otherwise delete a
// just-renamed segment about to be published.
func gcOrphans(dir string, man manifest) error {
	live := make(map[string]bool, len(man.Segments))
	for _, s := range man.Segments {
		live[s.File] = true
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
		case (strings.HasSuffix(name, coldSegExt) || strings.HasSuffix(name, rollupSegExt)) && !live[name]:
		default:
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return err
		}
	}
	return nil
}

// WriteEpoch appends one epoch to the hot tier and, when the hot window
// has overflowed by CompactEvery epochs, kicks off a background
// compaction.
func (t *Tiered) WriteEpoch(ts time.Time, records []flow.Record) error {
	t.mu.Lock()
	err := t.fw.WriteEpoch(ts, records)
	if err == nil {
		// Under mu so a concurrent rewriteHot (which counts kept epochs
		// and stores hotLive under the same lock) can't double-count this
		// epoch.
		t.hotLive.Add(1)
	}
	t.mu.Unlock()
	if err != nil {
		return err
	}
	if n := ts.UnixNano(); n > t.lastNanos.Load() {
		t.lastNanos.Store(n)
	}
	if t.opts.CompactEvery > 0 &&
		t.hotLive.Load() >= int64(t.opts.HotEpochs+t.opts.CompactEvery) &&
		t.compacting.CompareAndSwap(false, true) {
		t.compactWG.Add(1)
		go func() {
			defer t.compactWG.Done()
			defer t.compacting.Store(false)
			stats, err := t.Compact()
			if cb := t.opts.OnCompact; cb != nil {
				cb(stats, err)
			}
		}()
	}
	return nil
}

// Flush flushes the hot writer's buffered epochs.
func (t *Tiered) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fw.Flush()
}

// Sync is the everything-durable barrier: flush + fsync the hot tier.
// Segments are fsynced before they are published, so they need nothing
// at shutdown.
func (t *Tiered) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fw.Sync()
}

// Fsyncs counts hot-tier fsyncs across writer swaps.
func (t *Tiered) Fsyncs() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fsyncBase + t.fw.Fsyncs()
}

// LastFsyncNs returns the most recent hot-tier fsync duration.
func (t *Tiered) LastFsyncNs() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fw.LastFsyncNs()
}

// SetMetrics attaches write-side instruments, surviving writer swaps.
func (t *Tiered) SetMetrics(m *Metrics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.metrics = m
	t.fw.SetMetrics(m)
}

// LastStallNs returns the lock-held duration of the most recent hot
// rewrite (0 before the first compaction).
func (t *Tiered) LastStallNs() int64 { return t.lastStallNs.Load() }

// Dir returns the store's root directory.
func (t *Tiered) Dir() string { return t.dir }

// Close waits out any in-flight compaction (automatic or explicit),
// then syncs and closes the hot writer. Compact calls after Close fail.
func (t *Tiered) Close() error {
	t.compactWG.Wait()
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	t.closed.Store(true)
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.fw.Close()
}

// Compact runs one full compaction pass: migrate hot epochs beyond the
// window into a new cold segment, swap the trimmed hot file in, then
// apply retention (downsampling expired cold segments into rollups).
// Safe to call concurrently with WriteEpoch and with itself: passes are
// serialized internally, so an explicit call (e.g. a shutdown path)
// simply waits out any automatic pass still in flight rather than
// racing it for the same segment sequence number. Fails once the store
// is closed.
func (t *Tiered) Compact() (CompactStats, error) {
	t.compactMu.Lock()
	defer t.compactMu.Unlock()
	var stats CompactStats
	if t.closed.Load() {
		return stats, errors.New("recordstore: Compact on closed store")
	}
	if err := t.Flush(); err != nil {
		return stats, err
	}
	man, err := readManifest(t.dir)
	if err != nil {
		return stats, err
	}

	man, err = t.migrate(man, &stats)
	if err != nil {
		return stats, err
	}
	if err := t.retain(man, &stats); err != nil {
		return stats, err
	}
	return stats, nil
}

// migrate moves hot epochs beyond the window into one new cold segment
// and swaps in a trimmed hot file. Returns the manifest as published.
func (t *Tiered) migrate(man manifest, stats *CompactStats) (manifest, error) {
	hotPath := filepath.Join(t.dir, hotFileName)
	m, err := OpenMapped(hotPath)
	if err != nil {
		return man, err
	}
	defer m.Close()

	// Index the live (not-yet-migrated) hot epochs. A crash-leftover
	// prefix at or before the cutoff is already in segments.
	first := 0
	for first < m.Epochs() && m.EpochTime(first).UnixNano() <= man.CutoffNanos {
		first++
	}
	live := m.Epochs() - first
	migrate := live - t.opts.HotEpochs
	if migrate <= 0 {
		return man, nil
	}
	end := first + migrate
	// Never split a run of equal timestamps across the cutoff: read-side
	// dedup is "hot nanos <= cutoff means migrated", which must not
	// swallow a still-hot twin.
	for end > first && end < m.Epochs() &&
		m.EpochTime(end-1).UnixNano() == m.EpochTime(end).UnixNano() {
		end--
	}
	if end == first {
		return man, nil
	}

	seq := t.seq.Load() + 1
	segName := fmt.Sprintf("seg-%06d%s", seq, coldSegExt)
	tmp := filepath.Join(t.dir, segName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return man, err
	}
	sw := NewSegmentWriter(f, SegmentCold)
	if t.opts.BlockEpochs > 0 {
		sw.SetBlockEpochs(t.opts.BlockEpochs)
	}
	var buf []flow.Record
	var rawBytes int64
	for i := first; i < end; i++ {
		ep, err := m.AppendEpochAt(i, buf[:0])
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return man, fmt.Errorf("recordstore: compact: decode hot epoch %d: %w", i, err)
		}
		buf = ep.Records
		rawBytes += int64(m.metas[i].size)
		if err := sw.Add(SegmentEpoch{Time: ep.Time, Records: ep.Records}); err != nil {
			f.Close()
			os.Remove(tmp)
			return man, err
		}
	}
	if err := sw.Close(); err != nil {
		f.Close()
		os.Remove(tmp)
		return man, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return man, err
	}
	segBytes, _ := f.Seek(0, 2)
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return man, err
	}
	if err := os.Rename(tmp, filepath.Join(t.dir, segName)); err != nil {
		return man, err
	}
	if err := syncDir(t.dir); err != nil {
		return man, err
	}

	cutoff := m.EpochTime(end - 1).UnixNano()
	man.Seq = seq
	man.CutoffNanos = cutoff
	man.Segments = append(man.Segments, segmentEntry{
		File:       segName,
		Kind:       SegmentCold.String(),
		Epochs:     end - first,
		FromNanos:  m.EpochTime(first).UnixNano(),
		ToNanos:    cutoff,
		Bytes:      segBytes,
		SpanEpochs: end - first,
	})
	if err := writeManifest(t.dir, man); err != nil {
		return man, err
	}
	t.seq.Store(seq)

	stall, err := t.rewriteHot(cutoff)
	if err != nil {
		return man, err
	}
	stats.Migrated = end - first
	stats.RawBytes = rawBytes
	stats.SegmentBytes = segBytes
	stats.StallNs = stall
	t.lastStallNs.Store(stall)
	return man, nil
}

// rewriteHot rebuilds the hot file without the epochs at or before
// cutoff and swaps writers. The whole rewrite holds the write lock —
// the compaction stall — but the hot window is small by construction
// and the copy is raw frame bytes, no decode.
func (t *Tiered) rewriteHot(cutoff int64) (stallNs int64, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	start := time.Now()

	// Everything buffered must be on disk before the mmap snapshot, or
	// the rewrite would silently drop epochs appended since Compact
	// started.
	if err := t.fw.Sync(); err != nil {
		return 0, err
	}
	hotPath := filepath.Join(t.dir, hotFileName)
	m, err := OpenMapped(hotPath)
	if err != nil {
		return 0, err
	}
	defer m.Close()

	tmp := hotPath + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	cleanup := func(e error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, e
	}
	if _, err := f.Write(append([]byte(magic), version)); err != nil {
		return cleanup(err)
	}
	kept := 0
	for i := 0; i < m.Epochs(); i++ {
		if m.EpochTime(i).UnixNano() <= cutoff {
			continue
		}
		// Raw frame copy: the length varint directly precedes the body.
		meta := m.metas[i]
		frameStart := meta.off - uvarintLen(uint64(meta.size))
		if _, err := f.Write(m.data[frameStart : meta.off+meta.size]); err != nil {
			return cleanup(err)
		}
		kept++
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, hotPath); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := syncDir(t.dir); err != nil {
		return 0, err
	}

	// Swap writers: retire the handle still bound to the old inode and
	// reopen on the renamed file. OpenFile re-verifies the tail we just
	// wrote; with the hot window small, that decode is cheap.
	old := t.fw
	t.fsyncBase += old.Fsyncs()
	if err := old.f.Close(); err != nil {
		return 0, err
	}
	fw, _, err := OpenFile(hotPath, t.opts.Sync)
	if err != nil {
		return 0, fmt.Errorf("recordstore: compact: reopen hot writer: %w", err)
	}
	if t.metrics != nil {
		fw.SetMetrics(t.metrics)
	}
	t.fw = fw
	t.hotLive.Store(int64(kept))
	return time.Since(start).Nanoseconds(), nil
}

// retain downsamples cold segments that have aged out of the lossless
// window into rollup segments: one epoch per segment holding the exact
// top-K flows of the merged run plus exact aggregate totals.
func (t *Tiered) retain(man manifest, stats *CompactStats) error {
	if t.opts.Retain <= 0 {
		return nil
	}
	horizon := t.lastNanos.Load() - t.opts.Retain.Nanoseconds()
	for i, entry := range man.Segments {
		if entry.Kind != SegmentCold.String() || entry.ToNanos >= horizon {
			continue
		}
		newMan, err := t.rollupSegment(man, i)
		if err != nil {
			return err
		}
		man = newMan
		stats.RolledUp++
	}
	return nil
}

// rollupSegment replaces man.Segments[i] (a cold segment) with its
// rollup, publishing the swap through the manifest before deleting the
// cold file.
func (t *Tiered) rollupSegment(man manifest, i int) (manifest, error) {
	entry := man.Segments[i]
	seg, err := OpenSegment(filepath.Join(t.dir, entry.File))
	if err != nil {
		return man, err
	}
	rolled, err := buildRollup(seg, t.opts.RollupK)
	seg.Close()
	if err != nil {
		return man, err
	}

	seq := t.seq.Load() + 1
	segName := fmt.Sprintf("seg-%06d%s", seq, rollupSegExt)
	tmp := filepath.Join(t.dir, segName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return man, err
	}
	sw := NewSegmentWriter(f, SegmentRollup)
	if err := sw.Add(rolled); err == nil {
		err = sw.Close()
	}
	if err == nil {
		err = f.Sync()
	}
	segBytes, _ := f.Seek(0, 2)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return man, err
	}
	if err := os.Rename(tmp, filepath.Join(t.dir, segName)); err != nil {
		return man, err
	}
	if err := syncDir(t.dir); err != nil {
		return man, err
	}

	man.Seq = seq
	man.Segments[i] = segmentEntry{
		File:       segName,
		Kind:       SegmentRollup.String(),
		Epochs:     1,
		FromNanos:  entry.FromNanos,
		ToNanos:    entry.ToNanos,
		Bytes:      segBytes,
		SpanEpochs: entry.SpanEpochs,
	}
	if err := writeManifest(t.dir, man); err != nil {
		return man, err
	}
	t.seq.Store(seq)
	// Published; the cold file is now garbage. Best-effort delete — a
	// leftover is collected at the next open.
	os.Remove(filepath.Join(t.dir, entry.File))
	return man, nil
}

// buildRollup folds every epoch of a cold segment into one downsampled
// epoch: flows merged by key with summed counts, cut to the exact top-K
// by merged count, re-sorted by key (the order segments store records
// in), plus exact aggregate totals over everything including the
// dropped tail.
func buildRollup(seg *Segment, k int) (SegmentEpoch, error) {
	views := make([]netwide.View, 0, seg.Epochs())
	var totalRecords, totalPackets uint64
	var span int
	for i := 0; i < seg.Epochs(); i++ {
		ep, err := seg.AppendEpochAt(i, nil)
		if err != nil {
			return SegmentEpoch{}, fmt.Errorf("recordstore: rollup: decode epoch %d: %w", i, err)
		}
		views = append(views, netwide.View{Name: "epoch", Records: ep.Records})
		info := seg.EpochInfo(i)
		totalRecords += info.TotalRecords
		totalPackets += info.TotalPackets
		span += info.Span
	}
	merged := netwide.MergeSumInto(nil, views...)
	if len(merged) > k {
		slices.SortFunc(merged, func(a, b flow.Record) int {
			if a.Count != b.Count {
				if a.Count > b.Count {
					return -1
				}
				return 1
			}
			if lessWords(a.Key, b.Key) {
				return -1
			}
			return 1
		})
		merged = merged[:k]
		slices.SortFunc(merged, func(a, b flow.Record) int {
			if a.Key == b.Key {
				return 0
			}
			if lessWords(a.Key, b.Key) {
				return -1
			}
			return 1
		})
	}
	var first time.Time
	if seg.Epochs() > 0 {
		first = seg.EpochTime(0)
	}
	return SegmentEpoch{
		Time:         first,
		Records:      merged,
		Span:         span,
		TotalRecords: totalRecords,
		TotalPackets: totalPackets,
	}, nil
}

// uvarintLen returns how many bytes binary.PutUvarint uses for x.
func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// tieredEntry maps one global epoch index to its physical location.
type tieredEntry struct {
	seg   int // index into TieredSource.segs, -1 for the hot tier
	local int
	nanos int64
}

// TieredSource is a tiered store opened for reading: cold and rollup
// segments per the manifest, then the live hot epochs, addressed as one
// dense time-ordered epoch index. Implements EpochSource, InfoSource and
// TruncatedSource. Safe for concurrent use.
type TieredSource struct {
	segs    []*Segment
	hot     *Mapped
	entries []tieredEntry

	// hotDecodes counts AppendEpochAt calls served by the hot tier —
	// the observable proving cold-range queries never touch hot-resident
	// epochs.
	hotDecodes atomic.Uint64
}

// errManifestChanged signals that a compactor published a new manifest
// between openTieredOnce's manifest read and its hot-file open: the
// segments opened reflect the old manifest while the hot file may
// already be trimmed past the new cutoff, so the combined view could
// silently miss the just-migrated epochs. Retrying converges because
// every manifest publish strictly advances Seq.
var errManifestChanged = errors.New("recordstore: manifest changed during open")

// OpenTieredSource opens the tiered store directory at dir read-only. A
// compactor mutating the directory mid-open surfaces either as ENOENT
// (a manifest-listed segment retired before we opened it) or as a
// manifest Seq advance (the hot file trimmed under us); both re-read
// the manifest and retry, which converges because every manifest
// publish strictly advances.
func OpenTieredSource(dir string) (*TieredSource, error) {
	var lastErr error
	for attempt := 0; attempt < 5; attempt++ {
		src, err := openTieredOnce(dir)
		if err == nil {
			return src, nil
		}
		if !errors.Is(err, os.ErrNotExist) && !errors.Is(err, errManifestChanged) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("recordstore: tiered open kept racing compaction: %w", lastErr)
}

func openTieredOnce(dir string) (*TieredSource, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	src := &TieredSource{}
	ok := false
	defer func() {
		if !ok {
			src.Close()
		}
	}()

	for _, entry := range man.Segments {
		seg, err := OpenSegment(filepath.Join(dir, entry.File))
		if err != nil {
			return nil, err
		}
		src.segs = append(src.segs, seg)
	}

	hotPath := filepath.Join(dir, hotFileName)
	if st, err := os.Stat(hotPath); err == nil && st.Size() > int64(len(magic)) {
		m, err := OpenMapped(hotPath)
		if err != nil {
			return nil, err
		}
		src.hot = m
	} else if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}

	// The hot file was opened after the segments; if a compactor
	// published a manifest in between, the hot mapping may already be
	// trimmed to a newer cutoff than the segment set covers. Re-read and
	// compare: any publish bumps Seq, so an unchanged Seq proves the
	// segments and hot snapshot describe the same store generation.
	man2, err := readManifest(dir)
	if err != nil {
		return nil, err
	}
	if man2.Seq != man.Seq {
		return nil, errManifestChanged
	}

	for si, seg := range src.segs {
		for i := 0; i < seg.Epochs(); i++ {
			src.entries = append(src.entries, tieredEntry{seg: si, local: i, nanos: seg.metas[i].nanos})
		}
	}
	if src.hot != nil {
		for i := 0; i < src.hot.Epochs(); i++ {
			nanos := src.hot.metas[i].nanos
			if nanos <= man.CutoffNanos {
				// Migrated but not yet trimmed (crash window); the segment
				// copy is authoritative.
				continue
			}
			src.entries = append(src.entries, tieredEntry{seg: -1, local: i, nanos: nanos})
		}
	}
	ok = true
	return src, nil
}

// Epochs returns the total epoch count across tiers.
func (s *TieredSource) Epochs() int { return len(s.entries) }

// EpochTime returns epoch i's timestamp.
func (s *TieredSource) EpochTime(i int) time.Time {
	return time.Unix(0, s.entries[i].nanos).UTC()
}

// EpochLen returns epoch i's stored record count.
func (s *TieredSource) EpochLen(i int) int {
	e := s.entries[i]
	if e.seg < 0 {
		return s.hot.EpochLen(e.local)
	}
	return s.segs[e.seg].EpochLen(e.local)
}

// AppendEpochAt decodes epoch i from whichever tier holds it.
func (s *TieredSource) AppendEpochAt(i int, dst []flow.Record) (Epoch, error) {
	if i < 0 || i >= len(s.entries) {
		return Epoch{}, fmt.Errorf("recordstore: epoch %d out of range [0,%d)", i, len(s.entries))
	}
	e := s.entries[i]
	if e.seg < 0 {
		s.hotDecodes.Add(1)
		return s.hot.AppendEpochAt(e.local, dst)
	}
	return s.segs[e.seg].AppendEpochAt(e.local, dst)
}

// EpochInfo implements InfoSource with the holding tier's metadata.
func (s *TieredSource) EpochInfo(i int) EpochInfo {
	e := s.entries[i]
	if e.seg < 0 {
		return s.hot.EpochInfo(e.local)
	}
	return s.segs[e.seg].EpochInfo(e.local)
}

// Range returns [lo, hi) over the unified index by binary search on the
// per-epoch timestamps — cross-tier time ranges never decode records.
func (s *TieredSource) Range(t0, t1 time.Time) (lo, hi int) {
	lo = s.searchNanos(t0.UnixNano())
	if t1.IsZero() {
		return lo, len(s.entries)
	}
	return lo, s.searchNanos(t1.UnixNano())
}

func (s *TieredSource) searchNanos(nanos int64) int {
	lo, hi := 0, len(s.entries)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.entries[mid].nanos < nanos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Truncated reports whether the hot tier ended in a torn frame.
func (s *TieredSource) Truncated() bool {
	return s.hot != nil && s.hot.Truncated()
}

// HotDecodes returns how many epoch decodes the hot tier has served —
// zero after a purely-cold time-range query, which is how tests pin
// "long-range queries don't scan the hot tier".
func (s *TieredSource) HotDecodes() uint64 { return s.hotDecodes.Load() }

// Segments returns how many segments back the source.
func (s *TieredSource) Segments() int { return len(s.segs) }

// Close releases every tier.
func (s *TieredSource) Close() error {
	var first error
	for _, seg := range s.segs {
		if err := seg.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.segs = nil
	if s.hot != nil {
		if err := s.hot.Close(); err != nil && first == nil {
			first = err
		}
		s.hot = nil
	}
	s.entries = nil
	return first
}
