//go:build unix

package recordstore

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. A zero-length file maps to an
// empty slice (mmap rejects length 0). The returned release function
// unmaps; it is nil when nothing needs releasing.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	if size == 0 {
		return nil, nil, nil
	}
	if size != int64(int(size)) {
		return nil, nil, syscall.EFBIG
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (some network mounts) fall back
		// to reading the file into memory; the index and decode paths are
		// byte-oriented either way.
		return readFallback(f, size)
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
