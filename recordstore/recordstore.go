// Package recordstore persists epochs of flow records in a compact binary
// file format, the role nfcapd-style capture files play behind a NetFlow
// collector. Records are sorted by key and delta/varint-encoded, so large
// epochs compress well without any external compression library.
//
// File layout:
//
//	magic "FREC" | version u8 | epoch count (appended incrementally)
//	per epoch: header (unix nanos, record count) followed by records
//	encoded as varint deltas over the sorted key stream.
package recordstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/flow"
)

// Format constants.
const (
	magic   = "FREC"
	version = 1
)

// ErrNotStore is returned when a stream does not begin with the store magic.
var ErrNotStore = errors.New("recordstore: not a record store stream")

// Epoch is one stored measurement epoch.
type Epoch struct {
	// Time is the epoch's export timestamp.
	Time time.Time
	// Records are the epoch's flow records, sorted by key.
	Records []flow.Record
}

// Writer appends epochs to an underlying stream.
type Writer struct {
	w       *bufio.Writer
	started bool
	epochs  uint64
	scratch []flow.Record
	buf     []byte
}

// NewWriter wraps w. The file header is written on the first epoch (or by
// Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) writeHeader() error {
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	if err := w.w.WriteByte(version); err != nil {
		return err
	}
	w.started = true
	return nil
}

// WriteEpoch appends one epoch. The input slice is not modified.
func (w *Writer) WriteEpoch(ts time.Time, records []flow.Record) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return fmt.Errorf("recordstore: write header: %w", err)
		}
	}
	// Sort a scratch copy by packed key for delta encoding.
	w.scratch = append(w.scratch[:0], records...)
	sort.Slice(w.scratch, func(i, j int) bool {
		return lessWords(w.scratch[i].Key, w.scratch[j].Key)
	})

	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(ts.UnixNano()))
	w.buf = binary.AppendUvarint(w.buf, uint64(len(w.scratch)))
	var prev1, prev2 uint64
	for _, r := range w.scratch {
		w1, w2 := r.Key.Words()
		// Keys are sorted, so w1 deltas are non-negative and tiny for
		// adjacent prefixes; w2 is sent raw when w1 repeats, delta-coded
		// by XOR otherwise (XOR of similar words has many leading zeros
		// in neither — simply send varint of w2 ^ prev2).
		w.buf = binary.AppendUvarint(w.buf, w1-prev1)
		w.buf = binary.AppendUvarint(w.buf, w2^prev2)
		w.buf = binary.AppendUvarint(w.buf, uint64(r.Count))
		prev1, prev2 = w1, w2
	}
	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(w.buf)))
	if _, err := w.w.Write(lenBuf[:n]); err != nil {
		return fmt.Errorf("recordstore: write epoch length: %w", err)
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("recordstore: write epoch body: %w", err)
	}
	w.epochs++
	return nil
}

// Epochs returns how many epochs were written.
func (w *Writer) Epochs() uint64 { return w.epochs }

// Flush writes buffered data (and the header if nothing was written yet).
func (w *Writer) Flush() error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Reader reads epochs back from a stream produced by Writer.
type Reader struct {
	r       *bufio.Reader
	started bool
	buf     []byte
}

// NewReader wraps r; the header is validated on the first read.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) readHeader() error {
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return fmt.Errorf("recordstore: read header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return ErrNotStore
	}
	if hdr[4] != version {
		return fmt.Errorf("recordstore: unsupported version %d", hdr[4])
	}
	r.started = true
	return nil
}

// ReadEpoch returns the next epoch, or io.EOF cleanly at end of stream.
func (r *Reader) ReadEpoch() (Epoch, error) {
	if !r.started {
		if err := r.readHeader(); err != nil {
			return Epoch{}, err
		}
	}
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Epoch{}, io.EOF
		}
		return Epoch{}, fmt.Errorf("recordstore: read epoch length: %w", err)
	}
	if size > 1<<31 {
		return Epoch{}, fmt.Errorf("recordstore: implausible epoch size %d", size)
	}
	if cap(r.buf) < int(size) {
		r.buf = make([]byte, size)
	}
	r.buf = r.buf[:size]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return Epoch{}, fmt.Errorf("recordstore: read epoch body: %w", err)
	}

	body := r.buf
	nanos, n := binary.Uvarint(body)
	if n <= 0 {
		return Epoch{}, errors.New("recordstore: corrupt epoch timestamp")
	}
	body = body[n:]
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return Epoch{}, errors.New("recordstore: corrupt record count")
	}
	body = body[n:]
	if count > 1<<28 {
		return Epoch{}, fmt.Errorf("recordstore: implausible record count %d", count)
	}

	ep := Epoch{
		Time:    time.Unix(0, int64(nanos)).UTC(),
		Records: make([]flow.Record, 0, count),
	}
	var prev1, prev2 uint64
	for i := uint64(0); i < count; i++ {
		d1, n1 := binary.Uvarint(body)
		if n1 <= 0 {
			return Epoch{}, fmt.Errorf("recordstore: corrupt record %d", i)
		}
		body = body[n1:]
		x2, n2 := binary.Uvarint(body)
		if n2 <= 0 {
			return Epoch{}, fmt.Errorf("recordstore: corrupt record %d", i)
		}
		body = body[n2:]
		cnt, n3 := binary.Uvarint(body)
		if n3 <= 0 || cnt > 0xFFFFFFFF {
			return Epoch{}, fmt.Errorf("recordstore: corrupt count in record %d", i)
		}
		body = body[n3:]

		w1 := prev1 + d1
		w2 := prev2 ^ x2
		key, err := keyFromWords(w1, w2)
		if err != nil {
			return Epoch{}, fmt.Errorf("recordstore: record %d: %w", i, err)
		}
		ep.Records = append(ep.Records, flow.Record{Key: key, Count: uint32(cnt)})
		prev1, prev2 = w1, w2
	}
	if len(body) != 0 {
		return Epoch{}, fmt.Errorf("recordstore: %d trailing bytes in epoch", len(body))
	}
	return ep, nil
}

// ReadAll drains every remaining epoch.
func (r *Reader) ReadAll() ([]Epoch, error) {
	var out []Epoch
	for {
		ep, err := r.ReadEpoch()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ep)
	}
}

// lessWords orders keys by their packed two-word encoding.
func lessWords(a, b flow.Key) bool {
	a1, a2 := a.Words()
	b1, b2 := b.Words()
	if a1 != b1 {
		return a1 < b1
	}
	return a2 < b2
}

// keyFromWords inverts flow.Key.Words. The packing leaves bits 40..63 of
// the second word unused; non-zero garbage there signals corruption.
func keyFromWords(w1, w2 uint64) (flow.Key, error) {
	if w2>>40 != 0 {
		return flow.Key{}, fmt.Errorf("invalid packed key word %#x", w2)
	}
	return flow.Key{
		SrcIP:   uint32(w1 >> 32),
		DstIP:   uint32(w1),
		SrcPort: uint16(w2 >> 24),
		DstPort: uint16(w2 >> 8),
		Proto:   uint8(w2),
	}, nil
}
