// Package recordstore persists epochs of flow records in a compact binary
// file format, the role nfcapd-style capture files play behind a NetFlow
// collector. Records are sorted by key and delta/varint-encoded, so large
// epochs compress well without any external compression library.
//
// File layout:
//
//	magic "FREC" | version u8 | epoch count (appended incrementally)
//	per epoch: header (unix nanos, record count) followed by records
//	encoded as varint deltas over the sorted key stream.
package recordstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync/atomic"
	"time"

	"repro/flow"
)

// Format constants.
const (
	magic   = "FREC"
	version = 1
)

// ErrNotStore is returned when a stream does not begin with the store magic.
var ErrNotStore = errors.New("recordstore: not a record store stream")

// Epoch is one stored measurement epoch.
type Epoch struct {
	// Time is the epoch's export timestamp.
	Time time.Time
	// Records are the epoch's flow records, sorted by key.
	Records []flow.Record
}

// Writer appends epochs to an underlying stream. All sorting and encoding
// scratch is owned by the Writer and reused, so steady-state WriteEpoch
// calls are allocation-free once the buffers have grown to epoch size.
type Writer struct {
	w       *bufio.Writer
	started bool
	epochs  uint64
	scratch []packedRec
	alt     []packedRec // radix-sort ping-pong buffer
	buf     []byte
	lenBuf  [binary.MaxVarintLen64]byte // framing scratch: a local would escape into w.w.Write
	counts  [radixPasses][256]uint32

	// Durability policy (see durable.go); zero means never sync.
	syncer      Syncer
	policy      SyncPolicy
	lastSync    time.Time
	fsyncs      atomic.Uint64
	lastFsyncNs atomic.Int64

	// Optional write-side instruments (see metrics.go); nil-safe.
	metrics *Metrics
}

// packedRec is a record pre-packed into its two key words, the form both
// the sort comparisons and the delta encoder consume.
type packedRec struct {
	w1, w2 uint64
	count  uint32
}

// NewWriter wraps w. The file header is written on the first epoch (or by
// Flush).
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

func (w *Writer) writeHeader() error {
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	if err := w.w.WriteByte(version); err != nil {
		return err
	}
	w.started = true
	return nil
}

// WriteEpoch appends one epoch. The input slice is not modified.
func (w *Writer) WriteEpoch(ts time.Time, records []flow.Record) error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return fmt.Errorf("recordstore: write header: %w", err)
		}
	}
	// Pack a scratch copy into key words and sort it for delta encoding.
	w.scratch = slices.Grow(w.scratch[:0], len(records))
	for _, r := range records {
		w1, w2 := r.Key.Words()
		w.scratch = append(w.scratch, packedRec{w1: w1, w2: w2, count: r.Count})
	}
	w.sortScratch()

	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(ts.UnixNano()))
	w.buf = binary.AppendUvarint(w.buf, uint64(len(w.scratch)))
	var prev1, prev2 uint64
	for _, r := range w.scratch {
		// Keys are sorted, so w1 deltas are non-negative and tiny for
		// adjacent prefixes; w2 is sent raw when w1 repeats, delta-coded
		// by XOR otherwise (XOR of similar words has many leading zeros
		// in neither — simply send varint of w2 ^ prev2).
		w.buf = binary.AppendUvarint(w.buf, r.w1-prev1)
		w.buf = binary.AppendUvarint(w.buf, r.w2^prev2)
		w.buf = binary.AppendUvarint(w.buf, uint64(r.count))
		prev1, prev2 = r.w1, r.w2
	}
	n := binary.PutUvarint(w.lenBuf[:], uint64(len(w.buf)))
	if _, err := w.w.Write(w.lenBuf[:n]); err != nil {
		return fmt.Errorf("recordstore: write epoch length: %w", err)
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return fmt.Errorf("recordstore: write epoch body: %w", err)
	}
	w.epochs++
	if m := w.metrics; m != nil {
		m.EpochsWritten.Inc()
		m.BytesWritten.Add(uint64(n + len(w.buf)))
	}
	return w.maybeSync()
}

// radixPasses is one pass per significant byte of the packed 104-bit key:
// five bytes of w2 (ports and protocol) then eight bytes of w1 (addresses),
// least significant first.
const radixPasses = 13

// radixMinLen is the epoch size below which the O(n log n) comparison sort
// beats the 13-pass distribution sort's fixed cost.
const radixMinLen = 192

// sortScratch orders the packed scratch records by key (w1, then w2).
// Small epochs take a typed comparison sort; larger ones an LSD radix sort
// over the 13 significant key bytes, skipping passes whose byte is uniform
// across the epoch (ubiquitous for the protocol byte and common port
// prefixes). Both paths sort without allocating beyond the Writer's
// reusable ping-pong buffer.
func (w *Writer) sortScratch() {
	n := len(w.scratch)
	if n < radixMinLen {
		slices.SortFunc(w.scratch, func(a, b packedRec) int {
			switch {
			case a.w1 != b.w1:
				if a.w1 < b.w1 {
					return -1
				}
				return 1
			case a.w2 != b.w2:
				if a.w2 < b.w2 {
					return -1
				}
				return 1
			default:
				return 0
			}
		})
		return
	}

	// One scan fills the histograms of every pass. (Cleared with a loop:
	// assigning a 13KB composite literal materializes it on the heap.)
	for p := range w.counts {
		clear(w.counts[p][:])
	}
	for _, r := range w.scratch {
		for p := 0; p < 5; p++ {
			w.counts[p][byte(r.w2>>(8*p))]++
		}
		for p := 0; p < 8; p++ {
			w.counts[5+p][byte(r.w1>>(8*p))]++
		}
	}

	w.alt = slices.Grow(w.alt[:0], n)[:n]
	src, dst := w.scratch, w.alt
	for p := 0; p < radixPasses; p++ {
		c := &w.counts[p]
		// Uniform byte → the pass is the identity permutation; skip it.
		if c[radixByte(src[0], p)] == uint32(n) {
			continue
		}
		// Histogram → starting offsets.
		var sum uint32
		for b := 0; b < 256; b++ {
			cnt := c[b]
			c[b] = sum
			sum += cnt
		}
		for _, r := range src {
			b := radixByte(r, p)
			dst[c[b]] = r
			c[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &w.scratch[0] {
		copy(w.scratch, src)
	}
}

// radixByte extracts the pass'th least significant key byte: w2 carries the
// low five bytes (40 significant bits), w1 the upper eight.
func radixByte(r packedRec, pass int) byte {
	if pass < 5 {
		return byte(r.w2 >> (8 * uint(pass)))
	}
	return byte(r.w1 >> (8 * uint(pass-5)))
}

// Epochs returns how many epochs were written.
func (w *Writer) Epochs() uint64 { return w.epochs }

// Flush writes buffered data (and the header if nothing was written yet).
func (w *Writer) Flush() error {
	if !w.started {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Reader reads epochs back from a stream produced by Writer.
type Reader struct {
	r       *bufio.Reader
	started bool
	buf     []byte
}

// NewReader wraps r; the header is validated on the first read.
//
// Constructing a Reader directly is deprecated outside this package:
// it hard-codes the flat hot-file layout and streams epochs in file
// order only. Call sites should use recordstore.Open, which serves any
// store layout (flat file or tiered directory) through EpochSource with
// random access.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReader(r)}
}

func (r *Reader) readHeader() error {
	var hdr [5]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		return fmt.Errorf("recordstore: read header: %w", err)
	}
	if string(hdr[:4]) != magic {
		return ErrNotStore
	}
	if hdr[4] != version {
		return fmt.Errorf("recordstore: unsupported version %d", hdr[4])
	}
	r.started = true
	return nil
}

// ReadEpoch returns the next epoch, or io.EOF cleanly at end of stream.
func (r *Reader) ReadEpoch() (Epoch, error) {
	return r.ReadEpochAppend(nil)
}

// ReadEpochAppend returns the next epoch with its records appended to dst,
// or io.EOF cleanly at end of stream. The returned Epoch's Records shares
// dst's backing array, so replaying a store through one reused buffer
// (ReadEpochAppend(buf[:0])) decodes epochs without allocating once the
// buffer has grown to epoch size. On error the (possibly partially
// appended) dst is discarded and a zero Epoch is returned.
func (r *Reader) ReadEpochAppend(dst []flow.Record) (Epoch, error) {
	if !r.started {
		if err := r.readHeader(); err != nil {
			return Epoch{}, err
		}
	}
	size, err := binary.ReadUvarint(r.r)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Epoch{}, io.EOF
		}
		return Epoch{}, fmt.Errorf("recordstore: read epoch length: %w", err)
	}
	if size > 1<<31 {
		return Epoch{}, fmt.Errorf("recordstore: implausible epoch size %d", size)
	}
	if cap(r.buf) < int(size) {
		r.buf = make([]byte, size)
	}
	r.buf = r.buf[:size]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return Epoch{}, fmt.Errorf("recordstore: read epoch body: %w", err)
	}

	return decodeEpochBody(r.buf, dst)
}

// decodeEpochBody decodes one epoch frame body (timestamp, count, delta
// stream) appending its records to dst. It is the single decoder behind
// both the streaming Reader and the mapped store, so the two read paths
// are identical by construction. On error dst is discarded and a zero
// Epoch is returned.
func decodeEpochBody(body []byte, dst []flow.Record) (Epoch, error) {
	nanos, n := binary.Uvarint(body)
	if n <= 0 {
		return Epoch{}, errors.New("recordstore: corrupt epoch timestamp")
	}
	body = body[n:]
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return Epoch{}, errors.New("recordstore: corrupt record count")
	}
	body = body[n:]
	if count > 1<<28 {
		return Epoch{}, fmt.Errorf("recordstore: implausible record count %d", count)
	}

	dst = slices.Grow(dst, int(count))
	ep := Epoch{
		Time:    time.Unix(0, int64(nanos)).UTC(),
		Records: dst,
	}
	var prev1, prev2 uint64
	for i := uint64(0); i < count; i++ {
		d1, n1 := binary.Uvarint(body)
		if n1 <= 0 {
			return Epoch{}, fmt.Errorf("recordstore: corrupt record %d", i)
		}
		body = body[n1:]
		x2, n2 := binary.Uvarint(body)
		if n2 <= 0 {
			return Epoch{}, fmt.Errorf("recordstore: corrupt record %d", i)
		}
		body = body[n2:]
		cnt, n3 := binary.Uvarint(body)
		if n3 <= 0 || cnt > 0xFFFFFFFF {
			return Epoch{}, fmt.Errorf("recordstore: corrupt count in record %d", i)
		}
		body = body[n3:]

		w1 := prev1 + d1
		w2 := prev2 ^ x2
		key, err := keyFromWords(w1, w2)
		if err != nil {
			return Epoch{}, fmt.Errorf("recordstore: record %d: %w", i, err)
		}
		ep.Records = append(ep.Records, flow.Record{Key: key, Count: uint32(cnt)})
		prev1, prev2 = w1, w2
	}
	if len(body) != 0 {
		return Epoch{}, fmt.Errorf("recordstore: %d trailing bytes in epoch", len(body))
	}
	return ep, nil
}

// ReadAll drains every remaining epoch.
func (r *Reader) ReadAll() ([]Epoch, error) {
	var out []Epoch
	for {
		ep, err := r.ReadEpoch()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, ep)
	}
}

// lessWords orders keys by their packed two-word encoding.
func lessWords(a, b flow.Key) bool {
	a1, a2 := a.Words()
	b1, b2 := b.Words()
	if a1 != b1 {
		return a1 < b1
	}
	return a2 < b2
}

// keyFromWords inverts flow.Key.Words. The packing leaves bits 40..63 of
// the second word unused; non-zero garbage there signals corruption.
func keyFromWords(w1, w2 uint64) (flow.Key, error) {
	if w2>>40 != 0 {
		return flow.Key{}, fmt.Errorf("invalid packed key word %#x", w2)
	}
	return flow.Key{
		SrcIP:   uint32(w1 >> 32),
		DstIP:   uint32(w1),
		SrcPort: uint16(w2 >> 24),
		DstPort: uint16(w2 >> 8),
		Proto:   uint8(w2),
	}, nil
}
