// Mapped store: the random-access read path. Instead of streaming a store
// file through bufio (one pass, one copy per epoch body), OpenMapped maps
// the file into memory, builds a per-epoch offset index in one header-only
// scan, and decodes any epoch directly from the mapped bytes — no
// syscalls, no body copy, and no need to replay earlier epochs to reach a
// later one. Historical queries (flowqueryd's /flows, /epochs) address
// epochs by index or by time range without touching the rest of the file.
package recordstore

import (
	"encoding/binary"
	"fmt"
	"os"
	"time"

	"repro/flow"
)

// epochMeta is one indexed epoch: where its frame body lives in the
// mapped data and the header fields every listing needs.
type epochMeta struct {
	off   int   // body offset (after the frame length varint)
	size  int   // body length in bytes
	nanos int64 // header timestamp
	count int   // header record count
}

// Mapped is a record store opened for random access. The epoch index is
// built once on open; decoding methods are safe for concurrent use (they
// only read the mapped bytes and caller-provided buffers).
type Mapped struct {
	data  []byte
	metas []epochMeta
	unmap func() error
	trunc bool // file ended inside an epoch frame (live writer tail)
}

// OpenMapped maps the store file at path and indexes its epochs. A
// truncated final epoch frame — the normal state of a store still being
// written — is tolerated: the index stops before it and Truncated reports
// the condition. Close releases the mapping.
//
// Calling OpenMapped directly is deprecated outside this package: it
// only understands the flat hot-file layout. Call sites should use
// recordstore.Open, which auto-detects flat files and tiered
// directories and returns either through the same EpochSource surface.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, unmap, err := mapFile(f, st.Size())
	if err != nil {
		return nil, fmt.Errorf("recordstore: map %s: %w", path, err)
	}
	m, err := newMapped(data, unmap)
	if err != nil {
		if unmap != nil {
			unmap()
		}
		return nil, err
	}
	return m, nil
}

// NewMappedBytes indexes an in-memory store image (testing, fuzzing, or a
// store already held in memory). The returned Mapped references data
// directly; Close is a no-op.
func NewMappedBytes(data []byte) (*Mapped, error) {
	return newMapped(data, nil)
}

func newMapped(data []byte, unmap func() error) (*Mapped, error) {
	m := &Mapped{data: data, unmap: unmap}
	if len(data) < len(magic)+1 {
		return nil, ErrNotStore
	}
	if string(data[:len(magic)]) != magic {
		return nil, ErrNotStore
	}
	if data[len(magic)] != version {
		return nil, fmt.Errorf("recordstore: unsupported version %d", data[len(magic)])
	}
	if err := m.buildIndex(len(magic) + 1); err != nil {
		return nil, err
	}
	return m, nil
}

// buildIndex scans the epoch frames once, reading only the frame length
// and the two header varints of each epoch and skipping the record
// stream. A frame that runs past the end of the data marks a truncated
// tail and ends the index.
func (m *Mapped) buildIndex(off int) error {
	for off < len(m.data) {
		size, n := binary.Uvarint(m.data[off:])
		if n <= 0 || size >= 1<<31 {
			// An unterminated or absurd length varint at the tail is a
			// partial frame still being written; mid-file it is corruption,
			// but the two are indistinguishable without a footer. Stop.
			m.trunc = true
			return nil
		}
		body := off + n
		if body+int(size) > len(m.data) {
			m.trunc = true
			return nil
		}
		frame := m.data[body : body+int(size)]
		nanos, hn := binary.Uvarint(frame)
		if hn <= 0 {
			return fmt.Errorf("recordstore: epoch %d: corrupt timestamp", len(m.metas))
		}
		count, cn := binary.Uvarint(frame[hn:])
		if cn <= 0 {
			return fmt.Errorf("recordstore: epoch %d: corrupt record count", len(m.metas))
		}
		if count > 1<<28 {
			return fmt.Errorf("recordstore: epoch %d: implausible record count %d", len(m.metas), count)
		}
		m.metas = append(m.metas, epochMeta{
			off:   body,
			size:  int(size),
			nanos: int64(nanos),
			count: int(count),
		})
		off = body + int(size)
	}
	return nil
}

// Epochs returns how many complete epochs the store holds.
func (m *Mapped) Epochs() int { return len(m.metas) }

// Truncated reports whether the file ended inside an epoch frame (a store
// still being appended to); the partial frame is not indexed.
func (m *Mapped) Truncated() bool { return m.trunc }

// Size returns the mapped data length in bytes.
func (m *Mapped) Size() int { return len(m.data) }

// EpochTime returns epoch i's export timestamp without decoding records.
func (m *Mapped) EpochTime(i int) time.Time {
	return time.Unix(0, m.metas[i].nanos).UTC()
}

// EpochLen returns epoch i's record count without decoding records.
func (m *Mapped) EpochLen(i int) int { return m.metas[i].count }

// EpochAt decodes epoch i. It allocates the record slice; use
// AppendEpochAt with a reused buffer on hot query paths.
func (m *Mapped) EpochAt(i int) (Epoch, error) {
	return m.AppendEpochAt(i, nil)
}

// AppendEpochAt decodes epoch i with its records appended to dst —
// exactly the records Reader.ReadEpochAppend yields for the same epoch
// (both run the same decoder). Decoding reads the mapped bytes in place,
// so a reused dst makes the call allocation-free once grown. Safe for
// concurrent use with distinct dst buffers.
func (m *Mapped) AppendEpochAt(i int, dst []flow.Record) (Epoch, error) {
	if i < 0 || i >= len(m.metas) {
		return Epoch{}, fmt.Errorf("recordstore: epoch %d out of range [0,%d)", i, len(m.metas))
	}
	meta := m.metas[i]
	return decodeEpochBody(m.data[meta.off:meta.off+meta.size], dst)
}

// Range returns the half-open index interval [lo, hi) of epochs whose
// timestamp t satisfies t0 <= t < t1: the lower bound is inclusive, the
// upper bound exclusive, so adjacent windows (t1 == next t0) tile the
// store without overlap or gap. This is the convention the query layer's
// from=/to= parameters expose verbatim. Collectors append epochs in
// export order, so timestamps are non-decreasing and the bounds are
// found by binary search; a zero t1 means "no upper bound".
func (m *Mapped) Range(t0, t1 time.Time) (lo, hi int) {
	n0 := t0.UnixNano()
	lo = m.searchNanos(n0)
	if t1.IsZero() {
		return lo, len(m.metas)
	}
	return lo, m.searchNanos(t1.UnixNano())
}

// searchNanos returns the first epoch index with timestamp >= nanos.
func (m *Mapped) searchNanos(nanos int64) int {
	lo, hi := 0, len(m.metas)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.metas[mid].nanos < nanos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Close releases the mapping. The Mapped (and any Epoch decoded from it)
// must not be used afterwards.
func (m *Mapped) Close() error {
	m.data = nil
	m.metas = nil
	if m.unmap != nil {
		u := m.unmap
		m.unmap = nil
		return u()
	}
	return nil
}
