package recordstore

import (
	"bytes"
	"errors"
	"io"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"

	"repro/flow"
	"repro/trace"
)

func randRecords(rng *rand.Rand, n int) []flow.Record {
	out := make([]flow.Record, n)
	for i := range out {
		out[i] = flow.Record{
			Key: flow.Key{
				SrcIP:   rng.Uint32(),
				DstIP:   rng.Uint32(),
				SrcPort: uint16(rng.Uint32()),
				DstPort: uint16(rng.Uint32()),
				Proto:   uint8(rng.Uint32()),
			},
			Count: rng.Uint32(),
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	epochTimes := []time.Time{
		time.Unix(1700000000, 123).UTC(),
		time.Unix(1700000300, 456).UTC(),
		time.Unix(1700000600, 0).UTC(),
	}
	epochs := make([][]flow.Record, len(epochTimes))
	for i := range epochs {
		epochs[i] = randRecords(rng, 100*(i+1))
	}

	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i, recs := range epochs {
		if err := w.WriteEpoch(epochTimes[i], recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Epochs() != 3 {
		t.Errorf("Epochs = %d", w.Epochs())
	}

	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(epochs) {
		t.Fatalf("read %d epochs, want %d", len(got), len(epochs))
	}
	for i, ep := range got {
		if !ep.Time.Equal(epochTimes[i]) {
			t.Errorf("epoch %d time %v, want %v", i, ep.Time, epochTimes[i])
		}
		want := make(map[flow.Key]uint32, len(epochs[i]))
		for _, r := range epochs[i] {
			want[r.Key] = r.Count
		}
		if len(ep.Records) != len(want) {
			t.Fatalf("epoch %d: %d records, want %d", i, len(ep.Records), len(want))
		}
		for _, r := range ep.Records {
			if want[r.Key] != r.Count {
				t.Fatalf("epoch %d: record %v count %d, want %d", i, r.Key, r.Count, want[r.Key])
			}
		}
		// Records come back sorted by packed key.
		for j := 1; j < len(ep.Records); j++ {
			if lessWords(ep.Records[j].Key, ep.Records[j-1].Key) {
				t.Fatalf("epoch %d records not sorted at %d", i, j)
			}
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, proto uint8, count uint32) bool {
		rec := flow.Record{
			Key:   flow.Key{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Proto: proto},
			Count: count,
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		if err := w.WriteEpoch(time.Unix(0, 0), []flow.Record{rec}); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		eps, err := NewReader(&buf).ReadAll()
		return err == nil && len(eps) == 1 && len(eps[0].Records) == 1 && eps[0].Records[0] == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompactness(t *testing.T) {
	// Varint delta encoding should beat the naive 17 bytes/record on a
	// realistic trace epoch.
	tr, err := trace.Generate(trace.ISP1, 20000, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEpoch(time.Now(), tr.Flows); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	naive := len(tr.Flows) * (flow.KeyBytes + 4)
	if buf.Len() >= naive {
		t.Errorf("encoded %d bytes, naive is %d — no compression achieved", buf.Len(), naive)
	}
	t.Logf("encoded %d records in %d bytes (%.1f B/record, naive %.0f)",
		len(tr.Flows), buf.Len(), float64(buf.Len())/float64(len(tr.Flows)), 17.0)
}

func TestEmptyEpoch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEpoch(time.Unix(5, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	eps, err := NewReader(&buf).ReadAll()
	if err != nil || len(eps) != 1 || len(eps[0].Records) != 0 {
		t.Errorf("empty epoch round trip: %v, %v", eps, err)
	}
}

func TestEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	eps, err := NewReader(&buf).ReadAll()
	if err != nil || len(eps) != 0 {
		t.Errorf("empty store: %v, %v", eps, err)
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("XXXX1"))).ReadEpoch(); !errors.Is(err, ErrNotStore) {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("FREC\x09"))).ReadEpoch(); err == nil {
		t.Error("accepted unknown version")
	}
	// Truncated epoch body.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEpoch(time.Unix(0, 0), randRecords(rand.New(rand.NewPCG(9, 9)), 50)); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-10]
	if _, err := NewReader(bytes.NewReader(truncated)).ReadEpoch(); err == nil {
		t.Error("accepted truncated epoch")
	}
}

func TestCorruptPackedKeyRejected(t *testing.T) {
	// Hand-craft an epoch whose second key word has garbage above bit 40.
	var body []byte
	body = appendUvarint(body, 0)     // nanos
	body = appendUvarint(body, 1)     // count
	body = appendUvarint(body, 0)     // w1 delta
	body = appendUvarint(body, 1<<50) // w2 with invalid high bits
	body = appendUvarint(body, 1)     // count

	var buf bytes.Buffer
	buf.WriteString("FREC")
	buf.WriteByte(version)
	buf.Write(appendUvarint(nil, uint64(len(body))))
	buf.Write(body)

	if _, err := NewReader(&buf).ReadEpoch(); err == nil {
		t.Error("accepted corrupt packed key")
	}
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [10]byte
	n := 0
	for v >= 0x80 {
		tmp[n] = byte(v) | 0x80
		v >>= 7
		n++
	}
	tmp[n] = byte(v)
	return append(dst, tmp[:n+1]...)
}

func TestReadEpochEOF(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEpoch(time.Unix(0, 0), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	if _, err := r.ReadEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadEpoch(); !errors.Is(err, io.EOF) {
		t.Errorf("expected io.EOF, got %v", err)
	}
}
