package recordstore

import (
	"bytes"
	"encoding/binary"
	"math/rand/v2"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"

	"repro/flow"
)

// sortedEpoch builds n records for epoch e, sorted by packed key — the
// form hot stores persist and SegmentWriter.Add requires.
func sortedEpoch(e, n int) []flow.Record {
	return epochRecords(e, n)
}

// stableEpoch builds the realistic cold-tier workload: a keyset that is
// identical across epochs with counts drifting per epoch. Sorted
// neighbouring epochs are then nearly byte-identical, which is the
// redundancy the columnar block compression exists to exploit.
func stableEpoch(e, n int) []flow.Record {
	recs := make([]flow.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, flow.Record{
			Key: flow.Key{
				SrcIP:   uint32(0x0A000000 + i*11),
				DstIP:   uint32(0xC0A80000 + i*3),
				SrcPort: uint16(1024 + i%5000), DstPort: 443, Proto: 6,
			},
			Count: uint32(1000 + (e*31+i*7)%97),
		})
	}
	return recs
}

// buildSegment encodes the given epochs into a cold segment image.
func buildSegment(t *testing.T, kind SegmentKind, blockEpochs int, times []time.Time, epochs [][]flow.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewSegmentWriter(&buf, kind)
	if blockEpochs > 0 {
		sw.SetBlockEpochs(blockEpochs)
	}
	for i := range epochs {
		if err := sw.Add(SegmentEpoch{Time: times[i], Records: epochs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestColdEquivalence: a cold segment must yield, epoch for epoch and
// record for record, exactly what the hot decoder yields for the same
// epochs — including across block boundaries.
func TestColdEquivalence(t *testing.T) {
	const n = 10
	times := make([]time.Time, n)
	epochs := make([][]flow.Record, n)
	var hot bytes.Buffer
	w := NewWriter(&hot)
	for e := 0; e < n; e++ {
		times[e] = time.Unix(int64(1700000000+300*e), int64(e)).UTC()
		epochs[e] = sortedEpoch(e, 50+e*13)
		if err := w.WriteEpoch(times[e], epochs[e]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	m, err := NewMappedBytes(hot.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	// Feed the segment from the hot decode, exactly as compaction does.
	hotEpochs := make([][]flow.Record, n)
	for e := 0; e < n; e++ {
		ep, err := m.EpochAt(e)
		if err != nil {
			t.Fatal(err)
		}
		hotEpochs[e] = ep.Records
	}
	seg, err := OpenSegmentBytes(buildSegment(t, SegmentCold, 4, times, hotEpochs))
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()

	if seg.Kind() != SegmentCold || seg.Epochs() != n {
		t.Fatalf("kind=%v epochs=%d", seg.Kind(), seg.Epochs())
	}
	var buf []flow.Record
	for e := 0; e < n; e++ {
		if !seg.EpochTime(e).Equal(m.EpochTime(e)) {
			t.Fatalf("epoch %d time %v != %v", e, seg.EpochTime(e), m.EpochTime(e))
		}
		if seg.EpochLen(e) != m.EpochLen(e) {
			t.Fatalf("epoch %d len %d != %d", e, seg.EpochLen(e), m.EpochLen(e))
		}
		got, err := seg.AppendEpochAt(e, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = got.Records
		if !slices.Equal(got.Records, hotEpochs[e]) {
			t.Fatalf("epoch %d records diverge from hot decode", e)
		}
		info := seg.EpochInfo(e)
		if info.Tier != "cold" || info.Span != 1 || info.Records != len(hotEpochs[e]) {
			t.Fatalf("epoch %d info = %+v", e, info)
		}
	}

	// Out-of-order access exercises the block cache both ways.
	for _, e := range []int{9, 0, 5, 9, 1} {
		got, err := seg.AppendEpochAt(e, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got.Records, hotEpochs[e]) {
			t.Fatalf("random access epoch %d diverges", e)
		}
	}
}

// TestColdCompressionRatio pins the acceptance floor: on a stable keyset
// with drifting counts (sorted epochs, the cold tier's actual input) the
// segment must be at least 3x smaller than the hot encoding of the same
// epochs.
func TestColdCompressionRatio(t *testing.T) {
	const n, recs = 64, 2000
	times := make([]time.Time, n)
	epochs := make([][]flow.Record, n)
	var hot bytes.Buffer
	w := NewWriter(&hot)
	for e := 0; e < n; e++ {
		times[e] = time.Unix(int64(1700000000+300*e), 0).UTC()
		epochs[e] = stableEpoch(e, recs)
		if err := w.WriteEpoch(times[e], epochs[e]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	seg := buildSegment(t, SegmentCold, 0, times, epochs)
	raw := hot.Len()
	if ratio := float64(raw) / float64(len(seg)); ratio < 3.0 {
		t.Fatalf("compression ratio %.2fx (%d -> %d bytes), want >= 3x", ratio, raw, len(seg))
	}
}

// TestColdTruncationEveryByte: a segment image cut at every byte offset
// must never panic and never fabricate data — whatever prefix of epochs
// still indexes and decodes must match the original exactly.
func TestColdTruncationEveryByte(t *testing.T) {
	const n = 6
	times := make([]time.Time, n)
	epochs := make([][]flow.Record, n)
	for e := 0; e < n; e++ {
		times[e] = time.Unix(int64(2000+e), 0).UTC()
		epochs[e] = sortedEpoch(e, 40)
	}
	img := buildSegment(t, SegmentCold, 2, times, epochs)

	for cut := 0; cut <= len(img); cut++ {
		seg, err := OpenSegmentBytes(img[:cut])
		if err != nil {
			continue // rejected outright: fine
		}
		for e := 0; e < seg.Epochs(); e++ {
			got, err := seg.AppendEpochAt(e, nil)
			if err != nil {
				break
			}
			if !got.Time.Equal(times[e]) || !slices.Equal(got.Records, epochs[e]) {
				t.Fatalf("cut=%d epoch %d decoded to different data", cut, e)
			}
		}
		seg.Close()
	}
}

// TestColdCorruptionNoPanic flips every byte of a segment image in turn;
// open/decode may fail or (for immaterial flips inside compressed
// padding) succeed, but must never panic or read out of bounds.
func TestColdCorruptionNoPanic(t *testing.T) {
	const n = 4
	times := make([]time.Time, n)
	epochs := make([][]flow.Record, n)
	for e := 0; e < n; e++ {
		times[e] = time.Unix(int64(3000+e), 0).UTC()
		epochs[e] = sortedEpoch(e, 30)
	}
	img := buildSegment(t, SegmentCold, 2, times, epochs)

	mut := make([]byte, len(img))
	for off := 0; off < len(img); off++ {
		copy(mut, img)
		mut[off] ^= 0xFF
		seg, err := OpenSegmentBytes(mut)
		if err != nil {
			continue
		}
		for e := 0; e < seg.Epochs(); e++ {
			if _, err := seg.AppendEpochAt(e, nil); err != nil {
				break
			}
		}
		seg.Close()
	}
}

// FuzzColdDecode fuzzes the full segment open + decode path: arbitrary
// bytes must never panic and successfully decoded epochs must respect
// their declared record counts.
func FuzzColdDecode(f *testing.F) {
	var times []time.Time
	var epochs [][]flow.Record
	for e := 0; e < 5; e++ {
		times = append(times, time.Unix(int64(4000+e), 0).UTC())
		epochs = append(epochs, epochRecords(e, 25))
	}
	var buf bytes.Buffer
	sw := NewSegmentWriter(&buf, SegmentCold)
	sw.SetBlockEpochs(2)
	for i := range epochs {
		if err := sw.Add(SegmentEpoch{Time: times[i], Records: epochs[i]}); err != nil {
			f.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		f.Fatal(err)
	}
	img := buf.Bytes()
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add([]byte(segMagic + "\x01\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		seg, err := OpenSegmentBytes(data)
		if err != nil {
			return
		}
		var rec []flow.Record
		for e := 0; e < seg.Epochs(); e++ {
			ep, err := seg.AppendEpochAt(e, rec[:0])
			if err != nil {
				break
			}
			rec = ep.Records
			if len(ep.Records) != seg.EpochLen(e) {
				t.Fatalf("epoch %d decoded %d records, header says %d", e, len(ep.Records), seg.EpochLen(e))
			}
		}
		seg.Close()
	})
}

// TestRollupAccuracy: a rollup epoch must hold exactly the true top-K of
// the merged source epochs (by summed count) and exact aggregate totals,
// in key-sorted order.
func TestRollupAccuracy(t *testing.T) {
	const n, recs, k = 8, 300, 20
	rng := rand.New(rand.NewPCG(7, 9))
	times := make([]time.Time, n)
	epochs := make([][]flow.Record, n)
	truth := map[flow.Key]uint64{}
	var totalRecords, totalPackets uint64
	for e := 0; e < n; e++ {
		times[e] = time.Unix(int64(5000+e*60), 0).UTC()
		eps := sortedEpoch(0, recs) // stable keyset
		for i := range eps {
			eps[i].Count = uint32(1 + rng.IntN(10000))
			truth[eps[i].Key] += uint64(eps[i].Count)
			totalPackets += uint64(eps[i].Count)
		}
		totalRecords += uint64(len(eps))
		epochs[e] = eps
	}
	seg, err := OpenSegmentBytes(buildSegment(t, SegmentCold, 3, times, epochs))
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()

	rolled, err := buildRollup(seg, k)
	if err != nil {
		t.Fatal(err)
	}
	if len(rolled.Records) != k {
		t.Fatalf("rollup kept %d records, want %d", len(rolled.Records), k)
	}
	if rolled.Span != n || rolled.TotalRecords != totalRecords || rolled.TotalPackets != totalPackets {
		t.Fatalf("rollup totals span=%d recs=%d pkts=%d, want %d/%d/%d",
			rolled.Span, rolled.TotalRecords, rolled.TotalPackets, n, totalRecords, totalPackets)
	}
	if !rolled.Time.Equal(times[0]) {
		t.Fatalf("rollup time %v, want first source epoch %v", rolled.Time, times[0])
	}

	// The kept set must be exactly the truth's top-K multiset of counts.
	counts := make([]uint64, 0, len(truth))
	for _, c := range truth {
		counts = append(counts, c)
	}
	slices.SortFunc(counts, func(a, b uint64) int {
		if a > b {
			return -1
		} else if a < b {
			return 1
		}
		return 0
	})
	floor := counts[k-1]
	for i, r := range rolled.Records {
		want := truth[r.Key]
		if uint64(r.Count) != want {
			t.Fatalf("rollup record %d count %d, truth %d", i, r.Count, want)
		}
		if want < floor {
			t.Fatalf("rollup kept key with count %d below top-%d floor %d", want, k, floor)
		}
		if i > 0 && !lessWords(rolled.Records[i-1].Key, r.Key) {
			t.Fatalf("rollup records not key-sorted at %d", i)
		}
	}

	// Round-trip through a rollup segment keeps the tier metadata.
	rimg := bytes.Buffer{}
	sw := NewSegmentWriter(&rimg, SegmentRollup)
	if err := sw.Add(rolled); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	rseg, err := OpenSegmentBytes(rimg.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	defer rseg.Close()
	info := rseg.EpochInfo(0)
	if info.Tier != "rollup" || info.Span != n || info.TotalRecords != totalRecords || info.TotalPackets != totalPackets {
		t.Fatalf("rollup segment info = %+v", info)
	}
	got, err := rseg.AppendEpochAt(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(got.Records, rolled.Records) {
		t.Fatal("rollup segment decode diverges")
	}
}

// TestSegmentEmpty: a closed-empty segment is valid and holds nothing.
func TestSegmentEmpty(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSegmentWriter(&buf, SegmentCold)
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegmentBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if seg.Epochs() != 0 {
		t.Fatalf("empty segment has %d epochs", seg.Epochs())
	}
	seg.Close()
}

// TestSegmentRejectsUnsorted: out-of-order epoch timestamps are refused
// at write time, not discovered at read time.
func TestSegmentRejectsUnsorted(t *testing.T) {
	var buf bytes.Buffer
	sw := NewSegmentWriter(&buf, SegmentCold)
	if err := sw.Add(SegmentEpoch{Time: time.Unix(100, 0), Records: nil}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Add(SegmentEpoch{Time: time.Unix(99, 0), Records: nil}); err == nil {
		t.Fatal("out-of-order epoch accepted")
	}
}

// TestOpenAutoDetect: Open returns a flat mapped source for a file and a
// tiered source for a directory, both through EpochSource.
func TestOpenAutoDetect(t *testing.T) {
	dir := t.TempDir()
	filePath := filepath.Join(dir, "flat.frec")
	writeStoreFile(t, filePath, 3)

	src, err := Open(filePath)
	if err != nil {
		t.Fatal(err)
	}
	if src.Epochs() != 3 {
		t.Fatalf("flat source epochs = %d", src.Epochs())
	}
	if _, ok := src.(*Mapped); !ok {
		t.Fatalf("flat path opened as %T", src)
	}
	src.Close()

	tdir := filepath.Join(dir, "tiered")
	tw, _, err := OpenTiered(tdir, TieredOptions{HotEpochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		if err := tw.WriteEpoch(time.Unix(int64(100+e), 0), epochRecords(e, 8)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	src, err = Open(tdir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.(*TieredSource); !ok {
		t.Fatalf("dir path opened as %T", src)
	}
	if src.Epochs() != 3 {
		t.Fatalf("tiered source epochs = %d", src.Epochs())
	}
	src.Close()
	_ = os.Remove(filePath)
}

// TestColdRejectsImplausibleRawLen: a block whose headers declare far
// more raw data than its DEFLATE stream could possibly inflate (the
// format's ~1032x ceiling) must be rejected at open, before blockRaw
// would allocate the declared size — a tiny hostile file must not be
// able to trigger a multi-gigabyte allocation.
func TestColdRejectsImplausibleRawLen(t *testing.T) {
	frame := binary.AppendUvarint(nil, 1) // one epoch in the block
	frame = binary.AppendUvarint(frame, uint64(time.Unix(1700000000, 0).UnixNano()))
	frame = binary.AppendUvarint(frame, 1)     // record count
	frame = binary.AppendUvarint(frame, 1<<30) // keysLen: passes the per-field cap
	frame = binary.AppendUvarint(frame, 1<<30) // countsLen
	frame = binary.AppendUvarint(frame, 1)     // span
	frame = binary.AppendUvarint(frame, 1)     // totalRecords
	frame = binary.AppendUvarint(frame, 1)     // totalPackets
	frame = append(frame, 0xde, 0xad)          // 2-byte "compressed" stream

	data := append([]byte(segMagic), segVersion, byte(SegmentCold))
	data = binary.AppendUvarint(data, uint64(len(frame)))
	data = append(data, frame...)

	if _, err := OpenSegmentBytes(data); err == nil {
		t.Fatal("segment declaring 2 GiB of raw data from a 2-byte stream opened without error")
	}
}
