package recordstore

import (
	"repro/telemetry"
)

// Metrics carries the write-side instruments of a store Writer. All
// observations happen per epoch or per fsync — the record encode loop
// itself is untouched and stays allocation-free.
type Metrics struct {
	// EpochsWritten counts epochs appended by this writer (this run,
	// not the recovered prefix).
	EpochsWritten *telemetry.Counter
	// BytesWritten counts encoded bytes handed to the stream (frame
	// length varint + body).
	BytesWritten *telemetry.Counter
	// Fsyncs counts fsync barriers and FsyncNs times them — the
	// latency the durability policy is paying.
	Fsyncs  *telemetry.Counter
	FsyncNs *telemetry.Histogram
}

// NewMetrics registers the store instruments under the given label
// pairs and returns them for Writer.SetMetrics.
func NewMetrics(reg *telemetry.Registry, labelPairs ...string) *Metrics {
	return &Metrics{
		EpochsWritten: reg.Counter(
			telemetry.Name("store_epochs_written_total", labelPairs...),
			"epochs appended to the store this run"),
		BytesWritten: reg.Counter(
			telemetry.Name("store_bytes_written_total", labelPairs...),
			"encoded epoch bytes written (frame + body)"),
		Fsyncs: reg.Counter(
			telemetry.Name("store_fsyncs_total", labelPairs...),
			"fsync barriers issued by the durability policy"),
		FsyncNs: reg.Histogram(
			telemetry.Name("store_fsync_ns", labelPairs...),
			"fsync latency, ns"),
	}
}

// SetMetrics attaches write-side instruments. Call before writing, on
// the goroutine that owns the Writer (the Writer is single-goroutine
// by contract, so no synchronization is needed).
func (w *Writer) SetMetrics(m *Metrics) { w.metrics = m }
