package recordstore

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"

	"repro/flow"
)

func BenchmarkWriteEpoch(b *testing.B) {
	recs := randRecords(rand.New(rand.NewPCG(1, 2)), 10000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := w.WriteEpoch(time.Unix(0, 0), recs); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
}

func BenchmarkReadEpoch(b *testing.B) {
	recs := randRecords(rand.New(rand.NewPCG(3, 4)), 10000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEpoch(time.Unix(0, 0), recs); err != nil {
		b.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(encoded))
		if _, err := r.ReadEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
}

// BenchmarkMappedEpochAt measures random-access decoding through the
// mapped store with a reused buffer (the /flows scan loop shape).
func BenchmarkMappedEpochAt(b *testing.B) {
	recs := randRecords(rand.New(rand.NewPCG(5, 6)), 10000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const epochs = 8
	for e := 0; e < epochs; e++ {
		if err := w.WriteEpoch(time.Unix(int64(e), 0), recs); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	m, err := NewMappedBytes(buf.Bytes())
	if err != nil {
		b.Fatal(err)
	}
	var dst []flow.Record
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ep, err := m.AppendEpochAt(i%epochs, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		dst = ep.Records
	}
	b.SetBytes(int64(len(recs)))
}

// BenchmarkOpenMapped measures the index-build cost a per-request
// re-mapping (query.FileStore) pays.
func BenchmarkOpenMapped(b *testing.B) {
	recs := randRecords(rand.New(rand.NewPCG(7, 8)), 10000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	const epochs = 64
	for e := 0; e < epochs; e++ {
		if err := w.WriteEpoch(time.Unix(int64(e), 0), recs); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := NewMappedBytes(data)
		if err != nil {
			b.Fatal(err)
		}
		if m.Epochs() != epochs {
			b.Fatal("bad index")
		}
	}
}
