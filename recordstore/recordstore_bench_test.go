package recordstore

import (
	"bytes"
	"math/rand/v2"
	"testing"
	"time"
)

func BenchmarkWriteEpoch(b *testing.B) {
	recs := randRecords(rand.New(rand.NewPCG(1, 2)), 10000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := w.WriteEpoch(time.Unix(0, 0), recs); err != nil {
			b.Fatal(err)
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
}

func BenchmarkReadEpoch(b *testing.B) {
	recs := randRecords(rand.New(rand.NewPCG(3, 4)), 10000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteEpoch(time.Unix(0, 0), recs); err != nil {
		b.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		b.Fatal(err)
	}
	encoded := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(bytes.NewReader(encoded))
		if _, err := r.ReadEpoch(); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(recs)))
}
