// Durability: the crash-safety half of the record store. A collector that
// dies mid-epoch leaves a torn frame at the end of its store file — the
// length varint or body of the epoch it was writing when the process was
// killed. RecoverTail detects that tail and truncates the file back to
// its last intact epoch, so a restarted collector appends to its own
// store instead of starting over (or refusing to start at all). OpenFile
// packages recovery + reopen-for-append + a configurable fsync policy
// into the one call a daemon needs at startup.
package recordstore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/flow"
)

// SyncMode selects when a file-backed Writer fsyncs.
type SyncMode uint8

const (
	// SyncOff never fsyncs: the OS flushes on its own schedule. A crash
	// can lose every epoch still in the page cache (the torn tail is
	// still recovered on restart).
	SyncOff SyncMode = iota
	// SyncEachEpoch flushes and fsyncs after every epoch: at most the
	// in-flight epoch is lost on a crash.
	SyncEachEpoch
	// SyncInterval flushes and fsyncs at most once per Interval, amortizing
	// the fsync cost over several epochs on busy vantages.
	SyncInterval
)

// SyncPolicy is a Writer's durability policy: a mode plus, for
// SyncInterval, the interval.
type SyncPolicy struct {
	Mode     SyncMode
	Interval time.Duration
}

// String renders the policy in the form ParseSyncPolicy accepts.
func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncEachEpoch:
		return "epoch"
	case SyncInterval:
		return p.Interval.String()
	default:
		return "off"
	}
}

// ParseSyncPolicy decodes a policy flag value: "off", "epoch", or a
// duration ("500ms", "5s") meaning sync-at-most-that-often.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "off", "never", "":
		return SyncPolicy{Mode: SyncOff}, nil
	case "epoch", "always":
		return SyncPolicy{Mode: SyncEachEpoch}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncPolicy{}, fmt.Errorf("recordstore: sync policy %q is not off, epoch, or a positive duration", s)
	}
	return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
}

// Syncer is the subset of *os.File the durability policy needs.
type Syncer interface {
	Sync() error
}

// SetSyncPolicy attaches a sync target and policy to the Writer: after
// each WriteEpoch the policy decides whether to flush buffered bytes and
// fsync. Call before the first epoch is written.
func (w *Writer) SetSyncPolicy(s Syncer, pol SyncPolicy) {
	w.syncer = s
	w.policy = pol
}

// Sync flushes buffered epochs to the underlying stream and, when a sync
// target is attached, fsyncs it — the everything-durable barrier used at
// shutdown regardless of policy.
func (w *Writer) Sync() error {
	if err := w.Flush(); err != nil {
		return err
	}
	if w.syncer != nil {
		start := time.Now()
		if err := w.syncer.Sync(); err != nil {
			return fmt.Errorf("recordstore: sync: %w", err)
		}
		// Timing an fsync costs nothing next to the fsync itself, so the
		// duration is kept unconditionally for epoch-trace spans; the
		// histogram still only fills when metrics are wired.
		elapsed := time.Since(start)
		w.lastFsyncNs.Store(elapsed.Nanoseconds())
		w.fsyncs.Add(1)
		if m := w.metrics; m != nil {
			m.Fsyncs.Inc()
			m.FsyncNs.ObserveDuration(elapsed)
		}
	}
	w.lastSync = time.Now()
	return nil
}

// Fsyncs returns how many fsyncs this Writer has issued, independent of
// whether metrics are wired. Epoch-trace spans diff it around a write to
// detect whether the durability policy fired.
func (w *Writer) Fsyncs() uint64 { return w.fsyncs.Load() }

// LastFsyncNs returns the wall duration of the most recent fsync in
// nanoseconds (0 before the first).
func (w *Writer) LastFsyncNs() int64 { return w.lastFsyncNs.Load() }

// maybeSync applies the policy after one epoch write.
func (w *Writer) maybeSync() error {
	switch w.policy.Mode {
	case SyncEachEpoch:
		return w.Sync()
	case SyncInterval:
		if time.Since(w.lastSync) >= w.policy.Interval {
			return w.Sync()
		}
	}
	return nil
}

// Recovery reports what RecoverTail found and did.
type Recovery struct {
	// Epochs is the number of intact epochs the recovered store holds.
	Epochs int
	// GoodSize is the recovered file length in bytes (header + intact
	// epochs).
	GoodSize int64
	// TornBytes is how many trailing bytes were truncated away: a partial
	// frame from a killed writer, or 0 for a cleanly closed store.
	TornBytes int64
	// Created reports that the file did not exist (or was empty): there
	// was nothing to recover and the writer starts fresh.
	Created bool
}

// RecoverTail opens the store file at path, locates the last byte of its
// last intact epoch, and truncates anything after it: the torn frame a
// killed writer leaves behind. Epochs at the tail that are
// structurally complete but fail to decode (a partially flushed body that
// happens to look frame-shaped) are dropped too. A missing or empty file
// is not an error — Recovery.Created reports it and the file is left for
// the writer to initialize. A file that exists but does not begin with
// the store magic is never touched: that is ErrNotStore, not a torn tail.
func RecoverTail(path string) (Recovery, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if errors.Is(err, os.ErrNotExist) {
		return Recovery{Created: true}, nil
	}
	if err != nil {
		return Recovery{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Recovery{}, err
	}
	size := st.Size()
	if size == 0 {
		return Recovery{Created: true}, nil
	}
	headerLen := int64(len(magic) + 1)
	if size < headerLen {
		// A writer killed inside the 5-byte header. Only treat it as ours
		// if what made it to disk is a magic prefix; otherwise refuse.
		var hdr [len(magic)]byte
		n, err := f.ReadAt(hdr[:], 0)
		if err != nil && err != io.EOF {
			return Recovery{}, err
		}
		if string(hdr[:n]) != magic[:n] {
			return Recovery{}, ErrNotStore
		}
		if err := truncateSync(f, 0); err != nil {
			return Recovery{}, err
		}
		return Recovery{Created: true, TornBytes: size}, nil
	}

	data, unmap, err := mapFile(f, size)
	if err != nil {
		return Recovery{}, fmt.Errorf("recordstore: map %s: %w", path, err)
	}
	if unmap != nil {
		defer unmap()
	}
	if string(data[:len(magic)]) != magic {
		return Recovery{}, ErrNotStore
	}
	if data[len(magic)] != version {
		return Recovery{}, fmt.Errorf("recordstore: unsupported version %d", data[len(magic)])
	}

	good, epochs := scanIntact(data)
	rec := Recovery{Epochs: epochs, GoodSize: good, TornBytes: size - good}
	if rec.TornBytes > 0 {
		if err := truncateSync(f, good); err != nil {
			return Recovery{}, err
		}
	}
	return rec, nil
}

// scanIntact walks the epoch frames of a store image and returns the byte
// length of the longest prefix of fully decodable epochs, plus that
// prefix's epoch count. Structural damage (a frame running past the end,
// a corrupt length varint) ends the index; a frame that is structurally
// complete but fails to decode (a partially flushed body that happens to
// look frame-shaped) ends the scan at the epoch before it. The surviving
// prefix is readable by construction — recovery is a full-store decode,
// paid once at startup, so a recovered store can never fail a reader
// later.
func scanIntact(data []byte) (good int64, epochs int) {
	m := &Mapped{data: data}
	// buildIndex only errors on undecodable epoch headers; treat that
	// exactly like a truncated tail — the index holds every frame before
	// the damage.
	_ = m.buildIndex(len(magic) + 1)

	good = int64(len(magic) + 1)
	var buf []flow.Record
	for i := range m.metas {
		ep, err := m.AppendEpochAt(i, buf[:0])
		if err != nil {
			break
		}
		buf = ep.Records // reuse the decode buffer across epochs
		good = int64(m.metas[i].off + m.metas[i].size)
		epochs++
	}
	return good, epochs
}

// truncateSync truncates f to size and fsyncs, making the recovery itself
// durable before the writer appends after it.
func truncateSync(f *os.File, size int64) error {
	if err := f.Truncate(size); err != nil {
		return fmt.Errorf("recordstore: truncate torn tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("recordstore: sync after truncate: %w", err)
	}
	return nil
}

// FileWriter is a Writer bound to its backing file: the append handle a
// daemon holds on its own store. Close flushes, fsyncs, and closes.
type FileWriter struct {
	*Writer
	f *os.File
}

// OpenFile opens (creating if needed) the store at path for appending,
// recovering a torn tail first, and returns a policy-synced writer
// positioned after the last intact epoch. The Recovery reports what was
// found. The caller must Close the returned writer.
func OpenFile(path string, pol SyncPolicy) (*FileWriter, Recovery, error) {
	rec, err := RecoverTail(path)
	if err != nil {
		return nil, Recovery{}, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, Recovery{}, err
	}
	w := NewWriter(f)
	w.SetSyncPolicy(f, pol)
	if !rec.Created {
		// The header is already on disk; resume the epoch count so
		// Writer.Epochs reflects the whole store, not just this run.
		w.started = true
		w.epochs = uint64(rec.Epochs)
	}
	return &FileWriter{Writer: w, f: f}, rec, nil
}

// Close makes everything written durable and releases the file.
func (fw *FileWriter) Close() error {
	syncErr := fw.Sync()
	closeErr := fw.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
