package recordstore

import (
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"repro/flow"
)

// epochTime is the deterministic data clock the tiered tests run on:
// epoch e exported at base + e minutes.
func epochTime(e int) time.Time {
	return time.Unix(int64(1700000000+60*e), 0).UTC()
}

// fillTiered writes epochs [from, to) into tw.
func fillTiered(t *testing.T, tw *Tiered, from, to int) {
	t.Helper()
	for e := from; e < to; e++ {
		if err := tw.WriteEpoch(epochTime(e), epochRecords(e, 24)); err != nil {
			t.Fatal(err)
		}
	}
}

// checkTiered opens dir read-only and asserts it serves exactly epochs
// [0, n) with the original data, returning the source for further
// assertions. Rollup tiers would break the data equality, so callers
// only use it on lossless stores.
func checkTiered(t *testing.T, dir string, n int) *TieredSource {
	t.Helper()
	src, err := OpenTieredSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	if src.Epochs() != n {
		t.Fatalf("tiered source epochs = %d, want %d", src.Epochs(), n)
	}
	var buf []flow.Record
	for e := 0; e < n; e++ {
		if !src.EpochTime(e).Equal(epochTime(e)) {
			t.Fatalf("epoch %d time %v, want %v", e, src.EpochTime(e), epochTime(e))
		}
		ep, err := src.AppendEpochAt(e, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = ep.Records
		if !slices.Equal(ep.Records, epochRecords(e, 24)) {
			t.Fatalf("epoch %d records diverge after tiering", e)
		}
	}
	return src
}

// TestTieredCompactMigratesAndPreserves: explicit compaction moves
// everything past the hot window into cold segments without losing or
// duplicating an epoch, repeatedly.
func TestTieredCompactMigratesAndPreserves(t *testing.T) {
	dir := t.TempDir()
	tw, rec, err := OpenTiered(dir, TieredOptions{HotEpochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Created {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}

	total := 0
	for round := 0; round < 3; round++ {
		fillTiered(t, tw, total, total+40)
		total += 40
		stats, err := tw.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Migrated == 0 {
			t.Fatalf("round %d: nothing migrated", round)
		}
		if stats.SegmentBytes <= 0 || stats.RawBytes <= stats.SegmentBytes {
			t.Fatalf("round %d: segment %d bytes vs raw %d — no compression?", round, stats.SegmentBytes, stats.RawBytes)
		}
		if stats.StallNs <= 0 {
			t.Fatalf("round %d: stall not measured", round)
		}
		src := checkTiered(t, dir, total)
		if src.Segments() != round+1 {
			t.Fatalf("round %d: %d segments", round, src.Segments())
		}
		src.Close()
	}

	// Hot file holds only the window now.
	m, err := OpenMapped(filepath.Join(dir, hotFileName))
	if err != nil {
		t.Fatal(err)
	}
	if m.Epochs() != 10 {
		t.Fatalf("hot tier holds %d epochs, want 10", m.Epochs())
	}
	m.Close()

	// A second compaction with nothing over the window is a no-op.
	stats, err := tw.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Migrated != 0 {
		t.Fatalf("idle compaction migrated %d", stats.Migrated)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen read-write: still everything, and appends continue.
	tw, rec, err = OpenTiered(dir, TieredOptions{HotEpochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Epochs != 10 {
		t.Fatalf("reopen hot recovery = %+v", rec)
	}
	fillTiered(t, tw, total, total+5)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	checkTiered(t, dir, total+5).Close()
}

// TestTieredColdRangeSkipsHot is the acceptance scenario: a ≥1000-epoch
// store answers a time-ranged query over old data by binary search into
// cold segments without decoding a single hot-resident epoch.
func TestTieredColdRangeSkipsHot(t *testing.T) {
	dir := t.TempDir()
	tw, _, err := OpenTiered(dir, TieredOptions{HotEpochs: 50})
	if err != nil {
		t.Fatal(err)
	}
	const total = 1050
	for chunk := 0; chunk < total; chunk += 210 {
		fillTiered(t, tw, chunk, chunk+210)
		if _, err := tw.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := OpenTieredSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Epochs() != total {
		t.Fatalf("epochs = %d, want %d", src.Epochs(), total)
	}
	if src.Segments() < 5 {
		t.Fatalf("segments = %d, want several", src.Segments())
	}

	// A month-old day: epochs [100, 160).
	lo, hi := src.Range(epochTime(100), epochTime(160))
	if lo != 100 || hi != 160 {
		t.Fatalf("Range = [%d,%d), want [100,160)", lo, hi)
	}
	var buf []flow.Record
	for e := lo; e < hi; e++ {
		ep, err := src.AppendEpochAt(e, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		buf = ep.Records
		if !slices.Equal(ep.Records, epochRecords(e, 24)) {
			t.Fatalf("cold epoch %d diverges", e)
		}
	}
	if got := src.HotDecodes(); got != 0 {
		t.Fatalf("cold-range query decoded %d hot epochs, want 0", got)
	}

	// The hot tail is still served — and counted.
	if _, err := src.AppendEpochAt(total-1, nil); err != nil {
		t.Fatal(err)
	}
	if got := src.HotDecodes(); got != 1 {
		t.Fatalf("hot decode count = %d, want 1", got)
	}
}

// TestTieredCutoffDedup: the crash window where epochs exist in both a
// published segment and the untrimmed hot file must deduplicate at read
// time, and the next read-write open + compaction must converge.
func TestTieredCutoffDedup(t *testing.T) {
	dir := t.TempDir()
	tw, _, err := OpenTiered(dir, TieredOptions{HotEpochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	fillTiered(t, tw, 0, 12)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	// Simulate the crash: build and publish the segment + manifest by
	// hand (exactly compaction's first two steps) and "die" before the
	// hot rewrite — the hot file keeps all 12 epochs.
	m, err := OpenMapped(filepath.Join(dir, hotFileName))
	if err != nil {
		t.Fatal(err)
	}
	segName := "seg-000001" + coldSegExt
	f, err := os.Create(filepath.Join(dir, segName))
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSegmentWriter(f, SegmentCold)
	for e := 0; e < 8; e++ {
		ep, err := m.EpochAt(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Add(SegmentEpoch{Time: ep.Time, Records: ep.Records}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	st, _ := f.Stat()
	f.Close()
	m.Close()
	man := manifest{Version: manifestVersion, Seq: 1, CutoffNanos: epochTime(7).UnixNano(),
		Segments: []segmentEntry{{File: segName, Kind: "cold", Epochs: 8,
			FromNanos: epochTime(0).UnixNano(), ToNanos: epochTime(7).UnixNano(),
			Bytes: st.Size(), SpanEpochs: 8}}}
	if err := writeManifest(dir, man); err != nil {
		t.Fatal(err)
	}
	tw.fw.f.Close() // the "crash"

	// Readers dedup: 12 epochs, not 20.
	checkTiered(t, dir, 12).Close()

	// Restarted writer converges: the leftover prefix is trimmed by the
	// next compaction and nothing is lost.
	tw, _, err = OpenTiered(dir, TieredOptions{HotEpochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	fillTiered(t, tw, 12, 14)
	if _, err := tw.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	checkTiered(t, dir, 14).Close()
	m, err = OpenMapped(filepath.Join(dir, hotFileName))
	if err != nil {
		t.Fatal(err)
	}
	if m.Epochs() != 4 {
		t.Fatalf("hot tier holds %d epochs after converging, want 4", m.Epochs())
	}
	m.Close()
}

// TestTieredOrphanGC: segment files a crashed compaction renamed but
// never published are invisible to readers and deleted by the next
// read-write open.
func TestTieredOrphanGC(t *testing.T) {
	dir := t.TempDir()
	tw, _, err := OpenTiered(dir, TieredOptions{HotEpochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	fillTiered(t, tw, 0, 6)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	orphan := filepath.Join(dir, "seg-000042"+coldSegExt)
	if err := os.WriteFile(orphan, []byte(segMagic+"\x01\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(dir, "seg-000043"+coldSegExt+".tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	src := checkTiered(t, dir, 6)
	if src.Segments() != 0 {
		t.Fatalf("reader sees %d unpublished segments", src.Segments())
	}
	src.Close()

	tw, _, err = OpenTiered(dir, TieredOptions{HotEpochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tw.Close()
	for _, p := range []string{orphan, tmp} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("orphan %s survived read-write open", filepath.Base(p))
		}
	}
}

// TestTieredEqualTimestampBoundary: a run of equal-timestamp epochs is
// never split across the hot/cold cutoff — the read-side dedup rule
// could not tell a migrated twin from a live one.
func TestTieredEqualTimestampBoundary(t *testing.T) {
	dir := t.TempDir()
	tw, _, err := OpenTiered(dir, TieredOptions{HotEpochs: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Epochs 0..7 where 3,4,5 share one timestamp; window of 2 would cut
	// at 5/6... but with HotEpochs=2 the boundary falls at epoch 6 —
	// make the run straddle it: epochs 4,5,6 share a timestamp.
	times := []int{0, 1, 2, 3, 4, 4, 4, 7}
	for e, tt := range times {
		if err := tw.WriteEpoch(epochTime(tt), epochRecords(e, 16)); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := tw.Compact()
	if err != nil {
		t.Fatal(err)
	}
	// Naively 8-2=6 epochs would migrate, splitting the 4,4,4 run after
	// its first member; the boundary must retreat to migrate only 4.
	if stats.Migrated != 4 {
		t.Fatalf("migrated %d epochs across an equal-timestamp run, want 4", stats.Migrated)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := OpenTieredSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Epochs() != 8 {
		t.Fatalf("epochs after boundary compaction = %d, want 8", src.Epochs())
	}
}

// TestTieredRetentionRollup: cold segments aging out of the lossless
// window collapse into rollup epochs that keep exact top-K and totals;
// the epoch index stays queryable end to end.
func TestTieredRetentionRollup(t *testing.T) {
	dir := t.TempDir()
	tw, _, err := OpenTiered(dir, TieredOptions{
		HotEpochs: 10,
		Retain:    30 * time.Minute, // epochs are 1 min apart
		RollupK:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	fillTiered(t, tw, 0, 40)
	stats, err := tw.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Migrated != 30 {
		t.Fatalf("migrated %d", stats.Migrated)
	}
	// The fresh segment's newest epoch (29) is within 30min of epoch 39:
	// not yet expired.
	if stats.RolledUp != 0 {
		t.Fatalf("rolled up %d segments prematurely", stats.RolledUp)
	}

	// Another 60 epochs push the first segment past the horizon.
	fillTiered(t, tw, 40, 100)
	stats, err = tw.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if stats.RolledUp == 0 {
		t.Fatal("no segment rolled up past the retention horizon")
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	src, err := OpenTieredSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	// 30 source epochs collapsed to 1 rollup: 100 - 30 + 1 = 71.
	if src.Epochs() != 71 {
		t.Fatalf("epochs after rollup = %d, want 71", src.Epochs())
	}
	info := src.EpochInfo(0)
	if info.Tier != "rollup" || info.Span != 30 || info.Records != 5 {
		t.Fatalf("rollup epoch info = %+v", info)
	}
	if info.TotalRecords != 30*24 {
		t.Fatalf("rollup TotalRecords = %d, want %d", info.TotalRecords, 30*24)
	}
	ep, err := src.AppendEpochAt(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ep.Records) != 5 {
		t.Fatalf("rollup epoch decoded %d records", len(ep.Records))
	}
	// Later epochs are untouched.
	ep, err = src.AppendEpochAt(70, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(ep.Records, epochRecords(99, 24)) {
		t.Fatal("newest epoch diverged after retention")
	}
}

// TestTieredRecoverTailComposition: a torn hot tail in a tiered dir is
// truncated on open exactly like a flat store's (PR 7 recovery).
func TestTieredRecoverTailComposition(t *testing.T) {
	dir := t.TempDir()
	tw, _, err := OpenTiered(dir, TieredOptions{HotEpochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	fillTiered(t, tw, 0, 6)
	if _, err := tw.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	hotPath := filepath.Join(dir, hotFileName)
	f, err := os.OpenFile(hotPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x50, 0x01, 0x02}); err != nil { // torn frame
		t.Fatal(err)
	}
	f.Close()

	tw, rec, err := OpenTiered(dir, TieredOptions{HotEpochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornBytes != 3 || rec.Epochs != 4 {
		t.Fatalf("recovery = %+v, want 3 torn bytes over 4 epochs", rec)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	checkTiered(t, dir, 6).Close()
}

// TestTieredCompactionDuringQueryRace runs writers, the automatic
// compactor, retention and concurrent read-only opens together under
// the race detector: readers must always see a consistent store and the
// ENOENT retry must absorb segment retirement.
func TestTieredCompactionDuringQueryRace(t *testing.T) {
	dir := t.TempDir()
	compacted := make(chan struct{}, 64)
	tw, _, err := OpenTiered(dir, TieredOptions{
		HotEpochs:    8,
		CompactEvery: 8,
		Retain:       10 * time.Minute,
		RollupK:      4,
		OnCompact: func(stats CompactStats, err error) {
			if err != nil {
				t.Errorf("background compaction: %v", err)
			}
			select {
			case compacted <- struct{}{}:
			default:
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []flow.Record
			for {
				select {
				case <-stop:
					return
				default:
				}
				src, err := OpenTieredSource(dir)
				if err != nil {
					t.Errorf("read-only open: %v", err)
					return
				}
				n := src.Epochs()
				for e := 0; e < n; e += 7 {
					ep, err := src.AppendEpochAt(e, buf[:0])
					if err != nil {
						t.Errorf("decode epoch %d/%d: %v", e, n, err)
						break
					}
					buf = ep.Records
				}
				src.Close()
			}
		}()
	}

	for e := 0; e < 200; e++ {
		if err := tw.WriteEpoch(epochTime(e), epochRecords(e, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// At least one automatic compaction must have fired.
	select {
	case <-compacted:
	case <-time.After(10 * time.Second):
		t.Error("automatic compaction never ran")
	}
	close(stop)
	wg.Wait()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	// Nothing lost: every epoch is accounted for, rolled up or not.
	src, err := OpenTieredSource(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	covered := 0
	for e := 0; e < src.Epochs(); e++ {
		covered += src.EpochInfo(e).Span
	}
	if covered != 200 {
		t.Fatalf("tiers cover %d source epochs, want 200", covered)
	}
}

// TestTieredExplicitCompactRacesAuto: an explicit Compact (the daemons'
// shutdown path) must serialize against an automatic pass still in
// flight from the last WriteEpoch. Unserialized, both passes compute the
// same next segment sequence, write the same temp file, and the second
// manifest publish drops the first's segment after its hot rewrite
// already trimmed those epochs — permanent loss this test would surface
// as a short epoch count (and as -race reports).
func TestTieredExplicitCompactRacesAuto(t *testing.T) {
	dir := t.TempDir()
	tw, _, err := OpenTiered(dir, TieredOptions{HotEpochs: 4, CompactEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	const total = 120
	for e := 0; e < total; e++ {
		if err := tw.WriteEpoch(epochTime(e), epochRecords(e, 24)); err != nil {
			t.Fatal(err)
		}
		// Explicit pass immediately after the write that may have kicked
		// off an automatic one — maximal overlap with the background
		// goroutine.
		if e%8 == 7 {
			if _, err := tw.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := tw.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	checkTiered(t, dir, total).Close()
}

// TestTieredCompactAfterClose: Compact on a closed store must fail fast
// instead of running against a closed hot writer.
func TestTieredCompactAfterClose(t *testing.T) {
	dir := t.TempDir()
	tw, _, err := OpenTiered(dir, TieredOptions{HotEpochs: 4})
	if err != nil {
		t.Fatal(err)
	}
	fillTiered(t, tw, 0, 8)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tw.Compact(); err == nil {
		t.Fatal("Compact on a closed store succeeded")
	}
}
