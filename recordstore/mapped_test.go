package recordstore

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/flow"
)

// buildStore writes epochs epochs of n pseudo-random records each and
// returns the file path plus the encoded bytes.
func buildStore(t testing.TB, epochs, n int) (string, []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	rng := uint64(0x9E3779B97F4A7C15)
	for e := 0; e < epochs; e++ {
		recs := make([]flow.Record, n)
		for i := range recs {
			rng = rng*6364136223846793005 + 1442695040888963407
			recs[i] = flow.Record{
				Key: flow.Key{
					SrcIP:   uint32(rng >> 32),
					DstIP:   uint32(rng),
					SrcPort: uint16(rng >> 16),
					DstPort: uint16(rng >> 48),
					Proto:   uint8(6 + rng%2*11),
				},
				Count: uint32(rng%100000 + 1),
			}
		}
		if err := w.WriteEpoch(time.Unix(int64(1700000000+60*e), 0), recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mapped.frec")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, buf.Bytes()
}

// TestMappedMatchesStreamedReader is the byte-equivalence contract: every
// epoch decoded through the mapped random-access path must be identical —
// timestamp and records — to the same epoch streamed through Reader.
func TestMappedMatchesStreamedReader(t *testing.T) {
	path, data := buildStore(t, 7, 500)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Epochs() != 7 {
		t.Fatalf("indexed %d epochs, want 7", m.Epochs())
	}
	if m.Truncated() {
		t.Fatal("complete store reported truncated")
	}

	r := NewReader(bytes.NewReader(data))
	for i := 0; ; i++ {
		streamed, err := r.ReadEpoch()
		if errors.Is(err, io.EOF) {
			if i != m.Epochs() {
				t.Fatalf("streamed %d epochs, mapped %d", i, m.Epochs())
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		mapped, err := m.EpochAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if !mapped.Time.Equal(streamed.Time) {
			t.Fatalf("epoch %d: mapped time %v, streamed %v", i, mapped.Time, streamed.Time)
		}
		if !reflect.DeepEqual(mapped.Records, streamed.Records) {
			t.Fatalf("epoch %d: mapped records differ from streamed", i)
		}
		if m.EpochLen(i) != len(streamed.Records) {
			t.Fatalf("epoch %d: EpochLen %d, want %d", i, m.EpochLen(i), len(streamed.Records))
		}
		if !m.EpochTime(i).Equal(streamed.Time) {
			t.Fatalf("epoch %d: EpochTime %v, want %v", i, m.EpochTime(i), streamed.Time)
		}
	}

	// Random access out of order must decode the same epochs again.
	for _, i := range []int{6, 0, 3} {
		ep, err := m.EpochAt(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(ep.Records) != m.EpochLen(i) {
			t.Fatalf("re-decode epoch %d: %d records, want %d", i, len(ep.Records), m.EpochLen(i))
		}
	}
	if _, err := m.EpochAt(7); err == nil {
		t.Fatal("EpochAt accepted out-of-range index")
	}
	if _, err := m.EpochAt(-1); err == nil {
		t.Fatal("EpochAt accepted negative index")
	}
}

func TestMappedRange(t *testing.T) {
	path, _ := buildStore(t, 5, 10) // timestamps 1700000000 + 60e
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	at := func(e int) time.Time { return time.Unix(int64(1700000000+60*e), 0) }
	cases := []struct {
		t0, t1 time.Time
		lo, hi int
	}{
		{at(0), at(5), 0, 5},
		{at(1), at(3), 1, 3},
		{at(1).Add(time.Second), at(3), 2, 3},
		{at(0), time.Time{}, 0, 5}, // zero t1: unbounded
		{at(4).Add(time.Minute), time.Time{}, 5, 5},
	}
	for i, tc := range cases {
		lo, hi := m.Range(tc.t0, tc.t1)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("case %d: Range = [%d,%d), want [%d,%d)", i, lo, hi, tc.lo, tc.hi)
		}
	}
}

// TestMappedRangeBoundaries pins the inclusive/exclusive convention the
// query layer's from=/to= parameters rely on: [t0, t1) — an epoch
// stamped exactly t0 is included, one stamped exactly t1 is excluded —
// covering the first and last epoch of the store explicitly.
func TestMappedRangeBoundaries(t *testing.T) {
	path, _ := buildStore(t, 5, 10) // timestamps 1700000000 + 60e, epochs 0..4
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	at := func(e int) time.Time { return time.Unix(int64(1700000000+60*e), 0) }
	cases := []struct {
		name   string
		t0, t1 time.Time
		lo, hi int
	}{
		{"from == first epoch includes it", at(0), at(1), 0, 1},
		{"from just after first excludes it", at(0).Add(time.Nanosecond), at(2), 1, 2},
		{"from before first clamps to first", at(0).Add(-time.Hour), at(1), 0, 1},
		{"to == last epoch excludes it", at(0), at(4), 0, 4},
		{"to just past last includes it", at(0), at(4).Add(time.Nanosecond), 0, 5},
		{"to beyond the store clamps", at(4), at(4).Add(time.Hour), 4, 5},
		{"adjacent windows tile without overlap", at(2), at(3), 2, 3},
		{"empty window at an epoch stamp", at(2), at(2), 2, 2},
	}
	for _, tc := range cases {
		if lo, hi := m.Range(tc.t0, tc.t1); lo != tc.lo || hi != tc.hi {
			t.Errorf("%s: Range = [%d,%d), want [%d,%d)", tc.name, lo, hi, tc.lo, tc.hi)
		}
	}
	// The tiling property: consecutive [at(e), at(e+1)) windows cover
	// every epoch exactly once.
	covered := make([]int, 5)
	for e := 0; e < 5; e++ {
		lo, hi := m.Range(at(e), at(e+1))
		for i := lo; i < hi; i++ {
			covered[i]++
		}
	}
	for i, n := range covered {
		if n != 1 {
			t.Errorf("epoch %d covered %d times by tiled windows", i, n)
		}
	}
}

// TestMappedTruncatedTail: a store whose last frame is incomplete — a live
// file mid-append — indexes the complete epochs and flags the tail.
func TestMappedTruncatedTail(t *testing.T) {
	_, data := buildStore(t, 3, 50)
	for _, cut := range []int{1, 7, len(data) / 2} {
		m, err := NewMappedBytes(data[:len(data)-cut])
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if !m.Truncated() {
			t.Errorf("cut %d: truncation not reported", cut)
		}
		if m.Epochs() >= 3 {
			t.Errorf("cut %d: %d epochs indexed from truncated store", cut, m.Epochs())
		}
		for i := 0; i < m.Epochs(); i++ {
			if _, err := m.EpochAt(i); err != nil {
				t.Errorf("cut %d: epoch %d failed to decode: %v", cut, i, err)
			}
		}
	}
}

func TestMappedRejectsGarbage(t *testing.T) {
	if _, err := NewMappedBytes(nil); !errors.Is(err, ErrNotStore) {
		t.Errorf("empty data: %v, want ErrNotStore", err)
	}
	if _, err := NewMappedBytes([]byte("NOPE\x01rest")); !errors.Is(err, ErrNotStore) {
		t.Errorf("bad magic: %v, want ErrNotStore", err)
	}
	if _, err := NewMappedBytes([]byte("FREC\x63")); err == nil {
		t.Error("accepted unknown version")
	}
	path := filepath.Join(t.TempDir(), "missing.frec")
	if _, err := OpenMapped(path); err == nil {
		t.Error("opened a missing file")
	}
	// Header-only store: zero epochs, no error.
	hdr := filepath.Join(t.TempDir(), "hdr.frec")
	if err := os.WriteFile(hdr, []byte("FREC\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenMapped(hdr)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Epochs() != 0 || m.Truncated() {
		t.Errorf("header-only store: %d epochs, truncated=%v", m.Epochs(), m.Truncated())
	}
}

func TestMappedCloseIdempotent(t *testing.T) {
	path, _ := buildStore(t, 1, 5)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFilterStringRoundTrip(t *testing.T) {
	cases := []Filter{
		{},
		{SrcIP: 0x0A000001},
		{DstIP: 0xC0A80101, DstPort: 443, Proto: 6},
		{SrcPort: 1234, MinPackets: 99},
		{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 5, MinPackets: 6},
	}
	for _, f := range cases {
		got, err := ParseFilter(f.String())
		if err != nil {
			t.Errorf("ParseFilter(%q): %v", f.String(), err)
			continue
		}
		if got != f {
			t.Errorf("round trip %q: got %+v, want %+v", f.String(), got, f)
		}
	}
}

// FuzzMapped feeds arbitrary bytes through the mapped index and decoder:
// errors are fine, panics and runaway allocations are not. Valid stores
// must index without error.
func FuzzMapped(f *testing.F) {
	var valid bytes.Buffer
	w := NewWriter(&valid)
	_ = w.WriteEpoch(time.Unix(1, 0), []flow.Record{
		{Key: flow.Key{SrcIP: 1, Proto: 6}, Count: 2},
		{Key: flow.Key{SrcIP: 2, Proto: 17}, Count: 9},
	})
	_ = w.Flush()
	f.Add(valid.Bytes())
	f.Add([]byte("FREC\x01"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := NewMappedBytes(data)
		if err != nil {
			return
		}
		for i := 0; i < m.Epochs(); i++ {
			_, _ = m.EpochAt(i)
		}
	})
}
