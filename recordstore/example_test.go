package recordstore_test

import (
	"bytes"
	"fmt"
	"time"

	"repro/flow"
	"repro/recordstore"
)

// Persist an epoch of flow records and read it back.
func Example() {
	var buf bytes.Buffer
	w := recordstore.NewWriter(&buf)
	err := w.WriteEpoch(time.Unix(1700000000, 0), []flow.Record{
		{Key: flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000002, DstPort: 443, Proto: 6}, Count: 99},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := w.Flush(); err != nil {
		fmt.Println(err)
		return
	}

	epochs, err := recordstore.NewReader(&buf).ReadAll()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(epochs), epochs[0].Records[0].Count)
	// Output: 1 99
}

func ExampleParseFilter() {
	f, err := recordstore.ParseFilter("dport=443,proto=6,minpkts=10")
	if err != nil {
		fmt.Println(err)
		return
	}
	records := []flow.Record{
		{Key: flow.Key{DstPort: 443, Proto: 6}, Count: 50},
		{Key: flow.Key{DstPort: 80, Proto: 6}, Count: 500},
	}
	fmt.Println(len(f.Apply(records)))
	// Output: 1
}
