package recordstore

import (
	"testing"

	"repro/flow"
)

var sample = []flow.Record{
	{Key: flow.Key{SrcIP: 0x0A000001, DstIP: 0x0B000001, SrcPort: 1000, DstPort: 443, Proto: 6}, Count: 500},
	{Key: flow.Key{SrcIP: 0x0A000002, DstIP: 0x0B000001, SrcPort: 1001, DstPort: 80, Proto: 6}, Count: 5},
	{Key: flow.Key{SrcIP: 0x0A000001, DstIP: 0x0C000001, SrcPort: 1002, DstPort: 53, Proto: 17}, Count: 2},
}

func TestFilterMatch(t *testing.T) {
	tests := []struct {
		name string
		f    Filter
		want int
	}{
		{"match all", Filter{}, 3},
		{"by src", Filter{SrcIP: 0x0A000001}, 2},
		{"by dst", Filter{DstIP: 0x0B000001}, 2},
		{"by dport", Filter{DstPort: 443}, 1},
		{"by sport", Filter{SrcPort: 1001}, 1},
		{"by proto", Filter{Proto: 17}, 1},
		{"by minpkts", Filter{MinPackets: 10}, 1},
		{"combined", Filter{SrcIP: 0x0A000001, Proto: 6}, 1},
		{"no match", Filter{SrcIP: 0x0A000001, Proto: 17, DstPort: 443}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := len(tc.f.Apply(sample)); got != tc.want {
				t.Errorf("Apply matched %d records, want %d", got, tc.want)
			}
		})
	}
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter("src=10.0.0.1, dport=443, proto=6, minpkts=100")
	if err != nil {
		t.Fatal(err)
	}
	want := Filter{SrcIP: 0x0A000001, DstPort: 443, Proto: 6, MinPackets: 100}
	if f != want {
		t.Errorf("ParseFilter = %+v, want %+v", f, want)
	}
	if got := f.Apply(sample); len(got) != 1 || got[0].Count != 500 {
		t.Errorf("parsed filter matched %v", got)
	}
}

func TestParseFilterAllKeys(t *testing.T) {
	f, err := ParseFilter("dst=11.0.0.1,sport=1001")
	if err != nil {
		t.Fatal(err)
	}
	if f.DstIP != 0x0B000001 || f.SrcPort != 1001 {
		t.Errorf("ParseFilter = %+v", f)
	}
}

func TestParseFilterEmpty(t *testing.T) {
	f, err := ParseFilter("  ")
	if err != nil {
		t.Fatal(err)
	}
	if f != (Filter{}) {
		t.Errorf("empty expression = %+v, want zero filter", f)
	}
}

func TestParseFilterErrors(t *testing.T) {
	for _, expr := range []string{
		"src",               // no value
		"src=bogus",         // bad IP
		"src=::1",           // not IPv4
		"dport=99999",       // port overflow
		"proto=300",         // proto overflow
		"minpkts=x",         // not a number
		"color=blue",        // unknown key
		"src=10.0.0.1,,x=y", // malformed tail
	} {
		if _, err := ParseFilter(expr); err == nil {
			t.Errorf("ParseFilter(%q) accepted invalid expression", expr)
		}
	}
}
