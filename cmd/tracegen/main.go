// Command tracegen writes synthetic traces, modeled on the paper's four
// evaluation traces, as pcap files or flow-record CSV.
//
// Usage:
//
//	tracegen -profile Campus -flows 50000 -seed 1 -format pcap -out campus.pcap
//	tracegen -profile CAIDA -flows 10000 -format csv -out caida_flows.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/pcapio"
	"repro/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	profile := fs.String("profile", "CAIDA", "trace profile: CAIDA, Campus, ISP1, ISP2")
	flows := fs.Int("flows", 10000, "number of flows")
	seed := fs.Uint64("seed", 1, "RNG seed")
	format := fs.String("format", "pcap", "output format: pcap or csv")
	out := fs.String("out", "", "output path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := trace.ProfileByName(*profile)
	if err != nil {
		return err
	}
	tr, err := trace.Generate(p, *flows, *seed)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *format {
	case "pcap":
		return writePcap(w, tr, *seed)
	case "csv":
		return writeCSV(w, tr)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func writePcap(w io.Writer, tr *trace.Trace, seed uint64) error {
	pw := pcapio.NewWriter(w)
	ts := time.Now().UTC()
	s := tr.Stream(seed)
	for {
		p, ok := s.Next()
		if !ok {
			break
		}
		if err := pw.WritePacket(p, ts); err != nil {
			return err
		}
		ts = ts.Add(10 * time.Microsecond)
	}
	return pw.Flush()
}

func writeCSV(w io.Writer, tr *trace.Trace) error {
	if _, err := fmt.Fprintln(w, "src_ip,dst_ip,src_port,dst_port,proto,packets"); err != nil {
		return err
	}
	for _, f := range tr.Flows {
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d\n",
			f.Key.SrcIP, f.Key.DstIP, f.Key.SrcPort, f.Key.DstPort, f.Key.Proto, f.Count)
		if err != nil {
			return err
		}
	}
	return nil
}
