package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/pcapio"
)

func TestRunPcap(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.pcap")
	err := run([]string{"-profile", "ISP2", "-flows", "200", "-seed", "3", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pkts, err := pcapio.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 200 {
		t.Errorf("pcap has %d packets, want >= 200 (one per flow at minimum)", len(pkts))
	}
}

func TestRunCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "t.csv")
	err := run([]string{"-profile", "CAIDA", "-flows", "100", "-format", "csv", "-out", out})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 101 { // header + 100 flows
		t.Fatalf("CSV has %d lines, want 101", len(lines))
	}
	if lines[0] != "src_ip,dst_ip,src_port,dst_port,proto,packets" {
		t.Errorf("bad header: %q", lines[0])
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{"-profile", "nope"}); err == nil {
		t.Error("accepted unknown profile")
	}
	if err := run([]string{"-format", "xml"}); err == nil {
		t.Error("accepted unknown format")
	}
	if err := run([]string{"-flows", "0"}); err == nil {
		t.Error("accepted zero flows")
	}
}
