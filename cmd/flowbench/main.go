// Command flowbench regenerates the tables and figures of the HashFlow
// paper's evaluation section as TSV on stdout.
//
// Usage:
//
//	flowbench [flags] <experiment>
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9,
// fig10, fig11, all — plus extras, which compares the beyond-paper
// recorders (sampled NetFlow, cuckoo, Space-Saving) against HashFlow, and
// pipeline, which measures end-to-end ingestion throughput of the sharded
// recorder (per-packet vs batched vs async across shard counts).
//
// Flags:
//
//	-mem bytes    memory budget per algorithm (default 1 MiB, the paper's)
//	-seed n       RNG seed (default 1)
//	-quick        reduced scale for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/collector"
	"repro/experiments"
	"repro/flowmon"
	"repro/shard"
	"repro/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowbench:", err)
		os.Exit(1)
	}
}

type config struct {
	mem   int
	seed  uint64
	quick bool
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flowbench", flag.ContinueOnError)
	mem := fs.Int("mem", experiments.DefaultMemory, "memory budget in bytes per algorithm")
	seed := fs.Uint64("seed", experiments.DefaultSeed, "RNG seed")
	quick := fs.Bool("quick", false, "reduced scale for a fast run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flowbench [flags] <table1|fig2|...|fig11|extras|pipeline|all>")
	}
	cfg := config{mem: *mem, seed: *seed, quick: *quick}

	name := fs.Arg(0)
	if name == "all" {
		for _, exp := range []string{"table1", "fig2", "fig3", "fig4", "fig5",
			"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
			if _, err := fmt.Fprintf(w, "## %s\n", exp); err != nil {
				return err
			}
			if err := runOne(exp, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", exp, err)
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(name, cfg, w)
}

// scales returns experiment sizes, shrunk in quick mode.
func (c config) flows(full int) int {
	if c.quick {
		return full / 10
	}
	return full
}

func (c config) sweep(full []int) []int {
	if !c.quick {
		return full
	}
	out := make([]int, len(full))
	for i, v := range full {
		out[i] = v / 10
	}
	return out
}

func runOne(name string, cfg config, w io.Writer) error {
	switch name {
	case "table1":
		header, rows, err := experiments.Table1Rows(cfg.flows(250000), cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig2":
		n := 100000
		if cfg.quick {
			n = 10000
		}
		pts := experiments.Fig2MultiHash(n, []float64{1, 2, 3, 4}, 10, cfg.seed)
		for _, load := range []float64{1.0, 2.0} {
			pts = append(pts, experiments.Fig2Pipelined(n, load, []float64{0.5, 0.6, 0.7, 0.8}, 10, cfg.seed)...)
		}
		header, rows := experiments.Fig2Rows(pts)
		if err := experiments.WriteTSV(w, header, rows); err != nil {
			return err
		}
		alphas := []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}
		loads := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 3.0, 4.0}
		h2, r2 := experiments.Fig2ImprovementRows(alphas, loads, 3)
		if _, err := fmt.Fprintln(w, "# fig2d improvement"); err != nil {
			return err
		}
		return experiments.WriteTSV(w, h2, r2)

	case "fig3":
		header, rows, err := experiments.Fig3Rows(cfg.flows(250000), cfg.seed, 200)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig4":
		header, rows, err := experiments.Fig4Rows(cfg.flows(50000), cfg.mem, []int{1, 2, 3, 4}, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig5":
		counts := cfg.sweep([]int{10000, 20000, 30000, 40000, 50000, 60000})
		header, rows, err := experiments.Fig5Rows(counts, cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig6", "fig7", "fig8":
		var counts []int
		if name == "fig8" {
			counts = cfg.sweep([]int{20000, 40000, 60000, 80000, 100000})
		} else {
			counts = cfg.sweep([]int{25000, 50000, 100000, 150000, 200000, 250000})
		}
		metric := map[string]string{"fig6": "FSC", "fig7": "RE", "fig8": "ARE"}[name]
		for _, p := range trace.Profiles() {
			ms, err := experiments.AppPerformance(p, counts, cfg.mem, cfg.seed)
			if err != nil {
				return err
			}
			header, rows := experiments.AppMetricsRows(ms, metric)
			if p.Name == trace.Profiles()[0].Name {
				if err := experiments.WriteTSV(w, header, rows); err != nil {
					return err
				}
				continue
			}
			if err := experiments.WriteTSV(w, nil, rows); err != nil {
				return err
			}
		}
		return nil

	case "fig9", "fig10":
		flows := cfg.flows(250000)
		first := true
		for _, p := range trace.Profiles() {
			ms, err := experiments.HeavyHitterSweep(p, flows, cfg.mem, experiments.HHThresholds(p.Name), cfg.seed)
			if err != nil {
				return err
			}
			header, rows := experiments.HHRows(ms)
			if first {
				first = false
				if err := experiments.WriteTSV(w, header, rows); err != nil {
					return err
				}
				continue
			}
			if err := experiments.WriteTSV(w, nil, rows); err != nil {
				return err
			}
		}
		return nil

	case "fig11":
		header, rows, err := experiments.Fig11Rows(cfg.flows(100000), cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "extras":
		header, rows, err := experiments.ExtrasRows(cfg.flows(100000), cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "pipeline":
		return runPipeline(cfg, w)

	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

// runPipeline measures wall-clock ingestion throughput of the sharded
// recorder end to end: the per-packet sequential path, the staged batch
// path (one lock per shard per batch, via the collector ingestor), and the
// asynchronous path (per-shard workers), across shard counts.
func runPipeline(cfg config, w io.Writer) error {
	tr, err := trace.Generate(trace.CAIDA, cfg.flows(100000), cfg.seed)
	if err != nil {
		return err
	}
	pkts := tr.Packets(cfg.seed)
	if _, err := fmt.Fprintln(w, "shards\tmode\tbatch\tpackets\tns_per_pkt\tMpps"); err != nil {
		return err
	}
	mcfg := flowmon.Config{MemoryBytes: cfg.mem, Seed: cfg.seed}
	for _, shards := range []int{1, 4, 8} {
		for _, mode := range []string{"sequential", "batched", "async"} {
			var s *shard.Sharded
			if mode == "async" {
				s, err = shard.NewUniformAsync(shards, 0, flowmon.AlgorithmHashFlow, mcfg)
			} else {
				s, err = shard.NewUniform(shards, flowmon.AlgorithmHashFlow, mcfg)
			}
			if err != nil {
				return err
			}

			batch := 1
			start := time.Now()
			if mode == "sequential" {
				for _, p := range pkts {
					s.Update(p)
				}
			} else {
				batch = collector.DefaultBatchSize
				if err := collector.Replay(s, pkts, batch); err != nil {
					return err
				}
				s.Flush()
			}
			elapsed := time.Since(start)
			s.Close()

			if got := s.OpStats().Packets; got != uint64(len(pkts)) {
				return fmt.Errorf("pipeline %s/%d: recorded %d packets, want %d", mode, shards, got, len(pkts))
			}
			nsPkt := float64(elapsed.Nanoseconds()) / float64(len(pkts))
			mpps := float64(len(pkts)) / elapsed.Seconds() / 1e6
			if _, err := fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%.1f\t%.3f\n",
				shards, mode, batch, len(pkts), nsPkt, mpps); err != nil {
				return err
			}
		}
	}
	return nil
}
