// Command flowbench regenerates the tables and figures of the HashFlow
// paper's evaluation section as TSV on stdout.
//
// Usage:
//
//	flowbench [flags] <experiment>
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9,
// fig10, fig11, all — plus extras, which compares the beyond-paper
// recorders (sampled NetFlow, cuckoo, Space-Saving) against HashFlow.
//
// Flags:
//
//	-mem bytes    memory budget per algorithm (default 1 MiB, the paper's)
//	-seed n       RNG seed (default 1)
//	-quick        reduced scale for a fast smoke run
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/experiments"
	"repro/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowbench:", err)
		os.Exit(1)
	}
}

type config struct {
	mem   int
	seed  uint64
	quick bool
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flowbench", flag.ContinueOnError)
	mem := fs.Int("mem", experiments.DefaultMemory, "memory budget in bytes per algorithm")
	seed := fs.Uint64("seed", experiments.DefaultSeed, "RNG seed")
	quick := fs.Bool("quick", false, "reduced scale for a fast run")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flowbench [flags] <table1|fig2|...|fig11|extras|all>")
	}
	cfg := config{mem: *mem, seed: *seed, quick: *quick}

	name := fs.Arg(0)
	if name == "all" {
		for _, exp := range []string{"table1", "fig2", "fig3", "fig4", "fig5",
			"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
			if _, err := fmt.Fprintf(w, "## %s\n", exp); err != nil {
				return err
			}
			if err := runOne(exp, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", exp, err)
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(name, cfg, w)
}

// scales returns experiment sizes, shrunk in quick mode.
func (c config) flows(full int) int {
	if c.quick {
		return full / 10
	}
	return full
}

func (c config) sweep(full []int) []int {
	if !c.quick {
		return full
	}
	out := make([]int, len(full))
	for i, v := range full {
		out[i] = v / 10
	}
	return out
}

func runOne(name string, cfg config, w io.Writer) error {
	switch name {
	case "table1":
		header, rows, err := experiments.Table1Rows(cfg.flows(250000), cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig2":
		n := 100000
		if cfg.quick {
			n = 10000
		}
		pts := experiments.Fig2MultiHash(n, []float64{1, 2, 3, 4}, 10, cfg.seed)
		for _, load := range []float64{1.0, 2.0} {
			pts = append(pts, experiments.Fig2Pipelined(n, load, []float64{0.5, 0.6, 0.7, 0.8}, 10, cfg.seed)...)
		}
		header, rows := experiments.Fig2Rows(pts)
		if err := experiments.WriteTSV(w, header, rows); err != nil {
			return err
		}
		alphas := []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}
		loads := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 3.0, 4.0}
		h2, r2 := experiments.Fig2ImprovementRows(alphas, loads, 3)
		if _, err := fmt.Fprintln(w, "# fig2d improvement"); err != nil {
			return err
		}
		return experiments.WriteTSV(w, h2, r2)

	case "fig3":
		header, rows, err := experiments.Fig3Rows(cfg.flows(250000), cfg.seed, 200)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig4":
		header, rows, err := experiments.Fig4Rows(cfg.flows(50000), cfg.mem, []int{1, 2, 3, 4}, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig5":
		counts := cfg.sweep([]int{10000, 20000, 30000, 40000, 50000, 60000})
		header, rows, err := experiments.Fig5Rows(counts, cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig6", "fig7", "fig8":
		var counts []int
		if name == "fig8" {
			counts = cfg.sweep([]int{20000, 40000, 60000, 80000, 100000})
		} else {
			counts = cfg.sweep([]int{25000, 50000, 100000, 150000, 200000, 250000})
		}
		metric := map[string]string{"fig6": "FSC", "fig7": "RE", "fig8": "ARE"}[name]
		for _, p := range trace.Profiles() {
			ms, err := experiments.AppPerformance(p, counts, cfg.mem, cfg.seed)
			if err != nil {
				return err
			}
			header, rows := experiments.AppMetricsRows(ms, metric)
			if p.Name == trace.Profiles()[0].Name {
				if err := experiments.WriteTSV(w, header, rows); err != nil {
					return err
				}
				continue
			}
			if err := experiments.WriteTSV(w, nil, rows); err != nil {
				return err
			}
		}
		return nil

	case "fig9", "fig10":
		flows := cfg.flows(250000)
		first := true
		for _, p := range trace.Profiles() {
			ms, err := experiments.HeavyHitterSweep(p, flows, cfg.mem, experiments.HHThresholds(p.Name), cfg.seed)
			if err != nil {
				return err
			}
			header, rows := experiments.HHRows(ms)
			if first {
				first = false
				if err := experiments.WriteTSV(w, header, rows); err != nil {
					return err
				}
				continue
			}
			if err := experiments.WriteTSV(w, nil, rows); err != nil {
				return err
			}
		}
		return nil

	case "fig11":
		header, rows, err := experiments.Fig11Rows(cfg.flows(100000), cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "extras":
		header, rows, err := experiments.ExtrasRows(cfg.flows(100000), cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
