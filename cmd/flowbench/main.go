// Command flowbench regenerates the tables and figures of the HashFlow
// paper's evaluation section as TSV on stdout.
//
// Usage:
//
//	flowbench [flags] <experiment>
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9,
// fig10, fig11, all — plus extras, which compares the beyond-paper
// recorders (sampled NetFlow, cuckoo, Space-Saving) against HashFlow;
// pipeline, which measures end-to-end ingestion throughput of the sharded
// recorder (per-packet vs batched vs async across shard counts); and
// export, which measures the collection side — epoch record extraction and
// recordstore encoding across shard counts, plus single- vs
// double-buffered epoch rotation under continuous ingestion.
//
// Flags:
//
//	-mem bytes    memory budget per algorithm (default 1 MiB, the paper's)
//	-seed n       RNG seed (default 1)
//	-quick        reduced scale for a fast smoke run
//	-json         additionally write BENCH_<experiment>.json with the
//	              pipeline/export measurements (the perf trajectory record)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"slices"
	"time"

	"repro/adaptive"
	"repro/collector"
	"repro/experiments"
	"repro/flow"
	"repro/flowmon"
	"repro/recordstore"
	"repro/shard"
	"repro/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowbench:", err)
		os.Exit(1)
	}
}

type config struct {
	mem   int
	seed  uint64
	quick bool
	json  bool
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flowbench", flag.ContinueOnError)
	mem := fs.Int("mem", experiments.DefaultMemory, "memory budget in bytes per algorithm")
	seed := fs.Uint64("seed", experiments.DefaultSeed, "RNG seed")
	quick := fs.Bool("quick", false, "reduced scale for a fast run")
	jsonOut := fs.Bool("json", false, "also write BENCH_<experiment>.json (pipeline and export)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flowbench [flags] <table1|fig2|...|fig11|extras|pipeline|export|all>")
	}
	cfg := config{mem: *mem, seed: *seed, quick: *quick, json: *jsonOut}

	name := fs.Arg(0)
	if name == "all" {
		for _, exp := range []string{"table1", "fig2", "fig3", "fig4", "fig5",
			"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
			if _, err := fmt.Fprintf(w, "## %s\n", exp); err != nil {
				return err
			}
			if err := runOne(exp, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", exp, err)
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(name, cfg, w)
}

// scales returns experiment sizes, shrunk in quick mode.
func (c config) flows(full int) int {
	if c.quick {
		return full / 10
	}
	return full
}

func (c config) sweep(full []int) []int {
	if !c.quick {
		return full
	}
	out := make([]int, len(full))
	for i, v := range full {
		out[i] = v / 10
	}
	return out
}

func runOne(name string, cfg config, w io.Writer) error {
	switch name {
	case "table1":
		header, rows, err := experiments.Table1Rows(cfg.flows(250000), cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig2":
		n := 100000
		if cfg.quick {
			n = 10000
		}
		pts := experiments.Fig2MultiHash(n, []float64{1, 2, 3, 4}, 10, cfg.seed)
		for _, load := range []float64{1.0, 2.0} {
			pts = append(pts, experiments.Fig2Pipelined(n, load, []float64{0.5, 0.6, 0.7, 0.8}, 10, cfg.seed)...)
		}
		header, rows := experiments.Fig2Rows(pts)
		if err := experiments.WriteTSV(w, header, rows); err != nil {
			return err
		}
		alphas := []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}
		loads := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 3.0, 4.0}
		h2, r2 := experiments.Fig2ImprovementRows(alphas, loads, 3)
		if _, err := fmt.Fprintln(w, "# fig2d improvement"); err != nil {
			return err
		}
		return experiments.WriteTSV(w, h2, r2)

	case "fig3":
		header, rows, err := experiments.Fig3Rows(cfg.flows(250000), cfg.seed, 200)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig4":
		header, rows, err := experiments.Fig4Rows(cfg.flows(50000), cfg.mem, []int{1, 2, 3, 4}, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig5":
		counts := cfg.sweep([]int{10000, 20000, 30000, 40000, 50000, 60000})
		header, rows, err := experiments.Fig5Rows(counts, cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig6", "fig7", "fig8":
		var counts []int
		if name == "fig8" {
			counts = cfg.sweep([]int{20000, 40000, 60000, 80000, 100000})
		} else {
			counts = cfg.sweep([]int{25000, 50000, 100000, 150000, 200000, 250000})
		}
		metric := map[string]string{"fig6": "FSC", "fig7": "RE", "fig8": "ARE"}[name]
		for _, p := range trace.Profiles() {
			ms, err := experiments.AppPerformance(p, counts, cfg.mem, cfg.seed)
			if err != nil {
				return err
			}
			header, rows := experiments.AppMetricsRows(ms, metric)
			if p.Name == trace.Profiles()[0].Name {
				if err := experiments.WriteTSV(w, header, rows); err != nil {
					return err
				}
				continue
			}
			if err := experiments.WriteTSV(w, nil, rows); err != nil {
				return err
			}
		}
		return nil

	case "fig9", "fig10":
		flows := cfg.flows(250000)
		first := true
		for _, p := range trace.Profiles() {
			ms, err := experiments.HeavyHitterSweep(p, flows, cfg.mem, experiments.HHThresholds(p.Name), cfg.seed)
			if err != nil {
				return err
			}
			header, rows := experiments.HHRows(ms)
			if first {
				first = false
				if err := experiments.WriteTSV(w, header, rows); err != nil {
					return err
				}
				continue
			}
			if err := experiments.WriteTSV(w, nil, rows); err != nil {
				return err
			}
		}
		return nil

	case "fig11":
		header, rows, err := experiments.Fig11Rows(cfg.flows(100000), cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "extras":
		header, rows, err := experiments.ExtrasRows(cfg.flows(100000), cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "pipeline":
		return runPipeline(cfg, w)

	case "export":
		return runExportBench(cfg, w)

	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

// writeBenchJSON records an experiment's measurements as
// BENCH_<name>.json in the working directory, the machine-readable perf
// trajectory that successive PRs diff against.
func writeBenchJSON(name string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+name+".json", append(b, '\n'), 0o644)
}

// pipelineRow is one ingestion-throughput measurement.
type pipelineRow struct {
	Shards   int     `json:"shards"`
	Mode     string  `json:"mode"`
	Batch    int     `json:"batch"`
	Packets  int     `json:"packets"`
	NsPerPkt float64 `json:"ns_per_pkt"`
	Mpps     float64 `json:"mpps"`
}

// runPipeline measures wall-clock ingestion throughput of the sharded
// recorder end to end: the per-packet sequential path, the staged batch
// path (one lock per shard per batch, via the collector ingestor), and the
// asynchronous path (per-shard workers), across shard counts.
func runPipeline(cfg config, w io.Writer) error {
	tr, err := trace.Generate(trace.CAIDA, cfg.flows(100000), cfg.seed)
	if err != nil {
		return err
	}
	pkts := tr.Packets(cfg.seed)
	if _, err := fmt.Fprintln(w, "shards\tmode\tbatch\tpackets\tns_per_pkt\tMpps"); err != nil {
		return err
	}
	mcfg := flowmon.Config{MemoryBytes: cfg.mem, Seed: cfg.seed}
	var rows []pipelineRow
	for _, shards := range []int{1, 4, 8} {
		for _, mode := range []string{"sequential", "batched", "async"} {
			var s *shard.Sharded
			if mode == "async" {
				s, err = shard.NewUniformAsync(shards, 0, flowmon.AlgorithmHashFlow, mcfg)
			} else {
				s, err = shard.NewUniform(shards, flowmon.AlgorithmHashFlow, mcfg)
			}
			if err != nil {
				return err
			}

			batch := 1
			start := time.Now()
			if mode == "sequential" {
				for _, p := range pkts {
					s.Update(p)
				}
			} else {
				batch = collector.DefaultBatchSize
				if err := collector.Replay(s, pkts, batch); err != nil {
					return err
				}
				s.Flush()
			}
			elapsed := time.Since(start)
			s.Close()

			if got := s.OpStats().Packets; got != uint64(len(pkts)) {
				return fmt.Errorf("pipeline %s/%d: recorded %d packets, want %d", mode, shards, got, len(pkts))
			}
			row := pipelineRow{
				Shards:   shards,
				Mode:     mode,
				Batch:    batch,
				Packets:  len(pkts),
				NsPerPkt: float64(elapsed.Nanoseconds()) / float64(len(pkts)),
				Mpps:     float64(len(pkts)) / elapsed.Seconds() / 1e6,
			}
			rows = append(rows, row)
			if _, err := fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%.1f\t%.3f\n",
				row.Shards, row.Mode, row.Batch, row.Packets, row.NsPerPkt, row.Mpps); err != nil {
				return err
			}
		}
	}
	if cfg.json {
		return writeBenchJSON("pipeline", rows)
	}
	return nil
}

// exportRow is one epoch-export measurement: extract every record from a
// full recorder and encode the epoch into the record store.
type exportRow struct {
	Recorder      string  `json:"recorder"`
	Shards        int     `json:"shards"`
	RecordsPerEp  int     `json:"records_per_epoch"`
	Epochs        int     `json:"epochs"`
	NsPerRecord   float64 `json:"ns_per_record"`
	MRecPerS      float64 `json:"mrec_per_s"`
	BytesPerEpoch int     `json:"bytes_per_epoch"`
}

// rotationRow is one continuous-rotation measurement: ingest the trace
// under adaptive epoch control with the flush path either inline (single)
// or on the double-buffered background worker.
type rotationRow struct {
	Mode       string  `json:"mode"`
	Packets    int     `json:"packets"`
	Epochs     int     `json:"epochs"`
	NsPerPkt   float64 `json:"ns_per_pkt"`
	Mpps       float64 `json:"mpps"`
	MedStallUs float64 `json:"med_stall_us"`
	MaxStallUs float64 `json:"max_stall_us"`
}

// countWriter counts bytes, standing in for a store file on the export
// measurements.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// runExportBench measures the collection half of the pipeline. First the
// steady-state epoch export path — AppendRecords into a reused buffer,
// then recordstore.WriteEpoch (radix sort + delta encode) — for the plain
// HashFlow recorder and the sharded recorder across shard counts. Then
// continuous epoch rotation under ingestion, single- vs double-buffered.
func runExportBench(cfg config, w io.Writer) error {
	tr, err := trace.Generate(trace.CAIDA, cfg.flows(100000), cfg.seed)
	if err != nil {
		return err
	}
	pkts := tr.Packets(cfg.seed)
	mcfg := flowmon.Config{MemoryBytes: cfg.mem, Seed: cfg.seed}
	epochs := 64
	if cfg.quick {
		epochs = 8
	}

	if _, err := fmt.Fprintln(w, "recorder\tshards\trecords_per_epoch\tepochs\tns_per_record\tMrec_per_s\tbytes_per_epoch"); err != nil {
		return err
	}
	var exportRows []exportRow
	for _, shards := range []int{0, 1, 4, 8} {
		var (
			rec  flowmon.Recorder
			name string
		)
		if shards == 0 {
			name = "HashFlow"
			rec, err = flowmon.New(flowmon.AlgorithmHashFlow, mcfg)
		} else {
			name = "Sharded/HashFlow"
			var s *shard.Sharded
			s, err = shard.NewUniform(shards, flowmon.AlgorithmHashFlow, mcfg)
			if s != nil {
				defer s.Close()
			}
			rec = s
		}
		if err != nil {
			return err
		}
		if err := collector.Replay(rec, pkts, collector.DefaultBatchSize); err != nil {
			return err
		}

		cw := &countWriter{}
		store := recordstore.NewWriter(cw)
		var buf []flow.Record
		ts := time.Unix(0, 0)
		// Warm the reusable buffers so the timed loop is the steady state.
		buf = rec.AppendRecords(buf[:0])
		if err := store.WriteEpoch(ts, buf); err != nil {
			return err
		}
		cw.n = 0
		start := time.Now()
		for e := 0; e < epochs; e++ {
			buf = rec.AppendRecords(buf[:0])
			if err := store.WriteEpoch(ts, buf); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)

		row := exportRow{
			Recorder:      name,
			Shards:        shards,
			RecordsPerEp:  len(buf),
			Epochs:        epochs,
			NsPerRecord:   float64(elapsed.Nanoseconds()) / float64(epochs*len(buf)),
			MRecPerS:      float64(epochs*len(buf)) / elapsed.Seconds() / 1e6,
			BytesPerEpoch: int(cw.n) / epochs,
		}
		exportRows = append(exportRows, row)
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%.3f\t%d\n",
			row.Recorder, row.Shards, row.RecordsPerEp, row.Epochs,
			row.NsPerRecord, row.MRecPerS, row.BytesPerEpoch); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintln(w, "\nrotation\tpackets\tepochs\tns_per_pkt\tMpps\tmed_stall_us\tmax_stall_us"); err != nil {
		return err
	}
	var rotationRows []rotationRow
	for _, mode := range []string{"single", "double"} {
		store := recordstore.NewWriter(&countWriter{})
		flushFn := func(epoch int, recs []flow.Record) {
			if err := store.WriteEpoch(time.Unix(0, 0), recs); err != nil {
				panic(err) // countWriter cannot fail
			}
		}
		active, err := flowmon.NewHashFlow(mcfg)
		if err != nil {
			return err
		}
		// Epoch boundaries are packet-budget driven; push the watermark
		// check out of the way (its full-table cardinality scan is its own
		// hot-path stall, not the one under measurement here).
		acfg := adaptive.Config{
			Capacity:        active.MainCells(),
			MaxEpochPackets: uint64(len(pkts) / 4),
			CheckEvery:      1 << 62,
		}
		var m *adaptive.Manager
		if mode == "single" {
			m, err = adaptive.NewManager(active, acfg, flushFn)
		} else {
			sb, err2 := flowmon.NewHashFlow(mcfg)
			if err2 != nil {
				return err2
			}
			m, err = adaptive.NewDoubleBuffered(active, sb, acfg, flushFn)
		}
		if err != nil {
			return err
		}

		// Rotation stalls are the packet-path cost of an epoch boundary:
		// in single-buffer mode the rotating Update extracts, sorts and
		// encodes the whole epoch inline, while double-buffering reduces
		// the stall to a recorder swap (plus backpressure if the drain
		// worker is still busy). Rotations fire exactly when the epoch's
		// packet budget fills, so only those updates are timed and the
		// throughput loop stays clean; several passes give enough
		// rotations for a stable median.
		var stalls []time.Duration
		passes := 4
		start := time.Now()
		for pass := 0; pass < passes; pass++ {
			for _, p := range pkts {
				if m.EpochPackets() == acfg.MaxEpochPackets-1 {
					t0 := time.Now()
					m.Update(p)
					stalls = append(stalls, time.Since(t0))
					continue
				}
				m.Update(p)
			}
		}
		m.Flush()
		m.Close()
		elapsed := time.Since(start)
		slices.Sort(stalls)
		var medStall, maxStall time.Duration
		if len(stalls) > 0 {
			medStall = stalls[len(stalls)/2]
			maxStall = stalls[len(stalls)-1]
		}

		totalPkts := passes * len(pkts)
		row := rotationRow{
			Mode:       mode,
			Packets:    totalPkts,
			Epochs:     m.Epoch(),
			NsPerPkt:   float64(elapsed.Nanoseconds()) / float64(totalPkts),
			Mpps:       float64(totalPkts) / elapsed.Seconds() / 1e6,
			MedStallUs: float64(medStall.Nanoseconds()) / 1e3,
			MaxStallUs: float64(maxStall.Nanoseconds()) / 1e3,
		}
		rotationRows = append(rotationRows, row)
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.3f\t%.1f\t%.1f\n",
			row.Mode, row.Packets, row.Epochs, row.NsPerPkt, row.Mpps, row.MedStallUs, row.MaxStallUs); err != nil {
			return err
		}
	}

	if cfg.json {
		return writeBenchJSON("export", struct {
			Export   []exportRow   `json:"export"`
			Rotation []rotationRow `json:"rotation"`
		}{exportRows, rotationRows})
	}
	return nil
}
