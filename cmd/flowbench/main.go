// Command flowbench regenerates the tables and figures of the HashFlow
// paper's evaluation section as TSV on stdout.
//
// Usage:
//
//	flowbench [flags] <experiment>
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6, fig7, fig8, fig9,
// fig10, fig11, all — plus extras, which compares the beyond-paper
// recorders (sampled NetFlow, cuckoo, Space-Saving) against HashFlow;
// pipeline, which measures end-to-end ingestion throughput of the sharded
// recorder (per-packet vs batched vs async across shard counts); export,
// which measures the collection side — epoch record extraction and
// recordstore encoding across shard counts, plus single- vs
// double-buffered epoch rotation under continuous ingestion; query,
// which measures the read path — ingest cost of the online top-k sidecar,
// mmap vs streamed epoch scans over a multi-epoch store, and live /topk
// request latency; detect, which measures the detection subsystem —
// per-epoch detector cost, the drain-stall impact of attaching it to the
// double-buffered rotation, and precision/recall against synthetic
// injected heavy changes and superspreaders; and frontend, which
// measures the multi-socket collection frontend — the no-socket
// decode+sequence-accounting path scaled across reader goroutines, and
// end-to-end loopback UDP delivery through a live collector.Server at
// one socket vs N SO_REUSEPORT sockets; telemetry, which proves
// the runtime instruments are free — batched shard ingest with metrics
// attached vs bare (the run fails itself if the overhead exceeds 5%),
// plus the micro-cost of each instrument operation; and store, which
// measures the tiered recordstore — cold-tier compression ratio on
// sorted epoch data, cold-scan vs hot-scan decode throughput, and the
// write-path stall of compaction's hot-file rewrite.
//
// Flags:
//
//	-mem bytes    memory budget per algorithm (default 1 MiB, the paper's)
//	-seed n       RNG seed (default 1)
//	-quick        reduced scale for a fast smoke run
//	-json         additionally write BENCH_<experiment>.json with the
//	              pipeline/export measurements (the perf trajectory record)
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"os"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/adaptive"
	"repro/collector"
	"repro/detect"
	"repro/experiments"
	"repro/flow"
	"repro/flowmon"
	"repro/netflow"
	"repro/query"
	"repro/recordstore"
	"repro/shard"
	"repro/telemetry"
	"repro/topk"
	"repro/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowbench:", err)
		os.Exit(1)
	}
}

type config struct {
	mem   int
	seed  uint64
	quick bool
	json  bool
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flowbench", flag.ContinueOnError)
	mem := fs.Int("mem", experiments.DefaultMemory, "memory budget in bytes per algorithm")
	seed := fs.Uint64("seed", experiments.DefaultSeed, "RNG seed")
	quick := fs.Bool("quick", false, "reduced scale for a fast run")
	jsonOut := fs.Bool("json", false, "also write BENCH_<experiment>.json (pipeline and export)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: flowbench [flags] <table1|fig2|...|fig11|extras|pipeline|export|query|detect|frontend|telemetry|all>")
	}
	cfg := config{mem: *mem, seed: *seed, quick: *quick, json: *jsonOut}

	name := fs.Arg(0)
	if name == "all" {
		for _, exp := range []string{"table1", "fig2", "fig3", "fig4", "fig5",
			"fig6", "fig7", "fig8", "fig9", "fig10", "fig11"} {
			if _, err := fmt.Fprintf(w, "## %s\n", exp); err != nil {
				return err
			}
			if err := runOne(exp, cfg, w); err != nil {
				return fmt.Errorf("%s: %w", exp, err)
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		return nil
	}
	return runOne(name, cfg, w)
}

// scales returns experiment sizes, shrunk in quick mode.
func (c config) flows(full int) int {
	if c.quick {
		return full / 10
	}
	return full
}

func (c config) sweep(full []int) []int {
	if !c.quick {
		return full
	}
	out := make([]int, len(full))
	for i, v := range full {
		out[i] = v / 10
	}
	return out
}

func runOne(name string, cfg config, w io.Writer) error {
	switch name {
	case "table1":
		header, rows, err := experiments.Table1Rows(cfg.flows(250000), cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig2":
		n := 100000
		if cfg.quick {
			n = 10000
		}
		pts := experiments.Fig2MultiHash(n, []float64{1, 2, 3, 4}, 10, cfg.seed)
		for _, load := range []float64{1.0, 2.0} {
			pts = append(pts, experiments.Fig2Pipelined(n, load, []float64{0.5, 0.6, 0.7, 0.8}, 10, cfg.seed)...)
		}
		header, rows := experiments.Fig2Rows(pts)
		if err := experiments.WriteTSV(w, header, rows); err != nil {
			return err
		}
		alphas := []float64{0.5, 0.55, 0.6, 0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95}
		loads := []float64{1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 3.0, 4.0}
		h2, r2 := experiments.Fig2ImprovementRows(alphas, loads, 3)
		if _, err := fmt.Fprintln(w, "# fig2d improvement"); err != nil {
			return err
		}
		return experiments.WriteTSV(w, h2, r2)

	case "fig3":
		header, rows, err := experiments.Fig3Rows(cfg.flows(250000), cfg.seed, 200)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig4":
		header, rows, err := experiments.Fig4Rows(cfg.flows(50000), cfg.mem, []int{1, 2, 3, 4}, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig5":
		counts := cfg.sweep([]int{10000, 20000, 30000, 40000, 50000, 60000})
		header, rows, err := experiments.Fig5Rows(counts, cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "fig6", "fig7", "fig8":
		var counts []int
		if name == "fig8" {
			counts = cfg.sweep([]int{20000, 40000, 60000, 80000, 100000})
		} else {
			counts = cfg.sweep([]int{25000, 50000, 100000, 150000, 200000, 250000})
		}
		metric := map[string]string{"fig6": "FSC", "fig7": "RE", "fig8": "ARE"}[name]
		for _, p := range trace.Profiles() {
			ms, err := experiments.AppPerformance(p, counts, cfg.mem, cfg.seed)
			if err != nil {
				return err
			}
			header, rows := experiments.AppMetricsRows(ms, metric)
			if p.Name == trace.Profiles()[0].Name {
				if err := experiments.WriteTSV(w, header, rows); err != nil {
					return err
				}
				continue
			}
			if err := experiments.WriteTSV(w, nil, rows); err != nil {
				return err
			}
		}
		return nil

	case "fig9", "fig10":
		flows := cfg.flows(250000)
		first := true
		for _, p := range trace.Profiles() {
			ms, err := experiments.HeavyHitterSweep(p, flows, cfg.mem, experiments.HHThresholds(p.Name), cfg.seed)
			if err != nil {
				return err
			}
			header, rows := experiments.HHRows(ms)
			if first {
				first = false
				if err := experiments.WriteTSV(w, header, rows); err != nil {
					return err
				}
				continue
			}
			if err := experiments.WriteTSV(w, nil, rows); err != nil {
				return err
			}
		}
		return nil

	case "fig11":
		header, rows, err := experiments.Fig11Rows(cfg.flows(100000), cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "extras":
		header, rows, err := experiments.ExtrasRows(cfg.flows(100000), cfg.mem, cfg.seed)
		if err != nil {
			return err
		}
		return experiments.WriteTSV(w, header, rows)

	case "pipeline":
		return runPipeline(cfg, w)

	case "export":
		return runExportBench(cfg, w)

	case "query":
		return runQueryBench(cfg, w)

	case "detect":
		return runDetectBench(cfg, w)

	case "frontend":
		return runFrontendBench(cfg, w)

	case "telemetry":
		return runTelemetryBench(cfg, w)

	case "store":
		return runStoreBench(cfg, w)

	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

// writeBenchJSON records an experiment's measurements as
// BENCH_<name>.json in the working directory, the machine-readable perf
// trajectory that successive PRs diff against.
func writeBenchJSON(name string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+name+".json", append(b, '\n'), 0o644)
}

// pipelineRow is one ingestion-throughput measurement.
type pipelineRow struct {
	Shards   int     `json:"shards"`
	Mode     string  `json:"mode"`
	Batch    int     `json:"batch"`
	Packets  int     `json:"packets"`
	NsPerPkt float64 `json:"ns_per_pkt"`
	Mpps     float64 `json:"mpps"`
}

// runPipeline measures wall-clock ingestion throughput of the sharded
// recorder end to end: the per-packet sequential path, the staged batch
// path (one lock per shard per batch, via the collector ingestor), and the
// asynchronous path (per-shard workers), across shard counts.
func runPipeline(cfg config, w io.Writer) error {
	tr, err := trace.Generate(trace.CAIDA, cfg.flows(100000), cfg.seed)
	if err != nil {
		return err
	}
	pkts := tr.Packets(cfg.seed)
	if _, err := fmt.Fprintln(w, "shards\tmode\tbatch\tpackets\tns_per_pkt\tMpps"); err != nil {
		return err
	}
	mcfg := flowmon.Config{MemoryBytes: cfg.mem, Seed: cfg.seed}
	var rows []pipelineRow
	for _, shards := range []int{1, 4, 8} {
		for _, mode := range []string{"sequential", "batched", "async"} {
			var s *shard.Sharded
			if mode == "async" {
				s, err = shard.NewUniformAsync(shards, 0, flowmon.AlgorithmHashFlow, mcfg)
			} else {
				s, err = shard.NewUniform(shards, flowmon.AlgorithmHashFlow, mcfg)
			}
			if err != nil {
				return err
			}

			batch := 1
			start := time.Now()
			if mode == "sequential" {
				for _, p := range pkts {
					s.Update(p)
				}
			} else {
				batch = collector.DefaultBatchSize
				if err := collector.Replay(s, pkts, batch); err != nil {
					return err
				}
				s.Flush()
			}
			elapsed := time.Since(start)
			s.Close()

			if got := s.OpStats().Packets; got != uint64(len(pkts)) {
				return fmt.Errorf("pipeline %s/%d: recorded %d packets, want %d", mode, shards, got, len(pkts))
			}
			row := pipelineRow{
				Shards:   shards,
				Mode:     mode,
				Batch:    batch,
				Packets:  len(pkts),
				NsPerPkt: float64(elapsed.Nanoseconds()) / float64(len(pkts)),
				Mpps:     float64(len(pkts)) / elapsed.Seconds() / 1e6,
			}
			rows = append(rows, row)
			if _, err := fmt.Fprintf(w, "%d\t%s\t%d\t%d\t%.1f\t%.3f\n",
				row.Shards, row.Mode, row.Batch, row.Packets, row.NsPerPkt, row.Mpps); err != nil {
				return err
			}
		}
	}
	if cfg.json {
		return writeBenchJSON("pipeline", rows)
	}
	return nil
}

// exportRow is one epoch-export measurement: extract every record from a
// full recorder and encode the epoch into the record store.
type exportRow struct {
	Recorder      string  `json:"recorder"`
	Shards        int     `json:"shards"`
	RecordsPerEp  int     `json:"records_per_epoch"`
	Epochs        int     `json:"epochs"`
	NsPerRecord   float64 `json:"ns_per_record"`
	MRecPerS      float64 `json:"mrec_per_s"`
	BytesPerEpoch int     `json:"bytes_per_epoch"`
}

// rotationRow is one continuous-rotation measurement: ingest the trace
// under adaptive epoch control with the flush path either inline (single)
// or on the double-buffered background worker.
type rotationRow struct {
	Mode       string  `json:"mode"`
	Packets    int     `json:"packets"`
	Epochs     int     `json:"epochs"`
	NsPerPkt   float64 `json:"ns_per_pkt"`
	Mpps       float64 `json:"mpps"`
	MedStallUs float64 `json:"med_stall_us"`
	MaxStallUs float64 `json:"max_stall_us"`
}

// countWriter counts bytes, standing in for a store file on the export
// measurements.
type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// runExportBench measures the collection half of the pipeline. First the
// steady-state epoch export path — AppendRecords into a reused buffer,
// then recordstore.WriteEpoch (radix sort + delta encode) — for the plain
// HashFlow recorder and the sharded recorder across shard counts. Then
// continuous epoch rotation under ingestion, single- vs double-buffered.
func runExportBench(cfg config, w io.Writer) error {
	tr, err := trace.Generate(trace.CAIDA, cfg.flows(100000), cfg.seed)
	if err != nil {
		return err
	}
	pkts := tr.Packets(cfg.seed)
	mcfg := flowmon.Config{MemoryBytes: cfg.mem, Seed: cfg.seed}
	epochs := 64
	if cfg.quick {
		epochs = 8
	}

	if _, err := fmt.Fprintln(w, "recorder\tshards\trecords_per_epoch\tepochs\tns_per_record\tMrec_per_s\tbytes_per_epoch"); err != nil {
		return err
	}
	var exportRows []exportRow
	for _, shards := range []int{0, 1, 4, 8} {
		var (
			rec  flowmon.Recorder
			name string
		)
		if shards == 0 {
			name = "HashFlow"
			rec, err = flowmon.New(flowmon.AlgorithmHashFlow, mcfg)
		} else {
			name = "Sharded/HashFlow"
			var s *shard.Sharded
			s, err = shard.NewUniform(shards, flowmon.AlgorithmHashFlow, mcfg)
			if s != nil {
				defer s.Close()
			}
			rec = s
		}
		if err != nil {
			return err
		}
		if err := collector.Replay(rec, pkts, collector.DefaultBatchSize); err != nil {
			return err
		}

		cw := &countWriter{}
		store := recordstore.NewWriter(cw)
		var buf []flow.Record
		ts := time.Unix(0, 0)
		// Warm the reusable buffers so the timed loop is the steady state.
		buf = rec.AppendRecords(buf[:0])
		if err := store.WriteEpoch(ts, buf); err != nil {
			return err
		}
		cw.n = 0
		start := time.Now()
		for e := 0; e < epochs; e++ {
			buf = rec.AppendRecords(buf[:0])
			if err := store.WriteEpoch(ts, buf); err != nil {
				return err
			}
		}
		elapsed := time.Since(start)

		row := exportRow{
			Recorder:      name,
			Shards:        shards,
			RecordsPerEp:  len(buf),
			Epochs:        epochs,
			NsPerRecord:   float64(elapsed.Nanoseconds()) / float64(epochs*len(buf)),
			MRecPerS:      float64(epochs*len(buf)) / elapsed.Seconds() / 1e6,
			BytesPerEpoch: int(cw.n) / epochs,
		}
		exportRows = append(exportRows, row)
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%.3f\t%d\n",
			row.Recorder, row.Shards, row.RecordsPerEp, row.Epochs,
			row.NsPerRecord, row.MRecPerS, row.BytesPerEpoch); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintln(w, "\nrotation\tpackets\tepochs\tns_per_pkt\tMpps\tmed_stall_us\tmax_stall_us"); err != nil {
		return err
	}
	var rotationRows []rotationRow
	for _, mode := range []string{"single", "double"} {
		store := recordstore.NewWriter(&countWriter{})
		flushFn := func(epoch int, recs []flow.Record) {
			if err := store.WriteEpoch(time.Unix(0, 0), recs); err != nil {
				panic(err) // countWriter cannot fail
			}
		}
		active, err := flowmon.NewHashFlow(mcfg)
		if err != nil {
			return err
		}
		// Epoch boundaries are packet-budget driven; push the watermark
		// check out of the way (its full-table cardinality scan is its own
		// hot-path stall, not the one under measurement here).
		acfg := adaptive.Config{
			Capacity:        active.MainCells(),
			MaxEpochPackets: uint64(len(pkts) / 4),
			CheckEvery:      1 << 62,
		}
		var m *adaptive.Manager
		if mode == "single" {
			m, err = adaptive.NewManager(active, acfg, flushFn)
		} else {
			sb, err2 := flowmon.NewHashFlow(mcfg)
			if err2 != nil {
				return err2
			}
			m, err = adaptive.NewDoubleBuffered(active, sb, acfg, flushFn)
		}
		if err != nil {
			return err
		}

		// Rotation stalls are the packet-path cost of an epoch boundary:
		// in single-buffer mode the rotating Update extracts, sorts and
		// encodes the whole epoch inline, while double-buffering reduces
		// the stall to a recorder swap (plus backpressure if the drain
		// worker is still busy). Rotations fire exactly when the epoch's
		// packet budget fills, so only those updates are timed and the
		// throughput loop stays clean; several passes give enough
		// rotations for a stable median.
		var stalls []time.Duration
		passes := 4
		start := time.Now()
		for pass := 0; pass < passes; pass++ {
			for _, p := range pkts {
				if m.EpochPackets() == acfg.MaxEpochPackets-1 {
					t0 := time.Now()
					m.Update(p)
					stalls = append(stalls, time.Since(t0))
					continue
				}
				m.Update(p)
			}
		}
		m.Flush()
		m.Close()
		elapsed := time.Since(start)
		slices.Sort(stalls)
		var medStall, maxStall time.Duration
		if len(stalls) > 0 {
			medStall = stalls[len(stalls)/2]
			maxStall = stalls[len(stalls)-1]
		}

		totalPkts := passes * len(pkts)
		row := rotationRow{
			Mode:       mode,
			Packets:    totalPkts,
			Epochs:     m.Epoch(),
			NsPerPkt:   float64(elapsed.Nanoseconds()) / float64(totalPkts),
			Mpps:       float64(totalPkts) / elapsed.Seconds() / 1e6,
			MedStallUs: float64(medStall.Nanoseconds()) / 1e3,
			MaxStallUs: float64(maxStall.Nanoseconds()) / 1e3,
		}
		rotationRows = append(rotationRows, row)
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.3f\t%.1f\t%.1f\n",
			row.Mode, row.Packets, row.Epochs, row.NsPerPkt, row.Mpps, row.MedStallUs, row.MaxStallUs); err != nil {
			return err
		}
	}

	if cfg.json {
		return writeBenchJSON("export", struct {
			Export   []exportRow   `json:"export"`
			Rotation []rotationRow `json:"rotation"`
		}{exportRows, rotationRows})
	}
	return nil
}

// sidecarRow is one ingest measurement with the top-k sidecar on or off.
type sidecarRow struct {
	Shards   int     `json:"shards"`
	Sidecar  bool    `json:"sidecar"`
	Flows    int     `json:"flows"`
	TrackCap int     `json:"tracker_capacity"`
	Packets  int     `json:"packets"`
	NsPerPkt float64 `json:"ns_per_pkt"`
	Mpps     float64 `json:"mpps"`
}

// scanRow is one historical-read measurement over the multi-epoch store.
type scanRow struct {
	Mode        string  `json:"mode"`
	Epochs      int     `json:"epochs"`
	RecordsPerE int     `json:"records_per_epoch"`
	NsPerRecord float64 `json:"ns_per_record"`
	MRecPerS    float64 `json:"mrec_per_s"`
}

// randomRow is one random-epoch-access measurement.
type randomRow struct {
	Mode        string  `json:"mode"`
	Accesses    int     `json:"accesses"`
	NsPerAccess float64 `json:"ns_per_access"`
}

// latencyRow summarizes live /topk request latency.
type latencyRow struct {
	Requests int     `json:"requests"`
	K        int     `json:"k"`
	P50Us    float64 `json:"p50_us"`
	P95Us    float64 `json:"p95_us"`
	MaxUs    float64 `json:"max_us"`
}

// runQueryBench measures the query subsystem: (1) what the online top-k
// sidecar costs the ingest path, (2) mmap vs streamed full scans and
// random epoch access over a multi-epoch store, (3) end-to-end /topk
// latency against a live tracker over HTTP.
func runQueryBench(cfg config, w io.Writer) error {
	tr, err := trace.Generate(trace.CAIDA, cfg.flows(100000), cfg.seed)
	if err != nil {
		return err
	}
	pkts := tr.Packets(cfg.seed)
	mcfg := flowmon.Config{MemoryBytes: cfg.mem, Seed: cfg.seed}

	// (1) Sidecar cost: batched ingest into a sharded recorder, with and
	// without per-shard trackers attached. Two (flows, capacity) shapes
	// probe the two Space-Saving regimes: 1024 entries over 100k flows is
	// eviction-saturated (about half the packets replace the tracked
	// minimum — work no index layout can remove), while a tracker sized
	// for its traffic (8192 over 20k flows) runs hit-heavy, where the
	// per-batch pre-aggregation and the open-addressing index pay off.
	// Best-of-passes, like the scan rows below — single-shot ingest runs
	// swing with scheduler noise on small machines and the sidecar delta
	// is the quantity of interest.
	if _, err := fmt.Fprintln(w, "shards\tsidecar\tflows\ttracker_cap\tpackets\tns_per_pkt\tMpps"); err != nil {
		return err
	}
	ingestPasses := 5
	if cfg.quick {
		ingestPasses = 3
	}
	var sidecarRows []sidecarRow
	for _, shape := range []struct{ flows, trackCap int }{
		{cfg.flows(100000), 1024},
		{cfg.flows(20000), 8192},
	} {
		str, err := trace.Generate(trace.CAIDA, shape.flows, cfg.seed)
		if err != nil {
			return err
		}
		spkts := str.Packets(cfg.seed)
		for _, shards := range []int{1, 4} {
			for _, withSidecar := range []bool{false, true} {
				var best int64
				for pass := 0; pass < ingestPasses; pass++ {
					s, err := shard.NewUniform(shards, flowmon.AlgorithmHashFlow, mcfg)
					if err != nil {
						return err
					}
					if withSidecar {
						if _, err := topk.AttachSet(s, shape.trackCap); err != nil {
							return err
						}
					}
					start := time.Now()
					if err := collector.Replay(s, spkts, collector.DefaultBatchSize); err != nil {
						return err
					}
					s.Flush()
					ns := time.Since(start).Nanoseconds()
					s.Close()
					if best == 0 || ns < best {
						best = ns
					}
				}
				row := sidecarRow{
					Shards:   shards,
					Sidecar:  withSidecar,
					Flows:    shape.flows,
					TrackCap: shape.trackCap,
					Packets:  len(spkts),
					NsPerPkt: float64(best) / float64(len(spkts)),
					Mpps:     float64(len(spkts)) / (float64(best) / 1e9) / 1e6,
				}
				sidecarRows = append(sidecarRows, row)
				if _, err := fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%d\t%.1f\t%.3f\n",
					row.Shards, row.Sidecar, row.Flows, row.TrackCap, row.Packets, row.NsPerPkt, row.Mpps); err != nil {
					return err
				}
			}
		}
	}

	// Build the multi-epoch store the read measurements scan.
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, mcfg)
	if err != nil {
		return err
	}
	if err := collector.Replay(rec, pkts, collector.DefaultBatchSize); err != nil {
		return err
	}
	records := rec.Records()
	epochs := 256
	if cfg.quick {
		epochs = 32
	}
	dir, err := os.MkdirTemp("", "flowbench-query")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	storePath := dir + "/bench.frec"
	sf, err := os.Create(storePath)
	if err != nil {
		return err
	}
	sw := recordstore.NewWriter(sf)
	for e := 0; e < epochs; e++ {
		if err := sw.WriteEpoch(time.Unix(int64(e), 0), records); err != nil {
			return err
		}
	}
	if err := sw.Flush(); err != nil {
		return err
	}
	if err := sf.Close(); err != nil {
		return err
	}

	// (2a) Full scans: the streamed reader re-opens and streams the file
	// each pass; the mapped store amortizes one mapping across passes (the
	// flowqueryd serving mode). Best-of-passes damps scheduler noise.
	passes := 6
	if cfg.quick {
		passes = 3
	}
	streamedNs, err := bestNs(passes, func() error {
		f, err := os.Open(storePath)
		if err != nil {
			return err
		}
		defer f.Close()
		r := recordstore.NewReader(f)
		var buf []flow.Record
		for {
			ep, err := r.ReadEpochAppend(buf[:0])
			if errors.Is(err, io.EOF) {
				return nil
			}
			if err != nil {
				return err
			}
			buf = ep.Records
		}
	})
	if err != nil {
		return err
	}
	mapped, err := recordstore.OpenMapped(storePath)
	if err != nil {
		return err
	}
	defer mapped.Close()
	mappedNs, err := bestNs(passes, func() error {
		var buf []flow.Record
		for i := 0; i < mapped.Epochs(); i++ {
			ep, err := mapped.AppendEpochAt(i, buf[:0])
			if err != nil {
				return err
			}
			buf = ep.Records
		}
		return nil
	})
	if err != nil {
		return err
	}
	totalRecs := epochs * len(records)
	scanRows := []scanRow{
		{Mode: "streamed", Epochs: epochs, RecordsPerE: len(records),
			NsPerRecord: float64(streamedNs) / float64(totalRecs),
			MRecPerS:    float64(totalRecs) / (float64(streamedNs) / 1e9) / 1e6},
		{Mode: "mapped", Epochs: epochs, RecordsPerE: len(records),
			NsPerRecord: float64(mappedNs) / float64(totalRecs),
			MRecPerS:    float64(totalRecs) / (float64(mappedNs) / 1e9) / 1e6},
	}
	if _, err := fmt.Fprintln(w, "\nscan\tepochs\trecords_per_epoch\tns_per_record\tMrec_per_s"); err != nil {
		return err
	}
	for _, row := range scanRows {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.3f\n",
			row.Mode, row.Epochs, row.RecordsPerE, row.NsPerRecord, row.MRecPerS); err != nil {
			return err
		}
	}

	// (2b) Random epoch access: reaching epoch i through the stream means
	// decoding everything before it; the mapped index goes straight there.
	accesses := 32
	if cfg.quick {
		accesses = 8
	}
	rng := cfg.seed*6364136223846793005 + 1442695040888963407
	targets := make([]int, accesses)
	for i := range targets {
		rng = rng*6364136223846793005 + 1442695040888963407
		targets[i] = int(rng>>33) % epochs
	}
	// Both modes get the same best-of treatment so the ratio is clean.
	randPasses := 2
	if cfg.quick {
		randPasses = 1
	}
	streamedRandNs, err := bestNs(randPasses, func() error {
		var buf []flow.Record
		for _, target := range targets {
			f, err := os.Open(storePath)
			if err != nil {
				return err
			}
			r := recordstore.NewReader(f)
			for i := 0; i <= target; i++ {
				ep, err := r.ReadEpochAppend(buf[:0])
				if err != nil {
					f.Close()
					return err
				}
				buf = ep.Records
			}
			f.Close()
		}
		return nil
	})
	if err != nil {
		return err
	}
	mappedRandNs, err := bestNs(randPasses, func() error {
		var buf []flow.Record
		for _, target := range targets {
			ep, err := mapped.AppendEpochAt(target, buf[:0])
			if err != nil {
				return err
			}
			buf = ep.Records
		}
		return nil
	})
	if err != nil {
		return err
	}
	randomRows := []randomRow{
		{Mode: "streamed", Accesses: accesses, NsPerAccess: float64(streamedRandNs) / float64(accesses)},
		{Mode: "mapped", Accesses: accesses, NsPerAccess: float64(mappedRandNs) / float64(accesses)},
	}
	if _, err := fmt.Fprintln(w, "\nrandom_access\taccesses\tns_per_access"); err != nil {
		return err
	}
	for _, row := range randomRows {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%.0f\n", row.Mode, row.Accesses, row.NsPerAccess); err != nil {
			return err
		}
	}

	// (3) Live /topk latency over HTTP against a filled tracker.
	set, err := topk.NewSet(4, 1024)
	if err != nil {
		return err
	}
	for i, p := range pkts {
		set.Trackers()[i%4].Update(p)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{
		Handler:           query.NewHandler(query.Config{TopK: set}),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()

	requests := 200
	if cfg.quick {
		requests = 50
	}
	const k = 10
	url := fmt.Sprintf("http://%s/topk?k=%d", ln.Addr(), k)
	client := &http.Client{Timeout: 5 * time.Second}
	lat := make([]time.Duration, 0, requests)
	for i := 0; i < requests+10; i++ {
		t0 := time.Now()
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			resp.Body.Close()
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("topk latency probe: status %d", resp.StatusCode)
		}
		if i >= 10 { // first requests warm the connection pool
			lat = append(lat, time.Since(t0))
		}
	}
	slices.Sort(lat)
	latRow := latencyRow{
		Requests: requests,
		K:        k,
		P50Us:    float64(lat[len(lat)/2].Nanoseconds()) / 1e3,
		P95Us:    float64(lat[len(lat)*95/100].Nanoseconds()) / 1e3,
		MaxUs:    float64(lat[len(lat)-1].Nanoseconds()) / 1e3,
	}
	if _, err := fmt.Fprintf(w, "\ntopk_latency\trequests\tk\tp50_us\tp95_us\tmax_us\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "live\t%d\t%d\t%.1f\t%.1f\t%.1f\n",
		latRow.Requests, latRow.K, latRow.P50Us, latRow.P95Us, latRow.MaxUs); err != nil {
		return err
	}

	if cfg.json {
		return writeBenchJSON("query", struct {
			Sidecar      []sidecarRow `json:"sidecar"`
			Scan         []scanRow    `json:"scan"`
			RandomAccess []randomRow  `json:"random_access"`
			TopKLatency  latencyRow   `json:"topk_latency"`
		}{sidecarRows, scanRows, randomRows, latRow})
	}
	return nil
}

// detectCostRow is one detector-evaluation cost measurement at one
// stage set; the sweep grows the stage mask one detector at a time so
// each pass's incremental cost is visible.
type detectCostRow struct {
	Stages      string  `json:"stages"`
	Epochs      int     `json:"epochs"`
	RecordsPerE int     `json:"records_per_epoch"`
	NsPerEpoch  float64 `json:"ns_per_epoch"`
	NsPerRecord float64 `json:"ns_per_record"`
}

// detectStallRow is one rotation measurement with/without the detector
// riding the drain worker.
type detectStallRow struct {
	Detector   bool    `json:"detector"`
	Packets    int     `json:"packets"`
	Epochs     int     `json:"epochs"`
	NsPerPkt   float64 `json:"ns_per_pkt"`
	MedStallUs float64 `json:"med_stall_us"`
	MaxStallUs float64 `json:"max_stall_us"`
}

// detectAccuracyRow is the synthetic-injection precision/recall summary.
type detectAccuracyRow struct {
	Epochs            int     `json:"epochs"`
	Alerts            int     `json:"alerts"`
	ChangePrecision   float64 `json:"change_precision"`
	ChangeRecall      float64 `json:"change_recall"`
	SpreadPrecision   float64 `json:"spreader_precision"`
	SpreadRecall      float64 `json:"spreader_recall"`
	FanInPrecision    float64 `json:"fanin_precision"`
	FanInRecall       float64 `json:"fanin_recall"`
	ForecastPrecision float64 `json:"forecast_precision"`
	RampRecall        float64 `json:"ramp_recall"`
	AnomalyEpochs     int     `json:"anomaly_epochs"`
}

// netwideAccuracyRow is the cross-vantage correlation summary.
type netwideAccuracyRow struct {
	Vantages  int     `json:"vantages"`
	Epochs    int     `json:"epochs"`
	Alerts    int     `json:"alerts"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

// runDetectBench measures the detection subsystem: (1) what one epoch of
// detection costs on the drain worker, per detector stage, (2) what
// attaching the (full) detector does to rotation stalls under continuous
// ingestion, (3) detection quality against injected ground truth —
// single-vantage kinds and the cross-vantage correlator.
func runDetectBench(cfg config, w io.Writer) error {
	// (1) Evaluation cost over the synthetic workload, steady state: one
	// warm pass grows every internal buffer, then timed passes re-drive
	// the same epochs (epoch numbering keeps advancing so the
	// epoch-over-epoch walk stays realistic). The stage mask grows one
	// detector at a time, so each row's delta against the previous one is
	// that detector's per-epoch cost.
	epochsN := 64
	if cfg.quick {
		epochsN = 24
	}
	trace := experiments.GenDetectTrace(experiments.DetectTraceConfig{
		Epochs: epochsN, Seed: cfg.seed,
	})
	records := 0
	for _, ep := range trace {
		records += len(ep.Records)
	}
	records /= len(trace)
	passes := 5
	if cfg.quick {
		passes = 3
	}
	stageSweep := []struct {
		name   string
		stages detect.Stage
	}{
		{"change", detect.StageChange},
		{"+forecast", detect.StageChange | detect.StageForecast},
		{"+spreader", detect.StageChange | detect.StageForecast | detect.StageSpreader},
		{"+fanin", detect.StageChange | detect.StageForecast | detect.StageSpreader | detect.StageFanIn},
		{"full", detect.StageAll},
	}
	if _, err := fmt.Fprintln(w, "detector_cost\tstages\tepochs\trecords_per_epoch\tns_per_epoch\tns_per_record"); err != nil {
		return err
	}
	var costRows []detectCostRow
	for _, sw := range stageSweep {
		det, err := detect.NewDetector(detect.Config{Stages: sw.stages})
		if err != nil {
			return err
		}
		epoch := 0
		pass := func() error {
			for _, ep := range trace {
				det.Observe(epoch, ep.Time, ep.Records)
				epoch++
			}
			return nil
		}
		if err := pass(); err != nil { // warm every internal buffer
			return err
		}
		costNs, err := bestNs(passes, pass)
		if err != nil {
			return err
		}
		row := detectCostRow{
			Stages:      sw.name,
			Epochs:      len(trace),
			RecordsPerE: records,
			NsPerEpoch:  float64(costNs) / float64(len(trace)),
			NsPerRecord: float64(costNs) / float64(len(trace)*records),
		}
		costRows = append(costRows, row)
		if _, err := fmt.Fprintf(w, "steady\t%s\t%d\t%d\t%.0f\t%.1f\n",
			row.Stages, row.Epochs, row.RecordsPerE, row.NsPerEpoch, row.NsPerRecord); err != nil {
			return err
		}
	}

	// (2) Drain-stall impact: the export-bench rotation harness with the
	// detector on and off the double-buffered drain.
	tr, err := trace2(cfg)
	if err != nil {
		return err
	}
	pkts := tr.Packets(cfg.seed)
	mcfg := flowmon.Config{MemoryBytes: cfg.mem, Seed: cfg.seed}
	if _, err := fmt.Fprintln(w, "\nrotation\tdetector\tpackets\tepochs\tns_per_pkt\tmed_stall_us\tmax_stall_us"); err != nil {
		return err
	}
	var stallRows []detectStallRow
	for _, withDet := range []bool{false, true} {
		active, err := flowmon.NewHashFlow(mcfg)
		if err != nil {
			return err
		}
		standby, err := flowmon.NewHashFlow(mcfg)
		if err != nil {
			return err
		}
		store := recordstore.NewWriter(&countWriter{})
		acfg := adaptive.Config{
			Capacity:        active.MainCells(),
			MaxEpochPackets: uint64(len(pkts) / 4),
			CheckEvery:      1 << 62,
		}
		m, err := adaptive.NewDoubleBuffered(active, standby, acfg, func(epoch int, recs []flow.Record) {
			if err := store.WriteEpoch(time.Unix(0, 0), recs); err != nil {
				panic(err) // countWriter cannot fail
			}
		})
		if err != nil {
			return err
		}
		if withDet {
			d, err := detect.NewDetector(detect.Config{})
			if err != nil {
				return err
			}
			if err := m.AttachDetector(d); err != nil {
				return err
			}
		}
		var stalls []time.Duration
		rotPasses := 4
		start := time.Now()
		for p := 0; p < rotPasses; p++ {
			for _, pkt := range pkts {
				if m.EpochPackets() == acfg.MaxEpochPackets-1 {
					t0 := time.Now()
					m.Update(pkt)
					stalls = append(stalls, time.Since(t0))
					continue
				}
				m.Update(pkt)
			}
		}
		m.Flush()
		m.Close()
		elapsed := time.Since(start)
		if err := m.DrainErr(); err != nil {
			return err
		}
		slices.Sort(stalls)
		var med, max time.Duration
		if len(stalls) > 0 {
			med, max = stalls[len(stalls)/2], stalls[len(stalls)-1]
		}
		total := rotPasses * len(pkts)
		row := detectStallRow{
			Detector:   withDet,
			Packets:    total,
			Epochs:     m.Epoch(),
			NsPerPkt:   float64(elapsed.Nanoseconds()) / float64(total),
			MedStallUs: float64(med.Nanoseconds()) / 1e3,
			MaxStallUs: float64(max.Nanoseconds()) / 1e3,
		}
		stallRows = append(stallRows, row)
		if _, err := fmt.Fprintf(w, "double\t%v\t%d\t%d\t%.1f\t%.1f\t%.1f\n",
			row.Detector, row.Packets, row.Epochs, row.NsPerPkt, row.MedStallUs, row.MaxStallUs); err != nil {
			return err
		}
	}

	// (3) Precision/recall against the injected ground truth, on a fresh
	// detector.
	accDet, err := detect.NewDetector(detect.Config{})
	if err != nil {
		return err
	}
	accEpochs := 30
	if !cfg.quick {
		accEpochs = 60
	}
	eval := experiments.EvalDetect(accDet, experiments.GenDetectTrace(experiments.DetectTraceConfig{
		Epochs: accEpochs, Seed: cfg.seed,
	}))
	acc := detectAccuracyRow{
		Epochs:            eval.Epochs,
		Alerts:            eval.Alerts,
		ChangePrecision:   eval.ChangePrecision(),
		ChangeRecall:      eval.ChangeRecall(),
		SpreadPrecision:   eval.SpreadPrecision(),
		SpreadRecall:      eval.SpreadRecall(),
		FanInPrecision:    eval.FanInPrecision(),
		FanInRecall:       eval.FanInRecall(),
		ForecastPrecision: eval.ForecastPrecision(),
		RampRecall:        eval.RampRecall(),
		AnomalyEpochs:     eval.AnomalyEpochs,
	}
	if _, err := fmt.Fprintln(w, "\naccuracy\tepochs\talerts\tchange_p\tchange_r\tspread_p\tspread_r\tfanin_p\tfanin_r\tforecast_p\tramp_r\tanomaly_epochs"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "injected\t%d\t%d\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%.3f\t%d\n",
		acc.Epochs, acc.Alerts, acc.ChangePrecision, acc.ChangeRecall,
		acc.SpreadPrecision, acc.SpreadRecall, acc.FanInPrecision, acc.FanInRecall,
		acc.ForecastPrecision, acc.RampRecall, acc.AnomalyEpochs); err != nil {
		return err
	}

	// (4) Cross-vantage correlation accuracy on the multi-vantage
	// workload: per-vantage detectors feeding the correlator through the
	// summary sink, scored against the injected netwide truth.
	nwCfg := experiments.NetwideTraceConfig{Epochs: accEpochs, Seed: cfg.seed}
	nwEval, err := experiments.EvalNetwide(nwCfg, experiments.GenNetwideTrace(nwCfg))
	if err != nil {
		return err
	}
	nw := netwideAccuracyRow{
		Vantages:  3,
		Epochs:    nwEval.Epochs,
		Alerts:    nwEval.Alerts,
		Precision: nwEval.Precision(),
		Recall:    nwEval.Recall(),
	}
	if _, err := fmt.Fprintln(w, "\nnetwide\tvantages\tepochs\talerts\tprecision\trecall"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "correlated\t%d\t%d\t%d\t%.3f\t%.3f\n",
		nw.Vantages, nw.Epochs, nw.Alerts, nw.Precision, nw.Recall); err != nil {
		return err
	}

	if cfg.json {
		return writeBenchJSON("detect", struct {
			Cost     []detectCostRow    `json:"cost"`
			Rotation []detectStallRow   `json:"rotation"`
			Accuracy detectAccuracyRow  `json:"accuracy"`
			Netwide  netwideAccuracyRow `json:"netwide"`
		}{costRows, stallRows, acc, nw})
	}
	return nil
}

// frontendIngestRow is one no-socket ingest-scaling measurement: the
// decode + sequence-accounting path (netflow.Collector.IngestFrom)
// driven from N reader goroutines over pre-encoded per-exporter datagram
// streams, mirroring the reader-side work of the multi-socket frontend
// without the kernel in the loop.
type frontendIngestRow struct {
	Readers     int     `json:"readers"`
	Exporters   int     `json:"exporters"`
	Datagrams   int     `json:"datagrams"`
	Records     int     `json:"records"`
	NsPerRecord float64 `json:"ns_per_record"`
	MRecPerS    float64 `json:"mrec_per_s"`
}

// frontendSocketRow is one end-to-end measurement against a live
// collector.Server over loopback UDP: concurrent exporters blast
// pre-encoded datagrams and the row records what the frontend delivered.
type frontendSocketRow struct {
	Readers  int     `json:"readers"`
	Sockets  int     `json:"sockets"`
	Mode     string  `json:"read_mode"`
	Records  uint64  `json:"records_delivered"`
	Lost     uint64  `json:"records_lost"`
	MRecPerS float64 `json:"mrec_per_s"`
}

// frontendStreams pre-encodes one datagram stream per exporter:
// contiguous sequence numbers, full 30-record datagrams.
func frontendStreams(exporters, datagrams int) [][][]byte {
	streams := make([][][]byte, exporters)
	recs := make([]netflow.Record, netflow.MaxRecordsPerDatagram)
	for e := range streams {
		streams[e] = make([][]byte, datagrams)
		seq := uint32(0)
		for d := range streams[e] {
			for i := range recs {
				recs[i] = netflow.Record{SrcIP: uint32(e)<<24 | seq + uint32(i), Packets: 1, Octets: 64}
			}
			b, err := netflow.Encode(nil, netflow.Header{FlowSequence: seq}, recs)
			if err != nil {
				panic(err) // full datagrams of valid records cannot fail
			}
			streams[e][d] = b
			seq += uint32(len(recs))
		}
	}
	return streams
}

// runFrontendBench measures the collection frontend. First the no-socket
// ingest path across reader counts: exporters are partitioned across
// reader goroutines (exporter affinity, exactly what SO_REUSEPORT's
// 4-tuple hash gives the real frontend) and each reader drives its
// exporters' datagrams through its own netflow.Collector. Then end to
// end over loopback UDP: a live collector.Server at one socket vs N
// SO_REUSEPORT sockets, with delivery and inferred loss reported.
// Multi-reader scaling only shows on multi-core machines; on one CPU the
// rows should track the single-reader row to within noise.
func runFrontendBench(cfg config, w io.Writer) error {
	exporters := 8
	datagrams := 2000
	passes := 5
	if cfg.quick {
		datagrams = 400
		passes = 3
	}
	streams := frontendStreams(exporters, datagrams)
	perDatagram := netflow.MaxRecordsPerDatagram
	totalRecords := exporters * datagrams * perDatagram
	srcs := make([]netip.AddrPort, exporters)
	for e := range srcs {
		srcs[e] = netip.AddrPortFrom(netip.AddrFrom4([4]byte{10, 0, 0, byte(e + 1)}), uint16(9000+e))
	}

	if _, err := fmt.Fprintf(w, "ingest\treaders\texporters\tdatagrams\trecords\tns_per_record\tMrec_per_s\t(GOMAXPROCS=%d)\n",
		runtime.GOMAXPROCS(0)); err != nil {
		return err
	}
	var ingestRows []frontendIngestRow
	for _, readers := range []int{1, 2, 4} {
		ns, err := bestNs(passes, func() error {
			var wg sync.WaitGroup
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					col := netflow.NewCollector()
					// Round-robin across this reader's exporters so the
					// per-source cursor map switches streams like a real
					// interleaved socket drain.
					for d := 0; d < datagrams; d++ {
						for e := r; e < exporters; e += readers {
							if err := col.IngestFrom(srcs[e], streams[e][d]); err != nil {
								panic(err) // pre-encoded datagrams decode
							}
						}
					}
				}(r)
			}
			wg.Wait()
			return nil
		})
		if err != nil {
			return err
		}
		row := frontendIngestRow{
			Readers:     readers,
			Exporters:   exporters,
			Datagrams:   exporters * datagrams,
			Records:     totalRecords,
			NsPerRecord: float64(ns) / float64(totalRecords),
			MRecPerS:    float64(totalRecords) / (float64(ns) / 1e9) / 1e6,
		}
		ingestRows = append(ingestRows, row)
		if _, err := fmt.Fprintf(w, "no-socket\t%d\t%d\t%d\t%d\t%.1f\t%.3f\n",
			row.Readers, row.Exporters, row.Datagrams, row.Records, row.NsPerRecord, row.MRecPerS); err != nil {
			return err
		}
	}

	// End-to-end rows: real sockets on loopback. Volume is kept modest so
	// the receive buffers absorb sender bursts; any overflow shows up in
	// the (ungated) loss column rather than distorting the delivered rate.
	sockDatagrams := 600
	sockPasses := 2
	if cfg.quick {
		sockDatagrams = 150
		sockPasses = 1
	}
	sockStreams := frontendStreams(exporters, sockDatagrams)
	if _, err := fmt.Fprintln(w, "\nsocket\treaders\tsockets\tread_mode\trecords_delivered\trecords_lost\tMrec_per_s"); err != nil {
		return err
	}
	var socketRows []frontendSocketRow
	for _, shape := range []struct {
		readers   int
		reuseport bool
	}{{1, false}, {4, true}} {
		var best frontendSocketRow
		for pass := 0; pass < sockPasses; pass++ {
			row, err := frontendSocketPass(shape.readers, shape.reuseport, sockStreams)
			if err != nil {
				return err
			}
			if pass == 0 || row.MRecPerS > best.MRecPerS {
				best = row
			}
		}
		socketRows = append(socketRows, best)
		if _, err := fmt.Fprintf(w, "loopback\t%d\t%d\t%s\t%d\t%d\t%.3f\n",
			best.Readers, best.Sockets, best.Mode, best.Records, best.Lost, best.MRecPerS); err != nil {
			return err
		}
	}

	if cfg.json {
		return writeBenchJSON("frontend", struct {
			Ingest []frontendIngestRow `json:"ingest"`
			Socket []frontendSocketRow `json:"socket"`
		}{ingestRows, socketRows})
	}
	return nil
}

// frontendSocketPass runs one end-to-end delivery measurement: start a
// server, blast every stream from its own sender goroutine, wait for the
// frontend to drain, and read the counters back.
func frontendSocketPass(readers int, reuseport bool, streams [][][]byte) (frontendSocketRow, error) {
	srv, err := collector.Start(collector.Config{
		Listen: "127.0.0.1:0", EpochGap: 100 * time.Millisecond,
		Readers: readers, ReusePort: reuseport,
	}, func(time.Time, []flow.Record) {})
	if err != nil {
		return frontendSocketRow{}, err
	}
	defer srv.Shutdown()

	var sendErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for _, stream := range streams {
		wg.Add(1)
		go func(stream [][]byte) {
			defer wg.Done()
			conn, err := net.Dial("udp", srv.Addr().String())
			if err == nil {
				defer conn.Close()
				for _, b := range stream {
					if _, err = conn.Write(b); err != nil {
						break
					}
				}
			}
			if err != nil {
				mu.Lock()
				sendErr = err
				mu.Unlock()
			}
		}(stream)
	}
	wg.Wait()
	if sendErr != nil {
		return frontendSocketRow{}, sendErr
	}

	// Trailing datagram loss is undetectable (no later sequence number to
	// expose the gap), so settle on record-count quiescence rather than an
	// exact total, and time to the last observed progress.
	total := uint64(len(streams) * len(streams[0]) * netflow.MaxRecordsPerDatagram)
	last := srv.Stats().Records
	lastChange := time.Now()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := srv.Stats()
		if st.Records != last {
			last = st.Records
			lastChange = time.Now()
		}
		if st.Records >= total || time.Since(lastChange) > 300*time.Millisecond || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := lastChange.Sub(start)
	if elapsed <= 0 {
		elapsed = time.Since(start)
	}
	srv.Shutdown() // flush the open epoch so Lost is final
	st := srv.Stats()
	return frontendSocketRow{
		Readers:  srv.Readers(),
		Sockets:  srv.Sockets(),
		Mode:     srv.BatchMode(),
		Records:  st.Records,
		Lost:     st.Lost,
		MRecPerS: float64(st.Records) / elapsed.Seconds() / 1e6,
	}, nil
}

// trace2 generates the standard CAIDA benchmark trace at the config's
// scale.
func trace2(cfg config) (*trace.Trace, error) {
	return trace.Generate(trace.CAIDA, cfg.flows(100000), cfg.seed)
}

// bestNs runs fn passes times and returns the fastest wall-clock
// nanoseconds (best-of damps scheduler noise on small machines).
func bestNs(passes int, fn func() error) (int64, error) {
	best := int64(0)
	for p := 0; p < passes; p++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		ns := time.Since(t0).Nanoseconds()
		if best == 0 || ns < best {
			best = ns
		}
	}
	return best, nil
}

// telemetryIngestRow is one end-to-end batched-ingest measurement, with
// or without instruments attached.
type telemetryIngestRow struct {
	Mode     string  `json:"mode"` // bare | instrumented
	Shards   int     `json:"shards"`
	Packets  int     `json:"packets"`
	NsPerPkt float64 `json:"ns_per_pkt"`
	Mpps     float64 `json:"mpps"`
}

// telemetryOpRow is the micro-cost of one instrument operation on the
// calling goroutine (a single uncontended atomic RMW, or nothing at all
// for the nil receivers uninstrumented code paths hold).
type telemetryOpRow struct {
	Op      string  `json:"op"`
	NsPerOp float64 `json:"ns_per_op"`
}

// telemetryReport is the committed BENCH_telemetry.json shape. The
// overhead percentage is informational (it is near zero and a ratio
// gate on a near-zero number amplifies noise); the hard ≤5% gate is the
// experiment itself, which returns an error past it.
type telemetryReport struct {
	Ingest      []telemetryIngestRow `json:"ingest"`
	OverheadPct float64              `json:"overhead_pct"`
	Instruments []telemetryOpRow     `json:"instruments"`
}

// maxTelemetryOverheadPct is the self-gate: instrumented ingest may
// cost at most this much more than bare ingest, measured interleaved
// best-of on the same trace. The real cost is two uncontended atomic
// RMWs per ~256-packet batch (≈0.2%); 5% is the promise the telemetry
// layer makes to every hot path it touches.
const maxTelemetryOverheadPct = 5.0

// over is the relative slowdown of instrumented vs bare ingest, in
// percent (negative when the instrumented side measured faster).
func over(bareNs, instrNs int64) float64 {
	return (float64(instrNs) - float64(bareNs)) / float64(bareNs) * 100
}

// runTelemetryBench proves the instruments are free where it matters:
// the same batched shard ingest as the pipeline experiment, run bare
// and with the shard metrics attached, interleaved best-of so machine
// drift hits both sides equally. It fails the run outright if the
// instrumented side is more than maxTelemetryOverheadPct slower. The
// second table prices each instrument operation on its own.
func runTelemetryBench(cfg config, w io.Writer) error {
	// Always full scale: one pass is only tens of milliseconds, and the
	// quick-mode trace is too short for a stable 5% comparison.
	tr, err := trace.Generate(trace.CAIDA, 100000, cfg.seed)
	if err != nil {
		return err
	}
	pkts := tr.Packets(cfg.seed)
	mcfg := flowmon.Config{MemoryBytes: cfg.mem, Seed: cfg.seed}
	const shards = 4

	ingest := func(m *shard.Metrics) (int64, error) {
		s, err := shard.NewUniform(shards, flowmon.AlgorithmHashFlow, mcfg)
		if err != nil {
			return 0, err
		}
		defer s.Close()
		s.SetMetrics(m)
		// Clear the allocation debt of building the recorders so the GC
		// does not fire mid-measurement and bill whichever side runs
		// second for the first side's garbage.
		runtime.GC()
		t0 := time.Now()
		if err := collector.Replay(s, pkts, collector.DefaultBatchSize); err != nil {
			return 0, err
		}
		s.Flush()
		ns := time.Since(t0).Nanoseconds()
		if got := s.OpStats().Packets; got != uint64(len(pkts)) {
			return 0, fmt.Errorf("telemetry ingest: recorded %d packets, want %d", got, len(pkts))
		}
		return ns, nil
	}

	reg := telemetry.NewRegistry()
	metrics := shard.NewMetrics(reg)
	measure := func(passes int) (bareBest, instrBest int64, err error) {
		for p := 0; p < passes; p++ {
			// Alternate which side runs first so any residual within-pass
			// ordering effect (cache warmth, frequency ramp) hits both.
			order := []*shard.Metrics{nil, metrics}
			if p%2 == 1 {
				order[0], order[1] = order[1], order[0]
			}
			for _, m := range order {
				ns, err := ingest(m)
				if err != nil {
					return 0, 0, err
				}
				if m == nil {
					if bareBest == 0 || ns < bareBest {
						bareBest = ns
					}
				} else if instrBest == 0 || ns < instrBest {
					instrBest = ns
				}
			}
		}
		return bareBest, instrBest, nil
	}
	// Even pass counts keep the first-runner alternation balanced.
	passes := 10
	if cfg.quick {
		passes = 6
	}
	bareBest, instrBest, err := measure(passes)
	if err != nil {
		return err
	}
	if over(bareBest, instrBest) > maxTelemetryOverheadPct {
		// A single noisy comparison must not fail CI: confirm at double
		// depth before believing a real regression.
		bareBest, instrBest, err = measure(2 * passes)
		if err != nil {
			return err
		}
	}
	if metrics.Batches.Value() == 0 {
		return errors.New("telemetry ingest: instruments never fired — measured a no-op")
	}

	report := telemetryReport{
		Ingest: []telemetryIngestRow{
			{Mode: "bare", Shards: shards, Packets: len(pkts),
				NsPerPkt: float64(bareBest) / float64(len(pkts)),
				Mpps:     float64(len(pkts)) / float64(bareBest) * 1e3},
			{Mode: "instrumented", Shards: shards, Packets: len(pkts),
				NsPerPkt: float64(instrBest) / float64(len(pkts)),
				Mpps:     float64(len(pkts)) / float64(instrBest) * 1e3},
		},
		OverheadPct: over(bareBest, instrBest),
	}
	if _, err := fmt.Fprintln(w, "ingest\tmode\tshards\tpackets\tns_per_pkt\tMpps"); err != nil {
		return err
	}
	for _, r := range report.Ingest {
		if _, err := fmt.Fprintf(w, "ingest\t%s\t%d\t%d\t%.1f\t%.3f\n",
			r.Mode, r.Shards, r.Packets, r.NsPerPkt, r.Mpps); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "overhead\t%.2f%%\n", report.OverheadPct); err != nil {
		return err
	}

	// Micro-cost of each instrument operation, including the nil
	// receivers every uninstrumented call site pays.
	ops := 5_000_000
	if cfg.quick {
		ops = 500_000
	}
	var (
		c    telemetry.Counter
		g    telemetry.Gauge
		h    telemetry.Histogram
		nilC *telemetry.Counter
		nilH *telemetry.Histogram
	)
	micro := []struct {
		op string
		fn func(i uint64)
	}{
		{"counter_inc", func(i uint64) { c.Inc() }},
		{"gauge_set", func(i uint64) { g.Set(int64(i)) }},
		{"histogram_observe", func(i uint64) { h.Observe(i) }},
		{"nil_counter_inc", func(i uint64) { nilC.Inc() }},
		{"nil_histogram_observe", func(i uint64) { nilH.Observe(i) }},
	}
	if _, err := fmt.Fprintln(w, "instrument\top\tns_per_op"); err != nil {
		return err
	}
	for _, m := range micro {
		t0 := time.Now()
		for i := uint64(0); i < uint64(ops); i++ {
			m.fn(i)
		}
		row := telemetryOpRow{Op: m.op, NsPerOp: float64(time.Since(t0).Nanoseconds()) / float64(ops)}
		report.Instruments = append(report.Instruments, row)
		if _, err := fmt.Fprintf(w, "instrument\t%s\t%.2f\n", row.Op, row.NsPerOp); err != nil {
			return err
		}
	}

	if report.OverheadPct > maxTelemetryOverheadPct {
		return fmt.Errorf("telemetry: instrumented ingest is %.2f%% slower than bare (limit %.1f%%)",
			report.OverheadPct, maxTelemetryOverheadPct)
	}
	if cfg.json {
		return writeBenchJSON("telemetry", &report)
	}
	return nil
}
