package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunRejectsBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("accepted missing experiment name")
	}
	if err := run([]string{"nope"}, &buf); err == nil {
		t.Error("accepted unknown experiment")
	}
	if err := run([]string{"-bogus-flag", "table1"}, &buf); err == nil {
		t.Error("accepted unknown flag")
	}
}

func TestRunQuickExperiments(t *testing.T) {
	// Every experiment must produce a header and at least one data row in
	// quick mode. fig6/fig9 subsume the cost of their siblings; run a
	// representative subset to keep the test fast.
	for _, exp := range []string{"table1", "fig3", "fig4", "fig5", "fig11", "store"} {
		t.Run(exp, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run([]string{"-quick", "-mem", "65536", exp}, &buf); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
			if len(lines) < 2 {
				t.Fatalf("%s produced %d lines", exp, len(lines))
			}
			cols := len(strings.Split(lines[0], "\t"))
			if cols < 3 {
				t.Errorf("%s header has %d columns", exp, cols)
			}
			for i, l := range lines[1:] {
				if strings.HasPrefix(l, "#") { // section separator
					continue
				}
				if got := len(strings.Split(l, "\t")); got < 3 {
					t.Errorf("%s row %d has %d columns: %q", exp, i, got, l)
				}
			}
		})
	}
}

func TestRunFig2(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "fig2"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "multihash") || !strings.Contains(out, "pipelined") {
		t.Error("fig2 output missing table kinds")
	}
	if !strings.Contains(out, "# fig2d improvement") {
		t.Error("fig2 output missing improvement section")
	}
}

// TestRunTelemetryQuick runs the instrumented-vs-bare ingest comparison
// end to end: it must produce both ingest rows, the instrument cost
// table, and pass its own ≤5% overhead gate.
func TestRunTelemetryQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-mem", "65536", "telemetry"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bare", "instrumented", "overhead",
		"counter_inc", "histogram_observe", "nil_counter_inc"} {
		if !strings.Contains(out, want) {
			t.Errorf("telemetry output missing %q:\n%s", want, out)
		}
	}
}

func TestRunHeavyHitterQuick(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-quick", "-mem", "65536", "fig9"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, name := range []string{"HashFlow", "HashPipe", "ElasticSketch", "FlowRadar"} {
		if !strings.Contains(out, name) {
			t.Errorf("fig9 output missing %s", name)
		}
	}
}
