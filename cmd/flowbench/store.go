// The store experiment: the tiered recordstore's cost model. Three
// measurements — how much the cold tier's delta+DEFLATE encoding shrinks
// sorted epoch data vs the hot mmap encoding, what scanning each tier
// costs, and how long compaction's hot-file rewrite stalls the write
// path. The compression ratio is a gated quality metric: BENCH_store.json
// pins it so a format change that quietly loses the ≥3x win fails the
// benchdiff gate (and the recordstore unit tests pin the floor harder).
package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/collector"
	"repro/flow"
	"repro/flowmon"
	"repro/netwide"
	"repro/recordstore"
)

// storeCompressionRow is one hot-vs-cold size measurement. The shape
// matters: cold blocks concatenate the per-epoch key columns before one
// DEFLATE stream, so when an epoch's key column fits the 32KB DEFLATE
// window, the next epoch's recurring keys compress as back-references
// (the persistent-flow case, where the ratio is large); epochs much
// bigger than the window only shed per-record delta redundancy.
type storeCompressionRow struct {
	Shape            string  `json:"shape"`
	Epochs           int     `json:"epochs"`
	RecordsPerE      int     `json:"records_per_epoch"`
	HotBytes         int64   `json:"hot_bytes"`
	SegmentBytes     int64   `json:"segment_bytes"`
	CompressionRatio float64 `json:"compression_ratio"`
}

// storeScanRow is one tier's full-scan throughput.
type storeScanRow struct {
	Tier        string  `json:"tier"`
	Epochs      int     `json:"epochs"`
	NsPerRecord float64 `json:"ns_per_record"`
	MRecPerS    float64 `json:"mrec_per_s"`
}

// storeStallRow summarizes the write-path stall compaction caused.
type storeStallRow struct {
	Rounds       int     `json:"rounds"`
	EpochsPerRnd int     `json:"epochs_per_round"`
	MedStallUs   float64 `json:"med_stall_us"`
	MaxStallUs   float64 `json:"max_stall_us"`
}

// runStoreBench measures the tiered storage layer: cold-tier compression
// ratio on sorted epoch data, cold-scan vs hot-scan decode throughput,
// and the compaction stall the ingest path observes.
func runStoreBench(cfg config, w io.Writer) error {
	// Epoch shape: a realistic key population from the trace generator,
	// key-sorted once, with per-epoch count drift — the persistent-flow
	// traffic the compactor actually migrates. Counts drift so successive
	// epochs are similar but never identical.
	tr, err := trace2(cfg)
	if err != nil {
		return err
	}
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: cfg.mem, Seed: cfg.seed})
	if err != nil {
		return err
	}
	if err := collector.Replay(rec, tr.Packets(cfg.seed), collector.DefaultBatchSize); err != nil {
		return err
	}
	records := rec.Records()
	netwide.SortByKey(records)
	epochs := 256
	if cfg.quick {
		epochs = 32
	}
	drift := func(recs []flow.Record, e int) {
		for i := range recs {
			recs[i].Count = uint32(1000 + (e*31+i*7)%97)
		}
	}

	dir, err := os.MkdirTemp("", "flowbench-store")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// (1) Compression: the same epochs through the hot FREC encoding and
	// through a cold segment, at two epoch shapes. The 2k-record
	// persistent-flow shape is the ≥3x contract the unit tests pin; the
	// full-size shape tracks what window-exceeding epochs still save.
	writeBoth := func(name string, recs []flow.Record) (storeCompressionRow, error) {
		hotPath := dir + "/" + name + ".frec"
		hf, err := os.Create(hotPath)
		if err != nil {
			return storeCompressionRow{}, err
		}
		hw := recordstore.NewWriter(hf)
		segPath := dir + "/" + name + ".cseg"
		sf, err := os.Create(segPath)
		if err != nil {
			return storeCompressionRow{}, err
		}
		sw := recordstore.NewSegmentWriter(sf, recordstore.SegmentCold)
		for e := 0; e < epochs; e++ {
			drift(recs, e)
			ts := time.Unix(int64(e)*60, 0)
			if err := hw.WriteEpoch(ts, recs); err != nil {
				return storeCompressionRow{}, err
			}
			if err := sw.Add(recordstore.SegmentEpoch{Time: ts, Records: recs}); err != nil {
				return storeCompressionRow{}, err
			}
		}
		if err := hw.Flush(); err != nil {
			return storeCompressionRow{}, err
		}
		if err := hf.Close(); err != nil {
			return storeCompressionRow{}, err
		}
		if err := sw.Close(); err != nil {
			return storeCompressionRow{}, err
		}
		if err := sf.Close(); err != nil {
			return storeCompressionRow{}, err
		}
		hotSt, err := os.Stat(hotPath)
		if err != nil {
			return storeCompressionRow{}, err
		}
		segSt, err := os.Stat(segPath)
		if err != nil {
			return storeCompressionRow{}, err
		}
		return storeCompressionRow{
			Shape:            name,
			Epochs:           epochs,
			RecordsPerE:      len(recs),
			HotBytes:         hotSt.Size(),
			SegmentBytes:     segSt.Size(),
			CompressionRatio: float64(hotSt.Size()) / float64(segSt.Size()),
		}, nil
	}
	persistent := records
	if len(persistent) > 2000 {
		persistent = persistent[:2000]
	}
	var compRows []storeCompressionRow
	comp, err := writeBoth("persistent", persistent)
	if err != nil {
		return err
	}
	compRows = append(compRows, comp)
	if len(records) > 2*len(persistent) {
		full, err := writeBoth("full", records)
		if err != nil {
			return err
		}
		compRows = append(compRows, full)
	}
	if _, err := fmt.Fprintln(w, "compression\tepochs\trecords_per_epoch\thot_bytes\tsegment_bytes\tratio"); err != nil {
		return err
	}
	for _, row := range compRows {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.2f\n",
			row.Shape, row.Epochs, row.RecordsPerE, row.HotBytes, row.SegmentBytes, row.CompressionRatio); err != nil {
			return err
		}
	}

	// (2) Full-scan decode throughput, hot mmap vs cold inflate, over the
	// largest shape written above.
	passes := 4
	if cfg.quick {
		passes = 2
	}
	scanShape := compRows[len(compRows)-1]
	hotPath := dir + "/" + scanShape.Shape + ".frec"
	segPath := dir + "/" + scanShape.Shape + ".cseg"
	mapped, err := recordstore.OpenMapped(hotPath)
	if err != nil {
		return err
	}
	defer mapped.Close()
	seg, err := recordstore.OpenSegment(segPath)
	if err != nil {
		return err
	}
	defer seg.Close()
	scan := func(src recordstore.EpochSource) (int64, error) {
		return bestNs(passes, func() error {
			var buf []flow.Record
			for i := 0; i < src.Epochs(); i++ {
				ep, err := src.AppendEpochAt(i, buf[:0])
				if err != nil {
					return err
				}
				buf = ep.Records
			}
			return nil
		})
	}
	hotNs, err := scan(mapped)
	if err != nil {
		return err
	}
	coldNs, err := scan(seg)
	if err != nil {
		return err
	}
	totalRecs := epochs * scanShape.RecordsPerE
	scanRows := []storeScanRow{
		{Tier: "hot", Epochs: epochs,
			NsPerRecord: float64(hotNs) / float64(totalRecs),
			MRecPerS:    float64(totalRecs) / (float64(hotNs) / 1e9) / 1e6},
		{Tier: "cold", Epochs: epochs,
			NsPerRecord: float64(coldNs) / float64(totalRecs),
			MRecPerS:    float64(totalRecs) / (float64(coldNs) / 1e9) / 1e6},
	}
	if _, err := fmt.Fprintln(w, "scan\tepochs\tns_per_record\tMrec_per_s"); err != nil {
		return err
	}
	for _, row := range scanRows {
		if _, err := fmt.Fprintf(w, "%s\t%d\t%.1f\t%.3f\n",
			row.Tier, row.Epochs, row.NsPerRecord, row.MRecPerS); err != nil {
			return err
		}
	}

	// (3) Compaction stall: fill a tiered store past its hot window and
	// compact, round after round; the stall is the hot-file rewrite's
	// lock hold — the only compaction cost the write path can see.
	rounds := 8
	if cfg.quick {
		rounds = 4
	}
	perRound := 32
	tiered, _, err := recordstore.OpenTiered(dir+"/tiered", recordstore.TieredOptions{HotEpochs: 8})
	if err != nil {
		return err
	}
	defer tiered.Close()
	stalls := make([]float64, 0, rounds)
	for r := 0; r < rounds; r++ {
		for e := 0; e < perRound; e++ {
			drift(records, e)
			ts := time.Unix(int64((r*perRound+e))*60, 0)
			if err := tiered.WriteEpoch(ts, records); err != nil {
				return err
			}
		}
		stats, err := tiered.Compact()
		if err != nil {
			return err
		}
		stalls = append(stalls, float64(stats.StallNs)/1e3)
	}
	sort.Float64s(stalls)
	stall := storeStallRow{
		Rounds:       rounds,
		EpochsPerRnd: perRound,
		MedStallUs:   stalls[len(stalls)/2],
		MaxStallUs:   stalls[len(stalls)-1],
	}
	if _, err := fmt.Fprintln(w, "compaction\trounds\tepochs_per_round\tmed_stall_us\tmax_stall_us"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "stall\t%d\t%d\t%.0f\t%.0f\n",
		stall.Rounds, stall.EpochsPerRnd, stall.MedStallUs, stall.MaxStallUs); err != nil {
		return err
	}

	if cfg.json {
		return writeBenchJSON("store", struct {
			Compression []storeCompressionRow `json:"compression"`
			Scan        []storeScanRow        `json:"scan"`
			Compaction  storeStallRow         `json:"compaction"`
		}{compRows, scanRows, stall})
	}
	return nil
}
