package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// write drops a JSON fixture into the test dir and returns its path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const baseline = `{
  "cost": [
    {"stages": "change", "epochs": 64, "ns_per_epoch": 400000, "ns_per_record": 200.0},
    {"stages": "full", "epochs": 64, "ns_per_epoch": 900000, "ns_per_record": 450.0}
  ],
  "rotation": [
    {"detector": true, "packets": 1280000, "ns_per_pkt": 300.0, "med_stall_us": 2000.0, "max_stall_us": 3000.0}
  ],
  "accuracy": {"epochs": 60, "change_precision": 1.0, "change_recall": 1.0, "ramp_recall": 1.0},
  "netwide": {"vantages": 3, "precision": 1.0, "recall": 1.0}
}`

func runDiff(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var sb strings.Builder
	err := run(args, &sb)
	return sb.String(), err
}

// TestIdenticalReportsPass: a fresh report equal to the baseline passes
// and actually checks metrics.
func TestIdenticalReportsPass(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", baseline)
	fresh := write(t, dir, "new.json", baseline)
	out, err := runDiff(t, old, fresh)
	if err != nil {
		t.Fatalf("identical reports failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 regressions") || strings.Contains(out, " 0 metrics checked") {
		t.Errorf("summary: %s", out)
	}
}

// TestWithinTolerancePasses: moderately worse numbers inside the slack
// pass; counters and unknown keys never gate.
func TestWithinTolerancePasses(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", baseline)
	fresh := write(t, dir, "new.json", strings.NewReplacer(
		`"ns_per_epoch": 400000`, `"ns_per_epoch": 800000`, // 2x < 2.5x limit
		`"epochs": 64`, `"epochs": 24`, // counter, ignored
	).Replace(baseline))
	if out, err := runDiff(t, "-tol", "1.5", old, fresh); err != nil {
		t.Fatalf("within-tolerance run failed: %v\n%s", err, out)
	}
}

// TestPerfRegressionFails: a lower-better metric past (1+tol)x fails
// and names the path.
func TestPerfRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", baseline)
	fresh := write(t, dir, "new.json", strings.Replace(baseline,
		`"ns_per_pkt": 300.0`, `"ns_per_pkt": 900.0`, 1)) // 3x > 2.5x
	out, err := runDiff(t, "-tol", "1.5", old, fresh)
	if err == nil {
		t.Fatalf("3x ns_per_pkt regression passed:\n%s", out)
	}
	if !strings.Contains(out, "rotation[0].ns_per_pkt") {
		t.Errorf("violation does not name the metric: %s", out)
	}
}

// TestQualityRegressionFails: precision/recall gate far tighter than
// perf — a drop to 0.8 fails even though it is nowhere near 2.5x.
func TestQualityRegressionFails(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", baseline)
	fresh := write(t, dir, "new.json", strings.Replace(baseline,
		`"ramp_recall": 1.0`, `"ramp_recall": 0.8`, 1))
	out, err := runDiff(t, old, fresh)
	if err == nil {
		t.Fatalf("recall drop to 0.8 passed:\n%s", out)
	}
	if !strings.Contains(out, "accuracy.ramp_recall") {
		t.Errorf("violation does not name the metric: %s", out)
	}
	// Within the quality tolerance: fine.
	fresh2 := write(t, dir, "new2.json", strings.Replace(baseline,
		`"ramp_recall": 1.0`, `"ramp_recall": 0.97`, 1))
	if out, err := runDiff(t, old, fresh2); err != nil {
		t.Fatalf("0.97 recall failed: %v\n%s", err, out)
	}
}

// TestStructuralDriftFails: missing metrics and changed row counts point
// at a stale baseline.
func TestStructuralDriftFails(t *testing.T) {
	dir := t.TempDir()
	old := write(t, dir, "old.json", baseline)
	missing := write(t, dir, "missing.json", strings.Replace(baseline,
		`"ns_per_pkt": 300.0, `, "", 1))
	if out, err := runDiff(t, old, missing); err == nil {
		t.Fatalf("missing metric passed:\n%s", out)
	}
	shrunk := write(t, dir, "shrunk.json", strings.Replace(baseline,
		`{"stages": "change", "epochs": 64, "ns_per_epoch": 400000, "ns_per_record": 200.0},`, "", 1))
	out, err := runDiff(t, old, shrunk)
	if err == nil {
		t.Fatalf("row-count drift passed:\n%s", out)
	}
	if !strings.Contains(out, "row count changed") {
		t.Errorf("drift message: %s", out)
	}
}

// TestBadInvocation: wrong arity and a metric-free baseline error out.
func TestBadInvocation(t *testing.T) {
	if _, err := runDiff(t, "only-one.json"); err == nil {
		t.Error("single argument accepted")
	}
	dir := t.TempDir()
	empty := write(t, dir, "empty.json", `{"note": "nothing measurable"}`)
	if _, err := runDiff(t, empty, empty); err == nil {
		t.Error("metric-free baseline accepted")
	}
}
