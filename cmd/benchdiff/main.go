// Command benchdiff is the CI benchmark regression gate: it compares a
// freshly measured flowbench JSON report against the committed
// BENCH_*.json baseline and fails when a recognized metric regressed
// past the tolerance.
//
//	benchdiff [-tol 1.5] [-qualtol 0.05] BENCH_detect.json fresh/BENCH_detect.json
//
// Two metric classes are checked, recognized by JSON key:
//
//   - performance (ns_per_*, *_stall_us, p50/p95/max_us lower-better;
//     mpps, mrec_per_s higher-better), gated with -tol: a fresh value
//     may be up to (1+tol)x worse than the baseline. The default 1.5
//     (2.5x) deliberately catches order-of-magnitude regressions rather
//     than microbenchmark noise — CI runners and the machines baselines
//     were recorded on differ, and per-unit metrics (per packet, per
//     record) are the only thing comparable across them.
//   - quality (*_precision, *_recall keys, higher-better), gated with
//     the much tighter -qualtol: accuracy is hardware-independent, so a
//     fresh run may not fall more than qualtol (relative) below the
//     committed value.
//
// Counter-like keys (epochs, packets, shards, ...) are ignored: quick
// runs shrink scale without changing per-unit cost. Structural drift —
// a metric present in the baseline but missing from the fresh report,
// or row arrays of different lengths — also fails, pointing at a stale
// baseline that needs regenerating with `flowbench -json`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// lowerBetter / higherBetter / quality classify metric keys by suffix.
var (
	lowerBetter = []string{
		"ns_per_pkt", "ns_per_record", "ns_per_epoch", "ns_per_access",
		"ns_per_op",
		"med_stall_us", "max_stall_us", "p50_us", "p95_us", "max_us",
	}
	higherBetter = []string{"mpps", "mrec_per_s", "_ratio"}
	quality      = []string{"_precision", "_recall", "precision", "recall"}
)

// metricClass reports how the key's metric is gated: +1 higher-better,
// -1 lower-better, 0 not a gated perf metric. qual marks the quality
// class (higher-better, tight tolerance).
func metricClass(key string) (dir int, qual bool) {
	for _, s := range quality {
		if strings.HasSuffix(key, s) {
			return +1, true
		}
	}
	for _, s := range lowerBetter {
		if strings.HasSuffix(key, s) {
			return -1, false
		}
	}
	for _, s := range higherBetter {
		if strings.HasSuffix(key, s) {
			return +1, false
		}
	}
	return 0, false
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	tol := fs.Float64("tol", 1.5, "relative tolerance for performance metrics (new may be (1+tol)x worse)")
	qualTol := fs.Float64("qualtol", 0.05, "relative tolerance for precision/recall metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [-tol x] [-qualtol x] <baseline.json> <fresh.json>")
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	fresh, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	d := differ{tol: *tol, qualTol: *qualTol}
	d.walk("", base, fresh)
	for _, v := range d.violations {
		if _, err := fmt.Fprintln(w, "REGRESSION:", v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "benchdiff: %d metrics checked against %s, %d regressions\n",
		d.checked, fs.Arg(0), len(d.violations)); err != nil {
		return err
	}
	if len(d.violations) > 0 {
		return fmt.Errorf("%d metrics regressed past tolerance", len(d.violations))
	}
	if d.checked == 0 {
		return fmt.Errorf("no recognized metrics in %s — wrong file?", fs.Arg(0))
	}
	return nil
}

func load(path string) (any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return v, nil
}

type differ struct {
	tol        float64
	qualTol    float64
	checked    int
	violations []string
}

// walk compares base and fresh structurally, gating recognized metric
// leaves.
func (d *differ) walk(path string, base, fresh any) {
	switch b := base.(type) {
	case map[string]any:
		f, ok := fresh.(map[string]any)
		if !ok {
			d.violations = append(d.violations, fmt.Sprintf("%s: fresh report is not an object", path))
			return
		}
		for k, bv := range b {
			p := k
			if path != "" {
				p = path + "." + k
			}
			fv, present := f[k]
			if !present {
				if dir, _ := metricClass(k); dir != 0 {
					d.violations = append(d.violations,
						fmt.Sprintf("%s: metric missing from fresh report (stale baseline? regenerate with flowbench -json)", p))
				}
				continue
			}
			d.walk(p, bv, fv)
		}
	case []any:
		f, ok := fresh.([]any)
		if !ok || len(f) != len(b) {
			d.violations = append(d.violations,
				fmt.Sprintf("%s: row count changed (baseline %d) — regenerate the baseline", path, len(b)))
			return
		}
		for i := range b {
			d.walk(fmt.Sprintf("%s[%d]", path, i), b[i], f[i])
		}
	case float64:
		fv, ok := fresh.(float64)
		if !ok {
			d.violations = append(d.violations, fmt.Sprintf("%s: fresh value is not a number", path))
			return
		}
		key := path
		if i := strings.LastIndexByte(path, '.'); i >= 0 {
			key = path[i+1:]
		}
		dir, qual := metricClass(key)
		if dir == 0 || b == 0 {
			// A zero baseline makes any relative gate degenerate; skip it.
			return
		}
		d.checked++
		tol := d.tol
		if qual {
			tol = d.qualTol
		}
		switch {
		case dir < 0 && fv > b*(1+tol):
			d.violations = append(d.violations,
				fmt.Sprintf("%s: %.3f -> %.3f (limit %.3f, +%.0f%% tolerance)", path, b, fv, b*(1+tol), tol*100))
		case dir > 0 && fv < b/(1+tol):
			d.violations = append(d.violations,
				fmt.Sprintf("%s: %.3f -> %.3f (limit %.3f, -%.0f%% tolerance)", path, b, fv, b/(1+tol), tol/(1+tol)*100))
		}
	}
}
