package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/collector"
	"repro/detect"
	"repro/flow"
	"repro/netflow"
	"repro/query"
	"repro/recordstore"
	"repro/telemetry"
	"repro/telemetry/events"
)

// sseEvent is one decoded /events frame.
type sseEvent struct {
	id    string
	event string
	data  string
}

// sseCollect connects to an /events stream and forwards decoded frames
// until the context ends.
func sseCollect(ctx context.Context, url string, out chan<- sseEvent) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	var resp *http.Response
	for {
		resp, err = http.DefaultClient.Do(req)
		if err == nil {
			break
		}
		// The daemon may still be binding its listener; retry briefly.
		select {
		case <-ctx.Done():
			return err
		case <-time.After(50 * time.Millisecond):
		}
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var cur sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.data != "" {
				select {
				case out <- cur:
				case <-ctx.Done():
					return nil
				}
			}
			cur = sseEvent{}
		case strings.HasPrefix(line, ": "):
		case strings.HasPrefix(line, "id: "):
			cur.id = line[4:]
		case strings.HasPrefix(line, "event: "):
			cur.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			cur.data = line[6:]
		}
	}
	return nil
}

// TestServeEventsSSE is the live-ops loop end to end: serve with -detect
// and -http, hold an SSE client on /events, inject a baseline epoch then a
// heavy-change spike, and require the alert to arrive on the stream within
// the epoch that produced it. The /trace/epochs timeline for that epoch
// must show the full stage breakdown.
func TestServeEventsSSE(t *testing.T) {
	udpProbe, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	udpAddr := udpProbe.LocalAddr().String()
	udpProbe.Close()
	tcpProbe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpAddr := tcpProbe.Addr().String()
	tcpProbe.Close()

	store := filepath.Join(t.TempDir(), "events.frec")
	var (
		wg       sync.WaitGroup
		serveOut lockedBuf
		serveErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr = run([]string{"serve", "-listen", udpAddr, "-store", store,
			"-gap", "200ms", "-for", "5s", "-http", httpAddr,
			"-detect", "-changedelta", "500"}, &serveOut)
	}()
	time.Sleep(300 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	frames := make(chan sseEvent, 64)
	go func() {
		_ = sseCollect(ctx, "http://"+httpAddr+"/events?kind=alert,epoch", frames)
	}()

	conn, err := net.Dial("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	exp := netflow.NewExporter(func(b []byte) error {
		_, err := conn.Write(b)
		return err
	})
	hot := flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000063, DstPort: 443, Proto: 6}
	if err := exp.Export([]flow.Record{{Key: hot, Count: 100}}, 700); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond) // quiet gap closes epoch 1

	if err := exp.Export([]flow.Record{{Key: hot, Count: 5100}}, 700); err != nil {
		t.Fatal(err)
	}
	spiked := time.Now()

	// The alert must stream out within the epoch that produced it: the
	// 200ms quiet gap closes the spike epoch, detection runs on the epoch
	// goroutine, and the SSE fan-out is synchronous with Publish.
	var alertEv events.Event
	deadline := time.After(2 * time.Second)
	var epochFrames, alertFrames int
waitAlert:
	for {
		select {
		case f := <-frames:
			switch f.event {
			case "epoch":
				epochFrames++
			case "alert":
				alertFrames++
				if err := json.Unmarshal([]byte(f.data), &alertEv); err != nil {
					t.Fatalf("alert frame not JSON: %v (%q)", err, f.data)
				}
				break waitAlert
			}
		case <-deadline:
			t.Fatalf("no alert frame within 2s of the spike (%d epoch frames seen)", epochFrames)
		}
	}
	if lat := time.Since(spiked); lat > 2*time.Second {
		t.Errorf("alert latency %v", lat)
	}
	if alertEv.Kind != events.KindAlert || alertEv.Vantage != "live" {
		t.Errorf("alert event: %+v", alertEv)
	}
	if alertEv.Seq == 0 {
		t.Error("alert event missing sequence number")
	}

	// The spike epoch's timeline: full stage breakdown with real timings.
	var tr query.TraceResponse
	if err := getJSON("http://"+httpAddr+"/trace/epochs", &tr); err != nil {
		t.Fatalf("/trace/epochs: %v", err)
	}
	var spike *events.EpochTrace
	for i := range tr.Epochs {
		if tr.Epochs[i].Epoch == alertEv.Epoch {
			spike = &tr.Epochs[i]
		}
	}
	if spike == nil {
		t.Fatalf("/trace/epochs missing epoch %d: %+v", alertEv.Epoch, tr.Epochs)
	}
	if spike.Records == 0 || spike.TotalNs <= 0 || spike.Vantage != "live" {
		t.Errorf("spike trace: %+v", spike)
	}
	stages := map[string]int64{}
	for _, st := range spike.Stages {
		stages[st.Name] = st.Ns
	}
	for _, want := range []string{"store_write", "detect"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("trace missing %q stage: %+v", want, spike.Stages)
		}
	}

	// The instrumented mux counted the requests this test already made.
	metrics := getBody(t, "http://"+httpAddr+"/metrics")
	if !strings.Contains(metrics, `http_requests_total{endpoint="/trace/epochs"}`) {
		t.Errorf("/metrics missing endpoint counters:\n%s", metrics)
	}
	if !strings.Contains(metrics, "events_published_total") {
		t.Errorf("/metrics missing event bus counters:\n%s", metrics)
	}

	cancel()
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("serve: %v", serveErr)
	}
}

// failWriter fails every write, driving the record store into its sticky
// error state.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) {
	return 0, io.ErrClosedPipe
}

// TestServeHealthDegradedTransition pins the /healthz contract: healthy
// reports "ok", a sticky store-write error flips the status to "degraded"
// with the error surfaced — and the endpoint still answers 200, because a
// degraded collector is still serving.
func TestServeHealthDegradedTransition(t *testing.T) {
	var (
		epochs  atomic.Uint64
		lastErr atomic.Pointer[string]
	)
	setLastErr := func(err error) {
		msg := err.Error()
		lastErr.Store(&msg)
	}
	store := collector.NewEpochStore(recordstore.NewWriter(failWriter{}))
	health := serveHealth(time.Now(), &epochs, store, &lastErr, setLastErr,
		&telemetry.StoreHealth{Path: "x.frec", State: "created"}, nil)

	mux := http.NewServeMux()
	telemetry.Ops{Registry: telemetry.NewRegistry(), Health: health}.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func() (int, telemetry.Health) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h telemetry.Health
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	code, h := get()
	if code != http.StatusOK || h.Status != "ok" || h.LastError != "" {
		t.Fatalf("healthy: code %d, %+v", code, h)
	}

	// One epoch through the failing writer makes the store error sticky.
	store.Sink(time.Now(), []flow.Record{{Key: flow.Key{SrcIP: 1}, Count: 1}})
	_ = store.Flush()
	epochs.Add(1)

	code, h = get()
	if code != http.StatusOK {
		t.Fatalf("degraded must still answer 200, got %d", code)
	}
	if h.Status != "degraded" || !strings.Contains(h.LastError, "store write") {
		t.Fatalf("degraded: %+v", h)
	}
	if h.Epochs != 1 {
		t.Errorf("epochs = %d", h.Epochs)
	}
}

// TestWebhookStatusLogsFirstFailure: the status logger must report the
// first failed delivery after a healthy streak immediately (via the
// delivery path's nudge), not at the next periodic tick.
func TestWebhookStatusLogsFirstFailure(t *testing.T) {
	recv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer recv.Close()

	s := newWebhookSinkWithRetry(recv.URL, 1, time.Millisecond, time.Millisecond)
	var buf lockedBuf
	logger := slog.New(events.NewLogHandler(&buf, nil, ""))
	// The tick alone would take an hour; only the nudge can surface this.
	s.startLog(logger, time.Hour)

	s.deliver([]detect.Alert{{Kind: detect.KindHeavyChange, Severity: detect.SeverityWarning}})

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if strings.Contains(buf.String(), "webhook: deliveries degraded") {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.close(io.Discard)
	out := buf.String()
	if !strings.Contains(out, "webhook: deliveries degraded") {
		t.Fatalf("no immediate degraded status line; log: %q", out)
	}
	if !strings.Contains(out, "failed=1") {
		t.Errorf("status line missing failure count: %q", out)
	}
}

// TestExportTraceTimeline: export with -trace prints one stage timeline
// per retained epoch after the drain summary.
func TestExportTraceTimeline(t *testing.T) {
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	var out bytes.Buffer
	err = run([]string{"export", "-profile", "ISP2", "-flows", "400", "-mem", "65536",
		"-epochpkts", "150", "-trace", "4", "-to", sink.LocalAddr().String()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "trace epoch ") {
		t.Fatalf("no epoch timelines in output:\n%s", s)
	}
	first := s[strings.Index(s, "trace epoch "):]
	line := first[:strings.IndexByte(first, '\n')]
	for _, stage := range []string{"extract=", "flush=", "reset=", "records"} {
		if !strings.Contains(line, stage) {
			t.Errorf("timeline %q missing %q", line, stage)
		}
	}
	// -trace without rotation is rejected like -detect.
	if err := run([]string{"export", "-trace", "2"}, io.Discard); err == nil {
		t.Error("accepted -trace without -epochpkts")
	}
}
