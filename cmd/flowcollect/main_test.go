package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/detect"
	"repro/flow"
	"repro/internal/faults"
	"repro/netflow"
	"repro/pcapio"
	"repro/query"
	"repro/recordstore"
	"repro/telemetry"
)

func TestRunModes(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("accepted missing mode")
	}
	if err := run([]string{"bogus"}, &buf); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestExportErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"export", "-algo", "nope"}, &buf); err == nil {
		t.Error("accepted unknown algorithm")
	}
	if err := run([]string{"export", "-pcap", "/does/not/exist"}, &buf); err == nil {
		t.Error("accepted missing pcap")
	}
}

func TestExportCollectLoopback(t *testing.T) {
	// Start the collector on an ephemeral port, export a generated trace
	// to it, and check both halves report consistent record counts.
	addr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	probe, err := net.ListenUDP("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	port := probe.LocalAddr().String()
	probe.Close()

	var (
		wg         sync.WaitGroup
		collectOut bytes.Buffer
		collectErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		collectErr = run([]string{"collect", "-listen", port, "-idle", "500ms", "-top", "3"}, &collectOut)
	}()

	// Give the listener a moment to bind, then export.
	time.Sleep(200 * time.Millisecond)
	var exportOut bytes.Buffer
	err = run([]string{"export", "-profile", "ISP2", "-flows", "500",
		"-mem", "65536", "-to", port}, &exportOut)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	wg.Wait()
	if collectErr != nil {
		t.Fatalf("collect: %v", collectErr)
	}
	if !strings.Contains(exportOut.String(), "exported") {
		t.Errorf("export output: %q", exportOut.String())
	}
	if !strings.Contains(collectOut.String(), "collected") {
		t.Errorf("collect output: %q", collectOut.String())
	}
}

func TestExportFromPcap(t *testing.T) {
	// Write a small pcap, then export from it to a local collector socket
	// we drain manually.
	dir := t.TempDir()
	path := filepath.Join(dir, "in.pcap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := pcapio.NewWriter(f)
	k := flow.Key{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	for i := 0; i < 10; i++ {
		if err := w.WritePacket(flow.Packet{Key: k, Size: 100}, time.Unix(0, 0)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	var out bytes.Buffer
	err = run([]string{"export", "-pcap", path, "-mem", "65536",
		"-to", sink.LocalAddr().String()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "processed 10 packets, exported 1 flow records") {
		t.Errorf("export output: %q", out.String())
	}
}

func TestServeStoresEpochs(t *testing.T) {
	// Pick an ephemeral port, serve briefly, export into it, then verify
	// the record store holds the epoch.
	addr, err := net.ResolveUDPAddr("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	probe, err := net.ListenUDP("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	port := probe.LocalAddr().String()
	probe.Close()

	store := filepath.Join(t.TempDir(), "out.frec")
	var (
		wg       sync.WaitGroup
		serveOut bytes.Buffer
		serveErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr = run([]string{"serve", "-listen", port, "-store", store,
			"-gap", "200ms", "-for", "2s"}, &serveOut)
	}()

	time.Sleep(300 * time.Millisecond)
	var exportOut bytes.Buffer
	err = run([]string{"export", "-profile", "ISP2", "-flows", "300",
		"-mem", "65536", "-to", port}, &exportOut)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	wg.Wait()
	if serveErr != nil {
		t.Fatalf("serve: %v", serveErr)
	}

	f, err := os.Open(store)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	epochs, err := recordstore.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) == 0 {
		t.Fatal("no epochs stored")
	}
	total := 0
	for _, ep := range epochs {
		total += len(ep.Records)
	}
	if total == 0 {
		t.Error("stored epochs carry no records")
	}
	if !strings.Contains(serveOut.String(), "done:") {
		t.Errorf("serve output: %q", serveOut.String())
	}
}

// TestExportEpochAligned: -epochpkts rotates epochs through the
// double-buffered drain, exporting each over UDP as it completes.
func TestExportEpochAligned(t *testing.T) {
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	var out bytes.Buffer
	err = run([]string{"export", "-profile", "ISP2", "-flows", "400", "-mem", "65536",
		"-epochpkts", "150", "-to", sink.LocalAddr().String()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "epochs") {
		t.Errorf("epoch-aligned export output: %q", out.String())
	}
	// "in N epochs" with N >= 2 proves rotation actually happened.
	var pkts, recs, epochs int
	if _, err := fmt.Sscanf(out.String(), "processed %d packets, exported %d flow records in %d epochs",
		&pkts, &recs, &epochs); err != nil {
		t.Fatalf("unparseable output %q: %v", out.String(), err)
	}
	if epochs < 2 {
		t.Errorf("only %d epochs for %d packets with -epochpkts 150", epochs, pkts)
	}
	if recs == 0 {
		t.Error("no records exported")
	}
	// The drain-timing summary from the adaptive instruments rides the
	// final accounting.
	for _, stage := range []string{"drain extract:", "drain flush:", "drain reset:"} {
		if !strings.Contains(out.String(), stage) {
			t.Errorf("output missing %q summary:\n%s", stage, out.String())
		}
	}
}

// TestServeWithQueryAPI runs the full live loop: serve with -http, export
// a trace into it, then hit /topk and /epochs while the collector is
// still up.
func TestServeWithQueryAPI(t *testing.T) {
	udpProbe, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	udpAddr := udpProbe.LocalAddr().String()
	udpProbe.Close()
	tcpProbe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpAddr := tcpProbe.Addr().String()
	tcpProbe.Close()

	store := filepath.Join(t.TempDir(), "live.frec")
	var (
		wg       sync.WaitGroup
		serveOut bytes.Buffer
		serveErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr = run([]string{"serve", "-listen", udpAddr, "-store", store,
			"-gap", "200ms", "-for", "3s", "-http", httpAddr}, &serveOut)
	}()

	time.Sleep(300 * time.Millisecond)
	var exportOut bytes.Buffer
	if err := run([]string{"export", "-profile", "ISP2", "-flows", "300",
		"-mem", "65536", "-to", udpAddr}, &exportOut); err != nil {
		t.Fatalf("export: %v", err)
	}
	// Wait for the quiet gap to close the epoch, then query live.
	time.Sleep(600 * time.Millisecond)

	var tk query.TopKResponse
	if err := getJSON("http://"+httpAddr+"/topk?k=5", &tk); err != nil {
		t.Fatalf("/topk: %v", err)
	}
	if len(tk.Flows) == 0 {
		t.Error("/topk returned no flows while the collector is live")
	}
	var eps query.EpochsResponse
	if err := getJSON("http://"+httpAddr+"/epochs", &eps); err != nil {
		t.Fatalf("/epochs: %v", err)
	}
	if len(eps.Epochs) == 0 {
		t.Error("/epochs empty while the store has an epoch")
	}

	// The ops surface shares the query listener: Prometheus text and
	// JSON metrics, plus the structured health snapshot.
	prom := getBody(t, "http://"+httpAddr+"/metrics")
	for _, want := range []string{
		"collector_datagrams_total",
		"collector_epoch_records",
		"store_epochs_written_total",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %s:\n%s", want, prom)
		}
	}
	var mj map[string]any
	if err := getJSON("http://"+httpAddr+"/metrics?format=json", &mj); err != nil {
		t.Fatalf("/metrics?format=json: %v", err)
	}
	if v, ok := mj["collector_datagrams_total"].(float64); !ok || v == 0 {
		t.Errorf("json metrics: collector_datagrams_total = %v, want > 0", mj["collector_datagrams_total"])
	}
	var h telemetry.Health
	if err := getJSON("http://"+httpAddr+"/healthz", &h); err != nil {
		t.Fatalf("/healthz: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("health status %q (last_error %q), want ok", h.Status, h.LastError)
	}
	if h.Store == nil || h.Store.State != "created" {
		t.Errorf("health store = %+v, want state created", h.Store)
	}
	if h.Epochs == 0 {
		t.Error("health reports zero epochs after an export landed")
	}
	// pprof must stay off without -debug.
	if resp, err := http.Get("http://" + httpAddr + "/debug/pprof/"); err != nil {
		t.Fatalf("pprof probe: %v", err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("/debug/pprof/ status %d without -debug, want 404", resp.StatusCode)
		}
	}

	wg.Wait()
	if serveErr != nil {
		t.Fatalf("serve: %v", serveErr)
	}
	if !strings.Contains(serveOut.String(), "query API on http://") {
		t.Errorf("serve output missing query API line: %q", serveOut.String())
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(b)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func TestServeBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"serve", "-store", "/no/such/dir/x.frec", "-for", "1ms"}, &buf); err == nil {
		t.Error("accepted uncreatable store path")
	}
}

// TestExportDetectOnDrain runs epoch-aligned export with the detection
// subsystem attached to the drain worker: the run must complete, rotate
// multiple epochs, and surface no drain error.
func TestExportDetectOnDrain(t *testing.T) {
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()

	var out bytes.Buffer
	err = run([]string{"export", "-profile", "ISP2", "-flows", "400", "-mem", "65536",
		"-epochpkts", "150", "-detect", "-to", sink.LocalAddr().String()}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var pkts, recs, epochs int
	line := out.String()
	if i := strings.LastIndex(line, "processed "); i >= 0 {
		line = line[i:]
	}
	if _, err := fmt.Sscanf(line, "processed %d packets, exported %d flow records in %d epochs",
		&pkts, &recs, &epochs); err != nil {
		t.Fatalf("unparseable output %q: %v", out.String(), err)
	}
	if epochs < 2 {
		t.Errorf("only %d epochs rotated with the detector attached", epochs)
	}
}

func TestDetectFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"export", "-detect", "-flows", "10"}, &buf); err == nil {
		t.Error("export -detect without -epochpkts accepted")
	}
	if err := run([]string{"serve", "-alerts", "-for", "1ms"}, &buf); err == nil {
		t.Error("serve -alerts without -detect accepted")
	}
	if err := run([]string{"serve", "-webhook", "http://x/", "-for", "1ms"}, &buf); err == nil {
		t.Error("serve -webhook without -detect accepted")
	}
}

// TestWebhookSinkDropsWhenStalled pins the bounded-queue contract: with
// the receiver stalled, deliver never blocks the caller (the epoch
// path), overflow is counted as dropped, and close reports the drops —
// queued payloads still go out once the receiver recovers.
func TestWebhookSinkDropsWhenStalled(t *testing.T) {
	unstall := make(chan struct{})
	var served atomic.Int64
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-unstall
		served.Add(1)
	}))
	defer hook.Close()

	s := newWebhookSink(hook.URL)
	alerts := []detect.Alert{{Kind: detect.KindHeavyChange, Epoch: 1, Value: 5000}}
	// Queue capacity is 16 and one delivery can be in flight; flood well
	// past that while the receiver hangs. Every call must return
	// promptly — a blocking deliver would stall epoch rotation.
	const batches = 40
	done := make(chan struct{})
	go func() {
		for i := 0; i < batches; i++ {
			s.deliver(alerts)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("deliver blocked on a stalled receiver")
	}
	if got := s.dropped.Load(); got == 0 || got > batches-16 {
		t.Fatalf("dropped = %d, want in (0, %d]", got, batches-16)
	}

	// Receiver recovers: the queued payloads drain, nothing new is lost.
	close(unstall)
	var out bytes.Buffer
	s.close(&out)
	if served.Load() == 0 {
		t.Error("no queued delivery reached the recovered receiver")
	}
	wantQueued := batches - s.dropped.Load()
	if got := served.Load(); int64(got) != int64(wantQueued) {
		t.Errorf("served %d deliveries, want %d (dropped %d)", got, wantQueued, s.dropped.Load())
	}
	if s.failed.Load() != 0 {
		t.Errorf("failed = %d, want 0", s.failed.Load())
	}
	if !strings.Contains(out.String(), "deliveries dropped") {
		t.Errorf("close did not report drops: %q", out.String())
	}
}

// TestServeDetectWebhook runs the full alerting loop: serve with
// detection and a webhook sink, feed it two epochs whose second contains
// a massive per-flow change and a superspreader, then check /alerts and
// the webhook delivery.
func TestServeDetectWebhook(t *testing.T) {
	udpProbe, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	udpAddr := udpProbe.LocalAddr().String()
	udpProbe.Close()
	tcpProbe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpAddr := tcpProbe.Addr().String()
	tcpProbe.Close()

	var (
		hookMu   sync.Mutex
		hookBody []byte
	)
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		hookMu.Lock()
		hookBody = append(hookBody, b...)
		hookMu.Unlock()
	}))
	defer hook.Close()

	store := filepath.Join(t.TempDir(), "detect.frec")
	var (
		wg       sync.WaitGroup
		serveOut bytes.Buffer
		serveErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		serveErr = run([]string{"serve", "-listen", udpAddr, "-store", store,
			"-gap", "200ms", "-for", "4s", "-http", httpAddr,
			"-detect", "-changedelta", "500", "-fanout", "64",
			"-alerts", "-webhook", hook.URL}, &serveOut)
	}()
	time.Sleep(300 * time.Millisecond)

	// Epoch 1: a quiet baseline flow. Epoch 2 (after the quiet gap): the
	// same flow spiked past -changedelta plus a 100-destination scanner.
	conn, err := net.Dial("udp", udpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	exp := netflow.NewExporter(func(b []byte) error {
		_, err := conn.Write(b)
		return err
	})
	hot := flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000063, DstPort: 443, Proto: 6}
	if err := exp.Export([]flow.Record{{Key: hot, Count: 100}}, 700); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond) // quiet gap closes epoch 1

	recs := []flow.Record{{Key: hot, Count: 5100}}
	for i := 0; i < 100; i++ {
		recs = append(recs, flow.Record{
			Key:   flow.Key{SrcIP: 0x09090909, DstIP: 0xE0000000 | uint32(i), DstPort: 80, Proto: 6},
			Count: 1,
		})
	}
	if err := exp.Export(recs, 700); err != nil {
		t.Fatal(err)
	}
	time.Sleep(600 * time.Millisecond) // quiet gap closes epoch 2

	var alerts query.AlertsResponse
	if err := getJSON("http://"+httpAddr+"/alerts", &alerts); err != nil {
		t.Fatalf("/alerts: %v", err)
	}
	kinds := map[string]int{}
	for _, a := range alerts.Alerts {
		kinds[a.Kind]++
	}
	if kinds["heavychange"] == 0 {
		t.Errorf("no heavy-change alert; got %+v", alerts.Alerts)
	}
	if kinds["superspreader"] == 0 {
		t.Errorf("no superspreader alert; got %+v", alerts.Alerts)
	}
	var changes query.ChangesResponse
	if err := getJSON("http://"+httpAddr+"/changes", &changes); err != nil {
		t.Fatalf("/changes: %v", err)
	}
	found := false
	for _, ep := range changes.Epochs {
		for _, c := range ep.Changes {
			if c.Delta == 5000 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("/changes missing the +5000 delta: %+v", changes.Epochs)
	}

	wg.Wait()
	if serveErr != nil {
		t.Fatalf("serve: %v", serveErr)
	}
	if !strings.Contains(serveOut.String(), "heavychange") {
		t.Errorf("-alerts printed nothing: %q", serveOut.String())
	}
	hookMu.Lock()
	body := string(hookBody)
	hookMu.Unlock()
	if !strings.Contains(body, "superspreader") {
		t.Errorf("webhook missed the alerts: %q", body)
	}
}

// lockedBuf is a goroutine-safe output buffer for tests that read serve
// output while the serve goroutine is still writing it.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestWebhookSinkRetriesTransientFailure: a receiver that 500s a couple
// of times then recovers must lose nothing — the payload is retried under
// backoff and counted delivered, not failed.
func TestWebhookSinkRetriesTransientFailure(t *testing.T) {
	h := &faults.FlakyHandler{}
	h.FailNext(2, http.StatusInternalServerError)
	hook := httptest.NewServer(h)
	defer hook.Close()

	s := newWebhookSinkWithRetry(hook.URL, 4, 2*time.Millisecond, 10*time.Millisecond)
	s.deliver([]detect.Alert{{Kind: detect.KindForecast, Epoch: 7, Value: 4100}})
	var out bytes.Buffer
	s.close(&out)

	if f, ok := h.Failed(), h.Served(); f != 2 || ok != 1 {
		t.Errorf("receiver saw %d failed + %d served attempts, want 2 + 1", f, ok)
	}
	if s.failed.Load() != 0 {
		t.Errorf("failed = %d, want 0: transient failures must not count as lost", s.failed.Load())
	}
	if s.retries.Load() != 2 {
		t.Errorf("retries = %d, want 2", s.retries.Load())
	}
	if !strings.Contains(out.String(), "2 retries") {
		t.Errorf("close did not report retries: %q", out.String())
	}
}

// TestWebhookSinkRetryBudgetExhausted: a receiver that never accepts
// costs exactly maxAttempts attempts and one counted failure per payload,
// then the sink moves on — no unbounded retry loop at shutdown.
func TestWebhookSinkRetryBudgetExhausted(t *testing.T) {
	h := &faults.FlakyHandler{}
	h.FailNext(100, http.StatusServiceUnavailable) // never recovers within the budget
	hook := httptest.NewServer(h)
	defer hook.Close()

	s := newWebhookSinkWithRetry(hook.URL, 3, 2*time.Millisecond, 10*time.Millisecond)
	s.deliver([]detect.Alert{{Kind: detect.KindAnomaly, Epoch: 1, Metric: "packets"}})
	var out bytes.Buffer
	s.close(&out)

	if got := h.Failed(); got != 3 {
		t.Errorf("receiver saw %d attempts, want exactly the budget of 3", got)
	}
	if s.failed.Load() != 1 {
		t.Errorf("failed = %d, want 1", s.failed.Load())
	}
	if !strings.Contains(out.String(), "1 failed") {
		t.Errorf("close did not report the failure: %q", out.String())
	}
}

func TestServeDurabilityFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"serve", "-checkpoint", "x.ckpt", "-for", "1ms"}, &buf); err == nil {
		t.Error("serve -checkpoint without -detect accepted")
	}
	if err := run([]string{"serve", "-fsync", "sometimes", "-for", "1ms"}, &buf); err == nil {
		t.Error("serve -fsync sometimes accepted")
	}
	if err := run([]string{"serve", "-detect", "-checkpoint", "x.ckpt", "-ckptevery", "0", "-for", "1ms"}, &buf); err == nil {
		t.Error("serve -ckptevery 0 accepted")
	}
}

// TestServeAppendsAcrossRuns: a second serve run on the same store file
// must append after the first run's epochs, not truncate them — the
// reopen path that makes restarts safe.
func TestServeAppendsAcrossRuns(t *testing.T) {
	store := filepath.Join(t.TempDir(), "resume.frec")
	oneRun := func() {
		t.Helper()
		udpProbe, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		port := udpProbe.LocalAddr().String()
		udpProbe.Close()
		var (
			wg       sync.WaitGroup
			serveOut bytes.Buffer
			serveErr error
		)
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveErr = run([]string{"serve", "-listen", port, "-store", store,
				"-fsync", "epoch", "-gap", "200ms", "-for", "2s"}, &serveOut)
		}()
		time.Sleep(300 * time.Millisecond)
		var exportOut bytes.Buffer
		if err := run([]string{"export", "-profile", "ISP2", "-flows", "200",
			"-mem", "65536", "-to", port}, &exportOut); err != nil {
			t.Fatalf("export: %v", err)
		}
		wg.Wait()
		if serveErr != nil {
			t.Fatalf("serve: %v", serveErr)
		}
	}

	oneRun()
	m, err := recordstore.OpenMapped(store)
	if err != nil {
		t.Fatal(err)
	}
	after1 := m.Epochs()
	m.Close()
	if after1 == 0 {
		t.Fatal("first run stored no epochs")
	}

	oneRun()
	m, err = recordstore.OpenMapped(store)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.Epochs() <= after1 {
		t.Fatalf("second run did not append: %d epochs before, %d after", after1, m.Epochs())
	}
}

// TestServeGracefulSigterm: a termination signal mid-run must shut the
// collector down cleanly — final epoch drained and stored, checkpoint
// written, normal exit — well before the -for deadline.
func TestServeGracefulSigterm(t *testing.T) {
	udpProbe, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	port := udpProbe.LocalAddr().String()
	udpProbe.Close()

	dir := t.TempDir()
	store := filepath.Join(dir, "sig.frec")
	ckpt := filepath.Join(dir, "sig.ckpt")
	out := &lockedBuf{}
	serveDone := make(chan error, 1)
	go func() {
		serveDone <- run([]string{"serve", "-listen", port, "-store", store,
			"-fsync", "epoch", "-gap", "200ms", "-for", "1h",
			"-detect", "-checkpoint", ckpt}, out)
	}()

	// Wait for the serve loop to come up, feed it one epoch, let the quiet
	// gap close it.
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "serving on") {
		if time.Now().After(deadline) {
			t.Fatalf("serve never came up: %q", out.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	var exportOut bytes.Buffer
	if err := run([]string{"export", "-profile", "ISP2", "-flows", "200",
		"-mem", "65536", "-to", port}, &exportOut); err != nil {
		t.Fatalf("export: %v", err)
	}
	time.Sleep(500 * time.Millisecond)

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("serve exited with error after SIGTERM: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down within 10s of SIGTERM")
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Errorf("no shutdown notice in output: %q", out.String())
	}
	if !strings.Contains(out.String(), "done:") {
		t.Errorf("no final summary in output: %q", out.String())
	}

	// The drained epoch made it to the store and the checkpoint exists.
	m, err := recordstore.OpenMapped(store)
	if err != nil {
		t.Fatalf("store after SIGTERM: %v", err)
	}
	defer m.Close()
	if m.Epochs() == 0 {
		t.Error("store empty after graceful shutdown")
	}
	d, err := detect.NewDetector(detect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.LoadCheckpoint(ckpt); err != nil {
		t.Fatalf("checkpoint after SIGTERM: %v", err)
	}
	if d.Epochs() == 0 {
		t.Error("checkpoint holds no evaluated epochs")
	}
}

// TestServeTieredStore: serve mode with tiered flags writes a tiered
// directory — hot mmap tier plus compressed cold segments after the
// shutdown compaction — and a second -detect run seeds its baselines
// from that history.
func TestServeTieredStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "store.d")
	oneRun := func(extra ...string) string {
		t.Helper()
		udpProbe, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		port := udpProbe.LocalAddr().String()
		udpProbe.Close()
		var (
			wg       sync.WaitGroup
			serveOut bytes.Buffer
			serveErr error
		)
		args := append([]string{"serve", "-listen", port, "-store", dir,
			"-hotepochs", "1", "-gap", "200ms", "-for", "2500ms"}, extra...)
		wg.Add(1)
		go func() {
			defer wg.Done()
			serveErr = run(args, &serveOut)
		}()
		time.Sleep(300 * time.Millisecond)
		// Two quiet-gap separated exports: at least two epochs per run, so
		// the shutdown compaction (hot window 1) always has work.
		for i := 0; i < 2; i++ {
			var exportOut bytes.Buffer
			if err := run([]string{"export", "-profile", "ISP2", "-flows", "200",
				"-mem", "65536", "-seed", fmt.Sprint(i + 1), "-to", port}, &exportOut); err != nil {
				t.Fatalf("export: %v", err)
			}
			time.Sleep(400 * time.Millisecond)
		}
		wg.Wait()
		if serveErr != nil {
			t.Fatalf("serve: %v", serveErr)
		}
		return serveOut.String()
	}

	oneRun()
	src, err := recordstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	total := src.Epochs()
	if total < 2 {
		t.Fatalf("tiered store holds %d epochs, want >= 2", total)
	}
	ts, ok := src.(*recordstore.TieredSource)
	if !ok {
		t.Fatalf("Open(%s) = %T, want *recordstore.TieredSource", dir, src)
	}
	if ts.Segments() == 0 {
		t.Fatal("shutdown compaction left no cold segments")
	}
	if info := ts.EpochInfo(0); info.Tier != "cold" {
		t.Fatalf("oldest epoch tier = %q, want cold", info.Tier)
	}
	src.Close()

	// Second run on the same directory: -seedhistory warms the detector
	// from the stored epochs before live traffic arrives.
	out := oneRun("-detect", "-seedhistory", "16")
	if !strings.Contains(out, "seeded baselines from history") {
		t.Fatalf("second run did not seed from history:\n%s", out)
	}
	src, err = recordstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	if src.Epochs() <= total {
		t.Fatalf("second run did not append: %d epochs before, %d after", total, src.Epochs())
	}
}
