// Command flowcollect runs the two halves of a flow-record collection
// pipeline.
//
// Export mode reads packets (from a pcap file or a generated trace), feeds
// them through a measurement algorithm, and exports the resulting flow
// records as NetFlow v5 over UDP:
//
//	flowcollect export -algo HashFlow -mem 1048576 -pcap trace.pcap -to 127.0.0.1:2055
//	flowcollect export -algo HashFlow -profile Campus -flows 20000 -to 127.0.0.1:2055
//
// Collect mode listens for NetFlow v5 datagrams and prints a summary after
// the exporter goes quiet:
//
//	flowcollect collect -listen 127.0.0.1:2055 -idle 3s
//
// Serve mode runs a persistent collector that writes each quiet-gap
// delimited epoch to a record store file (query it with flowquery). With
// -http it also serves the live query API: /topk straight from an online
// tracker fed per epoch, /epochs and /flows from the growing store file:
//
//	flowcollect serve -listen 127.0.0.1:2055 -store records.frec -for 1m
//	flowcollect serve -listen 127.0.0.1:2055 -store records.frec -http 127.0.0.1:8080
//
// Export mode with -epochpkts rotates epochs while reading: a
// double-buffered adaptive manager swaps recorders at each epoch boundary
// and the background drain worker exports the completed epoch over UDP,
// so the packet path never extracts or sends:
//
//	flowcollect export -profile Campus -flows 20000 -epochpkts 100000 -to 127.0.0.1:2055
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"time"

	"repro/adaptive"
	"repro/collector"
	"repro/flow"
	"repro/flowmon"
	"repro/netflow"
	"repro/pcapio"
	"repro/query"
	"repro/recordstore"
	"repro/topk"
	"repro/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowcollect:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return errors.New("usage: flowcollect <export|collect> [flags]")
	}
	switch args[0] {
	case "export":
		return runExport(args[1:], w)
	case "collect":
		return runCollect(args[1:], w)
	case "serve":
		return runServe(args[1:], w)
	default:
		return fmt.Errorf("unknown mode %q", args[0])
	}
}

func runServe(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:2055", "UDP listen address")
	storePath := fs.String("store", "records.frec", "record store output file")
	gap := fs.Duration("gap", time.Second, "quiet gap that closes an epoch")
	runFor := fs.Duration("for", 30*time.Second, "how long to serve before shutting down")
	httpAddr := fs.String("http", "", "also serve the live query API on this address")
	topkCap := fs.Int("topk", 4096, "live top-k tracker capacity (with -http)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	f, err := os.Create(*storePath)
	if err != nil {
		return err
	}
	defer f.Close()
	store := collector.NewEpochStore(recordstore.NewWriter(f))

	// With the query API enabled, each epoch also feeds the live top-k
	// tracker and is flushed through to the file so the per-request
	// mmap sees it immediately.
	sink := store.Sink
	var httpSrv *http.Server
	var httpLn net.Listener
	if *httpAddr != "" {
		tracker, err := topk.NewTracker(*topkCap)
		if err != nil {
			return err
		}
		sink = func(ts time.Time, records []flow.Record) {
			tracker.AddRecords(records)
			store.Sink(ts, records)
			_ = store.Flush() // sticky; surfaced via store.Err at exit
		}
		httpLn, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		httpSrv = &http.Server{
			Handler: query.NewHandler(query.Config{
				TopK:    tracker,
				Store:   query.FileStore(*storePath),
				Netwide: []query.NamedSource{{Name: "live", Source: tracker}},
			}),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { _ = httpSrv.Serve(httpLn) }()
		if _, err := fmt.Fprintf(w, "query API on http://%s\n", httpLn.Addr()); err != nil {
			httpSrv.Close()
			return err
		}
	}

	srv, err := collector.Start(collector.Config{Listen: *listen, EpochGap: *gap}, sink)
	if err != nil {
		if httpSrv != nil {
			httpSrv.Close()
		}
		return err
	}
	if _, err := fmt.Fprintf(w, "serving on %s for %v, storing to %s\n",
		srv.Addr(), *runFor, *storePath); err != nil {
		srv.Shutdown()
		if httpSrv != nil {
			httpSrv.Close()
		}
		return err
	}

	time.Sleep(*runFor)
	srv.Shutdown()
	if httpSrv != nil {
		if err := httpSrv.Close(); err != nil {
			return err
		}
	}
	// Err before Flush: Flush also returns the sticky write error, which
	// would short-circuit the dropped-epoch diagnostic.
	if err := store.Err(); err != nil {
		return fmt.Errorf("store write failed (%d later epochs dropped): %w", store.Dropped(), err)
	}
	if err := store.Flush(); err != nil {
		return err
	}
	st := srv.Stats()
	_, err = fmt.Fprintf(w, "done: %d datagrams, %d records, %d epochs, %d lost, %d bad\n",
		st.Datagrams, st.Records, st.Epochs, st.Lost, st.BadData)
	return err
}

func runExport(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	algo := fs.String("algo", "HashFlow", "measurement algorithm")
	mem := fs.Int("mem", 1<<20, "memory budget in bytes")
	pcapPath := fs.String("pcap", "", "read packets from this pcap file")
	profile := fs.String("profile", "CAIDA", "generate this trace profile when no pcap is given")
	flows := fs.Int("flows", 10000, "flows to generate when no pcap is given")
	seed := fs.Uint64("seed", 1, "RNG seed")
	to := fs.String("to", "127.0.0.1:2055", "collector address")
	epochPkts := fs.Uint64("epochpkts", 0,
		"rotate and export an epoch every N packets via the double-buffered background drain (0 = one epoch at end)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	a, err := flowmon.ParseAlgorithm(*algo)
	if err != nil {
		return err
	}
	mcfg := flowmon.Config{MemoryBytes: *mem, Seed: *seed}
	rec, err := flowmon.New(a, mcfg)
	if err != nil {
		return err
	}

	conn, err := net.Dial("udp", *to)
	if err != nil {
		return err
	}
	defer conn.Close()
	exp := netflow.NewExporter(func(b []byte) error {
		_, err := conn.Write(b)
		return err
	})

	// Epoch-aligned mode: the adaptive manager swaps the full recorder for
	// the reset standby at each boundary, and the flush worker extracts
	// and exports the drained epoch off the packet path, reusing one
	// record buffer across epochs.
	var (
		update = rec.Update
		finish func() (epochs int, exported uint64, exportErr error)
	)
	if *epochPkts > 0 {
		standby, err := flowmon.New(a, mcfg)
		if err != nil {
			return err
		}
		ee := netflow.NewEpochExporter(nil, exp)
		var expErr error
		m, err := adaptive.NewDoubleBuffered(rec, standby, adaptive.Config{
			// Boundaries are packet-count driven here; park the
			// cardinality watermark out of the way.
			Capacity:        1,
			HighWatermark:   1,
			MaxEpochPackets: *epochPkts,
			CheckEvery:      1 << 62,
		}, ee.FlushFunc(700, func(err error) {
			if expErr == nil {
				expErr = err
			}
		}))
		if err != nil {
			return err
		}
		update = m.Update
		finish = func() (int, uint64, error) {
			if m.EpochPackets() > 0 {
				m.Flush() // export the partial final epoch
			}
			m.Close()
			return m.Epoch(), ee.Exported(), expErr
		}
	}

	var pkts int
	if *pcapPath != "" {
		f, err := os.Open(*pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r := pcapio.NewReader(f)
		for {
			p, _, err := r.ReadPacket()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return err
			}
			update(p)
			pkts++
		}
	} else {
		prof, err := trace.ProfileByName(*profile)
		if err != nil {
			return err
		}
		tr, err := trace.Generate(prof, *flows, *seed)
		if err != nil {
			return err
		}
		s := tr.Stream(*seed)
		for {
			p, ok := s.Next()
			if !ok {
				break
			}
			update(p)
			pkts++
		}
	}

	if finish != nil {
		epochs, exported, err := finish()
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(w, "processed %d packets, exported %d flow records in %d epochs to %s\n",
			pkts, exported, epochs, *to)
		return err
	}
	recs := rec.Records()
	if err := exp.Export(recs, 700); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "processed %d packets, exported %d flow records to %s\n",
		pkts, len(recs), *to)
	return err
}

func runCollect(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:2055", "UDP listen address")
	idle := fs.Duration("idle", 3*time.Second, "stop after this long without datagrams")
	top := fs.Int("top", 10, "print this many largest flows")
	if err := fs.Parse(args); err != nil {
		return err
	}

	addr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(w, "listening on %s\n", conn.LocalAddr()); err != nil {
		return err
	}

	col := netflow.NewCollector()
	buf := make([]byte, netflow.MaxDatagramLen)
	got := false
	for {
		if err := conn.SetReadDeadline(time.Now().Add(*idle)); err != nil {
			return err
		}
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if got {
					break // exporter went quiet; summarize
				}
				continue // keep waiting for the first datagram
			}
			return err
		}
		got = true
		if err := col.Ingest(buf[:n]); err != nil {
			fmt.Fprintf(w, "bad datagram: %v\n", err)
		}
	}

	recs := col.FlowRecords()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Count > recs[j].Count })
	fmt.Fprintf(w, "collected %d flow records (%d lost)\n", len(recs), col.Lost())
	for i, r := range recs {
		if i >= *top {
			break
		}
		fmt.Fprintf(w, "%3d. %-45s %d pkts\n", i+1, r.Key, r.Count)
	}
	return nil
}
