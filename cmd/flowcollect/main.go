// Command flowcollect runs the two halves of a flow-record collection
// pipeline.
//
// Export mode reads packets (from a pcap file or a generated trace), feeds
// them through a measurement algorithm, and exports the resulting flow
// records as NetFlow v5 over UDP:
//
//	flowcollect export -algo HashFlow -mem 1048576 -pcap trace.pcap -to 127.0.0.1:2055
//	flowcollect export -algo HashFlow -profile Campus -flows 20000 -to 127.0.0.1:2055
//
// Collect mode listens for NetFlow v5 datagrams and prints a summary after
// the exporter goes quiet:
//
//	flowcollect collect -listen 127.0.0.1:2055 -idle 3s
//
// Serve mode runs a persistent collector that writes each quiet-gap
// delimited epoch to a record store file (query it with flowquery). With
// -http it also serves the live query API: /topk straight from an online
// tracker fed per epoch, /epochs and /flows from the growing store file.
// With -detect each epoch additionally runs through the detection
// subsystem (heavy changers, slow-ramp forecasting, superspreaders,
// victim fan-in, anomaly baselines) — alerts
// are served on /alerts + /changes, printed to stdout with -alerts, and
// POSTed as JSON to a webhook with -webhook. The -http listener also
// carries the ops surface: /metrics (Prometheus text, or ?format=json),
// /healthz (structured status including the store-recovery and
// checkpoint-restore outcomes), and with -debug the /debug/pprof/
// profiling endpoints:
//
//	flowcollect serve -listen 127.0.0.1:2055 -store records.frec -for 1m
//	flowcollect serve -listen 127.0.0.1:2055 -store records.frec -http 127.0.0.1:8080
//	flowcollect serve -listen 127.0.0.1:2055 -store records.frec -detect -alerts \
//	    -webhook http://127.0.0.1:9000/hook
//
// With any of -hotepochs / -compactevery / -retain (or a directory store
// path), serve mode writes a tiered store instead of a flat file: the
// newest epochs stay in the mmap hot tier, a background compactor
// migrates older ones into delta-compressed cold segments, and -retain
// downsamples expired segments into exact top-k rollups. -seedhistory N
// (with -detect) replays the newest N stored epochs through the detector
// at boot so forecasting and anomaly baselines resume warm:
//
//	flowcollect serve -listen 127.0.0.1:2055 -store store.d -hotepochs 64 \
//	    -compactevery 64 -retain 720h -detect -seedhistory 256
//
// Export mode with -epochpkts rotates epochs while reading: a
// double-buffered adaptive manager swaps recorders at each epoch boundary
// and the background drain worker exports the completed epoch over UDP,
// so the packet path never extracts or sends. Adding -detect attaches
// the detection subsystem to the same drain (adaptive.AttachDetector):
// every completed epoch is scored for heavy changes, forecast breaks,
// superspreaders, fan-in victims and anomalies on the background worker,
// and alerts print to stdout:
//
//	flowcollect export -profile Campus -flows 20000 -epochpkts 100000 -to 127.0.0.1:2055
//	flowcollect export -profile Campus -flows 20000 -epochpkts 100000 -detect -to 127.0.0.1:2055
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/adaptive"
	"repro/collector"
	"repro/detect"
	"repro/flow"
	"repro/flowmon"
	"repro/netflow"
	"repro/pcapio"
	"repro/query"
	"repro/recordstore"
	"repro/telemetry"
	"repro/telemetry/events"
	"repro/topk"
	"repro/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowcollect:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return errors.New("usage: flowcollect <export|collect> [flags]")
	}
	switch args[0] {
	case "export":
		return runExport(args[1:], w)
	case "collect":
		return runCollect(args[1:], w)
	case "serve":
		return runServe(args[1:], w)
	default:
		return fmt.Errorf("unknown mode %q", args[0])
	}
}

// syncWriter serializes writes to the shared output: serve mode prints
// from both the main goroutine and the collector's epoch goroutine (the
// -alerts sink), and fmt emits each print as a single Write.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// storeHandle is the writer surface serve mode needs from either store
// shape: a flat append-only file (recordstore.FileWriter) or a tiered
// directory with compaction and retention (recordstore.Tiered).
type storeHandle interface {
	recordstore.EpochWriter
	Sync() error
	Close() error
	Fsyncs() uint64
	LastFsyncNs() int64
	SetMetrics(*recordstore.Metrics)
}

func runServe(args []string, w io.Writer) error {
	w = &syncWriter{w: w}
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:2055", "UDP listen address")
	readers := fs.Int("readers", 1, "reader goroutines; >1 needs -reuseport on a supporting platform")
	reuseport := fs.Bool("reuseport", false, "bind one SO_REUSEPORT socket per reader (kernel fans exporters out by 4-tuple)")
	storePath := fs.String("store", "records.frec", "record store output: a flat .frec file, or a tiered directory when any tiered flag is set or the path is a directory")
	hotEpochs := fs.Int("hotepochs", 64, "epochs kept in the mmap hot tier before compaction migrates them into compressed cold segments (tiered store)")
	compactEvery := fs.Int("compactevery", 0, "compact in the background once the hot tier exceeds -hotepochs by this many epochs; 0 compacts only at shutdown (tiered store)")
	retain := fs.Duration("retain", 0, "downsample cold segments entirely older than this (measured against the newest epoch) into exact top-k rollups; 0 keeps everything lossless (tiered store)")
	seedHist := fs.Int("seedhistory", 0, "warm detection baselines by replaying this many stored epochs at boot (with -detect; skipped when a checkpoint restored)")
	gap := fs.Duration("gap", time.Second, "quiet gap that closes an epoch")
	runFor := fs.Duration("for", 30*time.Second, "how long to serve before shutting down")
	httpAddr := fs.String("http", "", "also serve the live query API on this address")
	topkCap := fs.Int("topk", 4096, "live top-k tracker capacity (with -http)")
	det := fs.Bool("detect", false, "run detection (heavy change, forecast, superspreader, victim fan-in, anomaly) on every epoch")
	fanout := fs.Int("fanout", 128, "superspreader distinct-destination threshold (with -detect)")
	fanin := fs.Int("fanin", 128, "victim fan-in distinct-source threshold (with -detect)")
	minDelta := fs.Uint64("changedelta", 1024, "heavy-change per-flow delta threshold (with -detect)")
	forecast := fs.Float64("forecast", 1024, "forecast CUSUM drift threshold in packets (with -detect)")
	alerts := fs.Bool("alerts", false, "print alerts to stdout (with -detect)")
	webhook := fs.String("webhook", "", "POST each epoch's alerts as JSON to this URL (with -detect)")
	fsyncPol := fs.String("fsync", "off", "store durability policy: off, epoch, or a sync interval like 2s")
	ckptPath := fs.String("checkpoint", "", "detector checkpoint sidecar file (with -detect): restored at startup, saved every -ckptevery epochs and at shutdown")
	ckptEvery := fs.Int("ckptevery", 16, "checkpoint the detector every N evaluated epochs (with -checkpoint)")
	debug := fs.Bool("debug", false, "also serve net/http/pprof under /debug/pprof/ (with -http)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*alerts || *webhook != "" || *ckptPath != "" || *seedHist > 0) && !*det {
		return errors.New("-alerts/-webhook/-checkpoint/-seedhistory need -detect")
	}
	if *ckptEvery < 1 {
		return errors.New("-ckptevery must be positive")
	}
	pol, err := recordstore.ParseSyncPolicy(*fsyncPol)
	if err != nil {
		return err
	}
	// Tiered mode: any tiered flag opts in, and an existing directory at
	// the store path is unambiguous on its own.
	tiered := false
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "hotepochs", "compactevery", "retain":
			tiered = true
		}
	})
	if st, err := os.Stat(*storePath); err == nil && st.IsDir() {
		tiered = true
	}
	// Catch termination signals from the start: a SIGTERM during setup
	// still lands in the channel and shuts the serve loop down promptly.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	// The process-wide instrument registry behind /metrics, plus the
	// last-error snapshot /healthz reports. Both exist even without
	// -http: the instruments are cheap and the wiring stays uniform.
	reg := telemetry.NewRegistry()
	start := time.Now()
	var lastErr atomic.Pointer[string]
	setLastErr := func(err error) {
		msg := err.Error()
		lastErr.Store(&msg)
	}

	// The pipeline event layer: every operational log line, epoch span,
	// alert and degradation lands on one bus (served as SSE on /events),
	// and the tracer keeps the last epochs' stage timelines for
	// /trace/epochs. The logger mirrors each line onto the bus, so stdout,
	// the stream and the traces agree.
	bus := events.NewBus(events.DefaultRingCap)
	tracer := events.NewTracer(events.DefaultTraceKeep)
	logger := slog.New(events.NewLogHandler(w, bus, "live"))
	events.RegisterMetrics(reg, bus)

	// Reopen the store for append, truncating the torn frame a killed
	// predecessor may have left; a fresh path just creates the file (or
	// tiered directory). The tiered store compacts hot epochs into
	// compressed cold segments in the background and applies the -retain
	// rollup policy; compaction outcomes land on the event bus.
	var (
		sh    storeHandle
		tw    *recordstore.Tiered
		recov recordstore.Recovery
	)
	if tiered {
		tw, recov, err = recordstore.OpenTiered(*storePath, recordstore.TieredOptions{
			HotEpochs:    *hotEpochs,
			CompactEvery: *compactEvery,
			Retain:       *retain,
			Sync:         pol,
			OnCompact: func(cs recordstore.CompactStats, err error) {
				// Compaction goroutine; the logger and lastErr are safe.
				if err != nil {
					setLastErr(fmt.Errorf("compaction: %w", err))
					logger.Error("store: compaction failed", "kind", "degraded", "error", err.Error())
					return
				}
				if cs.Migrated == 0 && cs.RolledUp == 0 {
					return
				}
				logger.Info("store: compacted", "kind", "compaction",
					"migrated", cs.Migrated, "raw_bytes", cs.RawBytes,
					"segment_bytes", cs.SegmentBytes, "rolled_up", cs.RolledUp,
					"stall", time.Duration(cs.StallNs).String())
			},
		})
		sh = tw
	} else {
		var fw *recordstore.FileWriter
		fw, recov, err = recordstore.OpenFile(*storePath, pol)
		sh = fw
	}
	if err != nil {
		return err
	}
	defer sh.Close()
	// The recovery outcome feeds /healthz so tooling can assert it
	// without scraping the startup log line below.
	storeHealth := &telemetry.StoreHealth{
		Path: *storePath, State: "created",
		EpochsRecovered: recov.Epochs, TornBytes: recov.TornBytes,
	}
	if !recov.Created {
		storeHealth.State = "recovered"
	}
	if !recov.Created || recov.TornBytes > 0 {
		logger.Info("store: recovered "+*storePath, "kind", "recovery",
			"epochs_intact", recov.Epochs, "torn_bytes", recov.TornBytes)
	}
	sh.SetMetrics(recordstore.NewMetrics(reg))
	store := collector.NewEpochStore(sh)

	// Detection runs on the collector's epoch goroutine — the serve-mode
	// analogue of the export drain worker — with alerts fanned out to the
	// query ring, stdout, and the async webhook sink.
	var (
		detector   *detect.Detector
		hook       *webhookSink
		epochs     atomic.Uint64
		ckptHealth *telemetry.CheckpointHealth
	)
	if *det {
		detector, err = detect.NewDetector(detect.Config{
			FanoutThreshold:   *fanout,
			FanInThreshold:    *fanin,
			ChangeMinDelta:    uint32(*minDelta),
			ForecastThreshold: *forecast,
		})
		if err != nil {
			return err
		}
		detector.SetMetrics(detect.NewMetrics(reg))
		if *ckptPath != "" {
			ckptHealth = &telemetry.CheckpointHealth{Path: *ckptPath, State: "cold"}
			// Restore pre-crash evaluation state so a ramp in progress
			// across the restart still alerts; a missing sidecar is a
			// normal first boot, anything else starts cold and says so.
			switch err := detector.LoadCheckpoint(*ckptPath); {
			case err == nil:
				logger.Info("checkpoint: restored "+*ckptPath, "kind", "checkpoint",
					"epochs", detector.Epochs(), "forecast_keys", detector.ForecastTracked())
				ckptHealth.State = "restored"
				ckptHealth.Epochs = detector.Epochs()
				ckptHealth.ForecastKeys = detector.ForecastTracked()
				epochs.Store(detector.Epochs())
			case errors.Is(err, os.ErrNotExist):
			default:
				ckptHealth.Error = err.Error()
				logger.Warn(fmt.Sprintf("checkpoint: %s unusable; starting cold", *ckptPath),
					"kind", "checkpoint", "error", err.Error())
			}
		}
		// No checkpoint restored: approximate warm state by replaying
		// stored history through the detector (alerts suppressed — they
		// already fired when those epochs were live). The epoch counter
		// advances past the replayed prefix so live evaluation continues
		// where the history ends.
		if *seedHist > 0 && epochs.Load() == 0 && !recov.Created {
			if src, err := recordstore.Open(*storePath); err != nil {
				logger.Warn("detect: history seed unavailable", "kind", "seed", "error", err.Error())
			} else {
				n, err := detector.SeedFromHistory(src, *seedHist)
				src.Close()
				if err != nil {
					logger.Warn("detect: history seed failed", "kind", "seed",
						"epochs", n, "error", err.Error())
				} else if n > 0 {
					epochs.Store(detector.Epochs())
					logger.Info("detect: seeded baselines from history", "kind", "seed",
						"epochs", n, "forecast_keys", detector.ForecastTracked())
				}
			}
		}
		if *webhook != "" {
			hook = newWebhookSink(*webhook)
			hook.instrument(reg)
			hook.startLog(logger, 10*time.Second)
			defer hook.close(w)
		}
		printAlerts := *alerts
		detector.SetSink(func(as []detect.Alert) {
			// Runs on the collector's epoch goroutine inside Observe —
			// publishing here keeps alert events off the datagram path.
			for _, a := range as {
				bus.Publish(events.AlertEvent("live", a))
			}
			if printAlerts {
				for _, a := range as {
					fmt.Fprintln(w, a)
				}
			}
			if hook != nil {
				hook.deliver(as)
			}
		})
	}

	// The composed epoch sink: persist, then (with -http) feed the live
	// top-k tracker and flush so the per-request mmap sees the epoch
	// immediately, then (with -detect) evaluate detection — all on the
	// collector's epoch goroutine, never the datagram path. The epoch
	// counter versions the /netwide/topk cache.
	var (
		tracker *topk.Tracker
		httpSrv *http.Server
		httpLn  net.Listener
	)
	if *httpAddr != "" {
		if tracker, err = topk.NewTracker(*topkCap); err != nil {
			return err
		}
	}
	var storeDegraded bool // epoch goroutine only; degraded event fires once
	sink := func(ts time.Time, records []flow.Record) {
		ep := int(epochs.Load())
		sp := events.Begin("live", ep, ts, len(records))
		if tracker != nil {
			sp.Time("tracker", func() { tracker.AddRecords(records) })
		}
		preFsyncs := sh.Fsyncs()
		sp.Time("store_write", func() { store.Sink(ts, records) })
		if tracker != nil {
			// Sticky; surfaced via store.Err at exit and below as an event.
			sp.Time("store_flush", func() { _ = store.Flush() })
		}
		// fsync happens inside the write/flush stages when the durability
		// policy fires; report it as its own timeline entry too.
		if sh.Fsyncs() > preFsyncs {
			sp.StageNs("fsync", sh.LastFsyncNs())
		}
		if err := store.Err(); err != nil && !storeDegraded {
			storeDegraded = true
			setLastErr(fmt.Errorf("store write (%d later epochs dropped): %w", store.Dropped(), err))
			logger.Error("store: write failed, later epochs dropped",
				"kind", "degraded", "epoch", ep, "error", err.Error())
		}
		if detector != nil {
			var as []detect.Alert
			sp.Time("detect", func() { as = detector.Observe(ep, ts, records) })
			sp.AddAlerts(len(as))
			if *ckptPath != "" && detector.Epochs()%uint64(*ckptEvery) == 0 {
				sp.Time("checkpoint", func() {
					if err := detector.SaveCheckpoint(*ckptPath); err != nil {
						setLastErr(fmt.Errorf("checkpoint save: %w", err))
						logger.Error("checkpoint: save failed",
							"kind", "checkpoint", "epoch", ep, "error", err.Error())
					}
				})
			}
		}
		sp.End(bus, tracer)
		epochs.Add(1)
	}
	health := serveHealth(start, &epochs, store, &lastErr, setLastErr, storeHealth, ckptHealth)
	if *httpAddr != "" {
		cfg := query.Config{
			TopK:           tracker,
			Store:          query.FileStore(*storePath),
			Netwide:        []query.NamedSource{{Name: "live", Source: tracker}},
			NetwideVersion: epochs.Load,
			Events:         bus,
			Trace:          tracer,
			Registry:       reg,
		}
		if detector != nil {
			cfg.Alerts = detector
		}
		httpLn, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("/", query.NewHandler(cfg))
		telemetry.Ops{Registry: reg, Health: health, Debug: *debug}.Register(mux)
		httpSrv = &http.Server{
			Handler:           telemetry.InstrumentMux(reg, mux),
			ReadHeaderTimeout: 5 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       60 * time.Second,
		}
		go func() { _ = httpSrv.Serve(httpLn) }()
		logger.Info(fmt.Sprintf("query API on http://%s", httpLn.Addr()))
	}

	srv, err := collector.Start(collector.Config{
		Listen: *listen, EpochGap: *gap,
		Readers: *readers, ReusePort: *reuseport,
		Metrics: collector.NewMetrics(reg),
	}, sink)
	if err != nil {
		if httpSrv != nil {
			httpSrv.Close()
		}
		return err
	}
	srv.RegisterMetrics(reg)
	logger.Info(fmt.Sprintf("serving on %s", srv.Addr()), "for", (*runFor).String(),
		"readers", srv.Readers(), "sockets", srv.Sockets(),
		"reads", srv.BatchMode(), "store", *storePath)

	// Run until the deadline or a termination signal, then shut down in
	// dependency order: stop ingest and drain the in-flight epoch through
	// the sink (collector.Shutdown is synchronous), checkpoint the detector
	// with that final epoch included, make the store durable, and only then
	// stop answering queries.
	select {
	case <-time.After(*runFor):
	case sig := <-sigCh:
		logger.Info(fmt.Sprintf("received %v, shutting down", sig))
	}
	srv.Shutdown()
	if detector != nil && *ckptPath != "" {
		if err := detector.SaveCheckpoint(*ckptPath); err != nil {
			logger.Error("checkpoint: final save failed", "kind", "checkpoint", "error", err.Error())
		}
	}
	// Err before Flush: Flush also returns the sticky write error, which
	// would short-circuit the dropped-epoch diagnostic.
	if err := store.Err(); err != nil {
		return fmt.Errorf("store write failed (%d later epochs dropped): %w", store.Dropped(), err)
	}
	if tw != nil {
		// Final synchronous compaction pass: with -compactevery 0 this is
		// the only one, and either way the store lands compacted and
		// retention-trimmed before the process exits.
		if _, err := tw.Compact(); err != nil {
			return fmt.Errorf("final compaction: %w", err)
		}
	}
	if err := sh.Sync(); err != nil {
		return err
	}
	if httpSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		err := httpSrv.Shutdown(ctx)
		cancel()
		if err != nil {
			httpSrv.Close()
		}
	}
	st := srv.Stats()
	if _, err = fmt.Fprintf(w, "done: %d datagrams, %d records, %d epochs, %d lost, %d bad\n",
		st.Datagrams, st.Records, st.Epochs, st.Lost, st.BadData); err != nil {
		return err
	}
	if detector != nil {
		if _, err = fmt.Fprintf(w, "detection: %d epochs evaluated, %d alerts retained\n",
			detector.Epochs(), len(detector.AppendAlerts(nil))); err != nil {
			return err
		}
	}
	return nil
}

// serveHealth builds the /healthz snapshot closure: liveness plus the
// store/checkpoint recovery facts, degraded when any component reported
// an error. Factored out of runServe so the healthy→degraded transition
// is testable without a full serve run.
func serveHealth(start time.Time, epochs *atomic.Uint64, store *collector.EpochStore,
	lastErr *atomic.Pointer[string], setLastErr func(error),
	storeHealth *telemetry.StoreHealth, ckptHealth *telemetry.CheckpointHealth) func() telemetry.Health {
	return func() telemetry.Health {
		h := telemetry.Health{
			Status:        "ok",
			UptimeSeconds: telemetry.Uptime(start),
			Epochs:        epochs.Load(),
			Store:         storeHealth,
			Checkpoint:    ckptHealth,
		}
		if err := store.Err(); err != nil {
			setLastErr(fmt.Errorf("store write (%d later epochs dropped): %w", store.Dropped(), err))
		}
		if p := lastErr.Load(); p != nil {
			h.Status = "degraded"
			h.LastError = *p
		}
		return h
	}
}

// webhookAlert is the JSON shape of one alert delivered to the -webhook
// endpoint (the /alerts wire format rendered without the query layer).
type webhookAlert struct {
	Kind     string  `json:"kind"`
	Severity string  `json:"severity"`
	Epoch    int     `json:"epoch"`
	Time     string  `json:"time"`
	Flow     string  `json:"flow,omitempty"`
	Src      string  `json:"src,omitempty"`
	Dst      string  `json:"dst,omitempty"`
	Metric   string  `json:"metric,omitempty"`
	Value    float64 `json:"value"`
	Baseline float64 `json:"baseline"`
	Score    float64 `json:"score"`
}

// webhookSink POSTs alert batches to a URL from a single background
// goroutine. The epoch sink only marshals and enqueues; a slow or dead
// endpoint backpressures into dropped deliveries (counted, reported at
// shutdown), never into the epoch path. Each dequeued payload gets a
// bounded retry budget with exponential backoff and jitter — transport
// errors and non-2xx responses alike — so a receiver that hiccups for a
// few seconds loses nothing, while a dead one costs a bounded delay per
// payload and a counted failure, never an unbounded stall.
type webhookSink struct {
	url     string
	client  *http.Client
	ch      chan []byte
	wg      sync.WaitGroup
	queued  atomic.Uint64
	dropped atomic.Uint64
	failed  atomic.Uint64
	retries atomic.Uint64

	// Retry policy; fixed after construction (tests shrink the backoff).
	maxAttempts int
	backoffBase time.Duration
	backoffCap  time.Duration
	rng         *rand.Rand // delivery goroutine only

	// Optional observability, attached before delivery begins:
	// deliveryNs times successful deliveries (retries included) and
	// logStop ends the periodic status logger. notify wakes the status
	// logger early so the first drop or failure after a healthy streak
	// logs immediately instead of waiting out the tick.
	deliveryNs *telemetry.Histogram
	logStop    chan struct{}
	notify     chan struct{}
}

func newWebhookSink(url string) *webhookSink {
	return newWebhookSinkWithRetry(url, 4, 100*time.Millisecond, 2*time.Second)
}

func newWebhookSinkWithRetry(url string, maxAttempts int, base, cap time.Duration) *webhookSink {
	s := &webhookSink{
		url:         url,
		client:      &http.Client{Timeout: 5 * time.Second},
		ch:          make(chan []byte, 16),
		maxAttempts: maxAttempts,
		backoffBase: base,
		backoffCap:  cap,
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
		notify:      make(chan struct{}, 1),
	}
	s.wg.Add(1)
	go s.run()
	return s
}

// deliver marshals one epoch's alerts and enqueues the payload.
func (s *webhookSink) deliver(alerts []detect.Alert) {
	out := make([]webhookAlert, len(alerts))
	for i, a := range alerts {
		out[i] = webhookAlert{
			Kind:     a.Kind.String(),
			Severity: a.Severity.String(),
			Epoch:    a.Epoch,
			Time:     a.Time.UTC().Format(time.RFC3339Nano),
			Metric:   a.Metric,
			Value:    a.Value,
			Baseline: a.Baseline,
			Score:    a.Score,
		}
		switch a.Kind {
		case detect.KindHeavyChange, detect.KindForecast, detect.KindNetwide:
			out[i].Flow = a.Key.String()
		case detect.KindSuperspreader:
			out[i].Src = flow.IPString(a.Key.SrcIP)
		case detect.KindVictimFanIn:
			out[i].Dst = flow.IPString(a.Key.DstIP)
		}
	}
	b, err := json.Marshal(out)
	if err != nil {
		s.failed.Add(1)
		return
	}
	select {
	case s.ch <- b:
		s.queued.Add(1)
	default:
		s.dropped.Add(1)
		s.nudge()
	}
}

// nudge wakes the status logger without blocking the caller; a pending
// wake-up is enough, extra ones coalesce.
func (s *webhookSink) nudge() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// instrument exposes the sink's live accounting — the counters that
// used to surface only in the Close line — as scrape-time samples,
// plus an event-time delivery-latency histogram.
func (s *webhookSink) instrument(reg *telemetry.Registry) {
	s.deliveryNs = reg.Histogram("webhook_delivery_ns",
		"successful webhook delivery latency, retries included, ns")
	reg.RegisterSampler(func(e *telemetry.Expo) {
		e.Counter("webhook_queued_total", "alert payloads enqueued for delivery", s.queued.Load())
		e.Counter("webhook_dropped_total", "payloads dropped on a full delivery queue", s.dropped.Load())
		e.Counter("webhook_failed_total", "payloads that exhausted the retry budget", s.failed.Load())
		e.Counter("webhook_retries_total", "delivery retries", s.retries.Load())
		e.Gauge("webhook_queue_len", "payloads waiting for delivery", float64(len(s.ch)))
	})
}

// startLog emits a structured status line whenever the delivery
// accounting moved since the last report, so drops and retries are
// visible while they happen instead of at shutdown. Besides the periodic
// tick, a nudge from the delivery path wakes it immediately on the first
// drop or failure after a healthy streak.
func (s *webhookSink) startLog(log *slog.Logger, every time.Duration) {
	s.logStop = make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		var last [4]uint64
		for {
			select {
			case <-s.logStop:
				return
			case <-t.C:
			case <-s.notify:
			}
			cur := [4]uint64{s.queued.Load(), s.dropped.Load(), s.failed.Load(), s.retries.Load()}
			if cur == last {
				continue
			}
			attrs := []any{
				"queued", cur[0], "dropped", cur[1], "failed", cur[2],
				"retries", cur[3], "queue_len", len(s.ch),
			}
			if cur[1] != last[1] || cur[2] != last[2] {
				log.Warn("webhook: deliveries degraded", append(attrs, "kind", "degraded")...)
			} else {
				log.Info("webhook: status", attrs...)
			}
			last = cur
		}
	}()
}

func (s *webhookSink) run() {
	defer s.wg.Done()
	for b := range s.ch {
		if !s.post(b) {
			s.failed.Add(1)
			s.nudge()
		}
	}
}

// post attempts one payload's delivery under the retry budget, reporting
// whether it eventually landed. A non-2xx status is a failed attempt like
// any transport error: the receiver did not take custody of the alerts.
func (s *webhookSink) post(b []byte) bool {
	backoff := s.backoffBase
	var start time.Time
	if s.deliveryNs != nil {
		start = time.Now()
	}
	for attempt := 1; ; attempt++ {
		resp, err := s.client.Post(s.url, "application/json", bytes.NewReader(b))
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode < 300 {
				if s.deliveryNs != nil {
					s.deliveryNs.ObserveDuration(time.Since(start))
				}
				return true
			}
		}
		if attempt >= s.maxAttempts {
			return false
		}
		s.retries.Add(1)
		// Full backoff with jitter in [backoff/2, backoff): enough spread
		// that restarting receivers are not hit in lockstep.
		sleep := backoff/2 + time.Duration(s.rng.Int63n(int64(backoff/2)+1))
		time.Sleep(sleep)
		if backoff *= 2; backoff > s.backoffCap {
			backoff = s.backoffCap
		}
	}
}

// close drains the queue, stops the delivery goroutine and reports drops.
func (s *webhookSink) close(w io.Writer) {
	close(s.ch)
	if s.logStop != nil {
		close(s.logStop)
	}
	s.wg.Wait()
	if d, f, r := s.dropped.Load(), s.failed.Load(), s.retries.Load(); d+f+r > 0 {
		fmt.Fprintf(w, "webhook: %d deliveries dropped, %d failed, %d retries\n", d, f, r)
	}
}

func runExport(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	algo := fs.String("algo", "HashFlow", "measurement algorithm")
	mem := fs.Int("mem", 1<<20, "memory budget in bytes")
	pcapPath := fs.String("pcap", "", "read packets from this pcap file")
	profile := fs.String("profile", "CAIDA", "generate this trace profile when no pcap is given")
	flows := fs.Int("flows", 10000, "flows to generate when no pcap is given")
	seed := fs.Uint64("seed", 1, "RNG seed")
	to := fs.String("to", "127.0.0.1:2055", "collector address")
	epochPkts := fs.Uint64("epochpkts", 0,
		"rotate and export an epoch every N packets via the double-buffered background drain (0 = one epoch at end)")
	det := fs.Bool("detect", false,
		"run detection on each drained epoch (with -epochpkts); alerts print to stdout")
	traceN := fs.Int("trace", 0,
		"keep the last N epoch stage timelines and print them after the run (with -epochpkts)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *det && *epochPkts == 0 {
		return errors.New("-detect needs epoch rotation: pass -epochpkts too")
	}
	if *traceN > 0 && *epochPkts == 0 {
		return errors.New("-trace needs epoch rotation: pass -epochpkts too")
	}

	a, err := flowmon.ParseAlgorithm(*algo)
	if err != nil {
		return err
	}
	mcfg := flowmon.Config{MemoryBytes: *mem, Seed: *seed}
	rec, err := flowmon.New(a, mcfg)
	if err != nil {
		return err
	}

	conn, err := net.Dial("udp", *to)
	if err != nil {
		return err
	}
	defer conn.Close()
	exp := netflow.NewExporter(func(b []byte) error {
		_, err := conn.Write(b)
		return err
	})

	// Epoch-aligned mode: the adaptive manager swaps the full recorder for
	// the reset standby at each boundary, and the flush worker extracts
	// and exports the drained epoch off the packet path, reusing one
	// record buffer across epochs.
	var (
		update = rec.Update
		finish func() (epochs int, exported uint64, exportErr error)
		am     *adaptive.Metrics
		tr     *events.Tracer
	)
	if *epochPkts > 0 {
		standby, err := flowmon.New(a, mcfg)
		if err != nil {
			return err
		}
		ee := netflow.NewEpochExporter(nil, exp)
		var expErr error
		m, err := adaptive.NewDoubleBuffered(rec, standby, adaptive.Config{
			// Boundaries are packet-count driven here; park the
			// cardinality watermark out of the way.
			Capacity:        1,
			HighWatermark:   1,
			MaxEpochPackets: *epochPkts,
			CheckEvery:      1 << 62,
		}, ee.FlushFunc(700, func(err error) {
			if expErr == nil {
				expErr = err
			}
		}))
		if err != nil {
			return err
		}
		// A panicking drain stage is sticky and otherwise only surfaces
		// at Close; say so the moment it happens.
		m.SetDrainErrorHook(func(err error) {
			fmt.Fprintf(w, "warning: drain worker failed, epochs no longer exported: %v\n", err)
		})
		// Epoch-lifecycle instruments: export mode has no scrape
		// endpoint, so the instruments feed a drain-timing summary
		// printed with the final accounting instead.
		am = adaptive.NewMetrics(telemetry.NewRegistry())
		m.SetMetrics(am)
		if *traceN > 0 {
			// Per-epoch stage timelines from the drain worker's span hook,
			// printed after the summary (the hook never runs on the packet
			// path).
			tr = events.NewTracer(*traceN)
			m.SetSpanHook(func(ss adaptive.StageSpan) {
				sp := events.Begin("", ss.Epoch, time.Time{}, ss.Records)
				sp.StageNs("extract", ss.ExtractNs)
				sp.StageNs("flush", ss.FlushNs)
				if ss.DetectNs > 0 {
					sp.StageNs("detect", ss.DetectNs)
				}
				sp.StageNs("reset", ss.ResetNs)
				sp.End(nil, tr)
			})
		}
		var detector *detect.Detector
		if *det {
			// Detection rides the same drain worker as the export: the
			// packet path still only ever swaps recorders.
			detector, err = detect.NewDetector(detect.Config{})
			if err != nil {
				return err
			}
			detector.SetSink(func(as []detect.Alert) {
				for _, a := range as {
					fmt.Fprintln(w, a)
				}
			})
			if err := m.AttachDetector(detector); err != nil {
				return err
			}
		}
		update = m.Update
		finish = func() (int, uint64, error) {
			if m.EpochPackets() > 0 {
				m.Flush() // export the partial final epoch
			}
			m.Close()
			if err := m.DrainErr(); err != nil && expErr == nil {
				expErr = err
			}
			return m.Epoch(), ee.Exported(), expErr
		}
	}

	var pkts int
	if *pcapPath != "" {
		f, err := os.Open(*pcapPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r := pcapio.NewReader(f)
		for {
			p, _, err := r.ReadPacket()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return err
			}
			update(p)
			pkts++
		}
	} else {
		prof, err := trace.ProfileByName(*profile)
		if err != nil {
			return err
		}
		tr, err := trace.Generate(prof, *flows, *seed)
		if err != nil {
			return err
		}
		s := tr.Stream(*seed)
		for {
			p, ok := s.Next()
			if !ok {
				break
			}
			update(p)
			pkts++
		}
	}

	if finish != nil {
		epochs, exported, err := finish()
		if err != nil {
			return err
		}
		if _, err = fmt.Fprintf(w, "processed %d packets, exported %d flow records in %d epochs to %s\n",
			pkts, exported, epochs, *to); err != nil {
			return err
		}
		if err := writeDrainSummary(w, am); err != nil {
			return err
		}
		return writeEpochTraces(w, tr)
	}
	recs := rec.Records()
	if err := exp.Export(recs, 700); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "processed %d packets, exported %d flow records to %s\n",
		pkts, len(recs), *to)
	return err
}

// writeDrainSummary prints the epoch-lifecycle timing the adaptive
// instruments collected over an epoch-aligned export run: where drain
// time went per stage, how long rotation stalled ingest, and whether
// any drain stage panicked.
func writeDrainSummary(w io.Writer, am *adaptive.Metrics) error {
	if am == nil {
		return nil
	}
	line := func(name string, h *telemetry.Histogram) error {
		s := h.Snapshot()
		if s.Count == 0 {
			return nil
		}
		_, err := fmt.Fprintf(w, "drain %s: p50 %v p95 %v max %v over %d epochs\n",
			name, time.Duration(s.Quantile(0.5)), time.Duration(s.Quantile(0.95)),
			time.Duration(s.Max()), s.Count)
		return err
	}
	for _, st := range []struct {
		name string
		h    *telemetry.Histogram
	}{
		{"extract", am.ExtractNs},
		{"flush", am.FlushCbNs},
		{"reset", am.ResetNs},
		{"rotation-stall", am.RotationStallNs},
	} {
		if err := line(st.name, st.h); err != nil {
			return err
		}
	}
	if n := am.DrainPanics.Value(); n != 0 {
		if _, err := fmt.Fprintf(w, "drain panics: %d\n", n); err != nil {
			return err
		}
	}
	return nil
}

// writeEpochTraces prints the retained per-epoch stage timelines from an
// export run with -trace, oldest first.
func writeEpochTraces(w io.Writer, tr *events.Tracer) error {
	if tr == nil {
		return nil
	}
	for _, et := range tr.Append(nil) {
		if _, err := fmt.Fprintf(w, "trace epoch %d: %d records", et.Epoch, et.Records); err != nil {
			return err
		}
		for _, st := range et.Stages {
			if _, err := fmt.Fprintf(w, " %s=%v", st.Name, time.Duration(st.Ns)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

func runCollect(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("collect", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:2055", "UDP listen address")
	idle := fs.Duration("idle", 3*time.Second, "stop after this long without datagrams")
	top := fs.Int("top", 10, "print this many largest flows")
	if err := fs.Parse(args); err != nil {
		return err
	}

	addr, err := net.ResolveUDPAddr("udp", *listen)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(w, "listening on %s\n", conn.LocalAddr()); err != nil {
		return err
	}

	col := netflow.NewCollector()
	buf := make([]byte, netflow.MaxDatagramLen)
	got := false
	for {
		if err := conn.SetReadDeadline(time.Now().Add(*idle)); err != nil {
			return err
		}
		n, _, err := conn.ReadFromUDP(buf)
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				if got {
					break // exporter went quiet; summarize
				}
				continue // keep waiting for the first datagram
			}
			return err
		}
		got = true
		if err := col.Ingest(buf[:n]); err != nil {
			fmt.Fprintf(w, "bad datagram: %v\n", err)
		}
	}

	recs := col.FlowRecords()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Count > recs[j].Count })
	fmt.Fprintf(w, "collected %d flow records (%d lost)\n", len(recs), col.Lost())
	for i, r := range recs {
		if i >= *top {
			break
		}
		fmt.Fprintf(w, "%3d. %-45s %d pkts\n", i+1, r.Key, r.Count)
	}
	return nil
}
