// Command flowsoak is the kill/restart chaos harness for the collection
// pipeline: it builds the real flowcollect and flowqueryd binaries, runs
// them under sustained epoch-shaped NetFlow load, SIGKILLs the collectors
// mid-epoch, restarts them on their own store files, and asserts the
// crash-safety contract end to end:
//
//   - the restarted collector recovers its store (torn tail truncated, no
//     decode error, epoch count off by at most one),
//   - the detector restored from its checkpoint re-alerts on a slow ramp
//     that was in progress across the crash within a bounded number of
//     epochs, while an identical collector restarted WITHOUT a checkpoint
//     stays blind to it — the controlled experiment that proves the
//     checkpoint carries detection state, not just bytes,
//   - a webhook receiver that 500s and stalls loses no alert deliveries
//     (the sink retries under backoff),
//   - flowqueryd answers /flows over the recovered store, and (full mode)
//     survives its own kill/restart and keeps its cross-vantage
//     correlator unwedged when one vantage goes dead,
//   - final loss accounting is sane: no phantom losses from the restarts.
//
// The ramp parameters mirror the pinned scenario in
// detect/checkpoint_test.go (TestCheckpointRampRestore); change them
// there first.
//
//	flowsoak -quick   # one kill/restart cycle, ~30s: the CI smoke mode
//	flowsoak          # adds a queryd kill/restart and dead-vantage checks
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/flow"
	"repro/internal/faults"
	"repro/netflow"
	"repro/query"
	"repro/telemetry"
	"repro/telemetry/events"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowsoak:", err)
		os.Exit(1)
	}
}

// Ramp scenario, pinned by detect/checkpoint_test.go: stable warmup at
// rampBase, then +rampStep per epoch against a CUSUM threshold of
// rampThreshold. Killed after rampKillAfter ramp epochs, a restored
// detector re-alerts within rampBudget epochs; a cold one does not.
const (
	rampBase      = 2000
	rampStep      = 300
	rampThreshold = 2200
	rampWarmup    = 10
	rampKillAfter = 4
	rampBudget    = 5
)

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flowsoak", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "one kill/restart cycle (~30s): the CI smoke mode")
	keep := fs.Bool("keep", false, "keep the scratch directory for post-mortem")
	epoch := fs.Duration("epoch", 500*time.Millisecond, "injected epoch period")
	gap := fs.Duration("gap", 250*time.Millisecond, "collector quiet gap (must be under -epoch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gap >= *epoch {
		return errors.New("-gap must be shorter than -epoch")
	}

	dir, err := os.MkdirTemp("", "flowsoak-*")
	if err != nil {
		return err
	}
	if *keep {
		fmt.Fprintf(w, "scratch dir: %s (kept)\n", dir)
	} else {
		defer os.RemoveAll(dir)
	}

	s := &soak{
		w:     w,
		log:   slog.New(events.NewLogHandler(w, nil, "")),
		dir:   dir,
		quick: *quick,
		epoch: *epoch,
		gap:   *gap,
	}
	defer s.reap()
	return s.run()
}

// soak carries the harness state through the phases.
type soak struct {
	w     io.Writer
	log   *slog.Logger
	dir   string
	quick bool
	epoch time.Duration
	gap   time.Duration

	collectBin string
	querydBin  string

	hook   *faults.FlakyHandler
	hookLn net.Listener

	subject *member // checkpointed collector
	control *member // identical, but restarts cold

	procs []*proc // everything spawned, for reaping
}

// member is one collector under test: its network identity, files, load
// feed, and current process.
type member struct {
	name      string
	udpAddr   string
	httpAddr  string
	storePath string
	ckptPath  string // empty for the control
	feed      *vantage
	proc      *proc
}

func (s *soak) logf(format string, a ...any) {
	s.log.Info(fmt.Sprintf(format, a...))
}

func (s *soak) run() error {
	if err := s.build(); err != nil {
		return err
	}
	if err := s.startWebhook(); err != nil {
		return err
	}
	defer s.hookLn.Close()

	// Phase 1: both collectors up, duplicated stable load.
	sub, err := s.startMember("subject", true)
	if err != nil {
		return err
	}
	s.subject = sub
	ctl, err := s.startMember("control", false)
	if err != nil {
		return err
	}
	s.control = ctl

	// A live /events client rides the subject through its kill/restart:
	// the stream must deliver epoch events before the crash, reconnect on
	// its own with Last-Event-ID, and carry the post-restart re-alert.
	watch := watchEvents(s.subject.httpAddr)
	defer watch.stop()

	s.logf("phase: warmup (%d stable epochs at %d pkts)", rampWarmup, rampBase)
	for e := 0; e < rampWarmup; e++ {
		if err := s.sendEpoch(0); err != nil {
			return err
		}
	}
	s.logf("phase: ramp (+%d pkts/epoch for %d epochs)", rampStep, rampKillAfter)
	for r := 1; r <= rampKillAfter; r++ {
		if err := s.sendEpoch(r); err != nil {
			return err
		}
	}
	// Let the final ramp epoch's quiet gap close and its checkpoint land.
	time.Sleep(s.gap + 300*time.Millisecond)

	preKill, err := s.epochCount(s.subject)
	if err != nil {
		return fmt.Errorf("pre-kill epoch count: %w", err)
	}
	if preKill == 0 {
		return errors.New("no epochs stored before the kill: load never landed")
	}
	if n, err := s.forecastAlerts(s.subject); err != nil {
		return err
	} else if n != 0 {
		return fmt.Errorf("subject alerted before the kill (%d forecast alerts): ramp fired early, scenario invalid", n)
	}
	// The live telemetry must already show the load that landed.
	if v, err := s.metricValue(s.subject, "collector_datagrams_total"); err != nil {
		return fmt.Errorf("pre-kill /metrics scrape: %w", err)
	} else if v == 0 {
		return errors.New("pre-kill /metrics reports zero datagrams while the store holds epochs")
	}
	if _, sseEpochs, _, _ := watch.stats(); sseEpochs == 0 {
		return errors.New("SSE client saw no epoch events before the kill")
	}

	// Phase 2: SIGKILL both mid-epoch — a fresh batch lands and the kill
	// fires well inside the quiet gap, so the epoch is still open (and
	// therefore lost) when the process dies.
	s.logf("phase: SIGKILL both collectors mid-epoch (store holds %d epochs)", preKill)
	for _, m := range []*member{s.subject, s.control} {
		if err := m.feed.sendEpoch(rampRecords(rampKillAfter + 1)); err != nil {
			return fmt.Errorf("kill-epoch feed %s: %w", m.name, err)
		}
	}
	time.Sleep(s.gap / 4)
	for _, m := range []*member{s.subject, s.control} {
		if err := m.proc.kill9(); err != nil {
			return fmt.Errorf("kill %s: %w", m.name, err)
		}
	}

	// Phase 3: restart on the same stores; the recovery + checkpoint
	// restore lines are the collector's own report of what it found.
	s.logf("phase: restart both collectors on their own stores")
	for _, m := range []*member{s.subject, s.control} {
		if err := s.respawn(m); err != nil {
			return err
		}
		line, err := m.proc.waitFor("store: recovered", 5*time.Second)
		if err != nil {
			return fmt.Errorf("%s printed no recovery line: %w", m.name, err)
		}
		// The structured line carries the count as epochs_intact=N; an
		// unparseable line only skips the count check.
		recovered := -1
		for _, f := range strings.Fields(line) {
			if v, ok := strings.CutPrefix(f, "epochs_intact="); ok {
				if n, err := strconv.Atoi(v); err == nil {
					recovered = n
				}
			}
		}
		if recovered >= 0 && recovered < preKill-1 {
			return fmt.Errorf("%s recovered %d epochs, had %d before the kill (allowed to lose at most 1)",
				m.name, recovered, preKill)
		}
	}
	if _, err := s.subject.proc.waitFor("checkpoint: restored", 5*time.Second); err != nil {
		return fmt.Errorf("subject did not restore its checkpoint: %w", err)
	}
	postKill, err := s.epochCount(s.subject)
	if err != nil {
		return fmt.Errorf("post-restart epoch count (recovered store does not serve): %w", err)
	}
	if postKill < preKill-1 {
		return fmt.Errorf("recovered store serves %d epochs, had %d pre-kill", postKill, preKill)
	}
	// The restarted daemons' own /healthz must report the same recovery
	// the log lines above announced — the structured surface a monitor
	// would watch instead of scraping stdout.
	for _, m := range []*member{s.subject, s.control} {
		h, err := s.healthz(m)
		if err != nil {
			return fmt.Errorf("%s /healthz: %w", m.name, err)
		}
		if h.Store == nil || h.Store.State != "recovered" {
			return fmt.Errorf("%s /healthz store = %+v, want state recovered", m.name, h.Store)
		}
		if h.Store.EpochsRecovered < preKill-1 {
			return fmt.Errorf("%s /healthz reports %d epochs recovered, had %d pre-kill",
				m.name, h.Store.EpochsRecovered, preKill)
		}
		if m == s.subject {
			if h.Checkpoint == nil || h.Checkpoint.State != "restored" {
				return fmt.Errorf("subject /healthz checkpoint = %+v, want state restored", h.Checkpoint)
			}
		} else if h.Checkpoint != nil {
			return fmt.Errorf("uncheckpointed control /healthz reports a checkpoint: %+v", h.Checkpoint)
		}
	}
	s.logf("recovery ok: %d epochs pre-kill, %d served after restart (healthz agrees)", preKill, postKill)

	// Phase 4: flap the webhook receiver — the first two deliveries after
	// restart get stalled 500s; the sink must retry them through.
	s.hook.FailNext(2, http.StatusInternalServerError)
	s.hook.StallNext(100 * time.Millisecond)

	// Phase 5: the ramp continues where it left off. Within the budget the
	// restored subject must re-alert; the cold control must not.
	s.logf("phase: resume ramp for %d epochs (the re-alert budget)", rampBudget)
	for i := 1; i <= rampBudget; i++ {
		if err := s.sendEpoch(rampKillAfter + i); err != nil {
			return err
		}
	}
	time.Sleep(s.gap + 500*time.Millisecond) // close the last epoch, drain detection

	subAlerts, err := s.forecastAlerts(s.subject)
	if err != nil {
		return err
	}
	ctlAlerts, err := s.forecastAlerts(s.control)
	if err != nil {
		return err
	}
	if subAlerts == 0 {
		return fmt.Errorf("restored subject raised no forecast alert within %d epochs: checkpoint did not carry detection state", rampBudget)
	}
	if ctlAlerts != 0 {
		return fmt.Errorf("cold control raised %d forecast alerts within %d epochs: scenario no longer isolates checkpoint value", ctlAlerts, rampBudget)
	}
	s.logf("detection continuity ok: subject re-alerted, control blind (as designed)")

	// The event stream must have survived the crash: reconnected by
	// itself, kept sequence continuity within each connection, and carried
	// the re-alert to a client that subscribed before the kill.
	watch.stop()
	sseConns, sseEpochs, sseAlerts, seqErr := watch.stats()
	if seqErr != nil {
		return fmt.Errorf("SSE sequence continuity: %w", seqErr)
	}
	if sseConns < 2 {
		return fmt.Errorf("SSE client held %d connection(s); never reconnected across the kill", sseConns)
	}
	if sseAlerts == 0 {
		return errors.New("restored subject's re-alert never reached the SSE stream")
	}
	s.logf("sse ok: %d connections, %d epoch events, %d alert events, resume clean", sseConns, sseEpochs, sseAlerts)

	// Phase 6: flowqueryd over the recovered (still-growing) store.
	if err := s.checkQueryd(); err != nil {
		return err
	}

	// Phase 6b: a tiered-store collector killed while its background
	// compactor is active must lose no closed epoch.
	if err := s.tieredKillCheck(); err != nil {
		return err
	}

	if !s.quick {
		if err := s.fullModeChecks(); err != nil {
			return err
		}
	}

	// Phase 7: graceful shutdown; the final summaries carry the loss
	// accounting the restarts must not have corrupted.
	s.logf("phase: graceful shutdown")
	for _, m := range []*member{s.subject, s.control} {
		// Scrape the final counters while the daemon is still up; the
		// done line it prints at shutdown must agree with them (no
		// traffic lands between scrape and SIGTERM, so only the
		// shutdown flush itself may add one last epoch).
		mDatagrams, err := s.metricValue(m, "collector_datagrams_total")
		if err != nil {
			return fmt.Errorf("%s final /metrics scrape: %w", m.name, err)
		}
		mLost, err := s.metricValue(m, "collector_lost_total")
		if err != nil {
			return fmt.Errorf("%s final /metrics scrape: %w", m.name, err)
		}
		mEpochs, err := s.metricValue(m, "collector_epochs_total")
		if err != nil {
			return fmt.Errorf("%s final /metrics scrape: %w", m.name, err)
		}
		if err := m.proc.sigterm(10 * time.Second); err != nil {
			return fmt.Errorf("%s: %w", m.name, err)
		}
		stats, err := parseDone(m.proc.output())
		if err != nil {
			return fmt.Errorf("%s final summary: %w", m.name, err)
		}
		if int64(mDatagrams) != stats.datagrams {
			return fmt.Errorf("%s /metrics counted %d datagrams, done line says %d",
				m.name, int64(mDatagrams), stats.datagrams)
		}
		if int64(mLost) != stats.lost {
			return fmt.Errorf("%s /metrics counted %d lost, done line says %d",
				m.name, int64(mLost), stats.lost)
		}
		if e := int64(mEpochs); e != stats.epochs && e+1 != stats.epochs {
			return fmt.Errorf("%s /metrics counted %d epochs, done line says %d",
				m.name, e, stats.epochs)
		}
		if stats.bad != 0 {
			return fmt.Errorf("%s counted %d bad datagrams on a clean loopback", m.name, stats.bad)
		}
		if stats.lost > stats.records {
			return fmt.Errorf("%s loss accounting insane: %d lost > %d records", m.name, stats.lost, stats.records)
		}
		if stats.datagrams == 0 || stats.epochs == 0 {
			return fmt.Errorf("%s summary empty after the soak: %+v", m.name, stats)
		}
		s.logf("%s accounting: %d datagrams, %d records, %d epochs, %d lost", m.name, stats.datagrams, stats.records, stats.epochs, stats.lost)
	}

	// The flapped webhook must have both injected failures and eventual
	// successes: retried through, nothing abandoned.
	if s.hook.Failed() == 0 {
		return errors.New("webhook fault injection never triggered: no alert delivery hit the flapping window")
	}
	if s.hook.Served() == 0 {
		return errors.New("no webhook delivery ever landed: the retrying sink lost everything")
	}
	s.logf("webhook ok: %d injected failures, %d deliveries landed", s.hook.Failed(), s.hook.Served())

	s.logf("soak PASSED")
	return nil
}

// build compiles the binaries under test into the scratch dir.
func (s *soak) build() error {
	s.logf("phase: build flowcollect + flowqueryd")
	s.collectBin = filepath.Join(s.dir, "flowcollect")
	s.querydBin = filepath.Join(s.dir, "flowqueryd")
	for bin, pkg := range map[string]string{
		s.collectBin: "repro/cmd/flowcollect",
		s.querydBin:  "repro/cmd/flowqueryd",
	} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			return fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return nil
}

// startWebhook serves the fault-injectable alert receiver.
func (s *soak) startWebhook() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s.hook = &faults.FlakyHandler{}
	s.hookLn = ln
	srv := &http.Server{Handler: s.hook, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return nil
}

func (s *soak) hookURL() string {
	return "http://" + s.hookLn.Addr().String() + "/alerts"
}

// collectArgs is the serve command line of one member; identical between
// subject and control except for the checkpoint sidecar.
func (s *soak) collectArgs(m *member) []string {
	args := []string{"serve",
		"-listen", m.udpAddr,
		"-http", m.httpAddr,
		"-store", m.storePath,
		"-fsync", "epoch",
		"-gap", s.gap.String(),
		"-for", "1h",
		"-detect",
		// Only the forecast stage may alert in this scenario: the ramp
		// must be invisible to the epoch-over-epoch delta pass.
		"-forecast", fmt.Sprint(rampThreshold),
		"-changedelta", "1000000000",
		"-webhook", s.hookURL(),
	}
	if m.ckptPath != "" {
		args = append(args, "-checkpoint", m.ckptPath, "-ckptevery", "1")
	}
	return args
}

// startMember provisions and starts one collector.
func (s *soak) startMember(name string, checkpointed bool) (*member, error) {
	udpAddr, err := probeUDP()
	if err != nil {
		return nil, err
	}
	httpAddr, err := probeTCP()
	if err != nil {
		return nil, err
	}
	m := &member{
		name:      name,
		udpAddr:   udpAddr,
		httpAddr:  httpAddr,
		storePath: filepath.Join(s.dir, name+".frec"),
	}
	if checkpointed {
		m.ckptPath = filepath.Join(s.dir, name+".ckpt")
	}
	if err := s.respawn(m); err != nil {
		return nil, err
	}
	if m.feed, err = dialVantage(udpAddr); err != nil {
		return nil, err
	}
	return m, nil
}

// respawn (re)starts a member's collector process and waits for it to
// come up.
func (s *soak) respawn(m *member) error {
	p, err := startProc(m.name, s.collectBin, s.collectArgs(m)...)
	if err != nil {
		return err
	}
	m.proc = p
	s.procs = append(s.procs, p)
	if _, err := p.waitFor("serving on", 10*time.Second); err != nil {
		return fmt.Errorf("%s never came up: %w", m.name, err)
	}
	return nil
}

// sendEpoch exports one epoch-shaped batch to both members and waits one
// epoch period so the quiet gap closes it. rampEpoch 0 is the stable
// phase; 1.. are ramp epochs.
func (s *soak) sendEpoch(rampEpoch int) error {
	recs := rampRecords(rampEpoch)
	for _, m := range []*member{s.subject, s.control} {
		if m == nil || m.feed == nil {
			continue
		}
		if err := m.feed.sendEpoch(recs); err != nil {
			return fmt.Errorf("feed %s: %w", m.name, err)
		}
	}
	time.Sleep(s.epoch)
	return nil
}

// rampRecords is the traffic of one epoch: the ramping subject flow plus
// steady background flows, mirroring detect/checkpoint_test.go.
func rampRecords(rampEpoch int) []flow.Record {
	count := uint32(rampBase)
	if rampEpoch > 0 {
		count = uint32(rampBase + rampStep*rampEpoch)
	}
	return []flow.Record{
		{Key: flow.Key{SrcIP: 0xc0a80001, DstIP: 0xc0a80002, SrcPort: 50000, DstPort: 443, Proto: 6}, Count: count},
		{Key: flow.Key{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 40000, DstPort: 443, Proto: 6}, Count: 900},
		{Key: flow.Key{SrcIP: 0x0a000003, DstIP: 0x0a000004, SrcPort: 40001, DstPort: 53, Proto: 17}, Count: 300},
	}
}

// epochCount asks a member's own query API how many epochs its store
// serves.
func (s *soak) epochCount(m *member) (int, error) {
	return epochCountAt(m.httpAddr)
}

func epochCountAt(httpAddr string) (int, error) {
	var eps query.EpochsResponse
	if err := getJSON("http://"+httpAddr+"/epochs", &eps); err != nil {
		return 0, err
	}
	return len(eps.Epochs), nil
}

// forecastAlerts counts a member's forecast alerts.
func (s *soak) forecastAlerts(m *member) (int, error) {
	var resp query.AlertsResponse
	if err := getJSON("http://"+m.httpAddr+"/alerts?kind=forecast", &resp); err != nil {
		return 0, err
	}
	return resp.Matched, nil
}

// checkQueryd runs flowqueryd over the subject's recovered store and
// asserts /flows answers; in full mode it also kills and restarts it.
func (s *soak) checkQueryd() error {
	s.logf("phase: flowqueryd over the recovered store")
	addr, err := probeTCP()
	if err != nil {
		return err
	}
	args := []string{"-listen", addr, "-store", s.subject.storePath}
	qd, err := startProc("queryd", s.querydBin, args...)
	if err != nil {
		return err
	}
	s.procs = append(s.procs, qd)
	if _, err := qd.waitFor("flowqueryd serving on", 10*time.Second); err != nil {
		return err
	}
	flows, err := queryFlows(addr)
	if err != nil {
		return fmt.Errorf("/flows over recovered store: %w", err)
	}
	if flows == 0 {
		return errors.New("/flows over recovered store returned nothing")
	}
	s.logf("queryd ok: /flows matched %d records", flows)

	if !s.quick {
		// Kill/restart the query daemon too: it must come back on the same
		// (still-growing) store.
		if err := qd.kill9(); err != nil {
			return err
		}
		qd2, err := startProc("queryd2", s.querydBin, args...)
		if err != nil {
			return err
		}
		s.procs = append(s.procs, qd2)
		if _, err := qd2.waitFor("flowqueryd serving on", 10*time.Second); err != nil {
			return err
		}
		if flows, err = queryFlows(addr); err != nil || flows == 0 {
			return fmt.Errorf("restarted queryd /flows: %d matched, err %v", flows, err)
		}
		if err := qd2.sigterm(10 * time.Second); err != nil {
			return fmt.Errorf("queryd graceful shutdown: %w", err)
		}
		s.logf("queryd kill/restart ok")
	} else {
		if err := qd.sigterm(10 * time.Second); err != nil {
			return fmt.Errorf("queryd graceful shutdown: %w", err)
		}
	}
	return nil
}

// tieredKillCheck runs a tiered-store collector with an aggressive
// background compactor, SIGKILLs it right after a compaction pass ran
// (and possibly during the next one), restarts it on the same directory,
// and requires that no closed epoch was lost: the cold-tier swap is an
// atomic rename and every closed hot epoch was fsynced, so the recovered
// store must serve at least as many epochs as the pre-kill query saw.
func (s *soak) tieredKillCheck() error {
	s.logf("phase: tiered store killed during compaction")
	udpAddr, err := probeUDP()
	if err != nil {
		return err
	}
	httpAddr, err := probeTCP()
	if err != nil {
		return err
	}
	args := []string{"serve",
		"-listen", udpAddr,
		"-http", httpAddr,
		"-store", filepath.Join(s.dir, "tiered.d"),
		"-hotepochs", "2",
		"-compactevery", "1",
		"-fsync", "epoch",
		"-gap", s.gap.String(),
		"-for", "1h",
	}
	p, err := startProc("tiered", s.collectBin, args...)
	if err != nil {
		return err
	}
	s.procs = append(s.procs, p)
	if _, err := p.waitFor("serving on", 10*time.Second); err != nil {
		return err
	}
	feed, err := dialVantage(udpAddr)
	if err != nil {
		return err
	}
	defer feed.close()

	// Enough closed epochs that the background compactor has migrated at
	// least one batch into a cold segment while load keeps arriving.
	for e := 0; e < 6; e++ {
		if err := feed.sendEpoch(rampRecords(0)); err != nil {
			return err
		}
		time.Sleep(s.epoch)
	}
	if _, err := p.waitFor("store: compacted", 5*time.Second); err != nil {
		return fmt.Errorf("background compactor never ran: %w", err)
	}
	preKill, err := epochCountAt(httpAddr)
	if err != nil {
		return fmt.Errorf("tiered pre-kill epoch count: %w", err)
	}
	if preKill == 0 {
		return errors.New("tiered store served no epochs before the kill")
	}

	// One more batch lands and the kill fires inside the quiet gap: the
	// open epoch dies with the process while the compactor may be mid-
	// migration — exactly the window the atomic segment swap protects.
	if err := feed.sendEpoch(rampRecords(0)); err != nil {
		return err
	}
	time.Sleep(s.gap / 4)
	if err := p.kill9(); err != nil {
		return err
	}

	p2, err := startProc("tiered-restarted", s.collectBin, args...)
	if err != nil {
		return err
	}
	s.procs = append(s.procs, p2)
	if _, err := p2.waitFor("store: recovered", 10*time.Second); err != nil {
		return fmt.Errorf("restarted tiered collector reported no recovery: %w", err)
	}
	postKill, err := epochCountAt(httpAddr)
	if err != nil {
		return fmt.Errorf("tiered post-restart epoch count: %w", err)
	}
	if postKill < preKill {
		return fmt.Errorf("tiered store lost closed epochs across the kill: %d before, %d after", preKill, postKill)
	}
	if err := p2.sigterm(10 * time.Second); err != nil {
		return fmt.Errorf("tiered collector graceful shutdown: %w", err)
	}
	s.logf("tiered ok: %d epochs pre-kill, %d served after restart, compaction survived SIGKILL", preKill, postKill)
	return nil
}

// fullModeChecks runs the cross-vantage correlator scenario: a
// two-vantage flowqueryd with one vantage going dead mid-run must keep
// answering /netwide/alerts — silence at one vantage is data, not a
// deadlock.
func (s *soak) fullModeChecks() error {
	s.logf("phase: two-vantage correlator with a dying vantage")
	nfA, err := probeUDP()
	if err != nil {
		return err
	}
	nfB, err := probeUDP()
	if err != nil {
		return err
	}
	addr, err := probeTCP()
	if err != nil {
		return err
	}
	qd, err := startProc("queryd-corr", s.querydBin,
		"-listen", addr, "-netflow", nfA, "-netflow", nfB,
		"-gap", s.gap.String(), "-detect", "-changedelta", "500")
	if err != nil {
		return err
	}
	s.procs = append(s.procs, qd)
	if _, err := qd.waitFor("flowqueryd serving on", 10*time.Second); err != nil {
		return err
	}
	feedA, err := dialVantage(nfA)
	if err != nil {
		return err
	}
	feedB, err := dialVantage(nfB)
	if err != nil {
		return err
	}

	// Both vantages see a baseline epoch then a heavy change; then vantage
	// B dies and A keeps reporting alone.
	base := []flow.Record{{Key: flow.Key{SrcIP: 9, DstIP: 10, DstPort: 443, Proto: 6}, Count: 100}}
	spike := []flow.Record{{Key: flow.Key{SrcIP: 9, DstIP: 10, DstPort: 443, Proto: 6}, Count: 9100}}
	for _, recs := range [][]flow.Record{base, spike} {
		if err := feedA.sendEpoch(recs); err != nil {
			return err
		}
		if err := feedB.sendEpoch(recs); err != nil {
			return err
		}
		time.Sleep(s.epoch)
	}
	feedB.close() // vantage B goes dead
	for i := 0; i < 3; i++ {
		if err := feedA.sendEpoch(base); err != nil {
			return err
		}
		time.Sleep(s.epoch)
	}
	time.Sleep(s.gap + 300*time.Millisecond)

	// The correlator must answer, not hang on the dead vantage, and the
	// synchronized spike must have been promoted while B was alive.
	var nw query.NetwideAlertsResponse
	if err := getJSON("http://"+addr+"/netwide/alerts", &nw); err != nil {
		return fmt.Errorf("/netwide/alerts with a dead vantage: %w", err)
	}
	if nw.Matched == 0 {
		return errors.New("correlator promoted nothing despite a synchronized cross-vantage spike")
	}
	s.logf("correlator ok: %d netwide alerts, dead vantage did not wedge it", nw.Matched)
	return qd.sigterm(10 * time.Second)
}

// reap kills anything still running so a failed soak leaves no orphans.
func (s *soak) reap() {
	for _, p := range s.procs {
		p.reap()
	}
}

// ---- live event stream client ----

// sseWatch holds a /events subscription on one member across its
// kill/restart cycles, behaving like a real EventSource: on disconnect it
// reconnects with the last seen event id, and it accounts connections,
// epoch/alert frames, and sequence continuity (within one connection ids
// must be strictly increasing with no gap beyond the bus ring bound; a
// restarted daemon legitimately restarts its sequence on the next
// connection and replays what its ring retained).
type sseWatch struct {
	url    string
	cancel context.CancelFunc
	done   chan struct{}

	mu     sync.Mutex
	lastID string
	conns  int
	alerts int
	epochs int
	seqErr error
}

func watchEvents(httpAddr string) *sseWatch {
	ctx, cancel := context.WithCancel(context.Background())
	w := &sseWatch{
		url:    "http://" + httpAddr + "/events?kind=alert,epoch",
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go w.run(ctx)
	return w
}

func (w *sseWatch) run(ctx context.Context) {
	defer close(w.done)
	for {
		w.connect(ctx)
		select {
		case <-ctx.Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// connect holds one stream until it drops (daemon killed) or the watch
// stops.
func (w *sseWatch) connect(ctx context.Context) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url, nil)
	if err != nil {
		return
	}
	w.mu.Lock()
	if w.lastID != "" {
		req.Header.Set("Last-Event-ID", w.lastID)
	}
	w.mu.Unlock()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	w.mu.Lock()
	w.conns++
	w.mu.Unlock()

	sc := bufio.NewScanner(resp.Body)
	var id, event string
	var prev uint64
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id = line[4:]
		case strings.HasPrefix(line, "event: "):
			event = line[7:]
		case line == "":
			if id == "" {
				continue // comment frame (heartbeat / drop note)
			}
			seq, err := strconv.ParseUint(id, 10, 64)
			w.mu.Lock()
			if err == nil {
				if prev != 0 && (seq <= prev || seq-prev > events.DefaultRingCap) {
					w.seqErr = fmt.Errorf("sequence %d after %d on one connection", seq, prev)
				}
				prev = seq
				w.lastID = id
			}
			switch event {
			case "alert":
				w.alerts++
			case "epoch":
				w.epochs++
			}
			w.mu.Unlock()
			id, event = "", ""
		}
	}
}

// stop ends the watch and waits the reader out.
func (w *sseWatch) stop() {
	w.cancel()
	<-w.done
}

func (w *sseWatch) stats() (conns, epochs, alerts int, seqErr error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.conns, w.epochs, w.alerts, w.seqErr
}

// ---- child process management ----

// lockedBuf is a goroutine-safe capture of a child's combined output.
type lockedBuf struct {
	mu  sync.Mutex
	buf strings.Builder
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// proc is one spawned child with captured output.
type proc struct {
	name string
	cmd  *exec.Cmd
	out  *lockedBuf
	done chan error
}

func startProc(name, bin string, args ...string) (*proc, error) {
	cmd := exec.Command(bin, args...)
	out := &lockedBuf{}
	cmd.Stdout, cmd.Stderr = out, out
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", name, err)
	}
	p := &proc{name: name, cmd: cmd, out: out, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	return p, nil
}

func (p *proc) output() string { return p.out.String() }

// waitFor polls the child's output for substr, returning the full line
// containing it.
func (p *proc) waitFor(substr string, timeout time.Duration) (string, error) {
	deadline := time.Now().Add(timeout)
	for {
		for _, line := range strings.Split(p.output(), "\n") {
			if strings.Contains(line, substr) {
				return line, nil
			}
		}
		select {
		case err := <-p.done:
			p.done <- err // leave it consumable for kill/sigterm
			return "", fmt.Errorf("%s exited (%v) before printing %q; output:\n%s",
				p.name, err, substr, p.output())
		default:
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("%s did not print %q within %v; output:\n%s",
				p.name, substr, timeout, p.output())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// kill9 SIGKILLs the child — no cleanup, no flush, the crash under test.
func (p *proc) kill9() error {
	if err := p.cmd.Process.Kill(); err != nil {
		return err
	}
	<-p.done
	return nil
}

// sigterm asks the child to shut down gracefully and requires a clean
// exit within the deadline.
func (p *proc) sigterm(timeout time.Duration) error {
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-p.done:
		if err != nil {
			return fmt.Errorf("%s exited uncleanly after SIGTERM: %v; output:\n%s", p.name, err, p.output())
		}
		return nil
	case <-time.After(timeout):
		_ = p.cmd.Process.Kill()
		return fmt.Errorf("%s ignored SIGTERM for %v", p.name, timeout)
	}
}

// reap force-kills if still running; used on harness exit.
func (p *proc) reap() {
	select {
	case err := <-p.done:
		p.done <- err
	default:
		_ = p.cmd.Process.Kill()
	}
}

// ---- load generation ----

// vantage is one member's NetFlow feed.
type vantage struct {
	conn net.Conn
	exp  *netflow.Exporter
}

func dialVantage(addr string) (*vantage, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	v := &vantage{conn: conn}
	v.exp = netflow.NewExporter(func(b []byte) error {
		_, err := conn.Write(b)
		if err != nil {
			// A connected UDP socket can surface one stale ICMP
			// port-unreachable queued while the collector was down; the
			// retry targets the restarted listener.
			_, err = conn.Write(b)
		}
		return err
	})
	return v, nil
}

func (v *vantage) sendEpoch(recs []flow.Record) error {
	return v.exp.Export(recs, 700)
}

func (v *vantage) close() { v.conn.Close() }

// ---- plumbing ----

// probeUDP reserves an ephemeral loopback UDP address.
func probeUDP() (string, error) {
	c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return "", err
	}
	addr := c.LocalAddr().String()
	c.Close()
	return addr, nil
}

// probeTCP reserves an ephemeral loopback TCP address.
func probeTCP() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

func getJSON(url string, out any) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, b)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// metricValue scrapes a member's /metrics (Prometheus text) and returns
// the value of one exactly named sample line.
func (s *soak) metricValue(m *member, metric string) (float64, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + m.httpAddr + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(b), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == metric {
			var v float64
			if _, err := fmt.Sscanf(fields[1], "%g", &v); err != nil {
				return 0, fmt.Errorf("metric %s: unparseable value %q", metric, fields[1])
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("metric %s absent from %s's exposition", metric, m.name)
}

// healthz fetches a member's structured health snapshot.
func (s *soak) healthz(m *member) (telemetry.Health, error) {
	var h telemetry.Health
	err := getJSON("http://"+m.httpAddr+"/healthz", &h)
	return h, err
}

// queryFlows asks a flowqueryd for all stored flows and returns the
// matched count.
func queryFlows(addr string) (int, error) {
	var resp query.FlowsResponse
	if err := getJSON("http://"+addr+"/flows", &resp); err != nil {
		return 0, err
	}
	return resp.Matched, nil
}

// doneStats is the parsed final summary of a collector.
type doneStats struct {
	datagrams, records, epochs, lost, bad int64
}

// parseDone extracts the "done: ..." summary line from a collector's
// output.
func parseDone(out string) (doneStats, error) {
	for _, line := range strings.Split(out, "\n") {
		i := strings.Index(line, "done: ")
		if i < 0 {
			continue
		}
		var st doneStats
		if _, err := fmt.Sscanf(line[i:], "done: %d datagrams, %d records, %d epochs, %d lost, %d bad",
			&st.datagrams, &st.records, &st.epochs, &st.lost, &st.bad); err != nil {
			return doneStats{}, fmt.Errorf("unparseable summary %q: %w", line, err)
		}
		return st, nil
	}
	return doneStats{}, fmt.Errorf("no summary line in output:\n%s", out)
}
