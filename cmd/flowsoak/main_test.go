package main

import (
	"net"
	"strings"
	"sync"
	"testing"
)

func TestParseDone(t *testing.T) {
	out := strings.Join([]string{
		"serving on 127.0.0.1:9999 for 1h0m0s (epoch gap 250ms), storing to /tmp/x.frec",
		"received terminated, shutting down",
		"done: 42 datagrams, 126 records, 14 epochs, 0 lost, 0 bad",
		"detection: 14 epochs evaluated, 3 alerts retained",
	}, "\n")
	st, err := parseDone(out)
	if err != nil {
		t.Fatal(err)
	}
	want := doneStats{datagrams: 42, records: 126, epochs: 14, lost: 0, bad: 0}
	if st != want {
		t.Fatalf("parsed %+v, want %+v", st, want)
	}
}

func TestParseDoneMissing(t *testing.T) {
	if _, err := parseDone("serving on ...\nno summary here\n"); err == nil {
		t.Fatal("parseDone accepted output with no summary line")
	}
}

func TestParseDoneMalformed(t *testing.T) {
	if _, err := parseDone("done: banana\n"); err == nil {
		t.Fatal("parseDone accepted a malformed summary")
	}
}

// TestRampMatchesPinnedScenario guards the coupling between this harness
// and detect/checkpoint_test.go: the live soak replays exactly the ramp
// the in-process test proved re-alerts within the budget after a restore
// and stays quiet cold. If this fails, re-derive both together.
func TestRampMatchesPinnedScenario(t *testing.T) {
	if rampBase != 2000 || rampStep != 300 || rampThreshold != 2200 ||
		rampWarmup != 10 || rampKillAfter != 4 || rampBudget != 5 {
		t.Fatalf("ramp constants drifted from detect/checkpoint_test.go: base=%d step=%d threshold=%d warmup=%d killAfter=%d budget=%d",
			rampBase, rampStep, rampThreshold, rampWarmup, rampKillAfter, rampBudget)
	}
	if got := rampRecords(0)[0].Count; got != rampBase {
		t.Fatalf("stable epoch ramp flow count = %d, want %d", got, rampBase)
	}
	if got := rampRecords(3)[0].Count; got != rampBase+3*rampStep {
		t.Fatalf("ramp epoch 3 count = %d, want %d", got, rampBase+3*rampStep)
	}
	// Background flows must clear the default forecast admission floor so
	// they are modelled (and stay quiet), and must never ramp.
	for _, r := range rampRecords(7)[1:] {
		if r.Count != rampRecords(0)[1].Count && r.Count != rampRecords(0)[2].Count {
			t.Fatalf("background flow count %d changed with the ramp epoch", r.Count)
		}
	}
}

func TestLockedBufConcurrent(t *testing.T) {
	var b lockedBuf
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				b.Write([]byte("x"))
			}
		}()
	}
	wg.Wait()
	if got := len(b.String()); got != 800 {
		t.Fatalf("captured %d bytes, want 800", got)
	}
}

func TestProbeAddrs(t *testing.T) {
	ua, err := probeUDP()
	if err != nil {
		t.Fatal(err)
	}
	ta, err := probeTCP()
	if err != nil {
		t.Fatal(err)
	}
	// The probed addresses must be immediately bindable (the collector
	// will bind them moments later).
	uaddr, err := net.ResolveUDPAddr("udp", ua)
	if err != nil {
		t.Fatal(err)
	}
	uc, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		t.Fatalf("probed UDP addr %s not bindable: %v", ua, err)
	}
	uc.Close()
	ln, err := net.Listen("tcp", ta)
	if err != nil {
		t.Fatalf("probed TCP addr %s not bindable: %v", ta, err)
	}
	ln.Close()
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-gap", "2s", "-epoch", "1s"}, &sb); err == nil {
		t.Fatal("run accepted -gap >= -epoch")
	}
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Fatal("run accepted an unknown flag")
	}
}
