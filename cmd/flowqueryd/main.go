// Command flowqueryd serves flow queries over HTTP/JSON: live top-k from
// an online tracker, historical records from mmap-backed record stores,
// and a network-wide merged view across stores and the live feeds.
//
//	flowqueryd -listen 127.0.0.1:8080 -store records.frec
//	flowqueryd -listen :8080 -store sw1.frec -store sw2.frec
//	flowqueryd -listen :8080 -store records.frec -netflow 127.0.0.1:2055
//	flowqueryd -listen :8080 -netflow 127.0.0.1:2055 -netflow 127.0.0.1:2056 -detect
//
// Endpoints (see package repro/query):
//
//	GET /topk?k=10                live heavy hitters (with -netflow), or
//	                              the primary store's all-time summary
//	GET /epochs                   epoch listing of the primary store
//	GET /flows?filter=dport=443   filtered records, ?epoch= or ?from=/?to=
//	GET /netwide/topk?k=10        top-k over all stores + the live feeds
//	GET /alerts?kind=anomaly      detection alerts (with -netflow -detect)
//	GET /changes?k=10             per-epoch heavy-change top-k lists
//	GET /netwide/alerts           cross-vantage correlated alerts with
//	                              per-vantage evidence (-detect, 2+ feeds)
//	GET /metrics                  runtime metrics, Prometheus text or
//	                              ?format=json
//	GET /healthz                  structured health snapshot (uptime,
//	                              epochs, vantages)
//	GET /events?kind=alert        live pipeline events over SSE, resumable
//	                              via Last-Event-ID
//	GET /trace/epochs             recent per-epoch stage timelines
//
// Every endpoint is also served under /v1/ — the stable, versioned
// surface with a structured {"error":{"code","message"}} envelope and
// strict parameter validation. The unversioned paths are deprecated
// aliases kept byte-compatible for existing clients (see API.md).
//
// The primary store (first -store) is re-opened per request, so a store a
// collector is still appending to is always served current. A -store may
// be a flat .frec file or a tiered directory (hot mmap tier + compressed
// cold segments + rollups) written by flowcollect's tiered mode; with
// -compactevery, flowqueryd itself applies the hot-window and retention
// policy to the primary tiered store on a timer.
//
// -netflow is repeatable: each listener is one vantage point with its
// own live tracker, all merged into /netwide/topk. With -detect, every
// vantage additionally runs its own detection subsystem (heavy changers,
// slow-ramp forecasting, superspreaders, victim fan-in, anomaly scoring)
// on its collector's epoch goroutine, and the per-vantage change
// summaries stream into a cross-vantage correlator that promotes keys
// alerting at -quorum vantages (or whose merged delta crosses
// -netwidedelta) to netwide alerts — queries, detection and correlation
// all stay off the datagram path.
//
// The correlator aligns vantages by epoch index, and each vantage's
// epochs are quiet-gap delimited independently: exporters must rotate
// in lockstep (the epoch-aligned `flowcollect export -epochpkts` mode,
// or any exporter family sharing a rotation clock) for index N to mean
// the same window everywhere. A vantage that misses a whole epoch
// window shifts its subsequent indices; the per-vantage evidence on
// each netwide alert makes such skew visible.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	"repro/collector"
	"repro/detect"
	"repro/flow"
	"repro/query"
	"repro/recordstore"
	"repro/telemetry"
	"repro/telemetry/events"
	"repro/topk"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowqueryd:", err)
		os.Exit(1)
	}
}

// stringList collects a repeatable flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flowqueryd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
	var stores stringList
	fs.Var(&stores, "store", "record store: a flat .frec file or a tiered directory (repeatable; first is the primary)")
	hotEpochs := fs.Int("hotepochs", 64, "hot-window size the maintenance compactor enforces on the primary tiered store (with -compactevery)")
	retain := fs.Duration("retain", 0, "retention horizon the maintenance compactor applies: cold segments entirely older than this roll up to top-k summaries; 0 keeps everything (with -compactevery)")
	compactEvery := fs.Duration("compactevery", 0, "run compaction + retention on the primary tiered -store directory at this interval; 0 never. The directory must not be owned by a running collector")
	var nfs stringList
	fs.Var(&nfs, "netflow", "ingest NetFlow v5 on this UDP address into a live tracker (repeatable; each is one vantage)")
	gap := fs.Duration("gap", time.Second, "quiet gap closing a NetFlow epoch")
	topkCap := fs.Int("topk", 4096, "live tracker capacity in flows (per vantage)")
	det := fs.Bool("detect", false, "run detection on each live-ingested epoch (with -netflow)")
	fanout := fs.Int("fanout", 128, "superspreader distinct-destination threshold (with -detect)")
	fanin := fs.Int("fanin", 128, "victim fan-in distinct-source threshold (with -detect)")
	minDelta := fs.Uint64("changedelta", 1024, "heavy-change per-flow delta threshold (with -detect)")
	forecast := fs.Float64("forecast", 1024, "forecast CUSUM drift threshold in packets (with -detect)")
	quorum := fs.Int("quorum", 0, "vantages that must alert on a key to promote it netwide (0 = min(2, vantages), with -detect)")
	netwideDelta := fs.Uint64("netwidedelta", 0, "merged |delta| promoting a key netwide (0 = 4x changedelta, with -detect)")
	runFor := fs.Duration("for", 0, "serve for this long then exit (0 = forever)")
	debug := fs.Bool("debug", false, "also serve net/http/pprof under /debug/pprof/")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(stores) == 0 && len(nfs) == 0 {
		return errors.New("usage: flowqueryd [-listen addr] -store <file> [-store <file>...] [-netflow addr...]")
	}
	if *det && len(nfs) == 0 {
		return errors.New("-detect needs a live feed: pass -netflow too")
	}

	// Catch termination signals from the start so a SIGTERM during setup
	// still shuts the daemon down instead of killing it mid-listen.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	cfg := query.Config{}
	reg := telemetry.NewRegistry()
	start := time.Now()
	var vantageHealth []telemetry.VantageHealth

	// The live-ops layer: one event bus and epoch tracer shared by every
	// vantage (events carry their vantage label), served as /events SSE and
	// /trace/epochs alongside the query endpoints. The logger mirrors
	// operational lines onto the same bus.
	bus := events.NewBus(events.DefaultRingCap)
	tracer := events.NewTracer(events.DefaultTraceKeep)
	logger := slog.New(events.NewLogHandler(w, bus, ""))
	events.RegisterMetrics(reg, bus)
	cfg.Events = bus
	cfg.Trace = tracer
	cfg.Registry = reg

	// Historical side: the primary store is re-opened per request (it may
	// still be growing); every store — flat file or tiered directory —
	// contributes its all-time summed view to the network-wide merge.
	for i, path := range stores {
		src, err := recordstore.Open(path)
		if err != nil {
			return fmt.Errorf("open %s: %w", path, err)
		}
		static, err := query.SumStore(src)
		src.Close()
		if err != nil {
			return fmt.Errorf("summarize %s: %w", path, err)
		}
		cfg.Netwide = append(cfg.Netwide, query.NamedSource{
			Name: filepath.Base(path), Source: static,
		})
		if i == 0 {
			cfg.Store = query.FileStore(path)
			cfg.TopK = static // the live tracker below overrides this
		}
	}

	// Maintenance compaction: when flowqueryd owns a tiered store no
	// collector is appending to (the query-daemon-over-archive
	// deployment), it can apply the hot-window and retention policy
	// itself on a timer instead of leaving the store frozen as written.
	if *compactEvery > 0 {
		if len(stores) == 0 {
			return errors.New("-compactevery needs a primary -store directory")
		}
		st, err := os.Stat(stores[0])
		if err != nil {
			return err
		}
		if !st.IsDir() {
			return fmt.Errorf("-compactevery needs a tiered store directory; %s is a flat file", stores[0])
		}
		tw, _, err := recordstore.OpenTiered(stores[0], recordstore.TieredOptions{
			HotEpochs: *hotEpochs,
			Retain:    *retain,
		})
		if err != nil {
			return err
		}
		defer tw.Close()
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(*compactEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					stats, err := tw.Compact()
					switch {
					case err != nil:
						logger.Error("store: compaction failed", "kind", "degraded", "error", err.Error())
					case stats.Migrated > 0 || stats.RolledUp > 0:
						logger.Info("store: compacted", "kind", "compaction",
							"migrated", stats.Migrated, "rolled_up", stats.RolledUp,
							"stall", time.Duration(stats.StallNs).String())
					}
				}
			}
		}()
		logger.Info(fmt.Sprintf("compacting %s every %s", stores[0], *compactEvery),
			"hotepochs", *hotEpochs, "retain", (*retain).String())
	}

	// Live side: NetFlow listeners feeding per-vantage online trackers,
	// and optionally the detection subsystem — per-vantage detectors
	// whose change summaries stream into one cross-vantage correlator.
	// Everything runs on each collector's epoch goroutine, off the
	// datagram paths. The shared epoch counter versions the /netwide/topk
	// cache: responses stay memoized until the next epoch lands anywhere.
	var epochs atomic.Uint64
	var corr *detect.Correlator
	// Correlation needs at least two vantage points: with one, every
	// local heavy change would trivially satisfy a quorum of 1 and
	// /netwide/alerts would just duplicate /alerts.
	if *det && len(nfs) >= 2 {
		names := make([]string, len(nfs))
		copy(names, nfs)
		var err error
		corr, err = detect.NewCorrelator(detect.CorrelatorConfig{
			Vantages:        names,
			Quorum:          *quorum, // 0 defaults to min(2, vantages)
			VantageMinDelta: uint32(*minDelta),
			NetwideMinDelta: uint32(*netwideDelta),
		})
		if err != nil {
			return err
		}
		cfg.NetwideAlerts = corr
	}
	for i, nf := range nfs {
		tracker, err := topk.NewTracker(*topkCap)
		if err != nil {
			return err
		}
		var detector *detect.Detector
		if *det {
			dcfg := detect.Config{
				FanoutThreshold:   *fanout,
				FanInThreshold:    *fanin,
				ChangeMinDelta:    uint32(*minDelta),
				ForecastThreshold: *forecast,
			}
			if corr != nil {
				// Report sub-threshold deltas so the correlator can
				// promote changes that only cross the line once merged
				// (floored at 1: a 0 would mean "default back to
				// ChangeMinDelta").
				dcfg.SummaryMinDelta = uint32(*minDelta) / 4
				if dcfg.SummaryMinDelta == 0 {
					dcfg.SummaryMinDelta = 1
				}
			}
			detector, err = detect.NewDetector(dcfg)
			if err != nil {
				return err
			}
			if corr != nil {
				vantage := nf
				detector.SetSummarySink(func(s detect.ChangeSummary) {
					corr.ObserveSummary(vantage, s)
				})
			}
			if cfg.Alerts == nil {
				// /alerts serves the first vantage's detector; the
				// correlator's /netwide/alerts spans all of them.
				cfg.Alerts = detector
			}
		}
		name := "live"
		if len(nfs) > 1 {
			name = "live:" + nf
		}
		if detector != nil {
			detector.SetMetrics(detect.NewMetrics(reg, "vantage", nf))
			// Alerts become bus events on the evaluating (epoch) goroutine,
			// so a connected SSE client sees them within the epoch.
			vantage := name
			detector.SetSink(func(as []detect.Alert) {
				for _, a := range as {
					bus.Publish(events.AlertEvent(vantage, a))
				}
			})
		}
		// Detection epochs count per vantage (the correlator aligns
		// epochs across vantages by index); the shared counter only
		// versions the /netwide/topk cache.
		d := detector
		vantage := name
		var vantageEpochs int
		srv, err := collector.Start(collector.Config{
			Listen: nf, EpochGap: *gap,
			Metrics: collector.NewMetrics(reg, "vantage", nf),
		},
			func(ts time.Time, records []flow.Record) {
				sp := events.Begin(vantage, vantageEpochs, ts, len(records))
				sp.Time("tracker", func() { tracker.AddRecords(records) })
				if d != nil {
					var as []detect.Alert
					sp.Time("detect", func() { as = d.Observe(vantageEpochs, ts, records) })
					sp.AddAlerts(len(as))
				}
				sp.End(bus, tracer)
				vantageEpochs++
				epochs.Add(1)
			})
		if err != nil {
			return err
		}
		defer srv.Shutdown()
		srv.RegisterMetrics(reg, "vantage", nf)
		vantageHealth = append(vantageHealth, telemetry.VantageHealth{Name: name})
		if i == 0 {
			cfg.TopK = tracker
		}
		cfg.Netwide = append(cfg.Netwide, query.NamedSource{Name: name, Source: tracker})
		logger.Info(fmt.Sprintf("ingesting NetFlow on %s", srv.Addr()), "vantage", name)
	}
	cfg.NetwideVersion = epochs.Load

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.Handle("/", query.NewHandler(cfg))
	telemetry.Ops{
		Registry: reg,
		Health: func() telemetry.Health {
			return telemetry.Health{
				Status:        "ok",
				UptimeSeconds: telemetry.Uptime(start),
				Epochs:        epochs.Load(),
				Vantages:      vantageHealth,
			}
		},
		Debug: *debug,
	}.Register(mux)
	httpSrv := &http.Server{
		Handler:           telemetry.InstrumentMux(reg, mux),
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	logger.Info(fmt.Sprintf("flowqueryd serving on http://%s", ln.Addr()))

	// Serve until the deadline (if any) or a termination signal, then shut
	// down gracefully: stop accepting, let in-flight queries finish under a
	// deadline, and fall back to a hard close if they will not. The
	// deferred collector Shutdowns then drain each vantage's in-flight
	// epoch into its tracker/detector before the process exits.
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()
	var deadline <-chan time.Time
	if *runFor > 0 {
		deadline = time.After(*runFor)
	}
	select {
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	case <-deadline:
	case sig := <-sigCh:
		logger.Info(fmt.Sprintf("received %v, shutting down", sig))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	err = httpSrv.Shutdown(ctx)
	cancel()
	if err != nil {
		httpSrv.Close()
	}
	<-done // Serve always returns after Shutdown/Close; drain it
	return nil
}
