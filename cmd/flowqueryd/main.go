// Command flowqueryd serves flow queries over HTTP/JSON: live top-k from
// an online tracker, historical records from mmap-backed record stores,
// and a network-wide merged view across stores and the live feed.
//
//	flowqueryd -listen 127.0.0.1:8080 -store records.frec
//	flowqueryd -listen :8080 -store sw1.frec -store sw2.frec
//	flowqueryd -listen :8080 -store records.frec -netflow 127.0.0.1:2055
//
// Endpoints (see package repro/query):
//
//	GET /topk?k=10                live heavy hitters (with -netflow), or
//	                              the primary store's all-time summary
//	GET /epochs                   epoch listing of the primary store
//	GET /flows?filter=dport=443   filtered records, ?epoch= or ?from=/?to=
//	GET /netwide/topk?k=10        top-k over all stores + the live feed
//	GET /alerts?kind=anomaly      detection alerts (with -netflow -detect)
//	GET /changes?k=10             per-epoch heavy-change top-k lists
//
// The primary store (first -store) is re-mapped per request, so a file a
// collector is still appending to is always served current. With
// -detect, every live-ingested epoch also runs through the detection
// subsystem (heavy changers, superspreaders, anomaly scoring) on the
// collector's epoch goroutine — queries and detection both stay off the
// datagram path.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/collector"
	"repro/detect"
	"repro/flow"
	"repro/query"
	"repro/recordstore"
	"repro/topk"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowqueryd:", err)
		os.Exit(1)
	}
}

// stringList collects a repeatable flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flowqueryd", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:8080", "HTTP listen address")
	var stores stringList
	fs.Var(&stores, "store", "record store file (repeatable; first is the primary)")
	nf := fs.String("netflow", "", "also ingest NetFlow v5 on this UDP address into the live tracker")
	gap := fs.Duration("gap", time.Second, "quiet gap closing a NetFlow epoch")
	topkCap := fs.Int("topk", 4096, "live tracker capacity in flows")
	det := fs.Bool("detect", false, "run detection on each live-ingested epoch (with -netflow)")
	fanout := fs.Int("fanout", 128, "superspreader distinct-destination threshold (with -detect)")
	minDelta := fs.Uint64("changedelta", 1024, "heavy-change per-flow delta threshold (with -detect)")
	runFor := fs.Duration("for", 0, "serve for this long then exit (0 = forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(stores) == 0 && *nf == "" {
		return errors.New("usage: flowqueryd [-listen addr] -store <file> [-store <file>...] [-netflow addr]")
	}
	if *det && *nf == "" {
		return errors.New("-detect needs a live feed: pass -netflow too")
	}

	cfg := query.Config{}

	// Historical side: the primary store is re-mapped per request (it may
	// still be growing); every store contributes its all-time summed view
	// to the network-wide merge.
	for i, path := range stores {
		m, err := recordstore.OpenMapped(path)
		if err != nil {
			return fmt.Errorf("open %s: %w", path, err)
		}
		static, err := query.SumStore(m)
		m.Close()
		if err != nil {
			return fmt.Errorf("summarize %s: %w", path, err)
		}
		cfg.Netwide = append(cfg.Netwide, query.NamedSource{
			Name: filepath.Base(path), Source: static,
		})
		if i == 0 {
			cfg.Store = query.FileStore(path)
			cfg.TopK = static // the live tracker below overrides this
		}
	}

	// Live side: an optional NetFlow listener feeding the online tracker,
	// and optionally the detection subsystem — both run on the collector's
	// epoch goroutine, off the datagram path. The epoch counter versions
	// the /netwide/topk cache: responses stay memoized until the next
	// epoch lands.
	var (
		srv    *collector.Server
		epochs atomic.Uint64
	)
	if *nf != "" {
		tracker, err := topk.NewTracker(*topkCap)
		if err != nil {
			return err
		}
		var detector *detect.Detector
		if *det {
			detector, err = detect.NewDetector(detect.Config{
				FanoutThreshold: *fanout,
				ChangeMinDelta:  uint32(*minDelta),
			})
			if err != nil {
				return err
			}
			cfg.Alerts = detector
		}
		srv, err = collector.Start(collector.Config{Listen: *nf, EpochGap: *gap},
			func(ts time.Time, records []flow.Record) {
				tracker.AddRecords(records)
				if detector != nil {
					detector.Observe(int(epochs.Load()), ts, records)
				}
				epochs.Add(1)
			})
		if err != nil {
			return err
		}
		defer srv.Shutdown()
		cfg.TopK = tracker
		cfg.Netwide = append(cfg.Netwide, query.NamedSource{Name: "live", Source: tracker})
		if _, err := fmt.Fprintf(w, "ingesting NetFlow on %s\n", srv.Addr()); err != nil {
			return err
		}
	}
	cfg.NetwideVersion = epochs.Load

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: query.NewHandler(cfg), ReadHeaderTimeout: 5 * time.Second}
	if _, err := fmt.Fprintf(w, "flowqueryd serving on http://%s\n", ln.Addr()); err != nil {
		ln.Close()
		return err
	}

	if *runFor > 0 {
		done := make(chan error, 1)
		go func() { done <- httpSrv.Serve(ln) }()
		select {
		case err := <-done:
			return err
		case <-time.After(*runFor):
		}
		if err := httpSrv.Close(); err != nil {
			return err
		}
		<-done // Serve always returns after Close; drain it
		return nil
	}
	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
