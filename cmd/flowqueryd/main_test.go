package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/flow"
	"repro/netflow"
	"repro/query"
	"repro/recordstore"
	"repro/telemetry"
)

func writeStore(t *testing.T, name string, epochs ...[]flow.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := recordstore.NewWriter(f)
	for i, recs := range epochs {
		if err := w.WriteEpoch(time.Unix(int64(1700000000+60*i), 0), recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

// probeTCP reserves an ephemeral TCP port.
func probeTCP(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func getJSON(t *testing.T, url string, out any) error {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func TestDaemonArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("accepted empty source config")
	}
	if err := run([]string{"-store", "/does/not/exist.frec"}, &buf); err == nil {
		t.Error("accepted missing store")
	}
	if err := run([]string{"-detect", "-store", "/does/not/exist.frec"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "netflow") {
		t.Errorf("-detect without -netflow: %v", err)
	}
}

func TestDaemonServesStores(t *testing.T) {
	hh := flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000063, DstPort: 443, Proto: 6}
	primary := writeStore(t, "sw1.frec",
		[]flow.Record{
			{Key: hh, Count: 1000},
			{Key: flow.Key{SrcIP: 0x0A000002, DstPort: 80, Proto: 6}, Count: 10},
		},
		[]flow.Record{{Key: hh, Count: 500}},
	)
	secondary := writeStore(t, "sw2.frec",
		[]flow.Record{{Key: hh, Count: 700}},
	)

	addr := probeTCP(t)
	var (
		wg     sync.WaitGroup
		out    bytes.Buffer
		runErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run([]string{"-listen", addr, "-store", primary, "-store", secondary,
			"-for", "3s"}, &out)
	}()
	base := "http://" + addr
	waitUp(t, base+"/epochs")

	var eps query.EpochsResponse
	if err := getJSON(t, base+"/epochs", &eps); err != nil {
		t.Fatal(err)
	}
	if len(eps.Epochs) != 2 {
		t.Fatalf("epochs = %+v", eps)
	}

	var flows query.FlowsResponse
	if err := getJSON(t, base+"/flows?filter=dport%3D443", &flows); err != nil {
		t.Fatal(err)
	}
	if flows.Matched != 2 {
		t.Fatalf("matched %d, want 2", flows.Matched)
	}

	// /topk without a live feed answers from the primary store summary:
	// the 443 flow sums to 1500 across its epochs.
	var tk query.TopKResponse
	if err := getJSON(t, base+"/topk?k=1", &tk); err != nil {
		t.Fatal(err)
	}
	if len(tk.Flows) != 1 || tk.Flows[0].Packets != 1500 {
		t.Fatalf("topk = %+v", tk.Flows)
	}

	// /netwide/topk merges both stores: 1500 + 700.
	var nw query.TopKResponse
	if err := getJSON(t, base+"/netwide/topk?k=1", &nw); err != nil {
		t.Fatal(err)
	}
	if len(nw.Sources) != 2 {
		t.Fatalf("netwide sources = %v", nw.Sources)
	}
	if len(nw.Flows) != 1 || nw.Flows[0].Packets != 2200 {
		t.Fatalf("netwide topk = %+v", nw.Flows)
	}

	wg.Wait()
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
}

// probeUDP reserves an ephemeral UDP port.
func probeUDP(t *testing.T) string {
	t.Helper()
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := conn.LocalAddr().String()
	conn.Close()
	return addr
}

// sendEpoch exports one epoch's records as NetFlow v5 to a vantage.
func sendEpoch(t *testing.T, addr string, recs []flow.Record) {
	t.Helper()
	conn, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	exp := netflow.NewExporter(func(b []byte) error {
		_, err := conn.Write(b)
		return err
	})
	if err := exp.Export(recs, 700); err != nil {
		t.Fatal(err)
	}
}

// TestDaemonCorrelatesVantages drives two live NetFlow vantages end to
// end: a key spiking at both in the same epoch must surface on
// /netwide/alerts with evidence from each vantage.
func TestDaemonCorrelatesVantages(t *testing.T) {
	nf1, nf2 := probeUDP(t), probeUDP(t)
	addr := probeTCP(t)
	var (
		wg     sync.WaitGroup
		out    bytes.Buffer
		runErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run([]string{"-listen", addr, "-netflow", nf1, "-netflow", nf2,
			"-detect", "-changedelta", "1024", "-gap", "300ms", "-for", "6s"}, &out)
	}()
	base := "http://" + addr
	waitUp(t, base+"/alerts")

	hot := flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000063, DstPort: 443, Proto: 6}
	cold := flow.Key{SrcIP: 0x0A000002, DstIP: 0x0A000064, DstPort: 80, Proto: 6}
	epoch0 := []flow.Record{{Key: hot, Count: 100}, {Key: cold, Count: 90}}
	epoch1 := []flow.Record{{Key: hot, Count: 5000}, {Key: cold, Count: 95}}
	for _, ep := range [][]flow.Record{epoch0, epoch1} {
		sendEpoch(t, nf1, ep)
		sendEpoch(t, nf2, ep)
		// Silence past the quiet gap closes the epoch at both vantages.
		time.Sleep(600 * time.Millisecond)
	}

	var nw query.NetwideAlertsResponse
	deadline := time.Now().Add(4 * time.Second)
	for time.Now().Before(deadline) {
		if err := getJSON(t, base+"/netwide/alerts", &nw); err == nil && nw.Matched > 0 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if nw.Matched != 1 || len(nw.Alerts) != 1 {
		t.Fatalf("netwide alerts: %+v\ndaemon output:\n%s", nw, out.String())
	}
	a := nw.Alerts[0]
	if a.Kind != "netwide" || a.Flow == nil || a.Flow.Src != "10.0.0.1" {
		t.Errorf("promoted alert: %+v", a)
	}
	if len(a.Evidence) != 2 || !a.Evidence[0].Alerted || !a.Evidence[1].Alerted {
		t.Errorf("evidence: %+v", a.Evidence)
	}

	// The per-vantage surface works too: /alerts serves the first
	// vantage's detector, which saw the same heavy change locally.
	var al query.AlertsResponse
	if err := getJSON(t, base+"/alerts?kind=heavychange", &al); err != nil {
		t.Fatal(err)
	}
	if al.Matched == 0 {
		t.Errorf("first vantage's detector saw no heavy change")
	}

	// Ops surface: per-vantage metrics carry distinct labels, and the
	// health snapshot lists both vantages.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBytes := new(bytes.Buffer)
	if _, err := promBytes.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	prom := promBytes.String()
	for _, nf := range []string{nf1, nf2} {
		want := fmt.Sprintf("collector_datagrams_total{vantage=%q}", nf)
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if !strings.Contains(prom, "detect_alerts_total") {
		t.Error("/metrics missing detect_alerts_total")
	}
	var h telemetry.Health
	if err := getJSON(t, base+"/healthz", &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.Vantages) != 2 {
		t.Errorf("healthz = %+v, want ok with 2 vantages", h)
	}
	if h.Epochs == 0 {
		t.Error("healthz reports zero epochs after live ingest")
	}

	wg.Wait()
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
}

// waitUp polls until the daemon answers.
func waitUp(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never came up", url)
}
