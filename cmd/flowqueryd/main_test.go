package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/flow"
	"repro/query"
	"repro/recordstore"
)

func writeStore(t *testing.T, name string, epochs ...[]flow.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := recordstore.NewWriter(f)
	for i, recs := range epochs {
		if err := w.WriteEpoch(time.Unix(int64(1700000000+60*i), 0), recs); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

// probeTCP reserves an ephemeral TCP port.
func probeTCP(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func getJSON(t *testing.T, url string, out any) error {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func TestDaemonArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("accepted empty source config")
	}
	if err := run([]string{"-store", "/does/not/exist.frec"}, &buf); err == nil {
		t.Error("accepted missing store")
	}
	if err := run([]string{"-detect", "-store", "/does/not/exist.frec"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "netflow") {
		t.Errorf("-detect without -netflow: %v", err)
	}
}

func TestDaemonServesStores(t *testing.T) {
	hh := flow.Key{SrcIP: 0x0A000001, DstIP: 0x0A000063, DstPort: 443, Proto: 6}
	primary := writeStore(t, "sw1.frec",
		[]flow.Record{
			{Key: hh, Count: 1000},
			{Key: flow.Key{SrcIP: 0x0A000002, DstPort: 80, Proto: 6}, Count: 10},
		},
		[]flow.Record{{Key: hh, Count: 500}},
	)
	secondary := writeStore(t, "sw2.frec",
		[]flow.Record{{Key: hh, Count: 700}},
	)

	addr := probeTCP(t)
	var (
		wg     sync.WaitGroup
		out    bytes.Buffer
		runErr error
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		runErr = run([]string{"-listen", addr, "-store", primary, "-store", secondary,
			"-for", "3s"}, &out)
	}()
	base := "http://" + addr
	waitUp(t, base+"/epochs")

	var eps query.EpochsResponse
	if err := getJSON(t, base+"/epochs", &eps); err != nil {
		t.Fatal(err)
	}
	if len(eps.Epochs) != 2 {
		t.Fatalf("epochs = %+v", eps)
	}

	var flows query.FlowsResponse
	if err := getJSON(t, base+"/flows?filter=dport%3D443", &flows); err != nil {
		t.Fatal(err)
	}
	if flows.Matched != 2 {
		t.Fatalf("matched %d, want 2", flows.Matched)
	}

	// /topk without a live feed answers from the primary store summary:
	// the 443 flow sums to 1500 across its epochs.
	var tk query.TopKResponse
	if err := getJSON(t, base+"/topk?k=1", &tk); err != nil {
		t.Fatal(err)
	}
	if len(tk.Flows) != 1 || tk.Flows[0].Packets != 1500 {
		t.Fatalf("topk = %+v", tk.Flows)
	}

	// /netwide/topk merges both stores: 1500 + 700.
	var nw query.TopKResponse
	if err := getJSON(t, base+"/netwide/topk?k=1", &nw); err != nil {
		t.Fatal(err)
	}
	if len(nw.Sources) != 2 {
		t.Fatalf("netwide sources = %v", nw.Sources)
	}
	if len(nw.Flows) != 1 || nw.Flows[0].Packets != 2200 {
		t.Fatalf("netwide topk = %+v", nw.Flows)
	}

	wg.Wait()
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
}

// waitUp polls until the daemon answers.
func waitUp(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never came up", url)
}
