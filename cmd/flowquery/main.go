// Command flowquery inspects record-store files written by a collector.
//
// Usage:
//
//	flowquery -store records.frec                          # per-epoch summary
//	flowquery -store records.frec -filter dport=443        # filtered records
//	flowquery -store records.frec -top 10                  # largest flows
//	flowquery -store records.frec -filter proto=17 -top 5
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/apps"
	"repro/flow"
	"repro/recordstore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowquery:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flowquery", flag.ContinueOnError)
	store := fs.String("store", "", "record store file (required)")
	filterExpr := fs.String("filter", "", "filter, e.g. src=10.0.0.1,dport=443,minpkts=10")
	top := fs.Int("top", 0, "print only the N largest matching flows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *store == "" {
		return fmt.Errorf("usage: flowquery -store <file> [-filter expr] [-top n]")
	}
	filter, err := recordstore.ParseFilter(*filterExpr)
	if err != nil {
		return err
	}

	f, err := os.Open(*store)
	if err != nil {
		return err
	}
	defer f.Close()

	epochs, err := recordstore.NewReader(f).ReadAll()
	if err != nil {
		return err
	}

	var matched []flow.Record
	var totalRecords int
	for i, ep := range epochs {
		hits := filter.Apply(ep.Records)
		totalRecords += len(ep.Records)
		matched = append(matched, hits...)
		if _, err := fmt.Fprintf(w, "epoch %d  %s  %d records, %d matched\n",
			i, ep.Time.Format("2006-01-02T15:04:05.000Z07:00"), len(ep.Records), len(hits)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "total: %d epochs, %d records, %d matched\n",
		len(epochs), totalRecords, len(matched)); err != nil {
		return err
	}

	if *top > 0 {
		for i, r := range apps.TopTalkers(matched, *top) {
			if _, err := fmt.Fprintf(w, "%3d. %-45s %d pkts\n", i+1, r.Key, r.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
