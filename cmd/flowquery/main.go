// Command flowquery inspects record-store files written by a collector,
// either directly or through a running flowqueryd daemon.
//
// Usage:
//
//	flowquery -store records.frec                          # per-epoch summary
//	flowquery -store records.frec -filter dport=443        # filtered records
//	flowquery -store records.frec -top 10                  # largest flows
//	flowquery -store records.frec -filter proto=17 -top 5
//	flowquery -remote http://127.0.0.1:8080 -top 10        # ask a daemon
//	flowquery -remote http://127.0.0.1:8080 -filter dport=443
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/apps"
	"repro/flow"
	"repro/query"
	"repro/recordstore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flowquery:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("flowquery", flag.ContinueOnError)
	store := fs.String("store", "", "record store file")
	remote := fs.String("remote", "", "flowqueryd base URL (e.g. http://127.0.0.1:8080)")
	filterExpr := fs.String("filter", "", "filter, e.g. src=10.0.0.1,dport=443,minpkts=10")
	top := fs.Int("top", 0, "print only the N largest matching flows")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*store == "") == (*remote == "") {
		return fmt.Errorf("usage: flowquery (-store <file> | -remote <url>) [-filter expr] [-top n]")
	}
	filter, err := recordstore.ParseFilter(*filterExpr)
	if err != nil {
		return err
	}
	if *remote != "" {
		return runRemote(*remote, filter, *top, w)
	}
	return runLocal(*store, filter, *top, w)
}

func runLocal(store string, filter recordstore.Filter, top int, w io.Writer) error {
	// Open auto-detects the store shape: a flat .frec file or a tiered
	// directory (hot + cold + rollup epochs all list the same way).
	src, err := recordstore.Open(store)
	if err != nil {
		return err
	}
	defer src.Close()

	var matched []flow.Record
	var totalRecords int
	var buf []flow.Record
	epochs := src.Epochs()
	for i := 0; i < epochs; i++ {
		ep, err := src.AppendEpochAt(i, buf[:0])
		if err != nil {
			return err
		}
		buf = ep.Records
		hits := filter.Apply(ep.Records)
		totalRecords += len(ep.Records)
		matched = append(matched, hits...)
		if _, err := fmt.Fprintf(w, "epoch %d  %s  %d records, %d matched\n",
			i, ep.Time.Format("2006-01-02T15:04:05.000Z07:00"), len(ep.Records), len(hits)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "total: %d epochs, %d records, %d matched\n",
		epochs, totalRecords, len(matched)); err != nil {
		return err
	}

	if top > 0 {
		for i, r := range apps.TopTalkers(matched, top) {
			if _, err := fmt.Fprintf(w, "%3d. %-45s %d pkts\n", i+1, r.Key, r.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// runRemote answers the same questions through a flowqueryd daemon on
// the versioned /v1 surface: the epoch summary and filter counts come
// from /v1/epochs + /v1/flows (served off the daemon's store), the top
// listing from the live /v1/topk.
func runRemote(base string, filter recordstore.Filter, top int, w io.Writer) error {
	client := &http.Client{Timeout: 10 * time.Second}
	base = strings.TrimRight(base, "/")

	var eps query.EpochsResponse
	if err := getJSON(client, base+"/v1/epochs", &eps); err != nil {
		return fmt.Errorf("/v1/epochs: %w", err)
	}
	q := url.Values{}
	if expr := filter.String(); expr != "" {
		q.Set("filter", expr)
	}
	q.Set("limit", strconv.Itoa(query.MaxLimit))
	var flows query.FlowsResponse
	if err := getJSON(client, base+"/v1/flows?"+q.Encode(), &flows); err != nil {
		return fmt.Errorf("/v1/flows: %w", err)
	}

	// Per-epoch matched counts recovered from the flow listing. When the
	// daemon truncated the listing at its match cap, later epochs were
	// never scanned — say so instead of printing silently-partial counts.
	if flows.Limited {
		if _, err := fmt.Fprintf(w,
			"warning: daemon truncated the match listing at %d flows; counts below are partial\n",
			len(flows.Flows)); err != nil {
			return err
		}
	}
	perEpoch := map[int]int{}
	for _, fl := range flows.Flows {
		perEpoch[fl.Epoch]++
	}
	totalRecords := 0
	for _, ep := range eps.Epochs {
		totalRecords += ep.Records
		if _, err := fmt.Fprintf(w, "epoch %d  %s  %d records, %d matched\n",
			ep.Index, ep.Time, ep.Records, perEpoch[ep.Index]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "total: %d epochs, %d records, %d matched\n",
		len(eps.Epochs), totalRecords, flows.Matched); err != nil {
		return err
	}

	if top > 0 {
		tq := url.Values{"k": {strconv.Itoa(top)}}
		if expr := filter.String(); expr != "" {
			tq.Set("filter", expr)
		}
		var tk query.TopKResponse
		if err := getJSON(client, base+"/v1/topk?"+tq.Encode(), &tk); err != nil {
			return fmt.Errorf("/v1/topk: %w", err)
		}
		for i, fl := range tk.Flows {
			key := fmt.Sprintf("%s:%d -> %s:%d/%d", fl.Src, fl.Sport, fl.Dst, fl.Dport, fl.Proto)
			if _, err := fmt.Fprintf(w, "%3d. %-45s %d pkts\n", i+1, key, fl.Packets); err != nil {
				return err
			}
		}
	}
	return nil
}

func getJSON(client *http.Client, url string, out any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var env query.ErrorEnvelope
		if json.NewDecoder(resp.Body).Decode(&env) == nil && env.Error.Message != "" {
			return fmt.Errorf("status %d: %s (%s)", resp.StatusCode, env.Error.Message, env.Error.Code)
		}
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
