package main

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/flow"
	"repro/query"
	"repro/recordstore"
)

func writeStore(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "r.frec")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := recordstore.NewWriter(f)
	epoch1 := []flow.Record{
		{Key: flow.Key{SrcIP: 0x0A000001, DstIP: 2, DstPort: 443, Proto: 6}, Count: 100},
		{Key: flow.Key{SrcIP: 0x0A000002, DstIP: 2, DstPort: 80, Proto: 6}, Count: 10},
	}
	epoch2 := []flow.Record{
		{Key: flow.Key{SrcIP: 0x0A000003, DstIP: 3, DstPort: 53, Proto: 17}, Count: 7},
	}
	if err := w.WriteEpoch(time.Unix(1700000000, 0), epoch1); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteEpoch(time.Unix(1700000300, 0), epoch2); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQuerySummary(t *testing.T) {
	path := writeStore(t)
	var buf bytes.Buffer
	if err := run([]string{"-store", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "total: 2 epochs, 3 records, 3 matched") {
		t.Errorf("summary output: %q", out)
	}
}

func TestQueryFilterAndTop(t *testing.T) {
	path := writeStore(t)
	var buf bytes.Buffer
	if err := run([]string{"-store", path, "-filter", "proto=6", "-top", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "3 records, 2 matched") && !strings.Contains(out, "2 matched") {
		t.Errorf("filter output: %q", out)
	}
	if !strings.Contains(out, "100 pkts") {
		t.Errorf("top output missing largest flow: %q", out)
	}
	if strings.Contains(out, "10 pkts") {
		t.Errorf("-top 1 printed more than one flow: %q", out)
	}
}

func TestQueryErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("accepted missing -store")
	}
	if err := run([]string{"-store", "/does/not/exist"}, &buf); err == nil {
		t.Error("accepted missing file")
	}
	if err := run([]string{"-store", writeStore(t), "-filter", "bogus"}, &buf); err == nil {
		t.Error("accepted bad filter")
	}
	if err := run([]string{"-store", writeStore(t), "-remote", "http://x"}, &buf); err == nil {
		t.Error("accepted both -store and -remote")
	}
}

// TestQueryRemote drives the CLI against an in-process query handler and
// checks the output matches the local mode's shape.
func TestQueryRemote(t *testing.T) {
	path := writeStore(t)
	m, err := recordstore.OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	static, err := query.SumStore(m)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(query.NewHandler(query.Config{
		TopK:  static,
		Store: query.StaticStore(m),
	}))
	defer srv.Close()

	var buf bytes.Buffer
	if err := run([]string{"-remote", srv.URL, "-filter", "proto=6", "-top", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "total: 2 epochs, 3 records, 2 matched") {
		t.Errorf("remote summary: %q", out)
	}
	if !strings.Contains(out, "100 pkts") {
		t.Errorf("remote top missing largest flow: %q", out)
	}

	var plain bytes.Buffer
	if err := run([]string{"-remote", srv.URL}, &plain); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plain.String(), "total: 2 epochs, 3 records, 3 matched") {
		t.Errorf("remote unfiltered summary: %q", plain.String())
	}

	if err := run([]string{"-remote", "http://127.0.0.1:1/nope"}, &buf); err == nil {
		t.Error("accepted unreachable daemon")
	}
}
