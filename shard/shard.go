// Package shard provides a concurrency layer over any flowmon.Recorder:
// packets are partitioned across N independent recorder shards by a hash of
// the flow key, each shard guarded by its own mutex. Because a flow always
// lands in the same shard, every per-flow property of the underlying
// algorithm is preserved, while multiple cores can feed packets in
// parallel — the software analogue of a multi-pipeline switch ASIC.
//
// The ingestion hot path is batched: UpdateBatch routes a whole batch into
// per-shard staging buffers and drains each shard's sub-batch under a
// single lock acquisition, so the mutex is taken once per shard per batch
// instead of once per packet. An optional asynchronous mode decouples
// routing from recording entirely: each shard owns a worker goroutine fed
// by a bounded channel of sub-batches, and Flush/Close provide the
// ingestion barrier and orderly teardown.
//
// The extraction path mirrors the ingestion design: AppendRecords drains
// all shards in parallel into per-shard chunk buffers that are reused
// across epochs and concatenates them into the caller's buffer in
// deterministic shard-then-key order, so continuous epoch export neither
// stalls ingestion longer than one shard's drain nor allocates at steady
// state.
package shard

import (
	"fmt"
	"slices"
	"sync"

	"repro/flow"
	"repro/flowmon"
	"repro/internal/hashing"
	"repro/telemetry"
)

// shardSeed salts the routing hash so it is independent of the hash
// families used inside the recorders.
const shardSeed = 0x5ead

// DefaultQueueDepth is the per-shard channel capacity (in sub-batches) of
// the asynchronous mode when the constructor is given a depth <= 0.
const DefaultQueueDepth = 16

// Sidecar observes every packet applied to one shard, alongside the
// shard's recorder — the hook online summaries (topk.Tracker) ride on.
// Calls arrive from the shard's applier (the batch worker in asynchronous
// mode, the feeding goroutine otherwise) while the shard mutex is held, so
// one shard's sidecar never sees concurrent calls; a sidecar queried from
// other goroutines must synchronize internally.
type Sidecar interface {
	// Update observes one packet routed to the shard.
	Update(p flow.Packet)
	// UpdateBatch observes one applied sub-batch.
	UpdateBatch(pkts []flow.Packet)
	// Reset clears the sidecar when the recorder is reset.
	Reset()
}

// Sharded fans packets out over per-shard recorders. It implements
// flowmon.Recorder itself.
type Sharded struct {
	shards []shardSlot

	// sidecars holds one optional observer per shard; nil when unset.
	// Written by SetSidecars before ingestion, read by the appliers.
	sidecars []Sidecar

	// Ingestion instruments, nil unless SetMetrics attached them.
	// Written before ingestion like sidecars; all are nil-safe.
	mBatches       *telemetry.Counter
	mBatchPackets  *telemetry.Histogram
	mEnqueueStalls *telemetry.Counter

	// staging pools per-call routing buffers so concurrent feeders do not
	// contend on one scratch area and steady-state ingestion is
	// allocation-free. chunks recycles the sub-batch buffers whose
	// ownership passed to the async workers.
	staging sync.Pool
	chunks  sync.Pool

	// Asynchronous mode.
	async   bool
	queues  []chan task
	workers sync.WaitGroup
	// stateMu guards closed against concurrent enqueues: enqueuers hold the
	// read side, Close holds the write side while closing the queues.
	stateMu sync.RWMutex
	closed  bool

	// export is the epoch-extraction side: persistent worker goroutines
	// drain the shards in parallel into per-shard chunk buffers that are
	// reused across epochs, so steady-state AppendRecords is allocation-free.
	export exportState
}

// exportState holds the reusable export machinery. The workers are spawned
// lazily on the first multi-shard extraction and torn down by Close; after
// teardown extraction falls back to a sequential in-place drain.
type exportState struct {
	mu      sync.Mutex // serializes extractions and guards the fields below
	bufs    [][]flow.Record
	req     chan int
	done    chan struct{}
	started bool
	stopped bool
	wg      sync.WaitGroup
}

type shardSlot struct {
	mu  sync.Mutex
	rec flowmon.Recorder
	_   [40]byte // pad to keep hot locks on separate cache lines
}

// task is one unit of work on a shard queue: either a sub-batch of packets
// for the shard's recorder, or (when ack is non-nil) a flush barrier that
// the worker acknowledges once every earlier task has been applied.
type task struct {
	pkts []flow.Packet
	ack  chan<- struct{}
}

// stagingBufs is the per-call routing scratch: one packet buffer per shard.
type stagingBufs struct {
	bufs [][]flow.Packet
}

var _ flowmon.Recorder = (*Sharded)(nil)

// New builds n synchronous shards using factory to construct each shard's
// recorder. Give each shard 1/n of the total memory budget to keep
// comparisons fair.
func New(n int, factory func(i int) (flowmon.Recorder, error)) (*Sharded, error) {
	return build(n, false, 0, factory)
}

// NewAsync builds n shards in asynchronous mode: each shard runs a worker
// goroutine consuming sub-batches from a bounded channel of queueDepth
// batches (DefaultQueueDepth if <= 0). UpdateBatch only routes and
// enqueues; recording happens on the workers. Call Flush for an ingestion
// barrier and Close to stop the workers when done.
func NewAsync(n, queueDepth int, factory func(i int) (flowmon.Recorder, error)) (*Sharded, error) {
	return build(n, true, queueDepth, factory)
}

func build(n int, async bool, queueDepth int, factory func(i int) (flowmon.Recorder, error)) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	s := &Sharded{shards: make([]shardSlot, n)}
	s.staging.New = func() any {
		return &stagingBufs{bufs: make([][]flow.Packet, n)}
	}
	for i := range s.shards {
		rec, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if rec == nil {
			return nil, fmt.Errorf("shard %d: factory returned nil recorder", i)
		}
		s.shards[i].rec = rec
	}
	if async {
		if queueDepth <= 0 {
			queueDepth = DefaultQueueDepth
		}
		s.async = true
		s.queues = make([]chan task, n)
		for i := range s.queues {
			s.queues[i] = make(chan task, queueDepth)
		}
		s.workers.Add(n)
		for i := range s.queues {
			go s.worker(i)
		}
	}
	return s, nil
}

// NewUniform builds n synchronous shards of the same algorithm, splitting
// cfg's memory budget evenly.
func NewUniform(n int, a flowmon.Algorithm, cfg flowmon.Config) (*Sharded, error) {
	return New(n, uniformFactory(n, a, cfg))
}

// NewUniformAsync is NewUniform in asynchronous mode (see NewAsync).
func NewUniformAsync(n, queueDepth int, a flowmon.Algorithm, cfg flowmon.Config) (*Sharded, error) {
	return NewAsync(n, queueDepth, uniformFactory(n, a, cfg))
}

func uniformFactory(n int, a flowmon.Algorithm, cfg flowmon.Config) func(i int) (flowmon.Recorder, error) {
	per := 0
	if n > 0 {
		per = cfg.MemoryBytes / n
	}
	return func(i int) (flowmon.Recorder, error) {
		c := cfg
		c.MemoryBytes = per
		c.Seed = cfg.Seed + uint64(i)*0x9E37
		return flowmon.New(a, c)
	}
}

// SetSidecars registers one sidecar per shard (scs[i] observes shard i),
// or detaches all sidecars when scs is nil. Packets applied to a shard are
// mirrored to its sidecar under the shard mutex. Call before ingestion
// begins: the slice is read without synchronization by the appliers, so
// installing sidecars mid-stream is a data race (enqueue ordering aside,
// the async workers only observe the registration through a task sent
// after it).
func (s *Sharded) SetSidecars(scs []Sidecar) error {
	if scs != nil && len(scs) != len(s.shards) {
		return fmt.Errorf("shard: got %d sidecars for %d shards", len(scs), len(s.shards))
	}
	s.sidecars = scs
	return nil
}

// sidecar returns shard i's observer, or nil.
func (s *Sharded) sidecar(i int) Sidecar {
	if s.sidecars == nil {
		return nil
	}
	return s.sidecars[i]
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Async reports whether the recorder runs in asynchronous mode.
func (s *Sharded) Async() bool { return s.async }

func (s *Sharded) routeIdx(k flow.Key) int {
	w1, w2 := k.Words()
	return int(hashing.Reduce(hashing.KeyHash(shardSeed, w1, w2), uint64(len(s.shards))))
}

// Update processes one packet, locking only the owning shard. In
// asynchronous mode single-packet updates bypass the queues (the per-shard
// mutex serializes them against the workers); interleave Update with
// in-flight UpdateBatch traffic only if cross-path packet ordering does
// not matter, or call Flush first.
func (s *Sharded) Update(p flow.Packet) {
	i := s.routeIdx(p.Key)
	slot := &s.shards[i]
	slot.mu.Lock()
	slot.rec.Update(p)
	if sc := s.sidecar(i); sc != nil {
		sc.Update(p)
	}
	slot.mu.Unlock()
}

// UpdateBatch routes the batch into per-shard staging buffers and drains
// each shard's sub-batch under one lock acquisition. Packet order within a
// flow is preserved: a flow always routes to the same shard, and its
// packets stay in batch order inside that shard's sub-batch. In
// asynchronous mode the sub-batches are enqueued to the shard workers and
// this call returns without waiting for them to be recorded.
func (s *Sharded) UpdateBatch(pkts []flow.Packet) {
	if len(pkts) == 0 {
		return
	}
	s.mBatches.Inc()
	s.mBatchPackets.Observe(uint64(len(pkts)))
	if len(s.shards) == 1 && !s.async {
		slot := &s.shards[0]
		slot.mu.Lock()
		slot.rec.UpdateBatch(pkts)
		if sc := s.sidecar(0); sc != nil {
			sc.UpdateBatch(pkts)
		}
		slot.mu.Unlock()
		return
	}

	st := s.staging.Get().(*stagingBufs)
	for _, p := range pkts {
		i := s.routeIdx(p.Key)
		buf := st.bufs[i]
		if buf == nil {
			buf = s.chunk()
		}
		st.bufs[i] = append(buf, p)
	}

	if s.async {
		s.stateMu.RLock()
		if !s.closed {
			for i := range st.bufs {
				if len(st.bufs[i]) == 0 {
					continue
				}
				// Ownership of the buffer passes to the worker; the staging
				// slot restarts empty and the worker's buffer is recycled
				// through the pool once recorded.
				select {
				case s.queues[i] <- task{pkts: st.bufs[i]}:
				default:
					// Queue full: the workers are behind. Count the stall,
					// then block as before — backpressure is the contract.
					s.mEnqueueStalls.Inc()
					s.queues[i] <- task{pkts: st.bufs[i]}
				}
				st.bufs[i] = nil
			}
			s.stateMu.RUnlock()
			s.staging.Put(st)
			return
		}
		s.stateMu.RUnlock()
		// Closed: fall through to the synchronous drain below.
	}

	for i := range st.bufs {
		if len(st.bufs[i]) == 0 {
			continue
		}
		slot := &s.shards[i]
		slot.mu.Lock()
		slot.rec.UpdateBatch(st.bufs[i])
		if sc := s.sidecar(i); sc != nil {
			sc.UpdateBatch(st.bufs[i])
		}
		slot.mu.Unlock()
		st.bufs[i] = st.bufs[i][:0]
	}
	s.staging.Put(st)
}

// worker drains one shard's queue, applying each sub-batch under the
// shard's mutex so queries remain safe concurrently.
func (s *Sharded) worker(i int) {
	defer s.workers.Done()
	slot := &s.shards[i]
	for t := range s.queues[i] {
		if t.ack != nil {
			t.ack <- struct{}{}
			continue
		}
		slot.mu.Lock()
		slot.rec.UpdateBatch(t.pkts)
		if sc := s.sidecar(i); sc != nil {
			sc.UpdateBatch(t.pkts)
		}
		slot.mu.Unlock()
		t.pkts = t.pkts[:0]
		s.chunks.Put(&t.pkts)
	}
}

// chunk returns a recycled sub-batch buffer, or nil (append allocates) if
// the pool is empty.
func (s *Sharded) chunk() []flow.Packet {
	if v := s.chunks.Get(); v != nil {
		return (*v.(*[]flow.Packet))[:0]
	}
	return nil
}

// Flush blocks until every sub-batch enqueued before the call has been
// applied to its shard. It is the read barrier of the asynchronous mode;
// in synchronous mode (or after Close) it returns immediately. Batches
// enqueued concurrently with Flush by other goroutines may or may not be
// covered.
func (s *Sharded) Flush() {
	if !s.async {
		return
	}
	s.stateMu.RLock()
	if s.closed {
		s.stateMu.RUnlock()
		return
	}
	// One barrier task per shard; the buffered ack channel keeps workers
	// from blocking on the acknowledgement.
	ack := make(chan struct{}, len(s.queues))
	for i := range s.queues {
		s.queues[i] <- task{ack: ack}
	}
	s.stateMu.RUnlock()
	for range s.queues {
		<-ack
	}
}

// Close flushes outstanding batches and stops the shard workers, both the
// asynchronous ingestion workers and any export workers spawned by
// AppendRecords. The recorder remains fully usable afterwards: further
// updates take the synchronous locked path and further extractions drain
// the shards sequentially. Close is idempotent.
func (s *Sharded) Close() {
	s.export.mu.Lock()
	if s.export.started && !s.export.stopped {
		close(s.export.req)
	}
	s.export.stopped = true
	s.export.mu.Unlock()
	s.export.wg.Wait()

	if !s.async {
		return
	}
	s.Flush()
	s.stateMu.Lock()
	if s.closed {
		s.stateMu.Unlock()
		return
	}
	s.closed = true
	for i := range s.queues {
		close(s.queues[i])
	}
	s.stateMu.Unlock()
	s.workers.Wait()
}

// feedBatchSize bounds the batches FeedParallel pushes through the staged
// path, so replaying a large trace stages at most workers*feedBatchSize
// packets at a time instead of copying the whole stream into per-shard
// buffers (which the pools would then retain).
const feedBatchSize = 1024

// FeedParallel replays a packet stream using the given number of worker
// goroutines and blocks until every packet is processed. Each worker feeds
// its slice of the stream through the batched path in bounded batches.
func (s *Sharded) FeedParallel(pkts []flow.Packet, workers int) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(pkts) + workers - 1) / workers
	for start := 0; start < len(pkts); start += chunk {
		end := start + chunk
		if end > len(pkts) {
			end = len(pkts)
		}
		wg.Add(1)
		go func(part []flow.Packet) {
			defer wg.Done()
			for len(part) > 0 {
				n := feedBatchSize
				if n > len(part) {
					n = len(part)
				}
				s.UpdateBatch(part[:n])
				part = part[n:]
			}
		}(pkts[start:end])
	}
	wg.Wait()
	s.Flush()
}

// Records merges the records of every shard, after an ingestion barrier in
// asynchronous mode. Shard routing guarantees the same key never appears
// in two shards. The result is deterministic — shards in index order, each
// shard's records sorted by packed flow key — and allocated pre-sized in
// one step.
func (s *Sharded) Records() []flow.Record {
	return s.AppendRecords(nil)
}

// AppendRecords appends every shard's records to dst and returns the
// extended slice, in the same deterministic shard-then-key order as
// Records. The shards are drained in parallel into per-shard chunk buffers
// owned by the recorder and reused across epochs, then concatenated into
// dst with a single pre-sized grow, so exporting every epoch through one
// reused dst buffer is allocation-free at steady state.
//
// The first multi-shard extraction spawns one persistent export worker
// goroutine per shard (idle between extractions); call Close when
// discarding the recorder to stop them, as in asynchronous mode.
func (s *Sharded) AppendRecords(dst []flow.Record) []flow.Record {
	s.Flush()
	e := &s.export
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.bufs == nil {
		e.bufs = make([][]flow.Record, len(s.shards))
	}
	if len(s.shards) > 1 && !e.stopped {
		if !e.started {
			e.req = make(chan int)
			e.done = make(chan struct{}, len(s.shards))
			for w := 0; w < len(s.shards); w++ {
				e.wg.Add(1)
				go s.exportWorker()
			}
			e.started = true
		}
		for i := range s.shards {
			e.req <- i
		}
		for range s.shards {
			<-e.done
		}
	} else {
		for i := range s.shards {
			s.exportShard(i)
		}
	}
	total := 0
	for i := range e.bufs {
		total += len(e.bufs[i])
	}
	dst = slices.Grow(dst, total)
	for i := range e.bufs {
		dst = append(dst, e.bufs[i]...)
	}
	return dst
}

// exportWorker drains shard indices from the export request channel until
// Close tears the channel down.
func (s *Sharded) exportWorker() {
	defer s.export.wg.Done()
	for i := range s.export.req {
		s.exportShard(i)
		s.export.done <- struct{}{}
	}
}

// exportShard extracts one shard's records into its reused chunk buffer
// and sorts the chunk by packed flow key for deterministic output.
func (s *Sharded) exportShard(i int) {
	slot := &s.shards[i]
	slot.mu.Lock()
	s.export.bufs[i] = slot.rec.AppendRecords(s.export.bufs[i][:0])
	slot.mu.Unlock()
	sortByKey(s.export.bufs[i])
}

// sortByKey orders a shard's chunk by the canonical packed-key order
// (flow.CompareKeys). Keys are unique within a shard — routing sends a
// flow to exactly one shard and recorders report each key once — so no
// tiebreak is needed for the order to be a pure function of the record
// set.
func sortByKey(recs []flow.Record) {
	slices.SortFunc(recs, func(a, b flow.Record) int {
		return flow.CompareKeys(a.Key, b.Key)
	})
}

// EstimateSize routes the query to the owning shard, after an ingestion
// barrier in asynchronous mode.
func (s *Sharded) EstimateSize(k flow.Key) uint32 {
	s.Flush()
	slot := &s.shards[s.routeIdx(k)]
	slot.mu.Lock()
	defer slot.mu.Unlock()
	return slot.rec.EstimateSize(k)
}

// EstimateCardinality sums the per-shard estimates; shards hold disjoint
// flow populations, so the sum is the natural combiner.
func (s *Sharded) EstimateCardinality() float64 {
	s.Flush()
	var total float64
	for i := range s.shards {
		slot := &s.shards[i]
		slot.mu.Lock()
		total += slot.rec.EstimateCardinality()
		slot.mu.Unlock()
	}
	return total
}

// MemoryBytes sums the shards' footprints.
func (s *Sharded) MemoryBytes() int {
	total := 0
	for i := range s.shards {
		slot := &s.shards[i]
		slot.mu.Lock()
		total += slot.rec.MemoryBytes()
		slot.mu.Unlock()
	}
	return total
}

// OpStats sums the shards' operation counts, after an ingestion barrier in
// asynchronous mode.
func (s *Sharded) OpStats() flow.OpStats {
	s.Flush()
	var total flow.OpStats
	for i := range s.shards {
		slot := &s.shards[i]
		slot.mu.Lock()
		total = total.Add(slot.rec.OpStats())
		slot.mu.Unlock()
	}
	return total
}

// Reset clears every shard (and its sidecar, if attached), after an
// ingestion barrier in asynchronous mode.
func (s *Sharded) Reset() {
	s.Flush()
	for i := range s.shards {
		slot := &s.shards[i]
		slot.mu.Lock()
		slot.rec.Reset()
		if sc := s.sidecar(i); sc != nil {
			sc.Reset()
		}
		slot.mu.Unlock()
	}
}
