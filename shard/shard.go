// Package shard provides a concurrency layer over any flowmon.Recorder:
// packets are partitioned across N independent recorder shards by a hash of
// the flow key, each shard guarded by its own mutex. Because a flow always
// lands in the same shard, every per-flow property of the underlying
// algorithm is preserved, while multiple cores can feed packets in
// parallel — the software analogue of a multi-pipeline switch ASIC.
package shard

import (
	"fmt"
	"sync"

	"repro/flow"
	"repro/flowmon"
	"repro/internal/hashing"
)

// shardSeed salts the routing hash so it is independent of the hash
// families used inside the recorders.
const shardSeed = 0x5ead

// Sharded fans packets out over per-shard recorders. It implements
// flowmon.Recorder itself.
type Sharded struct {
	shards []shardSlot
}

type shardSlot struct {
	mu  sync.Mutex
	rec flowmon.Recorder
	_   [40]byte // pad to keep hot locks on separate cache lines
}

var _ flowmon.Recorder = (*Sharded)(nil)

// New builds n shards using factory to construct each shard's recorder.
// Give each shard 1/n of the total memory budget to keep comparisons fair.
func New(n int, factory func(i int) (flowmon.Recorder, error)) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	s := &Sharded{shards: make([]shardSlot, n)}
	for i := range s.shards {
		rec, err := factory(i)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if rec == nil {
			return nil, fmt.Errorf("shard %d: factory returned nil recorder", i)
		}
		s.shards[i].rec = rec
	}
	return s, nil
}

// NewUniform builds n shards of the same algorithm, splitting cfg's memory
// budget evenly.
func NewUniform(n int, a flowmon.Algorithm, cfg flowmon.Config) (*Sharded, error) {
	if n < 1 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	per := cfg.MemoryBytes / n
	return New(n, func(i int) (flowmon.Recorder, error) {
		c := cfg
		c.MemoryBytes = per
		c.Seed = cfg.Seed + uint64(i)*0x9E37
		return flowmon.New(a, c)
	})
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

func (s *Sharded) route(k flow.Key) *shardSlot {
	w1, w2 := k.Words()
	return &s.shards[hashing.Reduce(hashing.KeyHash(shardSeed, w1, w2), uint64(len(s.shards)))]
}

// Update processes one packet, locking only the owning shard.
func (s *Sharded) Update(p flow.Packet) {
	slot := s.route(p.Key)
	slot.mu.Lock()
	slot.rec.Update(p)
	slot.mu.Unlock()
}

// FeedParallel replays a packet stream using the given number of worker
// goroutines and blocks until every packet is processed.
func (s *Sharded) FeedParallel(pkts []flow.Packet, workers int) {
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(pkts) + workers - 1) / workers
	for start := 0; start < len(pkts); start += chunk {
		end := start + chunk
		if end > len(pkts) {
			end = len(pkts)
		}
		wg.Add(1)
		go func(part []flow.Packet) {
			defer wg.Done()
			for _, p := range part {
				s.Update(p)
			}
		}(pkts[start:end])
	}
	wg.Wait()
}

// Records merges the records of every shard. Shard routing guarantees the
// same key never appears in two shards.
func (s *Sharded) Records() []flow.Record {
	var out []flow.Record
	for i := range s.shards {
		slot := &s.shards[i]
		slot.mu.Lock()
		out = append(out, slot.rec.Records()...)
		slot.mu.Unlock()
	}
	return out
}

// EstimateSize routes the query to the owning shard.
func (s *Sharded) EstimateSize(k flow.Key) uint32 {
	slot := s.route(k)
	slot.mu.Lock()
	defer slot.mu.Unlock()
	return slot.rec.EstimateSize(k)
}

// EstimateCardinality sums the per-shard estimates; shards hold disjoint
// flow populations, so the sum is the natural combiner.
func (s *Sharded) EstimateCardinality() float64 {
	var total float64
	for i := range s.shards {
		slot := &s.shards[i]
		slot.mu.Lock()
		total += slot.rec.EstimateCardinality()
		slot.mu.Unlock()
	}
	return total
}

// MemoryBytes sums the shards' footprints.
func (s *Sharded) MemoryBytes() int {
	total := 0
	for i := range s.shards {
		slot := &s.shards[i]
		slot.mu.Lock()
		total += slot.rec.MemoryBytes()
		slot.mu.Unlock()
	}
	return total
}

// OpStats sums the shards' operation counts.
func (s *Sharded) OpStats() flow.OpStats {
	var total flow.OpStats
	for i := range s.shards {
		slot := &s.shards[i]
		slot.mu.Lock()
		total = total.Add(slot.rec.OpStats())
		slot.mu.Unlock()
	}
	return total
}

// Reset clears every shard.
func (s *Sharded) Reset() {
	for i := range s.shards {
		slot := &s.shards[i]
		slot.mu.Lock()
		slot.rec.Reset()
		slot.mu.Unlock()
	}
}
