package shard

import (
	"testing"

	"repro/flow"
	"repro/flowmon"
	"repro/trace"
)

// TestRecordsDeterministic pins the export ordering contract: Records and
// AppendRecords return shards in index order with each shard's chunk
// sorted by packed flow key, so repeated extractions are byte-identical
// even when the underlying recorder enumerates a Go map (SpaceSaving,
// HashPipe, sampled NetFlow).
func TestRecordsDeterministic(t *testing.T) {
	tr, err := trace.Generate(trace.Campus, 3000, 11)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(11)

	for _, a := range []flowmon.Algorithm{flowmon.AlgorithmSpaceSaving, flowmon.AlgorithmHashFlow} {
		t.Run(a.String(), func(t *testing.T) {
			s, err := NewUniform(4, a, flowmon.Config{MemoryBytes: 64 << 10, Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.UpdateBatch(pkts)

			first := s.Records()
			if len(first) == 0 {
				t.Fatal("no records")
			}
			for round := 0; round < 3; round++ {
				again := s.Records()
				if len(again) != len(first) {
					t.Fatalf("round %d: %d records, want %d", round, len(again), len(first))
				}
				for i := range again {
					if again[i] != first[i] {
						t.Fatalf("round %d: record %d = %+v, want %+v", round, i, again[i], first[i])
					}
				}
			}

			// AppendRecords must agree with Records and respect existing
			// dst content.
			prefix := flow.Record{Key: flow.Key{SrcIP: 0xFFFFFFFF}, Count: 1}
			out := s.AppendRecords([]flow.Record{prefix})
			if out[0] != prefix {
				t.Fatalf("AppendRecords clobbered dst prefix: %+v", out[0])
			}
			if len(out)-1 != len(first) {
				t.Fatalf("AppendRecords added %d records, want %d", len(out)-1, len(first))
			}
			for i, r := range out[1:] {
				if r != first[i] {
					t.Fatalf("AppendRecords record %d = %+v, want %+v", i, r, first[i])
				}
			}

			// Each shard's chunk is key-sorted: walking the output, the key
			// order may only reset at a shard boundary, i.e. at most
			// Shards()-1 descents.
			descents := 0
			for i := 1; i < len(first); i++ {
				if keyLess(first[i].Key, first[i-1].Key) {
					descents++
				}
			}
			if descents > s.Shards()-1 {
				t.Errorf("%d key-order descents, want at most %d (shard boundaries)", descents, s.Shards()-1)
			}
		})
	}
}

func keyLess(a, b flow.Key) bool {
	a1, a2 := a.Words()
	b1, b2 := b.Words()
	if a1 != b1 {
		return a1 < b1
	}
	return a2 < b2
}

// TestRecordsPreSized pins the single-grow concatenation: a cold Records
// call performs one pre-sized allocation for the result (the per-shard
// chunk buffers are recorder-owned and warm after the first export).
func TestRecordsPreSized(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	tr, err := trace.Generate(trace.Campus, 2000, 13)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewUniform(4, flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 64 << 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.UpdateBatch(tr.Packets(13))

	s.Records() // warm chunk buffers and export workers
	var out []flow.Record
	if allocs := testing.AllocsPerRun(20, func() {
		out = s.Records()
	}); allocs > 1 {
		t.Errorf("Records allocates %.0f times, want at most 1 (the pre-sized result)", allocs)
	}
	if len(out) == 0 {
		t.Fatal("no records")
	}
}

// TestExportAfterClose verifies extraction still works (sequentially) once
// Close has torn down the export workers.
func TestExportAfterClose(t *testing.T) {
	tr, err := trace.Generate(trace.Campus, 2000, 17)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewUniform(4, flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 64 << 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	s.UpdateBatch(tr.Packets(17))

	before := s.Records()
	s.Close()
	after := s.Records()
	if len(after) != len(before) {
		t.Fatalf("Records after Close: %d records, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("record %d changed across Close: %+v vs %+v", i, after[i], before[i])
		}
	}
	s.Close() // idempotent
}
