package shard

import (
	"bytes"
	"sort"
	"sync"
	"testing"

	"repro/flow"
	"repro/flowmon"
	"repro/trace"
)

func batchTrace(t *testing.T, flows int, seed uint64) []flow.Packet {
	t.Helper()
	tr, err := trace.Generate(trace.Campus, flows, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr.Packets(seed)
}

func sortedRecords(recs []flow.Record) []flow.Record {
	sort.Slice(recs, func(i, j int) bool {
		return bytes.Compare(recs[i].Key.AppendBytes(nil), recs[j].Key.AppendBytes(nil)) < 0
	})
	return recs
}

// TestShardedBatchMatchesSequential: from a single feeder, the staged
// batch path preserves per-shard packet order, so the final state must be
// byte-identical to per-packet updates.
func TestShardedBatchMatchesSequential(t *testing.T) {
	pkts := batchTrace(t, 5000, 21)
	for _, shards := range []int{1, 4, 7} {
		seq := newSharded(t, shards)
		bat := newSharded(t, shards)

		for _, p := range pkts {
			seq.Update(p)
		}
		for i := 0; i < len(pkts); i += 333 {
			end := i + 333
			if end > len(pkts) {
				end = len(pkts)
			}
			bat.UpdateBatch(pkts[i:end])
		}

		if s, b := seq.OpStats(), bat.OpStats(); s != b {
			t.Errorf("shards=%d: OpStats diverge: %+v vs %+v", shards, s, b)
		}
		if s, b := seq.EstimateCardinality(), bat.EstimateCardinality(); s != b {
			t.Errorf("shards=%d: cardinality diverges: %v vs %v", shards, s, b)
		}
		sr, br := sortedRecords(seq.Records()), sortedRecords(bat.Records())
		if len(sr) != len(br) {
			t.Fatalf("shards=%d: record counts diverge: %d vs %d", shards, len(sr), len(br))
		}
		for i := range sr {
			if sr[i] != br[i] {
				t.Fatalf("shards=%d: record %d diverges: %+v vs %+v", shards, i, sr[i], br[i])
			}
		}
	}
}

// TestAsyncMatchesSync: with a single feeder each shard queue receives its
// sub-batches in feed order, so after the Flush barrier the async pipeline
// is byte-identical to the synchronous one.
func TestAsyncMatchesSync(t *testing.T) {
	pkts := batchTrace(t, 5000, 23)
	cfg := flowmon.Config{MemoryBytes: 256 << 10, Seed: 1}

	sync1, err := NewUniform(4, flowmon.AlgorithmHashFlow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	async1, err := NewUniformAsync(4, 8, flowmon.AlgorithmHashFlow, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer async1.Close()
	if !async1.Async() || sync1.Async() {
		t.Fatal("Async() flags wrong")
	}

	for i := 0; i < len(pkts); i += 500 {
		end := i + 500
		if end > len(pkts) {
			end = len(pkts)
		}
		sync1.UpdateBatch(pkts[i:end])
		async1.UpdateBatch(pkts[i:end])
	}
	async1.Flush()

	if s, a := sync1.OpStats(), async1.OpStats(); s != a {
		t.Errorf("OpStats diverge: sync %+v, async %+v", s, a)
	}
	sr, ar := sortedRecords(sync1.Records()), sortedRecords(async1.Records())
	if len(sr) != len(ar) {
		t.Fatalf("record counts diverge: sync %d, async %d", len(sr), len(ar))
	}
	for i := range sr {
		if sr[i] != ar[i] {
			t.Fatalf("record %d diverges: sync %+v, async %+v", i, sr[i], ar[i])
		}
	}
}

// TestAsyncCloseSemantics: Close is idempotent, and a closed recorder
// remains usable through the synchronous fallback path.
func TestAsyncCloseSemantics(t *testing.T) {
	s, err := NewUniformAsync(4, 0, flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 128 << 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pkts := batchTrace(t, 1000, 29)

	s.UpdateBatch(pkts[:500])
	s.Close()
	s.Close() // idempotent
	s.Flush() // no-op after Close

	s.UpdateBatch(pkts[500:]) // falls back to the synchronous path
	s.Update(pkts[0])

	if got, want := s.OpStats().Packets, uint64(len(pkts)+1); got != want {
		t.Errorf("processed %d packets, want %d", got, want)
	}
	if len(s.Records()) == 0 {
		t.Error("no records after Close")
	}
}

// TestConcurrentBatchRace is the race-detector stress test: concurrent
// batched writers against concurrent readers, in both modes. Run with
// -race in CI.
func TestConcurrentBatchRace(t *testing.T) {
	pkts := batchTrace(t, 4000, 31)
	for _, mode := range []string{"sync", "async"} {
		t.Run(mode, func(t *testing.T) {
			var s *Sharded
			var err error
			cfg := flowmon.Config{MemoryBytes: 256 << 10, Seed: 5}
			if mode == "async" {
				s, err = NewUniformAsync(4, 4, flowmon.AlgorithmHashFlow, cfg)
			} else {
				s, err = NewUniform(4, flowmon.AlgorithmHashFlow, cfg)
			}
			if err != nil {
				t.Fatal(err)
			}

			const writers = 4
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					part := pkts[w*len(pkts)/writers : (w+1)*len(pkts)/writers]
					for i := 0; i < len(part); i += 64 {
						end := i + 64
						if end > len(part) {
							end = len(part)
						}
						s.UpdateBatch(part[i:end])
					}
				}(w)
			}
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						_ = s.Records()
						_ = s.EstimateSize(pkts[i].Key)
						_ = s.EstimateCardinality()
						_ = s.OpStats()
					}
				}()
			}
			wg.Wait()
			s.Close()

			if got := s.OpStats().Packets; got != uint64(len(pkts)) {
				t.Errorf("processed %d packets, want %d", got, len(pkts))
			}
		})
	}
}

// TestFeedParallelBatchedPath: FeedParallel now rides the batched pipeline
// and must still deliver every packet exactly once.
func TestFeedParallelBatchedPath(t *testing.T) {
	pkts := batchTrace(t, 3000, 37)
	s, err := NewUniformAsync(4, 8, flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 256 << 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.FeedParallel(pkts, 4)
	if got := s.OpStats().Packets; got != uint64(len(pkts)) {
		t.Errorf("processed %d packets, want %d", got, len(pkts))
	}
}
