package shard

import (
	"sync"
	"testing"

	"repro/flow"
	"repro/flowmon"
)

// countingSidecar tallies observed packets per shard path.
type countingSidecar struct {
	mu      sync.Mutex
	packets uint64
	resets  int
}

func (c *countingSidecar) Update(p flow.Packet) {
	c.mu.Lock()
	c.packets++
	c.mu.Unlock()
}

func (c *countingSidecar) UpdateBatch(pkts []flow.Packet) {
	c.mu.Lock()
	c.packets += uint64(len(pkts))
	c.mu.Unlock()
}

func (c *countingSidecar) Reset() {
	c.mu.Lock()
	c.resets++
	c.packets = 0
	c.mu.Unlock()
}

func (c *countingSidecar) total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.packets
}

func sidecarSum(scs []*countingSidecar) uint64 {
	var sum uint64
	for _, c := range scs {
		sum += c.total()
	}
	return sum
}

// TestSidecarsObserveEveryPath checks that every ingest path — single
// Update, the single-shard fast path, the staged sync drain and the async
// workers — mirrors its packets to the shard's sidecar, and that Reset
// propagates.
func TestSidecarsObserveEveryPath(t *testing.T) {
	pkts := batchTrace(t, 1500, 21)
	cfg := flowmon.Config{MemoryBytes: 1 << 18, Seed: 1}

	cases := []struct {
		name   string
		shards int
		async  bool
	}{
		{"single-shard-sync", 1, false},
		{"multi-shard-sync", 4, false},
		{"multi-shard-async", 4, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var (
				s   *Sharded
				err error
			)
			if tc.async {
				s, err = NewUniformAsync(tc.shards, 0, flowmon.AlgorithmHashFlow, cfg)
			} else {
				s, err = NewUniform(tc.shards, flowmon.AlgorithmHashFlow, cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			if err := s.SetSidecars(make([]Sidecar, tc.shards+1)); err == nil {
				t.Fatal("accepted sidecar slice of the wrong length")
			}
			scs := make([]*countingSidecar, tc.shards)
			reg := make([]Sidecar, tc.shards)
			for i := range scs {
				scs[i] = &countingSidecar{}
				reg[i] = scs[i]
			}
			if err := s.SetSidecars(reg); err != nil {
				t.Fatal(err)
			}

			// Half through the batched path, half through single updates.
			half := len(pkts) / 2
			const batch = 128
			for i := 0; i < half; i += batch {
				end := i + batch
				if end > half {
					end = half
				}
				s.UpdateBatch(pkts[i:end])
			}
			for _, p := range pkts[half:] {
				s.Update(p)
			}
			s.Flush()

			if got := sidecarSum(scs); got != uint64(len(pkts)) {
				t.Fatalf("sidecars observed %d packets, want %d", got, len(pkts))
			}
			if got := s.OpStats().Packets; got != uint64(len(pkts)) {
				t.Fatalf("recorder saw %d packets, want %d", got, len(pkts))
			}

			s.Reset()
			for i, c := range scs {
				c.mu.Lock()
				resets := c.resets
				c.mu.Unlock()
				if resets != 1 {
					t.Errorf("sidecar %d reset %d times, want 1", i, resets)
				}
			}
			if got := sidecarSum(scs); got != 0 {
				t.Fatalf("sidecars hold %d packets after Reset", got)
			}

			// Detach: further traffic must not reach the sidecars.
			if err := s.SetSidecars(nil); err != nil {
				t.Fatal(err)
			}
			s.UpdateBatch(pkts[:batch])
			s.Flush()
			if got := sidecarSum(scs); got != 0 {
				t.Fatalf("detached sidecars observed %d packets", got)
			}
		})
	}
}
