package shard

import (
	"strconv"

	"repro/telemetry"
)

// Metrics carries the ingestion-path instruments of a Sharded
// recorder. The hot-path cost is two atomic adds per UpdateBatch call
// (not per packet), and zero when no metrics are attached — every
// instrument is nil-safe.
type Metrics struct {
	// Batches counts UpdateBatch calls.
	Batches *telemetry.Counter
	// BatchPackets is the packet count per UpdateBatch call — the
	// realized ingest batch size.
	BatchPackets *telemetry.Histogram
	// EnqueueStalls counts asynchronous sub-batch enqueues that found
	// the shard queue full and had to block: sustained growth means
	// the workers cannot keep up with the feeders.
	EnqueueStalls *telemetry.Counter
}

// NewMetrics registers the shard instruments under the given label
// pairs and returns them for SetMetrics.
func NewMetrics(reg *telemetry.Registry, labelPairs ...string) *Metrics {
	return &Metrics{
		Batches: reg.Counter(
			telemetry.Name("shard_batches_total", labelPairs...),
			"UpdateBatch calls"),
		BatchPackets: reg.Histogram(
			telemetry.Name("shard_batch_packets", labelPairs...),
			"packets per UpdateBatch call"),
		EnqueueStalls: reg.Counter(
			telemetry.Name("shard_enqueue_stalls_total", labelPairs...),
			"async sub-batch enqueues that blocked on a full shard queue"),
	}
}

// SetMetrics attaches instruments to the ingestion path. Call before
// ingestion begins, like SetSidecars: the fields are read without
// synchronization by concurrent feeders.
func (s *Sharded) SetMetrics(m *Metrics) {
	if m == nil {
		s.mBatches, s.mBatchPackets, s.mEnqueueStalls = nil, nil, nil
		return
	}
	s.mBatches = m.Batches
	s.mBatchPackets = m.BatchPackets
	s.mEnqueueStalls = m.EnqueueStalls
}

// RegisterMetrics exposes the asynchronous queue depths as scrape-time
// gauges (shard_queue_len per shard plus the shared capacity). No-op
// for synchronous recorders, which have no queues.
func (s *Sharded) RegisterMetrics(reg *telemetry.Registry, labelPairs ...string) {
	if !s.async {
		return
	}
	reg.RegisterSampler(func(e *telemetry.Expo) {
		name := func(base string, extra ...string) string {
			return telemetry.Name(base, append(append([]string{}, labelPairs...), extra...)...)
		}
		if len(s.queues) > 0 {
			e.Gauge(name("shard_queue_cap"), "per-shard queue capacity (sub-batches)",
				float64(cap(s.queues[0])))
		}
		for i, q := range s.queues {
			e.Gauge(name("shard_queue_len", "shard", strconv.Itoa(i)),
				"sub-batches waiting on one shard queue", float64(len(q)))
		}
	})
}
