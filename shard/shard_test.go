package shard

import (
	"errors"
	"sync"
	"testing"

	"repro/flow"
	"repro/flowmon"
	"repro/metrics"
	"repro/trace"
)

func newSharded(t *testing.T, n int) *Sharded {
	t.Helper()
	s, err := NewUniform(n, flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 256 << 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := NewUniform(0, flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 1 << 12}); err == nil {
		t.Error("accepted 0 shards")
	}
	if _, err := New(0, nil); err == nil {
		t.Error("New accepted 0 shards")
	}
	if _, err := New(2, func(int) (flowmon.Recorder, error) { return nil, nil }); err == nil {
		t.Error("accepted nil recorder from factory")
	}
	wantErr := errors.New("boom")
	if _, err := New(2, func(int) (flowmon.Recorder, error) { return nil, wantErr }); !errors.Is(err, wantErr) {
		t.Errorf("factory error not propagated: %v", err)
	}
}

func TestSingleFlowLandsInOneShard(t *testing.T) {
	s := newSharded(t, 8)
	k := flow.Key{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4, Proto: 6}
	for i := 0; i < 100; i++ {
		s.Update(flow.Packet{Key: k})
	}
	if got := s.EstimateSize(k); got != 100 {
		t.Errorf("EstimateSize = %d, want 100", got)
	}
	recs := s.Records()
	if len(recs) != 1 || recs[0].Count != 100 {
		t.Errorf("Records = %v", recs)
	}
}

func TestRecordsDisjointAcrossShards(t *testing.T) {
	s := newSharded(t, 4)
	tr, err := trace.Generate(trace.ISP1, 3000, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Packets(5) {
		s.Update(p)
	}
	seen := make(map[flow.Key]struct{})
	for _, r := range s.Records() {
		if _, dup := seen[r.Key]; dup {
			t.Fatalf("key %v reported by two shards", r.Key)
		}
		seen[r.Key] = struct{}{}
	}
}

func TestParallelFeedMatchesSerial(t *testing.T) {
	tr, err := trace.Generate(trace.ISP1, 5000, 7)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(7)
	truth := tr.Truth()

	serial := newSharded(t, 8)
	for _, p := range pkts {
		serial.Update(p)
	}
	parallel := newSharded(t, 8)
	parallel.FeedParallel(pkts, 8)

	// Within one shard, updates commute only for per-flow state when no
	// cross-flow eviction interleaves; with HashFlow the record set can
	// differ slightly in eviction order, so compare aggregate accuracy
	// instead of exact equality.
	fscSerial := metrics.FSC(serial.Records(), truth)
	fscParallel := metrics.FSC(parallel.Records(), truth)
	if diff := fscSerial - fscParallel; diff > 0.02 || diff < -0.02 {
		t.Errorf("FSC serial %.4f vs parallel %.4f", fscSerial, fscParallel)
	}
	if s, p := serial.OpStats(), parallel.OpStats(); s.Packets != p.Packets {
		t.Errorf("packet counts differ: %d vs %d", s.Packets, p.Packets)
	}
}

func TestConcurrentUpdatesRace(t *testing.T) {
	// Exercised with -race in CI: concurrent Update/Records/EstimateSize
	// must be safe.
	s := newSharded(t, 4)
	tr, err := trace.Generate(trace.ISP2, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(9)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; i < len(pkts); i += 4 {
				s.Update(pkts[i])
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = s.Records()
			_ = s.EstimateCardinality()
			_ = s.EstimateSize(pkts[i].Key)
		}
	}()
	wg.Wait()

	if got := s.OpStats().Packets; got != uint64(len(pkts)) {
		t.Errorf("processed %d packets, want %d", got, len(pkts))
	}
}

func TestCardinalitySumsShards(t *testing.T) {
	s := newSharded(t, 4)
	tr, err := trace.Generate(trace.ISP2, 4000, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Packets(11) {
		s.Update(p)
	}
	est := s.EstimateCardinality()
	if est < 3500 || est > 4500 {
		t.Errorf("cardinality estimate %.0f for 4000 flows", est)
	}
}

func TestMemoryAndReset(t *testing.T) {
	s := newSharded(t, 4)
	if got := s.MemoryBytes(); got <= 0 || got > 256<<10 {
		t.Errorf("MemoryBytes = %d", got)
	}
	s.Update(flow.Packet{Key: flow.Key{SrcIP: 1}})
	s.Reset()
	if len(s.Records()) != 0 || s.OpStats().Packets != 0 {
		t.Error("Reset incomplete")
	}
	if s.Shards() != 4 {
		t.Errorf("Shards = %d", s.Shards())
	}
}
