package repro

import (
	"io"
	"testing"
	"time"

	"repro/collector"
	"repro/flow"
	"repro/flowmon"
	"repro/netwide"
	"repro/recordstore"
	"repro/shard"
	"repro/telemetry"
	"repro/topk"
	"repro/trace"
)

// The zero-allocation contract of the export path: once the reusable
// buffers have grown to epoch size, extracting records, encoding epochs
// and merging sorted views must not allocate. These are regression tests —
// a single stray allocation per epoch at line rate is a GC pause waiting
// to happen.

// fillRecorder replays a generated trace into rec through the batched path.
func fillRecorder(t testing.TB, rec flowmon.Recorder, flows int) {
	t.Helper()
	tr, err := trace.Generate(trace.CAIDA, flows, benchSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := collector.Replay(rec, tr.Packets(benchSeed), collector.DefaultBatchSize); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRecordsAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	t.Run("HashFlow", func(t *testing.T) {
		rec, err := flowmon.New(flowmon.AlgorithmHashFlow,
			flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
		if err != nil {
			t.Fatal(err)
		}
		fillRecorder(t, rec, benchFlows)
		var buf []flow.Record
		buf = rec.AppendRecords(buf[:0])
		if len(buf) == 0 {
			t.Fatal("no records extracted")
		}
		if allocs := testing.AllocsPerRun(100, func() {
			buf = rec.AppendRecords(buf[:0])
		}); allocs != 0 {
			t.Errorf("HashFlow AppendRecords allocates %.0f times per epoch, want 0", allocs)
		}
	})

	t.Run("Sharded", func(t *testing.T) {
		s, err := shard.NewUniform(4, flowmon.AlgorithmHashFlow,
			flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		fillRecorder(t, s, benchFlows)
		var buf []flow.Record
		buf = s.AppendRecords(buf[:0])
		if len(buf) == 0 {
			t.Fatal("no records extracted")
		}
		if allocs := testing.AllocsPerRun(100, func() {
			buf = s.AppendRecords(buf[:0])
		}); allocs != 0 {
			t.Errorf("Sharded AppendRecords allocates %.0f times per epoch, want 0", allocs)
		}
	})
}

// TestEpochExportAllocFree covers the full steady-state epoch export —
// AppendRecords into a reused buffer, WriteEpoch sorting and encoding with
// writer-owned scratch — for both the plain and the sharded recorder.
func TestEpochExportAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	recs := map[string]flowmon.Recorder{}

	rec, err := flowmon.New(flowmon.AlgorithmHashFlow,
		flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
	if err != nil {
		t.Fatal(err)
	}
	recs["HashFlow"] = rec

	s, err := shard.NewUniform(4, flowmon.AlgorithmHashFlow,
		flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs["Sharded"] = s

	for name, rec := range recs {
		t.Run(name, func(t *testing.T) {
			fillRecorder(t, rec, benchFlows)
			w := recordstore.NewWriter(io.Discard)
			ts := time.Unix(42, 0)
			var buf []flow.Record
			var werr error
			export := func() {
				buf = rec.AppendRecords(buf[:0])
				werr = w.WriteEpoch(ts, buf)
			}
			export() // warm the reusable buffers
			if werr != nil {
				t.Fatal(werr)
			}
			if len(buf) < 1000 {
				t.Fatalf("only %d records, too few to exercise the radix path", len(buf))
			}
			if allocs := testing.AllocsPerRun(50, export); allocs != 0 {
				t.Errorf("epoch export allocates %.0f times per epoch, want 0", allocs)
			}
			if werr != nil {
				t.Fatal(werr)
			}
		})
	}
}

// TestMergeSortedAllocFree pins the zero-allocation contract of the k-way
// merge over key-sorted views with a reused destination buffer.
func TestMergeSortedAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	mk := func(seed uint64) []flow.Record {
		rec, err := flowmon.New(flowmon.AlgorithmHashFlow,
			flowmon.Config{MemoryBytes: benchMemory, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fillRecorder(t, rec, benchFlows)
		out := rec.Records()
		netwide.SortByKey(out)
		return out
	}
	views := []netwide.View{
		{Name: "sw1", Records: mk(1)},
		{Name: "sw2", Records: mk(2)},
		{Name: "sw3", Records: mk(3)},
	}
	var dst []flow.Record
	dst = netwide.MergeSumInto(dst[:0], views...)
	if len(dst) == 0 {
		t.Fatal("empty merge")
	}
	if allocs := testing.AllocsPerRun(50, func() {
		dst = netwide.MergeSumInto(dst[:0], views...)
	}); allocs != 0 {
		t.Errorf("MergeSumInto allocates %.0f times per merge, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		dst = netwide.MergeMaxInto(dst[:0], views...)
	}); allocs != 0 {
		t.Errorf("MergeMaxInto allocates %.0f times per merge, want 0", allocs)
	}
}

// TestHeavyHittersAppendAllocFree pins the filter-in-place heavy-hitter
// query with a reused destination buffer.
func TestHeavyHittersAppendAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow,
		flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
	if err != nil {
		t.Fatal(err)
	}
	fillRecorder(t, rec, benchFlows)
	var buf []flow.Record
	buf = flowmon.HeavyHittersAppend(buf[:0], rec, 10)
	if len(buf) == 0 {
		t.Fatal("no heavy hitters")
	}
	if allocs := testing.AllocsPerRun(100, func() {
		buf = flowmon.HeavyHittersAppend(buf[:0], rec, 10)
	}); allocs != 0 {
		t.Errorf("HeavyHittersAppend allocates %.0f times per query, want 0", allocs)
	}
}

// TestReadEpochAppendAllocFree pins allocation-free replay: decoding an
// epoch into a reused buffer must not allocate once the buffer has grown.
func TestReadEpochAppendAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow,
		flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
	if err != nil {
		t.Fatal(err)
	}
	fillRecorder(t, rec, benchFlows)
	records := rec.Records()

	const epochs = 256
	var stream writableBuffer
	w := recordstore.NewWriter(&stream)
	for e := 0; e < epochs; e++ {
		if err := w.WriteEpoch(time.Unix(int64(e), 0), records); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r := recordstore.NewReader(&stream)
	var buf []flow.Record
	// Warm: the first read grows the reader's body buffer and dst.
	ep, err := r.ReadEpochAppend(buf[:0])
	if err != nil {
		t.Fatal(err)
	}
	buf = ep.Records
	if len(buf) != len(records) {
		t.Fatalf("decoded %d records, want %d", len(buf), len(records))
	}
	var rerr error
	if allocs := testing.AllocsPerRun(100, func() {
		ep, rerr = r.ReadEpochAppend(buf[:0])
		buf = ep.Records
	}); allocs != 0 {
		t.Errorf("ReadEpochAppend allocates %.0f times per epoch, want 0", allocs)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
}

// TestAppendTopKAllocFree pins the zero-allocation contract of the live
// query snapshots: AppendTopK and AppendSorted on both a single tracker
// and a per-shard set, with reused destination buffers. The /topk request
// path sits directly on these.
func TestAppendTopKAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	tr, err := trace.Generate(trace.CAIDA, benchFlows, benchSeed)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(benchSeed)

	t.Run("Tracker", func(t *testing.T) {
		tk, err := topk.NewTracker(1024)
		if err != nil {
			t.Fatal(err)
		}
		tk.UpdateBatch(pkts)
		var buf []flow.Record
		buf = tk.AppendTopK(buf[:0], 10)
		if len(buf) != 10 {
			t.Fatalf("warm top-k returned %d records", len(buf))
		}
		if allocs := testing.AllocsPerRun(100, func() {
			buf = tk.AppendTopK(buf[:0], 10)
		}); allocs != 0 {
			t.Errorf("Tracker.AppendTopK allocates %.0f times per query, want 0", allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			buf = tk.AppendSorted(buf[:0])
		}); allocs != 0 {
			t.Errorf("Tracker.AppendSorted allocates %.0f times per query, want 0", allocs)
		}
	})

	t.Run("Set", func(t *testing.T) {
		set, err := topk.NewSet(4, 1024)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pkts {
			set.Trackers()[i%4].Update(p)
		}
		var buf []flow.Record
		buf = set.AppendTopK(buf[:0], 10)
		if len(buf) != 10 {
			t.Fatalf("warm top-k returned %d records", len(buf))
		}
		if allocs := testing.AllocsPerRun(100, func() {
			buf = set.AppendTopK(buf[:0], 10)
		}); allocs != 0 {
			t.Errorf("Set.AppendTopK allocates %.0f times per query, want 0", allocs)
		}
	})
}

// TestMappedEpochAllocFree pins allocation-free historical reads: random
// epoch access through the mapped store with a reused buffer must not
// allocate once the buffer has grown — the /flows scan loop relies on it.
func TestMappedEpochAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow,
		flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
	if err != nil {
		t.Fatal(err)
	}
	fillRecorder(t, rec, benchFlows)
	records := rec.Records()

	const epochs = 16
	var stream writableBuffer
	w := recordstore.NewWriter(&stream)
	for e := 0; e < epochs; e++ {
		if err := w.WriteEpoch(time.Unix(int64(e), 0), records); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	m, err := recordstore.NewMappedBytes(stream.b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epochs() != epochs {
		t.Fatalf("indexed %d epochs, want %d", m.Epochs(), epochs)
	}
	var buf []flow.Record
	ep, err := m.AppendEpochAt(0, buf[:0])
	if err != nil {
		t.Fatal(err)
	}
	buf = ep.Records
	if len(buf) != len(records) {
		t.Fatalf("decoded %d records, want %d", len(buf), len(records))
	}
	i := 0
	var rerr error
	if allocs := testing.AllocsPerRun(100, func() {
		ep, rerr = m.AppendEpochAt(i%epochs, buf[:0])
		buf = ep.Records
		i++
	}); allocs != 0 {
		t.Errorf("AppendEpochAt allocates %.0f times per epoch, want 0", allocs)
	}
	if rerr != nil {
		t.Fatal(rerr)
	}
}

// TestTelemetryAllocFree pins the telemetry layer's core promise: the
// instruments themselves never allocate — neither live ones on the
// update path nor the nil receivers every uninstrumented call site
// holds — and a fully instrumented sharded ingest stays exactly as
// allocation-free as a bare one.
func TestTelemetryAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by the race detector")
	}
	t.Run("Instruments", func(t *testing.T) {
		var (
			c    telemetry.Counter
			g    telemetry.Gauge
			h    telemetry.Histogram
			nilC *telemetry.Counter
			nilH *telemetry.Histogram
		)
		i := uint64(0)
		if allocs := testing.AllocsPerRun(1000, func() {
			c.Inc()
			c.Add(i)
			g.Set(int64(i))
			g.Add(1)
			h.Observe(i)
			nilC.Inc()
			nilH.Observe(i)
			i++
		}); allocs != 0 {
			t.Errorf("instrument updates allocate %.0f times, want 0", allocs)
		}
	})

	t.Run("InstrumentedIngest", func(t *testing.T) {
		s, err := shard.NewUniform(4, flowmon.AlgorithmHashFlow,
			flowmon.Config{MemoryBytes: benchMemory, Seed: benchSeed})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		s.SetMetrics(shard.NewMetrics(telemetry.NewRegistry()))
		tr, err := trace.Generate(trace.CAIDA, benchFlows, benchSeed)
		if err != nil {
			t.Fatal(err)
		}
		pkts := tr.Packets(benchSeed)
		batch := pkts[:collector.DefaultBatchSize]
		s.UpdateBatch(batch) // warm the staging pool
		if allocs := testing.AllocsPerRun(100, func() {
			s.UpdateBatch(batch)
		}); allocs != 0 {
			t.Errorf("instrumented UpdateBatch allocates %.0f times per batch, want 0", allocs)
		}
	})
}

// writableBuffer is a minimal in-memory stream: bytes written are later
// read back. Unlike bytes.Buffer it never shrinks or re-slices on read, so
// reads do not allocate.
type writableBuffer struct {
	b   []byte
	off int
}

func (w *writableBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

func (w *writableBuffer) Read(p []byte) (int, error) {
	if w.off >= len(w.b) {
		return 0, io.EOF
	}
	n := copy(p, w.b[w.off:])
	w.off += n
	return n, nil
}
