package adaptive

import (
	"testing"

	"repro/flow"
	"repro/flowmon"
	"repro/trace"
)

func newRecorder(t *testing.T, mem int) flowmon.Recorder {
	t.Helper()
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: mem, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestValidation(t *testing.T) {
	rec := newRecorder(t, 1<<14)
	if _, err := NewManager(nil, Config{Capacity: 10}, nil); err == nil {
		t.Error("accepted nil recorder")
	}
	if _, err := NewManager(rec, Config{}, nil); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := NewManager(rec, Config{Capacity: 10, HighWatermark: 1.5}, nil); err == nil {
		t.Error("accepted watermark > 1")
	}
}

func TestFlushesOnSaturation(t *testing.T) {
	// 19*512 bytes → 512 main cells; offer far more flows than capacity so
	// the watermark must trip and create multiple epochs.
	h, err := flowmon.NewHashFlow(flowmon.Config{MemoryBytes: 19 * 512, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var flushes []int
	m, err := NewManager(h, Config{
		Capacity:   h.MainCells(),
		CheckEvery: 64,
	}, func(epoch int, records []flow.Record) {
		flushes = append(flushes, len(records))
	})
	if err != nil {
		t.Fatal(err)
	}

	tr, err := trace.Generate(trace.ISP2, 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Packets(3) {
		m.Update(p)
	}
	if len(flushes) < 2 {
		t.Fatalf("expected multiple saturation flushes, got %d", len(flushes))
	}
	for i, n := range flushes {
		// Each flushed epoch should have filled a large fraction of the
		// table but never exceed its capacity.
		if n > h.MainCells() {
			t.Errorf("epoch %d flushed %d records, above capacity %d", i, n, h.MainCells())
		}
		if n < h.MainCells()/2 {
			t.Errorf("epoch %d flushed only %d records for capacity %d", i, n, h.MainCells())
		}
	}
	if m.TotalPackets() != tr.PacketCount() {
		t.Errorf("TotalPackets = %d, want %d", m.TotalPackets(), tr.PacketCount())
	}
}

func TestFlushesOnPacketBudget(t *testing.T) {
	rec := newRecorder(t, 1<<20) // huge: watermark never trips
	epochs := 0
	m, err := NewManager(rec, Config{
		Capacity:        1 << 20,
		MaxEpochPackets: 1000,
	}, func(int, []flow.Record) { epochs++ })
	if err != nil {
		t.Fatal(err)
	}
	k := flow.Key{SrcIP: 1}
	for i := 0; i < 3500; i++ {
		m.Update(flow.Packet{Key: k})
	}
	if epochs != 3 {
		t.Errorf("epochs = %d, want 3 (3500 packets / 1000 budget)", epochs)
	}
	if m.EpochPackets() != 500 {
		t.Errorf("EpochPackets = %d, want 500", m.EpochPackets())
	}
}

func TestManualFlush(t *testing.T) {
	rec := newRecorder(t, 1<<14)
	var got []flow.Record
	m, err := NewManager(rec, Config{Capacity: 1000}, func(_ int, records []flow.Record) {
		got = records
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Update(flow.Packet{Key: flow.Key{SrcIP: 7}})
	m.Update(flow.Packet{Key: flow.Key{SrcIP: 7}})
	m.Flush()
	if len(got) != 1 || got[0].Count != 2 {
		t.Errorf("flushed records = %v", got)
	}
	if m.Epoch() != 1 {
		t.Errorf("Epoch = %d, want 1", m.Epoch())
	}
	if len(m.Recorder().Records()) != 0 {
		t.Error("recorder not reset after flush")
	}
}

func TestNilFlushFunc(t *testing.T) {
	rec := newRecorder(t, 1<<14)
	m, err := NewManager(rec, Config{Capacity: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Update(flow.Packet{Key: flow.Key{SrcIP: 1}})
	m.Flush() // must not panic
	if m.Epoch() != 1 {
		t.Errorf("Epoch = %d", m.Epoch())
	}
}

func TestAccuracyPreservedAcrossEpochs(t *testing.T) {
	// With adaptive flushing, each epoch's records stay accurate even
	// though total offered flows far exceed capacity. Collect all epochs
	// and verify every reported count is exact (HashFlow main-table
	// records are exact under DisablePromotion-free operation when no
	// digest collision promotes a wrong count; tolerate a tiny fraction).
	h, err := flowmon.NewHashFlow(flowmon.Config{MemoryBytes: 19 * 1024, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(trace.Campus, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	truth := tr.Truth()

	exact, total := 0, 0
	m, err := NewManager(h, Config{Capacity: h.MainCells(), CheckEvery: 128},
		func(_ int, records []flow.Record) {
			for _, r := range records {
				total++
				if truth.Count(r.Key) >= r.Count {
					exact++
				}
			}
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Packets(7) {
		m.Update(p)
	}
	m.Flush()
	if total == 0 {
		t.Fatal("no records flushed")
	}
	if frac := float64(exact) / float64(total); frac < 0.99 {
		t.Errorf("only %.2f%% of flushed records within truth", frac*100)
	}
}
