package adaptive

import (
	"strconv"
	"sync"

	"repro/telemetry"
)

// Metrics carries the epoch-lifecycle instruments of a Manager: how
// long rotation stalls the ingest path, where drain time goes stage by
// stage (extract → flush → detect → reset), and how many drain panics
// have been swallowed. All observations happen at epoch granularity —
// the per-packet path is untouched.
type Metrics struct {
	// RotationStallNs is the ingest-visible cost of one Flush in
	// double-buffered mode: waiting for the standby recorder plus
	// handing the full one to the drain worker. If the drain worker
	// keeps up this is nanoseconds; sustained growth means rotation is
	// outpacing extraction.
	RotationStallNs *telemetry.Histogram
	// ExtractNs, FlushCbNs, ResetNs time the drain stages: record
	// extraction, the flush callback (store write, NetFlow export),
	// and the recorder+sidecar reset.
	ExtractNs *telemetry.Histogram
	FlushCbNs *telemetry.Histogram
	ResetNs   *telemetry.Histogram
	// DrainPanics mirrors Manager.DrainPanics as an exported counter.
	DrainPanics *telemetry.Counter
	// Epochs counts drained epochs.
	Epochs *telemetry.Counter

	// Per-observer detect timing, created lazily on first use because
	// observers attach independently of metrics.
	reg    *telemetry.Registry
	labels []string
	detMu  sync.Mutex
	detNs  []*telemetry.Histogram
}

// NewMetrics registers the manager instruments under the given label
// pairs and returns them for SetMetrics.
func NewMetrics(reg *telemetry.Registry, labelPairs ...string) *Metrics {
	stage := func(s string) *telemetry.Histogram {
		lbl := append(append([]string{}, labelPairs...), "stage", s)
		return reg.Histogram(telemetry.Name("adaptive_drain_stage_ns", lbl...),
			"drain worker time per epoch in one stage, ns")
	}
	return &Metrics{
		RotationStallNs: reg.Histogram(
			telemetry.Name("adaptive_rotation_stall_ns", labelPairs...),
			"ingest-visible epoch rotation stall (standby wait + handoff), ns"),
		ExtractNs: stage("extract"),
		FlushCbNs: stage("flush"),
		ResetNs:   stage("reset"),
		DrainPanics: reg.Counter(
			telemetry.Name("adaptive_drain_panics_total", labelPairs...),
			"panics recovered on the drain path"),
		Epochs: reg.Counter(
			telemetry.Name("adaptive_epochs_total", labelPairs...),
			"epochs drained"),
		reg:    reg,
		labels: labelPairs,
	}
}

// detectorNs returns the detect-stage histogram for observer i,
// labeled {stage="detect",observer="i"} so each attached observer's
// cost is visible separately. Creation is lazy (observers attach
// independently of metrics) and happens at most once per observer.
func (mm *Metrics) detectorNs(i int) *telemetry.Histogram {
	mm.detMu.Lock()
	defer mm.detMu.Unlock()
	for len(mm.detNs) <= i {
		lbl := append(append([]string{}, mm.labels...),
			"stage", "detect", "observer", strconv.Itoa(len(mm.detNs)))
		mm.detNs = append(mm.detNs, mm.reg.Histogram(
			telemetry.Name("adaptive_drain_stage_ns", lbl...),
			"drain worker time per epoch in one stage, ns"))
	}
	return mm.detNs[i]
}

// SetMetrics attaches epoch-lifecycle instruments. Call before
// ingestion begins, like AttachDetector: the field is read without
// synchronization by the drain worker and the ingest path.
func (m *Manager) SetMetrics(mm *Metrics) { m.metrics = mm }

// SetDrainErrorHook installs a callback invoked exactly once, with the
// first drain-path panic (converted to an error), from the goroutine
// that recovered it. Daemons use it to log the failure when it
// happens instead of when someone asks. Call before ingestion begins.
func (m *Manager) SetDrainErrorHook(fn func(error)) { m.onDrainErr = fn }
