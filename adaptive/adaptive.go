// Package adaptive makes flow collection adapt to traffic variation — the
// first of the two future-work directions the paper's conclusion names.
//
// A fixed measurement epoch wastes table capacity under light traffic and
// overflows under bursts. The adaptive Manager watches the recorder's load
// (its cardinality estimate against a configured capacity) and flushes an
// epoch early when the structure approaches saturation, so record accuracy
// is maintained across traffic swings without shrinking quiet-period
// epochs.
package adaptive

import (
	"fmt"

	"repro/flow"
	"repro/flowmon"
)

// FlushFunc receives the records of a completed epoch. The recorder is
// reset after the callback returns.
type FlushFunc func(epoch int, records []flow.Record)

// Config parameterizes the adaptive manager.
type Config struct {
	// Capacity is the flow capacity of the recorder (for HashFlow, its
	// main-table cell count is the natural choice).
	Capacity int
	// HighWatermark flushes the epoch when the estimated flow count
	// exceeds HighWatermark*Capacity. Default 0.9.
	HighWatermark float64
	// MaxEpochPackets flushes after this many packets even if the
	// watermark is never hit, bounding epoch length under light traffic.
	// Default 1<<22.
	MaxEpochPackets uint64
	// CheckEvery controls how often (in packets) the cardinality estimate
	// is consulted; estimation is O(table size), so it is amortized.
	// Default 4096.
	CheckEvery uint64
}

func (c Config) withDefaults() Config {
	if c.HighWatermark == 0 {
		c.HighWatermark = 0.9
	}
	if c.MaxEpochPackets == 0 {
		c.MaxEpochPackets = 1 << 22
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 4096
	}
	return c
}

// Manager wraps a recorder with adaptive epoch control.
type Manager struct {
	rec    flowmon.Recorder
	cfg    Config
	flush  FlushFunc
	epoch  int
	inEp   uint64 // packets in the current epoch
	checks uint64 // packets since the last watermark check
	total  uint64
}

// NewManager wraps rec. flush may be nil if the caller only needs the
// epoch boundaries' side effect (reset).
func NewManager(rec flowmon.Recorder, cfg Config, flush FlushFunc) (*Manager, error) {
	cfg = cfg.withDefaults()
	if rec == nil {
		return nil, fmt.Errorf("adaptive: nil recorder")
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("adaptive: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.HighWatermark <= 0 || cfg.HighWatermark > 1 {
		return nil, fmt.Errorf("adaptive: high watermark must be in (0,1], got %v", cfg.HighWatermark)
	}
	return &Manager{rec: rec, cfg: cfg, flush: flush}, nil
}

// Update processes one packet, flushing the epoch first if the recorder is
// saturated or the epoch packet budget is exhausted.
func (m *Manager) Update(p flow.Packet) {
	m.rec.Update(p)
	m.inEp++
	m.checks++
	m.total++

	if m.inEp >= m.cfg.MaxEpochPackets {
		m.Flush()
		return
	}
	if m.checks >= m.cfg.CheckEvery {
		m.checks = 0
		if m.rec.EstimateCardinality() >= m.cfg.HighWatermark*float64(m.cfg.Capacity) {
			m.Flush()
		}
	}
}

// UpdateBatch processes a batch of packets via the single-packet fallback
// adapter: epoch boundaries are checked per packet, so the manager cannot
// hand the whole batch to the recorder without risking a missed flush
// inside the batch.
func (m *Manager) UpdateBatch(pkts []flow.Packet) {
	flowmon.UpdateAll(m, pkts)
}

// Flush ends the current epoch: hands the records to the flush callback,
// resets the recorder, and starts the next epoch.
func (m *Manager) Flush() {
	if m.flush != nil {
		m.flush(m.epoch, m.rec.Records())
	}
	m.rec.Reset()
	m.epoch++
	m.inEp = 0
	m.checks = 0
}

// Epoch returns the index of the epoch currently being filled.
func (m *Manager) Epoch() int { return m.epoch }

// EpochPackets returns how many packets the current epoch has absorbed.
func (m *Manager) EpochPackets() uint64 { return m.inEp }

// TotalPackets returns the number of packets processed across all epochs.
func (m *Manager) TotalPackets() uint64 { return m.total }

// Recorder exposes the wrapped recorder for queries between flushes.
func (m *Manager) Recorder() flowmon.Recorder { return m.rec }
