// Package adaptive makes flow collection adapt to traffic variation — the
// first of the two future-work directions the paper's conclusion names.
//
// A fixed measurement epoch wastes table capacity under light traffic and
// overflows under bursts. The adaptive Manager watches the recorder's load
// (its cardinality estimate against a configured capacity) and flushes an
// epoch early when the structure approaches saturation, so record accuracy
// is maintained across traffic swings without shrinking quiet-period
// epochs.
package adaptive

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/flow"
	"repro/flowmon"
	"repro/telemetry"
)

// Sidecar is an auxiliary per-epoch structure that rotates with the
// recorder — an online summary (topk.Set, topk.Tracker) the manager clears
// at every epoch boundary. In double-buffered mode each recorder travels
// with its own sidecar: the pair swaps at rotation and the drained
// sidecar is reset by the flush worker, off the hot path.
type Sidecar interface {
	Reset()
}

// FlushFunc receives the records of a completed epoch. The recorder is
// reset after the callback returns. The records slice is owned by the
// manager and reused for the next epoch: callbacks must not retain it
// beyond the call (copy if needed), the same contract as collector.Sink.
type FlushFunc func(epoch int, records []flow.Record)

// EpochObserver consumes each drained epoch's records after the flush
// callback — the detection hook (detect.Detector implements it). It runs
// where the flush callback runs: on the background drain worker in
// double-buffered mode, inline in single-buffer mode. The records slice
// is manager-owned and must not be retained, the FlushFunc contract.
type EpochObserver interface {
	ObserveEpoch(epoch int, records []flow.Record)
}

// Config parameterizes the adaptive manager.
type Config struct {
	// Capacity is the flow capacity of the recorder (for HashFlow, its
	// main-table cell count is the natural choice).
	Capacity int
	// HighWatermark flushes the epoch when the estimated flow count
	// exceeds HighWatermark*Capacity. Default 0.9.
	HighWatermark float64
	// MaxEpochPackets flushes after this many packets even if the
	// watermark is never hit, bounding epoch length under light traffic.
	// Default 1<<22.
	MaxEpochPackets uint64
	// CheckEvery controls how often (in packets) the cardinality estimate
	// is consulted; estimation is O(table size), so it is amortized.
	// Default 4096.
	CheckEvery uint64
}

func (c Config) withDefaults() Config {
	if c.HighWatermark == 0 {
		c.HighWatermark = 0.9
	}
	if c.MaxEpochPackets == 0 {
		c.MaxEpochPackets = 1 << 22
	}
	if c.CheckEvery == 0 {
		c.CheckEvery = 4096
	}
	return c
}

// Manager wraps a recorder with adaptive epoch control. In double-buffered
// mode (NewDoubleBuffered) epoch rotation swaps the full recorder for a
// reset standby and hands extraction, the flush callback and the reset to a
// background worker, so ingestion resumes immediately while the previous
// epoch drains off the hot path.
type Manager struct {
	rec    flowmon.Recorder
	cfg    Config
	flush  FlushFunc
	epoch  int
	inEp   uint64 // packets in the current epoch
	checks uint64 // packets since the last watermark check
	total  uint64

	// Single-buffer mode reuses one export buffer across epochs.
	buf []flow.Record

	// sc is the sidecar paired with the live recorder (nil when unset);
	// live publishes it for queries from other goroutines.
	sc   Sidecar
	live atomic.Pointer[Sidecar]

	// dets observe drained epochs, in attach order (empty when unset).
	// drainErr records the first panic recovered on the drain path;
	// drainPanics counts them.
	dets        []EpochObserver
	drainErr    atomic.Pointer[error]
	drainPanics atomic.Uint64

	// metrics, onDrainErr and spanHook are optional observability hooks,
	// set before ingestion (SetMetrics, SetDrainErrorHook, SetSpanHook)
	// and read without synchronization by the ingest path and the drain
	// worker.
	metrics    *Metrics
	onDrainErr func(error)
	spanHook   func(StageSpan)

	// Double-buffered mode: the standby channel holds the reset recorder
	// (with its sidecar) ready for the next swap, jobs carries full
	// recorders to the flush worker (capacity 1: at most one epoch drains
	// behind the live one).
	standby chan buffer
	jobs    chan flushJob
	done    chan struct{}
	closed  bool
}

// buffer pairs a recorder with the sidecar that rotates alongside it.
type buffer struct {
	rec flowmon.Recorder
	sc  Sidecar
}

// flushJob is one completed epoch travelling to the flush worker.
type flushJob struct {
	epoch int
	buf   buffer
}

// NewManager wraps rec. flush may be nil if the caller only needs the
// epoch boundaries' side effect (reset).
func NewManager(rec flowmon.Recorder, cfg Config, flush FlushFunc) (*Manager, error) {
	cfg = cfg.withDefaults()
	if rec == nil {
		return nil, fmt.Errorf("adaptive: nil recorder")
	}
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("adaptive: capacity must be positive, got %d", cfg.Capacity)
	}
	if cfg.HighWatermark <= 0 || cfg.HighWatermark > 1 {
		return nil, fmt.Errorf("adaptive: high watermark must be in (0,1], got %v", cfg.HighWatermark)
	}
	return &Manager{rec: rec, cfg: cfg, flush: flush}, nil
}

// NewDoubleBuffered wraps two interchangeable recorders — active fills the
// current epoch while standby is the reset spare — and spawns the flush
// worker that extracts, reports and resets completed epochs in the
// background. The two recorders must be configured identically (same
// algorithm, memory budget and seed family) or per-epoch accuracy will
// differ between odd and even epochs. Call Close when done to stop the
// worker and drain the final epoch handoff.
func NewDoubleBuffered(active, standby flowmon.Recorder, cfg Config, flush FlushFunc) (*Manager, error) {
	if standby == nil {
		return nil, fmt.Errorf("adaptive: nil standby recorder")
	}
	m, err := NewManager(active, cfg, flush)
	if err != nil {
		return nil, err
	}
	m.standby = make(chan buffer, 1)
	m.standby <- buffer{rec: standby}
	m.jobs = make(chan flushJob, 1)
	m.done = make(chan struct{})
	go m.flushWorker()
	return m, nil
}

// AttachSidecar pairs the live recorder with a sidecar reset at every
// epoch boundary (single-buffer mode, or the live half before the first
// rotation). For double-buffered managers use AttachSidecars so both
// halves rotate. Call before ingestion begins.
func (m *Manager) AttachSidecar(sc Sidecar) error {
	if sc == nil {
		return fmt.Errorf("adaptive: nil sidecar")
	}
	if m.jobs != nil {
		return fmt.Errorf("adaptive: double-buffered manager needs AttachSidecars")
	}
	m.sc = sc
	m.live.Store(&sc)
	return nil
}

// AttachSidecars pairs each half of a double-buffered manager with a
// sidecar: active rides the recorder currently filling, standby rides the
// spare. At every rotation the pair swaps with its recorder and the
// drained sidecar is reset by the flush worker after the epoch's records
// are extracted. Call before ingestion begins (the standby half must
// still be parked, i.e. no rotation may be in flight).
func (m *Manager) AttachSidecars(active, standby Sidecar) error {
	if active == nil || standby == nil {
		return fmt.Errorf("adaptive: nil sidecar")
	}
	if m.jobs == nil {
		return fmt.Errorf("adaptive: AttachSidecars needs a double-buffered manager")
	}
	b := <-m.standby
	b.sc = standby
	m.standby <- b
	m.sc = active
	m.live.Store(&active)
	return nil
}

// AttachDetector registers an observer for every drained epoch,
// evaluated after the flush callback — on the background worker in
// double-buffered mode, so detection never touches the packet path.
// Multiple observers may be attached (a detector plus a correlator
// feeder, an exporter tap, ...); they run in attach order, each
// panic-isolated, over the same drained buffer. Call before ingestion
// begins (the registration is published to the worker by the first
// rotation's channel send). A panicking or slow observer cannot deadlock
// rotation: panics anywhere on the drain path are recovered (see
// DrainErr) and the epoch's recorder still resets and returns to
// standby.
func (m *Manager) AttachDetector(d EpochObserver) error {
	if d == nil {
		return fmt.Errorf("adaptive: nil detector")
	}
	m.dets = append(m.dets, d)
	return nil
}

// DrainErr returns the first panic recovered on the drain path (flush
// callback, detector, or reset), or nil. The drain keeps running after a
// panic — the epoch that panicked may be partially reported, but rotation
// never stalls and no later epoch is dropped.
func (m *Manager) DrainErr() error {
	if p := m.drainErr.Load(); p != nil {
		return *p
	}
	return nil
}

// DrainPanics returns how many drain-path panics have been recovered.
func (m *Manager) DrainPanics() uint64 { return m.drainPanics.Load() }

// safely runs fn, converting a panic into the manager's sticky drain
// error. It reports whether fn completed without panicking.
func (m *Manager) safely(stage string, fn func()) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			m.drainPanics.Add(1)
			if mm := m.metrics; mm != nil {
				mm.DrainPanics.Inc()
			}
			err := fmt.Errorf("adaptive: %s panicked: %v", stage, r)
			if m.drainErr.CompareAndSwap(nil, &err) {
				// First panic recovered on this manager: tell whoever
				// asked to be told, once, while it is happening.
				if hook := m.onDrainErr; hook != nil {
					hook(err)
				}
			}
		}
	}()
	fn()
	return true
}

// StageSpan is one drained epoch's stage timing summary, delivered to the
// SetSpanHook callback: how long each drain stage took and how many records
// the epoch held. Durations are wall nanoseconds; DetectNs sums over all
// attached observers.
type StageSpan struct {
	Epoch     int
	Records   int
	ExtractNs int64
	FlushNs   int64
	DetectNs  int64
	ResetNs   int64
}

// SetSpanHook installs a callback receiving a StageSpan for every epoch
// processed by the double-buffered drain worker — the feed for epoch
// timeline tracing (telemetry/events). The hook runs on the drain worker
// after the epoch's reset, never on the packet path, and must not retain
// references into the drained buffer (it receives only counts). Call
// before ingestion begins; only the first hook wins, like
// SetDrainErrorHook. Stage timing is enabled by either a hook or metrics,
// so an uninstrumented, unhooked manager still skips every clock read.
func (m *Manager) SetSpanHook(fn func(StageSpan)) {
	if m.spanHook == nil {
		m.spanHook = fn
	}
}

// Sidecar returns the sidecar paired with the recorder currently filling,
// or nil if none is attached. Safe from any goroutine: the query daemon
// reads the live summary through it while ingestion rotates underneath.
func (m *Manager) Sidecar() Sidecar {
	p := m.live.Load()
	if p == nil {
		return nil
	}
	return *p
}

// flushWorker drains completed epochs: extract into a reused buffer, run
// the callback and the detector, reset the recorder (and its sidecar) and
// return the pair as the next standby. Every stage is panic-isolated: a
// faulty callback, detector or reset marks DrainErr but the buffer always
// re-enters rotation, so one bad epoch can neither kill the worker (which
// would wedge the next Flush forever) nor drop the epochs behind it.
func (m *Manager) flushWorker() {
	defer close(m.done)
	var buf []flow.Record
	for job := range m.jobs {
		m.drain(job.epoch, job.buf, &buf)
		m.standby <- job.buf
	}
}

// drain processes one completed epoch on the worker. Stage timing runs
// when either metrics or a span hook is attached — histograms are nil-safe,
// so one clock pair per stage serves both consumers.
func (m *Manager) drain(epoch int, b buffer, buf *[]flow.Record) {
	mm := m.metrics
	timing := mm != nil || m.spanHook != nil
	sp := StageSpan{Epoch: epoch}
	stage := func(h *telemetry.Histogram, dst *int64, name string, fn func()) bool {
		if !timing {
			return m.safely(name, fn)
		}
		start := time.Now()
		ok := m.safely(name, fn)
		d := time.Since(start)
		h.ObserveDuration(d)
		*dst += d.Nanoseconds()
		return ok
	}
	var extractNs, flushNs, resetNs *telemetry.Histogram
	if mm != nil {
		extractNs, flushNs, resetNs = mm.ExtractNs, mm.FlushCbNs, mm.ResetNs
	}
	if m.flush != nil || len(m.dets) > 0 {
		extracted := stage(extractNs, &sp.ExtractNs, "extraction", func() {
			*buf = b.rec.AppendRecords((*buf)[:0])
		})
		if extracted {
			sp.Records = len(*buf)
			if m.flush != nil {
				stage(flushNs, &sp.FlushNs, "flush callback", func() { m.flush(epoch, *buf) })
			}
			for i, det := range m.dets {
				var detNs *telemetry.Histogram
				if mm != nil {
					detNs = mm.detectorNs(i)
				}
				stage(detNs, &sp.DetectNs, "detector", func() { det.ObserveEpoch(epoch, *buf) })
			}
		}
	}
	// Recorder and sidecar reset share one timing window so the ResetNs
	// histogram keeps its one-observation-per-epoch shape.
	var resetStart time.Time
	if timing {
		resetStart = time.Now()
	}
	m.safely("recorder reset", b.rec.Reset)
	if b.sc != nil {
		m.safely("sidecar reset", b.sc.Reset)
	}
	if timing {
		d := time.Since(resetStart)
		resetNs.ObserveDuration(d)
		sp.ResetNs = d.Nanoseconds()
	}
	if mm != nil {
		mm.Epochs.Inc()
	}
	if m.spanHook != nil {
		m.spanHook(sp)
	}
}

// Update processes one packet, flushing the epoch first if the recorder is
// saturated or the epoch packet budget is exhausted.
func (m *Manager) Update(p flow.Packet) {
	m.rec.Update(p)
	m.inEp++
	m.checks++
	m.total++

	if m.inEp >= m.cfg.MaxEpochPackets {
		m.Flush()
		return
	}
	if m.checks >= m.cfg.CheckEvery {
		m.checks = 0
		if m.rec.EstimateCardinality() >= m.cfg.HighWatermark*float64(m.cfg.Capacity) {
			m.Flush()
		}
	}
}

// UpdateBatch processes a batch of packets via the single-packet fallback
// adapter: epoch boundaries are checked per packet, so the manager cannot
// hand the whole batch to the recorder without risking a missed flush
// inside the batch.
func (m *Manager) UpdateBatch(pkts []flow.Packet) {
	flowmon.UpdateAll(m, pkts)
}

// Flush ends the current epoch and starts the next one. In single-buffer
// mode the records are extracted into a reused buffer, handed to the flush
// callback, and the recorder is reset inline. In double-buffered mode the
// full recorder is swapped for the reset standby and queued to the flush
// worker; Flush only blocks if the worker is still draining the previous
// epoch (rotation outpacing extraction).
func (m *Manager) Flush() {
	if m.jobs != nil && !m.closed {
		var stallStart time.Time
		if m.metrics != nil {
			stallStart = time.Now()
		}
		full := buffer{rec: m.rec, sc: m.sc}
		next := <-m.standby
		m.rec, m.sc = next.rec, next.sc
		if m.sc != nil {
			sc := m.sc
			m.live.Store(&sc)
		}
		m.jobs <- flushJob{epoch: m.epoch, buf: full}
		if mm := m.metrics; mm != nil {
			mm.RotationStallNs.ObserveDuration(time.Since(stallStart))
		}
	} else {
		if m.flush != nil || len(m.dets) > 0 {
			m.buf = m.rec.AppendRecords(m.buf[:0])
			if m.flush != nil {
				m.flush(m.epoch, m.buf)
			}
			for _, det := range m.dets {
				// Observers are auxiliary even inline: a panic must not
				// take down the caller's ingest loop.
				m.safely("detector", func() { det.ObserveEpoch(m.epoch, m.buf) })
			}
		}
		m.rec.Reset()
		if m.sc != nil {
			m.sc.Reset()
		}
		if mm := m.metrics; mm != nil {
			mm.Epochs.Inc()
		}
	}
	m.epoch++
	m.inEp = 0
	m.checks = 0
}

// Close stops the double-buffered flush worker after it has drained any
// queued epoch. It does not flush the live epoch — call Flush first if the
// partial epoch must be reported. The manager remains usable afterwards:
// further rotations flush inline, single-buffer style. Close is idempotent
// and a no-op in single-buffer mode.
func (m *Manager) Close() {
	if m.jobs == nil || m.closed {
		return
	}
	m.closed = true
	close(m.jobs)
	<-m.done
}

// Epoch returns the index of the epoch currently being filled.
func (m *Manager) Epoch() int { return m.epoch }

// EpochPackets returns how many packets the current epoch has absorbed.
func (m *Manager) EpochPackets() uint64 { return m.inEp }

// TotalPackets returns the number of packets processed across all epochs.
func (m *Manager) TotalPackets() uint64 { return m.total }

// Recorder exposes the recorder filling the current epoch for queries
// between flushes. In double-buffered mode the returned value changes at
// every rotation; call it from the ingesting goroutine only.
func (m *Manager) Recorder() flowmon.Recorder { return m.rec }
