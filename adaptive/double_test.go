package adaptive

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/flow"
	"repro/flowmon"
	"repro/trace"
)

// TestDoubleBufferedEquivalence verifies the double-buffered manager
// reports exactly the epochs the single-buffer manager reports on the same
// packet stream: same boundaries, same record sets.
func TestDoubleBufferedEquivalence(t *testing.T) {
	cfg := flowmon.Config{MemoryBytes: 19 * 1024, Seed: 5}
	tr, err := trace.Generate(trace.Campus, 15000, 9)
	if err != nil {
		t.Fatal(err)
	}
	pkts := tr.Packets(9)

	type epochSummary struct {
		n     int
		total uint64
	}
	run := func(t *testing.T, double bool) []epochSummary {
		t.Helper()
		var out []epochSummary
		flushFn := func(epoch int, records []flow.Record) {
			var total uint64
			for _, r := range records {
				total += uint64(r.Count)
			}
			out = append(out, epochSummary{n: len(records), total: total})
		}
		active, err := flowmon.NewHashFlow(cfg)
		if err != nil {
			t.Fatal(err)
		}
		acfg := Config{Capacity: active.MainCells(), CheckEvery: 128}
		var m *Manager
		if double {
			standby, err := flowmon.NewHashFlow(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, err = NewDoubleBuffered(active, standby, acfg, flushFn)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			m, err = NewManager(active, acfg, flushFn)
			if err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range pkts {
			m.Update(p)
		}
		m.Flush()
		m.Close() // waits for the worker, so out is complete and safe to read
		return out
	}

	single := run(t, false)
	double := run(t, true)
	if len(single) < 2 {
		t.Fatalf("expected multiple epochs, got %d", len(single))
	}
	if len(double) != len(single) {
		t.Fatalf("double-buffered produced %d epochs, single %d", len(double), len(single))
	}
	for i := range single {
		if single[i] != double[i] {
			t.Errorf("epoch %d diverges: single %+v, double %+v", i, single[i], double[i])
		}
	}
}

// TestDoubleBufferedFlushOffHotPath verifies rotation hands the full
// recorder off and ingestion continues into the standby: a slow flush
// callback must not block the packets that follow a rotation (until the
// next rotation needs the standby back).
func TestDoubleBufferedFlushOffHotPath(t *testing.T) {
	cfg := flowmon.Config{MemoryBytes: 1 << 14, Seed: 1}
	active, err := flowmon.NewHashFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	standby, err := flowmon.NewHashFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var inFlush atomic.Bool
	started := make(chan struct{})
	release := make(chan struct{})
	m, err := NewDoubleBuffered(active, standby, Config{
		Capacity:        1 << 20,
		MaxEpochPackets: 1000,
	}, func(int, []flow.Record) {
		inFlush.Store(true)
		close(started)
		<-release
		inFlush.Store(false)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	defer close(release)

	k := flow.Key{SrcIP: 1}
	// 1000 packets trip the rotation; the flush callback then stalls.
	for i := 0; i < 1000; i++ {
		m.Update(flow.Packet{Key: k})
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("flush callback never started")
	}
	// Ingestion must proceed while the callback is stalled.
	done := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			m.Update(flow.Packet{Key: k})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ingestion blocked behind the flush callback")
	}
	if !inFlush.Load() {
		t.Error("flush finished before ingestion resumed — epoch drain was on the hot path")
	}
	if m.EpochPackets() != 500 {
		t.Errorf("EpochPackets = %d, want 500", m.EpochPackets())
	}
}

// TestDoubleBufferedValidation covers constructor error paths and Close
// idempotence.
func TestDoubleBufferedValidation(t *testing.T) {
	cfg := flowmon.Config{MemoryBytes: 1 << 14, Seed: 1}
	rec, err := flowmon.NewHashFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDoubleBuffered(rec, nil, Config{Capacity: 10}, nil); err == nil {
		t.Error("accepted nil standby")
	}
	standby, err := flowmon.NewHashFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDoubleBuffered(nil, standby, Config{Capacity: 10}, nil); err == nil {
		t.Error("accepted nil active recorder")
	}
	m, err := NewDoubleBuffered(rec, standby, Config{Capacity: 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Update(flow.Packet{Key: flow.Key{SrcIP: 1}})
	m.Flush()
	m.Close()
	m.Close() // idempotent
	if m.Epoch() != 1 {
		t.Errorf("Epoch = %d, want 1", m.Epoch())
	}
	// After Close the manager keeps working with inline flushes.
	m.Update(flow.Packet{Key: flow.Key{SrcIP: 2}})
	m.Flush()
	if m.Epoch() != 2 {
		t.Errorf("Epoch after post-Close flush = %d, want 2", m.Epoch())
	}
}
