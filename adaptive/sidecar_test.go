package adaptive

import (
	"sync"
	"testing"

	"repro/flow"
	"repro/flowmon"
)

// testSidecar records resets.
type testSidecar struct {
	mu     sync.Mutex
	name   string
	resets int
}

func (s *testSidecar) Reset() {
	s.mu.Lock()
	s.resets++
	s.mu.Unlock()
}

func (s *testSidecar) resetCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.resets
}

func sidecarRecorder(t *testing.T) flowmon.Recorder {
	t.Helper()
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 1 << 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestDoubleBufferedSidecarRotation: sidecars swap with their recorders at
// every rotation, Sidecar() always reports the live half, and the drained
// half is reset by the flush worker.
func TestDoubleBufferedSidecarRotation(t *testing.T) {
	a, b := &testSidecar{name: "a"}, &testSidecar{name: "b"}
	m, err := NewDoubleBuffered(sidecarRecorder(t), sidecarRecorder(t),
		Config{Capacity: 1024}, func(int, []flow.Record) {})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sidecar() != nil {
		t.Fatal("unattached manager reports a sidecar")
	}
	if err := m.AttachSidecar(a); err == nil {
		t.Fatal("double-buffered manager accepted single AttachSidecar")
	}
	if err := m.AttachSidecars(a, b); err != nil {
		t.Fatal(err)
	}
	if got := m.Sidecar(); got != a {
		t.Fatalf("live sidecar = %v, want a", got)
	}

	m.Update(flow.Packet{Key: flow.Key{SrcIP: 1}})
	m.Flush() // epoch 0 drains with sidecar a; b goes live
	if got := m.Sidecar(); got != b {
		t.Fatalf("after first rotation live sidecar = %v, want b", got)
	}
	m.Flush() // epoch 1 drains with b; a (already reset) returns live
	if got := m.Sidecar(); got != a {
		t.Fatalf("after second rotation live sidecar = %v, want a", got)
	}
	m.Close()
	if a.resetCount() != 1 {
		t.Errorf("sidecar a reset %d times, want 1", a.resetCount())
	}
	if b.resetCount() != 1 {
		t.Errorf("sidecar b reset %d times, want 1", b.resetCount())
	}

	// After Close rotations flush inline; the live sidecar still resets.
	m.Flush()
	if a.resetCount() != 2 {
		t.Errorf("inline rotation after Close: sidecar a reset %d times, want 2", a.resetCount())
	}
}

// TestSingleBufferSidecar: in single-buffer mode the attached sidecar is
// reset inline at every flush.
func TestSingleBufferSidecar(t *testing.T) {
	sc := &testSidecar{name: "solo"}
	m, err := NewManager(sidecarRecorder(t), Config{Capacity: 1024}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AttachSidecars(sc, sc); err == nil {
		t.Fatal("single-buffer manager accepted AttachSidecars")
	}
	if err := m.AttachSidecar(nil); err == nil {
		t.Fatal("accepted nil sidecar")
	}
	if err := m.AttachSidecar(sc); err != nil {
		t.Fatal(err)
	}
	if got := m.Sidecar(); got != sc {
		t.Fatalf("live sidecar = %v, want solo", got)
	}
	m.Flush()
	m.Flush()
	if sc.resetCount() != 2 {
		t.Errorf("sidecar reset %d times, want 2", sc.resetCount())
	}
}
