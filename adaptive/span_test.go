package adaptive

import (
	"sync"
	"testing"

	"repro/flow"
	"repro/flowmon"
	"repro/trace"
)

// TestSpanHook verifies the drain worker delivers one StageSpan per epoch
// with the stages that ran actually timed, without metrics attached.
func TestSpanHook(t *testing.T) {
	cfg := flowmon.Config{MemoryBytes: 19 * 1024, Seed: 5}
	active, err := flowmon.NewHashFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	standby, err := flowmon.NewHashFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var flushed int
	m, err := NewDoubleBuffered(active, standby,
		Config{Capacity: active.MainCells(), CheckEvery: 128},
		func(epoch int, records []flow.Record) { flushed++ })
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu    sync.Mutex
		spans []StageSpan
	)
	m.SetSpanHook(func(sp StageSpan) {
		mu.Lock()
		spans = append(spans, sp)
		mu.Unlock()
	})

	tr, err := trace.Generate(trace.Campus, 15000, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.Packets(9) {
		m.Update(p)
	}
	m.Flush()
	m.Close() // drains the worker, so spans is complete

	mu.Lock()
	defer mu.Unlock()
	if len(spans) < 2 {
		t.Fatalf("got %d spans, want multiple epochs", len(spans))
	}
	if len(spans) != flushed {
		t.Fatalf("%d spans for %d flushed epochs", len(spans), flushed)
	}
	for i, sp := range spans {
		if sp.Epoch != i {
			t.Errorf("span %d: epoch = %d", i, sp.Epoch)
		}
		if sp.Records <= 0 {
			t.Errorf("span %d: records = %d, want > 0", i, sp.Records)
		}
		if sp.ExtractNs <= 0 || sp.FlushNs < 0 || sp.ResetNs <= 0 {
			t.Errorf("span %d: timings %+v", i, sp)
		}
		if sp.DetectNs != 0 {
			t.Errorf("span %d: detect timed with no observers: %+v", i, sp)
		}
	}
}

// TestSpanHookFirstWins matches the SetDrainErrorHook contract.
func TestSpanHookFirstWins(t *testing.T) {
	rec, err := flowmon.NewHashFlow(flowmon.Config{MemoryBytes: 19 * 512, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(rec, Config{Capacity: rec.MainCells()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := func(StageSpan) {}
	m.SetSpanHook(first)
	m.SetSpanHook(func(StageSpan) { t.Fatal("second hook installed") })
	if m.spanHook == nil {
		t.Fatal("no hook installed")
	}
}
