package adaptive

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/flow"
	"repro/flowmon"
)

// recordingDetector logs every observed epoch, optionally panicking or
// stalling first.
type recordingDetector struct {
	mu       sync.Mutex
	epochs   []int
	counts   []int
	panicAt  func(epoch int) bool
	delay    time.Duration
	observed atomic.Uint64
}

func (d *recordingDetector) ObserveEpoch(epoch int, records []flow.Record) {
	if d.delay > 0 {
		time.Sleep(d.delay)
	}
	d.mu.Lock()
	d.epochs = append(d.epochs, epoch)
	d.counts = append(d.counts, len(records))
	d.mu.Unlock()
	d.observed.Add(1)
	if d.panicAt != nil && d.panicAt(epoch) {
		panic("detector exploded")
	}
}

func (d *recordingDetector) snapshot() ([]int, []int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int(nil), d.epochs...), append([]int(nil), d.counts...)
}

func detRecorder(t testing.TB) flowmon.Recorder {
	t.Helper()
	rec, err := flowmon.New(flowmon.AlgorithmHashFlow, flowmon.Config{MemoryBytes: 1 << 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestAttachDetectorObservesDrainedEpochs: every drained epoch reaches
// the detector with the same records the flush callback saw, in order.
func TestAttachDetectorObservesDrainedEpochs(t *testing.T) {
	var flushed []int
	m, err := NewDoubleBuffered(detRecorder(t), detRecorder(t), Config{Capacity: 1 << 20},
		func(epoch int, records []flow.Record) {
			flushed = append(flushed, len(records))
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AttachDetector(nil); err == nil {
		t.Fatal("accepted nil detector")
	}
	det := &recordingDetector{}
	if err := m.AttachDetector(det); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 5; e++ {
		for i := 0; i <= e; i++ {
			m.Update(flow.Packet{Key: flow.Key{SrcIP: uint32(100*e + i)}})
		}
		m.Flush()
	}
	m.Close() // drains the worker; flushed and det are complete
	epochs, counts := det.snapshot()
	if want := []int{0, 1, 2, 3, 4}; len(epochs) != len(want) {
		t.Fatalf("detector saw epochs %v", epochs)
	}
	for e, ep := range epochs {
		if ep != e {
			t.Errorf("observation %d was epoch %d", e, ep)
		}
		if counts[e] != flushed[e] {
			t.Errorf("epoch %d: detector saw %d records, flush saw %d", e, counts[e], flushed[e])
		}
		if counts[e] != e+1 {
			t.Errorf("epoch %d: %d records, want %d", e, counts[e], e+1)
		}
	}
	if err := m.DrainErr(); err != nil {
		t.Errorf("clean run reports drain error: %v", err)
	}
}

// TestAttachMultipleObservers: several observers ride the same drain, in
// attach order, each seeing every epoch — and one of them panicking
// never starves the others.
func TestAttachMultipleObservers(t *testing.T) {
	m, err := NewDoubleBuffered(detRecorder(t), detRecorder(t), Config{Capacity: 1 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	first := &recordingDetector{panicAt: func(epoch int) bool { return epoch == 1 }}
	second := &recordingDetector{}
	if err := m.AttachDetector(first); err != nil {
		t.Fatal(err)
	}
	if err := m.AttachDetector(second); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		m.Update(flow.Packet{Key: flow.Key{SrcIP: uint32(e + 1)}})
		m.Flush()
	}
	m.Close()
	fe, _ := first.snapshot()
	se, _ := second.snapshot()
	want := []int{0, 1, 2}
	for _, got := range [][]int{fe, se} {
		if len(got) != len(want) {
			t.Fatalf("observer saw epochs %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("observer saw epochs %v, want %v", got, want)
			}
		}
	}
	if err := m.DrainErr(); err == nil || !strings.Contains(err.Error(), "detector panicked") {
		t.Errorf("first observer's panic not surfaced: %v", err)
	}
	if got := m.DrainPanics(); got != 1 {
		t.Errorf("DrainPanics() = %d, want 1", got)
	}
}

// TestDetectorWithoutFlushStillObserves: a manager with no flush
// callback still extracts for the detector.
func TestDetectorWithoutFlushStillObserves(t *testing.T) {
	m, err := NewDoubleBuffered(detRecorder(t), detRecorder(t), Config{Capacity: 1 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	det := &recordingDetector{}
	if err := m.AttachDetector(det); err != nil {
		t.Fatal(err)
	}
	m.Update(flow.Packet{Key: flow.Key{SrcIP: 1}})
	m.Flush()
	m.Close()
	if _, counts := det.snapshot(); len(counts) != 1 || counts[0] != 1 {
		t.Fatalf("detector saw %v", counts)
	}
}

// TestDetectorPanicDoesNotDeadlockRotation: a detector that panics on
// every epoch must not kill the drain worker, wedge a later Flush, or
// drop any epoch — and the recorder must still reset between epochs.
func TestDetectorPanicDoesNotDeadlockRotation(t *testing.T) {
	var flushedCounts []int
	m, err := NewDoubleBuffered(detRecorder(t), detRecorder(t), Config{Capacity: 1 << 20},
		func(epoch int, records []flow.Record) {
			flushedCounts = append(flushedCounts, len(records))
		})
	if err != nil {
		t.Fatal(err)
	}
	det := &recordingDetector{panicAt: func(int) bool { return true }}
	if err := m.AttachDetector(det); err != nil {
		t.Fatal(err)
	}
	const epochs = 20
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := 0; e < epochs; e++ {
			m.Update(flow.Packet{Key: flow.Key{SrcIP: uint32(e)}})
			m.Flush()
		}
		m.Close()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("rotation deadlocked behind a panicking detector")
	}
	if len(flushedCounts) != epochs {
		t.Fatalf("flushed %d epochs, want %d", len(flushedCounts), epochs)
	}
	for e, n := range flushedCounts {
		if n != 1 {
			t.Errorf("epoch %d flushed %d records, want 1 (recorder not reset?)", e, n)
		}
	}
	if got := det.observed.Load(); got != epochs {
		t.Errorf("detector observed %d epochs, want %d", got, epochs)
	}
	if got := m.DrainPanics(); got != epochs {
		t.Errorf("DrainPanics = %d, want %d", got, epochs)
	}
	if err := m.DrainErr(); err == nil || !strings.Contains(err.Error(), "detector panicked") {
		t.Errorf("DrainErr = %v", err)
	}
}

// TestSidecarPanicDoesNotDeadlockRotation: a sidecar whose Reset panics
// must not kill the worker either — the buffer still returns to standby.
func TestSidecarPanicDoesNotDeadlockRotation(t *testing.T) {
	m, err := NewDoubleBuffered(detRecorder(t), detRecorder(t), Config{Capacity: 1 << 20},
		func(int, []flow.Record) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AttachSidecars(panicSidecar{}, panicSidecar{}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for e := 0; e < 10; e++ {
			m.Update(flow.Packet{Key: flow.Key{SrcIP: 1}})
			m.Flush()
		}
		m.Close()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("rotation deadlocked behind a panicking sidecar")
	}
	if m.DrainPanics() == 0 {
		t.Error("sidecar panics were not recorded")
	}
}

type panicSidecar struct{}

func (panicSidecar) Reset() { panic("sidecar exploded") }

// TestSlowDetectorDoesNotDropEpochs: a detector slower than the epoch
// cadence backpressures rotation (the standby handoff) but every epoch
// is still evaluated exactly once, in order.
func TestSlowDetectorDoesNotDropEpochs(t *testing.T) {
	m, err := NewDoubleBuffered(detRecorder(t), detRecorder(t), Config{Capacity: 1 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	det := &recordingDetector{delay: 20 * time.Millisecond}
	if err := m.AttachDetector(det); err != nil {
		t.Fatal(err)
	}
	const epochs = 10
	for e := 0; e < epochs; e++ {
		m.Update(flow.Packet{Key: flow.Key{SrcIP: uint32(e)}})
		m.Flush()
	}
	m.Close()
	eps, _ := det.snapshot()
	if len(eps) != epochs {
		t.Fatalf("slow detector saw %d epochs, want %d", len(eps), epochs)
	}
	for i, e := range eps {
		if e != i {
			t.Fatalf("epochs out of order: %v", eps)
		}
	}
	if err := m.DrainErr(); err != nil {
		t.Errorf("slow run reports drain error: %v", err)
	}
}

// TestDetectorStressWithQueries drives rotations from one goroutine
// while others hammer the query-side surfaces and the detector
// intermittently panics — the race detector's view of the drain path.
func TestDetectorStressWithQueries(t *testing.T) {
	m, err := NewDoubleBuffered(detRecorder(t), detRecorder(t), Config{Capacity: 1 << 20},
		func(int, []flow.Record) {})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := &testSidecar{name: "a"}, &testSidecar{name: "b"}
	if err := m.AttachSidecars(sa, sb); err != nil {
		t.Fatal(err)
	}
	det := &recordingDetector{panicAt: func(e int) bool { return e%3 == 0 }}
	if err := m.AttachDetector(det); err != nil {
		t.Fatal(err)
	}

	const epochs = 50
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.Sidecar()
					_ = m.DrainErr()
					_ = m.DrainPanics()
				}
			}
		}()
	}
	for e := 0; e < epochs; e++ {
		for i := 0; i < 20; i++ {
			m.Update(flow.Packet{Key: flow.Key{SrcIP: uint32(i)}})
		}
		m.Flush()
	}
	m.Close()
	close(stop)
	wg.Wait()

	if got := det.observed.Load(); got != epochs {
		t.Errorf("detector observed %d epochs, want %d", got, epochs)
	}
	if got, want := m.DrainPanics(), uint64((epochs+2)/3); got != want {
		t.Errorf("DrainPanics = %d, want %d", got, want)
	}
}

// TestSingleBufferDetector: inline mode evaluates the detector on the
// flushing goroutine and recovers its panics there too.
func TestSingleBufferDetector(t *testing.T) {
	m, err := NewManager(detRecorder(t), Config{Capacity: 1 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	det := &recordingDetector{panicAt: func(e int) bool { return e == 1 }}
	if err := m.AttachDetector(det); err != nil {
		t.Fatal(err)
	}
	for e := 0; e < 3; e++ {
		m.Update(flow.Packet{Key: flow.Key{SrcIP: 9}})
		m.Flush() // epoch 1's panic must not escape to this caller
	}
	if eps, _ := det.snapshot(); len(eps) != 3 {
		t.Fatalf("inline detector saw %v", eps)
	}
	if m.DrainPanics() != 1 {
		t.Errorf("DrainPanics = %d, want 1", m.DrainPanics())
	}
}
