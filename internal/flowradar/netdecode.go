package flowradar

import (
	"sort"

	"repro/flow"
)

// Network-wide decoding (NetDecode, §4.2 of the FlowRadar paper): when a
// switch's counting table is too loaded for standalone peeling, flow
// records already decoded at *other* switches rescue it. A flow's packets
// traverse every switch on its path, so a record decoded at switch B gives
// both the flow ID and its packet count at switch A. Membership is checked
// against A's Bloom filter; confirmed records are subtracted from the
// coded flow set (FlowDecode + CounterDecode), after which any remaining
// flows peel by the standard singleton rule.

// MightContain reports whether the flow passed this recorder according to
// its Bloom filter (with the filter's false-positive rate).
func (fr *FlowRadar) MightContain(k flow.Key) bool {
	w1, w2 := k.Words()
	return fr.bloom.Contains(w1, w2)
}

// workCell mirrors a counting cell with signed counts, so that subtracting
// a Bloom-false-positive hint is detectable as a negative value instead of
// an unsigned underflow.
type workCell struct {
	xor flow.Key
	fc  int32
	pc  int64
}

// DecodeWithHints runs NetDecode: hints are flow records decoded at other
// switches on shared paths. It returns the recovered records and whether
// the decode fully drained the table — in which case the result is exact
// and complete.
//
// Two FlowRadar artifacts are handled explicitly:
//
//   - A flow whose first packet hit an insert-time Bloom false positive
//     was counted but never ID-encoded. The set of such flows is itself
//     recovered by peeling the *deficit* between the hint population and
//     the stored flow counts (another coded-set decode), and only their
//     counts are subtracted.
//   - A hint that never passed this switch (lookup false positive) or
//     whose count disagrees (divergent path) drives a packet counter
//     negative when subtracted, and is rejected.
func (fr *FlowRadar) DecodeWithHints(hints []flow.Record) ([]flow.Record, bool) {
	// Accept Bloom-confirmed, deduplicated hints in a normalized order so
	// the decode is deterministic.
	seen := make(map[flow.Key]struct{}, len(hints))
	accepted := make([]flow.Record, 0, len(hints))
	for _, r := range hints {
		if _, dup := seen[r.Key]; dup {
			continue
		}
		seen[r.Key] = struct{}{}
		if fr.MightContain(r.Key) {
			accepted = append(accepted, r)
		}
	}
	sort.Slice(accepted, func(i, j int) bool {
		a1, a2 := accepted[i].Key.Words()
		b1, b2 := accepted[j].Key.Words()
		if a1 != b1 {
			return a1 < b1
		}
		return a2 < b2
	})

	// Deficit decode: cell by cell, (hints mapping here) − (flows encoded
	// here) forms a coded set containing exactly the accepted hints that
	// were never ID-encoded (insert-time false positives, plus lookup
	// false positives that never passed at all). Peel it.
	type deficitCell struct {
		xor flow.Key
		n   int32
	}
	deficit := make([]deficitCell, len(fr.cells))
	for i := range fr.cells {
		deficit[i] = deficitCell{xor: fr.cells[i].flowXOR, n: -int32(fr.cells[i].flowCount)}
	}
	var posBuf [8]uint64
	for _, r := range accepted {
		w1, w2 := r.Key.Words()
		for _, p := range fr.positions(w1, w2, posBuf[:0]) {
			deficit[p].xor = deficit[p].xor.XOR(r.Key)
			deficit[p].n++
		}
	}
	notEncoded := make(map[flow.Key]struct{})
	for changed := true; changed; {
		changed = false
		for i := range deficit {
			if deficit[i].n != 1 {
				continue
			}
			k := deficit[i].xor
			if _, isHint := seen[k]; !isHint {
				continue
			}
			if _, done := notEncoded[k]; done {
				continue
			}
			notEncoded[k] = struct{}{}
			w1, w2 := k.Words()
			for _, p := range fr.positions(w1, w2, posBuf[:0]) {
				deficit[p].xor = deficit[p].xor.XOR(k)
				deficit[p].n--
			}
			changed = true
		}
	}

	// Subtract the accepted hints: counts always, IDs only when encoded.
	work := make([]workCell, len(fr.cells))
	for i := range fr.cells {
		work[i] = workCell{
			xor: fr.cells[i].flowXOR,
			fc:  int32(fr.cells[i].flowCount),
			pc:  int64(fr.cells[i].packetCount),
		}
	}
	applyID := func(k flow.Key, sign int32) {
		w1, w2 := k.Words()
		for _, p := range fr.positions(w1, w2, posBuf[:0]) {
			work[p].xor = work[p].xor.XOR(k)
			work[p].fc += sign
		}
	}
	applyCount := func(r flow.Record, sign int64) {
		w1, w2 := r.Key.Words()
		for _, p := range fr.positions(w1, w2, posBuf[:0]) {
			work[p].pc += sign * int64(r.Count)
		}
	}
	anyNegPC := func(k flow.Key) bool {
		w1, w2 := k.Words()
		for _, p := range fr.positions(w1, w2, posBuf[:0]) {
			if work[p].pc < 0 {
				return true
			}
		}
		return false
	}

	out := make([]flow.Record, 0, len(accepted))
	for _, r := range accepted {
		_, skipID := notEncoded[r.Key]
		if !skipID {
			applyID(r.Key, -1)
		}
		applyCount(r, -1)
		if anyNegPC(r.Key) {
			// Lookup false positive or divergent-path count: reject.
			applyCount(r, 1)
			if !skipID {
				applyID(r.Key, 1)
			}
			delete(seen, r.Key)
			continue
		}
		out = append(out, r)
	}

	// Peel the remaining flows by the usual singleton rule; their counts
	// are exact because all hinted mass has been subtracted.
	queue := make([]int, 0, len(work))
	for i := range work {
		if work[i].fc == 1 {
			queue = append(queue, i)
		}
	}
	for len(queue) > 0 {
		idx := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if work[idx].fc != 1 {
			continue
		}
		k := work[idx].xor
		pkts := work[idx].pc
		if pkts < 0 {
			continue
		}
		w1, w2 := k.Words()
		pos := fr.positions(w1, w2, posBuf[:0])
		owns := false
		for _, p := range pos {
			if int(p) == idx {
				owns = true
				break
			}
		}
		if !owns {
			continue
		}
		rec := flow.Record{Key: k, Count: uint32(pkts)}
		applyID(k, -1)
		applyCount(rec, -1)
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, rec)
		}
		for _, p := range pos {
			if work[p].fc == 1 {
				queue = append(queue, int(p))
			}
		}
	}

	// Complete iff every cell drained to zero flows and zero packets.
	for i := range work {
		if work[i].fc != 0 || work[i].pc != 0 {
			return out, false
		}
	}
	return out, true
}
