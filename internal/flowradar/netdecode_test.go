package flowradar

import (
	"math/rand/v2"
	"testing"

	"repro/flow"
)

// TestNetDecodeRescuesOverloadedSwitch reproduces the FlowRadar paper's
// NetDecode scenario: switch A is over its standalone decode capacity, but
// every flow it saw also traversed switch B, which is big enough to decode
// alone. A's table must then decode completely with exact counts.
func TestNetDecodeRescuesOverloadedSwitch(t *testing.T) {
	a := mustNew(t, Config{MemoryBytes: 26 * 512, Seed: 1})  // small switch
	b := mustNew(t, Config{MemoryBytes: 26 * 8192, Seed: 2}) // big switch

	rng := rand.New(rand.NewPCG(1, 2))
	truth := make(map[flow.Key]uint32)
	keys := make([]flow.Key, 1500) // ~3x switch A's standalone capacity
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 30000; i++ {
		k := keys[rng.IntN(len(keys))]
		truth[k]++
		p := flow.Packet{Key: k}
		a.Update(p)
		b.Update(p)
	}

	// Standalone, A collapses.
	if solo := len(a.Records()); solo > len(keys)/2 {
		t.Fatalf("switch A decoded %d flows standalone; overload assumption broken", solo)
	}
	// B decodes everything.
	bRecs := b.Records()
	if len(bRecs) != len(truth) {
		t.Fatalf("switch B decoded %d of %d flows", len(bRecs), len(truth))
	}

	recs, ok := a.DecodeWithHints(bRecs)
	if !ok {
		t.Fatal("NetDecode did not fully resolve switch A")
	}
	if len(recs) != len(truth) {
		t.Fatalf("NetDecode recovered %d of %d flows", len(recs), len(truth))
	}
	for _, r := range recs {
		if truth[r.Key] != r.Count {
			t.Fatalf("flow %v NetDecode count %d, want %d", r.Key, r.Count, truth[r.Key])
		}
	}
}

// TestNetDecodePartialOverlap: hints that never crossed switch A must be
// rejected by its Bloom filter and not corrupt the decode.
func TestNetDecodePartialOverlap(t *testing.T) {
	a := mustNew(t, Config{MemoryBytes: 26 * 1024, Seed: 3})
	rng := rand.New(rand.NewPCG(3, 4))

	truth := make(map[flow.Key]uint32)
	for i := 0; i < 900; i++ { // a little over the peeling threshold
		k := randKey(rng)
		n := uint32(rng.IntN(5) + 1)
		truth[k] += n
		for j := uint32(0); j < n; j++ {
			a.Update(flow.Packet{Key: k})
		}
	}

	// Hints: all true records plus 2000 foreign records A never saw.
	hints := make([]flow.Record, 0, len(truth)+2000)
	for k, c := range truth {
		hints = append(hints, flow.Record{Key: k, Count: c})
	}
	for i := 0; i < 2000; i++ {
		hints = append(hints, flow.Record{Key: randKey(rng), Count: uint32(rng.IntN(5) + 1)})
	}
	recs, ok := a.DecodeWithHints(hints)
	if !ok {
		t.Fatal("NetDecode failed with full hint coverage")
	}
	// Bloom false positives can only add flows with zero resolved count
	// (they are filtered); every true flow must be exact.
	got := make(map[flow.Key]uint32, len(recs))
	for _, r := range recs {
		got[r.Key] = r.Count
	}
	for k, want := range truth {
		if got[k] != want {
			t.Fatalf("flow %v count %d, want %d", k, got[k], want)
		}
	}
}

// TestNetDecodeNoHintsMatchesSingleDecode: with no hints the result must
// not be worse than standalone decoding.
func TestNetDecodeNoHints(t *testing.T) {
	a := mustNew(t, Config{MemoryBytes: 26 * 1024, Seed: 5})
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 500; i++ {
		a.Update(flow.Packet{Key: randKey(rng)})
	}
	recs, ok := a.DecodeWithHints(nil)
	if !ok {
		t.Fatal("NetDecode without hints failed below capacity")
	}
	if len(recs) != 500 {
		t.Fatalf("recovered %d of 500 flows", len(recs))
	}
}

// TestNetDecodeStillPartialWhenHintsInsufficient: hints covering only some
// flows of a badly overloaded switch leave the decode incomplete, and the
// function must say so.
func TestNetDecodeInsufficientHints(t *testing.T) {
	a := mustNew(t, Config{MemoryBytes: 26 * 256, Seed: 7})
	rng := rand.New(rand.NewPCG(7, 8))
	hints := make([]flow.Record, 2000)
	for i := range hints {
		hints[i] = flow.Record{Key: randKey(rng), Count: 1}
		a.Update(flow.Packet{Key: hints[i].Key})
	}
	_, ok := a.DecodeWithHints(hints[:100])
	if ok {
		t.Error("NetDecode claimed completeness with 5% hint coverage at 8x overload")
	}
}
