// Package flowradar implements FlowRadar (Li et al., NSDI 2016) as
// parameterized in the HashFlow paper's evaluation: a Bloom filter with 4
// hash functions detecting new flows, and a counting table of
// (FlowXOR, FlowCount, PacketCount) cells updated through 3 hash functions,
// with 40 Bloom bits per counting cell. Flow records are recovered by the
// standard IBLT-style singleton peeling decode.
package flowradar

import (
	"fmt"

	"repro/flow"
	"repro/internal/hashing"
	"repro/internal/sketch"
)

// Defaults from the paper's evaluation (§IV-A).
const (
	DefaultBloomHashes      = 4
	DefaultCellHashes       = 3
	DefaultBloomBitsPerCell = 40
)

// CellBytes is the size of one counting-table cell: a 104-bit FlowXOR
// field, a 32-bit flow count and a 32-bit packet count.
const CellBytes = flow.KeyBytes + 4 + 4

// Config parameterizes a FlowRadar instance.
type Config struct {
	// MemoryBytes is the total budget for the counting table plus the Bloom
	// filter. With 40 Bloom bits (5 bytes) per 21-byte cell, a budget B
	// yields B/26 cells.
	MemoryBytes int
	// BloomHashes is the number of Bloom filter hash functions (default 4).
	BloomHashes int
	// CellHashes is the number of counting-table hash functions (default 3).
	CellHashes int
	// BloomBitsPerCell scales the Bloom filter relative to the counting
	// table (default 40).
	BloomBitsPerCell int
	// Seed makes the hash families deterministic.
	Seed uint64
}

type cell struct {
	flowXOR     flow.Key
	flowCount   uint32
	packetCount uint32
}

// FlowRadar is the coded flow set recorder.
type FlowRadar struct {
	cfg    Config
	bloom  *sketch.Bloom
	cells  []cell
	family *hashing.Family
	ops    flow.OpStats

	decoded    map[flow.Key]uint32
	decodeOK   bool // decode drained every cell
	decodeDone bool // cache validity
}

// New builds a FlowRadar with cfg, applying defaults for unset fields.
func New(cfg Config) (*FlowRadar, error) {
	if cfg.BloomHashes == 0 {
		cfg.BloomHashes = DefaultBloomHashes
	}
	if cfg.CellHashes == 0 {
		cfg.CellHashes = DefaultCellHashes
	}
	if cfg.BloomBitsPerCell == 0 {
		cfg.BloomBitsPerCell = DefaultBloomBitsPerCell
	}
	if cfg.MemoryBytes <= 0 {
		return nil, fmt.Errorf("flowradar: memory budget must be positive, got %d", cfg.MemoryBytes)
	}
	if cfg.CellHashes < 1 || cfg.BloomHashes < 1 {
		return nil, fmt.Errorf("flowradar: hash counts must be positive, got bloom=%d cells=%d",
			cfg.BloomHashes, cfg.CellHashes)
	}
	// cells*CellBytes + cells*bitsPerCell/8 <= MemoryBytes
	denom := CellBytes + (cfg.BloomBitsPerCell+7)/8
	cells := cfg.MemoryBytes / denom
	if cells < cfg.CellHashes {
		return nil, fmt.Errorf("flowradar: budget of %d bytes yields %d cells, fewer than %d hashes",
			cfg.MemoryBytes, cells, cfg.CellHashes)
	}
	bloom, err := sketch.NewBloom(cells*cfg.BloomBitsPerCell, cfg.BloomHashes, cfg.Seed^0xB100)
	if err != nil {
		return nil, fmt.Errorf("flowradar: bloom filter: %w", err)
	}
	return &FlowRadar{
		cfg:    cfg,
		bloom:  bloom,
		cells:  make([]cell, cells),
		family: hashing.NewFamily(cfg.CellHashes, cfg.Seed),
	}, nil
}

// positions appends the deduplicated counting-table indices of the key to
// buf. Insertion and decode must use identical index sets, so duplicates
// produced by colliding hash functions are removed once here.
func (fr *FlowRadar) positions(w1, w2 uint64, buf []uint64) []uint64 {
	n := uint64(len(fr.cells))
	for i := 0; i < fr.cfg.CellHashes; i++ {
		p := fr.family.Bucket(i, w1, w2, n)
		dup := false
		for _, q := range buf {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			buf = append(buf, p)
		}
	}
	return buf
}

// Update processes one packet: a Bloom miss marks a new flow (encode its ID
// into the coded flow set), and every packet increments the packet counts
// of the flow's cells.
func (fr *FlowRadar) Update(p flow.Packet) {
	fr.ops.Packets++
	fr.decodeDone = false
	w1, w2 := p.Key.Words()

	isNew := !fr.bloom.Contains(w1, w2)
	fr.ops.Hashes += uint64(fr.cfg.BloomHashes)
	fr.ops.MemAccesses += uint64(fr.cfg.BloomHashes)
	if isNew {
		fr.bloom.Add(w1, w2)
		fr.ops.MemAccesses += uint64(fr.cfg.BloomHashes)
	}

	var posBuf [8]uint64
	pos := fr.positions(w1, w2, posBuf[:0])
	fr.ops.Hashes += uint64(fr.cfg.CellHashes)
	for _, idx := range pos {
		c := &fr.cells[idx]
		fr.ops.MemAccesses += 2
		if isNew {
			c.flowXOR = c.flowXOR.XOR(p.Key)
			c.flowCount++
		}
		c.packetCount++
	}
}

// UpdateBatch processes pkts in order with the same semantics as repeated
// Update calls. The batched path probes the Bloom filter once per packet
// via AddIfMissing (Update's Contains-then-Add hashes each new flow's key
// twice), reuses one position scratch buffer across the whole batch, and
// flushes operation counters once. The reported OpStats are identical to
// the sequential path: they model switch cost, where the membership probe
// and the bit writes share one hash evaluation.
func (fr *FlowRadar) UpdateBatch(pkts []flow.Packet) {
	if len(pkts) == 0 {
		return
	}
	fr.decodeDone = false
	var ops flow.OpStats
	bloomHashes := uint64(fr.cfg.BloomHashes)
	cellHashes := uint64(fr.cfg.CellHashes)
	var posBuf [8]uint64

	for pi := range pkts {
		p := &pkts[pi]
		ops.Packets++
		w1, w2 := p.Key.Words()

		isNew := fr.bloom.AddIfMissing(w1, w2)
		ops.Hashes += bloomHashes
		ops.MemAccesses += bloomHashes
		if isNew {
			ops.MemAccesses += bloomHashes
		}

		pos := fr.positions(w1, w2, posBuf[:0])
		ops.Hashes += cellHashes
		for _, idx := range pos {
			c := &fr.cells[idx]
			ops.MemAccesses += 2
			if isNew {
				c.flowXOR = c.flowXOR.XOR(p.Key)
				c.flowCount++
			}
			c.packetCount++
		}
	}
	fr.ops = fr.ops.Add(ops)
}

// decode runs singleton peeling over a scratch copy of the counting table
// and caches the recovered records.
func (fr *FlowRadar) decode() {
	if fr.decodeDone {
		return
	}
	work := make([]cell, len(fr.cells))
	copy(work, fr.cells)

	queue := make([]int, 0, len(work))
	for i := range work {
		if work[i].flowCount == 1 {
			queue = append(queue, i)
		}
	}

	decoded := make(map[flow.Key]uint32)
	var posBuf [8]uint64
	for len(queue) > 0 {
		idx := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		c := work[idx]
		if c.flowCount != 1 {
			continue
		}
		key := c.flowXOR
		pkts := c.packetCount

		// Verify the candidate actually hashes to this cell; XOR residue of
		// colliding flows can masquerade as a singleton.
		w1, w2 := key.Words()
		pos := fr.positions(w1, w2, posBuf[:0])
		owns := false
		for _, p := range pos {
			if int(p) == idx {
				owns = true
				break
			}
		}
		if !owns {
			continue
		}

		decoded[key] = pkts
		for _, p := range pos {
			w := &work[p]
			w.flowXOR = w.flowXOR.XOR(key)
			w.flowCount--
			w.packetCount -= pkts
			if w.flowCount == 1 {
				queue = append(queue, int(p))
			}
		}
	}

	ok := true
	for i := range work {
		if work[i].flowCount != 0 {
			ok = false
			break
		}
	}
	fr.decoded = decoded
	fr.decodeOK = ok
	fr.decodeDone = true
}

// EstimateSize returns the decoded packet count of a flow, or 0 when the
// flow could not be decoded.
func (fr *FlowRadar) EstimateSize(k flow.Key) uint32 {
	fr.decode()
	return fr.decoded[k]
}

// Records returns the successfully decoded flow records.
func (fr *FlowRadar) Records() []flow.Record {
	fr.decode()
	return fr.AppendRecords(make([]flow.Record, 0, len(fr.decoded)))
}

// AppendRecords appends the successfully decoded flow records to dst and
// returns the extended slice. The decode itself is cached between updates,
// so repeated extraction into a reused dst does not re-run it.
func (fr *FlowRadar) AppendRecords(dst []flow.Record) []flow.Record {
	fr.decode()
	for k, v := range fr.decoded {
		dst = append(dst, flow.Record{Key: k, Count: v})
	}
	return dst
}

// DecodeComplete reports whether the last decode drained every cell, i.e.
// every inserted flow was recovered.
func (fr *FlowRadar) DecodeComplete() bool {
	fr.decode()
	return fr.decodeOK
}

// EstimateCardinality estimates the number of distinct flows from the Bloom
// filter fill ratio, independent of decode success.
func (fr *FlowRadar) EstimateCardinality() float64 {
	return fr.bloom.EstimateCardinality()
}

// MemoryBytes returns the combined footprint of the counting table and the
// Bloom filter.
func (fr *FlowRadar) MemoryBytes() int {
	return len(fr.cells)*CellBytes + len(fr.cells)*fr.cfg.BloomBitsPerCell/8
}

// Cells returns the number of counting-table cells.
func (fr *FlowRadar) Cells() int { return len(fr.cells) }

// OpStats returns cumulative operation counts since the last Reset.
func (fr *FlowRadar) OpStats() flow.OpStats { return fr.ops }

// Reset clears the filter, the counting table and all counters.
func (fr *FlowRadar) Reset() {
	fr.bloom.Reset()
	for i := range fr.cells {
		fr.cells[i] = cell{}
	}
	fr.ops = flow.OpStats{}
	fr.decoded = nil
	fr.decodeOK = false
	fr.decodeDone = false
}
