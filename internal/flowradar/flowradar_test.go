package flowradar

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/flow"
)

func mustNew(t *testing.T, cfg Config) *FlowRadar {
	t.Helper()
	fr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func randKey(rng *rand.Rand) flow.Key {
	return flow.Key{SrcIP: rng.Uint32(), DstIP: rng.Uint32(), SrcPort: uint16(rng.Uint32()), Proto: 17}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("accepted zero memory")
	}
	if _, err := New(Config{MemoryBytes: 26}); err == nil {
		t.Error("accepted budget below hash count cells")
	}
	if _, err := New(Config{MemoryBytes: 1 << 12, CellHashes: -1}); err == nil {
		t.Error("accepted negative cell hashes")
	}
}

func TestDefaults(t *testing.T) {
	fr := mustNew(t, Config{MemoryBytes: 1 << 20})
	wantCells := (1 << 20) / 26
	if got := fr.Cells(); got != wantCells {
		t.Errorf("Cells = %d, want %d", got, wantCells)
	}
	if fr.MemoryBytes() > 1<<20 {
		t.Errorf("MemoryBytes = %d exceeds budget", fr.MemoryBytes())
	}
	if fr.bloom.Hashes() != DefaultBloomHashes {
		t.Errorf("bloom hashes = %d, want %d", fr.bloom.Hashes(), DefaultBloomHashes)
	}
}

func TestDecodeExactUnderLoad(t *testing.T) {
	// Well under capacity, FlowRadar decodes every flow with its exact
	// packet count.
	fr := mustNew(t, Config{MemoryBytes: 26 * 2048, Seed: 1}) // 2048 cells
	rng := rand.New(rand.NewPCG(1, 2))
	truth := make(map[flow.Key]uint32)
	keys := make([]flow.Key, 1000) // load factor ~0.5
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 20000; i++ {
		k := keys[rng.IntN(len(keys))]
		truth[k]++
		fr.Update(flow.Packet{Key: k})
	}
	if !fr.DecodeComplete() {
		t.Fatal("decode incomplete at load factor 0.5")
	}
	recs := fr.Records()
	if len(recs) != len(truth) {
		t.Fatalf("decoded %d flows, want %d", len(recs), len(truth))
	}
	for _, r := range recs {
		if truth[r.Key] != r.Count {
			t.Fatalf("flow %v decoded count %d, want %d", r.Key, r.Count, truth[r.Key])
		}
	}
}

func TestDecodeCollapsesOverCapacity(t *testing.T) {
	// Far over capacity, peeling finds almost no singletons: the paper's
	// "drops abruptly after the turning point" behaviour.
	fr := mustNew(t, Config{MemoryBytes: 26 * 512, Seed: 2}) // 512 cells
	rng := rand.New(rand.NewPCG(3, 4))
	const flows = 5000 // ~10x capacity
	for i := 0; i < flows; i++ {
		fr.Update(flow.Packet{Key: randKey(rng)})
	}
	if fr.DecodeComplete() {
		t.Error("decode claimed completeness at 10x overload")
	}
	if got := len(fr.Records()); got > flows/10 {
		t.Errorf("decoded %d of %d flows at 10x overload, expected near-total collapse", got, flows)
	}
}

func TestDecodeTurningPoint(t *testing.T) {
	// Decode rate should be near-perfect below ~1.2 flows/cell... actually
	// IBLT peeling with 3 hashes succeeds w.h.p. below the ~0.81 load
	// threshold and fails above ~1.3. Verify both sides.
	const cells = 1024
	low := mustNew(t, Config{MemoryBytes: 26 * cells, Seed: 3})
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < cells*6/10; i++ { // load 0.6
		low.Update(flow.Packet{Key: randKey(rng)})
	}
	if got := float64(len(low.Records())) / float64(cells*6/10); got < 0.99 {
		t.Errorf("decode rate %.3f at load 0.6, want ~1", got)
	}

	high := mustNew(t, Config{MemoryBytes: 26 * cells, Seed: 4})
	for i := 0; i < cells*2; i++ { // load 2.0
		high.Update(flow.Packet{Key: randKey(rng)})
	}
	if got := float64(len(high.Records())) / float64(cells*2); got > 0.5 {
		t.Errorf("decode rate %.3f at load 2.0, want collapse", got)
	}
}

func TestRepeatPacketsDoNotGrowFlowSet(t *testing.T) {
	fr := mustNew(t, Config{MemoryBytes: 26 * 256, Seed: 5})
	k := flow.Key{SrcIP: 9, DstIP: 8, Proto: 17}
	for i := 0; i < 1000; i++ {
		fr.Update(flow.Packet{Key: k})
	}
	recs := fr.Records()
	if len(recs) != 1 {
		t.Fatalf("decoded %d flows, want 1", len(recs))
	}
	if recs[0].Count != 1000 {
		t.Errorf("count = %d, want 1000", recs[0].Count)
	}
}

func TestCardinalityFromBloom(t *testing.T) {
	fr := mustNew(t, Config{MemoryBytes: 26 * 4096, Seed: 6})
	rng := rand.New(rand.NewPCG(7, 8))
	const n = 3000
	for i := 0; i < n; i++ {
		k := randKey(rng)
		fr.Update(flow.Packet{Key: k})
		fr.Update(flow.Packet{Key: k}) // repeats must not affect the estimate much
	}
	est := fr.EstimateCardinality()
	if math.Abs(est/n-1) > 0.1 {
		t.Errorf("cardinality estimate %.0f for %d flows", est, n)
	}
}

func TestEstimateSizeUnknownFlow(t *testing.T) {
	fr := mustNew(t, Config{MemoryBytes: 26 * 256, Seed: 7})
	if got := fr.EstimateSize(flow.Key{SrcIP: 1}); got != 0 {
		t.Errorf("EstimateSize of unseen flow = %d, want 0", got)
	}
}

func TestOpStats(t *testing.T) {
	fr := mustNew(t, Config{MemoryBytes: 26 * 1024, Seed: 8})
	rng := rand.New(rand.NewPCG(9, 10))
	for i := 0; i < 2000; i++ {
		fr.Update(flow.Packet{Key: randKey(rng)})
	}
	s := fr.OpStats()
	if s.Packets != 2000 {
		t.Fatalf("Packets = %d", s.Packets)
	}
	// 4 bloom + 3 cell hashes per packet, the paper's worst case of 7.
	if hpp := s.HashesPerPacket(); hpp != 7 {
		t.Errorf("HashesPerPacket = %.2f, want 7", hpp)
	}
}

func TestDecodeCacheInvalidation(t *testing.T) {
	fr := mustNew(t, Config{MemoryBytes: 26 * 512, Seed: 9})
	k1 := flow.Key{SrcIP: 1, Proto: 17}
	k2 := flow.Key{SrcIP: 2, Proto: 17}
	fr.Update(flow.Packet{Key: k1})
	if got := len(fr.Records()); got != 1 {
		t.Fatalf("decoded %d flows, want 1", got)
	}
	fr.Update(flow.Packet{Key: k2})
	if got := len(fr.Records()); got != 2 {
		t.Fatalf("after second flow decoded %d, want 2", got)
	}
}

func TestDecodeMultisetProperty(t *testing.T) {
	// Property: at modest load, the decoded record set is exactly the
	// inserted flow set with exact counts.
	cfg := Config{MemoryBytes: 26 * 512, Seed: 10}
	f := func(seed uint64) bool {
		fr, err := New(cfg)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewPCG(seed, 0))
		truth := make(map[flow.Key]uint32)
		nflows := rng.IntN(200) + 1
		for i := 0; i < nflows; i++ {
			k := randKey(rng)
			n := uint32(rng.IntN(10) + 1)
			truth[k] += n
			for j := uint32(0); j < n; j++ {
				fr.Update(flow.Packet{Key: k})
			}
		}
		recs := fr.Records()
		if len(recs) != len(truth) {
			return false
		}
		for _, r := range recs {
			if truth[r.Key] != r.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestReset(t *testing.T) {
	fr := mustNew(t, Config{MemoryBytes: 26 * 256, Seed: 11})
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < 100; i++ {
		fr.Update(flow.Packet{Key: randKey(rng)})
	}
	fr.Reset()
	if len(fr.Records()) != 0 || fr.OpStats() != (flow.OpStats{}) {
		t.Error("Reset incomplete")
	}
	if est := fr.EstimateCardinality(); est != 0 {
		t.Errorf("cardinality after Reset = %v, want 0", est)
	}
}
