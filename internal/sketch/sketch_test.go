package sketch

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewCountMinValidation(t *testing.T) {
	tests := []struct {
		name              string
		rows, width, bits int
		wantErr           bool
	}{
		{"valid 8-bit", 1, 100, 8, false},
		{"valid 32-bit", 3, 100, 32, false},
		{"zero rows", 0, 100, 8, true},
		{"zero width", 1, 0, 8, true},
		{"bad counter width", 1, 100, 16, true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCountMin(tc.rows, tc.width, tc.bits, 1)
			if (err != nil) != tc.wantErr {
				t.Errorf("NewCountMin(%d,%d,%d) err = %v, wantErr=%v",
					tc.rows, tc.width, tc.bits, err, tc.wantErr)
			}
		})
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm, err := NewCountMin(3, 512, 32, 42)
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[[2]uint64]uint32)
	rng := rand.New(rand.NewPCG(1, 2))
	keys := make([][2]uint64, 200)
	for i := range keys {
		keys[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
	}
	for i := 0; i < 5000; i++ {
		k := keys[rng.IntN(len(keys))]
		v := uint32(rng.IntN(5) + 1)
		cm.Add(k[0], k[1], v)
		truth[k] += v
	}
	for k, want := range truth {
		if got := cm.Estimate(k[0], k[1]); got < want {
			t.Fatalf("count-min underestimated: got %d, want >= %d", got, want)
		}
	}
}

func TestCountMinNeverUnderestimatesQuick(t *testing.T) {
	cm, err := NewCountMin(2, 256, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	truth := make(map[[2]uint64]uint32)
	f := func(w1, w2 uint64, v uint16) bool {
		cm.Add(w1, w2, uint32(v))
		truth[[2]uint64{w1, w2}] += uint32(v)
		return cm.Estimate(w1, w2) >= truth[[2]uint64{w1, w2}]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCountMin8BitSaturates(t *testing.T) {
	cm, err := NewCountMin(1, 16, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	cm.Add(1, 2, 300)
	if got := cm.Estimate(1, 2); got != 255 {
		t.Errorf("8-bit counter = %d, want saturation at 255", got)
	}
	cm.Add(1, 2, 10)
	if got := cm.Estimate(1, 2); got != 255 {
		t.Errorf("saturated counter moved to %d", got)
	}
}

func TestCountMin32BitOverflowSaturates(t *testing.T) {
	cm, err := NewCountMin(1, 16, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	cm.Add(1, 2, math.MaxUint32)
	cm.Add(1, 2, 100)
	if got := cm.Estimate(1, 2); got != math.MaxUint32 {
		t.Errorf("32-bit counter = %d, want saturation at MaxUint32", got)
	}
}

func TestCountMinExactWhenSparse(t *testing.T) {
	// With very few flows and a wide sketch, estimates are exact with high
	// probability.
	cm, err := NewCountMin(3, 4096, 32, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 10; i++ {
		cm.Add(i, i+1, uint32(i+1))
	}
	for i := uint64(0); i < 10; i++ {
		if got := cm.Estimate(i, i+1); got != uint32(i+1) {
			t.Errorf("sparse estimate for key %d = %d, want %d", i, got, i+1)
		}
	}
}

func TestCountMinCardinality(t *testing.T) {
	cm, err := NewCountMin(1, 10000, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	const n = 3000
	for i := 0; i < n; i++ {
		cm.Add(rng.Uint64(), rng.Uint64(), 1)
	}
	est := cm.EstimateCardinality()
	if math.Abs(est/n-1) > 0.1 {
		t.Errorf("linear counting estimate %.0f for %d distinct flows", est, n)
	}
}

func TestCountMinResetAndMemory(t *testing.T) {
	cm, err := NewCountMin(2, 100, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.MemoryBytes(); got != 2*100*4 {
		t.Errorf("MemoryBytes = %d, want 800", got)
	}
	cm.Add(5, 6, 7)
	cm.Reset()
	if got := cm.Estimate(5, 6); got != 0 {
		t.Errorf("after Reset estimate = %d, want 0", got)
	}
	if cm.Touched() != 2 { // the Estimate call above
		t.Errorf("Touched after reset+estimate = %d, want 2", cm.Touched())
	}
	if cm.Rows() != 2 || cm.Width() != 100 {
		t.Errorf("Rows/Width = %d/%d, want 2/100", cm.Rows(), cm.Width())
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b, err := NewBloom(1<<14, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	type pair struct{ w1, w2 uint64 }
	inserted := make([]pair, 1000)
	for i := range inserted {
		inserted[i] = pair{rng.Uint64(), rng.Uint64()}
		b.Add(inserted[i].w1, inserted[i].w2)
	}
	for _, p := range inserted {
		if !b.Contains(p.w1, p.w2) {
			t.Fatalf("false negative for %v", p)
		}
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	// m/n = 16 bits per element with k=4 should give fp well under 5%.
	const n = 1 << 10
	b, err := NewBloom(16*n, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < n; i++ {
		b.Add(rng.Uint64(), rng.Uint64())
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.Contains(rng.Uint64(), rng.Uint64()) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Errorf("false positive rate %.3f, want < 0.05", rate)
	}
}

func TestBloomCardinality(t *testing.T) {
	const n = 5000
	b, err := NewBloom(40*n/4, 4, 7) // FlowRadar-like sizing per flow
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < n; i++ {
		b.Add(rng.Uint64(), rng.Uint64())
	}
	est := b.EstimateCardinality()
	if math.Abs(est/n-1) > 0.1 {
		t.Errorf("bloom cardinality estimate %.0f for %d flows", est, n)
	}
}

func TestBloomSaturated(t *testing.T) {
	b, err := NewBloom(64, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(11, 11))
	for i := 0; i < 10000; i++ {
		b.Add(rng.Uint64(), rng.Uint64())
	}
	if est := b.EstimateCardinality(); math.IsInf(est, 0) || math.IsNaN(est) {
		t.Errorf("saturated estimator returned %v", est)
	}
}

func TestBloomReset(t *testing.T) {
	b, err := NewBloom(128, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(1, 2)
	b.Reset()
	if b.SetBits() != 0 {
		t.Error("Reset left bits set")
	}
	if b.Contains(1, 2) {
		t.Error("Reset filter still contains key")
	}
}

func TestBloomValidation(t *testing.T) {
	if _, err := NewBloom(0, 1, 1); err == nil {
		t.Error("NewBloom accepted 0 bits")
	}
	if _, err := NewBloom(10, 0, 1); err == nil {
		t.Error("NewBloom accepted 0 hashes")
	}
}

func TestLinearCount(t *testing.T) {
	tests := []struct {
		name     string
		m, empty int
		want     float64
	}{
		{"empty table", 100, 100, 0},
		{"zero slots", 0, 0, 0},
		{"half empty", 1000, 500, 1000 * math.Ln2},
		{"clamped full", 100, 0, 100 * math.Log(100)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := LinearCount(tc.m, tc.empty)
			if math.Abs(got-tc.want) > 1e-9 {
				t.Errorf("LinearCount(%d,%d) = %v, want %v", tc.m, tc.empty, got, tc.want)
			}
		})
	}
}

func TestLinearCountAccuracy(t *testing.T) {
	// Simulate hashing n distinct items into m slots and estimating n.
	const m = 1 << 14
	for _, load := range []float64{0.2, 0.5, 1.0, 2.0} {
		n := int(load * m)
		slots := make([]bool, m)
		rng := rand.New(rand.NewPCG(uint64(n), 99))
		for i := 0; i < n; i++ {
			slots[rng.IntN(m)] = true
		}
		empty := 0
		for _, s := range slots {
			if !s {
				empty++
			}
		}
		est := LinearCount(m, empty)
		if math.Abs(est/float64(n)-1) > 0.05 {
			t.Errorf("load %.1f: estimate %.0f for %d items", load, est, n)
		}
	}
}
