package sketch

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/hashing"
)

// Bloom is a Bloom filter over packed flow keys. FlowRadar uses one to
// detect the first packet of each flow.
type Bloom struct {
	bitsLen uint64 // number of bits
	words   []uint64
	k       int
	family  *hashing.Family
	touched uint64
}

// NewBloom builds a filter with nbits bits and k hash functions.
func NewBloom(nbits, k int, seed uint64) (*Bloom, error) {
	if nbits <= 0 || k <= 0 {
		return nil, fmt.Errorf("sketch: bloom needs positive bits and hashes, got %d bits, k=%d", nbits, k)
	}
	return &Bloom{
		bitsLen: uint64(nbits),
		words:   make([]uint64, (nbits+63)/64),
		k:       k,
		family:  hashing.NewFamily(k, seed),
	}, nil
}

// Bits returns the filter size in bits.
func (b *Bloom) Bits() int { return int(b.bitsLen) }

// Hashes returns the number of hash functions.
func (b *Bloom) Hashes() int { return b.k }

// MemoryBytes returns the memory footprint of the bit array.
func (b *Bloom) MemoryBytes() int { return len(b.words) * 8 }

// Contains reports whether the key is (probably) in the filter.
func (b *Bloom) Contains(w1, w2 uint64) bool {
	for i := 0; i < b.k; i++ {
		pos := b.family.Bucket(i, w1, w2, b.bitsLen)
		b.touched++
		if b.words[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// Add inserts the key.
func (b *Bloom) Add(w1, w2 uint64) {
	for i := 0; i < b.k; i++ {
		pos := b.family.Bucket(i, w1, w2, b.bitsLen)
		b.touched++
		b.words[pos>>6] |= 1 << (pos & 63)
	}
}

// AddIfMissing inserts the key and reports whether any of its bits were
// previously unset, i.e. whether Contains would have returned false. It
// probes the filter once, where a Contains-then-Add sequence hashes the key
// twice; batched callers use it to halve per-packet Bloom hashing. The
// resulting filter state is identical to Contains followed by Add.
func (b *Bloom) AddIfMissing(w1, w2 uint64) bool {
	missing := false
	for i := 0; i < b.k; i++ {
		pos := b.family.Bucket(i, w1, w2, b.bitsLen)
		b.touched++
		word, bit := pos>>6, uint64(1)<<(pos&63)
		if b.words[word]&bit == 0 {
			missing = true
			b.words[word] |= bit
		}
	}
	return missing
}

// SetBits returns the number of bits currently set.
func (b *Bloom) SetBits() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// EstimateCardinality estimates the number of distinct inserted keys from
// the fill ratio: n ≈ -(m/k) · ln(1 - X/m), the standard Bloom estimator.
// It is insensitive to flow sizes, which is why FlowRadar's cardinality
// estimates stay accurate in the paper's Fig. 7.
func (b *Bloom) EstimateCardinality() float64 {
	x := float64(b.SetBits())
	m := float64(b.bitsLen)
	if x >= m {
		// Filter saturated: every slot set. The estimator diverges; return
		// the value for one unset bit as an upper bound.
		x = m - 1
	}
	return -(m / float64(b.k)) * math.Log(1-x/m)
}

// Touched returns the cumulative number of bit accesses.
func (b *Bloom) Touched() uint64 { return b.touched }

// Reset clears the filter.
func (b *Bloom) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.touched = 0
}
