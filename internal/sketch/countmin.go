// Package sketch implements the probabilistic substrates shared by the flow
// recorders: count-min sketches, Bloom filters and linear counting.
//
// All structures hash packed 104-bit flow keys (two 64-bit words) through
// the hashing.Family and are deterministic for a given seed.
package sketch

import (
	"fmt"

	"repro/internal/hashing"
)

// CountMin is a count-min sketch over flow keys with depth rows of width
// counters each. Counters saturate at the maximum of their width.
//
// ElasticSketch's "light part" is a CountMin with depth 1 and 8-bit
// counters, as specified in the HashFlow paper's evaluation setup.
type CountMin struct {
	rows    int
	width   uint64
	bits    int // counter width: 8 or 32
	max     uint32
	cnt8    []uint8  // rows*width when bits == 8
	cnt32   []uint32 // rows*width when bits == 32
	family  *hashing.Family
	touched uint64 // memory accesses, for cost accounting
}

// NewCountMin builds a sketch with the given number of rows and counters per
// row. counterBits must be 8 or 32.
func NewCountMin(rows, width, counterBits int, seed uint64) (*CountMin, error) {
	if rows <= 0 || width <= 0 {
		return nil, fmt.Errorf("sketch: count-min needs positive rows and width, got %d x %d", rows, width)
	}
	cm := &CountMin{
		rows:   rows,
		width:  uint64(width),
		bits:   counterBits,
		family: hashing.NewFamily(rows, seed),
	}
	switch counterBits {
	case 8:
		cm.max = 0xFF
		cm.cnt8 = make([]uint8, rows*width)
	case 32:
		cm.max = 0xFFFFFFFF
		cm.cnt32 = make([]uint32, rows*width)
	default:
		return nil, fmt.Errorf("sketch: count-min counter width must be 8 or 32 bits, got %d", counterBits)
	}
	return cm, nil
}

// Rows returns the number of rows.
func (cm *CountMin) Rows() int { return cm.rows }

// Width returns the number of counters per row.
func (cm *CountMin) Width() int { return int(cm.width) }

// MemoryBytes returns the memory footprint of the counter arrays.
func (cm *CountMin) MemoryBytes() int {
	return cm.rows * int(cm.width) * cm.bits / 8
}

// Add increments the flow's counters by v (saturating).
func (cm *CountMin) Add(w1, w2 uint64, v uint32) {
	for r := 0; r < cm.rows; r++ {
		idx := uint64(r)*cm.width + cm.family.Bucket(r, w1, w2, cm.width)
		cm.touched += 2 // read + write
		if cm.bits == 8 {
			nv := uint32(cm.cnt8[idx]) + v
			if nv > cm.max {
				nv = cm.max
			}
			cm.cnt8[idx] = uint8(nv)
		} else {
			old := cm.cnt32[idx]
			nv := old + v
			if nv < old { // overflow
				nv = cm.max
			}
			cm.cnt32[idx] = nv
		}
	}
}

// Estimate returns the count-min estimate (the row minimum) for the flow.
func (cm *CountMin) Estimate(w1, w2 uint64) uint32 {
	est := cm.max
	for r := 0; r < cm.rows; r++ {
		idx := uint64(r)*cm.width + cm.family.Bucket(r, w1, w2, cm.width)
		cm.touched++
		var v uint32
		if cm.bits == 8 {
			v = uint32(cm.cnt8[idx])
		} else {
			v = cm.cnt32[idx]
		}
		if v < est {
			est = v
		}
	}
	return est
}

// EmptyCounters returns the number of zero counters in the first row,
// the input to linear counting for cardinality estimation.
func (cm *CountMin) EmptyCounters() int {
	empty := 0
	if cm.bits == 8 {
		for _, v := range cm.cnt8[:cm.width] {
			if v == 0 {
				empty++
			}
		}
	} else {
		for _, v := range cm.cnt32[:cm.width] {
			if v == 0 {
				empty++
			}
		}
	}
	return empty
}

// EstimateCardinality applies linear counting to the first row.
func (cm *CountMin) EstimateCardinality() float64 {
	return LinearCount(int(cm.width), cm.EmptyCounters())
}

// Touched returns the cumulative number of counter accesses and resets are
// not included; used for Fig. 11 cost accounting.
func (cm *CountMin) Touched() uint64 { return cm.touched }

// Reset zeroes all counters and the access counter.
func (cm *CountMin) Reset() {
	for i := range cm.cnt8 {
		cm.cnt8[i] = 0
	}
	for i := range cm.cnt32 {
		cm.cnt32[i] = 0
	}
	cm.touched = 0
}
