package sketch

import "math"

// LinearCount applies the linear counting estimator of Whang et al. (TODS
// 1990): given a hash table (or bitmap) with m slots of which empty are
// still unoccupied, the number of distinct inserted elements is estimated
// as m · ln(m/empty).
//
// When the table is full (empty == 0) the estimator diverges; this
// implementation clamps to one empty slot, yielding m · ln(m), the largest
// finite estimate the table size supports. Both HashFlow (ancillary table)
// and ElasticSketch (light part) use this estimator for flow cardinality.
func LinearCount(m, empty int) float64 {
	if m <= 0 {
		return 0
	}
	if empty <= 0 {
		empty = 1
	}
	if empty >= m {
		return 0
	}
	return float64(m) * math.Log(float64(m)/float64(empty))
}
