package sketch

import (
	"math/rand/v2"
	"testing"
)

func BenchmarkCountMinAdd(b *testing.B) {
	cm, err := NewCountMin(3, 1<<16, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	keys := make([][2]uint64, 1024)
	for i := range keys {
		keys[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&1023]
		cm.Add(k[0], k[1], 1)
	}
}

func BenchmarkCountMinEstimate(b *testing.B) {
	cm, err := NewCountMin(3, 1<<16, 32, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	keys := make([][2]uint64, 1024)
	for i := range keys {
		keys[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
		cm.Add(keys[i][0], keys[i][1], uint32(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		k := keys[i&1023]
		sink ^= cm.Estimate(k[0], k[1])
	}
	_ = sink
}

func BenchmarkBloomAddContains(b *testing.B) {
	bl, err := NewBloom(1<<20, 4, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(5, 6))
	keys := make([][2]uint64, 1024)
	for i := range keys {
		keys[i] = [2]uint64{rng.Uint64(), rng.Uint64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i&1023]
		if !bl.Contains(k[0], k[1]) {
			bl.Add(k[0], k[1])
		}
	}
}
