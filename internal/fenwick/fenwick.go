// Package fenwick provides a Fenwick (binary indexed) tree over uint64
// weights with prefix-sum search. The trace generator uses it to stream a
// random interleaving of per-flow packets in O(log n) per packet without
// materializing the whole packet array.
package fenwick

import "math/bits"

// Tree is a Fenwick tree of non-negative weights.
type Tree struct {
	tree []uint64 // 1-based
	n    int
	mask int // highest power of two <= n, for prefix search
}

// New builds a tree from the given weights.
func New(weights []uint64) *Tree {
	n := len(weights)
	t := &Tree{tree: make([]uint64, n+1), n: n}
	for i, w := range weights {
		t.tree[i+1] = w
	}
	// In-place O(n) construction.
	for i := 1; i <= n; i++ {
		j := i + (i & -i)
		if j <= n {
			t.tree[j] += t.tree[i]
		}
	}
	if n > 0 {
		t.mask = 1 << (bits.Len(uint(n)) - 1)
	}
	return t
}

// Len returns the number of elements.
func (t *Tree) Len() int { return t.n }

// Total returns the sum of all weights.
func (t *Tree) Total() uint64 { return t.Prefix(t.n) }

// Prefix returns the sum of weights[0:i].
func (t *Tree) Prefix(i int) uint64 {
	var s uint64
	for ; i > 0; i -= i & -i {
		s += t.tree[i]
	}
	return s
}

// Add adds delta to weights[i]. delta may be negative as long as the weight
// stays non-negative; the caller is responsible for that invariant.
func (t *Tree) Add(i int, delta int64) {
	for i++; i <= t.n; i += i & -i {
		t.tree[i] = uint64(int64(t.tree[i]) + delta)
	}
}

// FindPrefix returns the smallest index i such that Prefix(i+1) > target,
// i.e. it locates the element owning position target in the cumulative
// weight line. target must be < Total().
func (t *Tree) FindPrefix(target uint64) int {
	idx := 0
	for step := t.mask; step > 0; step >>= 1 {
		next := idx + step
		if next <= t.n && t.tree[next] <= target {
			target -= t.tree[next]
			idx = next
		}
	}
	return idx
}
