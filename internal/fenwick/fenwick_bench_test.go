package fenwick

import (
	"math/rand/v2"
	"testing"
)

func benchTree(n int) *Tree {
	w := make([]uint64, n)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range w {
		w[i] = uint64(rng.IntN(100) + 1)
	}
	return New(w)
}

func BenchmarkFindPrefix(b *testing.B) {
	t := benchTree(1 << 18)
	total := t.Total()
	rng := rand.New(rand.NewPCG(3, 4))
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= t.FindPrefix(rng.Uint64N(total))
	}
	_ = sink
}

func BenchmarkDrawWithoutReplacement(b *testing.B) {
	// The trace-stream inner loop: find a weighted element and decrement.
	t := benchTree(1 << 16)
	rng := rand.New(rand.NewPCG(5, 6))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := t.Total()
		if total == 0 {
			b.StopTimer()
			t = benchTree(1 << 16)
			b.StartTimer()
			total = t.Total()
		}
		idx := t.FindPrefix(rng.Uint64N(total))
		t.Add(idx, -1)
	}
}
