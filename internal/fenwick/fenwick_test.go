package fenwick

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func naivePrefix(w []uint64, i int) uint64 {
	var s uint64
	for _, v := range w[:i] {
		s += v
	}
	return s
}

func TestPrefixMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		n := rng.IntN(200) + 1
		w := make([]uint64, n)
		for i := range w {
			w[i] = uint64(rng.IntN(100))
		}
		tree := New(w)
		for i := 0; i <= n; i++ {
			if got, want := tree.Prefix(i), naivePrefix(w, i); got != want {
				t.Fatalf("trial %d: Prefix(%d) = %d, want %d", trial, i, got, want)
			}
		}
	}
}

func TestAddThenPrefix(t *testing.T) {
	w := []uint64{5, 0, 3, 7, 2}
	tree := New(w)
	tree.Add(1, 4)
	tree.Add(3, -7)
	want := []uint64{5, 4, 3, 0, 2}
	for i := 0; i <= len(w); i++ {
		if got := tree.Prefix(i); got != naivePrefix(want, i) {
			t.Fatalf("Prefix(%d) = %d, want %d", i, got, naivePrefix(want, i))
		}
	}
	if tree.Total() != 14 {
		t.Errorf("Total = %d, want 14", tree.Total())
	}
}

func TestFindPrefix(t *testing.T) {
	w := []uint64{3, 0, 2, 5}
	tree := New(w)
	wantOwner := []int{0, 0, 0, 2, 2, 3, 3, 3, 3, 3}
	for target, want := range wantOwner {
		if got := tree.FindPrefix(uint64(target)); got != want {
			t.Errorf("FindPrefix(%d) = %d, want %d", target, got, want)
		}
	}
}

func TestFindPrefixProperty(t *testing.T) {
	f := func(raw []uint16, probe uint16) bool {
		if len(raw) == 0 {
			return true
		}
		w := make([]uint64, len(raw))
		var total uint64
		for i, v := range raw {
			w[i] = uint64(v)
			total += uint64(v)
		}
		if total == 0 {
			return true
		}
		tree := New(w)
		target := uint64(probe) % total
		idx := tree.FindPrefix(target)
		// Owner property: Prefix(idx) <= target < Prefix(idx+1).
		return tree.Prefix(idx) <= target && target < tree.Prefix(idx+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDrainToZero(t *testing.T) {
	// Simulate the trace-stream use: repeatedly pick a random position and
	// decrement until the tree drains; every pick must land on a positive
	// weight.
	w := []uint64{4, 1, 0, 6, 2}
	tree := New(w)
	rng := rand.New(rand.NewPCG(9, 10))
	remaining := append([]uint64(nil), w...)
	for total := tree.Total(); total > 0; total = tree.Total() {
		idx := tree.FindPrefix(rng.Uint64N(total))
		if remaining[idx] == 0 {
			t.Fatalf("picked drained index %d", idx)
		}
		remaining[idx]--
		tree.Add(idx, -1)
	}
	for i, r := range remaining {
		if r != 0 {
			t.Errorf("index %d not drained: %d left", i, r)
		}
	}
}

func TestEmptyTree(t *testing.T) {
	tree := New(nil)
	if tree.Len() != 0 || tree.Total() != 0 {
		t.Error("empty tree should have zero length and total")
	}
}
