package hashing

import "math/bits"

// Murmur3 computes MurmurHash3 x86 32-bit of data with the given seed.
// This is the textbook public-domain algorithm by Austin Appleby.
func Murmur3(data []byte, seed uint32) uint32 {
	const (
		c1 = 0xcc9e2d51
		c2 = 0x1b873593
	)
	h := seed
	n := len(data)

	// Body: 4-byte blocks.
	for len(data) >= 4 {
		k := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
		data = data[4:]

		k *= c1
		k = bits.RotateLeft32(k, 15)
		k *= c2

		h ^= k
		h = bits.RotateLeft32(h, 13)
		h = h*5 + 0xe6546b64
	}

	// Tail.
	var k uint32
	switch len(data) {
	case 3:
		k ^= uint32(data[2]) << 16
		fallthrough
	case 2:
		k ^= uint32(data[1]) << 8
		fallthrough
	case 1:
		k ^= uint32(data[0])
		k *= c1
		k = bits.RotateLeft32(k, 15)
		k *= c2
		h ^= k
	}

	// Finalization.
	h ^= uint32(n)
	h ^= h >> 16
	h *= 0x85ebca6b
	h ^= h >> 13
	h *= 0xc2b2ae35
	h ^= h >> 16
	return h
}
