package hashing

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	s1, o1 := SplitMix64(42)
	s2, o2 := SplitMix64(42)
	if s1 != s2 || o1 != o2 {
		t.Fatal("SplitMix64 is not deterministic")
	}
	if _, o3 := SplitMix64(s1); o3 == o1 {
		t.Fatal("consecutive SplitMix64 outputs should differ")
	}
}

func TestKeyHashDeterministic(t *testing.T) {
	if KeyHash(1, 2, 3) != KeyHash(1, 2, 3) {
		t.Fatal("KeyHash is not deterministic")
	}
	if KeyHash(1, 2, 3) == KeyHash(2, 2, 3) {
		t.Fatal("different seeds should yield different hashes")
	}
}

func TestKeyHashAvalanche(t *testing.T) {
	// Flipping one input bit should flip close to half the output bits on
	// average; require at least a loose band.
	rng := rand.New(rand.NewPCG(5, 6))
	const trials = 2000
	var totalFlipped int
	for i := 0; i < trials; i++ {
		w1, w2 := rng.Uint64(), rng.Uint64()
		h := KeyHash(0xABCD, w1, w2)
		bit := rng.IntN(104) // only 104 meaningful bits
		var h2 uint64
		if bit < 64 {
			h2 = KeyHash(0xABCD, w1^(1<<bit), w2)
		} else {
			h2 = KeyHash(0xABCD, w1, w2^(1<<(bit-64)))
		}
		totalFlipped += popcount(h ^ h2)
	}
	avg := float64(totalFlipped) / trials
	if avg < 28 || avg > 36 {
		t.Errorf("avalanche average = %.2f flipped bits, want ~32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestFamilyIndependence(t *testing.T) {
	// Family members must disagree: the probability two 64-bit hashes of
	// the same key collide is negligible.
	f := NewFamily(8, 99)
	if f.Size() != 8 {
		t.Fatalf("Size = %d, want 8", f.Size())
	}
	rng := rand.New(rand.NewPCG(7, 8))
	for i := 0; i < 1000; i++ {
		w1, w2 := rng.Uint64(), rng.Uint64()
		seen := make(map[uint64]int)
		for j := 0; j < f.Size(); j++ {
			h := f.Hash(j, w1, w2)
			if prev, dup := seen[h]; dup {
				t.Fatalf("members %d and %d collide on input %d", prev, j, i)
			}
			seen[h] = j
		}
	}
}

func TestFamilySeedsDiffer(t *testing.T) {
	a := NewFamily(4, 1)
	b := NewFamily(4, 2)
	same := 0
	for i := 0; i < 4; i++ {
		if a.Hash(i, 10, 20) == b.Hash(i, 10, 20) {
			same++
		}
	}
	if same != 0 {
		t.Errorf("%d/4 members identical across different base seeds", same)
	}
}

func TestReduceBounds(t *testing.T) {
	f := func(h uint64, n uint32) bool {
		if n == 0 {
			return true
		}
		return Reduce(h, uint64(n)) < uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceUniform(t *testing.T) {
	// Chi-square-ish check: bucket a large random sample into 64 bins.
	const bins = 64
	const samples = 1 << 18
	counts := make([]int, bins)
	rng := rand.New(rand.NewPCG(11, 12))
	for i := 0; i < samples; i++ {
		counts[Reduce(KeyHash(7, rng.Uint64(), rng.Uint64()), bins)]++
	}
	expect := float64(samples) / bins
	for b, c := range counts {
		if math.Abs(float64(c)-expect) > 6*math.Sqrt(expect) {
			t.Errorf("bin %d has %d entries, expected %.0f +- %.0f", b, c, expect, 6*math.Sqrt(expect))
		}
	}
}

func TestBucketMatchesReduce(t *testing.T) {
	f := NewFamily(3, 77)
	rng := rand.New(rand.NewPCG(13, 14))
	for i := 0; i < 100; i++ {
		w1, w2 := rng.Uint64(), rng.Uint64()
		for j := 0; j < 3; j++ {
			if f.Bucket(j, w1, w2, 1000) != Reduce(f.Hash(j, w1, w2), 1000) {
				t.Fatal("Bucket disagrees with Reduce(Hash)")
			}
		}
	}
}
