// Package hashing provides the family of independent hash functions that
// every sketch in this repository builds on.
//
// Two implementations are provided:
//
//   - KeyHash / Family: an allocation-free, xxhash-style mixer specialized
//     for the two-word packing of a 104-bit flow key. This is what the data
//     path uses.
//   - Murmur3: a faithful MurmurHash3 x86 32-bit implementation over
//     arbitrary byte strings, used where a general-purpose hash is needed
//     and as an independent cross-check in tests.
//
// Seeds for the family members are derived from a base seed with SplitMix64,
// which guarantees distinct, well-mixed per-function seeds.
package hashing

import "math/bits"

const (
	prime1 = 0x9E3779B185EBCA87
	prime2 = 0xC2B2AE3D27D4EB4F
	prime3 = 0x165667B19E3779F9
	prime4 = 0x85EBCA77C2B2AE63
	prime5 = 0x27D4EB2F165667C5
)

// SplitMix64 advances the SplitMix64 sequence: it returns the next state and
// the output value for the current step.
func SplitMix64(state uint64) (next, out uint64) {
	state += 0x9E3779B97F4A7C15
	z := state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return state, z ^ (z >> 31)
}

// KeyHash mixes two 64-bit words (the packed 104-bit flow key) with a seed
// into a 64-bit digest with strong avalanche behaviour.
func KeyHash(seed, w1, w2 uint64) uint64 {
	h := seed + prime5 + 16
	h ^= bits.RotateLeft64(w1*prime2, 31) * prime1
	h = bits.RotateLeft64(h, 27)*prime1 + prime4
	h ^= bits.RotateLeft64(w2*prime2, 31) * prime1
	h = bits.RotateLeft64(h, 27)*prime1 + prime4
	h ^= h >> 33
	h *= prime2
	h ^= h >> 29
	h *= prime3
	h ^= h >> 32
	return h
}

// Family is a set of independent hash functions over packed flow keys.
// The zero value is not usable; construct with NewFamily.
type Family struct {
	seeds []uint64
}

// NewFamily derives n independent hash functions from the base seed.
func NewFamily(n int, seed uint64) *Family {
	seeds := make([]uint64, n)
	state := seed
	for i := range seeds {
		state, seeds[i] = SplitMix64(state)
	}
	return &Family{seeds: seeds}
}

// Size returns the number of functions in the family.
func (f *Family) Size() int { return len(f.seeds) }

// Hash evaluates the i-th family member on the packed key.
func (f *Family) Hash(i int, w1, w2 uint64) uint64 {
	return KeyHash(f.seeds[i], w1, w2)
}

// Bucket evaluates the i-th family member and reduces it to [0, n) using
// the high-multiply reduction, which is faster than modulo and unbiased for
// n far below 2^64.
func (f *Family) Bucket(i int, w1, w2 uint64, n uint64) uint64 {
	return Reduce(KeyHash(f.seeds[i], w1, w2), n)
}

// Reduce maps a 64-bit hash uniformly onto [0, n) without division.
func Reduce(h, n uint64) uint64 {
	hi, _ := bits.Mul64(h, n)
	return hi
}
