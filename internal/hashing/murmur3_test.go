package hashing

import (
	"math/rand/v2"
	"testing"
)

// Reference vectors for MurmurHash3 x86 32-bit, cross-checked against the
// canonical C++ implementation (SMHasher) and widely published test suites.
func TestMurmur3Vectors(t *testing.T) {
	tests := []struct {
		name string
		data string
		seed uint32
		want uint32
	}{
		{"empty seed0", "", 0, 0},
		{"empty seed1", "", 1, 0x514E28B7},
		{"empty seedFF", "", 0xFFFFFFFF, 0x81F16F39},
		{"zeros", "\x00\x00\x00\x00", 0, 0x2362F9DE},
		{"a", "a", 0x9747B28C, 0x7FA09EA6},
		{"aa", "aa", 0x9747B28C, 0x5D211726},
		{"aaa", "aaa", 0x9747B28C, 0x283E0130},
		{"aaaa", "aaaa", 0x9747B28C, 0x5A97808A},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Murmur3([]byte(tc.data), tc.seed); got != tc.want {
				t.Errorf("Murmur3(%q, %#x) = %#x, want %#x", tc.data, tc.seed, got, tc.want)
			}
		})
	}
}

func TestMurmur3AllTailLengths(t *testing.T) {
	// Exercise every tail-length branch and check determinism plus
	// sensitivity to the final byte.
	data := []byte("0123456789abcdef")
	for n := 0; n <= len(data); n++ {
		h1 := Murmur3(data[:n], 42)
		h2 := Murmur3(data[:n], 42)
		if h1 != h2 {
			t.Fatalf("len %d: not deterministic", n)
		}
		if n > 0 {
			mutated := append([]byte(nil), data[:n]...)
			mutated[n-1] ^= 0xFF
			if Murmur3(mutated, 42) == h1 {
				t.Errorf("len %d: insensitive to final byte", n)
			}
		}
	}
}

func TestMurmur3Distribution(t *testing.T) {
	// Low bits of the hash over sequential keys should be near-uniform.
	const bins = 16
	const samples = 1 << 16
	counts := make([]int, bins)
	var buf [8]byte
	for i := 0; i < samples; i++ {
		for j := range buf {
			buf[j] = byte(i >> (8 * j))
		}
		counts[Murmur3(buf[:], 0)%bins]++
	}
	expect := samples / bins
	for b, c := range counts {
		if c < expect*9/10 || c > expect*11/10 {
			t.Errorf("bin %d has %d entries, expected ~%d", b, c, expect)
		}
	}
}

func BenchmarkMurmur3Key13(b *testing.B) {
	data := make([]byte, 13)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range data {
		data[i] = byte(rng.Uint32())
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Murmur3(data, uint32(i))
	}
}

func BenchmarkKeyHash(b *testing.B) {
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= KeyHash(uint64(i), 0x0123456789ABCDEF, 0xFEDCBA9876543210)
	}
	_ = sink
}
