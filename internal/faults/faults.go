// Package faults provides deterministic fault injection for the
// crash-safety and degradation tests: writers that die mid-write exactly
// the way a killed process tears an epoch frame, packet conns that drop
// or delay datagrams the way a congested path does, and HTTP handlers
// that fail or stall a bounded number of requests before recovering the
// way a flapping webhook receiver does.
//
// Everything here is counter-driven, never randomized: a test that
// injects "fail after 37 bytes" or "drop every 3rd datagram" reproduces
// byte-for-byte on every run, which is the whole point — flaky fault
// injection just converts real bugs into flaky tests.
package faults

import (
	"errors"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the default error injected wrappers return.
var ErrInjected = errors.New("faults: injected failure")

// Writer passes writes through to W until Limit bytes have been written,
// then fails. A write straddling the limit is PARTIALLY applied — the
// bytes up to the limit land, the rest do not, and the write reports the
// short count with the error — which is exactly the torn-frame shape a
// process killed mid-write leaves on disk. Every write after the limit
// fails outright. Not safe for concurrent use, like most io.Writers.
type Writer struct {
	W     io.Writer
	Limit int64 // bytes allowed through; < 0 means unlimited
	Err   error // returned on failure; nil means ErrInjected

	written int64
	failed  bool
}

// NewWriter wraps w, allowing limit bytes through before failing.
func NewWriter(w io.Writer, limit int64) *Writer {
	return &Writer{W: w, Limit: limit}
}

func (w *Writer) Write(p []byte) (int, error) {
	errInj := w.Err
	if errInj == nil {
		errInj = ErrInjected
	}
	if w.Limit < 0 {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	if w.failed || w.written >= w.Limit {
		w.failed = true
		return 0, errInj
	}
	if w.written+int64(len(p)) <= w.Limit {
		n, err := w.W.Write(p)
		w.written += int64(n)
		return n, err
	}
	// Straddling write: tear it at the limit.
	keep := int(w.Limit - w.written)
	n, err := w.W.Write(p[:keep])
	w.written += int64(n)
	w.failed = true
	if err != nil {
		return n, err
	}
	return n, errInj
}

// Written returns how many bytes reached the underlying writer.
func (w *Writer) Written() int64 { return w.written }

// PacketConn wraps a net.PacketConn, deterministically dropping every
// DropEvery-th successfully received datagram (1-based: DropEvery 3
// drops the 3rd, 6th, ...) and delaying delivery of the survivors by
// Delay. The zero values inject nothing. Safe for the concurrent reader
// pattern collectors use.
type PacketConn struct {
	net.PacketConn
	DropEvery int64         // drop every n-th received datagram; 0 disables
	Delay     time.Duration // added before each delivered datagram

	received atomic.Int64
	dropped  atomic.Int64
}

// ReadFrom reads from the wrapped conn, consuming (and discarding)
// dropped datagrams so the caller only ever sees the survivors.
func (c *PacketConn) ReadFrom(p []byte) (int, net.Addr, error) {
	for {
		n, addr, err := c.PacketConn.ReadFrom(p)
		if err != nil {
			return n, addr, err
		}
		if c.DropEvery > 0 && c.received.Add(1)%c.DropEvery == 0 {
			c.dropped.Add(1)
			continue
		}
		if c.Delay > 0 {
			time.Sleep(c.Delay)
		}
		return n, addr, nil
	}
}

// Dropped returns how many datagrams were swallowed.
func (c *PacketConn) Dropped() int64 { return c.dropped.Load() }

// FlakyHandler wraps an http.Handler with scheduled failures: the next
// FailNext requests get a failure status (after an optional stall), then
// the handler recovers and serves Inner — the flapping-receiver shape
// retrying sinks must survive. Safe for concurrent use.
type FlakyHandler struct {
	// Inner serves requests that are not failed; nil means 200 with an
	// empty body.
	Inner http.Handler

	mu     sync.Mutex
	fails  int
	status int
	stall  time.Duration

	served atomic.Int64
	failed atomic.Int64
}

// FailNext schedules the next n requests to be answered with status.
func (h *FlakyHandler) FailNext(n, status int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fails = n
	h.status = status
}

// StallNext additionally delays each of the scheduled failures by d
// before responding (simulating a hung receiver the client times out on
// when d exceeds the client timeout).
func (h *FlakyHandler) StallNext(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.stall = d
}

func (h *FlakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	fail := h.fails > 0
	status := h.status
	stall := h.stall
	if fail {
		h.fails--
	}
	h.mu.Unlock()
	if fail {
		if stall > 0 {
			time.Sleep(stall)
		}
		h.failed.Add(1)
		if status == 0 {
			status = http.StatusInternalServerError
		}
		http.Error(w, "injected failure", status)
		return
	}
	h.served.Add(1)
	if h.Inner != nil {
		h.Inner.ServeHTTP(w, r)
	}
}

// Served returns how many requests were answered by Inner (or the
// default 200).
func (h *FlakyHandler) Served() int64 { return h.served.Load() }

// Failed returns how many requests were answered with an injected
// failure.
func (h *FlakyHandler) Failed() int64 { return h.failed.Load() }
