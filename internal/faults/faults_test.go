package faults

import (
	"bytes"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestWriterTearsAtLimit(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, 10)

	n, err := w.Write([]byte("12345678")) // 8 bytes, under the limit
	if n != 8 || err != nil {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = w.Write([]byte("abcdef")) // straddles: 2 land, 4 torn off
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("straddling write: n=%d err=%v, want 2, ErrInjected", n, err)
	}
	if got := sink.String(); got != "12345678ab" {
		t.Fatalf("underlying saw %q, want the torn prefix %q", got, "12345678ab")
	}
	if n, err = w.Write([]byte("x")); n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("post-failure write: n=%d err=%v, want 0, ErrInjected", n, err)
	}
	if w.Written() != 10 {
		t.Fatalf("Written() = %d, want 10", w.Written())
	}
}

func TestWriterExactLimitThenFail(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, 4)
	if n, err := w.Write([]byte("abcd")); n != 4 || err != nil {
		t.Fatalf("exact-limit write: n=%d err=%v", n, err)
	}
	if _, err := w.Write([]byte("e")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write past limit: err=%v, want ErrInjected", err)
	}
}

func TestWriterCustomError(t *testing.T) {
	boom := errors.New("boom")
	w := &Writer{W: &bytes.Buffer{}, Limit: 0, Err: boom}
	if _, err := w.Write([]byte("a")); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want the custom error", err)
	}
}

func TestWriterUnlimited(t *testing.T) {
	var sink bytes.Buffer
	w := NewWriter(&sink, -1)
	for i := 0; i < 100; i++ {
		if _, err := w.Write([]byte("abc")); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if sink.Len() != 300 {
		t.Fatalf("underlying saw %d bytes, want 300", sink.Len())
	}
}

func TestPacketConnDropsEveryNth(t *testing.T) {
	inner, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	conn := &PacketConn{PacketConn: inner, DropEvery: 3}

	send, err := net.Dial("udp", inner.LocalAddr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer send.Close()
	for i := byte(0); i < 9; i++ {
		if _, err := send.Write([]byte{i}); err != nil {
			t.Fatal(err)
		}
	}

	// 9 sent, every 3rd dropped: datagrams 0,1,3,4,6,7 delivered.
	var got []byte
	buf := make([]byte, 16)
	for i := 0; i < 6; i++ {
		if err := inner.SetReadDeadline(time.Now().Add(2 * time.Second)); err != nil {
			t.Fatal(err)
		}
		n, _, err := conn.ReadFrom(buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		got = append(got, buf[:n]...)
	}
	want := []byte{0, 1, 3, 4, 6, 7}
	if !bytes.Equal(got, want) {
		t.Fatalf("delivered %v, want %v", got, want)
	}
	// The 9th datagram is a drop: the read consumes and swallows it, then
	// times out with nothing left to deliver.
	if err := inner.SetReadDeadline(time.Now().Add(200 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if n, _, err := conn.ReadFrom(buf); err == nil {
		t.Fatalf("read after the stream should be dry delivered %v", buf[:n])
	}
	if conn.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", conn.Dropped())
	}
}

func TestFlakyHandlerFailsThenRecovers(t *testing.T) {
	h := &FlakyHandler{}
	h.FailNext(2, http.StatusServiceUnavailable)
	srv := httptest.NewServer(h)
	defer srv.Close()

	statuses := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		statuses = append(statuses, resp.StatusCode)
	}
	want := []int{503, 503, 200, 200}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("statuses = %v, want %v", statuses, want)
		}
	}
	if h.Failed() != 2 || h.Served() != 2 {
		t.Fatalf("Failed=%d Served=%d, want 2 and 2", h.Failed(), h.Served())
	}
}

func TestFlakyHandlerStall(t *testing.T) {
	h := &FlakyHandler{}
	h.FailNext(1, http.StatusInternalServerError)
	h.StallNext(150 * time.Millisecond)
	srv := httptest.NewServer(h)
	defer srv.Close()

	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 150*time.Millisecond {
		t.Fatalf("stalled request returned in %v, want >= 150ms", elapsed)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
}

func TestFlakyHandlerInner(t *testing.T) {
	h := &FlakyHandler{Inner: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	})}
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("inner handler not reached: status %d", resp.StatusCode)
	}
}
