// Package core implements HashFlow, the paper's primary contribution: a
// flow-record hash table with a non-evicting collision-resolution strategy
// on a main table and a digest-keyed ancillary table with record promotion.
//
// The main table comes in the two organizations analyzed in §III of the
// paper: a single multi-hash table probed by d independent hash functions,
// or d pipelined sub-tables whose sizes decrease geometrically with weight
// α (n_{k+1} = α·n_k). The evaluation default is the pipelined layout with
// d = 3 and α = 0.7.
package core

import (
	"fmt"
	"math"

	"repro/flow"
	"repro/internal/hashing"
	"repro/internal/sketch"
)

// Default parameter values from the paper's evaluation (§IV-A).
const (
	DefaultDepth      = 3
	DefaultAlpha      = 0.7
	DefaultDigestBits = 8

	// MainCellBytes is the size of one main-table record: a 104-bit flow ID
	// plus a 32-bit packet counter.
	MainCellBytes = flow.KeyBytes + 4
	// AncillaryCellBytes is the size of one ancillary record: an 8-bit
	// digest plus an 8-bit counter.
	AncillaryCellBytes = 2
)

// Config parameterizes a HashFlow instance.
type Config struct {
	// MemoryBytes is the total memory budget shared by the main and
	// ancillary tables. Per the paper, both tables get the same number of
	// cells, so a budget B yields B/19 cells each.
	MemoryBytes int
	// Depth is the number of hash functions (multi-hash) or sub-tables
	// (pipelined). Defaults to 3.
	Depth int
	// Pipelined selects the pipelined sub-table layout instead of a single
	// multi-hash table.
	Pipelined bool
	// Alpha is the pipeline weight: sub-table k+1 has α times the buckets
	// of sub-table k. Only used when Pipelined. Defaults to 0.7.
	Alpha float64
	// DigestBits is the width of the ancillary-table digest (1..8 bits).
	// Defaults to 8.
	DigestBits int
	// DisablePromotion turns off record promotion (ablation only).
	DisablePromotion bool
	// Seed makes the hash family deterministic.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Depth == 0 {
		c.Depth = DefaultDepth
	}
	if c.Alpha == 0 {
		c.Alpha = DefaultAlpha
	}
	if c.DigestBits == 0 {
		c.DigestBits = DefaultDigestBits
	}
	return c
}

func (c Config) validate() error {
	if c.MemoryBytes <= 0 {
		return fmt.Errorf("core: memory budget must be positive, got %d", c.MemoryBytes)
	}
	if c.Depth < 1 || c.Depth > 16 {
		return fmt.Errorf("core: depth must be in [1,16], got %d", c.Depth)
	}
	if c.Pipelined && (c.Alpha <= 0 || c.Alpha >= 1) {
		return fmt.Errorf("core: pipeline weight must be in (0,1), got %v", c.Alpha)
	}
	if c.DigestBits < 1 || c.DigestBits > 8 {
		return fmt.Errorf("core: digest width must be in [1,8] bits, got %d", c.DigestBits)
	}
	return nil
}

type bucket struct {
	key   flow.Key
	count uint32
}

type ancCell struct {
	digest uint8
	count  uint8
}

// HashFlow maintains accurate records for elephant flows in its main table
// and summarized (digest, count) records for mice flows in its ancillary
// table, per Algorithm 1 of the paper.
type HashFlow struct {
	cfg    Config
	tables [][]bucket
	anc    []ancCell
	family *hashing.Family // functions 0..Depth-1 probe the main table, Depth indexes the ancillary table
	dmask  uint8
	ops    flow.OpStats
}

// New builds a HashFlow instance from cfg, applying paper defaults for
// unset fields.
func New(cfg Config) (*HashFlow, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cells := cfg.MemoryBytes / (MainCellBytes + AncillaryCellBytes)
	if cells < cfg.Depth {
		return nil, fmt.Errorf("core: budget of %d bytes yields %d cells, fewer than depth %d",
			cfg.MemoryBytes, cells, cfg.Depth)
	}
	h := &HashFlow{
		cfg:    cfg,
		anc:    make([]ancCell, cells),
		family: hashing.NewFamily(cfg.Depth+1, cfg.Seed),
		dmask:  uint8(1<<cfg.DigestBits - 1),
	}
	if cfg.Pipelined {
		sizes := pipelineSizes(cells, cfg.Depth, cfg.Alpha)
		h.tables = make([][]bucket, cfg.Depth)
		for i, n := range sizes {
			h.tables[i] = make([]bucket, n)
		}
	} else {
		h.tables = [][]bucket{make([]bucket, cells)}
	}
	return h, nil
}

// pipelineSizes splits cells buckets into depth sub-tables with sizes
// decreasing geometrically by alpha, guaranteeing every sub-table gets at
// least one bucket and the sizes sum exactly to cells.
func pipelineSizes(cells, depth int, alpha float64) []int {
	sizes := make([]int, depth)
	n1 := float64(cells) * (1 - alpha) / (1 - math.Pow(alpha, float64(depth)))
	used := 0
	for k := 0; k < depth; k++ {
		n := int(math.Round(n1 * math.Pow(alpha, float64(k))))
		if n < 1 {
			n = 1
		}
		sizes[k] = n
		used += n
	}
	// Push the rounding residue into the first (largest) table.
	sizes[0] += cells - used
	if sizes[0] < 1 {
		sizes[0] = 1
	}
	return sizes
}

// probe returns the sub-table index and bucket index the k-th hash function
// maps the key to.
func (h *HashFlow) probe(k int, w1, w2 uint64) (int, uint64) {
	if h.cfg.Pipelined {
		t := h.tables[k]
		return k, hashing.Reduce(h.family.Hash(k, w1, w2), uint64(len(t)))
	}
	return 0, hashing.Reduce(h.family.Hash(k, w1, w2), uint64(len(h.tables[0])))
}

// Update processes one packet following Algorithm 1: collision resolution
// over the main table, then the ancillary table with record promotion.
func (h *HashFlow) Update(p flow.Packet) {
	h.ops.Packets++
	w1, w2 := p.Key.Words()

	// Collision resolution over the d main-table probes.
	minCount := uint32(math.MaxUint32)
	posT, posI := -1, uint64(0)
	var digest uint8
	for k := 0; k < h.cfg.Depth; k++ {
		h.ops.Hashes++
		t, i := h.probe(k, w1, w2)
		if k == 0 {
			// The digest is derived from the first hash result, costing no
			// extra hash computation (Algorithm 1, line 15).
			digest = uint8(h.family.Hash(0, w1, w2)) & h.dmask
		}
		b := &h.tables[t][i]
		h.ops.MemAccesses++
		if b.count == 0 {
			b.key = p.Key
			b.count = 1
			h.ops.MemAccesses++
			return
		}
		if b.key == p.Key {
			b.count++
			h.ops.MemAccesses++
			return
		}
		if b.count < minCount {
			minCount = b.count
			posT, posI = t, i
		}
	}

	// Ancillary table.
	h.ops.Hashes++
	ai := hashing.Reduce(h.family.Hash(h.cfg.Depth, w1, w2), uint64(len(h.anc)))
	a := &h.anc[ai]
	h.ops.MemAccesses++
	switch {
	case a.count == 0 || a.digest != digest:
		// Empty, or collision with a different flow: replace (discard the
		// incumbent mouse).
		a.digest = digest
		a.count = 1
		h.ops.MemAccesses++
	case uint32(a.count) < minCount || h.cfg.DisablePromotion:
		if a.count < math.MaxUint8 {
			a.count++
			h.ops.MemAccesses++
		}
	default:
		// Record promotion: the ancillary record has grown to the size of
		// the smallest colliding main-table record (the sentinel); re-insert
		// it into the main table, evicting the sentinel.
		mb := &h.tables[posT][posI]
		mb.key = p.Key
		mb.count = uint32(a.count) + 1
		h.ops.MemAccesses++
	}
}

// UpdateBatch processes pkts in order with the same semantics as repeated
// Update calls. The batched path amortizes per-packet overhead: the first
// probe hash is computed once and shared with the digest derivation
// (Update derives the digest by re-evaluating hash 0), invariant loads are
// hoisted out of the packet loop, and operation counters accumulate in a
// register-resident struct flushed once per batch.
func (h *HashFlow) UpdateBatch(pkts []flow.Packet) {
	var ops flow.OpStats
	depth := h.cfg.Depth
	t0len := uint64(len(h.tables[0]))
	ancLen := uint64(len(h.anc))
	dmask := h.dmask

	for pi := range pkts {
		p := &pkts[pi]
		ops.Packets++
		w1, w2 := p.Key.Words()

		h0 := h.family.Hash(0, w1, w2)
		digest := uint8(h0) & dmask

		minCount := uint32(math.MaxUint32)
		posT, posI := -1, uint64(0)
		placed := false
		for k := 0; k < depth; k++ {
			ops.Hashes++
			var t int
			var i uint64
			if k == 0 {
				// Both layouts probe tables[0] with hash 0 first.
				t, i = 0, hashing.Reduce(h0, t0len)
			} else {
				t, i = h.probe(k, w1, w2)
			}
			b := &h.tables[t][i]
			ops.MemAccesses++
			if b.count == 0 {
				b.key = p.Key
				b.count = 1
				ops.MemAccesses++
				placed = true
				break
			}
			if b.key == p.Key {
				b.count++
				ops.MemAccesses++
				placed = true
				break
			}
			if b.count < minCount {
				minCount = b.count
				posT, posI = t, i
			}
		}
		if placed {
			continue
		}

		ops.Hashes++
		ai := hashing.Reduce(h.family.Hash(depth, w1, w2), ancLen)
		a := &h.anc[ai]
		ops.MemAccesses++
		switch {
		case a.count == 0 || a.digest != digest:
			a.digest = digest
			a.count = 1
			ops.MemAccesses++
		case uint32(a.count) < minCount || h.cfg.DisablePromotion:
			if a.count < math.MaxUint8 {
				a.count++
				ops.MemAccesses++
			}
		default:
			mb := &h.tables[posT][posI]
			mb.key = p.Key
			mb.count = uint32(a.count) + 1
			ops.MemAccesses++
		}
	}
	h.ops = h.ops.Add(ops)
}

// EstimateSize returns the recorded packet count for a flow: the exact
// main-table count if present, else the ancillary count if the digest
// matches, else 0.
func (h *HashFlow) EstimateSize(k flow.Key) uint32 {
	w1, w2 := k.Words()
	for d := 0; d < h.cfg.Depth; d++ {
		t, i := h.probe(d, w1, w2)
		if b := h.tables[t][i]; b.count > 0 && b.key == k {
			return b.count
		}
	}
	digest := uint8(h.family.Hash(0, w1, w2)) & h.dmask
	ai := hashing.Reduce(h.family.Hash(h.cfg.Depth, w1, w2), uint64(len(h.anc)))
	if a := h.anc[ai]; a.count > 0 && a.digest == digest {
		return uint32(a.count)
	}
	return 0
}

// Records reports every main-table flow record. Ancillary records carry
// only digests, not flow IDs, so they cannot be reported.
func (h *HashFlow) Records() []flow.Record {
	return h.AppendRecords(make([]flow.Record, 0, h.Occupied()))
}

// AppendRecords appends every main-table flow record to dst and returns
// the extended slice, allocating only when dst lacks capacity.
func (h *HashFlow) AppendRecords(dst []flow.Record) []flow.Record {
	for _, t := range h.tables {
		for _, b := range t {
			if b.count > 0 {
				dst = append(dst, flow.Record{Key: b.key, Count: b.count})
			}
		}
	}
	return dst
}

// EstimateCardinality estimates the number of distinct flows as the number
// of occupied main-table buckets plus a linear-counting estimate over the
// ancillary table (§IV-A of the paper).
func (h *HashFlow) EstimateCardinality() float64 {
	empty := 0
	for _, a := range h.anc {
		if a.count == 0 {
			empty++
		}
	}
	return float64(h.Occupied()) + sketch.LinearCount(len(h.anc), empty)
}

// Occupied returns the number of non-empty main-table buckets.
func (h *HashFlow) Occupied() int {
	n := 0
	for _, t := range h.tables {
		for _, b := range t {
			if b.count > 0 {
				n++
			}
		}
	}
	return n
}

// MainCells returns the total number of main-table buckets.
func (h *HashFlow) MainCells() int {
	n := 0
	for _, t := range h.tables {
		n += len(t)
	}
	return n
}

// AncillaryCells returns the number of ancillary-table cells.
func (h *HashFlow) AncillaryCells() int { return len(h.anc) }

// TableSizes returns the bucket count of each main sub-table (one entry for
// the multi-hash layout).
func (h *HashFlow) TableSizes() []int {
	sizes := make([]int, len(h.tables))
	for i, t := range h.tables {
		sizes[i] = len(t)
	}
	return sizes
}

// Utilization returns the fraction of occupied main-table buckets.
func (h *HashFlow) Utilization() float64 {
	return float64(h.Occupied()) / float64(h.MainCells())
}

// MemoryBytes returns the configured memory footprint of both tables.
func (h *HashFlow) MemoryBytes() int {
	return h.MainCells()*MainCellBytes + len(h.anc)*AncillaryCellBytes
}

// OpStats returns cumulative operation counts since the last Reset.
func (h *HashFlow) OpStats() flow.OpStats { return h.ops }

// Reset clears all tables and counters.
func (h *HashFlow) Reset() {
	for _, t := range h.tables {
		for i := range t {
			t[i] = bucket{}
		}
	}
	for i := range h.anc {
		h.anc[i] = ancCell{}
	}
	h.ops = flow.OpStats{}
}
