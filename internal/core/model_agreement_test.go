package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/flow"
	"repro/model"
)

// TestUtilizationMatchesModel feeds one packet per distinct flow (the pure
// insertion workload §III-B models) and checks the real structure's
// main-table utilization against the analytic prediction.
func TestUtilizationMatchesModel(t *testing.T) {
	const cells = 20000
	for _, tc := range []struct {
		name      string
		pipelined bool
		alpha     float64
		load      float64
		predict   func(load float64) float64
	}{
		{"multihash load1", false, 0, 1.0,
			func(l float64) float64 { return model.MultiHashUtilization(l, 3) }},
		{"multihash load2", false, 0, 2.0,
			func(l float64) float64 { return model.MultiHashUtilization(l, 3) }},
		{"pipelined a0.7 load1", true, 0.7, 1.0,
			func(l float64) float64 { return model.PipelinedUtilization(l, 0.7, 3) }},
		{"pipelined a0.7 load2", true, 0.7, 2.0,
			func(l float64) float64 { return model.PipelinedUtilization(l, 0.7, 3) }},
		{"pipelined a0.5 load1.5", true, 0.5, 1.5,
			func(l float64) float64 { return model.PipelinedUtilization(l, 0.5, 3) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h := mustNew(t, Config{
				MemoryBytes: cells * (MainCellBytes + AncillaryCellBytes),
				Pipelined:   tc.pipelined,
				Alpha:       tc.alpha,
				Seed:        31,
			})
			rng := rand.New(rand.NewPCG(7, 11))
			flows := int(tc.load * float64(h.MainCells()))
			for i := 0; i < flows; i++ {
				h.Update(flow.Packet{Key: randKey(rng)})
			}
			got := h.Utilization()
			want := tc.predict(tc.load)
			// The multi-hash model is known to deviate slightly at load 1
			// (Fig. 2a); allow 3% there, 1.5% elsewhere.
			tol := 0.015
			if !tc.pipelined && tc.load == 1.0 {
				tol = 0.03
			}
			if math.Abs(got-want) > tol {
				t.Errorf("utilization %.4f, model predicts %.4f (tol %v)", got, want, tol)
			}
		})
	}
}

// TestPaperClaimFillsNearlyAllBuckets reproduces the abstract's claim that
// at 1 MB and 250K offered flows HashFlow fills essentially its whole main
// table (~55K records), at 1/8 scale.
func TestPaperClaimFillsNearlyAllBuckets(t *testing.T) {
	h := mustNew(t, Config{MemoryBytes: 128 << 10, Seed: 17})
	rng := rand.New(rand.NewPCG(13, 17))
	offered := 4 * h.MainCells()
	for i := 0; i < offered; i++ {
		// Skewed sizes: every 16th flow sends 8 packets.
		k := randKey(rng)
		n := 1
		if i%16 == 0 {
			n = 8
		}
		for j := 0; j < n; j++ {
			h.Update(flow.Packet{Key: k})
		}
	}
	if u := h.Utilization(); u < 0.985 {
		t.Errorf("utilization %.4f after 4x overload, want > 0.985", u)
	}
	if got, want := len(h.Records()), h.MainCells(); float64(got) < 0.985*float64(want) {
		t.Errorf("%d records for %d cells", got, want)
	}
}

// TestDigestWidthAffectsAncillaryCollisions verifies narrower digests make
// the ancillary table mix distinct flows more often: with a 1-bit digest,
// an unrelated flow is very likely to be (mis)matched.
func TestDigestWidthAffectsAncillaryCollisions(t *testing.T) {
	mixups := func(bits int) int {
		h := mustNew(t, Config{MemoryBytes: 19 * 64, DigestBits: bits, Seed: 23})
		rng := rand.New(rand.NewPCG(19, 23))
		// Saturate the main table so later flows land in the ancillary.
		for i := 0; i < 64*8; i++ {
			h.Update(flow.Packet{Key: randKey(rng)})
		}
		// Probe flows that were never inserted: any nonzero estimate is a
		// digest collision in the ancillary table.
		n := 0
		for i := 0; i < 2000; i++ {
			if h.EstimateSize(randKey(rng)) > 0 {
				n++
			}
		}
		return n
	}
	narrow := mixups(1)
	wide := mixups(8)
	if narrow <= wide {
		t.Errorf("1-bit digest mixups (%d) not above 8-bit mixups (%d)", narrow, wide)
	}
}

// TestSentinelIsMinimum checks the promotion target: after a promotion, the
// evicted record must have been the smallest among the flow's d colliding
// candidates at eviction time. We verify the weaker observable property
// that promotion never evicts a record larger than the promoted count.
func TestSentinelIsMinimum(t *testing.T) {
	h := mustNew(t, Config{MemoryBytes: 19 * 32, Seed: 29})
	rng := rand.New(rand.NewPCG(29, 31))
	truth := flow.NewTruth(0)
	keys := make([]flow.Key, 256)
	for i := range keys {
		keys[i] = randKey(rng)
	}
	for i := 0; i < 50000; i++ {
		p := flow.Packet{Key: keys[rng.IntN(len(keys))]}
		truth.Observe(p)
		h.Update(p)
	}
	// Every main-table record must be reachable via one of its own probe
	// positions (structural sanity after arbitrary promotions).
	for _, rec := range h.Records() {
		if got := h.EstimateSize(rec.Key); got == 0 {
			t.Fatalf("record %v not reachable through its own probes", rec.Key)
		}
	}
}

func BenchmarkHashFlowUpdate(b *testing.B) {
	h, err := New(Config{MemoryBytes: 1 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	keys := make([]flow.Key, 1<<16)
	for i := range keys {
		keys[i] = randKey(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Update(flow.Packet{Key: keys[i&(1<<16-1)]})
	}
}

func BenchmarkHashFlowEstimateSize(b *testing.B) {
	h, err := New(Config{MemoryBytes: 1 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	keys := make([]flow.Key, 1<<16)
	for i := range keys {
		keys[i] = randKey(rng)
		h.Update(flow.Packet{Key: keys[i]})
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink ^= h.EstimateSize(keys[i&(1<<16-1)])
	}
	_ = sink
}
